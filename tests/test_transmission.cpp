// Transmission-control workload tests: boot, task progress, gear logic,
// turbine pulse counting, adaptation journalling and determinism.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "workload/transmission.hpp"

namespace audo::workload {
namespace {

TransmissionOptions fast_options() {
  TransmissionOptions opt;
  opt.time_scale = 100;
  return opt;
}

Addr var(const TransmissionWorkload& w, const char* name) {
  auto addr = w.program.symbol_addr(name);
  EXPECT_TRUE(addr.is_ok()) << name;
  return addr.value_or(0);
}

TEST(Transmission, BuildsAndRuns) {
  auto w = build_transmission_workload(fast_options());
  ASSERT_TRUE(w.is_ok()) << w.status().to_string();
  soc::Soc soc(test::small_config());
  ASSERT_TRUE(install_transmission(soc, w.value()).is_ok());
  soc.run(500'000);
  EXPECT_FALSE(soc.tc().halted());
  EXPECT_GT(soc.dspr().read(var(w.value(), "task_count"), 4), 20u);
  EXPECT_GT(soc.dspr().read(var(w.value(), "turbine"), 4), 0u);
  EXPECT_GT(soc.dspr().read(var(w.value(), "wheel_avg"), 4), 0u);
  EXPECT_GT(soc.dspr().read(var(w.value(), "slip"), 4), 0u);
  EXPECT_NE(soc.dspr().read(var(w.value(), "crc_sum"), 4), 0u);
  EXPECT_EQ(soc.tc().bus_errors(), 0u);
}

TEST(Transmission, GearShiftsWithHysteresis) {
  auto w = build_transmission_workload(fast_options());
  ASSERT_TRUE(w.is_ok());
  soc::Soc soc(test::small_config());
  ASSERT_TRUE(install_transmission(soc, w.value()).is_ok());
  soc.run(600'000);
  const u32 gear = soc.dspr().read(var(w.value(), "gear"), 4);
  EXPECT_GE(gear, 1u);
  EXPECT_LE(gear, 7u);
  EXPECT_GT(soc.dspr().read(var(w.value(), "shift_count"), 4), 0u);
}

TEST(Transmission, TurbinePulsesTrackTheCrank) {
  auto w = build_transmission_workload(fast_options());
  ASSERT_TRUE(w.is_ok());
  soc::Soc soc(test::small_config());
  ASSERT_TRUE(install_transmission(soc, w.value()).is_ok());
  soc.run(400'000);
  // All tooth interrupts were serviced as pulses (none lost).
  const auto& node = soc.irq_router().node(soc.srcs().crank_tooth);
  EXPECT_GT(node.serviced, 100u);
  EXPECT_EQ(node.lost, 0u);
}

TEST(Transmission, AdaptationJournalReachesDataFlash) {
  auto w = build_transmission_workload(fast_options());
  ASSERT_TRUE(w.is_ok());
  soc::Soc soc(test::small_config());
  ASSERT_TRUE(install_transmission(soc, w.value()).is_ok());
  soc.run(800'000);
  EXPECT_GT(soc.dspr().read(var(w.value(), "adapt_idx"), 4), 1u);
  EXPECT_GT(soc.dflash().writes(), 1u);
}

TEST(Transmission, HaltAfterTasksIsComputeBound) {
  auto run_with_ws = [](unsigned ws) {
    TransmissionOptions opt;
    opt.time_scale = 100;
    opt.halt_after_tasks = 40;
    auto w = build_transmission_workload(opt);
    EXPECT_TRUE(w.is_ok());
    auto cfg = test::small_config();
    cfg.pflash.wait_states = ws;
    cfg.dcache.enabled = false;
    soc::Soc soc(cfg);
    EXPECT_TRUE(install_transmission(soc, w.value()).is_ok());
    soc.run(20'000'000);
    EXPECT_TRUE(soc.tc().halted());
    return soc.cycle();
  };
  const u64 fast = run_with_ws(2);
  const u64 slow = run_with_ws(8);
  EXPECT_GT(slow, fast);
}

TEST(Transmission, Deterministic) {
  auto w = build_transmission_workload(fast_options());
  ASSERT_TRUE(w.is_ok());
  auto run_once = [&] {
    soc::Soc soc(test::small_config());
    EXPECT_TRUE(install_transmission(soc, w.value()).is_ok());
    soc.run(300'000);
    return std::tuple{soc.tc().retired(),
                      soc.dspr().read(var(w.value(), "sol_out"), 4),
                      soc.dspr().read(var(w.value(), "task_count"), 4)};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Transmission, DifferentProfileThanTheEngine) {
  // The point of a second customer: a different event mix on the same
  // silicon. The TCU's periodic task dominates; tooth work is trivial.
  auto w = build_transmission_workload(fast_options());
  ASSERT_TRUE(w.is_ok());
  soc::Soc soc(test::small_config());
  ASSERT_TRUE(install_transmission(soc, w.value()).is_ok());
  u64 in_task = 0, in_pulse = 0, in_handler = 0;
  int depth = 0;
  u8 current = 0;
  while (soc.cycle() < 400'000) {
    soc.step();
    const auto& tc = soc.frame().tc;
    if (tc.irq_entry) {
      ++depth;
      current = tc.irq_prio;
    }
    if (tc.irq_exit && depth > 0) --depth;
    if (depth > 0) {
      ++in_handler;
      if (current == 25) ++in_task;
      if (current == 35) ++in_pulse;
    }
  }
  const u32 tasks = soc.dspr().read(var(w.value(), "task_count"), 4);
  const u64 pulses = soc.irq_router().node(soc.srcs().crank_tooth).serviced;
  ASSERT_GT(tasks, 10u);
  ASSERT_GT(pulses, 100u);
  // Per-invocation cost: the periodic task is an order of magnitude
  // heavier than the trivial pulse counter — the inverse of the engine
  // application's tooth-dominated profile.
  const double task_cost = static_cast<double>(in_task) / tasks;
  const double pulse_cost = static_cast<double>(in_pulse) / pulses;
  EXPECT_GT(task_cost, pulse_cost * 5.0);
  EXPECT_GT(in_handler, 0u);
}

}  // namespace
}  // namespace audo::workload
