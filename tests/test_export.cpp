// Tests for tool-side exports (CSV) and the MCDS break (debug halt).
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "isa/assembler.hpp"
#include "profiling/export.hpp"
#include "profiling/listing.hpp"
#include "profiling/session.hpp"
#include "workload/kernels.hpp"

namespace audo {
namespace {

TEST(Export, SeriesCsvShapeAndForwardFill) {
  profiling::RateSeries a;
  a.name = "ipc";
  a.points = {{100, 50, 100}, {200, 80, 100}};
  profiling::RateSeries b;
  b.name = "miss";
  b.points = {{150, 3, 50}};
  const std::string csv = profiling::series_to_csv({a, b});

  std::vector<std::string> lines;
  usize pos = 0;
  while (pos < csv.size()) {
    const usize nl = csv.find('\n', pos);
    lines.push_back(csv.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "cycle,ipc,miss");
  EXPECT_EQ(lines[1].substr(0, 4), "100,");       // first ipc sample
  EXPECT_NE(lines[1].find("0.5"), std::string::npos);
  EXPECT_EQ(lines[1].back(), ',');                // miss has no sample yet
  EXPECT_EQ(lines[2].substr(0, 4), "150,");
  EXPECT_NE(lines[2].find("0.06"), std::string::npos);
  // Forward fill: line 3 (cycle 200) keeps the last miss value.
  EXPECT_NE(lines[3].find("0.06"), std::string::npos);
  EXPECT_NE(lines[3].find("0.8"), std::string::npos);
}

TEST(Export, SeriesCsvDisjointCadencesForwardFill) {
  // Three series whose sample cycles never coincide (co-prime cadences
  // plus a one-shot): every union row must carry one cell per series,
  // holding the last value at-or-before that cycle and staying empty
  // until the series' first sample.
  profiling::RateSeries a;
  a.name = "a";
  a.points = {{100, 10, 100}, {200, 20, 100}, {300, 30, 100}};
  profiling::RateSeries b;
  b.name = "b";
  b.points = {{70, 7, 100}, {140, 14, 100}, {210, 21, 100}, {280, 28, 100}};
  profiling::RateSeries c;
  c.name = "c";
  c.points = {{250, 50, 100}};
  const std::string csv = profiling::series_to_csv({a, b, c});

  std::vector<std::string> lines;
  usize pos = 0;
  while (pos < csv.size()) {
    const usize nl = csv.find('\n', pos);
    lines.push_back(csv.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_EQ(lines.size(), 9u);  // header + union of 8 distinct cycles
  EXPECT_EQ(lines[0], "cycle,a,b,c");
  for (usize i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(std::count(lines[i].begin(), lines[i].end(), ','), 3)
        << "row " << i;
  }
  EXPECT_EQ(lines[1], "70,,0.070000,");           // a and c not yet sampled
  EXPECT_EQ(lines[2], "100,0.100000,0.070000,");  // b forward-fills
  EXPECT_EQ(lines[3], "140,0.100000,0.140000,");
  EXPECT_EQ(lines[4], "200,0.200000,0.140000,");
  EXPECT_EQ(lines[5], "210,0.200000,0.210000,");
  EXPECT_EQ(lines[6], "250,0.200000,0.210000,0.500000");
  EXPECT_EQ(lines[7], "280,0.200000,0.280000,0.500000");
  EXPECT_EQ(lines[8], "300,0.300000,0.280000,0.500000");
}

TEST(Export, MessageCsvCoversAllKinds) {
  std::vector<mcds::TraceMessage> messages;
  mcds::TraceMessage m;
  m.kind = mcds::MsgKind::kData;
  m.source = mcds::MsgSource::kTcCore;
  m.cycle = 42;
  m.addr = 0xC0000010;
  m.value = 0x1234;
  m.write = true;
  m.bytes = 4;
  messages.push_back(m);
  m = {};
  m.kind = mcds::MsgKind::kRate;
  m.source = mcds::MsgSource::kChip;
  m.cycle = 50;
  m.group = 2;
  m.basis = 100;
  m.counts = {1, 2, 3};
  messages.push_back(m);
  const std::string csv = profiling::messages_to_csv(messages);
  EXPECT_NE(csv.find("42,tc,data,write addr=0xC0000010"), std::string::npos);
  EXPECT_NE(csv.find("50,chip,rate,group=2 basis=100 counts=1|2|3"),
            std::string::npos);
}

TEST(Export, EndToEndFromSession) {
  auto program = workload::build_sort(24);
  ASSERT_TRUE(program.is_ok());
  profiling::SessionOptions opts;
  opts.resolution = 200;
  opts.program_trace = true;
  profiling::ProfilingSession session(test::small_config(), opts);
  ASSERT_TRUE(session.load(program.value()).is_ok());
  session.reset(program.value().entry());
  const auto result = session.run(10'000'000);

  const std::string series_csv = profiling::series_to_csv(result.series);
  EXPECT_NE(series_csv.find("ipc/tc.retired"), std::string::npos);
  EXPECT_GT(std::count(series_csv.begin(), series_csv.end(), '\n'), 10);

  const std::string msg_csv = profiling::messages_to_csv(result.messages);
  EXPECT_NE(msg_csv.find(",tc,flow,"), std::string::npos);
  EXPECT_NE(msg_csv.find(",chip,rate,"), std::string::npos);
}

TEST(McdsBreak, BreakpointPausesTheDevice) {
  auto program = workload::build_sort(32);
  ASSERT_TRUE(program.is_ok());
  // Break when the sort's summation phase first writes `result`.
  const Addr result_addr = program.value().symbol_addr("result").value();
  mcds::McdsConfig cfg;
  cfg.comparators = {mcds::Comparator{
      mcds::CoreSel::kTc, mcds::CompareField::kDataAddr, result_addr,
      result_addr + 3, /*write_filter=*/1}};
  cfg.actions = {mcds::ActionBinding{mcds::Equation::comparator(0),
                                     mcds::TriggerAction::kBreak, 0}};
  ed::EmulationDevice ed(test::small_config(), cfg, ed::EdConfig{});
  ASSERT_TRUE(ed.load(program.value()).is_ok());
  ed.reset(program.value().entry());
  ed.run(10'000'000);

  ASSERT_TRUE(ed.mcds().break_requested());
  EXPECT_FALSE(ed.soc().tc().halted());  // paused, not finished
  const Cycle paused_at = ed.soc().cycle();
  EXPECT_EQ(ed.mcds().break_cycle(), paused_at);
  // Tool inspects state at the breakpoint...
  EXPECT_EQ(ed.tool_read32(result_addr), ed.soc().dspr().read(result_addr, 4));
  // ...then resumes to completion.
  ed.mcds().clear_break();
  ed.run(10'000'000);
  EXPECT_TRUE(ed.soc().tc().halted());
  EXPECT_NE(ed.soc().dspr().read(result_addr, 4), 0u);
}

TEST(McdsBreak, NoBreakWithoutTrigger) {
  auto program = workload::build_fir(8, 32);
  ASSERT_TRUE(program.is_ok());
  mcds::McdsConfig cfg;  // no actions
  ed::EmulationDevice ed(test::small_config(), cfg, ed::EdConfig{});
  ASSERT_TRUE(ed.load(program.value()).is_ok());
  ed.reset(program.value().entry());
  ed.run(10'000'000);
  EXPECT_FALSE(ed.mcds().break_requested());
  EXPECT_TRUE(ed.soc().tc().halted());
}


TEST(Listing, ReconstructsExecutedInstructions) {
  auto program = isa::assemble(R"(
    .text 0x80000000
main:
    movd d0, 3
    mov.ad a2, d0
_top:
    addi d1, d1, 1
    loop a2, _top
    halt
)");
  ASSERT_TRUE(program.is_ok());
  mcds::McdsConfig cfg;
  cfg.program_trace = true;
  cfg.sync_interval_cycles = 4096;
  ed::EmulationDevice ed(test::small_config(), cfg, ed::EdConfig{});
  ASSERT_TRUE(ed.load(program.value()).is_ok());
  ed.reset(program.value().entry());
  ed.run(10'000);
  auto decoded = ed.download_trace();
  ASSERT_TRUE(decoded.is_ok());
  const std::string listing =
      profiling::execution_listing(program.value(), decoded.value());
  // The loop body appears with its address, mnemonic and function.
  EXPECT_NE(listing.find("0x80000008  addi d1, d1, 1"), std::string::npos)
      << listing;
  EXPECT_NE(listing.find("; in main"), std::string::npos);
  EXPECT_NE(listing.find("branch/irq -> 0x80000008"), std::string::npos);
  // Three loop iterations -> the addi shows up three times.
  usize count = 0;
  for (usize pos = 0; (pos = listing.find("addi d1", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 3u);
}

TEST(Listing, RespectsLineCapAndGapMarkers) {
  std::vector<mcds::TraceMessage> messages;
  mcds::TraceMessage sync;
  sync.kind = mcds::MsgKind::kSync;
  sync.source = mcds::MsgSource::kTcCore;
  sync.cycle = 1;
  sync.pc = 0x80000000;
  messages.push_back(sync);
  mcds::TraceMessage ovf;
  ovf.kind = mcds::MsgKind::kOverflow;
  ovf.source = mcds::MsgSource::kChip;  // ignored: wrong core
  ovf.cycle = 2;
  messages.push_back(ovf);
  isa::Program empty;
  profiling::ListingOptions lo;
  lo.max_lines = 1;
  lo.core = mcds::MsgSource::kChip;
  const std::string text =
      profiling::execution_listing(empty, messages, lo);
  EXPECT_NE(text.find("trace gap"), std::string::npos);
}


TEST(CycleAccurateMode, TickCountsSumToRetiredInstructions) {
  auto program = workload::build_fir(8, 64);
  ASSERT_TRUE(program.is_ok());
  mcds::McdsConfig cfg;
  cfg.cycle_accurate = true;
  cfg.program_trace = true;
  ed::EdConfig ed_cfg;
  ed_cfg.emem.size_bytes = 8 * 1024 * 1024;
  ed_cfg.emem.overlay_bytes = 0;
  ed::EmulationDevice ed(test::small_config(), cfg, ed_cfg);
  ASSERT_TRUE(ed.load(program.value()).is_ok());
  ed.reset(program.value().entry());
  ed.run(10'000'000);
  ASSERT_TRUE(ed.soc().tc().halted());
  auto decoded = ed.download_trace();
  ASSERT_TRUE(decoded.is_ok());
  u64 ticked = 0;
  Cycle last = 0;
  for (const auto& m : decoded.value()) {
    ASSERT_GE(m.cycle, last) << "timestamps must be monotonic";
    last = m.cycle;
    if (m.source != mcds::MsgSource::kTcCore) continue;
    if (m.kind == mcds::MsgKind::kTick || m.kind == mcds::MsgKind::kSync) {
      ticked += m.instr_count;
      EXPECT_LE(m.instr_count, 3u);  // issue width bound (syncs flushed each tick)
    }
  }
  // Cycle-accurate mode accounts for every retired instruction.
  EXPECT_EQ(ticked, ed.soc().tc().retired());
}

}  // namespace
}  // namespace audo
