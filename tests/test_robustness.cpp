// Robustness and invariant tests: disassembler coverage, crossbar
// conservation under random traffic, interrupt storms vs architectural
// integrity, and EMEM accounting invariants.
#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "emem/emem.hpp"
#include "helpers.hpp"
#include "mem/memory_map.hpp"

namespace audo {
namespace {

// ---------------------------------------------------------------------
// Every opcode formats without crashing and round-trips its mnemonic.
class DisasmCoverage : public ::testing::TestWithParam<unsigned> {};

TEST_P(DisasmCoverage, FormatContainsMnemonic) {
  const auto op = static_cast<isa::Opcode>(GetParam());
  const isa::OpInfo& info = isa::op_info(op);
  isa::Instr in;
  in.opcode = op;
  in.rd = 3;
  in.ra = 7;
  in.rb = 11;
  in.imm = -12;
  const std::string text = isa::format_instr(in);
  EXPECT_FALSE(text.empty());
  // The mnemonic must lead the formatted text.
  EXPECT_EQ(text.rfind(info.mnemonic, 0), 0u) << text;
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, DisasmCoverage,
                         ::testing::Range(0u, isa::kNumOpcodes));

// ---------------------------------------------------------------------
// Crossbar conservation: under randomized multi-master traffic, every
// issued transaction completes exactly once, and grants == completions.
class CountingSlave final : public bus::BusSlave {
 public:
  CountingSlave(unsigned latency, std::string name)
      : latency_(latency), name_(std::move(name)) {}
  unsigned start_access(const bus::BusRequest&) override {
    ++starts_;
    return latency_;
  }
  u32 complete_access(const bus::BusRequest& req) override {
    ++completions_;
    return req.addr ^ 0xA5A5A5A5;
  }
  std::string_view name() const override { return name_; }
  u64 starts_ = 0;
  u64 completions_ = 0;

 private:
  unsigned latency_;
  std::string name_;
};

class BusRandomTraffic
    : public ::testing::TestWithParam<bus::ArbitrationPolicy> {};

TEST_P(BusRandomTraffic, NothingLostNothingDuplicated) {
  bus::Crossbar fabric(GetParam());
  CountingSlave s0(1, "s0"), s1(3, "s1"), s2(7, "s2");
  const unsigned i0 = fabric.add_slave(&s0);
  const unsigned i1 = fabric.add_slave(&s1);
  const unsigned i2 = fabric.add_slave(&s2);
  ASSERT_TRUE(fabric.map_region(0x0000, 0x1000, i0).is_ok());
  ASSERT_TRUE(fabric.map_region(0x1000, 0x1000, i1).is_ok());
  ASSERT_TRUE(fabric.map_region(0x2000, 0x1000, i2).is_ok());

  Prng prng(static_cast<u64>(GetParam()) + 77);
  constexpr unsigned kMasters = 4;
  bus::MasterPort ports[kMasters];
  const bus::MasterId ids[kMasters] = {
      bus::MasterId::kDma, bus::MasterId::kTcData, bus::MasterId::kTcFetch,
      bus::MasterId::kPcpData};
  u64 issued = 0, completed = 0, checked = 0;
  Addr outstanding_addr[kMasters] = {};

  for (Cycle now = 1; now <= 20'000; ++now) {
    for (unsigned m = 0; m < kMasters; ++m) {
      if (ports[m].done()) {
        const u32 rdata = ports[m].take_rdata();
        EXPECT_EQ(rdata, outstanding_addr[m] ^ 0xA5A5A5A5);
        ++completed;
        ++checked;
      }
      if (ports[m].idle() && prng.chance(0.4)) {
        bus::BusRequest req;
        req.master = ids[m];
        req.addr = static_cast<Addr>(prng.next_below(3) * 0x1000 +
                                     (prng.next_below(0x400) * 4));
        ASSERT_TRUE(fabric.issue(ports[m], req, now));
        outstanding_addr[m] = req.addr;
        ++issued;
      }
    }
    fabric.step(now);
  }
  // Drain.
  for (Cycle now = 20'001; now <= 20'100; ++now) {
    for (unsigned m = 0; m < kMasters; ++m) {
      if (ports[m].done()) {
        ports[m].take_rdata();
        ++completed;
      }
    }
    fabric.step(now);
  }
  EXPECT_EQ(issued, completed);
  EXPECT_EQ(s0.starts_, s0.completions_);
  EXPECT_EQ(s1.starts_, s1.completions_);
  EXPECT_EQ(s2.starts_, s2.completions_);
  EXPECT_EQ(s0.completions_ + s1.completions_ + s2.completions_, issued);
  EXPECT_GT(checked, 1000u);
}

INSTANTIATE_TEST_SUITE_P(Policies, BusRandomTraffic,
                         ::testing::Values(
                             bus::ArbitrationPolicy::kFixedPriority,
                             bus::ArbitrationPolicy::kRoundRobin));

// ---------------------------------------------------------------------
// Interrupt storm: a background checksum must compute the same result
// under any interrupt load (the ISR save/restore contract), only slower.
TEST(IrqStorm, BackgroundResultUnaffectedByInterruptLoad) {
  const char* kSource = R"(
    .text 0x80000140     ; prio 10 vector
    j isr
    .text 0x80001000
main:
    di
    movha a15, 0xC000
    movha a14, 0xF000
    movh  d0, 0x8000
    mtcr  biv, d0
    movd  d0, STORM
    st.w  d0, [a14+8]    ; STM CMP0 period
    jz    d0, _no_storm
    movd  d0, 1
    st.w  d0, [a14+16]   ; enable
_no_storm:
    ei
    ; checksum 4096 pseudo-random values
    movd  d5, 0
    movd  d0, 0x1234
    movh  d8, 25
    ori   d8, d8, 26125
    movh  d9, 15470
    ori   d9, d9, 62303
    movd  d1, 4096
    mov.ad a3, d1
_sum:
    mul   d0, d0, d8
    add   d0, d0, d9
    xor   d5, d5, d0
    shli  d2, d5, 1
    shri  d3, d5, 31
    or    d5, d2, d3
    loop  a3, _sum
    st.w  d5, [a15+0]
    halt
isr:
    st.w  d8, [a15+8]
    st.w  d9, [a15+12]
    ld.w  d8, [a15+4]
    addi  d8, d8, 1
    st.w  d8, [a15+4]
    ; scribble on the registers the background also uses (must be
    ; restored by this ISR's epilogue for its own, not the bg's, regs)
    movd  d9, -1
    xor   d8, d8, d9
    ld.w  d8, [a15+8]
    ld.w  d9, [a15+12]
    rfe
)";
  auto run_with_storm = [&](u32 period) {
    std::string src = kSource;
    const std::string needle = "STORM";
    while (src.find(needle) != std::string::npos) {
      src.replace(src.find(needle), needle.size(), std::to_string(period));
    }
    auto program = isa::assemble(src);
    EXPECT_TRUE(program.is_ok()) << program.status().to_string();
    soc::Soc soc(test::small_config());
    EXPECT_TRUE(soc.load(program.value()).is_ok());
    soc.irq_router().configure(soc.srcs().stm0, 10, periph::IrqTarget::kTc);
    soc.reset(program.value().entry());
    soc.run(10'000'000);
    EXPECT_TRUE(soc.tc().halted());
    return std::pair{soc.dspr().read(0xC0000000, 4), soc.cycle()};
  };

  const auto [quiet_sum, quiet_cycles] = run_with_storm(0);
  for (u32 period : {47u, 131u, 997u}) {
    const auto [sum, cycles] = run_with_storm(period);
    EXPECT_EQ(sum, quiet_sum) << "storm period " << period;
    EXPECT_GT(cycles, quiet_cycles) << "storm period " << period;
  }
}

// ---------------------------------------------------------------------
// EMEM accounting invariant under random push/drain interleavings.
TEST(EmemInvariants, OccupancyMatchesContentUnderRandomOps) {
  emem::EmemConfig cfg;
  cfg.size_bytes = 4096;
  cfg.overlay_bytes = 0;
  cfg.mode = emem::TraceMode::kStream;
  emem::Emem sink(cfg);
  Prng prng(321);
  u64 drained_bytes = 0, dropped = 0;
  for (int i = 0; i < 20'000; ++i) {
    if (prng.chance(0.6)) {
      mcds::EncodedMessage m;
      m.bytes.assign(1 + prng.next_below(40), 0xEE);
      if (!sink.push(std::move(m), i)) {
        ++dropped;
      }
    } else {
      drained_bytes += sink.drain(prng.next_below(64));
    }
    ASSERT_LE(sink.occupancy_bytes(), cfg.trace_bytes());
    ASSERT_EQ(sink.occupancy_bytes(),
              sink.total_pushed_bytes() - drained_bytes);
  }
  EXPECT_EQ(sink.dropped_messages(), dropped);
  EXPECT_GT(drained_bytes, 0u);
}

}  // namespace
}  // namespace audo
