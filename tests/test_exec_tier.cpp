// Execution-tier bit-identity suite (see DESIGN.md, "Execution tiers"):
// the superblock fast tier is a host-side speed optimization and must be
// *observably identical* to the accurate stepper — per-cycle observation
// frames, MCDS counter/message streams, stall attribution, execution-DAG
// hashes and fault-campaign classifications all match bit for bit. The
// only permitted difference is host wall-clock.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "helpers.hpp"
#include "optimize/fault_campaign.hpp"
#include "profiling/cpi_stack.hpp"
#include "profiling/dag.hpp"
#include "profiling/export.hpp"
#include "profiling/session.hpp"
#include "soc/frame_digest.hpp"
#include "telemetry/metrics.hpp"
#include "workload/engine.hpp"
#include "workload/transmission.hpp"

namespace audo {
namespace {

using ExecTier = soc::SocConfig::ExecTier;

// Per-cycle frame fingerprinting comes from soc/frame_digest.hpp — the
// same enumeration the replay goldens hash, so this suite and the replay
// lab can never disagree about what "the frame stream" covers.
using FrameHasher = soc::FrameStreamHasher;

// ---- whole-run observation ------------------------------------------

/// Everything we require to be identical between the two tiers.
struct Observed {
  u64 steps = 0;
  u64 cycles = 0;
  u64 retired = 0;
  bool halted = false;
  u64 frames = 0;
  u64 frame_hash = 0;
  std::vector<std::string> metrics;  // "component/name=value"
  std::string cpi_csv;
  std::string interference_csv;
};

template <typename Workload, typename Install>
Observed run_tier(const Workload& w, Install install, ExecTier tier,
                  u64 max_cycles, bool fast_forward = true) {
  soc::SocConfig config = test::small_config();
  config.exec_tier = tier;
  config.fast_forward = fast_forward;
  soc::Soc soc(config);
  profiling::CpiStackBuilder cpi{isa::SymbolMap(w.program)};
  FrameHasher hasher;
  soc.set_frame_observer(&cpi);
  soc.add_frame_observer(&hasher);
  telemetry::MetricsRegistry registry;
  soc.register_metrics(registry);
  EXPECT_TRUE(install(soc, w).is_ok());
  Observed o;
  o.steps = soc.run(max_cycles);
  o.cycles = soc.cycle();
  o.retired = soc.tc().retired();
  o.halted = soc.tc().halted();
  o.frames = hasher.frames;
  o.frame_hash = hasher.hash;
  for (const telemetry::MetricSample& s :
       registry.collect(soc.cycle()).samples) {
    // The exec/ coverage counters are host-side observability that by
    // definition differs between tiers (that's what they measure).
    if (s.component == "exec") continue;
    o.metrics.push_back(s.component + "/" + s.name + "=" +
                        std::to_string(s.value));
  }
  o.cpi_csv = cpi.to_csv();
  o.interference_csv = profiling::interference_to_csv(soc.sri());
  return o;
}

void expect_identical(const Observed& fast, const Observed& accurate) {
  EXPECT_EQ(fast.steps, accurate.steps);
  EXPECT_EQ(fast.cycles, accurate.cycles);
  EXPECT_EQ(fast.retired, accurate.retired);
  EXPECT_EQ(fast.halted, accurate.halted);
  EXPECT_EQ(fast.frames, accurate.frames);
  EXPECT_EQ(fast.frame_hash, accurate.frame_hash);
  EXPECT_EQ(fast.metrics, accurate.metrics);
  EXPECT_EQ(fast.cpi_csv, accurate.cpi_csv);
  EXPECT_EQ(fast.interference_csv, accurate.interference_csv);
}

const auto kInstallEngine = [](soc::Soc& soc,
                               const workload::EngineWorkload& w) {
  return workload::install_engine(soc, w);
};
const auto kInstallTransmission = [](soc::Soc& soc,
                                     const workload::TransmissionWorkload& w) {
  return workload::install_transmission(soc, w);
};

workload::EngineWorkload busy_engine() {
  workload::EngineOptions opt;
  opt.crank_time_scale = 100;
  opt.rpm = 3000;
  opt.halt_after_bg = 40;
  auto w = workload::build_engine_workload(opt);
  EXPECT_TRUE(w.is_ok()) << w.status().to_string();
  return std::move(w).value();
}

workload::EngineWorkload idle_engine(u32 halt_after_revs) {
  workload::EngineOptions opt;
  opt.crank_time_scale = 100;
  opt.rpm = 3000;
  opt.idle_background = true;
  opt.halt_after_revs = halt_after_revs;
  auto w = workload::build_engine_workload(opt);
  EXPECT_TRUE(w.is_ok()) << w.status().to_string();
  return std::move(w).value();
}

// ---- SoC-level bit identity -----------------------------------------

TEST(ExecTier, BusyEngineBitIdentical) {
  const auto w = busy_engine();
  const Observed fast =
      run_tier(w, kInstallEngine, ExecTier::kSuperblock, 5'000'000);
  const Observed accurate =
      run_tier(w, kInstallEngine, ExecTier::kAccurate, 5'000'000);
  EXPECT_TRUE(fast.halted);
  expect_identical(fast, accurate);
}

TEST(ExecTier, TransmissionBitIdentical) {
  workload::TransmissionOptions opt;
  opt.halt_after_tasks = 6;
  auto built = workload::build_transmission_workload(opt);
  ASSERT_TRUE(built.is_ok()) << built.status().to_string();
  const auto& w = built.value();
  const Observed fast =
      run_tier(w, kInstallTransmission, ExecTier::kSuperblock, 5'000'000);
  const Observed accurate =
      run_tier(w, kInstallTransmission, ExecTier::kAccurate, 5'000'000);
  EXPECT_TRUE(fast.halted);
  expect_identical(fast, accurate);
}

TEST(ExecTier, FastForwardTierGridBitIdentical) {
  // All four fast_forward x exec_tier combinations agree: superblock
  // windows and idle skips compose without perturbing each other.
  // Within one fast-forward setting the comparison is total (frame-hash
  // stream included). Across settings the sim/ff.* accounting and the
  // frame *delivery shape* are the two permitted differences: a skip
  // folds n identical idle frames into one skip_idle() call, so the raw
  // observer stream hashes differently by design — the fast-forward
  // suite proves that equivalence through its own channels.
  const auto strip_ff = [](Observed o) {
    std::erase_if(o.metrics, [](const std::string& m) {
      return m.rfind("sim/ff.", 0) == 0;
    });
    return o;
  };
  const auto w = idle_engine(4);
  const Observed acc_off = strip_ff(
      run_tier(w, kInstallEngine, ExecTier::kAccurate, 5'000'000, false));
  const Observed sb_off = strip_ff(
      run_tier(w, kInstallEngine, ExecTier::kSuperblock, 5'000'000, false));
  const Observed acc_on = strip_ff(
      run_tier(w, kInstallEngine, ExecTier::kAccurate, 5'000'000, true));
  const Observed sb_on = strip_ff(
      run_tier(w, kInstallEngine, ExecTier::kSuperblock, 5'000'000, true));
  EXPECT_TRUE(acc_off.halted);
  expect_identical(sb_off, acc_off);
  expect_identical(sb_on, acc_on);
  EXPECT_EQ(acc_on.steps, acc_off.steps);
  EXPECT_EQ(acc_on.cycles, acc_off.cycles);
  EXPECT_EQ(acc_on.retired, acc_off.retired);
  EXPECT_EQ(acc_on.frames, acc_off.frames);
  EXPECT_EQ(acc_on.metrics, acc_off.metrics);
  EXPECT_EQ(acc_on.cpi_csv, acc_off.cpi_csv);
  EXPECT_EQ(acc_on.interference_csv, acc_off.interference_csv);
}

TEST(ExecTier, BudgetTruncationBitIdentical) {
  // A budget boundary landing inside a superblock window must stop at
  // exactly the budgeted cycle, like the stepper does.
  const auto w = busy_engine();  // runs ~21k cycles to halt
  for (const u64 budget : {3'000ull, 10'000ull, 20'000ull}) {
    const Observed fast =
        run_tier(w, kInstallEngine, ExecTier::kSuperblock, budget);
    const Observed accurate =
        run_tier(w, kInstallEngine, ExecTier::kAccurate, budget);
    EXPECT_EQ(fast.steps, budget);
    expect_identical(fast, accurate);
  }
}

// ---- MCDS / profiling bit identity ----------------------------------

profiling::SessionResult profile_engine(ExecTier tier, bool program_trace) {
  workload::EngineOptions opt;
  opt.crank_time_scale = 100;
  opt.rpm = 3000;
  opt.idle_background = true;
  opt.halt_after_revs = 3;
  auto w = workload::build_engine_workload(opt);
  EXPECT_TRUE(w.is_ok());

  soc::SocConfig chip = test::small_config();
  chip.exec_tier = tier;
  profiling::SessionOptions options;
  options.resolution = 500;
  options.program_trace = program_trace;
  options.irq_trace = program_trace;
  profiling::ProfilingSession session(chip, options);
  EXPECT_TRUE(session.load(w.value().program).is_ok());
  workload::configure_engine(session.device().soc(), w.value().options);
  session.reset(w.value().tc_entry, w.value().pcp_entry);
  return session.run(3'000'000);
}

void expect_sessions_identical(const profiling::SessionResult& fast,
                               const profiling::SessionResult& accurate) {
  EXPECT_EQ(fast.cycles, accurate.cycles);
  EXPECT_EQ(fast.tc_retired, accurate.tc_retired);
  EXPECT_EQ(fast.trace_bytes, accurate.trace_bytes);
  EXPECT_EQ(fast.trace_messages, accurate.trace_messages);
  EXPECT_EQ(fast.dropped_messages, accurate.dropped_messages);
  ASSERT_EQ(fast.messages.size(), accurate.messages.size());
  for (usize i = 0; i < fast.messages.size(); ++i) {
    EXPECT_EQ(fast.messages[i], accurate.messages[i]) << "message " << i;
  }
}

TEST(ExecTier, McdsCountersBitIdentical) {
  const auto fast = profile_engine(ExecTier::kSuperblock, false);
  const auto accurate = profile_engine(ExecTier::kAccurate, false);
  EXPECT_GT(fast.trace_messages, 0u);
  expect_sessions_identical(fast, accurate);
}

TEST(ExecTier, McdsFlowTraceBitIdentical) {
  const auto fast = profile_engine(ExecTier::kSuperblock, true);
  const auto accurate = profile_engine(ExecTier::kAccurate, true);
  EXPECT_GT(fast.trace_messages, 0u);
  expect_sessions_identical(fast, accurate);
}

// ---- execution-DAG bit identity -------------------------------------

TEST(ExecTier, DagHashBitIdentical) {
  const auto w = idle_engine(4);
  u64 hashes[2];
  std::string csv[2];
  for (const ExecTier tier : {ExecTier::kSuperblock, ExecTier::kAccurate}) {
    soc::SocConfig config = test::small_config();
    config.exec_tier = tier;
    soc::Soc soc(config);
    profiling::ExecutionDag dag{isa::SymbolMap(w.program)};
    soc.set_frame_observer(&dag);
    ASSERT_TRUE(workload::install_engine(soc, w).is_ok());
    soc.run(5'000'000);
    EXPECT_TRUE(soc.tc().halted());
    const unsigned i = tier == ExecTier::kSuperblock ? 0 : 1;
    hashes[i] = dag.analysis().hash;
    csv[i] = dag.to_csv();
  }
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(csv[0], csv[1]);
}

// ---- fault-campaign determinism -------------------------------------

u64 campaign_hash(ExecTier tier, unsigned jobs) {
  workload::EngineOptions opt;
  opt.crank_time_scale = 100;
  opt.rpm = 3000;
  opt.idle_background = true;
  opt.halt_after_revs = 3;
  auto engine = workload::build_engine_workload(opt);
  EXPECT_TRUE(engine.is_ok());

  soc::SocConfig chip = test::small_config();
  chip.exec_tier = tier;

  optimize::WorkloadCase wc;
  wc.name = "engine-idle";
  wc.program = engine.value().program;
  wc.tc_entry = engine.value().tc_entry;
  wc.pcp_entry = engine.value().pcp_entry;
  wc.configure = [options = engine.value().options](soc::Soc& soc) {
    workload::configure_engine(soc, options);
  };
  wc.max_cycles = 400'000;

  optimize::FaultCampaign campaign(chip, std::move(wc));
  campaign.set_jobs(jobs);
  const auto plan = campaign.make_scenarios(7, 8);
  return campaign.run(plan).classification_hash();
}

TEST(ExecTier, FaultCampaignHashIdenticalAcrossTiersAndJobs) {
  const u64 reference = campaign_hash(ExecTier::kAccurate, 1);
  for (const unsigned jobs : {1u, 2u, 8u}) {
    EXPECT_EQ(campaign_hash(ExecTier::kSuperblock, jobs), reference)
        << "jobs=" << jobs;
  }
}

// ---- self-modifying code --------------------------------------------

// A loop that patches one of its own instructions mid-run: the word at
// patch_dst starts as a nop and is overwritten (a guest store into the
// executing superblock's address range) with "add d5, d5, d1" once the
// counter reaches 200. d5 then counts the remaining 200 iterations.
constexpr std::string_view kSelfModifying = R"(
    .text 0xC8000000
main:
    movd d0, 0            ; iteration counter
    movd d1, 1
    movd d2, 400          ; total iterations
    movd d3, 200          ; patch once, at iteration 200
    movd d5, 0            ; counts executions of the patched op
    movha a15, 0xC800
    lea  a2, [a15+lo(patch_src)]
    lea  a3, [a15+lo(patch_dst)]
    ld.w d4, [a2+0]       ; the replacement instruction word
loop:
    add  d0, d0, d1
patch_dst:
    nop                   ; becomes "add d5, d5, d1" mid-run
    jne  d0, d3, skip
    st.w d4, [a3+0]       ; store into the hot code region
skip:
    jne  d0, d2, loop
    halt
patch_src:
    add  d5, d5, d1
)";

TEST(ExecTier, SelfModifyingCodeBitIdentical) {
  // Both tiers must observe the patch at the same cycle: the superblock
  // covering the loop is invalidated by the store and rebuilt from the
  // patched words on re-entry.
  auto program = isa::assemble(kSelfModifying);
  ASSERT_TRUE(program.is_ok()) << program.status().to_string();
  Observed results[2];
  for (const ExecTier tier : {ExecTier::kSuperblock, ExecTier::kAccurate}) {
    soc::SocConfig config = test::small_config();
    config.exec_tier = tier;
    soc::Soc soc(config);
    FrameHasher hasher;
    soc.set_frame_observer(&hasher);
    ASSERT_TRUE(soc.load(program.value()).is_ok());
    soc.reset(program.value().entry());
    const unsigned i = tier == ExecTier::kSuperblock ? 0 : 1;
    results[i].steps = soc.run(5'000'000);
    results[i].cycles = soc.cycle();
    results[i].retired = soc.tc().retired();
    results[i].halted = soc.tc().halted();
    results[i].frames = hasher.frames;
    results[i].frame_hash = hasher.hash;
    EXPECT_TRUE(soc.tc().halted());
    EXPECT_EQ(soc.tc().d(0), 400u);
    EXPECT_EQ(soc.tc().d(5), 200u);  // patched op ran for the back half
    if (tier == ExecTier::kSuperblock) {
      // The fast tier really was active on this code, and the store
      // really did drop predecoded chunks.
      EXPECT_GT(soc.superblocks().stats().builds, 0u);
      EXPECT_GT(soc.superblocks().stats().invalidations, 0u);
    }
  }
  EXPECT_EQ(results[0].steps, results[1].steps);
  EXPECT_EQ(results[0].cycles, results[1].cycles);
  EXPECT_EQ(results[0].retired, results[1].retired);
  EXPECT_EQ(results[0].frames, results[1].frames);
  EXPECT_EQ(results[0].frame_hash, results[1].frame_hash);
}

// ---- snapshot / restore invalidation --------------------------------

// Two same-shape programs at the same PSPR address whose loop bodies
// differ in exactly one instruction (version B runs the d5 accumulator
// twice per iteration).
constexpr std::string_view kLoopA = R"(
    .text 0xC8000000
main:
    movd d0, 0
    movd d1, 1
    movd d2, 100
    movd d5, 0
loop:
    add  d0, d0, d1
    add  d5, d5, d1
    nop
    jne  d0, d2, loop
    halt
)";

constexpr std::string_view kLoopB = R"(
    .text 0xC8000000
main:
    movd d0, 0
    movd d1, 1
    movd d2, 100
    movd d5, 0
loop:
    add  d0, d0, d1
    add  d5, d5, d1
    add  d5, d5, d1
    jne  d0, d2, loop
    halt
)";

TEST(ExecTier, RestoreSnapshotDropsStaleSuperblocks) {
  // restore_state rewrites code memory *without* going through the
  // store-path write listener, so the restore itself must drop every
  // predecoded chunk. If it didn't, the fast tier would keep executing
  // program B's decodes after the machine was restored to program A.
  auto a = isa::assemble(kLoopA);
  auto b = isa::assemble(kLoopB);
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  ASSERT_TRUE(b.is_ok()) << b.status().to_string();

  soc::SocConfig config = test::small_config();
  config.exec_tier = ExecTier::kSuperblock;
  soc::Soc soc(config);

  // Run program A to halt and snapshot the halted (quiescent) machine.
  ASSERT_TRUE(soc.load(a.value()).is_ok());
  soc.reset(a.value().entry());
  soc.run(1'000'000);
  ASSERT_TRUE(soc.tc().halted());
  EXPECT_EQ(soc.tc().d(5), 100u);
  const u64 cycles_a = soc.cycle();
  auto snap = soc.save_snapshot();
  ASSERT_TRUE(snap.is_ok()) << snap.status().to_string();

  // Run program B at the same address: its superblocks now populate the
  // cache for the very PCs program A uses.
  ASSERT_TRUE(soc.load(b.value()).is_ok());
  soc.reset(b.value().entry());
  soc.run(1'000'000);
  ASSERT_TRUE(soc.tc().halted());
  EXPECT_EQ(soc.tc().d(5), 200u);
  EXPECT_GT(soc.superblocks().stats().builds, 0u);

  // Restore to the post-A image and rerun from entry: the machine must
  // execute A's code (d5 == 100), not B's stale decodes (d5 == 200).
  ASSERT_TRUE(soc.restore_snapshot(snap.value()).is_ok());
  soc.reset(a.value().entry());
  soc.run(1'000'000);
  ASSERT_TRUE(soc.tc().halted());
  EXPECT_EQ(soc.tc().d(0), 100u);
  EXPECT_EQ(soc.tc().d(5), 100u);
  EXPECT_EQ(soc.cycle(), cycles_a);
}

}  // namespace
}  // namespace audo
