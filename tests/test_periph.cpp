// Peripheral tests: interrupt router semantics, STM, watchdog, crank
// wheel, ADC, CAN-lite and the DMA controller.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mem/memory_map.hpp"
#include "periph/dma.hpp"
#include "periph/irq_router.hpp"
#include "periph/peripherals.hpp"

namespace audo::periph {
namespace {

TEST(IrqRouter, PriorityAndTargetSelection) {
  IrqRouter router;
  const unsigned low = router.add_source("low");
  const unsigned high = router.add_source("high");
  const unsigned pcp_src = router.add_source("pcp");
  router.configure(low, 5, IrqTarget::kTc);
  router.configure(high, 9, IrqTarget::kTc);
  router.configure(pcp_src, 7, IrqTarget::kPcp);

  EXPECT_FALSE(router.tc_view().pending().has_value());
  router.post(low);
  router.post(high);
  router.post(pcp_src);
  EXPECT_EQ(router.tc_view().pending(), 9);
  EXPECT_EQ(router.pcp_view().pending(), 7);

  router.tc_view().acknowledge(9);
  EXPECT_EQ(router.tc_view().pending(), 5);
  router.tc_view().acknowledge(5);
  EXPECT_FALSE(router.tc_view().pending().has_value());
  EXPECT_EQ(router.node(high).serviced, 1u);
}

TEST(IrqRouter, LostPostsAreCounted) {
  IrqRouter router;
  const unsigned src = router.add_source("x");
  router.configure(src, 3, IrqTarget::kTc);
  router.post(src);
  router.post(src);  // still pending -> lost
  router.post(src);
  EXPECT_EQ(router.node(src).posted, 3u);
  EXPECT_EQ(router.node(src).lost, 2u);
}

TEST(IrqRouter, DisabledNodeNeverDelivers) {
  IrqRouter router;
  const unsigned src = router.add_source("x");
  router.configure(src, 3, IrqTarget::kTc, /*enabled=*/false);
  router.post(src);
  EXPECT_FALSE(router.tc_view().pending().has_value());
}

TEST(Stm, ComparePeriodsFire) {
  IrqRouter router;
  const unsigned c0 = router.add_source("c0");
  const unsigned c1 = router.add_source("c1");
  router.configure(c0, 1, IrqTarget::kTc);
  router.configure(c1, 2, IrqTarget::kTc);
  Stm stm(&router, c0, c1);
  stm.write_sfr(0x08, 10);  // CMP0
  stm.write_sfr(0x10, 1);   // enable cmp0 only
  for (Cycle now = 1; now <= 35; ++now) stm.step(now);
  EXPECT_EQ(router.node(c0).posted, 3u);
  EXPECT_EQ(router.node(c1).posted, 0u);
  EXPECT_EQ(stm.read_sfr(0x00), 35u);
}

TEST(Watchdog, TimesOutWithoutServiceAndHoldsWithIt) {
  IrqRouter router;
  const unsigned src = router.add_source("wdt");
  router.configure(src, 1, IrqTarget::kTc);
  Watchdog wdt(&router, src);
  wdt.write_sfr(0x04, 100);  // period
  for (Cycle now = 1; now <= 90; ++now) {
    wdt.step(now);
    if (now % 50 == 0) wdt.write_sfr(0x00, Watchdog::kServiceKey);
  }
  EXPECT_EQ(wdt.timeouts(), 0u);
  // Stop servicing.
  for (Cycle now = 91; now <= 400; ++now) wdt.step(now);
  EXPECT_GE(wdt.timeouts(), 2u);
  EXPECT_GE(router.node(src).posted, 2u);
}

TEST(Watchdog, WrongKeyDoesNotService) {
  IrqRouter router;
  const unsigned src = router.add_source("wdt");
  router.configure(src, 1, IrqTarget::kTc);
  Watchdog wdt(&router, src);
  wdt.write_sfr(0x04, 50);
  for (Cycle now = 1; now <= 49; ++now) {
    wdt.step(now);
    wdt.write_sfr(0x00, 0x1234);  // wrong key every cycle
  }
  wdt.step(50);
  EXPECT_EQ(wdt.timeouts(), 1u);
}

TEST(Watchdog, WindowRejectsEarlyService) {
  IrqRouter router;
  const unsigned src = router.add_source("wdt");
  router.configure(src, 1, IrqTarget::kTc);
  Watchdog wdt(&router, src);
  wdt.write_sfr(0x04, 100);  // period
  wdt.write_sfr(0x08, 40);   // window: service legal only in the last 40
  EXPECT_EQ(wdt.read_sfr(0x08), 40u);
  for (Cycle now = 1; now <= 30; ++now) wdt.step(now);
  // remaining = 70 > window: too early -> violation alarm, not a service.
  wdt.write_sfr(0x00, Watchdog::kServiceKey);
  EXPECT_EQ(wdt.early_services(), 1u);
  EXPECT_EQ(wdt.timeouts(), 1u);
  EXPECT_EQ(router.node(src).posted, 1u);
}

TEST(Watchdog, WindowAcceptsInWindowService) {
  IrqRouter router;
  const unsigned src = router.add_source("wdt");
  router.configure(src, 1, IrqTarget::kTc);
  Watchdog wdt(&router, src);
  wdt.write_sfr(0x04, 100);
  wdt.write_sfr(0x08, 40);
  // Service every 80 cycles starting at 70: the counter is at 30, then
  // 20, when the write lands — always inside the 40-cycle window and
  // never allowed to reach 0.
  for (Cycle now = 1; now <= 350; ++now) {
    wdt.step(now);
    if (now % 80 == 70) wdt.write_sfr(0x00, Watchdog::kServiceKey);
  }
  EXPECT_EQ(wdt.early_services(), 0u);
  EXPECT_EQ(wdt.timeouts(), 0u);
  EXPECT_EQ(router.node(src).posted, 0u);
}

TEST(Watchdog, WrongMagicWordIsCountedAndDoesNotReload) {
  IrqRouter router;
  const unsigned src = router.add_source("wdt");
  router.configure(src, 1, IrqTarget::kTc);
  Watchdog wdt(&router, src);
  wdt.write_sfr(0x04, 50);
  for (Cycle now = 1; now <= 49; ++now) {
    wdt.step(now);
    wdt.write_sfr(0x00, 0xDEAD);  // wrong magic word every cycle
  }
  EXPECT_EQ(wdt.timeouts(), 0u);
  wdt.step(50);  // counter was never reloaded
  EXPECT_EQ(wdt.timeouts(), 1u);
  EXPECT_EQ(wdt.bad_services(), 49u);
  EXPECT_EQ(wdt.early_services(), 0u);
}

TEST(Watchdog, TimeoutIrqIsDeliveredAtConfiguredPriority) {
  IrqRouter router;
  const unsigned src = router.add_source("wdt");
  router.configure(src, 11, IrqTarget::kTc);
  Watchdog wdt(&router, src);
  wdt.write_sfr(0x04, 25);  // late service: never serviced at all
  for (Cycle now = 1; now <= 25; ++now) wdt.step(now);
  EXPECT_EQ(wdt.timeouts(), 1u);
  ASSERT_TRUE(router.tc_view().pending().has_value());
  EXPECT_EQ(router.tc_view().pending(), 11);
  router.tc_view().acknowledge(11);
  EXPECT_EQ(router.node(src).serviced, 1u);
}

TEST(CrankWheel, ToothAndSyncPattern) {
  IrqRouter router;
  const unsigned tooth = router.add_source("tooth");
  const unsigned sync = router.add_source("sync");
  router.configure(tooth, 1, IrqTarget::kTc);
  router.configure(sync, 2, IrqTarget::kTc);
  CrankWheel::Config cfg;
  cfg.clock_hz = 60'000;  // tiny clock for testing
  cfg.teeth = 60;
  cfg.missing = 2;
  cfg.initial_rpm = 60;  // 1 rev/s -> 60 teeth/s -> 1000 cycles/tooth
  CrankWheel crank(cfg, &router, tooth, sync);

  // Two full revolutions.
  for (Cycle now = 1; now <= 2 * 60 * 1000; ++now) crank.step(now);
  EXPECT_EQ(crank.revolutions(), 2u);
  EXPECT_EQ(router.node(sync).posted, 2u);
  // 58 physical teeth per rev (2 missing).
  EXPECT_EQ(router.node(tooth).posted, 2u * 58u);
}

TEST(CrankWheel, RpmChangesPeriod) {
  IrqRouter router;
  const unsigned tooth = router.add_source("tooth");
  const unsigned sync = router.add_source("sync");
  router.configure(tooth, 1, IrqTarget::kTc);
  CrankWheel::Config cfg;
  cfg.clock_hz = 1'000'000;
  cfg.initial_rpm = 1000;
  CrankWheel crank(cfg, &router, tooth, sync);
  for (Cycle now = 1; now <= 100'000; ++now) crank.step(now);
  const u64 slow = router.node(tooth).posted;
  crank.write_sfr(0x00, 4000);  // 4x faster via SFR
  for (Cycle now = 100'001; now <= 200'000; ++now) crank.step(now);
  const u64 fast = router.node(tooth).posted - slow;
  EXPECT_GT(fast, slow * 3);
  EXPECT_EQ(crank.read_sfr(0x00), 4000u);
}

TEST(Adc, AutoTriggerAndResultWaveform) {
  IrqRouter router;
  const unsigned done = router.add_source("adc");
  router.configure(done, 1, IrqTarget::kTc);
  Adc adc(Adc::Config{.conversion_cycles = 10, .period = 100}, &router, done);
  for (Cycle now = 1; now <= 1000; ++now) adc.step(now);
  EXPECT_GE(adc.conversions(), 9u);
  EXPECT_GT(adc.last_result(), 1000u);  // waveform floor
  EXPECT_LT(adc.last_result(), 3000u);
}

TEST(Adc, SoftwareTrigger) {
  IrqRouter router;
  const unsigned done = router.add_source("adc");
  router.configure(done, 1, IrqTarget::kTc);
  Adc adc(Adc::Config{.conversion_cycles = 10, .period = 0}, &router, done);
  for (Cycle now = 1; now <= 50; ++now) adc.step(now);
  EXPECT_EQ(adc.conversions(), 0u);
  adc.write_sfr(0x00, 1);
  for (Cycle now = 51; now <= 70; ++now) adc.step(now);
  EXPECT_EQ(adc.conversions(), 1u);
}

TEST(CanLite, RxPeriodicAndOverrun) {
  IrqRouter router;
  const unsigned rx = router.add_source("rx");
  const unsigned tx = router.add_source("tx");
  router.configure(rx, 1, IrqTarget::kTc);
  CanLite can(CanLite::Config{.tx_cycles = 20, .rx_period = 50}, &router, rx, tx);
  for (Cycle now = 1; now <= 500; ++now) can.step(now);
  EXPECT_GE(can.rx_frames(), 9u);
  // Nobody read RX_DATA -> overruns.
  EXPECT_GE(can.rx_overruns(), 8u);
  // Reading clears pending.
  EXPECT_EQ(can.read_sfr(0x0C), 1u);
  can.read_sfr(0x08);
  EXPECT_EQ(can.read_sfr(0x0C), 0u);
}

TEST(CanLite, TxDelayAndIrq) {
  IrqRouter router;
  const unsigned rx = router.add_source("rx");
  const unsigned tx = router.add_source("tx");
  router.configure(tx, 1, IrqTarget::kTc);
  CanLite can(CanLite::Config{.tx_cycles = 30, .rx_period = 0}, &router, rx, tx);
  can.step(1);
  can.write_sfr(0x00, 0xAB);  // trigger TX
  EXPECT_EQ(can.read_sfr(0x04), 1u);  // busy
  for (Cycle now = 2; now <= 40; ++now) can.step(now);
  EXPECT_EQ(can.tx_frames(), 1u);
  EXPECT_EQ(can.read_sfr(0x04), 0u);
  EXPECT_EQ(router.node(tx).posted, 1u);
}

// ---------------------------------------------------------------------
// DMA, on a real SoC (needs the bus).

TEST(Dma, MemoryToMemoryBlockTransfer) {
  soc::Soc soc(test::small_config());
  // Source data in LMU.
  for (u32 i = 0; i < 8; ++i) {
    soc.lmu().array().write32(i * 4, 0x1000 + i);
  }
  DmaController::ChannelConfig cfg;
  cfg.src = mem::kLmuBase;
  cfg.dst = mem::kDsprBase + 0x100;
  cfg.count = 8;
  cfg.units_per_trigger = 0;  // free running
  soc.dma().setup_channel(0, cfg);
  soc.reset(0x80000000);  // TC halts immediately on garbage; DMA still runs
  for (int i = 0; i < 200; ++i) soc.step();
  for (u32 i = 0; i < 8; ++i) {
    EXPECT_EQ(soc.dspr().read(mem::kDsprBase + 0x100 + i * 4, 4), 0x1000 + i);
  }
  EXPECT_EQ(soc.dma().stats(0).units, 8u);
  EXPECT_EQ(soc.dma().stats(0).blocks, 1u);
  EXPECT_TRUE(soc.dma().channel_idle(0));
}

TEST(Dma, TriggeredPerUnitTransfer) {
  soc::Soc soc(test::small_config());
  DmaController::ChannelConfig cfg;
  cfg.src = mem::kLmuBase;
  cfg.dst = mem::kDsprBase;
  cfg.count = 4;
  cfg.units_per_trigger = 1;
  soc.dma().setup_channel(0, cfg);
  soc.reset(0x80000000);
  for (int i = 0; i < 50; ++i) soc.step();
  EXPECT_EQ(soc.dma().stats(0).units, 0u);  // no trigger yet
  soc.dma().trigger(0);
  for (int i = 0; i < 50; ++i) soc.step();
  EXPECT_EQ(soc.dma().stats(0).units, 1u);
  soc.dma().trigger(0);
  soc.dma().trigger(0);
  for (int i = 0; i < 100; ++i) soc.step();
  EXPECT_EQ(soc.dma().stats(0).units, 3u);
}

TEST(Dma, RouterTriggersChannelAndDoneIrqPosts) {
  soc::Soc soc(test::small_config());
  // Route the ADC done event to DMA channel 0 (priority 1).
  soc.irq_router().configure(soc.srcs().adc_done, 1, IrqTarget::kDma);
  soc.adc().write_sfr(0x08, 100);  // auto conversions every 100 cycles
  DmaController::ChannelConfig cfg;
  cfg.src = mem::kPeriphBase + sfr::kAdc + 0x04;  // ADC RESULT
  cfg.dst = mem::kDsprBase + 0x40;
  cfg.count = 3;
  cfg.units_per_trigger = 1;
  cfg.src_step = 0;
  cfg.dst_step = 4;
  soc.dma().setup_channel(0, cfg);
  soc.dma().set_done_src(0, soc.srcs().dma_done[0]);
  soc.reset(0x80000000);
  for (int i = 0; i < 1000; ++i) soc.step();
  EXPECT_EQ(soc.dma().stats(0).units, 3u);
  EXPECT_EQ(soc.irq_router().node(soc.srcs().dma_done[0]).posted, 1u);
  // The copied values are real ADC samples.
  EXPECT_GT(soc.dspr().read(mem::kDsprBase + 0x40, 4), 1000u);
}

TEST(Dma, ContinuousReload) {
  soc::Soc soc(test::small_config());
  DmaController::ChannelConfig cfg;
  cfg.src = mem::kLmuBase;
  cfg.dst = mem::kDsprBase;
  cfg.count = 2;
  cfg.continuous = true;
  cfg.units_per_trigger = 0;
  soc.dma().setup_channel(0, cfg);
  soc.reset(0x80000000);
  for (int i = 0; i < 300; ++i) soc.step();
  EXPECT_GE(soc.dma().stats(0).blocks, 5u);
}

TEST(Dma, SfrInterfaceConfiguresChannel) {
  soc::Soc soc(test::small_config());
  DmaController& dma = soc.dma();
  dma.write_sfr(0x20 * 1 + 0x00, mem::kLmuBase);       // ch1 SRC
  dma.write_sfr(0x20 * 1 + 0x04, mem::kDsprBase + 8);  // ch1 DST
  dma.write_sfr(0x20 * 1 + 0x08, 2);                   // COUNT
  dma.write_sfr(0x20 * 1 + 0x0C, 1 | (2u << 8));       // enable, 4-byte
  soc.lmu().array().write32(0, 0xCAFED00D);
  soc.reset(0x80000000);
  for (int i = 0; i < 100; ++i) soc.step();
  EXPECT_EQ(soc.dspr().read(mem::kDsprBase + 8, 4), 0xCAFED00Du);
  EXPECT_EQ(dma.read_sfr(0x20 * 1 + 0x08), 0u);  // remaining
}

}  // namespace
}  // namespace audo::periph
