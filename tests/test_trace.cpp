// Trace codec tests: bit-exact round trips for every message kind,
// anchor/delta compression, context resets, and a randomized
// property-style stream round trip.
#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "mcds/trace.hpp"

namespace audo::mcds {
namespace {

TraceMessage sync_msg(MsgSource src, Cycle cycle, Addr pc, Addr daddr) {
  TraceMessage m;
  m.kind = MsgKind::kSync;
  m.source = src;
  m.cycle = cycle;
  m.pc = pc;
  m.addr = daddr;
  return m;
}

TEST(TraceCodec, SyncRoundTrip) {
  TraceEncoder enc;
  const TraceMessage sync =
      sync_msg(MsgSource::kTcCore, 1000, 0x80001234, 0xC0000040);
  auto decoded = TraceDecoder::decode({enc.encode(sync)});
  ASSERT_TRUE(decoded.is_ok());
  ASSERT_EQ(decoded.value().size(), 1u);
  EXPECT_EQ(decoded.value()[0].kind, MsgKind::kSync);
  EXPECT_EQ(decoded.value()[0].cycle, 1000u);
  EXPECT_EQ(decoded.value()[0].pc, 0x80001234u);
  EXPECT_EQ(decoded.value()[0].addr, 0xC0000040u);
}

TEST(TraceCodec, FlowDeltaCompression) {
  TraceEncoder enc;
  std::vector<EncodedMessage> units;
  units.push_back(enc.encode(sync_msg(MsgSource::kTcCore, 100, 0x80001000, 0)));

  TraceMessage flow;
  flow.kind = MsgKind::kFlow;
  flow.source = MsgSource::kTcCore;
  flow.cycle = 108;
  flow.pc = 0x80001010;  // 4 words past the anchor: tiny delta
  flow.instr_count = 6;
  const EncodedMessage encoded = enc.encode(flow);
  // kind+src (5) + ts flag+varint(8)->9 + count varint (4) + abs flag (1)
  // + zigzag-delta varint(8)->8 = 27 bits -> 4 bytes.
  EXPECT_LE(encoded.size(), 4u);
  units.push_back(encoded);

  auto decoded = TraceDecoder::decode(units);
  ASSERT_TRUE(decoded.is_ok());
  const TraceMessage& out = decoded.value()[1];
  EXPECT_EQ(out.kind, MsgKind::kFlow);
  EXPECT_EQ(out.cycle, 108u);
  EXPECT_EQ(out.pc, 0x80001010u);
  EXPECT_EQ(out.instr_count, 6u);
}

TEST(TraceCodec, FlowBackwardTarget) {
  TraceEncoder enc;
  std::vector<EncodedMessage> units;
  units.push_back(enc.encode(sync_msg(MsgSource::kTcCore, 100, 0x80001000, 0)));
  TraceMessage flow;
  flow.kind = MsgKind::kFlow;
  flow.source = MsgSource::kTcCore;
  flow.cycle = 101;
  flow.pc = 0x80000F00;  // backward (loop)
  flow.instr_count = 2;
  units.push_back(enc.encode(flow));
  auto decoded = TraceDecoder::decode(units);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value()[1].pc, 0x80000F00u);
}

TEST(TraceCodec, AbsoluteEncodingWithoutAnchor) {
  TraceEncoder enc;  // never saw a sync
  TraceMessage flow;
  flow.kind = MsgKind::kFlow;
  flow.source = MsgSource::kTcCore;
  flow.cycle = 12345;
  flow.pc = 0xDEADBEE0;
  flow.instr_count = 1;
  auto decoded = TraceDecoder::decode({enc.encode(flow)});
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value()[0].pc, 0xDEADBEE0u);
  EXPECT_EQ(decoded.value()[0].cycle, 12345u);
}

TEST(TraceCodec, DataMessageAllFields) {
  TraceEncoder enc;
  std::vector<EncodedMessage> units;
  units.push_back(
      enc.encode(sync_msg(MsgSource::kTcCore, 50, 0x80000000, 0xC0000100)));
  for (const u8 bytes : {1, 2, 4}) {
    for (const bool write : {false, true}) {
      TraceMessage data;
      data.kind = MsgKind::kData;
      data.source = MsgSource::kTcCore;
      data.cycle = 55;
      data.addr = 0xC0000104;
      data.value = 0xAB;
      data.write = write;
      data.bytes = bytes;
      units.push_back(enc.encode(data));
    }
  }
  auto decoded = TraceDecoder::decode(units);
  ASSERT_TRUE(decoded.is_ok());
  usize i = 1;
  for (const u8 bytes : {1, 2, 4}) {
    for (const bool write : {false, true}) {
      const TraceMessage& m = decoded.value()[i++];
      EXPECT_EQ(m.addr, 0xC0000104u);
      EXPECT_EQ(m.value, 0xABu);
      EXPECT_EQ(m.write, write);
      EXPECT_EQ(m.bytes, bytes);
    }
  }
}

TEST(TraceCodec, RateTickIrqWatchpointOverflow) {
  TraceEncoder enc;
  std::vector<EncodedMessage> units;
  std::vector<TraceMessage> inputs;

  TraceMessage rate;
  rate.kind = MsgKind::kRate;
  rate.source = MsgSource::kChip;
  rate.cycle = 1000;
  rate.group = 3;
  rate.basis = 100;
  rate.counts = {5, 0, 99, 1234};
  inputs.push_back(rate);

  TraceMessage tick;
  tick.kind = MsgKind::kTick;
  tick.source = MsgSource::kTcCore;
  tick.cycle = 1001;
  tick.instr_count = 3;
  inputs.push_back(tick);

  TraceMessage irq;
  irq.kind = MsgKind::kIrq;
  irq.source = MsgSource::kTcCore;
  irq.cycle = 1002;
  irq.irq_entry = true;
  irq.id = 40;
  inputs.push_back(irq);

  TraceMessage wp;
  wp.kind = MsgKind::kWatchpoint;
  wp.source = MsgSource::kChip;
  wp.cycle = 1003;
  wp.id = 9;
  inputs.push_back(wp);

  TraceMessage ovf;
  ovf.kind = MsgKind::kOverflow;
  ovf.source = MsgSource::kChip;
  ovf.cycle = 1004;
  inputs.push_back(ovf);

  for (const TraceMessage& m : inputs) units.push_back(enc.encode(m));
  auto decoded = TraceDecoder::decode(units);
  ASSERT_TRUE(decoded.is_ok());
  ASSERT_EQ(decoded.value().size(), inputs.size());
  EXPECT_EQ(decoded.value()[0].counts, (std::vector<u32>{5, 0, 99, 1234}));
  EXPECT_EQ(decoded.value()[0].basis, 100u);
  EXPECT_EQ(decoded.value()[1].instr_count, 3u);
  EXPECT_EQ(decoded.value()[2].id, 40);
  EXPECT_TRUE(decoded.value()[2].irq_entry);
  EXPECT_EQ(decoded.value()[3].id, 9);
  EXPECT_EQ(decoded.value()[4].kind, MsgKind::kOverflow);
  for (usize i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(decoded.value()[i].cycle, inputs[i].cycle);
  }
}

TEST(TraceCodec, DroppedMessagesDoNotCorruptLaterOnes) {
  // Deltas are anchored at syncs, so removing intermediate messages (ring
  // overwrite) must leave later messages decodable.
  TraceEncoder enc;
  std::vector<EncodedMessage> all;
  all.push_back(enc.encode(sync_msg(MsgSource::kTcCore, 10, 0x80000000, 0)));
  for (int i = 1; i <= 5; ++i) {
    TraceMessage flow;
    flow.kind = MsgKind::kFlow;
    flow.source = MsgSource::kTcCore;
    flow.cycle = 10 + i;
    flow.pc = 0x80000000 + i * 16;
    flow.instr_count = 4;
    all.push_back(enc.encode(flow));
  }
  // Drop messages 1..3 (keep sync + last two flows).
  std::vector<EncodedMessage> kept = {all[0], all[4], all[5]};
  auto decoded = TraceDecoder::decode(kept);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value()[1].pc, 0x80000040u);
  EXPECT_EQ(decoded.value()[2].pc, 0x80000050u);
  EXPECT_EQ(decoded.value()[1].cycle, 14u);
}

TEST(TraceCodec, PerCoreAnchorsAreIndependent) {
  TraceEncoder enc;
  std::vector<EncodedMessage> units;
  units.push_back(enc.encode(sync_msg(MsgSource::kTcCore, 10, 0x80000000, 0)));
  units.push_back(enc.encode(sync_msg(MsgSource::kPcpCore, 11, 0xD0000000, 0)));
  TraceMessage tc_flow;
  tc_flow.kind = MsgKind::kFlow;
  tc_flow.source = MsgSource::kTcCore;
  tc_flow.cycle = 12;
  tc_flow.pc = 0x80000020;
  units.push_back(enc.encode(tc_flow));
  TraceMessage pcp_flow;
  pcp_flow.kind = MsgKind::kFlow;
  pcp_flow.source = MsgSource::kPcpCore;
  pcp_flow.cycle = 13;
  pcp_flow.pc = 0xD0000040;
  units.push_back(enc.encode(pcp_flow));
  auto decoded = TraceDecoder::decode(units);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value()[2].pc, 0x80000020u);
  EXPECT_EQ(decoded.value()[3].pc, 0xD0000040u);
}

TEST(TraceCodec, ResetAnchorsForcesAbsoluteButStaysDecodable) {
  TraceEncoder enc;
  std::vector<EncodedMessage> units;
  units.push_back(enc.encode(sync_msg(MsgSource::kTcCore, 10, 0x80000000, 0)));
  enc.reset_anchors();  // overflow happened
  TraceMessage flow;
  flow.kind = MsgKind::kFlow;
  flow.source = MsgSource::kTcCore;
  flow.cycle = 20;
  flow.pc = 0x80000100;
  units.push_back(enc.encode(flow));
  // Decoder still has its anchor (it saw the sync) but the message is
  // encoded absolutely, so it must decode correctly either way.
  auto decoded = TraceDecoder::decode(units);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value()[1].pc, 0x80000100u);
  EXPECT_EQ(decoded.value()[1].cycle, 20u);
}

TEST(TraceCodec, RandomStreamRoundTripProperty) {
  Prng prng(2024);
  TraceEncoder enc;
  std::vector<EncodedMessage> units;
  std::vector<TraceMessage> inputs;
  Cycle cycle = 100;
  Addr pc = 0x80000000;

  for (int i = 0; i < 2000; ++i) {
    cycle += prng.next_below(50);
    TraceMessage m;
    m.cycle = cycle;
    m.source = prng.chance(0.2) ? MsgSource::kPcpCore : MsgSource::kTcCore;
    const u64 pick = prng.next_below(10);
    if (pick < 2 || i == 0) {
      m.kind = MsgKind::kSync;
      m.pc = 0x80000000 + static_cast<Addr>(prng.next_below(1 << 20)) * 4;
      m.addr = 0xC0000000 + static_cast<Addr>(prng.next_below(1 << 16));
      pc = m.pc;
    } else if (pick < 6) {
      m.kind = MsgKind::kFlow;
      pc = pc + static_cast<Addr>(prng.next_range(-2000, 2000)) * 4;
      m.pc = pc;
      m.instr_count = static_cast<u32>(prng.next_below(200));
    } else if (pick < 8) {
      m.kind = MsgKind::kData;
      m.addr = 0xC0000000 + static_cast<Addr>(prng.next_below(1 << 16));
      m.value = prng.next_u32();
      m.write = prng.chance(0.5);
      m.bytes = static_cast<u8>(1u << prng.next_below(3));
    } else {
      m.kind = MsgKind::kRate;
      m.source = MsgSource::kChip;
      m.group = static_cast<u8>(prng.next_below(8));
      m.basis = static_cast<u32>(1 + prng.next_below(10000));
      const unsigned n = 1 + static_cast<unsigned>(prng.next_below(8));
      for (unsigned k = 0; k < n; ++k) {
        m.counts.push_back(static_cast<u32>(prng.next_below(100000)));
      }
    }
    inputs.push_back(m);
    units.push_back(enc.encode(m));
  }
  auto decoded = TraceDecoder::decode(units);
  ASSERT_TRUE(decoded.is_ok());
  ASSERT_EQ(decoded.value().size(), inputs.size());
  for (usize i = 0; i < inputs.size(); ++i) {
    const TraceMessage& in = inputs[i];
    const TraceMessage& out = decoded.value()[i];
    EXPECT_EQ(out.kind, in.kind) << i;
    EXPECT_EQ(out.cycle, in.cycle) << i;
    switch (in.kind) {
      case MsgKind::kSync:
      case MsgKind::kFlow:
        EXPECT_EQ(out.pc, in.pc) << i;
        break;
      case MsgKind::kData:
        EXPECT_EQ(out.addr, in.addr) << i;
        EXPECT_EQ(out.value, in.value) << i;
        EXPECT_EQ(out.write, in.write) << i;
        EXPECT_EQ(out.bytes, in.bytes) << i;
        break;
      case MsgKind::kRate:
        EXPECT_EQ(out.counts, in.counts) << i;
        EXPECT_EQ(out.basis, in.basis) << i;
        break;
      default:
        break;
    }
  }
  // Compression sanity: the stream must be far smaller than naive
  // 16-byte-per-message encodings.
  EXPECT_LT(enc.bytes_encoded(), inputs.size() * 12);
}

TEST(TraceCodec, DecodeRejectsGarbage) {
  EncodedMessage junk;
  junk.bytes = {0xFF, 0xFF};  // kind 7 = overflow, then trailing bits: fine
  // A truly empty unit is an error.
  EncodedMessage empty;
  auto decoded = TraceDecoder::decode({empty});
  EXPECT_FALSE(decoded.is_ok());
}

// ---- error paths (corrupted EMEM dumps, partial DAP downloads) -------

TEST(TraceCodec, TruncatedUnitIsDecodeErrorNotGarbage) {
  // Chop a valid sync unit at every possible byte boundary: each prefix
  // must come back as kDecodeError (the BitReader latches overrun and
  // the decoder refuses to emit the zero-filled message), never decode
  // into a bogus message and never touch out-of-range memory.
  TraceEncoder enc;
  const EncodedMessage full =
      enc.encode(sync_msg(MsgSource::kTcCore, 123456, 0x80001234, 0xC0000040));
  ASSERT_GT(full.bytes.size(), 1u);
  for (usize keep = 0; keep + 1 < full.bytes.size(); ++keep) {
    EncodedMessage cut;
    cut.bytes.assign(full.bytes.begin(), full.bytes.begin() + keep);
    auto decoded = TraceDecoder::decode({cut});
    ASSERT_FALSE(decoded.is_ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(decoded.status().code(), StatusCode::kDecodeError);
  }
  // The untruncated unit still decodes.
  auto ok = TraceDecoder::decode({full});
  ASSERT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.value()[0].pc, 0x80001234u);
}

TEST(TraceCodec, TruncatedMidStreamUnitFailsWholeDecode) {
  // A damaged unit in the middle of an otherwise good stream: the decode
  // reports the error instead of silently resynchronizing past it (the
  // host cannot know how many messages the hole swallowed).
  TraceEncoder enc;
  std::vector<EncodedMessage> units;
  units.push_back(enc.encode(sync_msg(MsgSource::kTcCore, 10, 0x80000000, 0)));
  TraceMessage data;
  data.kind = MsgKind::kData;
  data.source = MsgSource::kTcCore;
  data.cycle = 12;
  data.addr = 0xC0000104;
  data.value = 0xDEADBEEF;
  data.write = true;
  data.bytes = 4;
  EncodedMessage damaged = enc.encode(data);
  ASSERT_GT(damaged.bytes.size(), 1u);
  damaged.bytes.pop_back();
  units.push_back(damaged);
  auto decoded = TraceDecoder::decode(units);
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDecodeError);
}

TEST(TraceCodec, BadSourceFieldIsDecodeError) {
  // kSourceBits = 2 but only sources 0..2 exist; raw source 3 must be
  // rejected (it would otherwise index past the decoder's anchor array).
  EncodedMessage unit;
  // Bits LSB-first: kind = 0 (kSync, 3 bits), source = 3 (2 bits), then
  // plausible varint payload so only the source field is at fault.
  unit.bytes = {0b0001'1000, 0x00, 0x00, 0x00};
  auto decoded = TraceDecoder::decode({unit});
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDecodeError);
}

TEST(TraceCodec, DecodeAfterLostAnchorResyncs) {
  // Ring overflow drops the sync that anchored a core's deltas. The
  // encoder signals this (kOverflow + reset_anchors) and re-anchors with
  // a fresh sync; decoding the post-overflow tail alone — the realistic
  // EMEM download shape — must reproduce the re-anchored stream exactly.
  TraceEncoder enc;
  std::vector<EncodedMessage> tail;
  // Pre-overflow traffic whose units never reach the host.
  enc.encode(sync_msg(MsgSource::kTcCore, 10, 0x80000000, 0xC0000000));
  TraceMessage lost_flow;
  lost_flow.kind = MsgKind::kFlow;
  lost_flow.source = MsgSource::kTcCore;
  lost_flow.cycle = 14;
  lost_flow.pc = 0x80000020;
  enc.encode(lost_flow);

  TraceMessage ovf;
  ovf.kind = MsgKind::kOverflow;
  ovf.source = MsgSource::kChip;
  ovf.cycle = 500;
  enc.reset_anchors();
  tail.push_back(enc.encode(ovf));
  tail.push_back(
      enc.encode(sync_msg(MsgSource::kTcCore, 510, 0x80002000, 0xC0000200)));
  TraceMessage flow;
  flow.kind = MsgKind::kFlow;
  flow.source = MsgSource::kTcCore;
  flow.cycle = 515;
  flow.pc = 0x80002040;  // small delta against the *new* anchor
  flow.instr_count = 9;
  tail.push_back(enc.encode(flow));

  auto decoded = TraceDecoder::decode(tail);
  ASSERT_TRUE(decoded.is_ok());
  ASSERT_EQ(decoded.value().size(), 3u);
  EXPECT_EQ(decoded.value()[0].kind, MsgKind::kOverflow);
  EXPECT_EQ(decoded.value()[1].pc, 0x80002000u);
  EXPECT_EQ(decoded.value()[2].pc, 0x80002040u);
  EXPECT_EQ(decoded.value()[2].cycle, 515u);
  EXPECT_EQ(decoded.value()[2].instr_count, 9u);
}

}  // namespace
}  // namespace audo::mcds
