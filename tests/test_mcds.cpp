// MCDS logic tests: event mux, comparators, Boolean equations, the
// trigger FSM, the counter bank (rates, thresholds, cascading) and the
// top-level Mcds message generation.
#include <gtest/gtest.h>

#include "mcds/counters.hpp"
#include "mcds/events.hpp"
#include "mcds/mcds.hpp"
#include "mcds/trigger.hpp"

namespace audo::mcds {
namespace {

ObservationFrame frame_at(Cycle cycle) {
  ObservationFrame f;
  f.cycle = cycle;
  f.tc.present = true;
  return f;
}

TEST(Events, ValuesReflectFrame) {
  ObservationFrame f = frame_at(10);
  f.tc.retired = 3;
  f.tc.icache_miss = true;
  f.sri.contention = true;
  f.sri.waiting_masters = 2;
  EXPECT_EQ(event_value(f, EventId::kCycles), 1u);
  EXPECT_EQ(event_value(f, EventId::kTcRetired), 3u);
  EXPECT_EQ(event_value(f, EventId::kTcICacheMiss), 1u);
  EXPECT_EQ(event_value(f, EventId::kTcICacheHit), 0u);
  EXPECT_EQ(event_value(f, EventId::kBusContention), 1u);
  EXPECT_EQ(event_value(f, EventId::kBusWaitingMasters), 2u);
}

TEST(Events, StalledExcludesHaltAndRetirement) {
  ObservationFrame f = frame_at(1);
  f.tc.retired = 0;
  f.tc.stall = StallCause::kIFetch;
  EXPECT_EQ(event_value(f, EventId::kTcStalled), 1u);
  f.tc.stall = StallCause::kHalted;
  EXPECT_EQ(event_value(f, EventId::kTcStalled), 0u);
  f.tc.stall = StallCause::kNone;
  f.tc.retired = 1;
  EXPECT_EQ(event_value(f, EventId::kTcStalled), 0u);
}

TEST(Events, EveryEventHasAName) {
  for (unsigned i = 1; i < kNumEvents; ++i) {
    EXPECT_NE(event_name(static_cast<EventId>(i)), "?");
  }
}

TEST(Comparators, AddressRangeAndWriteFilter) {
  std::vector<Comparator> cmps = {
      {CoreSel::kTc, CompareField::kDataAddr, 0x1000, 0x1FFF, -1},
      {CoreSel::kTc, CompareField::kDataAddr, 0x1000, 0x1FFF, 1},  // writes
      {CoreSel::kTc, CompareField::kRetirePc, 0x8000, 0x8003, -1},
  };
  std::vector<bool> hits;

  ObservationFrame f = frame_at(1);
  f.tc.data_access = true;
  f.tc.data_write = false;
  f.tc.data_addr = 0x1800;
  evaluate_comparators(cmps, f, hits);
  EXPECT_TRUE(hits[0]);
  EXPECT_FALSE(hits[1]);  // read, write-filtered out
  EXPECT_FALSE(hits[2]);  // no retirement

  f.tc.data_write = true;
  f.tc.retired = 1;
  f.tc.retire_pc = 0x8000;
  evaluate_comparators(cmps, f, hits);
  EXPECT_TRUE(hits[0]);
  EXPECT_TRUE(hits[1]);
  EXPECT_TRUE(hits[2]);

  f.tc.data_addr = 0x2000;  // out of range
  evaluate_comparators(cmps, f, hits);
  EXPECT_FALSE(hits[0]);
}

TEST(Equations, SumOfProductsWithNegation) {
  // (eventA AND NOT cmp0) OR cmp1
  Equation eq;
  eq.products = {
      {Term{Term::Kind::kEvent, 0, EventId::kTcIrqEntry, false},
       Term{Term::Kind::kComparator, 0, EventId::kNone, true}},
      {Term{Term::Kind::kComparator, 1, EventId::kNone, false}},
  };
  ObservationFrame f = frame_at(1);
  std::vector<bool> hits = {false, false};
  TriggerContext ctx{&f, &hits, nullptr, 0};

  EXPECT_FALSE(evaluate(eq, ctx));
  f.tc.irq_entry = true;
  EXPECT_TRUE(evaluate(eq, ctx));   // A and not cmp0
  hits[0] = true;
  EXPECT_FALSE(evaluate(eq, ctx));  // cmp0 kills first product
  hits[1] = true;
  EXPECT_TRUE(evaluate(eq, ctx));   // second product
}

TEST(StateMachine, TransitionsOnGuards) {
  StateMachineConfig cfg;
  cfg.initial = 0;
  cfg.transitions = {
      {0, 1, Equation::event(EventId::kTcIrqEntry)},
      {1, 2, Equation::event(EventId::kTcDataAccess)},
      {2, 0, Equation::always()},
  };
  StateMachine fsm(cfg);
  ObservationFrame f = frame_at(1);
  TriggerContext ctx{&f, nullptr, nullptr, 0};

  fsm.step(ctx);
  EXPECT_EQ(fsm.state(), 0);  // no irq yet
  f.tc.irq_entry = true;
  fsm.step(ctx);
  EXPECT_EQ(fsm.state(), 1);
  f.tc.irq_entry = false;
  fsm.step(ctx);
  EXPECT_EQ(fsm.state(), 1);
  f.tc.data_access = true;
  fsm.step(ctx);
  EXPECT_EQ(fsm.state(), 2);
  fsm.step(ctx);
  EXPECT_EQ(fsm.state(), 0);  // unconditional
  fsm.reset();
  EXPECT_EQ(fsm.state(), 0);
}

// ---------------------------------------------------------------------
// Counter bank.

TEST(CounterBank, RateSamplingOnInstructionBasis) {
  CounterBank bank;
  CounterGroupConfig g;
  g.name = "cache";
  g.basis = EventId::kTcRetired;
  g.resolution = 10;
  g.counters = {RateCounterConfig{EventId::kTcICacheMiss, {}, {}}};
  bank.add_group(g);

  // 7 cycles with 2 instrs each (14 instrs) and a miss every cycle.
  u32 samples_seen = 0;
  for (Cycle c = 1; c <= 7; ++c) {
    ObservationFrame f = frame_at(c);
    f.tc.retired = 2;
    f.tc.icache_miss = true;
    bank.step(f);
    samples_seen += static_cast<u32>(bank.samples().size());
    if (!bank.samples().empty()) {
      EXPECT_EQ(bank.samples()[0].basis, 10u);
      EXPECT_EQ(bank.samples()[0].counts[0], 5u);  // 5 misses per 10 instrs
    }
  }
  EXPECT_EQ(samples_seen, 1u);  // 14 instrs -> one complete window
}

TEST(CounterBank, BasisRemainderCarries) {
  CounterBank bank;
  CounterGroupConfig g;
  g.basis = EventId::kTcRetired;
  g.resolution = 4;
  g.counters = {RateCounterConfig{EventId::kCycles, {}, {}}};
  bank.add_group(g);
  // 3 retired per cycle: windows complete at cumulative 4,8,12 instrs.
  u32 total_samples = 0;
  for (Cycle c = 1; c <= 4; ++c) {  // 12 instructions
    ObservationFrame f = frame_at(c);
    f.tc.retired = 3;
    bank.step(f);
    total_samples += static_cast<u32>(bank.samples().size());
  }
  EXPECT_EQ(total_samples, 3u);
}

TEST(CounterBank, ThresholdFlagFollowsSamples) {
  CounterBank bank;
  CounterGroupConfig g;
  g.basis = EventId::kCycles;
  g.resolution = 10;
  g.counters = {RateCounterConfig{
      EventId::kTcRetired, Threshold{Threshold::Dir::kBelow, 5}, {}}};
  const unsigned gi = bank.add_group(g);
  const unsigned flag = bank.flag_index(gi, 0);
  ASSERT_NE(flag, ~0u);

  // High IPC: 1/cycle -> count 10 >= 5 -> flag false.
  for (Cycle c = 1; c <= 10; ++c) {
    ObservationFrame f = frame_at(c);
    f.tc.retired = 1;
    bank.step(f);
  }
  EXPECT_FALSE(bank.flags()[flag]);
  // Zero IPC -> count 0 < 5 -> flag true after the next sample.
  for (Cycle c = 11; c <= 20; ++c) bank.step(frame_at(c));
  EXPECT_TRUE(bank.flags()[flag]);
}

TEST(CounterBank, DisarmedGroupDoesNotSample) {
  CounterBank bank;
  CounterGroupConfig g;
  g.basis = EventId::kCycles;
  g.resolution = 5;
  g.armed_at_start = false;
  g.counters = {RateCounterConfig{EventId::kTcRetired, {}, {}}};
  const unsigned gi = bank.add_group(g);
  for (Cycle c = 1; c <= 20; ++c) {
    bank.step(frame_at(c));
    EXPECT_TRUE(bank.samples().empty());
  }
  bank.arm(gi, true);
  u32 samples = 0;
  for (Cycle c = 21; c <= 30; ++c) {
    bank.step(frame_at(c));
    samples += static_cast<u32>(bank.samples().size());
  }
  EXPECT_EQ(samples, 2u);
}

TEST(CounterBank, ForceSampleReportsPartialBasis) {
  CounterBank bank;
  CounterGroupConfig g;
  g.basis = EventId::kCycles;
  g.resolution = 100;
  g.counters = {RateCounterConfig{EventId::kTcRetired, {}, {}}};
  const unsigned gi = bank.add_group(g);
  for (Cycle c = 1; c <= 7; ++c) {
    ObservationFrame f = frame_at(c);
    f.tc.retired = 2;
    bank.step(f);
  }
  bank.force_sample(gi, 7);
  ASSERT_EQ(bank.samples().size(), 1u);
  EXPECT_EQ(bank.samples()[0].basis, 7u);
  EXPECT_EQ(bank.samples()[0].counts[0], 14u);
}

// ---------------------------------------------------------------------
// Top-level Mcds.

TEST(Mcds, RateMessagesReachTheSink) {
  McdsConfig cfg;
  CounterGroupConfig g;
  g.name = "ipc";
  g.basis = EventId::kCycles;
  g.resolution = 8;
  g.counters = {RateCounterConfig{EventId::kTcRetired, {}, {}}};
  cfg.counter_groups = {g};
  Mcds mcds(cfg);
  VectorSink sink;
  mcds.set_sink(&sink);

  for (Cycle c = 1; c <= 32; ++c) {
    ObservationFrame f = frame_at(c);
    f.tc.retired = 2;
    mcds.observe(f);
  }
  EXPECT_EQ(mcds.messages_of(MsgKind::kRate), 4u);
  auto decoded = TraceDecoder::decode(sink.units());
  ASSERT_TRUE(decoded.is_ok());
  unsigned rates = 0;
  for (const TraceMessage& m : decoded.value()) {
    if (m.kind == MsgKind::kRate) {
      ++rates;
      EXPECT_EQ(m.basis, 8u);
      ASSERT_EQ(m.counts.size(), 1u);
      EXPECT_EQ(m.counts[0], 16u);
    }
  }
  EXPECT_EQ(rates, 4u);
}

TEST(Mcds, TriggerActionsControlTrace) {
  // TraceOn when a data write to 0x2000 happens; TraceOff on address
  // 0x3000. Program trace gated accordingly.
  McdsConfig cfg;
  cfg.program_trace = true;
  cfg.trace_enabled_at_start = false;
  cfg.comparators = {
      Comparator{CoreSel::kTc, CompareField::kDataAddr, 0x2000, 0x2003, -1},
      Comparator{CoreSel::kTc, CompareField::kDataAddr, 0x3000, 0x3003, -1},
  };
  cfg.actions = {
      ActionBinding{Equation::comparator(0), TriggerAction::kTraceOn, 0},
      ActionBinding{Equation::comparator(1), TriggerAction::kTraceOff, 0},
  };
  Mcds mcds(cfg);
  VectorSink sink;
  mcds.set_sink(&sink);

  auto data_frame = [&](Cycle c, Addr addr) {
    ObservationFrame f = frame_at(c);
    f.tc.retired = 1;
    f.tc.retire_pc = 0x80000000;
    f.tc.data_access = true;
    f.tc.data_addr = addr;
    f.tc.discontinuity = true;
    f.tc.discontinuity_target = 0x80000100;
    return f;
  };

  mcds.observe(data_frame(1, 0x1000));
  EXPECT_FALSE(mcds.trace_enabled());
  EXPECT_EQ(sink.units().size(), 0u);
  mcds.observe(data_frame(2, 0x2000));
  EXPECT_TRUE(mcds.trace_enabled());
  mcds.observe(data_frame(3, 0x1000));
  EXPECT_GT(sink.units().size(), 0u);
  mcds.observe(data_frame(4, 0x3000));
  EXPECT_FALSE(mcds.trace_enabled());
}

TEST(Mcds, WatchpointAndTriggerOut) {
  McdsConfig cfg;
  cfg.program_trace = true;
  cfg.comparators = {
      Comparator{CoreSel::kTc, CompareField::kRetirePc, 0x9000, 0x9003, -1}};
  cfg.actions = {
      ActionBinding{Equation::comparator(0), TriggerAction::kEmitWatchpoint, 7},
      ActionBinding{Equation::comparator(0), TriggerAction::kTriggerOut, 0},
  };
  Mcds mcds(cfg);
  VectorSink sink;
  mcds.set_sink(&sink);

  ObservationFrame f = frame_at(5);
  f.tc.retired = 1;
  f.tc.retire_pc = 0x9000;
  mcds.observe(f);
  EXPECT_EQ(mcds.trigger_out_pulses(), 1u);
  EXPECT_EQ(mcds.last_trigger_out(), 5u);
  auto decoded = TraceDecoder::decode(sink.units());
  ASSERT_TRUE(decoded.is_ok());
  bool saw_wp = false;
  for (const TraceMessage& m : decoded.value()) {
    if (m.kind == MsgKind::kWatchpoint) {
      saw_wp = true;
      EXPECT_EQ(m.id, 7);
      EXPECT_EQ(m.cycle, 5u);
    }
  }
  EXPECT_TRUE(saw_wp);
}

TEST(Mcds, CascadedArmDisarmViaCounterFlag) {
  // Guard group: IPC per 10 cycles, threshold below 5 arms group 1.
  McdsConfig cfg;
  CounterGroupConfig guard;
  guard.name = "guard";
  guard.basis = EventId::kCycles;
  guard.resolution = 10;
  guard.counters = {RateCounterConfig{
      EventId::kTcRetired, Threshold{Threshold::Dir::kBelow, 5}, {}}};
  CounterGroupConfig detail;
  detail.name = "detail";
  detail.basis = EventId::kCycles;
  detail.resolution = 2;
  detail.armed_at_start = false;
  detail.counters = {RateCounterConfig{EventId::kTcRetired, {}, {}}};
  cfg.counter_groups = {guard, detail};
  cfg.actions = {
      ActionBinding{Equation::counter_flag(0), TriggerAction::kArmGroup, 1},
      ActionBinding{Equation::counter_flag(0, true), TriggerAction::kDisarmGroup, 1},
  };
  Mcds mcds(cfg);
  VectorSink sink;
  mcds.set_sink(&sink);

  // Phase 1: high IPC -> detail stays disarmed.
  for (Cycle c = 1; c <= 30; ++c) {
    ObservationFrame f = frame_at(c);
    f.tc.retired = 1;
    mcds.observe(f);
  }
  EXPECT_FALSE(mcds.counters().armed(1));
  const u64 rates_high = mcds.messages_of(MsgKind::kRate);
  // Phase 2: stall -> guard flag arms the detail group.
  for (Cycle c = 31; c <= 60; ++c) {
    ObservationFrame f = frame_at(c);
    f.tc.retired = 0;
    f.tc.stall = StallCause::kIFetch;
    mcds.observe(f);
  }
  EXPECT_TRUE(mcds.counters().armed(1));
  EXPECT_GT(mcds.messages_of(MsgKind::kRate), rates_high + 5);
  // Phase 3: recovery -> disarmed again.
  for (Cycle c = 61; c <= 90; ++c) {
    ObservationFrame f = frame_at(c);
    f.tc.retired = 2;
    mcds.observe(f);
  }
  EXPECT_FALSE(mcds.counters().armed(1));
}

TEST(Mcds, StopTraceFreezesSink) {
  McdsConfig cfg;
  cfg.program_trace = true;
  cfg.comparators = {
      Comparator{CoreSel::kTc, CompareField::kRetirePc, 0x9000, 0x9003, -1}};
  cfg.actions = {
      ActionBinding{Equation::comparator(0), TriggerAction::kStopTrace, 0}};
  Mcds mcds(cfg);
  VectorSink sink;
  mcds.set_sink(&sink);

  ObservationFrame f = frame_at(1);
  f.tc.retired = 1;
  f.tc.retire_pc = 0x8000;
  f.tc.discontinuity = true;
  f.tc.discontinuity_target = 0x8100;
  mcds.observe(f);
  const usize before = sink.units().size();
  EXPECT_GT(before, 0u);

  f.cycle = 2;
  f.tc.retire_pc = 0x9000;  // trigger
  mcds.observe(f);
  EXPECT_TRUE(mcds.trace_frozen());
  f.cycle = 3;
  f.tc.retire_pc = 0x8000;
  mcds.observe(f);
  mcds.observe(f);
  // Nothing after the freeze (allow the freeze-cycle message itself).
  EXPECT_LE(sink.units().size(), before + 1);
}

}  // namespace
}  // namespace audo::mcds
