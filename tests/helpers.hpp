// Shared helpers for integration-level tests: assemble-and-run programs
// on a freshly built SoC or Emulation Device.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string_view>

#include "ed/emulation_device.hpp"
#include "isa/assembler.hpp"
#include "soc/soc.hpp"

namespace audo::test {

inline soc::SocConfig small_config() {
  soc::SocConfig config;
  config.pflash.size = 512 * 1024;
  config.lmu_bytes = 64 * 1024;
  config.dspr_bytes = 64 * 1024;
  config.pspr_bytes = 32 * 1024;
  return config;
}

struct RunResult {
  std::unique_ptr<soc::Soc> soc;
  u64 cycles = 0;
  isa::Program program;

  u32 d(unsigned i) const { return soc->tc().d(i); }
  u32 a(unsigned i) const { return soc->tc().a(i); }
  bool halted() const { return soc->tc().halted(); }
};

/// Assemble `source`, load it into a SoC with `config`, run to halt (or
/// `max_cycles`). Fails the test on assembly/load errors.
inline RunResult run_program(std::string_view source,
                             const soc::SocConfig& config = small_config(),
                             u64 max_cycles = 1'000'000) {
  RunResult result;
  auto program = isa::assemble(source);
  EXPECT_TRUE(program.is_ok()) << program.status().to_string();
  if (!program.is_ok()) return result;
  result.program = std::move(program).value();
  result.soc = std::make_unique<soc::Soc>(config);
  const Status loaded = result.soc->load(result.program);
  EXPECT_TRUE(loaded.is_ok()) << loaded.to_string();
  result.soc->reset(result.program.entry());
  result.cycles = result.soc->run(max_cycles);
  return result;
}

/// Common program prologue: code in PSPR (single-cycle fetch) so tests of
/// arithmetic/hazards are not perturbed by flash timing.
inline std::string pspr_text(std::string_view body) {
  return "    .text 0xC8000000\nmain:\n" + std::string(body);
}

/// Code in cached flash.
inline std::string flash_text(std::string_view body) {
  return "    .text 0x80000000\nmain:\n" + std::string(body);
}

}  // namespace audo::test
