// Cross-layer stall attribution (DESIGN.md, "Stall attribution &
// interference matrix"): conservation invariants on real workloads, the
// documented stall-symptom precedence, exact CPI-stack decomposition and
// the crossbar interference-matrix bookkeeping.
#include <gtest/gtest.h>

#include <string>

#include "helpers.hpp"
#include "profiling/cpi_stack.hpp"
#include "profiling/export.hpp"
#include "workload/engine.hpp"
#include "workload/transmission.hpp"

namespace audo {
namespace {

using mcds::StallRootCause;

/// Sum over all (waiter, holder) pairs for one slave.
u64 slave_interference(const bus::Crossbar& sri, unsigned s) {
  u64 total = 0;
  for (unsigned w = 0; w < bus::kNumMasters; ++w) {
    for (unsigned h = 0; h < bus::kNumMasters; ++h) {
      total += sri.interference(static_cast<bus::MasterId>(w),
                                static_cast<bus::MasterId>(h), s);
    }
  }
  return total;
}

/// The conservation checks every run must satisfy:
///  * per-core root-cause buckets partition the core's cycles;
///  * per-function CPI stacks decompose exactly (cycles = issue + stalls)
///    and their sum covers every observed TC cycle;
///  * per-slave interference equals wait cycles minus grants (each
///    granted request waited exactly one non-blocked cycle — its grant
///    cycle; every other waiting master-cycle is a blocked one).
void check_invariants(const soc::Soc& soc,
                      const profiling::CpiStackBuilder& builder) {
  const soc::StallTotals& tc = soc.tc_stall_totals();
  EXPECT_EQ(tc.total(), soc.tc().cycles());
  EXPECT_GT(tc[StallRootCause::kNone], 0u);  // some cycles issued
  if (soc.pcp() != nullptr) {
    EXPECT_EQ(soc.pcp_stall_totals().total(), soc.pcp()->cycles());
  }

  u64 function_cycles = 0;
  for (const profiling::CpiStackEntry& e : builder.stacks()) {
    u64 stall_sum = 0;
    for (unsigned r = 0; r < mcds::kNumStallRootCauses; ++r) {
      stall_sum += e.stall[r];
    }
    EXPECT_EQ(e.cycles, e.issue_cycles + stall_sum) << e.name;
    EXPECT_EQ(e.stall_cycles(), stall_sum) << e.name;
    function_cycles += e.cycles;
  }
  EXPECT_EQ(function_cycles, builder.observed_cycles());
  EXPECT_EQ(builder.observed_cycles(), soc.tc().cycles());
  const profiling::CpiStackEntry total = builder.total();
  EXPECT_EQ(total.cycles, function_cycles);

  for (unsigned s = 0; s < soc.sri().slave_count(); ++s) {
    const bus::SlaveStats& stats = soc.sri().slave_stats(s);
    EXPECT_EQ(slave_interference(soc.sri(), s),
              stats.wait_cycles - stats.grants)
        << "slave " << soc.sri().slave_name(s);
  }
}

TEST(StallAttribution, EngineWorkloadConservation) {
  workload::EngineOptions opt;
  opt.crank_time_scale = 100;
  opt.rpm = 3000;
  opt.halt_after_bg = 30;
  auto built = workload::build_engine_workload(opt);
  ASSERT_TRUE(built.is_ok()) << built.status().to_string();

  soc::Soc soc(test::small_config());
  profiling::CpiStackBuilder builder{isa::SymbolMap(built.value().program)};
  soc.set_frame_observer(&builder);
  ASSERT_TRUE(workload::install_engine(soc, built.value()).is_ok());
  soc.run(5'000'000);
  ASSERT_TRUE(soc.tc().halted());

  check_invariants(soc, builder);
  // The engine workload stalls on real memory: at least one memory-
  // hierarchy bucket must be populated.
  const soc::StallTotals& tc = soc.tc_stall_totals();
  EXPECT_GT(tc[StallRootCause::kFlashBuffer] +
                tc[StallRootCause::kFlashRead] +
                tc[StallRootCause::kFlashPortConflict] +
                tc[StallRootCause::kBusArbitration] +
                tc[StallRootCause::kBusSlaveBusy],
            0u);
}

TEST(StallAttribution, TransmissionWorkloadConservation) {
  workload::TransmissionOptions opt;
  opt.halt_after_tasks = 6;
  auto built = workload::build_transmission_workload(opt);
  ASSERT_TRUE(built.is_ok()) << built.status().to_string();

  soc::Soc soc(test::small_config());
  profiling::CpiStackBuilder builder{isa::SymbolMap(built.value().program)};
  soc.set_frame_observer(&builder);
  ASSERT_TRUE(workload::install_transmission(soc, built.value()).is_ok());
  soc.run(5'000'000);
  ASSERT_TRUE(soc.tc().halted());

  check_invariants(soc, builder);
}

// ---- symptom precedence (documented in cpu.cpp) ---------------------

TEST(StallAttribution, SymptomPrecedence) {
  // Dependent loads from the (multi-cycle) LMU inside a flash-resident
  // loop, with both caches off: fetch regularly sits on the bus while
  // the oldest queued instruction waits for its load operand. The
  // documented tie-break says the data side wins — a cycle with a fetch
  // outstanding AND a pending load-use reports kLoadUse, never kIFetch
  // (kIFetch requires an *empty* fetch queue).
  constexpr std::string_view kSource = R"(
    .text 0x80000000
main:
    movha a2, 0x9000      ; LMU base
    movd  d3, 200
    mov.ad a3, d3
top:
    ld.w  d1, [a2+0]
    add   d2, d1, d1      ; load-use dependency
    ld.w  d4, [a2+4]
    add   d5, d4, d4
    loop  a3, top
    halt
)";
  soc::SocConfig config = test::small_config();
  config.icache.enabled = false;
  config.dcache.enabled = false;

  auto program = isa::assemble(kSource);
  ASSERT_TRUE(program.is_ok()) << program.status().to_string();
  soc::Soc soc(config);
  ASSERT_TRUE(soc.load(program.value()).is_ok());
  soc.reset(program.value().entry());

  u64 coinciding = 0;
  for (u64 i = 0; i < 200'000 && !soc.tc().halted(); ++i) {
    soc.step();
    const mcds::CoreObservation& tc = soc.frame().tc;
    // Every present-core cycle gets exactly one root cause.
    ASSERT_NE(tc.attr.root, StallRootCause::kCount);
    ASSERT_EQ(tc.attr.symptom, tc.stall);
    if (tc.retired == 0 && soc.tc().fetch_on_bus() &&
        tc.stall == mcds::StallCause::kLoadUse) {
      ++coinciding;
      // The data-side walk must have attributed it — never to the
      // fetch side or a generic frontend bubble.
      EXPECT_NE(tc.attr.root, StallRootCause::kFrontend);
      EXPECT_NE(tc.attr.root, StallRootCause::kNone);
    }
    // The converse direction of the tie-break: kIFetch is only ever
    // reported with the fetch side responsible, so its walk never lands
    // in the core-internal kExec bucket.
    if (tc.stall == mcds::StallCause::kIFetch) {
      EXPECT_NE(tc.attr.root, StallRootCause::kExec);
    }
  }
  ASSERT_TRUE(soc.tc().halted());
  EXPECT_GT(coinciding, 0u);
  EXPECT_EQ(soc.tc_stall_totals().total(), soc.tc().cycles());
}

// ---- attribution detail -------------------------------------------------

TEST(StallAttribution, FlashStallsCarryBlockingSlave) {
  // Uncached straight-line flash execution: kIFetch stalls walk the
  // fetch port onto the flash code slave, and the root must be one of
  // the flash service classes with the slave recorded.
  constexpr std::string_view kSource = R"(
    .text 0x80000000
main:
    add d0, d0, d0
    add d1, d1, d1
    add d2, d2, d2
    add d3, d3, d3
    add d4, d4, d4
    add d5, d5, d5
    add d6, d6, d6
    add d7, d7, d7
    halt
)";
  soc::SocConfig config = test::small_config();
  config.icache.enabled = false;
  config.dcache.enabled = false;

  auto program = isa::assemble(kSource);
  ASSERT_TRUE(program.is_ok());
  soc::Soc soc(config);
  ASSERT_TRUE(soc.load(program.value()).is_ok());
  soc.reset(program.value().entry());

  u64 flash_rooted = 0;
  while (!soc.tc().halted()) {
    soc.step();
    const mcds::StallAttribution& attr = soc.frame().tc.attr;
    if (attr.root == StallRootCause::kFlashRead ||
        attr.root == StallRootCause::kFlashBuffer ||
        attr.root == StallRootCause::kFlashPortConflict) {
      ++flash_rooted;
      EXPECT_NE(attr.blocking_slave, mcds::StallAttribution::kNoSlave);
    }
  }
  EXPECT_GT(flash_rooted, 0u);
  const soc::StallTotals& tc = soc.tc_stall_totals();
  EXPECT_EQ(tc.total(), soc.tc().cycles());
}

TEST(StallAttribution, InterferenceMatrixRecordsContention) {
  // Code *and* data both in the LMU: the TC fetch master and the TC data
  // master fight over one slave every loop iteration, so the crossbar
  // must record real blocked master-cycles — and the matrix must obey
  // the exact accounting identity against the slave's wait/grant stats.
  constexpr std::string_view kSource = R"(
    .text 0x90000000
main:
    movha a2, 0x9000
    movd  d3, 300
    mov.ad a3, d3
top:
    ld.w  d1, [a2+0]
    st.w  d1, [a2+4]
    add   d2, d1, d1
    loop  a3, top
    halt
)";
  auto program = isa::assemble(kSource);
  ASSERT_TRUE(program.is_ok()) << program.status().to_string();
  soc::Soc soc(test::small_config());
  ASSERT_TRUE(soc.load(program.value()).is_ok());
  soc.reset(program.value().entry());
  soc.run(1'000'000);
  ASSERT_TRUE(soc.tc().halted());

  const bus::Crossbar& sri = soc.sri();
  int lmu = -1;
  for (unsigned s = 0; s < sri.slave_count(); ++s) {
    if (sri.slave_name(s) == "LMU") lmu = static_cast<int>(s);
  }
  ASSERT_GE(lmu, 0);
  const unsigned s = static_cast<unsigned>(lmu);
  const bus::SlaveStats& stats = sri.slave_stats(s);
  EXPECT_GT(slave_interference(sri, s), 0u);
  EXPECT_EQ(slave_interference(sri, s), stats.wait_cycles - stats.grants);
  // The loser is the fetch master, blocked by the (higher-priority) data
  // master.
  EXPECT_GT(sri.interference(bus::MasterId::kTcFetch, bus::MasterId::kTcData,
                             s),
            0u);
  // The exports see the same contention.
  const std::string text = profiling::interference_to_text(sri);
  EXPECT_NE(text.find("LMU"), std::string::npos);
  const std::string csv = profiling::interference_to_csv(sri);
  EXPECT_NE(csv.find("LMU,TC.I,TC.D,"), std::string::npos);
}

}  // namespace
}  // namespace audo
