// Execution DAG (DESIGN.md, "Execution DAG & critical path"):
// conservation invariants on real workloads, critical-path bounds,
// preemption/resume edges under nested interrupts, deterministic
// bottleneck labels, and bit-identity across fast-forward modes and
// host job counts.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "helpers.hpp"
#include "host/sim_pool.hpp"
#include "optimize/cost_model.hpp"
#include "profiling/dag.hpp"
#include "workload/engine.hpp"
#include "workload/transmission.hpp"

namespace audo {
namespace {

using profiling::DagAnalysis;
using profiling::DagEdge;
using profiling::DagEdgeKind;
using profiling::DagNode;
using profiling::DagNodeKind;
using profiling::ExecutionDag;

workload::EngineOptions engine_options() {
  workload::EngineOptions opt;
  opt.crank_time_scale = 100;
  opt.rpm = 3000;
  opt.halt_after_bg = 30;
  return opt;
}

/// The invariants every DAG must satisfy, independent of workload:
///  * per core, Σ(node cycles) == the core's cpu cycle count — every
///    observed cycle lands in exactly one activation;
///  * core-node windows are contiguous (cycles == end - start + 1) and
///    decompose exactly into issue + stall buckets;
///  * critical_path_cycles <= total_cycles, and the reported chain's
///    nodes are strictly ordered in time;
///  * node_slack is 0 exactly on critical-path nodes.
void check_invariants(const soc::Soc& soc, const ExecutionDag& dag) {
  const DagAnalysis& a = dag.analysis();
  u64 per_core[2] = {0, 0};
  for (const DagNode& n : a.nodes) {
    if (n.core >= 2) continue;  // synthetic bus-master nodes carry 0
    per_core[n.core] += n.cycles;
    EXPECT_EQ(n.cycles, n.end - n.start + 1) << "node " << n.id;
    u64 stall_sum = 0;
    for (const u64 s : n.stall) stall_sum += s;
    EXPECT_EQ(n.cycles, n.issue_cycles + stall_sum) << "node " << n.id;
  }
  EXPECT_EQ(per_core[0], soc.tc().cycles());
  EXPECT_EQ(per_core[0], dag.charged_cycles(0));
  if (soc.pcp() != nullptr) {
    EXPECT_EQ(per_core[1], soc.pcp()->cycles());
    EXPECT_EQ(per_core[1], dag.charged_cycles(1));
  }

  EXPECT_GT(a.critical_path_cycles, 0u);
  EXPECT_LE(a.critical_path_cycles, a.total_cycles);
  ASSERT_EQ(a.node_slack.size(), a.nodes.size());
  Cycle prev_end = 0;
  for (const u32 id : a.critical_path) {
    const DagNode& n = a.nodes[id];
    EXPECT_NE(n.kind, DagNodeKind::kIdle);
    EXPECT_GE(n.end, prev_end);
    prev_end = n.end;
    EXPECT_EQ(a.node_slack[id], 0u) << "critical node " << id;
  }
}

TEST(ExecutionDag, EngineConservationAndCriticalPath) {
  auto built = workload::build_engine_workload(engine_options());
  ASSERT_TRUE(built.is_ok()) << built.status().to_string();

  soc::Soc soc(test::small_config());
  ExecutionDag dag{isa::SymbolMap(built.value().program)};
  soc.set_frame_observer(&dag);
  ASSERT_TRUE(workload::install_engine(soc, built.value()).is_ok());
  soc.run(5'000'000);
  ASSERT_TRUE(soc.tc().halted());

  check_invariants(soc, dag);
  const DagAnalysis& a = dag.analysis();
  // The engine workload interleaves a main loop with crank/ADC ISRs:
  // both node kinds must appear and the attribution query must resolve.
  bool saw_task = false;
  bool saw_isr = false;
  for (const DagNode& n : a.nodes) {
    saw_task |= n.kind == DagNodeKind::kTask;
    saw_isr |= n.kind == DagNodeKind::kIsr;
  }
  EXPECT_TRUE(saw_task);
  EXPECT_TRUE(saw_isr);
  EXPECT_FALSE(dag.task_at(profiling::kDagCoreTc, a.total_cycles / 2).empty());
}

TEST(ExecutionDag, TransmissionConservation) {
  workload::TransmissionOptions opt;
  opt.halt_after_tasks = 6;
  auto built = workload::build_transmission_workload(opt);
  ASSERT_TRUE(built.is_ok()) << built.status().to_string();

  soc::Soc soc(test::small_config());
  ExecutionDag dag{isa::SymbolMap(built.value().program)};
  soc.set_frame_observer(&dag);
  ASSERT_TRUE(workload::install_transmission(soc, built.value()).is_ok());
  soc.run(5'000'000);
  ASSERT_TRUE(soc.tc().halted());

  check_invariants(soc, dag);
}

// ---- preemption edges under nested interrupts -----------------------

// A low-priority handler spins until a flag only the high-priority
// handler sets (same shape as CpuIrq.PriorityPreemption): the DAG must
// show main -> isr_low -> isr_high preempt edges, and isr_high's RFE
// must open an isr_low resume node carrying the suspension time.
constexpr std::string_view kNestedIrq = R"(
    .text 0x80000140       ; priority 10: low
    j isr_low
    .text 0x80000280       ; priority 20: high
    j isr_high
    .text 0x80001000
main:
    di
    movha a15, 0xC000
    movha a14, 0xF000
    movh  d0, 0x8000
    mtcr  biv, d0
    movd  d0, 400
    st.w  d0, [a14+8]      ; CMP0 period 400 -> prio 10
    movd  d0, 900
    st.w  d0, [a14+12]     ; CMP1 period 900 -> prio 20
    movd  d0, 3
    st.w  d0, [a14+16]     ; enable both
    ei
wait:
    ld.w  d1, [a15+0]
    jz    d1, wait
    halt
isr_low:
    st.w  d8, [a15+8]
spin:
    ld.w  d8, [a15+4]      ; wait for high-prio flag
    jz    d8, spin
    movd  d8, 1
    st.w  d8, [a15+0]      ; signal main
    ld.w  d8, [a15+8]
    rfe
isr_high:
    st.w  d8, [a15+12]
    movd  d8, 1
    st.w  d8, [a15+4]
    ld.w  d8, [a15+12]
    rfe
)";

TEST(ExecutionDag, NestedIrqPreemptionAndResumeEdges) {
  auto program = isa::assemble(kNestedIrq);
  ASSERT_TRUE(program.is_ok()) << program.status().to_string();
  soc::Soc soc(test::small_config());
  ExecutionDag dag{isa::SymbolMap(program.value())};
  soc.set_frame_observer(&dag);
  ASSERT_TRUE(soc.load(program.value()).is_ok());
  soc.irq_router().configure(soc.srcs().stm0, 10, periph::IrqTarget::kTc);
  soc.irq_router().configure(soc.srcs().stm1, 20, periph::IrqTarget::kTc);
  soc.reset(program.value().entry());
  soc.run(200'000);
  ASSERT_TRUE(soc.tc().halted());

  check_invariants(soc, dag);
  const DagAnalysis& a = dag.analysis();
  const auto task_of = [&](u32 id) { return a.nodes[id].task; };
  bool main_to_low = false;
  bool low_to_high = false;
  bool high_resumes_low = false;
  for (const DagEdge& e : a.edges) {
    if (e.kind == DagEdgeKind::kPreempt) {
      if (task_of(e.from) == "main" && task_of(e.to) == "isr_low") {
        main_to_low = true;
      }
      if (task_of(e.from) == "isr_low" && task_of(e.to) == "isr_high") {
        low_to_high = true;
      }
    }
    if (e.kind == DagEdgeKind::kResume && task_of(e.from) == "isr_high" &&
        task_of(e.to) == "isr_low") {
      high_resumes_low = true;
      // Resume weight = how long the low handler sat suspended.
      EXPECT_GT(e.weight, 0u);
      EXPECT_EQ(a.nodes[e.to].preempted_cycles, e.weight);
    }
  }
  EXPECT_TRUE(main_to_low);
  EXPECT_TRUE(low_to_high);
  EXPECT_TRUE(high_resumes_low);
  // Nesting shows up in the per-task rollup too: isr_low was preempted.
  const profiling::DagTaskSummary* low = a.find_task("isr_low");
  ASSERT_NE(low, nullptr);
  EXPECT_GT(low->preempted_cycles, 0u);
}

// ---- deterministic bottleneck labels --------------------------------

TEST(ExecutionDag, LabelsAndHashAreDeterministic) {
  auto built = workload::build_engine_workload(engine_options());
  ASSERT_TRUE(built.is_ok()) << built.status().to_string();

  u64 reference_hash = 0;
  std::vector<std::pair<std::string, std::string>> reference_labels;
  for (int rep = 0; rep < 2; ++rep) {
    soc::Soc soc(test::small_config());
    ExecutionDag dag{isa::SymbolMap(built.value().program)};
    soc.set_frame_observer(&dag);
    ASSERT_TRUE(workload::install_engine(soc, built.value()).is_ok());
    soc.run(5'000'000);
    ASSERT_TRUE(soc.tc().halted());

    const DagAnalysis& a = dag.analysis();
    std::vector<std::pair<std::string, std::string>> labels;
    for (const profiling::DagTaskSummary& t : a.tasks) {
      labels.emplace_back(t.task, to_string(t.label));
      EXPECT_STRNE(to_string(t.label), "?") << t.task;
      // Idle windows label idle; running code never does.
      EXPECT_EQ(t.kind == DagNodeKind::kIdle,
                t.label == profiling::BottleneckLabel::kIdle)
          << t.task;
    }
    if (rep == 0) {
      reference_hash = a.hash;
      reference_labels = labels;
      EXPECT_NE(a.hash, 0u);
    } else {
      EXPECT_EQ(a.hash, reference_hash);
      EXPECT_EQ(labels, reference_labels);
    }
  }
}

// ---- slack feeds the cost model -------------------------------------

TEST(ExecutionDag, SlackBoundsOptimizationHeadroom) {
  auto built = workload::build_engine_workload(engine_options());
  ASSERT_TRUE(built.is_ok()) << built.status().to_string();

  soc::Soc soc(test::small_config());
  ExecutionDag dag{isa::SymbolMap(built.value().program)};
  soc.set_frame_observer(&dag);
  ASSERT_TRUE(workload::install_engine(soc, built.value()).is_ok());
  soc.run(5'000'000);
  ASSERT_TRUE(soc.tc().halted());

  const optimize::MeasuredSlack measured =
      optimize::measured_slack_from_dag(dag.analysis());
  EXPECT_EQ(measured.run_cycles, dag.analysis().total_cycles);
  EXPECT_EQ(measured.critical_path_cycles,
            dag.analysis().critical_path_cycles);
  ASSERT_FALSE(measured.tasks.empty());
  for (const auto& t : measured.tasks) EXPECT_NE(t.task, "idle");

  const optimize::CostModel cost;
  for (const auto& t : measured.tasks) {
    const double bound = cost.task_speedup_bound(measured, t.task);
    EXPECT_GE(bound, 1.0) << t.task;
    // A fully slack-shielded task buys nothing end to end.
    if (t.slack >= t.cycles) {
      EXPECT_DOUBLE_EQ(bound, 1.0) << t.task;
    }
  }
  EXPECT_DOUBLE_EQ(cost.task_speedup_bound(measured, "no-such-task"), 1.0);

  // Arithmetic pin on a hand-built measurement: a task occupying half
  // the run with no slack bounds at exactly 2x.
  optimize::MeasuredSlack synthetic;
  synthetic.run_cycles = 1000;
  synthetic.critical_path_cycles = 1000;
  synthetic.tasks.push_back({"hot", 500, 0});
  synthetic.tasks.push_back({"shielded", 400, 400});
  EXPECT_DOUBLE_EQ(cost.task_speedup_bound(synthetic, "hot"), 2.0);
  EXPECT_DOUBLE_EQ(cost.task_speedup_bound(synthetic, "shielded"), 1.0);
}

// ---- bit-identity: fast-forward modes and host job counts -----------

u64 engine_dag_hash(bool fast_forward) {
  auto built = workload::build_engine_workload(engine_options());
  EXPECT_TRUE(built.is_ok());
  soc::SocConfig config = test::small_config();
  config.fast_forward = fast_forward;
  soc::Soc soc(config);
  ExecutionDag dag{isa::SymbolMap(built.value().program)};
  soc.set_frame_observer(&dag);
  EXPECT_TRUE(workload::install_engine(soc, built.value()).is_ok());
  soc.run(5'000'000);
  EXPECT_TRUE(soc.tc().halted());
  return dag.analysis().hash;
}

TEST(ExecutionDag, HashIdenticalAcrossFastForwardAndJobs) {
  const u64 reference = engine_dag_hash(false);
  ASSERT_NE(reference, 0u);
  EXPECT_EQ(engine_dag_hash(true), reference);

  // Each pool job owns its Soc + DAG; any worker count must reproduce
  // the serial hash exactly (same contract as the §6 sweeps).
  for (const unsigned jobs : {1u, 2u, 8u}) {
    host::SimPool pool(jobs);
    const std::vector<u64> hashes =
        pool.map<u64>(4, [&](usize) { return engine_dag_hash(true); });
    for (const u64 h : hashes) EXPECT_EQ(h, reference) << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace audo
