// Fault-injection and safety-mechanism tests: the SEC-DED ECC model,
// crossbar error responses, stuck SFR reads, the SMU-like safety monitor
// and its reactions, and the parallel fault-campaign classifier.
#include <gtest/gtest.h>

#include "fault/fault_injector.hpp"
#include "fault/safety_monitor.hpp"
#include "helpers.hpp"
#include "mcds/observation.hpp"
#include "mem/mem_array.hpp"
#include "mem/memory_map.hpp"
#include "optimize/fault_campaign.hpp"
#include "periph/irq_router.hpp"
#include "periph/peripherals.hpp"
#include "periph/sfr_bridge.hpp"
#include "telemetry/run_report.hpp"
#include "workload/engine.hpp"

namespace audo {
namespace {

using fault::AlarmKind;
using fault::EccDomain;
using fault::FaultEvent;
using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;
using fault::MemDomain;
using fault::SafetyMonitor;

// ---- ECC model -------------------------------------------------------

TEST(EccDomain, SingleBitFlipIsCorrectedOnRead) {
  mem::MemArray arr(256);
  arr.poke(0x10, 0xDEADBEEF, 4);
  SafetyMonitor mon(fault::SafetyConfig{});
  EccDomain dom;
  dom.attach(&arr, &mon, /*ecc_enabled=*/true);

  FaultEvent ev;
  ev.offset = 0x10;
  ev.bits = 1;
  dom.inject(ev);
  // SEC: the stored word stays intact (every read corrects it) and the
  // pending record raises the alarm on first consumption.
  EXPECT_EQ(arr.peek(0x10, 4), 0xDEADBEEFu);
  EXPECT_EQ(dom.pending_records(), 1u);
  EXPECT_EQ(arr.read(0x10, 4), 0xDEADBEEFu);
  EXPECT_EQ(dom.pending_records(), 0u);

  const mcds::ObservationFrame frame;
  const mcds::SafetyObservation obs = mon.step_cycle(1, frame);
  EXPECT_EQ(obs.ecc_corrected, 1u);
  EXPECT_EQ(mon.total(AlarmKind::kEccCorrected), 1u);
  EXPECT_EQ(mon.total(AlarmKind::kEccUncorrectable), 0u);

  // Alarm raised once, not on every later read.
  arr.read(0x10, 4);
  mon.step_cycle(2, frame);
  EXPECT_EQ(mon.total(AlarmKind::kEccCorrected), 1u);
}

TEST(EccDomain, DoubleBitFlipCorruptsAndRaisesUncorrectable) {
  mem::MemArray arr(256);
  arr.poke(0x20, 0x0F0F0F0F, 4);
  SafetyMonitor mon(fault::SafetyConfig{});
  EccDomain dom;
  dom.attach(&arr, &mon, /*ecc_enabled=*/true);

  FaultEvent ev;
  ev.offset = 0x20;
  ev.bits = 2;
  ev.bit0 = 0;
  ev.bit1 = 5;
  dom.inject(ev);
  // DED: the data really is corrupt and the read returns it that way.
  const u32 corrupt = 0x0F0F0F0F ^ 0x1u ^ 0x20u;
  EXPECT_EQ(arr.peek(0x20, 4), corrupt);
  EXPECT_EQ(arr.read(0x20, 4), corrupt);

  const mcds::ObservationFrame frame;
  const mcds::SafetyObservation obs = mon.step_cycle(1, frame);
  EXPECT_EQ(obs.ecc_uncorrectable, 1u);
  EXPECT_EQ(mon.total(AlarmKind::kEccUncorrectable), 1u);
  EXPECT_EQ(mon.total(AlarmKind::kEccCorrected), 0u);
}

TEST(EccDomain, OverwriteScrubsThePendingRecord) {
  mem::MemArray arr(256);
  arr.poke(0x30, 0x11111111, 4);
  SafetyMonitor mon(fault::SafetyConfig{});
  EccDomain dom;
  dom.attach(&arr, &mon, /*ecc_enabled=*/true);

  FaultEvent ev;
  ev.offset = 0x30;
  ev.bits = 1;
  dom.inject(ev);
  EXPECT_EQ(dom.pending_records(), 1u);
  // The write re-encodes the word: fault masked, no alarm ever.
  arr.write(0x30, 0x22222222, 4);
  EXPECT_EQ(dom.pending_records(), 0u);
  EXPECT_EQ(arr.read(0x30, 4), 0x22222222u);

  const mcds::ObservationFrame frame;
  mon.step_cycle(1, frame);
  EXPECT_EQ(mon.total(AlarmKind::kEccCorrected), 0u);
  EXPECT_EQ(mon.total(AlarmKind::kEccUncorrectable), 0u);
}

TEST(EccDomain, WithoutEccAnyFlipCorruptsSilently) {
  mem::MemArray arr(256);
  arr.poke(0x40, 0xCAFE0000, 4);
  SafetyMonitor mon(fault::SafetyConfig{});
  EccDomain dom;
  dom.attach(&arr, &mon, /*ecc_enabled=*/false);

  FaultEvent ev;
  ev.offset = 0x40;
  ev.bits = 1;
  ev.bit0 = 3;
  dom.inject(ev);
  EXPECT_EQ(arr.peek(0x40, 4), 0xCAFE0000u ^ 0x8u);
  EXPECT_EQ(arr.read(0x40, 4), 0xCAFE0000u ^ 0x8u);
  EXPECT_EQ(dom.pending_records(), 0u);

  const mcds::ObservationFrame frame;
  mon.step_cycle(1, frame);
  for (unsigned k = 0; k < fault::kNumAlarmKinds; ++k) {
    EXPECT_EQ(mon.total(static_cast<AlarmKind>(k)), 0u);
  }
}

// ---- SafetyMonitor reactions -----------------------------------------

TEST(SafetyMonitor, IrqReactionPostsTheAlarmSource) {
  periph::IrqRouter router;
  const unsigned src = router.add_source("smu.alarm");
  router.configure(src, 15, periph::IrqTarget::kTc);

  fault::SafetyConfig cfg;
  cfg.reactions[static_cast<unsigned>(AlarmKind::kBusError)] =
      fault::Reaction::kIrq;
  SafetyMonitor mon(cfg);
  mon.bind(&router, src, /*tc=*/nullptr, /*watchdog=*/nullptr);

  mon.post(AlarmKind::kBusError);
  const mcds::ObservationFrame frame;
  const mcds::SafetyObservation obs = mon.step_cycle(1, frame);
  EXPECT_TRUE(obs.bus_error);
  EXPECT_TRUE(obs.alarm_irq);
  EXPECT_EQ(mon.total(AlarmKind::kBusError), 1u);
  EXPECT_EQ(mon.reactions_fired(), 1u);
  ASSERT_TRUE(router.tc_view().pending().has_value());
  EXPECT_EQ(router.tc_view().pending(), 15);
}

TEST(SafetyMonitor, WatchdogTimeoutsSurfaceAsAlarms) {
  periph::IrqRouter router;
  const unsigned wdt_src = router.add_source("wdt");
  router.configure(wdt_src, 1, periph::IrqTarget::kTc);
  periph::Watchdog wdt(&router, wdt_src);

  SafetyMonitor mon(fault::SafetyConfig{});
  mon.bind(nullptr, 0, nullptr, &wdt);

  wdt.write_sfr(0x04, 25);
  for (Cycle now = 1; now <= 25; ++now) wdt.step(now);
  ASSERT_EQ(wdt.timeouts(), 1u);

  const mcds::ObservationFrame frame;
  const mcds::SafetyObservation obs = mon.step_cycle(26, frame);
  EXPECT_TRUE(obs.wdt_timeout);
  EXPECT_EQ(mon.total(AlarmKind::kWatchdogTimeout), 1u);
  // The delta was consumed: stepping again raises nothing new.
  mon.step_cycle(27, frame);
  EXPECT_EQ(mon.total(AlarmKind::kWatchdogTimeout), 1u);
}

// ---- plan generation -------------------------------------------------

TEST(FaultPlan, GenerationIsDeterministicSortedAndInSpec) {
  fault::PlanSpec spec;
  spec.flash_bytes = 64 * 1024;
  spec.flash_image_bytes = 4 * 1024;
  spec.dspr_bytes = 16 * 1024;
  spec.pspr_bytes = 8 * 1024;
  spec.lmu_bytes = 8 * 1024;
  spec.slave_count = 5;
  spec.sfr_offsets = {0x0000, 0x1000, 0x2000};
  spec.irq_srcs = {3, 4};
  spec.window_begin = 100;
  spec.window_end = 10'000;
  spec.events_min = 1;
  spec.events_max = 4;

  for (const u64 seed : {u64{1}, u64{42}, u64{0xFEED}}) {
    const FaultPlan a = fault::generate_plan(seed, spec);
    const FaultPlan b = fault::generate_plan(seed, spec);
    ASSERT_EQ(a.events.size(), b.events.size());
    ASSERT_GE(a.events.size(), spec.events_min);
    ASSERT_LE(a.events.size(), spec.events_max);
    for (usize i = 0; i < a.events.size(); ++i) {
      const FaultEvent& ea = a.events[i];
      const FaultEvent& eb = b.events[i];
      EXPECT_EQ(ea.at, eb.at);
      EXPECT_EQ(ea.kind, eb.kind);
      EXPECT_EQ(ea.domain, eb.domain);
      EXPECT_EQ(ea.offset, eb.offset);
      EXPECT_EQ(ea.bits, eb.bits);
      EXPECT_EQ(ea.count, eb.count);
      EXPECT_EQ(ea.slave, eb.slave);
      EXPECT_EQ(ea.sfr_offset, eb.sfr_offset);
      EXPECT_EQ(ea.sfr_value, eb.sfr_value);
      EXPECT_EQ(ea.irq_src, eb.irq_src);
      EXPECT_EQ(ea.duration, eb.duration);
      EXPECT_GE(ea.at, spec.window_begin);
      EXPECT_LT(ea.at, spec.window_end);
      if (i > 0) {
        EXPECT_GE(ea.at, a.events[i - 1].at);
      }
    }
  }
}

// ---- SoC integration -------------------------------------------------

/// Build a plan with one event and run `source` under it.
test::RunResult run_with_plan(std::string_view source, FaultPlan plan,
                              u64 max_cycles = 1'000'000) {
  test::RunResult result;
  auto program = isa::assemble(source);
  EXPECT_TRUE(program.is_ok()) << program.status().to_string();
  if (!program.is_ok()) return result;
  result.program = std::move(program).value();
  FaultInjector injector(std::move(plan));
  result.soc = std::make_unique<soc::Soc>(test::small_config());
  const Status loaded = result.soc->load(result.program);
  EXPECT_TRUE(loaded.is_ok()) << loaded.to_string();
  result.soc->set_fault_injector(&injector);
  result.soc->reset(result.program.entry());
  result.cycles = result.soc->run(max_cycles);
  // Detach before the local injector dies; alarm totals stay in the
  // monitor, injection counters are checked via soc->fault_injector()
  // only while attached.
  result.soc->set_fault_injector(nullptr);
  return result;
}

constexpr std::string_view kFlashReadLoop = R"(
    .text 0xC8000000
main:
    movh d1, hi(tbl)
    ori  d1, d1, lo(tbl)
    mov.ad a2, d1
    movd d5, 0
    movd d6, 400
loop:
    ld.w d2, [a2+0]
    addi d5, d5, 1
    jlt  d5, d6, loop
    halt
    .data 0x80010000
tbl:
    .word 0xAAAA5555
)";

TEST(SocFault, FlashSingleBitFlipIsCorrectedMidRun) {
  auto program = isa::assemble(kFlashReadLoop);
  ASSERT_TRUE(program.is_ok());
  const u32 tbl = mem::pflash_offset(program.value().symbol_addr("tbl").value());

  FaultPlan plan;
  FaultEvent ev;
  ev.at = 500;  // mid-loop, long after the d-cache holds the line
  ev.kind = FaultKind::kMemFlip;
  ev.domain = MemDomain::kPFlash;
  ev.offset = tbl;
  ev.bits = 1;
  plan.events.push_back(ev);

  auto r = run_with_plan(kFlashReadLoop, std::move(plan));
  ASSERT_TRUE(r.halted());
  EXPECT_EQ(r.d(2), 0xAAAA5555u);  // the consumer never saw a wrong bit
  EXPECT_EQ(r.soc->safety().total(AlarmKind::kEccCorrected), 1u);
  EXPECT_EQ(r.soc->safety().total(AlarmKind::kEccUncorrectable), 0u);
}

TEST(SocFault, FlashDoubleBitFlipTrapsAndContainsTheRun) {
  auto program = isa::assemble(kFlashReadLoop);
  ASSERT_TRUE(program.is_ok());
  const u32 tbl = mem::pflash_offset(program.value().symbol_addr("tbl").value());

  FaultPlan plan;
  FaultEvent ev;
  ev.at = 500;
  ev.kind = FaultKind::kMemFlip;
  ev.domain = MemDomain::kPFlash;
  ev.offset = tbl;
  ev.bits = 2;
  plan.events.push_back(ev);

  auto r = run_with_plan(kFlashReadLoop, std::move(plan));
  // Default reaction to uncorrectable ECC is kTrap; with BTV unset the
  // core halts instead of executing random memory — run is contained.
  EXPECT_GE(r.soc->safety().total(AlarmKind::kEccUncorrectable), 1u);
  ASSERT_TRUE(r.halted());
  EXPECT_LT(r.cycles, 10'000u);  // stopped right after the bad read
}

TEST(SocFault, BusErrorResponseIsObservedAndAlarmed) {
  constexpr std::string_view kLmuReadLoop = R"(
    .text 0xC8000000
main:
    movh d1, 0x9000
    mov.ad a2, d1
    movd d3, 0
    movd d5, 0
    movd d6, 50
loop:
    ld.w d2, [a2+0]
    add  d3, d3, d2
    addi d5, d5, 1
    jlt  d5, d6, loop
    halt
    .data 0x90000000
lval:
    .word 5
)";
  soc::Soc probe(test::small_config());
  unsigned lmu_slave = ~0u;
  for (unsigned s = 0; s < probe.sri().slave_count(); ++s) {
    if (probe.sri().slave_name(s) == "LMU") lmu_slave = s;
  }
  ASSERT_NE(lmu_slave, ~0u);

  FaultPlan plan;
  FaultEvent ev;
  ev.at = 100;
  ev.kind = FaultKind::kBusError;
  ev.slave = lmu_slave;
  ev.count = 1;
  plan.events.push_back(ev);

  auto r = run_with_plan(kLmuReadLoop, std::move(plan));
  ASSERT_TRUE(r.halted());
  EXPECT_EQ(r.soc->tc().bus_errors(), 1u);
  EXPECT_EQ(r.soc->safety().total(AlarmKind::kBusError), 1u);
  // Exactly one of the 50 reads returned 0 instead of 5.
  EXPECT_EQ(r.d(3), 50u * 5u - 5u);
}

TEST(SocFault, StuckSfrReadsReturnTheStuckValue) {
  constexpr std::string_view kStmReads = R"(
    .text 0xC8000000
main:
    movha a14, 0xF000
    ld.w d2, [a14+0]
    ld.w d3, [a14+0]
    ld.w d4, [a14+0]
    halt
)";
  FaultPlan plan;
  FaultEvent ev;
  ev.at = 1;
  ev.kind = FaultKind::kSfrStuck;
  ev.sfr_offset = periph::sfr::kStm + 0x00;  // STM TIM0
  ev.sfr_value = 0xDEAD0001;
  ev.count = 2;
  plan.events.push_back(ev);

  auto r = run_with_plan(kStmReads, std::move(plan));
  ASSERT_TRUE(r.halted());
  EXPECT_EQ(r.d(2), 0xDEAD0001u);
  EXPECT_EQ(r.d(3), 0xDEAD0001u);
  EXPECT_NE(r.d(4), 0xDEAD0001u);  // fault exhausted after two reads
  EXPECT_EQ(r.soc->bridge().faulted_reads(), 2u);
}

// ---- fault campaign --------------------------------------------------

struct EngineSetup {
  workload::EngineWorkload workload;
  optimize::FaultCampaign::DemoTargets targets;
  soc::SocConfig chip;
};

EngineSetup make_engine_setup() {
  EngineSetup setup;
  workload::EngineOptions opt;
  opt.halt_after_bg = 60;
  auto built = workload::build_engine_workload(opt);
  EXPECT_TRUE(built.is_ok());
  setup.workload = std::move(built).value();

  const Addr bg = setup.workload.program.symbol_addr("_bg_loop").value();
  setup.targets.hot_flash_offset = mem::pflash_offset(bg);
  setup.targets.dead_flash_offset = setup.chip.pflash.size - 0x100;
  setup.targets.live_dspr_offset = setup.chip.dspr_bytes - 0x40;
  soc::Soc probe(setup.chip);
  setup.targets.storm_src = probe.srcs().adc_done;
  return setup;
}

optimize::FaultCampaign make_campaign(const EngineSetup& setup) {
  optimize::WorkloadCase wc;
  wc.name = "engine";
  wc.program = setup.workload.program;
  wc.tc_entry = setup.workload.tc_entry;
  wc.pcp_entry = setup.workload.pcp_entry;
  wc.configure = [options = setup.workload.options](soc::Soc& soc) {
    workload::configure_engine(soc, options);
  };
  wc.max_cycles = 200'000;
  return optimize::FaultCampaign(setup.chip, std::move(wc));
}

TEST(FaultCampaign, DemoScenariosReachAllFiveOutcomeClasses) {
  const EngineSetup setup = make_engine_setup();
  optimize::FaultCampaign campaign = make_campaign(setup);
  campaign.set_jobs(2);

  const auto scenarios = campaign.make_demo_scenarios(setup.targets);
  const optimize::CampaignSummary summary = campaign.run(scenarios);

  ASSERT_EQ(summary.runs.size(), 5u);
  EXPECT_TRUE(summary.golden.halted);
  // One of each of the five *simulation* outcome classes; kFailed is a
  // host-side quarantine outcome and never appears in a healthy run.
  for (unsigned o = 0; o < optimize::kNumFaultOutcomes; ++o) {
    const auto outcome = static_cast<optimize::FaultOutcome>(o);
    const u64 want = outcome == optimize::FaultOutcome::kFailed ? 0u : 1u;
    EXPECT_EQ(summary.outcome_counts[o], want) << to_string(outcome);
  }
  // Scenario order matches taxonomy order by construction.
  EXPECT_EQ(summary.runs[0].outcome, optimize::FaultOutcome::kMasked);
  EXPECT_EQ(summary.runs[1].outcome, optimize::FaultOutcome::kCorrected);
  EXPECT_EQ(summary.runs[2].outcome, optimize::FaultOutcome::kDetected);
  EXPECT_EQ(summary.runs[3].outcome,
            optimize::FaultOutcome::kSilentDataCorruption);
  EXPECT_EQ(summary.runs[4].outcome, optimize::FaultOutcome::kHang);

  // The outcome classes land in the RunReport's fault/alarm sections.
  telemetry::RunReport report;
  summary.fill_report(report);
  const auto fault_value = [&](std::string_view name) -> u64 {
    for (const auto& [key, value] : report.faults) {
      if (key == name) return value;
    }
    ADD_FAILURE() << "missing fault entry " << name;
    return 0;
  };
  EXPECT_EQ(fault_value("scenarios"), 5u);
  EXPECT_EQ(fault_value("outcome.masked"), 1u);
  EXPECT_EQ(fault_value("outcome.corrected"), 1u);
  EXPECT_EQ(fault_value("outcome.detected"), 1u);
  EXPECT_EQ(fault_value("outcome.sdc"), 1u);
  EXPECT_EQ(fault_value("outcome.hang"), 1u);
  EXPECT_FALSE(report.alarms.empty());
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"faults\""), std::string::npos);
  EXPECT_NE(json.find("\"alarms\""), std::string::npos);
}

TEST(FaultCampaign, ClassificationIsIdenticalForAnyJobCount) {
  const EngineSetup setup = make_engine_setup();
  optimize::FaultCampaign campaign = make_campaign(setup);

  std::vector<optimize::FaultScenario> scenarios =
      campaign.make_demo_scenarios(setup.targets);
  const auto random = campaign.make_scenarios(/*seed=*/7, /*count=*/4);
  scenarios.insert(scenarios.end(), random.begin(), random.end());

  u64 reference = 0;
  for (const unsigned jobs : {1u, 2u, 8u}) {
    campaign.set_jobs(jobs);
    const optimize::CampaignSummary summary = campaign.run(scenarios);
    const u64 hash = summary.classification_hash();
    if (reference == 0) {
      reference = hash;
    } else {
      EXPECT_EQ(hash, reference) << "jobs=" << jobs;
    }
  }
  EXPECT_NE(reference, 0u);
}

TEST(FaultCampaign, SameSeedSamePlansDifferentSeedsDiffer) {
  const EngineSetup setup = make_engine_setup();
  const optimize::FaultCampaign campaign = make_campaign(setup);

  const auto a = campaign.make_scenarios(11, 8);
  const auto b = campaign.make_scenarios(11, 8);
  const auto c = campaign.make_scenarios(12, 8);
  ASSERT_EQ(a.size(), 8u);
  for (usize i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    ASSERT_EQ(a[i].plan.events.size(), b[i].plan.events.size());
  }
  bool any_difference = false;
  for (usize i = 0; i < a.size(); ++i) {
    if (a[i].seed != c[i].seed) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace audo
