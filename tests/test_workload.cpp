// Engine-control workload tests: the generated application boots, all
// interrupt sources get serviced, the HW/SW partitioning options work,
// and the scratchpad optimization has the documented effect.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mem/memory_map.hpp"
#include "workload/engine.hpp"

namespace audo::workload {
namespace {

EngineOptions fast_options() {
  EngineOptions opt;
  opt.crank_time_scale = 100;  // dense activity for short runs
  opt.rpm = 3000;
  return opt;
}

/// DSPR variable address by symbol.
Addr var(const EngineWorkload& w, const char* name) {
  auto addr = w.program.symbol_addr(name);
  EXPECT_TRUE(addr.is_ok()) << name;
  return addr.value_or(0);
}

TEST(EngineWorkload, BuildsAndBoots) {
  auto workload = build_engine_workload(fast_options());
  ASSERT_TRUE(workload.is_ok()) << workload.status().to_string();
  soc::Soc soc(test::small_config());
  ASSERT_TRUE(install_engine(soc, workload.value()).is_ok());
  soc.run(500'000);
  EXPECT_FALSE(soc.tc().halted());  // free-running application
  // All ISRs fired.
  const auto& w = workload.value();
  EXPECT_GT(soc.dspr().read(var(w, "tooth_count"), 4), 50u);
  EXPECT_GT(soc.dspr().read(var(w, "rev_count"), 4), 0u);
  EXPECT_NE(soc.dspr().read(var(w, "filt_adc"), 4), 1500u);  // ADC updates
  EXPECT_GT(soc.dspr().read(var(w, "can_head"), 4), 0u);
  EXPECT_GT(soc.dspr().read(var(w, "pid_out"), 4), 0u);
  EXPECT_GT(soc.dspr().read(var(w, "bg_iter"), 4), 0u);      // background runs
  EXPECT_GT(soc.dspr().read(var(w, "journal_idx"), 4), 0u);  // EEPROM writes
  EXPECT_GT(soc.dflash().writes(), 0u);
  EXPECT_EQ(soc.tc().bus_errors(), 0u);
}

TEST(EngineWorkload, HaltAfterRevsTerminates) {
  EngineOptions opt = fast_options();
  opt.halt_after_revs = 3;
  auto workload = build_engine_workload(opt);
  ASSERT_TRUE(workload.is_ok());
  soc::Soc soc(test::small_config());
  ASSERT_TRUE(install_engine(soc, workload.value()).is_ok());
  soc.run(5'000'000);
  ASSERT_TRUE(soc.tc().halted());
  EXPECT_GE(soc.dspr().read(var(workload.value(), "rev_count"), 4), 3u);
}

TEST(EngineWorkload, InterruptRatesScaleWithRpm) {
  auto count_teeth = [](u32 rpm) {
    EngineOptions opt;
    opt.crank_time_scale = 100;
    opt.rpm = rpm;
    auto workload = build_engine_workload(opt);
    EXPECT_TRUE(workload.is_ok());
    soc::Soc soc(test::small_config());
    EXPECT_TRUE(install_engine(soc, workload.value()).is_ok());
    soc.run(400'000);
    return soc.irq_router().node(soc.srcs().crank_tooth).serviced;
  };
  const u64 slow = count_teeth(1500);
  const u64 fast = count_teeth(6000);
  EXPECT_GT(fast, slow * 3);
}

TEST(EngineWorkload, PcpOffloadMovesIsrsToPcp) {
  EngineOptions opt = fast_options();
  opt.pcp_offload = true;
  auto workload = build_engine_workload(opt);
  ASSERT_TRUE(workload.is_ok()) << workload.status().to_string();
  soc::Soc soc(test::small_config());
  ASSERT_TRUE(install_engine(soc, workload.value()).is_ok());
  soc.run(500'000);
  const auto& w = workload.value();

  // PCP serviced ADC/CAN (counted in the router) and ran instructions.
  ASSERT_NE(soc.pcp(), nullptr);
  EXPECT_GT(soc.pcp()->retired(), 100u);
  EXPECT_GT(soc.irq_router().node(soc.srcs().adc_done).serviced, 5u);
  EXPECT_GT(soc.irq_router().node(soc.srcs().can_rx).serviced, 2u);
  // The PCP publishes the shared variable into the TC's DSPR.
  EXPECT_NE(soc.dspr().read(var(w, "filt_adc"), 4), 1500u);
  // The PCP ring lives in its own data RAM.
  EXPECT_GT(soc.pcp_dram()->read(var(w, "pcp_can_head"), 4), 0u);
  // The TC still handles tooth interrupts.
  EXPECT_GT(soc.dspr().read(var(w, "tooth_count"), 4), 50u);
}

TEST(EngineWorkload, PcpOffloadFreesTcCapacity) {
  // With the same environment, offloading ADC+CAN to the PCP must let
  // the TC background loop make more progress.
  auto bg_progress = [](bool offload) {
    EngineOptions opt;
    opt.crank_time_scale = 120;
    opt.adc_period = 1'200;   // heavy ADC/CAN load
    opt.can_rx_period = 2'500;
    opt.pcp_offload = offload;
    auto workload = build_engine_workload(opt);
    EXPECT_TRUE(workload.is_ok());
    soc::Soc soc(test::small_config());
    EXPECT_TRUE(install_engine(soc, workload.value()).is_ok());
    soc.run(500'000);
    return soc.dspr().read(
        workload.value().program.symbol_addr("bg_iter").value(), 4);
  };
  const u32 on_tc = bg_progress(false);
  const u32 on_pcp = bg_progress(true);
  EXPECT_GT(on_pcp, on_tc);
}

TEST(EngineWorkload, DmaAdcOptionBypassesCpu) {
  EngineOptions opt = fast_options();
  opt.use_dma_for_adc = true;
  auto workload = build_engine_workload(opt);
  ASSERT_TRUE(workload.is_ok());
  soc::Soc soc(test::small_config());
  ASSERT_TRUE(install_engine(soc, workload.value()).is_ok());
  soc.run(500'000);
  // DMA moved conversions; the ADC node was serviced by the DMA view.
  EXPECT_GT(soc.dma().stats(0).units, 10u);
  // filt_adc gets raw DMA copies now.
  EXPECT_NE(soc.dspr().read(var(workload.value(), "filt_adc"), 4), 1500u);
  // The tooth ISR still consumes it.
  EXPECT_GT(soc.dspr().read(var(workload.value(), "tooth_count"), 4), 50u);
}

TEST(EngineWorkload, ScratchpadTablesReduceFlashTraffic) {
  auto flash_data_accesses = [](bool tables_in_dspr) {
    EngineOptions opt;
    opt.crank_time_scale = 100;
    opt.tables_in_dspr = tables_in_dspr;
    auto workload = build_engine_workload(opt);
    EXPECT_TRUE(workload.is_ok());
    soc::Soc soc(test::small_config());
    EXPECT_TRUE(install_engine(soc, workload.value()).is_ok());
    soc.run(400'000);
    return soc.pflash().stats().data_accesses;
  };
  const u64 from_flash = flash_data_accesses(false);
  const u64 from_dspr = flash_data_accesses(true);
  EXPECT_LT(from_dspr, from_flash);
}

TEST(EngineWorkload, WatchdogHeldOffWhileBackgroundRuns) {
  EngineOptions opt = fast_options();
  opt.wdt_period = 50'000;
  auto workload = build_engine_workload(opt);
  ASSERT_TRUE(workload.is_ok());
  soc::Soc soc(test::small_config());
  ASSERT_TRUE(install_engine(soc, workload.value()).is_ok());
  soc.run(400'000);
  EXPECT_EQ(soc.watchdog().timeouts(), 0u);
}

TEST(EngineWorkload, DeterministicAcrossRuns) {
  auto workload = build_engine_workload(fast_options());
  ASSERT_TRUE(workload.is_ok());
  auto run_once = [&]() {
    soc::Soc soc(test::small_config());
    EXPECT_TRUE(install_engine(soc, workload.value()).is_ok());
    soc.run(300'000);
    return std::tuple{soc.tc().retired(),
                      soc.dspr().read(0xC0000000, 4),
                      soc.irq_router().node(soc.srcs().crank_tooth).serviced};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(EngineWorkload, GeneratedSourceIsExposed) {
  auto workload = build_engine_workload(fast_options());
  ASSERT_TRUE(workload.is_ok());
  EXPECT_NE(workload.value().source.find("isr_tooth"), std::string::npos);
  EXPECT_GT(workload.value().program.total_bytes(), 1000u);
}

}  // namespace
}  // namespace audo::workload
