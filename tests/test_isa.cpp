// Unit tests for the TRC ISA: encode/decode round trips, the assembler
// (directives, labels, expressions, errors) and the symbol map.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/core_regs.hpp"
#include "isa/isa.hpp"
#include "isa/program.hpp"

namespace audo::isa {
namespace {

TEST(OpInfo, TableIsConsistent) {
  for (unsigned i = 0; i < kNumOpcodes; ++i) {
    const auto op = static_cast<Opcode>(i);
    const OpInfo& info = op_info(op);
    EXPECT_NE(info.mnemonic, nullptr);
    EXPECT_GE(info.result_latency, 1);
    // The mnemonic maps back to the same opcode.
    const auto back = opcode_from_mnemonic(info.mnemonic);
    ASSERT_TRUE(back.has_value()) << info.mnemonic;
    EXPECT_EQ(*back, op);
  }
}

class EncodeDecodeRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(EncodeDecodeRoundTrip, AllFieldPatterns) {
  const auto op = static_cast<Opcode>(GetParam());
  const OpInfo& info = op_info(op);
  for (const i32 imm : {0, 1, -1, 42, -42, 32767, -32768}) {
    Instr in;
    in.opcode = op;
    in.rd = 5;
    in.ra = 10;
    if (info.uses_rb) {
      in.rb = 15;
      in.imm = 0;
    } else {
      in.imm = imm;
    }
    const u32 word = encode(in);
    const auto out = decode(word);
    ASSERT_TRUE(out.is_ok());
    EXPECT_EQ(out.value(), in) << info.mnemonic << " imm=" << imm;
    if (info.uses_rb) break;  // imm irrelevant
  }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EncodeDecodeRoundTrip,
                         ::testing::Range(0u, kNumOpcodes));

TEST(Decode, RejectsUnknownOpcode) {
  const u32 bad = 0xFFu << 24;
  EXPECT_FALSE(decode(bad).is_ok());
}

TEST(Format, KnownShapes) {
  Instr add{Opcode::kAdd, 1, 2, 3, 0};
  EXPECT_EQ(format_instr(add), "add d1, d2, d3");
  Instr ld{Opcode::kLdW, 4, 2, 0, 8};
  EXPECT_EQ(format_instr(ld), "ld.w d4, [a2+8]");
  Instr st{Opcode::kStB, 4, 2, 0, -3};
  EXPECT_EQ(format_instr(st), "st.b d4, [a2-3]");
  Instr loop{Opcode::kLoop, 3, 0, 0, -5};
  EXPECT_EQ(format_instr(loop), "loop a3, -5");
}

// ---------------------------------------------------------------------
// Assembler.

TEST(Assembler, MinimalProgram) {
  auto prog = assemble(R"(
    .text 0x80000000
main:
    movd  d0, 7
    addi  d0, d0, 1
    halt
)");
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
  const Program& p = prog.value();
  EXPECT_EQ(p.entry(), 0x80000000u);
  ASSERT_EQ(p.sections().size(), 1u);
  EXPECT_EQ(p.sections()[0].bytes.size(), 12u);
  // Decode the first instruction back.
  u32 w = 0;
  for (int i = 0; i < 4; ++i) w |= p.sections()[0].bytes[i] << (8 * i);
  const auto in = decode(w);
  ASSERT_TRUE(in.is_ok());
  EXPECT_EQ(in.value().opcode, Opcode::kMovd);
  EXPECT_EQ(in.value().imm, 7);
}

TEST(Assembler, LabelsAndBranches) {
  auto prog = assemble(R"(
    .text 0x80000000
main:
    movd d0, 3
loop_top:
    addi d0, d0, -1
    jnz  d0, loop_top
    halt
)");
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
  const Program& p = prog.value();
  // jnz at offset 8, target at offset 4 -> disp = (4 - 12)/4 = -2.
  u32 w = 0;
  for (int i = 0; i < 4; ++i) w |= p.sections()[0].bytes[8 + i] << (8 * i);
  const auto in = decode(w);
  ASSERT_TRUE(in.is_ok());
  EXPECT_EQ(in.value().opcode, Opcode::kJnz);
  EXPECT_EQ(in.value().imm, -2);
}

TEST(Assembler, DataDirectivesAndSymbols) {
  auto prog = assemble(R"(
    .equ BASE, 0xC0000000
    .text 0x80000000
main:
    movh d1, hi(table)
    ori  d1, d1, lo(table)
    halt
    .data BASE
var1:
    .word 0x11223344
    .half 0x5566
    .byte 0x77
    .align 8
table:
    .word 1, 2, 3
    .space 8
)");
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
  const Program& p = prog.value();
  auto table = p.symbol_addr("table");
  ASSERT_TRUE(table.is_ok());
  EXPECT_EQ(table.value(), 0xC0000008u);  // 4+2+1 aligned up to 8
  const Section& data = p.sections()[1];
  EXPECT_EQ(data.bytes[0], 0x44);
  EXPECT_EQ(data.bytes[3], 0x11);
  EXPECT_EQ(data.bytes[4], 0x66);
  EXPECT_EQ(data.bytes[6], 0x77);
  EXPECT_EQ(data.bytes[7], 0x00);  // align padding
  EXPECT_EQ(data.bytes[8], 1);
  EXPECT_EQ(data.bytes.size(), 8u + 12u + 8u);
}

TEST(Assembler, HiLoHia) {
  auto prog = assemble(R"(
    .text 0x80000000
main:
    movh  d0, hi(0x8004A123)
    ori   d0, d0, lo(0x8004A123)
    movha a2, hia(0x8004A123)
    halt
)");
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
  const auto& bytes = prog.value().sections()[0].bytes;
  auto word_at = [&](usize i) {
    u32 w = 0;
    for (int b = 0; b < 4; ++b) w |= bytes[i * 4 + b] << (8 * b);
    return decode(w).value();
  };
  EXPECT_EQ(word_at(0).imm, 0x8004 - 0x10000);  // movh stores raw low 16 sign-extended
  EXPECT_EQ(static_cast<u16>(word_at(1).imm), 0xA123);
  // hia rounds up because bit 15 of the low half is set.
  EXPECT_EQ(static_cast<u16>(word_at(2).imm), 0x8005);
}

TEST(Assembler, ForwardReferences) {
  auto prog = assemble(R"(
    .text 0x80000000
main:
    j     end
    nop
end:
    halt
)");
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
}

TEST(Assembler, MemoryOperandForms) {
  auto prog = assemble(R"(
    .text 0x80000000
main:
    ld.w d1, [a2]
    ld.w d1, [a2+4]
    ld.w d1, [a2-4]
    st.a a3, [a2+0x10]
    lea  a4, [a5+lo(0x12348)]
    halt
)");
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
}

TEST(Assembler, CoreRegisterNames) {
  auto prog = assemble(R"(
    .text 0x80000000
main:
    mfcr d0, icr
    mtcr biv, d0
    mfcr d1, ccnt_lo
    halt
)");
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
  const auto& bytes = prog.value().sections()[0].bytes;
  u32 w = 0;
  for (int b = 0; b < 4; ++b) w |= bytes[b] << (8 * b);
  EXPECT_EQ(decode(w).value().imm,
            static_cast<i32>(isa::CoreReg::kIcr));
}

struct AsmError {
  const char* source;
  const char* why;
};

class AssemblerErrors : public ::testing::TestWithParam<AsmError> {};

TEST_P(AssemblerErrors, Rejected) {
  auto prog = assemble(GetParam().source);
  EXPECT_FALSE(prog.is_ok()) << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AssemblerErrors,
    ::testing::Values(
        AsmError{"    movd d0, 1\n", "instruction before section"},
        AsmError{"    .text 0x0\n    bogus d0\n", "unknown mnemonic"},
        AsmError{"    .text 0x0\n    movd a0, 1\n    halt\n",
                 "a-reg where d-reg required"},
        AsmError{"    .text 0x0\n    movd d0\n", "missing operand"},
        AsmError{"    .text 0x0\n    movd d0, 1, 2\n", "extra operand"},
        AsmError{"    .text 0x0\n    j nowhere\n", "undefined symbol"},
        AsmError{"    .text 0x0\nx:\nx:\n    halt\n", "duplicate label"},
        AsmError{"    .text 0x0\n    movd d0, 0x12345\n",
                 "immediate out of range"},
        AsmError{"    .text 0x0\n    ld.w d0, [d1+0]\n",
                 "d-reg as memory base"},
        AsmError{"    .text 0x0\n    .align 3\n", "non-pow2 align"},
        AsmError{"    .text 0x0\n    .word foo\n", "undefined data symbol"}));

TEST(Assembler, ErrorsMentionLineNumbers) {
  auto prog = assemble("    .text 0x0\n    nop\n    frobnicate\n");
  ASSERT_FALSE(prog.is_ok());
  EXPECT_NE(prog.status().message().find("line 3"), std::string::npos)
      << prog.status().message();
}

TEST(Assembler, ErrorsQuoteTheOffendingSourceText) {
  auto prog = assemble("    .text 0x0\n    nop\n    frobnicate d9, [q0]\n");
  ASSERT_FALSE(prog.is_ok());
  const std::string msg = prog.status().message();
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  // The raw offending line rides along after the description.
  EXPECT_NE(msg.find("frobnicate d9, [q0]"), std::string::npos) << msg;
}

TEST(Assembler, OperandErrorsQuoteTheirLineToo) {
  auto prog = assemble("    .text 0x0\n    movd d0, 0x99999\n    halt\n");
  ASSERT_FALSE(prog.is_ok());
  const std::string msg = prog.status().message();
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("movd d0, 0x99999"), std::string::npos) << msg;
}


TEST(Assembler, ExpressionEdgeCases) {
  auto prog = assemble(R"(
    .equ A, 10
    .equ B, A + 5
    .equ C, (B - 3) + (2)
    .text 0x80000000
main:
    movd d0, C             ; 14
    movd d1, -A            ; -10
    movd d2, +7            ; unary plus
    movd d3, hia(0x12347FFF) ; no round-up (bit 15 clear)
    movd d4, hia(0x12348000) ; round-up
    halt
)");
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
  const auto& bytes = prog.value().sections()[0].bytes;
  auto imm_at = [&](usize i) {
    u32 w = 0;
    for (int b = 0; b < 4; ++b) w |= bytes[i * 4 + b] << (8 * b);
    return decode(w).value().imm;
  };
  EXPECT_EQ(imm_at(0), 14);
  EXPECT_EQ(imm_at(1), -10);
  EXPECT_EQ(imm_at(2), 7);
  EXPECT_EQ(imm_at(3), 0x1234);
  EXPECT_EQ(imm_at(4), 0x1235);
}

TEST(Assembler, DotIsCurrentAddress) {
  auto prog = assemble(R"(
    .text 0x80000000
main:
    j .            ; infinite loop: branch to itself
)");
  ASSERT_TRUE(prog.is_ok()) << prog.status().to_string();
  u32 w = 0;
  for (int b = 0; b < 4; ++b) w |= prog.value().sections()[0].bytes[b] << (8 * b);
  EXPECT_EQ(decode(w).value().imm, -1);  // disp to self
}

TEST(Assembler, MultipleLabelsOnOneLine) {
  auto prog = assemble(R"(
    .text 0x80000000
a: b: c:
    halt
)");
  ASSERT_TRUE(prog.is_ok());
  EXPECT_EQ(prog.value().symbol_addr("a").value(),
            prog.value().symbol_addr("c").value());
}

// ---------------------------------------------------------------------
// Symbol map.

TEST(SymbolMap, FunctionAndDataRanges) {
  auto prog = assemble(R"(
    .text 0x80000000
main:
    nop
    nop
helper:
    nop
    halt
    .data 0xC0000000
tbl_a:
    .word 1, 2
tbl_b:
    .space 16
)");
  ASSERT_TRUE(prog.is_ok());
  SymbolMap map(prog.value());
  EXPECT_EQ(map.function_at(0x80000000), "main");
  EXPECT_EQ(map.function_at(0x80000004), "main");
  EXPECT_EQ(map.function_at(0x80000008), "helper");
  EXPECT_EQ(map.function_at(0x8000000C), "helper");
  EXPECT_EQ(map.function_at(0x80000010), "?");  // past section end
  EXPECT_EQ(map.function_at(0xC0000000), "?");  // data is not code
  EXPECT_EQ(map.data_symbol_at(0xC0000000), "tbl_a");
  EXPECT_EQ(map.data_symbol_at(0xC0000007), "tbl_a");
  EXPECT_EQ(map.data_symbol_at(0xC0000008), "tbl_b");
  EXPECT_EQ(map.data_symbol_at(0xC0000017), "tbl_b");
  EXPECT_EQ(map.data_symbol_at(0xC0000018), "?");
}

TEST(Program, EntryPrefersMain) {
  auto prog = assemble(R"(
    .text 0x80000000
start:
    nop
main:
    halt
)");
  ASSERT_TRUE(prog.is_ok());
  EXPECT_EQ(prog.value().entry(), 0x80000004u);
}

}  // namespace
}  // namespace audo::isa
