// Property tests: the pipelined, multi-issue CPU model must be
// architecturally equivalent to an independent, timing-free reference
// interpreter on randomized programs; plus cross-cutting invariants
// (determinism under observation, trace reconstruction consistency).
#include <gtest/gtest.h>

#include <array>

#include "common/prng.hpp"
#include "helpers.hpp"
#include "isa/isa.hpp"
#include "mem/memory_map.hpp"
#include "profiling/spec.hpp"

namespace audo {
namespace {

// ---------------------------------------------------------------------
// A deliberately naive reference interpreter: executes one instruction
// per step, flat memory, no pipeline/caches/bus. Written independently
// of cpu.cpp so bugs do not cancel out.
class ReferenceIss {
 public:
  std::array<u32, 16> d{};
  std::array<u32, 16> a{};
  Addr pc = 0;
  bool halted = false;

  // Flat views of the memories the generated programs touch.
  std::vector<u8> dspr = std::vector<u8>(64 * 1024, 0);
  std::vector<u8> flash = std::vector<u8>(512 * 1024, 0);

  u32 load(Addr addr, unsigned bytes) {
    u8* base = backing(addr);
    if (base == nullptr) return 0;
    u32 v = 0;
    for (unsigned i = 0; i < bytes; ++i) v |= u32{base[i]} << (8 * i);
    return v;
  }
  void store(Addr addr, u32 value, unsigned bytes) {
    u8* base = backing(addr);
    if (base == nullptr) return;
    for (unsigned i = 0; i < bytes; ++i) {
      base[i] = static_cast<u8>(value >> (8 * i));
    }
  }

  void step() {
    const u32 word = load(pc, 4);
    const auto decoded = isa::decode(word);
    if (!decoded.is_ok()) {
      halted = true;
      return;
    }
    const isa::Instr in = decoded.value();
    const Addr next = pc + 4;
    const Addr target = next + static_cast<Addr>(in.imm * 4);
    pc = next;
    using enum isa::Opcode;
    switch (in.opcode) {
      case kNop: break;
      case kHalt: halted = true; break;
      case kAdd: d[in.rd] = d[in.ra] + d[in.rb]; break;
      case kSub: d[in.rd] = d[in.ra] - d[in.rb]; break;
      case kAnd: d[in.rd] = d[in.ra] & d[in.rb]; break;
      case kOr: d[in.rd] = d[in.ra] | d[in.rb]; break;
      case kXor: d[in.rd] = d[in.ra] ^ d[in.rb]; break;
      case kShl: d[in.rd] = d[in.ra] << (d[in.rb] & 31); break;
      case kShr: d[in.rd] = d[in.ra] >> (d[in.rb] & 31); break;
      case kSar:
        d[in.rd] = static_cast<u32>(static_cast<i32>(d[in.ra]) >>
                                    (d[in.rb] & 31));
        break;
      case kMul: d[in.rd] = d[in.ra] * d[in.rb]; break;
      case kMac: d[in.rd] += d[in.ra] * d[in.rb]; break;
      case kDiv: {
        const i32 den = static_cast<i32>(d[in.rb]);
        if (den == 0) {
          d[in.rd] = 0xFFFFFFFF;
        } else if (den == -1) {
          d[in.rd] = 0u - d[in.ra];
        } else {
          d[in.rd] = static_cast<u32>(static_cast<i32>(d[in.ra]) / den);
        }
        break;
      }
      case kMin:
        d[in.rd] = static_cast<i32>(d[in.ra]) < static_cast<i32>(d[in.rb])
                       ? d[in.ra] : d[in.rb];
        break;
      case kMax:
        d[in.rd] = static_cast<i32>(d[in.ra]) > static_cast<i32>(d[in.rb])
                       ? d[in.ra] : d[in.rb];
        break;
      case kAbs: {
        const i32 v = static_cast<i32>(d[in.ra]);
        d[in.rd] = static_cast<u32>(v < 0 ? -v : v);
        break;
      }
      case kAddi: d[in.rd] = d[in.ra] + static_cast<u32>(in.imm); break;
      case kAndi: d[in.rd] = d[in.ra] & (static_cast<u32>(in.imm) & 0xFFFF); break;
      case kOri: d[in.rd] = d[in.ra] | (static_cast<u32>(in.imm) & 0xFFFF); break;
      case kXori: d[in.rd] = d[in.ra] ^ (static_cast<u32>(in.imm) & 0xFFFF); break;
      case kShli: d[in.rd] = d[in.ra] << (in.imm & 31); break;
      case kShri: d[in.rd] = d[in.ra] >> (in.imm & 31); break;
      case kSari:
        d[in.rd] = static_cast<u32>(static_cast<i32>(d[in.ra]) >> (in.imm & 31));
        break;
      case kMovd: d[in.rd] = static_cast<u32>(in.imm); break;
      case kMovh: d[in.rd] = (static_cast<u32>(in.imm) & 0xFFFF) << 16; break;
      case kMovDA: d[in.rd] = a[in.ra]; break;
      case kMovAD: a[in.rd] = d[in.ra]; break;
      case kMovA: a[in.rd] = a[in.ra]; break;
      case kMovha: a[in.rd] = (static_cast<u32>(in.imm) & 0xFFFF) << 16; break;
      case kLea: a[in.rd] = a[in.ra] + static_cast<u32>(in.imm); break;
      case kAdda: a[in.rd] = a[in.ra] + a[in.rb]; break;
      case kLdW: d[in.rd] = load(a[in.ra] + static_cast<Addr>(in.imm), 4); break;
      case kLdH: {
        const u32 raw = load(a[in.ra] + static_cast<Addr>(in.imm), 2);
        d[in.rd] = static_cast<u32>(static_cast<i32>(static_cast<i16>(raw)));
        break;
      }
      case kLdB: {
        const u32 raw = load(a[in.ra] + static_cast<Addr>(in.imm), 1);
        d[in.rd] = static_cast<u32>(static_cast<i32>(static_cast<i8>(raw)));
        break;
      }
      case kLdA: a[in.rd] = load(a[in.ra] + static_cast<Addr>(in.imm), 4); break;
      case kStW: store(a[in.ra] + static_cast<Addr>(in.imm), d[in.rd], 4); break;
      case kStH: store(a[in.ra] + static_cast<Addr>(in.imm), d[in.rd], 2); break;
      case kStB: store(a[in.ra] + static_cast<Addr>(in.imm), d[in.rd], 1); break;
      case kStA: store(a[in.ra] + static_cast<Addr>(in.imm), a[in.rd], 4); break;
      case kJ: pc = target; break;
      case kJi: pc = a[in.ra]; break;
      case kCall: a[11] = next; pc = target; break;
      case kCalli: a[11] = next; pc = a[in.ra]; break;
      case kRet: pc = a[11]; break;
      case kJeq: if (d[in.rd] == d[in.ra]) pc = target; break;
      case kJne: if (d[in.rd] != d[in.ra]) pc = target; break;
      case kJlt:
        if (static_cast<i32>(d[in.rd]) < static_cast<i32>(d[in.ra])) pc = target;
        break;
      case kJge:
        if (static_cast<i32>(d[in.rd]) >= static_cast<i32>(d[in.ra])) pc = target;
        break;
      case kJltu: if (d[in.rd] < d[in.ra]) pc = target; break;
      case kJgeu: if (d[in.rd] >= d[in.ra]) pc = target; break;
      case kJz: if (d[in.rd] == 0) pc = target; break;
      case kJnz: if (d[in.rd] != 0) pc = target; break;
      case kLoop:
        a[in.rd] -= 1;
        if (a[in.rd] != 0) pc = target;
        break;
      default:
        // SYS instructions not generated by the random generator.
        break;
    }
  }

 private:
  u8* backing(Addr addr) {
    if (addr >= mem::kDsprBase && addr - mem::kDsprBase + 4 <= dspr.size()) {
      return dspr.data() + (addr - mem::kDsprBase);
    }
    if (mem::is_pflash(addr, static_cast<u32>(flash.size()))) {
      const u32 offset = mem::pflash_offset(addr);
      if (offset + 4 <= flash.size()) return flash.data() + offset;
    }
    return nullptr;
  }
};

// ---------------------------------------------------------------------
// Random program generation: straight-line blocks of ALU + scratchpad
// memory ops with occasional bounded loops, terminated by HALT.
isa::Program random_program(u64 seed) {
  Prng prng(seed);
  std::vector<isa::Instr> body;

  auto alu = [&]() {
    static constexpr isa::Opcode kAluOps[] = {
        isa::Opcode::kAdd,  isa::Opcode::kSub,  isa::Opcode::kAnd,
        isa::Opcode::kOr,   isa::Opcode::kXor,  isa::Opcode::kShl,
        isa::Opcode::kShr,  isa::Opcode::kSar,  isa::Opcode::kMul,
        isa::Opcode::kMac,  isa::Opcode::kDiv,  isa::Opcode::kMin,
        isa::Opcode::kMax,  isa::Opcode::kAddi, isa::Opcode::kAndi,
        isa::Opcode::kOri,  isa::Opcode::kXori, isa::Opcode::kShli,
        isa::Opcode::kShri, isa::Opcode::kSari, isa::Opcode::kMovd,
        isa::Opcode::kMovh, isa::Opcode::kAbs,  isa::Opcode::kMovDA,
    };
    isa::Instr in;
    in.opcode = kAluOps[prng.next_below(std::size(kAluOps))];
    in.rd = static_cast<u8>(prng.next_below(16));
    in.ra = static_cast<u8>(prng.next_below(16));
    if (isa::op_info(in.opcode).uses_rb) {
      in.rb = static_cast<u8>(prng.next_below(16));
    } else {
      in.imm = static_cast<i32>(prng.next_range(-32768, 32767));
    }
    return in;
  };

  // Setup: a2 points at the DSPR, a3..a6 at offsets inside it.
  auto emit_movha = [&](u8 areg, u16 hi) {
    isa::Instr in;
    in.opcode = isa::Opcode::kMovha;
    in.rd = areg;
    in.imm = hi;
    body.push_back(in);
  };
  for (u8 r = 2; r <= 6; ++r) emit_movha(r, 0xC000);

  const unsigned blocks = 3 + static_cast<unsigned>(prng.next_below(4));
  for (unsigned b = 0; b < blocks; ++b) {
    const unsigned len = 8 + static_cast<unsigned>(prng.next_below(24));
    for (unsigned i = 0; i < len; ++i) {
      const u64 pick = prng.next_below(10);
      if (pick < 6) {
        body.push_back(alu());
      } else {
        // Scratchpad load/store with a safe base register and offset.
        isa::Instr in;
        static constexpr isa::Opcode kMemOps[] = {
            isa::Opcode::kLdW, isa::Opcode::kLdH, isa::Opcode::kLdB,
            isa::Opcode::kStW, isa::Opcode::kStH, isa::Opcode::kStB,
        };
        in.opcode = kMemOps[prng.next_below(std::size(kMemOps))];
        in.rd = static_cast<u8>(prng.next_below(16));
        in.ra = static_cast<u8>(2 + prng.next_below(5));  // a2..a6
        in.imm = static_cast<i32>(prng.next_below(1024)) & ~3;
        body.push_back(in);
      }
    }
    // A bounded countdown loop over the last few instructions.
    if (prng.chance(0.6)) {
      isa::Instr init;
      init.opcode = isa::Opcode::kMovd;
      init.rd = 14;
      init.imm = static_cast<i32>(2 + prng.next_below(6));
      body.push_back(init);
      isa::Instr mov;
      mov.opcode = isa::Opcode::kMovAD;
      mov.rd = 9;
      mov.ra = 14;
      body.push_back(mov);
      isa::Instr work = alu();
      body.push_back(work);
      isa::Instr loop;
      loop.opcode = isa::Opcode::kLoop;
      loop.rd = 9;
      loop.imm = -2;  // back to `work`
      body.push_back(loop);
    }
  }
  body.push_back(isa::Instr{isa::Opcode::kHalt, 0, 0, 0, 0});

  isa::Section text;
  text.name = ".text";
  text.base = 0x80000000;
  for (const isa::Instr& in : body) {
    const u32 word = isa::encode(in);
    for (int i = 0; i < 4; ++i) {
      text.bytes.push_back(static_cast<u8>(word >> (8 * i)));
    }
  }
  isa::Program program;
  program.set_entry(text.base);
  program.add_section(std::move(text));
  return program;
}

class CpuVsReference : public ::testing::TestWithParam<u64> {};

TEST_P(CpuVsReference, ArchitecturalStateMatches) {
  const isa::Program program = random_program(GetParam());

  // Pipelined model on the full SoC.
  soc::Soc soc(test::small_config());
  ASSERT_TRUE(soc.load(program).is_ok());
  soc.reset(program.entry());
  soc.run(2'000'000);
  ASSERT_TRUE(soc.tc().halted()) << "seed " << GetParam();

  // Reference interpreter.
  ReferenceIss iss;
  for (const isa::Section& sec : program.sections()) {
    for (usize i = 0; i < sec.bytes.size(); ++i) {
      iss.flash[mem::pflash_offset(sec.base) + i] = sec.bytes[i];
    }
  }
  iss.pc = program.entry();
  for (u64 steps = 0; !iss.halted && steps < 1'000'000; ++steps) iss.step();
  ASSERT_TRUE(iss.halted) << "seed " << GetParam();

  for (unsigned r = 0; r < 16; ++r) {
    EXPECT_EQ(soc.tc().d(r), iss.d[r]) << "d" << r << " seed " << GetParam();
    EXPECT_EQ(soc.tc().a(r), iss.a[r]) << "a" << r << " seed " << GetParam();
  }
  // Scratchpad contents must match too.
  for (usize i = 0; i < iss.dspr.size(); i += 4) {
    const u32 model = soc.dspr().array().read32(i);
    u32 ref = 0;
    for (int b = 0; b < 4; ++b) ref |= u32{iss.dspr[i + b]} << (8 * b);
    ASSERT_EQ(model, ref) << "dspr+" << i << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, CpuVsReference,
                         ::testing::Range<u64>(1, 41));

// ---------------------------------------------------------------------
// Flow-trace reconstruction property: replaying the decoded flow trace
// through the program image must reproduce the retired instruction count.
TEST(TraceReconstruction, FlowTraceInstructionCountsAreConsistent) {
  for (u64 seed : {7ull, 19ull, 23ull}) {
    const isa::Program program = random_program(seed);
    mcds::McdsConfig cfg;
    cfg.program_trace = true;
    cfg.sync_interval_cycles = 256;
    ed::EmulationDevice ed(test::small_config(), cfg, ed::EdConfig{});
    ASSERT_TRUE(ed.load(program).is_ok());
    ed.reset(program.entry());
    ed.run(2'000'000);
    ASSERT_TRUE(ed.soc().tc().halted());
    auto decoded = ed.download_trace();
    ASSERT_TRUE(decoded.is_ok());
    u64 traced = 0;
    for (const auto& m : decoded.value()) {
      if (m.source != mcds::MsgSource::kTcCore) continue;
      if (m.kind == mcds::MsgKind::kFlow || m.kind == mcds::MsgKind::kSync) {
        traced += m.instr_count;
      }
    }
    EXPECT_LE(traced, ed.soc().tc().retired());
    EXPECT_GE(traced + 300, ed.soc().tc().retired()) << "seed " << seed;
  }
}

// Determinism under full observation, across MCDS configurations.
TEST(ObservationInvariance, AnyMcdsConfigYieldsSameExecution) {
  const isa::Program program = random_program(12345);
  u64 reference_cycles = 0;
  std::array<u32, 16> reference_d{};
  {
    soc::Soc soc(test::small_config());
    ASSERT_TRUE(soc.load(program).is_ok());
    soc.reset(program.entry());
    soc.run(2'000'000);
    reference_cycles = soc.cycle();
    for (unsigned r = 0; r < 16; ++r) reference_d[r] = soc.tc().d(r);
  }
  for (int variant = 0; variant < 4; ++variant) {
    mcds::McdsConfig cfg;
    cfg.program_trace = variant & 1;
    cfg.data_trace = variant & 2;
    cfg.cycle_accurate = variant == 3;
    cfg.counter_groups = profiling::standard_groups(100);
    ed::EdConfig ed_cfg;
    ed_cfg.emem.size_bytes = 16 * 1024;  // will overflow: still invariant
    ed_cfg.emem.overlay_bytes = 0;
    ed::EmulationDevice ed(test::small_config(), cfg, ed_cfg);
    ASSERT_TRUE(ed.load(program).is_ok());
    ed.reset(program.entry());
    ed.run(2'000'000);
    EXPECT_EQ(ed.soc().cycle(), reference_cycles) << "variant " << variant;
    for (unsigned r = 0; r < 16; ++r) {
      EXPECT_EQ(ed.soc().tc().d(r), reference_d[r]);
    }
  }
}

}  // namespace
}  // namespace audo
