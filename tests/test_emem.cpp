// EMEM trace-sink tests: fill/ring/stream modes, byte-accurate occupancy,
// drain semantics and the calibration overlay.
#include <gtest/gtest.h>

#include "emem/emem.hpp"

namespace audo::emem {
namespace {

mcds::EncodedMessage unit(usize bytes, u8 fill = 0xAA) {
  mcds::EncodedMessage m;
  m.bytes.assign(bytes, fill);
  return m;
}

EmemConfig tiny(TraceMode mode, u32 trace_bytes = 64) {
  EmemConfig cfg;
  cfg.size_bytes = trace_bytes + 32;
  cfg.overlay_bytes = 32;
  cfg.mode = mode;
  return cfg;
}

TEST(Emem, FillModeStopsWhenFull) {
  Emem emem(tiny(TraceMode::kFill, 64));
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(emem.push(unit(10), i));
  }
  EXPECT_EQ(emem.occupancy_bytes(), 60u);
  EXPECT_FALSE(emem.push(unit(10), 7));  // would exceed 64
  EXPECT_EQ(emem.dropped_messages(), 1u);
  EXPECT_TRUE(emem.push(unit(4), 8));  // exact fit
  EXPECT_EQ(emem.occupancy_bytes(), 64u);
}

TEST(Emem, RingModeOverwritesOldest) {
  Emem emem(tiny(TraceMode::kRing, 32));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(emem.push(unit(10, static_cast<u8>(i)), i));
  }
  // 4 x 10 bytes into 32: the first message was overwritten.
  EXPECT_EQ(emem.overwritten_messages(), 1u);
  EXPECT_LE(emem.occupancy_bytes(), 32u);
  emem.download_all();
  ASSERT_EQ(emem.host_units().size(), 3u);
  EXPECT_EQ(emem.host_units()[0].bytes[0], 1);  // message 0 gone
}

TEST(Emem, StreamModeDrainsInOrder) {
  Emem emem(tiny(TraceMode::kStream, 64));
  emem.push(unit(8, 1), 0);
  emem.push(unit(8, 2), 1);
  EXPECT_EQ(emem.occupancy_bytes(), 16u);
  // Drain 10 bytes: message 1 fully, 2 bytes of message 2.
  EXPECT_EQ(emem.drain(10), 10u);
  EXPECT_EQ(emem.occupancy_bytes(), 6u);
  ASSERT_EQ(emem.host_units().size(), 1u);
  EXPECT_EQ(emem.host_units()[0].bytes[0], 1);
  // Finish.
  EXPECT_EQ(emem.drain(100), 6u);
  ASSERT_EQ(emem.host_units().size(), 2u);
  EXPECT_EQ(emem.occupancy_bytes(), 0u);
}

TEST(Emem, StreamModeOverflowsWhenProductionOutpacesDrain) {
  Emem emem(tiny(TraceMode::kStream, 20));
  bool dropped = false;
  for (int i = 0; i < 10; ++i) {
    if (!emem.push(unit(8), i)) dropped = true;
    emem.drain(2);  // tool slower than production
  }
  EXPECT_TRUE(dropped);
  EXPECT_GT(emem.dropped_messages(), 0u);
}

TEST(Emem, OversizeMessageRejected) {
  Emem emem(tiny(TraceMode::kRing, 16));
  EXPECT_FALSE(emem.push(unit(17), 0));
  EXPECT_EQ(emem.dropped_messages(), 1u);
}

TEST(Emem, StatsAccumulate) {
  Emem emem(tiny(TraceMode::kFill, 64));
  emem.push(unit(5), 0);
  emem.push(unit(7), 1);
  EXPECT_EQ(emem.total_pushed_messages(), 2u);
  EXPECT_EQ(emem.total_pushed_bytes(), 12u);
  emem.clear();
  EXPECT_EQ(emem.occupancy_bytes(), 0u);
  // Lifetime stats survive clear().
  EXPECT_EQ(emem.total_pushed_messages(), 2u);
}

TEST(Emem, OverlayIsIndependentStorage) {
  Emem emem(tiny(TraceMode::kFill, 64));
  emem.overlay().write32(0, 0xCAFEF00D);
  emem.push(unit(10), 0);
  EXPECT_EQ(emem.overlay().read32(0), 0xCAFEF00Du);
  EXPECT_EQ(emem.overlay().size(), 32u);
}

TEST(Emem, DownloadAfterPartialDrainKeepsByteAccounting) {
  Emem emem(tiny(TraceMode::kStream, 64));
  emem.push(unit(10, 1), 0);
  emem.push(unit(10, 2), 1);
  emem.drain(4);  // partial front message
  EXPECT_EQ(emem.occupancy_bytes(), 16u);
  emem.download_all();
  EXPECT_EQ(emem.occupancy_bytes(), 0u);
  EXPECT_EQ(emem.host_units().size(), 2u);
}

}  // namespace
}  // namespace audo::emem
