// Memory-model tests: PFlash prefetch/read buffers and code/data port
// arbitration, DFlash programming semantics, SRAM and scratchpads.
#include <gtest/gtest.h>

#include "bus/crossbar.hpp"
#include "mem/dflash.hpp"
#include "mem/mem_array.hpp"
#include "mem/memory_map.hpp"
#include "mem/pflash.hpp"
#include "mem/sram.hpp"

namespace audo::mem {
namespace {

TEST(MemArray, WidthsAndEndianness) {
  MemArray m(64);
  m.write32(0, 0x11223344);
  EXPECT_EQ(m.read(0, 1), 0x44u);
  EXPECT_EQ(m.read(1, 1), 0x33u);
  EXPECT_EQ(m.read(0, 2), 0x3344u);
  EXPECT_EQ(m.read(2, 2), 0x1122u);
  EXPECT_EQ(m.read32(0), 0x11223344u);
}

TEST(MemArray, OutOfRangeIsSafeAndCounted) {
  MemArray m(8);
  EXPECT_EQ(m.read32(8), 0u);
  m.write32(6, 0xFFFFFFFF);  // crosses the end
  EXPECT_EQ(m.violations(), 2u);
  EXPECT_EQ(m.read32(4), 0u);  // write was dropped entirely
}

TEST(MemoryMap, AliasesAndOffsets) {
  EXPECT_TRUE(is_pflash(0x80000000, 1024));
  EXPECT_TRUE(is_pflash(0xA0000000, 1024));
  EXPECT_FALSE(is_pflash(0x80000400, 1024));
  EXPECT_TRUE(is_pflash_cached_alias(0x80000000, 1024));
  EXPECT_FALSE(is_pflash_cached_alias(0xA0000000, 1024));
  EXPECT_EQ(pflash_offset(0x80012345), 0x12345u);
  EXPECT_EQ(pflash_offset(0xA0012345), 0x12345u);
}

// ---------------------------------------------------------------------
// PFlash via a crossbar (the only way its ports are exercised).

struct FlashRig {
  PFlashConfig config;
  PFlash flash;
  bus::Crossbar bus;
  unsigned code_slave;
  unsigned data_slave;

  explicit FlashRig(PFlashConfig cfg) : config(cfg), flash(cfg) {
    code_slave = bus.add_slave(&flash.code_port());
    data_slave = bus.add_slave(&flash.data_port());
    EXPECT_TRUE(bus.map_region(kPFlashCachedBase, cfg.size, code_slave,
                               bus::PortFilter::kFetchOnly)
                    .is_ok());
    EXPECT_TRUE(bus.map_region(kPFlashCachedBase, cfg.size, data_slave,
                               bus::PortFilter::kDataOnly)
                    .is_ok());
  }

  /// Blocking read; returns (value, cycles taken).
  std::pair<u32, unsigned> read(Addr addr, bool fetch,
                                bus::MasterId master = bus::MasterId::kTcData) {
    bus::MasterPort port;
    bus::BusRequest req;
    req.master = master;
    req.addr = addr;
    req.fetch = fetch;
    EXPECT_TRUE(bus.issue(port, req, now));
    unsigned cycles = 0;
    while (!port.done()) {
      ++now;
      flash.tick(now);
      bus.step(now);
      ++cycles;
      EXPECT_LT(cycles, 100u);
    }
    return {port.take_rdata(), cycles};
  }

  Cycle now = 0;
};

TEST(PFlash, MissThenBufferHit) {
  PFlashConfig cfg;
  cfg.wait_states = 5;
  cfg.sequential_prefetch = false;
  cfg.code_buffers = 2;
  FlashRig rig(cfg);
  rig.flash.array().write32(0x100, 0xABCD0001);

  auto [v1, t1] = rig.read(kPFlashCachedBase + 0x100, /*fetch=*/true);
  EXPECT_EQ(v1, 0xABCD0001u);
  EXPECT_GE(t1, cfg.wait_states);

  auto [v2, t2] = rig.read(kPFlashCachedBase + 0x104, true);  // same line
  EXPECT_EQ(t2, 1u);  // buffer hit
  EXPECT_EQ(rig.flash.stats().code_buffer_hits, 1u);
  (void)v2;
}

TEST(PFlash, SequentialPrefetchHidesLatency) {
  PFlashConfig cfg;
  cfg.wait_states = 5;
  cfg.sequential_prefetch = true;
  cfg.code_buffers = 2;
  FlashRig rig(cfg);

  auto [v1, t1] = rig.read(kPFlashCachedBase + 0x000, true);  // miss, prefetch 0x20
  (void)v1;
  EXPECT_GE(t1, cfg.wait_states);
  EXPECT_EQ(rig.flash.stats().prefetches_issued, 1u);
  // Simulate some compute time so the prefetch lands.
  for (int i = 0; i < 10; ++i) {
    ++rig.now;
    rig.flash.tick(rig.now);
    rig.bus.step(rig.now);
  }
  auto [v2, t2] = rig.read(kPFlashCachedBase + 0x020, true);
  (void)v2;
  EXPECT_EQ(t2, 1u);  // prefetched
  EXPECT_EQ(rig.flash.stats().prefetch_hits, 1u);
}

TEST(PFlash, NoPrefetchWithSingleBuffer) {
  PFlashConfig cfg;
  cfg.sequential_prefetch = true;
  cfg.code_buffers = 1;
  FlashRig rig(cfg);
  rig.read(kPFlashCachedBase + 0x000, true);
  EXPECT_EQ(rig.flash.stats().prefetches_issued, 0u);
}

TEST(PFlash, PortsArbitrateForTheArray) {
  PFlashConfig cfg;
  cfg.wait_states = 5;
  cfg.sequential_prefetch = false;
  FlashRig rig(cfg);

  // Start a code fetch and a data read in the same cycle: the array
  // serves them serially, so the second takes ~2x the wait states.
  bus::MasterPort code_port, data_port;
  bus::BusRequest creq, dreq;
  creq.master = bus::MasterId::kTcFetch;
  creq.addr = kPFlashCachedBase + 0x000;
  creq.fetch = true;
  dreq.master = bus::MasterId::kTcData;
  dreq.addr = kPFlashCachedBase + 0x800;
  ASSERT_TRUE(rig.bus.issue(code_port, creq, 0));
  ASSERT_TRUE(rig.bus.issue(data_port, dreq, 0));
  Cycle now = 0;
  unsigned code_done = 0, data_done = 0;
  while (!code_done || !data_done) {
    ++now;
    rig.flash.tick(now);
    rig.bus.step(now);
    if (code_port.done() && !code_done) code_done = static_cast<unsigned>(now);
    if (data_port.done() && !data_done) data_done = static_cast<unsigned>(now);
    ASSERT_LT(now, 100u);
  }
  EXPECT_GT(rig.flash.stats().port_conflict_cycles, 0u);
  const unsigned first = std::min(code_done, data_done);
  const unsigned second = std::max(code_done, data_done);
  EXPECT_GE(second, first + cfg.wait_states);
}

TEST(PFlash, DataReadBuffersWork) {
  PFlashConfig cfg;
  cfg.data_buffers = 2;
  cfg.sequential_prefetch = false;
  FlashRig rig(cfg);
  rig.read(kPFlashCachedBase + 0x100, false);
  auto [v, t] = rig.read(kPFlashCachedBase + 0x104, false);
  (void)v;
  EXPECT_EQ(t, 1u);
  EXPECT_EQ(rig.flash.stats().data_buffer_hits, 1u);
}

TEST(PFlash, WritesAreIgnoredButCounted) {
  FlashRig rig(PFlashConfig{});
  rig.flash.array().write32(0x40, 0x12345678);
  bus::MasterPort port;
  bus::BusRequest req;
  req.master = bus::MasterId::kTcData;
  req.addr = kPFlashCachedBase + 0x40;
  req.kind = bus::AccessKind::kWrite;
  req.wdata = 0;
  ASSERT_TRUE(rig.bus.issue(port, req, 0));
  Cycle now = 0;
  while (!port.done()) {
    ++now;
    rig.flash.tick(now);
    rig.bus.step(now);
  }
  port.take_rdata();
  EXPECT_EQ(rig.flash.array().read32(0x40), 0x12345678u);
  EXPECT_EQ(rig.flash.stats().illegal_writes, 1u);
}

TEST(PFlash, InvalidateBuffersForcesArrayAccess) {
  PFlashConfig cfg;
  cfg.sequential_prefetch = false;
  FlashRig rig(cfg);
  rig.read(kPFlashCachedBase + 0x100, true);
  rig.flash.invalidate_buffers();
  auto [v, t] = rig.read(kPFlashCachedBase + 0x104, true);
  (void)v;
  EXPECT_GT(t, 1u);
}

// ---------------------------------------------------------------------
// DFlash.

TEST(DFlash, ReadWriteLatenciesAndAndSemantics) {
  DFlashConfig cfg;
  cfg.read_latency = 6;
  cfg.write_latency = 60;
  DFlashSlave dflash(kDFlashBase, cfg);
  dflash.erase_all();

  bus::Crossbar bus;
  const unsigned s = bus.add_slave(&dflash);
  ASSERT_TRUE(bus.map_region(kDFlashBase, cfg.size, s).is_ok());

  auto transfer = [&](bus::AccessKind kind, Addr addr, u32 wdata) {
    bus::MasterPort port;
    bus::BusRequest req;
    req.master = bus::MasterId::kTcData;
    req.addr = addr;
    req.kind = kind;
    req.wdata = wdata;
    EXPECT_TRUE(bus.issue(port, req, 0));
    unsigned cycles = 0;
    static Cycle now = 0;
    while (!port.done()) {
      bus.step(++now);
      ++cycles;
    }
    return std::pair{port.take_rdata(), cycles};
  };

  auto [erased, rt] = transfer(bus::AccessKind::kRead, kDFlashBase, 0);
  EXPECT_EQ(erased, 0xFFFFFFFFu);
  EXPECT_EQ(rt, cfg.read_latency);

  auto [ignored, wt] = transfer(bus::AccessKind::kWrite, kDFlashBase, 0x1234FFFF);
  (void)ignored;
  EXPECT_EQ(wt, cfg.write_latency);
  auto [val, rt2] = transfer(bus::AccessKind::kRead, kDFlashBase, 0);
  (void)rt2;
  EXPECT_EQ(val, 0x1234FFFFu);

  // Programming can only clear bits.
  transfer(bus::AccessKind::kWrite, kDFlashBase, 0xFFFF0000);
  auto [val2, rt3] = transfer(bus::AccessKind::kRead, kDFlashBase, 0);
  (void)rt3;
  EXPECT_EQ(val2, 0x12340000u);
  EXPECT_EQ(dflash.writes(), 2u);
}

// ---------------------------------------------------------------------
// Scratchpads.

TEST(Scratchpad, ContainsAndCounters) {
  Scratchpad spr(kDsprBase, 1024);
  EXPECT_TRUE(spr.contains(kDsprBase));
  EXPECT_TRUE(spr.contains(kDsprBase + 1023));
  EXPECT_FALSE(spr.contains(kDsprBase + 1024));
  spr.write(kDsprBase + 4, 0x55, 1);
  EXPECT_EQ(spr.read(kDsprBase + 4, 1), 0x55u);
  EXPECT_EQ(spr.reads(), 1u);
  EXPECT_EQ(spr.writes(), 1u);
}

TEST(ScratchpadSlave, BusViewSharesStorage) {
  Scratchpad spr(kDsprBase, 1024);
  ScratchpadSlave slave("DSPR", &spr, 2);
  bus::Crossbar bus;
  const unsigned s = bus.add_slave(&slave);
  ASSERT_TRUE(bus.map_region(kDsprBase, 1024, s).is_ok());

  bus::MasterPort port;
  bus::BusRequest req;
  req.master = bus::MasterId::kDma;
  req.addr = kDsprBase + 16;
  req.kind = bus::AccessKind::kWrite;
  req.wdata = 0xFEEDFACE;
  ASSERT_TRUE(bus.issue(port, req, 0));
  Cycle now = 0;
  while (!port.done()) bus.step(++now);
  port.take_rdata();
  // Visible through the direct (core-side) view.
  EXPECT_EQ(spr.read(kDsprBase + 16, 4), 0xFEEDFACEu);
}

TEST(SramSlave, LatencyAndData) {
  SramSlave lmu("LMU", kLmuBase, 4096, 2);
  bus::Crossbar bus;
  const unsigned s = bus.add_slave(&lmu);
  ASSERT_TRUE(bus.map_region(kLmuBase, 4096, s).is_ok());
  bus::MasterPort port;
  bus::BusRequest wreq;
  wreq.master = bus::MasterId::kTcData;
  wreq.addr = kLmuBase + 8;
  wreq.kind = bus::AccessKind::kWrite;
  wreq.wdata = 42;
  ASSERT_TRUE(bus.issue(port, wreq, 0));
  Cycle now = 0;
  unsigned cycles = 0;
  while (!port.done()) {
    bus.step(++now);
    ++cycles;
  }
  port.take_rdata();
  EXPECT_EQ(cycles, 2u);
  EXPECT_EQ(lmu.array().read32(8), 42u);
}

}  // namespace
}  // namespace audo::mem
