// Crossbar tests: decoding, port filters, arbitration policies,
// contention accounting and transaction timing.
#include <gtest/gtest.h>

#include "bus/crossbar.hpp"

namespace audo::bus {
namespace {

/// Scriptable slave with fixed latency.
class FakeSlave final : public BusSlave {
 public:
  explicit FakeSlave(unsigned latency, std::string name = "fake")
      : latency_(latency), name_(std::move(name)) {}

  unsigned start_access(const BusRequest&) override {
    ++starts_;
    return latency_;
  }
  u32 complete_access(const BusRequest& req) override {
    ++completions_;
    if (req.kind == AccessKind::kWrite) {
      last_write_ = req.wdata;
      return 0;
    }
    return 0xC0FFEE00 + completions_;
  }
  std::string_view name() const override { return name_; }

  unsigned starts_ = 0;
  unsigned completions_ = 0;
  u32 last_write_ = 0;

 private:
  unsigned latency_;
  std::string name_;
};

BusRequest read_req(MasterId master, Addr addr, bool fetch = false) {
  BusRequest req;
  req.master = master;
  req.addr = addr;
  req.fetch = fetch;
  return req;
}

TEST(Crossbar, DecodeAndRegionOverlap) {
  Crossbar bus;
  FakeSlave s0(1), s1(1);
  const unsigned i0 = bus.add_slave(&s0);
  const unsigned i1 = bus.add_slave(&s1);
  ASSERT_TRUE(bus.map_region(0x1000, 0x100, i0).is_ok());
  ASSERT_TRUE(bus.map_region(0x2000, 0x100, i1).is_ok());
  EXPECT_FALSE(bus.map_region(0x1080, 0x100, i1).is_ok());  // overlap
  EXPECT_FALSE(bus.map_region(0x3000, 0x100, 99).is_ok());  // bad slave
  EXPECT_FALSE(bus.map_region(0x3000, 0, i0).is_ok());      // empty

  EXPECT_EQ(bus.decode(0x1000).value(), i0);
  EXPECT_EQ(bus.decode(0x10FF).value(), i0);
  EXPECT_EQ(bus.decode(0x2000).value(), i1);
  EXPECT_FALSE(bus.decode(0x1100).is_ok());
}

TEST(Crossbar, FetchDataPortFilters) {
  Crossbar bus;
  FakeSlave code(1, "code"), data(1, "data");
  const unsigned ic = bus.add_slave(&code);
  const unsigned id = bus.add_slave(&data);
  // Same addresses, disjoint filters: allowed.
  ASSERT_TRUE(bus.map_region(0x8000, 0x100, ic, PortFilter::kFetchOnly).is_ok());
  ASSERT_TRUE(bus.map_region(0x8000, 0x100, id, PortFilter::kDataOnly).is_ok());
  // A kAny overlap is rejected.
  FakeSlave other(1);
  const unsigned io = bus.add_slave(&other);
  EXPECT_FALSE(bus.map_region(0x8000, 0x100, io).is_ok());

  EXPECT_EQ(bus.decode(0x8000, /*fetch=*/true).value(), ic);
  EXPECT_EQ(bus.decode(0x8000, /*fetch=*/false).value(), id);
}

TEST(Crossbar, SingleTransactionTiming) {
  Crossbar bus;
  FakeSlave slave(3);
  const unsigned s = bus.add_slave(&slave);
  ASSERT_TRUE(bus.map_region(0x0, 0x1000, s).is_ok());

  MasterPort port;
  ASSERT_TRUE(bus.issue(port, read_req(MasterId::kTcData, 0x10), 0));
  EXPECT_TRUE(port.busy());
  // Grant happens in the first step; latency 3 -> done after 3 more steps.
  Cycle now = 0;
  int steps = 0;
  while (!port.done()) {
    bus.step(++now);
    ++steps;
    ASSERT_LT(steps, 10);
  }
  EXPECT_EQ(steps, 3);
  EXPECT_EQ(port.take_rdata(), 0xC0FFEE01u);
  EXPECT_TRUE(port.idle());
  EXPECT_EQ(bus.slave_stats(s).grants, 1u);
  EXPECT_EQ(bus.slave_stats(s).reads, 1u);
}

TEST(Crossbar, IssueToUnmappedAddressFails) {
  Crossbar bus;
  FakeSlave slave(1);
  bus.map_region(0x0, 0x100, bus.add_slave(&slave)).is_ok();
  MasterPort port;
  EXPECT_FALSE(bus.issue(port, read_req(MasterId::kTcData, 0x5000), 0));
  EXPECT_TRUE(port.idle());
}

TEST(Crossbar, FixedPriorityWinsContention) {
  Crossbar bus(ArbitrationPolicy::kFixedPriority);
  FakeSlave slave(2);
  const unsigned s = bus.add_slave(&slave);
  ASSERT_TRUE(bus.map_region(0x0, 0x1000, s).is_ok());

  MasterPort dma_port, cpu_port;
  // DMA enumerates before TcData -> higher default priority.
  ASSERT_TRUE(bus.issue(cpu_port, read_req(MasterId::kTcData, 0x4), 0));
  ASSERT_TRUE(bus.issue(dma_port, read_req(MasterId::kDma, 0x8), 0));

  bus.step(1);
  EXPECT_TRUE(bus.observation().contention);
  EXPECT_EQ(bus.observation().granted_master, MasterId::kDma);

  // DMA (latency 2) completes at step 2; the CPU is granted the freed
  // slave in the same step and completes at step 3.
  bus.step(2);
  EXPECT_TRUE(dma_port.done());
  EXPECT_FALSE(cpu_port.done());
  bus.step(3);
  EXPECT_TRUE(cpu_port.done());
  EXPECT_GT(bus.slave_stats(s).wait_cycles, 0u);
  EXPECT_GT(bus.slave_stats(s).contention_cycles, 0u);
}

TEST(Crossbar, CustomPriorityOrder) {
  Crossbar bus(ArbitrationPolicy::kFixedPriority);
  bus.set_priority_order({MasterId::kTcFetch, MasterId::kTcData,
                          MasterId::kPcpData, MasterId::kCerberus,
                          MasterId::kDma});  // DMA demoted to last
  FakeSlave slave(1);
  const unsigned s = bus.add_slave(&slave);
  ASSERT_TRUE(bus.map_region(0x0, 0x1000, s).is_ok());

  MasterPort dma_port, cpu_port;
  ASSERT_TRUE(bus.issue(dma_port, read_req(MasterId::kDma, 0x8), 0));
  ASSERT_TRUE(bus.issue(cpu_port, read_req(MasterId::kTcData, 0x4), 0));
  bus.step(1);
  EXPECT_EQ(bus.observation().granted_master, MasterId::kTcData);
}

TEST(Crossbar, RoundRobinAlternates) {
  Crossbar bus(ArbitrationPolicy::kRoundRobin);
  FakeSlave slave(1);
  const unsigned s = bus.add_slave(&slave);
  ASSERT_TRUE(bus.map_region(0x0, 0x1000, s).is_ok());

  // Issue pairs repeatedly; both masters should get grants.
  unsigned dma_grants = 0, cpu_grants = 0;
  MasterPort dma_port, cpu_port;
  Cycle now = 0;
  for (int round = 0; round < 8; ++round) {
    if (dma_port.idle()) {
      ASSERT_TRUE(bus.issue(dma_port, read_req(MasterId::kDma, 0x8), now));
    }
    if (cpu_port.idle()) {
      ASSERT_TRUE(bus.issue(cpu_port, read_req(MasterId::kTcData, 0x4), now));
    }
    bus.step(++now);
    if (dma_port.done()) {
      dma_port.take_rdata();
      ++dma_grants;
    }
    if (cpu_port.done()) {
      cpu_port.take_rdata();
      ++cpu_grants;
    }
  }
  EXPECT_GT(dma_grants, 1u);
  EXPECT_GT(cpu_grants, 1u);
  // Fair: neither starves; counts within 1 of each other.
  EXPECT_LE(dma_grants > cpu_grants ? dma_grants - cpu_grants
                                    : cpu_grants - dma_grants, 1u);
}

TEST(Crossbar, WriteCarriesData) {
  Crossbar bus;
  FakeSlave slave(1);
  const unsigned s = bus.add_slave(&slave);
  ASSERT_TRUE(bus.map_region(0x0, 0x1000, s).is_ok());
  MasterPort port;
  BusRequest req;
  req.master = MasterId::kTcData;
  req.addr = 0x20;
  req.kind = AccessKind::kWrite;
  req.wdata = 0xABCD1234;
  ASSERT_TRUE(bus.issue(port, req, 0));
  bus.step(1);
  ASSERT_TRUE(port.done());
  port.take_rdata();
  EXPECT_EQ(slave.last_write_, 0xABCD1234u);
  EXPECT_EQ(bus.slave_stats(s).writes, 1u);
}

TEST(Crossbar, ParallelSlavesServeConcurrently) {
  Crossbar bus;
  FakeSlave s0(4, "s0"), s1(4, "s1");
  const unsigned i0 = bus.add_slave(&s0);
  const unsigned i1 = bus.add_slave(&s1);
  ASSERT_TRUE(bus.map_region(0x0, 0x100, i0).is_ok());
  ASSERT_TRUE(bus.map_region(0x100, 0x100, i1).is_ok());
  MasterPort p0, p1;
  ASSERT_TRUE(bus.issue(p0, read_req(MasterId::kTcData, 0x0), 0));
  ASSERT_TRUE(bus.issue(p1, read_req(MasterId::kDma, 0x100), 0));
  // Different slaves: no contention, both complete after the same 4 steps.
  for (Cycle now = 1; now <= 4; ++now) bus.step(now);
  EXPECT_TRUE(p0.done());
  EXPECT_TRUE(p1.done());
}

}  // namespace
}  // namespace audo::bus
