// SoC integration tests: the kernel suite runs to completion with
// functionally correct results; architecture knobs have the expected
// directional effect; runs are deterministic.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mem/memory_map.hpp"
#include "workload/kernels.hpp"

namespace audo {
namespace {

u32 run_kernel(const isa::Program& program, const soc::SocConfig& config,
               u64* cycles_out = nullptr, u64 max_cycles = 30'000'000) {
  soc::Soc soc(config);
  EXPECT_TRUE(soc.load(program).is_ok());
  soc.reset(program.entry());
  const u64 cycles = soc.run(max_cycles);
  EXPECT_TRUE(soc.tc().halted()) << "kernel did not halt";
  if (cycles_out != nullptr) *cycles_out = cycles;
  const auto result_addr = program.symbol_addr("result");
  EXPECT_TRUE(result_addr.is_ok());
  return soc.dspr().read(result_addr.value(), 4);
}

TEST(SocKernels, AllSuiteKernelsHaltWithStableResults) {
  for (const auto& spec : workload::standard_suite()) {
    auto program = spec.build();
    ASSERT_TRUE(program.is_ok())
        << spec.name << ": " << program.status().to_string();
    u64 c1 = 0, c2 = 0;
    const u32 r1 = run_kernel(program.value(), test::small_config(), &c1);
    const u32 r2 = run_kernel(program.value(), test::small_config(), &c2);
    EXPECT_EQ(r1, r2) << spec.name;
    EXPECT_EQ(c1, c2) << spec.name << " not cycle-deterministic";
    EXPECT_GT(c1, 100u) << spec.name;
  }
}

TEST(SocKernels, SortActuallySorts) {
  // The sort result is a position-weighted sum: recompute it on the host
  // from the same LCG fill to verify functional correctness.
  auto program = workload::build_sort(32);
  ASSERT_TRUE(program.is_ok());
  soc::Soc soc(test::small_config());
  ASSERT_TRUE(soc.load(program.value()).is_ok());
  soc.reset(program.value().entry());
  soc.run(10'000'000);
  ASSERT_TRUE(soc.tc().halted());
  // Read back the sorted array.
  const Addr arr = program.value().symbol_addr("arr").value();
  std::vector<u32> values;
  for (u32 i = 0; i < 32; ++i) {
    values.push_back(soc.dspr().read(arr + i * 4, 4));
  }
  EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));
  u32 expected = 0;
  for (u32 i = 0; i < 32; ++i) {
    expected += values[i] * (i + 1);
  }
  const Addr result = program.value().symbol_addr("result").value();
  EXPECT_EQ(soc.dspr().read(result, 4), expected);
}

TEST(SocKernels, MatmulMatchesHostComputation) {
  const u32 dim = 6;
  auto program = workload::build_matmul(dim);
  ASSERT_TRUE(program.is_ok());
  soc::Soc soc(test::small_config());
  ASSERT_TRUE(soc.load(program.value()).is_ok());
  soc.reset(program.value().entry());
  soc.run(10'000'000);
  ASSERT_TRUE(soc.tc().halted());
  const Addr a = program.value().symbol_addr("mat_a").value();
  const Addr b = program.value().symbol_addr("mat_b").value();
  const Addr c = program.value().symbol_addr("mat_c").value();
  for (u32 i = 0; i < dim; ++i) {
    for (u32 j = 0; j < dim; ++j) {
      u32 acc = 0;
      for (u32 k = 0; k < dim; ++k) {
        acc += soc.dspr().read(a + (i * dim + k) * 4, 4) *
               soc.dspr().read(b + (k * dim + j) * 4, 4);
      }
      EXPECT_EQ(soc.dspr().read(c + (i * dim + j) * 4, 4), acc)
          << "C[" << i << "][" << j << "]";
    }
  }
}

TEST(SocKernels, ChecksumMatchesHostComputation) {
  auto program = workload::build_checksum(256);
  ASSERT_TRUE(program.is_ok());
  soc::Soc soc(test::small_config());
  ASSERT_TRUE(soc.load(program.value()).is_ok());
  soc.reset(program.value().entry());
  soc.run(10'000'000);
  ASSERT_TRUE(soc.tc().halted());
  // Recompute from the flash image.
  u32 sum = 0;
  for (u32 i = 0; i < 256; ++i) {
    const u32 w = soc.pflash().array().read32(0x40000 + i * 4);
    sum ^= w;
    sum = (sum << 1) | (sum >> 31);
  }
  const Addr result = program.value().symbol_addr("result").value();
  EXPECT_EQ(soc.dspr().read(result, 4), sum);
}

TEST(SocArch, UncachedSequentialChecksumNoWorseThanCached) {
  // Sequential flash reads are served equally well by the data-port read
  // buffer and by the D-cache — the TriCore design rationale for read
  // buffers. The uncached path must not be *faster*.
  u64 cached = 0, uncached = 0;
  auto p1 = workload::build_checksum(2048, false);
  auto p2 = workload::build_checksum(2048, true);
  ASSERT_TRUE(p1.is_ok());
  ASSERT_TRUE(p2.is_ok());
  const u32 r1 = run_kernel(p1.value(), test::small_config(), &cached);
  const u32 r2 = run_kernel(p2.value(), test::small_config(), &uncached);
  EXPECT_EQ(r1, r2);  // same data, same function
  EXPECT_GE(uncached, cached);
}

TEST(SocArch, UncachedRandomLookupsClearlySlower) {
  // Random lookups are where the D-cache beats the single read buffer.
  u64 cached = 0, uncached = 0;
  auto p1 = workload::build_lookup_stress(2048, 2048, false);
  auto p2 = workload::build_lookup_stress(2048, 2048, true);
  ASSERT_TRUE(p1.is_ok());
  ASSERT_TRUE(p2.is_ok());
  const u32 r1 = run_kernel(p1.value(), test::small_config(), &cached);
  const u32 r2 = run_kernel(p2.value(), test::small_config(), &uncached);
  EXPECT_EQ(r1, r2);
  EXPECT_GT(uncached, cached + cached / 20);
}

TEST(SocArch, FlashWaitStatesHurtLookups) {
  auto program = workload::build_lookup_stress(4096, 2048);
  ASSERT_TRUE(program.is_ok());
  auto fast_cfg = test::small_config();
  fast_cfg.pflash.wait_states = 2;
  auto slow_cfg = test::small_config();
  slow_cfg.pflash.wait_states = 8;
  u64 fast = 0, slow = 0;
  const u32 r1 = run_kernel(program.value(), fast_cfg, &fast);
  const u32 r2 = run_kernel(program.value(), slow_cfg, &slow);
  EXPECT_EQ(r1, r2);
  EXPECT_GT(slow, fast + fast / 10);
}

TEST(SocArch, BiggerDcacheHelpsLookups) {
  auto program = workload::build_lookup_stress(8192, 4096);
  ASSERT_TRUE(program.is_ok());
  auto small_dc = test::small_config();
  small_dc.dcache.size_bytes = 1024;
  auto big_dc = test::small_config();
  big_dc.dcache.size_bytes = 32 * 1024;  // covers the whole table
  u64 small_cycles = 0, big_cycles = 0;
  const u32 r1 = run_kernel(program.value(), small_dc, &small_cycles);
  const u32 r2 = run_kernel(program.value(), big_dc, &big_cycles);
  EXPECT_EQ(r1, r2);
  EXPECT_LT(big_cycles, small_cycles);
}

TEST(SocArch, DisablingIcacheIsExpensive) {
  auto program = workload::build_fir(16, 128);
  ASSERT_TRUE(program.is_ok());
  auto with_ic = test::small_config();
  auto without_ic = test::small_config();
  without_ic.icache.enabled = false;
  u64 c_with = 0, c_without = 0;
  const u32 r1 = run_kernel(program.value(), with_ic, &c_with);
  const u32 r2 = run_kernel(program.value(), without_ic, &c_without);
  EXPECT_EQ(r1, r2);
  EXPECT_GT(c_without, c_with);
}

TEST(SocObservation, FrameReflectsActivity) {
  auto program = workload::build_memcpy(64, 2);
  ASSERT_TRUE(program.is_ok());
  soc::Soc soc(test::small_config());
  ASSERT_TRUE(soc.load(program.value()).is_ok());
  soc.reset(program.value().entry());
  u64 retired = 0;
  u64 data_accesses = 0;
  u64 flash_code = 0;
  while (!soc.tc().halted() && soc.cycle() < 1'000'000) {
    soc.step();
    retired += soc.frame().tc.retired;
    data_accesses += soc.frame().tc.data_access ? 1 : 0;
    flash_code += soc.frame().flash.code_access ? 1 : 0;
  }
  EXPECT_EQ(retired, soc.tc().retired());
  EXPECT_GT(data_accesses, 128u);  // 64 words x 2 passes, plus setup
  EXPECT_GT(flash_code, 0u);
}

TEST(SocLoad, RejectsUnmappedSection) {
  isa::Program program;
  isa::Section bogus;
  bogus.name = ".data";
  bogus.base = 0x40000000;  // nothing lives there
  bogus.bytes = {1, 2, 3, 4};
  program.add_section(bogus);
  soc::Soc soc(test::small_config());
  EXPECT_FALSE(soc.load(program).is_ok());
}

}  // namespace
}  // namespace audo
