// Architecture-optimization methodology tests: the cost model, the
// option catalogue, the evaluator's speedup measurements and the
// F-model generation step.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "optimize/cost_model.hpp"
#include "optimize/evaluator.hpp"
#include "optimize/options.hpp"
#include "soc/presets.hpp"
#include "workload/kernels.hpp"

namespace audo::optimize {
namespace {

ArchitectureEvaluator make_evaluator(soc::SocConfig base) {
  ArchitectureEvaluator eval(std::move(base));
  for (const char* name : {"lookup", "fir", "checksum", "sort"}) {
    for (const auto& spec : workload::standard_suite()) {
      if (std::string_view(spec.name) != name) continue;
      auto program = spec.build();
      EXPECT_TRUE(program.is_ok());
      WorkloadCase wc;
      wc.name = name;
      wc.program = std::move(program).value();
      wc.tc_entry = wc.program.entry();
      eval.add_case(std::move(wc));
    }
  }
  return eval;
}

TEST(CostModel, MonotoneInMemorySizes) {
  CostModel cost;
  soc::SocConfig base = test::small_config();
  const double base_area = cost.soc_area(base);
  EXPECT_GT(base_area, 0.0);

  soc::SocConfig bigger_cache = base;
  bigger_cache.icache.size_bytes *= 2;
  EXPECT_GT(cost.soc_area(bigger_cache), base_area);

  soc::SocConfig more_buffers = base;
  more_buffers.pflash.code_buffers += 2;
  EXPECT_GT(cost.soc_area(more_buffers), base_area);

  soc::SocConfig faster_flash = base;
  faster_flash.pflash.wait_states = base.pflash.wait_states - 2;
  EXPECT_GT(cost.soc_area(faster_flash), base_area);

  soc::SocConfig no_pcp = base;
  no_pcp.has_pcp = false;
  EXPECT_LT(cost.soc_area(no_pcp), base_area);
}

TEST(CostModel, CacheAreaAccountsForTagsAndWays) {
  CostModel cost;
  cache::CacheConfig c{true, 16 * 1024, 2, 32, cache::Replacement::kLru};
  const double two_way = cost.cache_area(c);
  c.ways = 4;
  const double four_way = cost.cache_area(c);
  EXPECT_GT(four_way, two_way);
  c.enabled = false;
  EXPECT_EQ(cost.cache_area(c), 0.0);
}

TEST(Options, CatalogueAppliesCleanly) {
  const auto catalogue = standard_catalogue();
  EXPECT_GE(catalogue.size(), 10u);
  const soc::SocConfig base = test::small_config();
  for (const ArchOption& option : catalogue) {
    const soc::SocConfig variant = option.apply(base);
    EXPECT_TRUE(variant.valid()) << option.name;
    EXPECT_FALSE(option.description.empty());
  }
  EXPECT_NE(find_option(catalogue, "flash_ws_4"), nullptr);
  EXPECT_EQ(find_option(catalogue, "warp_drive"), nullptr);
}

TEST(Evaluator, MeasuresDirectionallyCorrectSpeedups) {
  auto eval = make_evaluator(test::small_config());
  // Evaluate a focused sub-catalogue to keep the test fast.
  const auto catalogue = standard_catalogue();
  std::vector<ArchOption> subset;
  for (const char* name : {"flash_ws_3", "dcache_16k", "bus_round_robin"}) {
    const ArchOption* o = find_option(catalogue, name);
    ASSERT_NE(o, nullptr);
    subset.push_back(*o);
  }
  const auto results = eval.evaluate(subset);
  ASSERT_EQ(results.size(), 3u);

  for (const OptionResult& r : results) {
    for (const CaseRun& run : r.runs) {
      EXPECT_TRUE(run.halted) << r.option << "/" << run.workload;
    }
    // No option may slow the suite down appreciably (the §4 "no negative
    // side effects" requirement).
    EXPECT_GT(r.speedup, 0.97) << r.option;
  }
  // Faster flash must give a measurable speedup on this flash-heavy suite.
  for (const OptionResult& r : results) {
    if (r.option == "flash_ws_3") {
      EXPECT_GT(r.speedup, 1.01);
      EXPECT_GT(r.area_delta_au, 0.0);
    }
  }
}

TEST(Evaluator, RankingIsSortedByGainPerCost) {
  auto eval = make_evaluator(test::small_config());
  const auto catalogue = standard_catalogue();
  std::vector<ArchOption> subset = {catalogue[0], catalogue[2], catalogue[7]};
  const auto results = eval.evaluate(subset);
  for (usize i = 0; i + 1 < results.size(); ++i) {
    EXPECT_GE(results[i].gain_per_cost, results[i + 1].gain_per_cost);
  }
  const std::string table = ArchitectureEvaluator::format_ranking(results);
  EXPECT_NE(table.find("option"), std::string::npos);
}

TEST(Evaluator, NextGenerationRespectsAreaBudget) {
  auto eval = make_evaluator(test::small_config());
  const auto catalogue = standard_catalogue();
  const CostModel& cost = eval.cost_model();
  const double base_area = cost.soc_area(eval.baseline());

  std::vector<std::string> applied;
  const soc::SocConfig next =
      eval.next_generation(catalogue, /*budget=*/120.0, &applied);
  EXPECT_TRUE(next.valid());
  const double next_area = cost.soc_area(next);
  EXPECT_LE(next_area - base_area, 120.0 + 1e-9);

  // The next generation must be at least as fast as the baseline.
  const auto base_runs = eval.run_config(eval.baseline());
  const auto next_runs = eval.run_config(next);
  u64 base_total = 0, next_total = 0;
  for (const CaseRun& r : base_runs) base_total += r.cycles;
  for (const CaseRun& r : next_runs) next_total += r.cycles;
  EXPECT_LE(next_total, base_total);
  if (!applied.empty()) {
    EXPECT_LT(next_total, base_total);
  }
}

TEST(Evaluator, ZeroBudgetAppliesOnlyFreeOptions) {
  auto eval = make_evaluator(test::small_config());
  std::vector<std::string> applied;
  const soc::SocConfig next =
      eval.next_generation(standard_catalogue(), 0.0, &applied);
  const CostModel& cost = eval.cost_model();
  EXPECT_LE(cost.soc_area(next), cost.soc_area(eval.baseline()) + 1e-9);
}


TEST(Evaluator, InteractionSynergyIsSane) {
  auto eval = make_evaluator(test::small_config());
  const auto catalogue = standard_catalogue();
  std::vector<ArchOption> subset;
  for (const char* name : {"flash_ws_3", "dcache_16k"}) {
    const ArchOption* o = find_option(catalogue, name);
    ASSERT_NE(o, nullptr);
    subset.push_back(*o);
  }
  const auto interactions = eval.evaluate_interactions(subset);
  ASSERT_EQ(interactions.size(), 1u);
  const auto& r = interactions[0];
  EXPECT_GT(r.speedup_both, 0.99);
  // Both fix the flash data path partially: the combination is within a
  // sane band around independence (no wild super/sub-additivity).
  EXPECT_GT(r.synergy, 0.8);
  EXPECT_LT(r.synergy, 1.2);
  const std::string table =
      ArchitectureEvaluator::format_interactions(interactions);
  EXPECT_NE(table.find("synergy"), std::string::npos);
}

TEST(Presets, FamilyMembersAreOrderedByCapability) {
  const auto p97 = soc::tc1797_like();
  const auto p67 = soc::tc1767_like();
  const auto p96 = soc::tc1796_like();
  EXPECT_TRUE(p97.valid());
  EXPECT_TRUE(p67.valid());
  EXPECT_TRUE(p96.valid());
  // The flagship is strictly better equipped.
  EXPECT_GT(p97.pflash.size, p67.pflash.size - 1);
  EXPECT_GT(p97.icache.size_bytes, p67.icache.size_bytes);
  EXPECT_TRUE(p97.dcache.enabled);
  EXPECT_FALSE(p96.dcache.enabled);
  // And the same workload runs fastest on it (per-cycle terms).
  auto program = workload::build_lookup_stress(2048, 1024);
  ASSERT_TRUE(program.is_ok());
  auto cycles_on = [&](const soc::SocConfig& cfg) {
    soc::Soc soc(cfg);
    EXPECT_TRUE(soc.load(program.value()).is_ok());
    soc.reset(program.value().entry());
    soc.run(20'000'000);
    EXPECT_TRUE(soc.tc().halted());
    return soc.cycle();
  };
  const u64 c97 = cycles_on(p97);
  const u64 c96 = cycles_on(p96);
  EXPECT_LT(c97, c96);
}

}  // namespace
}  // namespace audo::optimize
