// CPU model tests: architectural semantics of every instruction class,
// multi-issue grouping, hazards, memory routing and interrupts.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mem/memory_map.hpp"

namespace audo {
namespace {

using test::flash_text;
using test::pspr_text;
using test::run_program;
using test::small_config;

TEST(CpuArith, BasicAlu) {
  auto r = run_program(pspr_text(R"(
    movd d1, 20
    movd d2, 22
    add  d0, d1, d2
    sub  d3, d1, d2
    and  d4, d1, d2
    or   d5, d1, d2
    xor  d6, d1, d2
    halt
)"));
  ASSERT_TRUE(r.halted());
  EXPECT_EQ(r.d(0), 42u);
  EXPECT_EQ(r.d(3), static_cast<u32>(-2));
  EXPECT_EQ(r.d(4), 20u & 22u);
  EXPECT_EQ(r.d(5), 20u | 22u);
  EXPECT_EQ(r.d(6), 20u ^ 22u);
}

TEST(CpuArith, ShiftsAndImmediates) {
  auto r = run_program(pspr_text(R"(
    movd d1, -8
    sari d2, d1, 2
    shri d3, d1, 28
    shli d4, d1, 1
    movd d5, 3
    movd d6, 1
    shl  d7, d5, d6
    andi d8, d1, 0xFF
    ori  d9, d5, 0xF0
    xori d10, d5, 0xFF
    halt
)"));
  ASSERT_TRUE(r.halted());
  EXPECT_EQ(r.d(2), static_cast<u32>(-2));
  EXPECT_EQ(r.d(3), 0xFu);
  EXPECT_EQ(r.d(4), static_cast<u32>(-16));
  EXPECT_EQ(r.d(7), 6u);
  EXPECT_EQ(r.d(8), 0xF8u);
  EXPECT_EQ(r.d(9), 0xF3u);
  EXPECT_EQ(r.d(10), 0xFCu);
}

TEST(CpuArith, MulMacDivMinMaxAbs) {
  auto r = run_program(pspr_text(R"(
    movd d1, 6
    movd d2, 7
    mul  d0, d1, d2
    movd d3, 100
    mac  d3, d1, d2      ; 100 + 42
    movd d4, -20
    movd d5, 6
    div  d6, d4, d5      ; -3
    min  d7, d4, d5
    max  d8, d4, d5
    abs  d9, d4
    movd d10, 0
    div  d11, d1, d10    ; div by zero -> all ones
    halt
)"));
  ASSERT_TRUE(r.halted());
  EXPECT_EQ(r.d(0), 42u);
  EXPECT_EQ(r.d(3), 142u);
  EXPECT_EQ(r.d(6), static_cast<u32>(-3));
  EXPECT_EQ(r.d(7), static_cast<u32>(-20));
  EXPECT_EQ(r.d(8), 6u);
  EXPECT_EQ(r.d(9), 20u);
  EXPECT_EQ(r.d(11), 0xFFFFFFFFu);
}

TEST(CpuArith, MovhBuildsConstants) {
  auto r = run_program(pspr_text(R"(
    movh d1, 0xDEAD
    ori  d1, d1, 0xBEEF
    movd d2, -1
    halt
)"));
  EXPECT_EQ(r.d(1), 0xDEADBEEFu);
  EXPECT_EQ(r.d(2), 0xFFFFFFFFu);
}

TEST(CpuBranch, ConditionalForms) {
  auto r = run_program(pspr_text(R"(
    movd d0, 0        ; result bitmask
    movd d1, 5
    movd d2, -3
    jlt  d2, d1, t1   ; signed: -3 < 5 -> taken
    halt
t1: ori  d0, d0, 1
    jltu d2, d1, t2   ; unsigned: 0xFFFF.. < 5 -> NOT taken
    ori  d0, d0, 2
t2: jge  d1, d2, t3   ; 5 >= -3 taken
    halt
t3: ori  d0, d0, 4
    jeq  d1, d1, t4
    halt
t4: ori  d0, d0, 8
    jne  d1, d2, t5
    halt
t5: ori  d0, d0, 16
    movd d3, 0
    jz   d3, t6
    halt
t6: ori  d0, d0, 32
    jnz  d1, t7
    halt
t7: ori  d0, d0, 64
    halt
)"));
  ASSERT_TRUE(r.halted());
  EXPECT_EQ(r.d(0), 1u | 2u | 4u | 8u | 16u | 32u | 64u);
}

TEST(CpuBranch, LoopInstruction) {
  auto r = run_program(pspr_text(R"(
    movd d0, 0
    movd d1, 10
    mov.ad a2, d1
top:
    addi d0, d0, 1
    loop a2, top
    halt
)"));
  EXPECT_EQ(r.d(0), 10u);
  EXPECT_EQ(r.a(2), 0u);
}

TEST(CpuBranch, CallRetAndIndirect) {
  auto r = run_program(pspr_text(R"(
    movd d0, 1
    call sub1
    addi d0, d0, 100    ; executes after return
    movh d2, hi(sub2)
    ori  d2, d2, lo(sub2)
    mov.ad a4, d2
    calli a4
    halt
sub1:
    addi d0, d0, 10
    ret
sub2:
    addi d0, d0, 1000
    ret
)"));
  ASSERT_TRUE(r.halted());
  EXPECT_EQ(r.d(0), 1111u);
}

TEST(CpuMem, ScratchpadLoadStoreAllWidths) {
  auto r = run_program(pspr_text(R"(
    movha a2, 0xC000
    movh d1, 0x8765
    ori  d1, d1, 0x4321
    st.w d1, [a2+0]
    ld.w d2, [a2+0]
    ld.h d3, [a2+0]     ; 0x4321 sign-extended (positive)
    ld.h d4, [a2+2]     ; 0x8765 sign-extended (negative)
    ld.b d5, [a2+0]     ; 0x21
    ld.b d6, [a2+3]     ; 0x87 -> negative
    movd d7, 0x7F
    st.b d7, [a2+4]
    ld.w d8, [a2+4]
    st.h d1, [a2+8]
    ld.w d9, [a2+8]
    halt
)"));
  ASSERT_TRUE(r.halted());
  EXPECT_EQ(r.d(2), 0x87654321u);
  EXPECT_EQ(r.d(3), 0x4321u);
  EXPECT_EQ(r.d(4), 0xFFFF8765u);
  EXPECT_EQ(r.d(5), 0x21u);
  EXPECT_EQ(r.d(6), 0xFFFFFF87u);
  EXPECT_EQ(r.d(8), 0x7Fu);
  EXPECT_EQ(r.d(9), 0x4321u);
}

TEST(CpuMem, AddressRegisterLoadsStores) {
  auto r = run_program(pspr_text(R"(
    movha a2, 0xC000
    movha a3, 0x9000      ; LMU pointer value
    st.a a3, [a2+0]
    ld.a a4, [a2+0]
    movd d0, 77
    st.w d0, [a4+0]       ; store through loaded pointer (LMU)
    ld.w d1, [a4+0]
    halt
)"));
  ASSERT_TRUE(r.halted());
  EXPECT_EQ(r.a(4), 0x90000000u);
  EXPECT_EQ(r.d(1), 77u);
}

TEST(CpuMem, LmuAndDflashThroughBus) {
  auto r = run_program(pspr_text(R"(
    movha a2, 0x9000      ; LMU
    movd d0, 1234
    st.w d0, [a2+16]
    ld.w d1, [a2+16]
    movha a3, 0xAF00      ; DFlash (erased to 0 initially; writes AND)
    ld.w d2, [a3+0]
    halt
)"));
  ASSERT_TRUE(r.halted());
  EXPECT_EQ(r.d(1), 1234u);
  EXPECT_EQ(r.d(2), 0u);
}

TEST(CpuMem, FlashDataReadsCachedAndUncached) {
  auto r = run_program(R"(
    .text 0xC8000000
main:
    movh d1, hi(tbl)
    ori  d1, d1, lo(tbl)
    mov.ad a2, d1
    ld.w d2, [a2+0]       ; cached alias
    movh d3, 0x2000
    add  d1, d1, d3       ; + 0x20000000 -> uncached alias 0xA...
    mov.ad a3, d1
    ld.w d4, [a3+4]
    halt
    .data 0x80010000
tbl:
    .word 0xAAAA5555, 0x12345678
)");
  ASSERT_TRUE(r.halted());
  EXPECT_EQ(r.d(2), 0xAAAA5555u);
  EXPECT_EQ(r.d(4), 0x12345678u);
  // The cached read allocated a D-cache line; the uncached one did not.
  EXPECT_EQ(r.soc->dcache().stats().accesses, 1u);
  EXPECT_EQ(r.soc->dcache().stats().misses, 1u);
}

TEST(CpuExec, RunsFromCachedFlash) {
  auto r = run_program(flash_text(R"(
    movd d0, 0
    movd d1, 100
    mov.ad a2, d1
top:
    addi d0, d0, 1
    loop a2, top
    halt
)"));
  ASSERT_TRUE(r.halted());
  EXPECT_EQ(r.d(0), 100u);
  // The loop body hits the I-cache after the first iteration.
  EXPECT_GT(r.soc->icache().stats().hits, 50u);
}

TEST(CpuExec, UncachedFlashExecutionIsSlower) {
  // A loop body long enough to span several flash lines: the uncached
  // path fetches word-by-word over the bus while the cached path streams
  // 4-instruction blocks out of the I-cache.
  std::string body = R"(
    movd d0, 0
    movd d1, 50
    mov.ad a2, d1
top:
)";
  for (int i = 0; i < 16; ++i) body += "    addi d0, d0, 1\n";
  body += R"(
    loop a2, top
    halt
)";
  auto cached = run_program(flash_text(body));
  auto uncached = run_program("    .text 0xA0000000\nmain:\n" + body);
  ASSERT_TRUE(cached.halted());
  ASSERT_TRUE(uncached.halted());
  EXPECT_EQ(cached.d(0), uncached.d(0));
  // Prefetch buffers soften the uncached penalty; still clearly slower.
  EXPECT_GT(uncached.cycles * 2, cached.cycles * 3);
}

TEST(CpuIssue, TripleIssueBeatsSingleIssue) {
  // Independent IP + LS + LP work that can pair each cycle.
  const std::string body = pspr_text(R"(
    movha a2, 0xC000
    movd  d1, 0
    movd  d2, 200
    mov.ad a3, d2
top:
    addi  d1, d1, 3      ; IP
    st.w  d0, [a2+0]     ; LS
    loop  a3, top        ; LP
    halt
)");
  auto cfg3 = small_config();
  cfg3.tc_issue_width = 3;
  auto cfg1 = small_config();
  cfg1.tc_issue_width = 1;
  auto wide = run_program(body, cfg3);
  auto narrow = run_program(body, cfg1);
  ASSERT_TRUE(wide.halted());
  ASSERT_TRUE(narrow.halted());
  EXPECT_EQ(wide.d(1), narrow.d(1));
  EXPECT_LT(wide.cycles, narrow.cycles);
}

TEST(CpuIssue, DependentChainIsSerial) {
  // A dependent ALU chain cannot dual-issue: >= 1 cycle per instruction.
  auto r = run_program(pspr_text(R"(
    movd d0, 1
    add  d0, d0, d0
    add  d0, d0, d0
    add  d0, d0, d0
    add  d0, d0, d0
    halt
)"));
  EXPECT_EQ(r.d(0), 16u);
  EXPECT_GE(r.cycles, 5u);
}

TEST(CpuHazard, LoadUseStall) {
  // Using a loaded value immediately costs at least one bubble; the
  // result must still be correct.
  auto r = run_program(pspr_text(R"(
    movha a2, 0xC000
    movd d1, 41
    st.w d1, [a2+0]
    ld.w d2, [a2+0]
    addi d2, d2, 1
    halt
)"));
  EXPECT_EQ(r.d(2), 42u);
}

TEST(CpuHazard, BusLoadBlocksConsumerUntilData) {
  auto r = run_program(pspr_text(R"(
    movha a2, 0x9000      ; LMU: multi-cycle over the bus
    movd d1, 7
    st.w d1, [a2+0]
    ld.w d2, [a2+0]
    mul  d3, d2, d2       ; depends on in-flight load
    halt
)"));
  EXPECT_EQ(r.d(3), 49u);
}

TEST(CpuCsfr, CountersAndCoreId) {
  auto r = run_program(pspr_text(R"(
    mfcr d1, ccnt_lo
    nop
    nop
    nop
    nop
    mfcr d2, ccnt_lo
    mfcr d3, icnt
    mfcr d4, coreid
    movd d5, 0x1234
    mtcr scratch0, d5
    mfcr d6, scratch0
    halt
)"));
  ASSERT_TRUE(r.halted());
  EXPECT_GT(r.d(2), r.d(1));
  EXPECT_GE(r.d(3), 6u);
  EXPECT_EQ(r.d(4), 0u);
  EXPECT_EQ(r.d(6), 0x1234u);
}

TEST(CpuIrq, StmInterruptIsServiced) {
  // Program STM compare and count interrupt entries in d-regs via a
  // handler; run long enough for >= 3 periods.
  auto program = isa::assemble(R"(
    .text 0x80000140       ; vector for priority 10
    j isr
    .text 0x80001000
main:
    di
    movha a15, 0xC000
    movha a14, 0xF000
    movh  d0, 0x8000
    mtcr  biv, d0
    movd  d0, 500
    st.w  d0, [a14+8]      ; STM CMP0 = 500
    movd  d0, 1
    st.w  d0, [a14+16]     ; STM CTRL enable cmp0
    ei
wait:
    ld.w  d1, [a15+0]
    movd  d2, 3
    jlt   d1, d2, wait
    halt
isr:
    st.w  d8, [a15+4]
    ld.w  d8, [a15+0]
    addi  d8, d8, 1
    st.w  d8, [a15+0]
    ld.w  d8, [a15+4]
    rfe
)");
  ASSERT_TRUE(program.is_ok()) << program.status().to_string();
  soc::Soc soc(test::small_config());
  ASSERT_TRUE(soc.load(program.value()).is_ok());
  soc.irq_router().configure(soc.srcs().stm0, 10, periph::IrqTarget::kTc);
  soc.reset(program.value().entry());
  soc.run(100'000);
  ASSERT_TRUE(soc.tc().halted());
  EXPECT_EQ(soc.dspr().read(0xC0000000, 4), 3u);
  EXPECT_EQ(soc.irq_router().node(soc.srcs().stm0).serviced, 3u);
}

TEST(CpuIrq, PriorityPreemption) {
  // A low-priority handler spins until a flag that only the high-priority
  // handler sets: requires preemption to terminate.
  auto program = isa::assemble(R"(
    .text 0x80000140       ; priority 10: low
    j isr_low
    .text 0x80000280       ; priority 20: high
    j isr_high
    .text 0x80001000
main:
    di
    movha a15, 0xC000
    movha a14, 0xF000
    movh  d0, 0x8000
    mtcr  biv, d0
    movd  d0, 400
    st.w  d0, [a14+8]      ; CMP0 period 400 -> prio 10
    movd  d0, 900
    st.w  d0, [a14+12]     ; CMP1 period 900 -> prio 20
    movd  d0, 3
    st.w  d0, [a14+16]     ; enable both
    ei
wait:
    ld.w  d1, [a15+0]
    jz    d1, wait
    halt
isr_low:
    st.w  d8, [a15+8]
spin:
    ld.w  d8, [a15+4]      ; wait for high-prio flag
    jz    d8, spin
    movd  d8, 1
    st.w  d8, [a15+0]      ; signal main
    ld.w  d8, [a15+8]
    rfe
isr_high:
    st.w  d8, [a15+12]
    movd  d8, 1
    st.w  d8, [a15+4]
    ld.w  d8, [a15+12]
    rfe
)");
  ASSERT_TRUE(program.is_ok()) << program.status().to_string();
  soc::Soc soc(test::small_config());
  ASSERT_TRUE(soc.load(program.value()).is_ok());
  soc.irq_router().configure(soc.srcs().stm0, 10, periph::IrqTarget::kTc);
  soc.irq_router().configure(soc.srcs().stm1, 20, periph::IrqTarget::kTc);
  soc.reset(program.value().entry());
  soc.run(200'000);
  EXPECT_TRUE(soc.tc().halted()) << "low-prio handler was never preempted";
}

TEST(CpuIrq, WfiWakesOnInterrupt) {
  auto program = isa::assemble(R"(
    .text 0x80000140
    j isr
    .text 0x80001000
main:
    di
    movha a15, 0xC000
    movha a14, 0xF000
    movh  d0, 0x8000
    mtcr  biv, d0
    movd  d0, 300
    st.w  d0, [a14+8]
    movd  d0, 1
    st.w  d0, [a14+16]
    ei
    wfi
    halt                    ; reached only after the ISR returns
isr:
    movd  d8, 99
    st.w  d8, [a15+0]
    rfe
)");
  ASSERT_TRUE(program.is_ok()) << program.status().to_string();
  soc::Soc soc(test::small_config());
  ASSERT_TRUE(soc.load(program.value()).is_ok());
  soc.irq_router().configure(soc.srcs().stm0, 10, periph::IrqTarget::kTc);
  soc.reset(program.value().entry());
  soc.run(50'000);
  EXPECT_TRUE(soc.tc().halted());
  EXPECT_EQ(soc.dspr().read(0xC0000000, 4), 99u);
}

TEST(CpuIrq, DisabledInterruptsAreHeldOff) {
  auto program = isa::assemble(R"(
    .text 0x80000140
    j isr
    .text 0x80001000
main:
    di
    movha a15, 0xC000
    movha a14, 0xF000
    movh  d0, 0x8000
    mtcr  biv, d0
    movd  d0, 100
    st.w  d0, [a14+8]
    movd  d0, 1
    st.w  d0, [a14+16]
    ; stay with interrupts disabled for a long time
    movd  d1, 2000
    mov.ad a2, d1
spin:
    loop  a2, spin
    ld.w  d2, [a15+0]      ; must still be 0
    ei
wait:
    ld.w  d3, [a15+0]
    jz    d3, wait
    halt
isr:
    movd  d8, 1
    st.w  d8, [a15+0]
    rfe
)");
  ASSERT_TRUE(program.is_ok()) << program.status().to_string();
  soc::Soc soc(test::small_config());
  ASSERT_TRUE(soc.load(program.value()).is_ok());
  soc.irq_router().configure(soc.srcs().stm0, 10, periph::IrqTarget::kTc);
  soc.reset(program.value().entry());
  soc.run(100'000);
  ASSERT_TRUE(soc.tc().halted());
  EXPECT_EQ(soc.tc().d(2), 0u) << "interrupt taken while disabled";
}

TEST(CpuDeterminism, IdenticalRunsCycleExact) {
  const std::string body = flash_text(R"(
    movd d0, 0
    movd d1, 500
    mov.ad a2, d1
top:
    addi d0, d0, 1
    mul  d3, d0, d0
    loop a2, top
    halt
)");
  auto r1 = run_program(body);
  auto r2 = run_program(body);
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(r1.d(0), r2.d(0));
  EXPECT_EQ(r1.soc->tc().retired(), r2.soc->tc().retired());
}

}  // namespace
}  // namespace audo
