// Cache model tests: hit/miss behaviour, replacement policies, geometry
// sweeps (TEST_P) and the disabled-cache contract.
#include <gtest/gtest.h>

#include "cache/cache.hpp"

namespace audo::cache {
namespace {

CacheConfig direct_mapped(u32 size = 1024, unsigned line = 32) {
  return CacheConfig{true, size, 1, line, Replacement::kLru};
}

TEST(Cache, MissThenHit) {
  Cache cache(direct_mapped());
  EXPECT_FALSE(cache.access(0x1000));
  cache.fill(0x1000);
  EXPECT_TRUE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x101F));   // same 32-byte line
  EXPECT_FALSE(cache.access(0x1020));  // next line
  EXPECT_EQ(cache.stats().accesses, 4u);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(Cache, DirectMappedConflict) {
  Cache cache(direct_mapped(1024));
  cache.fill(0x0);
  EXPECT_TRUE(cache.access(0x0));
  // 0x400 maps to the same set (1 KiB direct mapped) -> evicts.
  EXPECT_TRUE(cache.fill(0x400));
  EXPECT_FALSE(cache.access(0x0));
  EXPECT_TRUE(cache.access(0x400));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(Cache, TwoWayAvoidsConflict) {
  Cache cache(CacheConfig{true, 1024, 2, 32, Replacement::kLru});
  cache.fill(0x0);
  cache.fill(0x400);  // same set, second way
  EXPECT_TRUE(cache.access(0x0));
  EXPECT_TRUE(cache.access(0x400));
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(Cache, LruEvictsLeastRecent) {
  Cache cache(CacheConfig{true, 128, 2, 32, Replacement::kLru});
  // 2 sets of 2 ways. Set 0 lines: 0x0, 0x40, 0x80, ...
  cache.fill(0x0);
  cache.fill(0x80);
  EXPECT_TRUE(cache.access(0x0));   // 0x80 becomes LRU
  cache.fill(0x100);                // evicts 0x80
  EXPECT_TRUE(cache.probe(0x0));
  EXPECT_FALSE(cache.probe(0x80));
  EXPECT_TRUE(cache.probe(0x100));
}

TEST(Cache, PlruTreeBehavesSanely) {
  Cache cache(CacheConfig{true, 256, 4, 32, Replacement::kPlruTree});
  // 2 sets, 4 ways; set stride = 64 bytes.
  cache.fill(0x000);
  cache.fill(0x100);
  cache.fill(0x200);
  cache.fill(0x300);
  // Tree PLRU is an approximation of LRU: after touching way 0
  // (left/left) and way 2 (right/left), the root points at the left half
  // and its subtree bit at way 1 — the deterministic PLRU victim.
  EXPECT_TRUE(cache.access(0x000));
  EXPECT_TRUE(cache.access(0x200));
  cache.fill(0x400);
  EXPECT_FALSE(cache.probe(0x100));
  EXPECT_TRUE(cache.probe(0x000));
  EXPECT_TRUE(cache.probe(0x200));
  EXPECT_TRUE(cache.probe(0x300));
  EXPECT_TRUE(cache.probe(0x400));
}

TEST(Cache, RoundRobinCyclesWays) {
  Cache cache(CacheConfig{true, 128, 2, 32, Replacement::kRoundRobin});
  cache.fill(0x0);
  cache.fill(0x80);
  cache.fill(0x100);  // evicts way 0 (0x0)
  EXPECT_FALSE(cache.probe(0x0));
  EXPECT_TRUE(cache.probe(0x80));
  cache.fill(0x180);  // evicts way 1 (0x80)
  EXPECT_FALSE(cache.probe(0x80));
  EXPECT_TRUE(cache.probe(0x100));
}

TEST(Cache, DisabledCacheNeverHits) {
  Cache cache(CacheConfig{false, 1024, 2, 32, Replacement::kLru});
  EXPECT_FALSE(cache.access(0x1000));
  cache.fill(0x1000);
  EXPECT_FALSE(cache.access(0x1000));
  EXPECT_FALSE(cache.probe(0x1000));
}

TEST(Cache, InvalidateAllForgets) {
  Cache cache(direct_mapped());
  cache.fill(0x40);
  EXPECT_TRUE(cache.probe(0x40));
  cache.invalidate_all();
  EXPECT_FALSE(cache.probe(0x40));
}

TEST(Cache, FillIsIdempotentForPresentLines) {
  Cache cache(CacheConfig{true, 128, 2, 32, Replacement::kLru});
  cache.fill(0x0);
  EXPECT_FALSE(cache.fill(0x0));  // no eviction, no duplicate
  cache.fill(0x80);
  EXPECT_TRUE(cache.probe(0x0));
  EXPECT_TRUE(cache.probe(0x80));
}

TEST(Cache, ConfigValidity) {
  EXPECT_TRUE(direct_mapped().valid());
  CacheConfig bad = direct_mapped();
  bad.size_bytes = 1000;  // not pow2
  EXPECT_FALSE(bad.valid());
  CacheConfig disabled;
  disabled.enabled = false;
  disabled.size_bytes = 12345;
  EXPECT_TRUE(disabled.valid());  // geometry irrelevant when off
}

struct Geometry {
  u32 size;
  unsigned ways;
  unsigned line;
  Replacement repl;
};

class CacheGeometry : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheGeometry, WorkingSetSmallerThanCacheAlwaysHitsAfterWarmup) {
  const Geometry g = GetParam();
  Cache cache(CacheConfig{true, g.size, g.ways, g.line, g.repl});
  // Sequential working set of half the cache size.
  const u32 span = g.size / 2;
  for (u32 a = 0; a < span; a += g.line) {
    if (!cache.access(0x80000000 + a)) cache.fill(0x80000000 + a);
  }
  cache.reset_stats();
  for (int pass = 0; pass < 4; ++pass) {
    for (u32 a = 0; a < span; a += g.line) {
      EXPECT_TRUE(cache.access(0x80000000 + a))
          << "size=" << g.size << " ways=" << g.ways << " line=" << g.line;
    }
  }
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST_P(CacheGeometry, WorkingSetTwiceTheCacheThrashesLru) {
  const Geometry g = GetParam();
  Cache cache(CacheConfig{true, g.size, g.ways, g.line, g.repl});
  const u32 span = g.size * 2;
  // Sequential sweep with LRU on a 2x working set misses every time.
  for (int pass = 0; pass < 3; ++pass) {
    for (u32 a = 0; a < span; a += g.line) {
      if (!cache.access(0x80000000 + a)) cache.fill(0x80000000 + a);
    }
  }
  if (g.repl == Replacement::kLru) {
    EXPECT_EQ(cache.stats().hits, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheGeometry,
    ::testing::Values(Geometry{512, 1, 16, Replacement::kLru},
                      Geometry{1024, 2, 32, Replacement::kLru},
                      Geometry{4096, 2, 32, Replacement::kLru},
                      Geometry{4096, 4, 32, Replacement::kPlruTree},
                      Geometry{8192, 4, 64, Replacement::kLru},
                      Geometry{16384, 2, 32, Replacement::kRoundRobin},
                      Geometry{1024, 2, 32, Replacement::kPlruTree}));

}  // namespace
}  // namespace audo::cache
