// Snapshot / restore / resume tests (ISSUE 8): loader hardening against
// mutated images, Soc and Emulation-Device restore bit-identity vs
// uninterrupted runs, campaign warm-fork equivalence for any job count,
// manifest journaling + crash resume, and the per-scenario robustness
// policy (budget / timeout / retry) plumbing.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "ed/emulation_device.hpp"
#include "helpers.hpp"
#include "host/campaign_manifest.hpp"
#include "optimize/fault_campaign.hpp"
#include "soc/snapshot.hpp"
#include "telemetry/run_report.hpp"
#include "workload/engine.hpp"
#include "workload/transmission.hpp"

namespace audo {
namespace {

// ---- shared fixtures -------------------------------------------------

// Idle-background engine: WFI park between interrupts, so the SoC is
// quiescent from early in the run — the shape warm forks engage on.
workload::EngineWorkload idle_engine(u32 revs) {
  workload::EngineOptions opt;
  opt.idle_background = true;
  opt.halt_after_revs = revs;
  auto built = workload::build_engine_workload(opt);
  EXPECT_TRUE(built.is_ok()) << built.status().to_string();
  return std::move(built).value();
}

optimize::WorkloadCase engine_case(const workload::EngineWorkload& w,
                                   u64 max_cycles = 400'000) {
  optimize::WorkloadCase wc;
  wc.name = "engine";
  wc.program = w.program;
  wc.tc_entry = w.tc_entry;
  wc.pcp_entry = w.pcp_entry;
  wc.configure = [options = w.options](soc::Soc& soc) {
    workload::configure_engine(soc, options);
  };
  wc.max_cycles = max_cycles;
  return wc;
}

void install(soc::Soc& soc, const workload::EngineWorkload& w) {
  ASSERT_TRUE(workload::install_engine(soc, w).is_ok());
}

// Step to the first quiescent (non-halted) cycle at or after `after`.
Cycle step_to_quiescence(soc::Soc& soc, Cycle after) {
  while (!(soc.cycle() >= after && soc.quiescent()) && !soc.tc().halted()) {
    soc.step();
  }
  return soc.cycle();
}

void expect_same_architectural_state(soc::Soc& a, soc::Soc& b) {
  EXPECT_EQ(a.cycle(), b.cycle());
  EXPECT_EQ(a.tc().retired(), b.tc().retired());
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_EQ(a.tc().d(i), b.tc().d(i)) << "d" << i;
    EXPECT_EQ(a.tc().a(i), b.tc().a(i)) << "a" << i;
  }
  EXPECT_EQ(a.dspr().array(), b.dspr().array());
}

// ---- loader hardening ------------------------------------------------

soc::Snapshot quiescent_snapshot(const soc::SocConfig& config,
                                 const workload::EngineWorkload& w) {
  soc::Soc soc(config);
  EXPECT_TRUE(workload::install_engine(soc, w).is_ok());
  step_to_quiescence(soc, 1'000);
  auto snap = soc.save_snapshot();
  EXPECT_TRUE(snap.is_ok()) << snap.status().to_string();
  return std::move(snap).value();
}

TEST(SnapshotLoader, SerializeRoundTrips) {
  const workload::EngineWorkload w = idle_engine(2);
  const soc::SocConfig config;
  const soc::Snapshot snap = quiescent_snapshot(config, w);
  ASSERT_FALSE(snap.payload.empty());

  const std::vector<u8> bytes = snap.serialize();
  auto back = soc::Snapshot::deserialize(bytes);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value().shape_fingerprint, snap.shape_fingerprint);
  EXPECT_EQ(back.value().cycle, snap.cycle);
  EXPECT_EQ(back.value().payload, snap.payload);
  EXPECT_EQ(back.value().checksum(), snap.checksum());
}

TEST(SnapshotLoader, RejectsMutatedImages) {
  const workload::EngineWorkload w = idle_engine(2);
  const soc::SocConfig config;
  const soc::Snapshot snap = quiescent_snapshot(config, w);
  const std::vector<u8> good = snap.serialize();
  constexpr usize kHeaderBytes = 4 + 4 + 8 + 8 + 8 + 8;

  // Truncations: below the header, at the header, and mid-payload.
  for (const usize keep : {usize{0}, usize{10}, kHeaderBytes - 1,
                           kHeaderBytes, good.size() - 1}) {
    std::vector<u8> bytes(good.begin(), good.begin() + keep);
    EXPECT_FALSE(soc::Snapshot::deserialize(bytes).is_ok())
        << "accepted truncation to " << keep << " bytes";
  }

  // Wrong magic.
  {
    std::vector<u8> bytes = good;
    bytes[0] ^= 0xFF;
    EXPECT_FALSE(soc::Snapshot::deserialize(bytes).is_ok());
  }
  // Unsupported version.
  {
    std::vector<u8> bytes = good;
    bytes[4] = 0x7F;
    EXPECT_FALSE(soc::Snapshot::deserialize(bytes).is_ok());
  }
  // Header lies about the payload length.
  {
    std::vector<u8> bytes = good;
    bytes[4 + 4 + 8 + 8] ^= 0x01;  // low byte of the length field
    EXPECT_FALSE(soc::Snapshot::deserialize(bytes).is_ok());
  }
  // Every corrupted payload byte position we try trips the checksum.
  for (const usize at : {usize{0}, snap.payload.size() / 2,
                         snap.payload.size() - 1}) {
    std::vector<u8> bytes = good;
    bytes[kHeaderBytes + at] ^= 0x40;
    EXPECT_FALSE(soc::Snapshot::deserialize(bytes).is_ok())
        << "accepted payload corruption at " << at;
  }
  // Trailing garbage changes the framed length.
  {
    std::vector<u8> bytes = good;
    bytes.push_back(0xAB);
    EXPECT_FALSE(soc::Snapshot::deserialize(bytes).is_ok());
  }
}

TEST(SnapshotLoader, RestoreRefusesWrongShapeAndLeavesMachineUntouched) {
  const workload::EngineWorkload w = idle_engine(2);
  const soc::Snapshot snap = quiescent_snapshot(soc::SocConfig{}, w);

  soc::SocConfig other;
  other.dspr_bytes *= 2;  // structurally different machine
  soc::Soc soc(other);
  ASSERT_TRUE(workload::install_engine(soc, w).is_ok());
  const Cycle before = soc.cycle();
  EXPECT_FALSE(soc.restore_snapshot(snap).is_ok());
  EXPECT_EQ(soc.cycle(), before);
}

TEST(SnapshotLoader, FileRoundTripAndCorruptFileRejected) {
  const workload::EngineWorkload w = idle_engine(2);
  const soc::Snapshot snap = quiescent_snapshot(soc::SocConfig{}, w);
  const std::string path = ::testing::TempDir() + "audo_snapshot_test.img";

  ASSERT_TRUE(snap.to_file(path).is_ok());
  auto back = soc::Snapshot::from_file(path);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value().payload, snap.payload);

  // Flip one byte on disk; the loader must reject the file.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 64, SEEK_SET), 0);
  const u8 evil = 0xEE;
  ASSERT_EQ(std::fwrite(&evil, 1, 1, f), 1u);
  std::fclose(f);
  EXPECT_FALSE(soc::Snapshot::from_file(path).is_ok());

  EXPECT_FALSE(soc::Snapshot::from_file(path + ".missing").is_ok());
  std::remove(path.c_str());
}

// ---- restore bit-identity --------------------------------------------

TEST(SnapshotRestore, SocResumesBitIdenticalToUninterruptedRun) {
  const workload::EngineWorkload w = idle_engine(2);
  const soc::SocConfig config;

  soc::Soc uninterrupted(config);
  install(uninterrupted, w);
  uninterrupted.run(400'000);
  ASSERT_TRUE(uninterrupted.tc().halted());

  // Capture a mid-run quiescent point, then resume on a fresh machine.
  soc::Soc donor(config);
  install(donor, w);
  const Cycle at = step_to_quiescence(donor, 1'500);
  ASSERT_GT(at, 0u);
  ASSERT_LT(at, uninterrupted.cycle());
  auto snap = donor.save_snapshot();
  ASSERT_TRUE(snap.is_ok()) << snap.status().to_string();
  EXPECT_EQ(snap.value().cycle, at);

  soc::Soc resumed(config);
  install(resumed, w);
  ASSERT_TRUE(resumed.restore_snapshot(snap.value()).is_ok());
  EXPECT_EQ(resumed.cycle(), at);
  resumed.run(400'000 - at);
  ASSERT_TRUE(resumed.tc().halted());

  expect_same_architectural_state(uninterrupted, resumed);
}

TEST(SnapshotRestore, SaveRequiresQuiescence) {
  // A busy background loop is not quiescent mid-computation.
  workload::EngineOptions opt;
  opt.halt_after_bg = 60;
  auto built = workload::build_engine_workload(opt);
  ASSERT_TRUE(built.is_ok());
  soc::Soc soc{soc::SocConfig{}};
  install(soc, built.value());
  soc.run(501);
  ASSERT_FALSE(soc.quiescent());
  EXPECT_FALSE(soc.save_snapshot().is_ok());
}

TEST(SnapshotRestore, EmulationDeviceResumesMidTraceWindow) {
  const workload::EngineWorkload w = idle_engine(2);
  const soc::SocConfig config;
  mcds::McdsConfig trace;
  trace.program_trace = true;
  trace.data_trace = true;
  trace.irq_trace = true;
  trace.sync_interval_cycles = 512;
  ed::EdConfig edc;
  edc.emem.size_bytes = 512 * 1024;
  edc.emem.overlay_bytes = 128 * 1024;

  const auto setup = [&](ed::EmulationDevice& ed) {
    ASSERT_TRUE(ed.load(w.program).is_ok());
    workload::configure_engine(ed.soc(), w.options);
    ed.reset(w.tc_entry, w.pcp_entry);
  };

  ed::EmulationDevice uninterrupted(config, trace, edc);
  setup(uninterrupted);
  uninterrupted.run(400'000);
  ASSERT_TRUE(uninterrupted.soc().tc().halted());
  auto trace_a = uninterrupted.download_trace();
  ASSERT_TRUE(trace_a.is_ok());

  // Snapshot at a quiescent cycle that is NOT a sync-window boundary, so
  // the MCDS counter groups and sync schedule are captured mid-window.
  ed::EmulationDevice donor(config, trace, edc);
  setup(donor);
  Cycle at = 0;
  for (Cycle want = 1'500;; want = donor.soc().cycle() + 1) {
    while (!(donor.soc().cycle() >= want && donor.soc().quiescent()) &&
           !donor.soc().tc().halted()) {
      donor.step();
    }
    ASSERT_FALSE(donor.soc().tc().halted());
    if (donor.soc().cycle() % trace.sync_interval_cycles != 0) {
      at = donor.soc().cycle();
      break;
    }
  }
  auto snap = donor.save_snapshot();
  ASSERT_TRUE(snap.is_ok()) << snap.status().to_string();

  ed::EmulationDevice resumed(config, trace, edc);
  setup(resumed);
  ASSERT_TRUE(resumed.restore_snapshot(snap.value()).is_ok());
  EXPECT_EQ(resumed.soc().cycle(), at);
  resumed.run(400'000 - at);
  ASSERT_TRUE(resumed.soc().tc().halted());

  expect_same_architectural_state(uninterrupted.soc(), resumed.soc());

  // The downloaded trace streams are message-for-message identical —
  // the EEC side (schedules, counters, EMEM, MLI) resumed exactly.
  auto trace_b = resumed.download_trace();
  ASSERT_TRUE(trace_b.is_ok());
  ASSERT_EQ(trace_a.value().size(), trace_b.value().size());
  for (usize i = 0; i < trace_a.value().size(); ++i) {
    const mcds::TraceMessage& ma = trace_a.value()[i];
    const mcds::TraceMessage& mb = trace_b.value()[i];
    ASSERT_EQ(ma.kind, mb.kind) << "message " << i;
    ASSERT_EQ(ma.source, mb.source) << "message " << i;
    ASSERT_EQ(ma.cycle, mb.cycle) << "message " << i;
    ASSERT_EQ(ma.pc, mb.pc) << "message " << i;
    ASSERT_EQ(ma.instr_count, mb.instr_count) << "message " << i;
    ASSERT_EQ(ma.addr, mb.addr) << "message " << i;
    ASSERT_EQ(ma.value, mb.value) << "message " << i;
    ASSERT_EQ(ma.counts, mb.counts) << "message " << i;
  }
}

// ---- warm-fork campaigns ---------------------------------------------

TEST(WarmFork, CampaignClassificationMatchesColdForAnyJobCount) {
  const workload::EngineWorkload w = idle_engine(2);
  optimize::FaultCampaign campaign(soc::SocConfig{}, engine_case(w));
  const auto scenarios = campaign.make_scenarios(/*seed=*/5, /*count=*/8);

  const optimize::CampaignSummary cold = campaign.run(scenarios);
  ASSERT_TRUE(cold.golden.halted);
  const u64 cold_hash = cold.classification_hash();

  ASSERT_NE(campaign.prepare_warm_fork(scenarios), 0u);
  ASSERT_TRUE(campaign.has_warm_fork());
  EXPECT_GT(campaign.warm_fork_cycle(), 0u);
  EXPECT_EQ(campaign.warm_fork_hash(), campaign.warm_fork_image().checksum());

  for (const unsigned jobs : {1u, 2u, 8u}) {
    campaign.set_jobs(jobs);
    const optimize::CampaignSummary warm = campaign.run(scenarios);
    EXPECT_EQ(warm.classification_hash(), cold_hash) << "jobs=" << jobs;
    EXPECT_EQ(warm.golden.cycles, cold.golden.cycles) << "jobs=" << jobs;
    EXPECT_EQ(warm.golden.signature, cold.golden.signature);
  }
}

TEST(WarmFork, BusyWorkloadFallsBackToColdBoot) {
  // The transmission workload has no WFI park: the TC computes between
  // interrupts, so no mid-run quiescent point exists and prepare must
  // decline (everything cold-boots — always correct, never wrong).
  workload::TransmissionOptions opt;
  opt.halt_after_tasks = 3;
  auto built = workload::build_transmission_workload(opt);
  ASSERT_TRUE(built.is_ok());
  optimize::WorkloadCase wc;
  wc.name = "transmission";
  wc.program = built.value().program;
  wc.tc_entry = built.value().tc_entry;
  wc.configure = [options = built.value().options](soc::Soc& soc) {
    workload::configure_transmission(soc, options);
  };
  wc.max_cycles = 400'000;

  optimize::FaultCampaign campaign(soc::SocConfig{}, std::move(wc));
  campaign.set_jobs(2);
  const auto scenarios = campaign.make_scenarios(/*seed=*/3, /*count=*/4);

  const u64 cold_hash = campaign.run(scenarios).classification_hash();
  EXPECT_EQ(campaign.prepare_warm_fork(scenarios), 0u);
  EXPECT_FALSE(campaign.has_warm_fork());
  EXPECT_EQ(campaign.run(scenarios).classification_hash(), cold_hash);
}

TEST(WarmFork, EvaluatorBootCacheIsHitAndBitIdentical) {
  const workload::EngineWorkload w = idle_engine(2);
  const soc::SocConfig chip;

  optimize::ArchitectureEvaluator cold(chip);
  cold.set_warm_fork(false);
  cold.add_case(engine_case(w));
  const auto cold_runs = cold.run_config(chip);

  optimize::ArchitectureEvaluator warm(chip);
  ASSERT_TRUE(warm.warm_fork());  // default on
  warm.add_case(engine_case(w));
  const auto warm_runs = warm.run_config(chip);
  const auto warm_again = warm.run_config(chip);

  const auto stats = warm.boot_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);

  ASSERT_EQ(cold_runs.size(), 1u);
  for (const auto& runs : {warm_runs, warm_again}) {
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].cycles, cold_runs[0].cycles);
    EXPECT_EQ(runs[0].instructions, cold_runs[0].instructions);
    EXPECT_TRUE(runs[0].halted);
  }
}

// ---- manifest journal + resume ---------------------------------------

host::CampaignHeader big_header() {
  host::CampaignHeader h;
  h.workload = "engine";
  h.campaign_seed = 0xFEDCBA9876543210ull;  // > 2^53: must not round
  h.config_fingerprint = 9'581'216'573'188'400'823ull;
  h.snapshot_hash = 11'528'891'750'608'023'875ull;
  h.scenario_count = 2;
  return h;
}

host::ScenarioRecord record(const std::string& name, u64 seed) {
  host::ScenarioRecord r;
  r.name = name;
  r.seed = seed;
  r.outcome = "sdc";
  r.cycles = 216'108;
  r.halted = true;
  r.signature = 16'026'638'672'417'489'055ull;  // > 2^53
  r.task = "isr_tooth";
  r.injected = {1, 0, 0, 2};
  r.alarms = {0, 0, 1, 0, 0};
  r.budget_cycles = 400'000;
  r.timeout_ms = 250;
  r.attempts = 2;
  return r;
}

TEST(CampaignManifest, RoundTripsExactU64Values) {
  const std::string path = ::testing::TempDir() + "audo_manifest_test.jsonl";
  {
    host::CampaignManifest m;
    ASSERT_TRUE(m.create(path, big_header()).is_ok());
    ASSERT_TRUE(m.append(record("rand-0", 4'116'863'941'369'023'524ull)).is_ok());
    ASSERT_TRUE(m.append(record("rand-1", 6'349'179'348'336'612'933ull)).is_ok());
  }
  auto loaded = host::CampaignManifest::load(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  const host::CampaignHeader want = big_header();
  EXPECT_EQ(loaded.value().header.workload, want.workload);
  EXPECT_EQ(loaded.value().header.campaign_seed, want.campaign_seed);
  EXPECT_EQ(loaded.value().header.config_fingerprint, want.config_fingerprint);
  EXPECT_EQ(loaded.value().header.snapshot_hash, want.snapshot_hash);
  EXPECT_EQ(loaded.value().header.scenario_count, want.scenario_count);

  ASSERT_EQ(loaded.value().records.size(), 2u);
  const host::ScenarioRecord& got = loaded.value().records[0];
  const host::ScenarioRecord ref = record("rand-0", 4'116'863'941'369'023'524ull);
  EXPECT_EQ(got.name, ref.name);
  EXPECT_EQ(got.seed, ref.seed);
  EXPECT_EQ(got.outcome, ref.outcome);
  EXPECT_EQ(got.cycles, ref.cycles);
  EXPECT_EQ(got.halted, ref.halted);
  EXPECT_EQ(got.signature, ref.signature);
  EXPECT_EQ(got.task, ref.task);
  EXPECT_EQ(got.injected, ref.injected);
  EXPECT_EQ(got.alarms, ref.alarms);
  EXPECT_EQ(got.budget_cycles, ref.budget_cycles);
  EXPECT_EQ(got.timeout_ms, ref.timeout_ms);
  EXPECT_EQ(got.attempts, ref.attempts);
  std::remove(path.c_str());
}

TEST(CampaignManifest, TornTrailingLineIsDroppedButMidFileGarbageIsNot) {
  const std::string path = ::testing::TempDir() + "audo_manifest_torn.jsonl";
  {
    host::CampaignManifest m;
    ASSERT_TRUE(m.create(path, big_header()).is_ok());
    ASSERT_TRUE(m.append(record("rand-0", 1)).is_ok());
  }
  // Simulate kill -9 mid-write: a record with no terminating newline.
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const char torn[] = "{\"name\":\"rand-1\",\"seed\":2,\"outcome\":\"mas";
  std::fwrite(torn, 1, sizeof torn - 1, f);
  std::fclose(f);

  auto loaded = host::CampaignManifest::load(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  ASSERT_EQ(loaded.value().records.size(), 1u);
  EXPECT_EQ(loaded.value().records[0].name, "rand-0");

  // But a malformed *terminated* line is data loss, not a torn tail.
  f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fwrite("\n{\"name\":\"rand-2\"}\n", 1, 19, f);
  std::fclose(f);
  // The torn fragment above became a complete malformed line.
  EXPECT_FALSE(host::CampaignManifest::load(path).is_ok());
  std::remove(path.c_str());

  EXPECT_FALSE(host::CampaignManifest::load(path).is_ok());  // missing file
}

TEST(CampaignManifest, ResumeReproducesClassificationHash) {
  const workload::EngineWorkload w = idle_engine(2);
  optimize::FaultCampaign campaign(soc::SocConfig{}, engine_case(w));
  campaign.set_jobs(2);
  const auto scenarios = campaign.make_scenarios(/*seed=*/11, /*count=*/6);

  const std::string path = ::testing::TempDir() + "audo_manifest_resume.jsonl";
  host::CampaignHeader header;
  header.workload = "engine";
  header.campaign_seed = 11;
  header.config_fingerprint = campaign.config().fingerprint();
  header.scenario_count = scenarios.size();

  // Full journaled run = the reference.
  host::CampaignManifest manifest;
  ASSERT_TRUE(manifest.create(path, header).is_ok());
  campaign.set_manifest(&manifest);
  const optimize::CampaignSummary reference = campaign.run(scenarios);
  manifest.close();
  campaign.set_manifest(nullptr);
  const u64 want = reference.classification_hash();

  auto contents = host::CampaignManifest::load(path);
  ASSERT_TRUE(contents.is_ok()) << contents.status().to_string();
  ASSERT_EQ(contents.value().records.size(), scenarios.size());

  // Pretend the campaign died after two scenarios and resume from them.
  std::vector<host::ScenarioRecord> survived(
      contents.value().records.begin(), contents.value().records.begin() + 2);
  campaign.set_resume_records(&survived);
  const optimize::CampaignSummary resumed = campaign.run(scenarios);
  campaign.set_resume_records(nullptr);

  EXPECT_EQ(resumed.classification_hash(), want);
  unsigned replayed = 0;
  for (const optimize::ScenarioResult& r : resumed.runs) {
    if (r.from_manifest) ++replayed;
    EXPECT_EQ(r.budget_cycles, campaign.budget_cycles());
  }
  EXPECT_EQ(replayed, 2u);
  std::remove(path.c_str());
}

// ---- robustness policy -----------------------------------------------

TEST(RobustnessPolicy, OutcomeNamesRoundTrip) {
  for (unsigned o = 0; o < optimize::kNumFaultOutcomes; ++o) {
    const auto outcome = static_cast<optimize::FaultOutcome>(o);
    optimize::FaultOutcome back = optimize::FaultOutcome::kMasked;
    ASSERT_TRUE(optimize::outcome_from_string(to_string(outcome), &back));
    EXPECT_EQ(back, outcome);
  }
  optimize::FaultOutcome out;
  EXPECT_FALSE(optimize::outcome_from_string("not-an-outcome", &out));
}

TEST(RobustnessPolicy, BudgetAndPolicyFieldsReachReport) {
  const workload::EngineWorkload w = idle_engine(2);
  optimize::FaultCampaign campaign(soc::SocConfig{}, engine_case(w));
  campaign.set_timeout_ms(60'000);  // generous: must not fire
  const auto scenarios = campaign.make_scenarios(/*seed=*/2, /*count=*/3);
  const optimize::CampaignSummary summary = campaign.run(scenarios);

  ASSERT_EQ(summary.runs.size(), 3u);
  for (const optimize::ScenarioResult& r : summary.runs) {
    EXPECT_EQ(r.budget_cycles, campaign.budget_cycles());
    EXPECT_EQ(r.timeout_ms, 60'000u);
    EXPECT_EQ(r.attempts, 1u);
    EXPECT_FALSE(r.timed_out);
    EXPECT_FALSE(r.failed);
  }

  telemetry::RunReport report;
  summary.fill_report(report);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"budget_cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"timeout_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"attempts\""), std::string::npos);
}

TEST(RobustnessPolicy, WallClockTimeoutStopsRunawayScenarioAsHang) {
  // An interrupt storm never halts; give it a huge cycle budget so only
  // the wall clock can stop it, and a timeout far below the time the
  // full budget would need.
  workload::EngineOptions opt;
  opt.halt_after_bg = 60;
  auto built = workload::build_engine_workload(opt);
  ASSERT_TRUE(built.is_ok());

  optimize::WorkloadCase wc;
  wc.name = "engine";
  wc.program = built.value().program;
  wc.tc_entry = built.value().tc_entry;
  wc.pcp_entry = built.value().pcp_entry;
  wc.configure = [options = built.value().options](soc::Soc& soc) {
    workload::configure_engine(soc, options);
  };
  wc.max_cycles = 150'000'000;

  optimize::FaultCampaign campaign(soc::SocConfig{}, std::move(wc));
  campaign.set_timeout_ms(10);

  optimize::FaultCampaign::DemoTargets targets;
  soc::Soc probe{soc::SocConfig{}};
  targets.storm_src = probe.srcs().adc_done;
  // Scenario [4] of the demo set is the interrupt storm (hang class).
  auto scenarios = campaign.make_demo_scenarios(targets);
  scenarios.erase(scenarios.begin(), scenarios.end() - 1);
  ASSERT_EQ(scenarios.size(), 1u);

  const optimize::CampaignSummary summary = campaign.run(scenarios);
  ASSERT_EQ(summary.runs.size(), 1u);
  const optimize::ScenarioResult& r = summary.runs[0];
  EXPECT_EQ(r.outcome, optimize::FaultOutcome::kHang);
  EXPECT_TRUE(r.timed_out);
  EXPECT_FALSE(r.halted);
  EXPECT_LT(r.cycles, r.budget_cycles);
}

}  // namespace
}  // namespace audo
