// Soak tests: everything on at once, long runs, cross-checked end state.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "profiling/function_profile.hpp"
#include "profiling/session.hpp"
#include "workload/engine.hpp"
#include "workload/kernels.hpp"
#include "workload/transmission.hpp"

namespace audo {
namespace {

TEST(Soak, EngineEverythingOnForTwoMillionCycles) {
  workload::EngineOptions opt;
  opt.rpm = 4500;
  opt.crank_time_scale = 80;
  opt.pcp_offload = true;
  opt.wdt_period = 200'000;
  opt.table_dim = 64;
  opt.diag_uncached = true;
  opt.diag_stride_bytes = 36;
  auto w = workload::build_engine_workload(opt);
  ASSERT_TRUE(w.is_ok());

  profiling::SessionOptions opts;
  opts.resolution = 1000;
  opts.program_trace = true;
  opts.irq_trace = true;
  opts.ed.stream_drain = true;  // DAP streaming the whole time
  opts.ed.dap_bits_per_second = 80'000'000;
  profiling::ProfilingSession session(soc::SocConfig{}, opts);
  ASSERT_TRUE(session.load(w.value().program).is_ok());
  workload::configure_engine(session.device().soc(), w.value().options);
  session.reset(w.value().tc_entry, w.value().pcp_entry);
  const auto result = session.run(2'000'000);

  auto& soc = session.device().soc();
  // The application is healthy...
  EXPECT_FALSE(soc.tc().halted());
  EXPECT_EQ(soc.watchdog().timeouts(), 0u);
  EXPECT_EQ(soc.tc().bus_errors(), 0u);
  EXPECT_EQ(soc.pflash().array().violations(), 0u);
  EXPECT_GT(soc.pcp()->retired(), 1'000u);
  // ...the measurement is alive and parseable...
  EXPECT_GT(result.trace_messages, 10'000u);
  EXPECT_FALSE(result.messages.empty());
  const auto* ipc = result.find_series("ipc/tc.retired");
  ASSERT_NE(ipc, nullptr);
  EXPECT_GT(ipc->points.size(), 1'000u);
  EXPECT_NEAR(ipc->mean_rate(), result.ipc, 0.05);
  // ...and the DAP streamed at essentially its full physical rate the
  // whole time (production exceeds the interface here — the E4 story).
  const double dap_capacity_bytes =
      session.device().dap_bytes_per_cycle() * static_cast<double>(result.cycles);
  EXPECT_GT(static_cast<double>(session.device().dap_bytes_drained()),
            0.9 * dap_capacity_bytes);

  // Function profile over the same stream names the real hot spots.
  profiling::SystemProfiler profiler{isa::SymbolMap(w.value().program)};
  profiler.consume(result.messages);
  const auto profile = profiler.function_profile();
  ASSERT_FALSE(profile.empty());
  EXPECT_TRUE(profile[0].name == "diag_checksum" ||
              profile[0].name == "isr_tooth")
      << "unexpected hot spot: " << profile[0].name;
}

TEST(Soak, TransmissionLongRunStateStaysPlausible) {
  workload::TransmissionOptions opt;
  opt.time_scale = 120;
  opt.wdt_period = 300'000;
  auto w = workload::build_transmission_workload(opt);
  ASSERT_TRUE(w.is_ok());
  soc::Soc soc{soc::SocConfig{}};
  ASSERT_TRUE(workload::install_transmission(soc, w.value()).is_ok());

  auto rd = [&](const char* name) {
    return soc.dspr().read(w.value().program.symbol_addr(name).value(), 4);
  };
  u32 last_tasks = 0;
  for (int slice = 0; slice < 20; ++slice) {
    soc.run(150'000);
    ASSERT_FALSE(soc.tc().halted());
    const u32 tasks = rd("task_count");
    EXPECT_GT(tasks, last_tasks) << "periodic task stopped at slice " << slice;
    last_tasks = tasks;
    const u32 gear = rd("gear");
    EXPECT_GE(gear, 1u);
    EXPECT_LE(gear, 7u);
    // Vary the turbine speed like a drive cycle.
    soc.crank().set_rpm(1500 + (slice % 5) * 900);
  }
  EXPECT_EQ(soc.watchdog().timeouts(), 0u);
  EXPECT_GT(rd("shift_count"), 2u);
  EXPECT_GT(soc.dflash().writes(), 3u);
}

TEST(Soak, MliMonitorCanStreamTheWholeTraceOut) {
  // Monitor-based full drain: pop bytes through the MLI window until the
  // stream is dry; the byte count must match what the EMEM recorded.
  auto program = workload::build_sort(32);
  ASSERT_TRUE(program.is_ok());
  mcds::McdsConfig cfg;
  cfg.program_trace = true;
  ed::EmulationDevice ed(test::small_config(), cfg, ed::EdConfig{});
  ASSERT_TRUE(ed.load(program.value()).is_ok());
  ed.reset(program.value().entry());
  ed.run(10'000'000);
  ASSERT_TRUE(ed.soc().tc().halted());

  const u64 recorded = ed.emem().total_pushed_bytes();
  u64 popped = 0;
  while (ed.mli().read_sfr(0x14) != 0xFFFFFFFF) {
    ++popped;
    ASSERT_LT(popped, recorded + 10);
  }
  EXPECT_EQ(popped, recorded);
  EXPECT_EQ(ed.mli().bytes_popped(), recorded);
  EXPECT_EQ(ed.mli().read_sfr(0x04), 0u);  // EMEM now empty
}

}  // namespace
}  // namespace audo
