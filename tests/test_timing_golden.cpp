// Golden timing tests: exact cycle counts for small hand-analysed
// programs, locking the pipeline/memory timing model against regressions.
// These values are a contract — if a deliberate model change shifts them,
// update the goldens alongside the change and re-baseline EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "helpers.hpp"

namespace audo {
namespace {

using test::pspr_text;
using test::run_program;
using test::small_config;

u64 cycles_of(const std::string& source) {
  auto r = run_program(source);
  EXPECT_TRUE(r.halted());
  return r.cycles;
}

TEST(TimingGolden, EmptyProgram) {
  // Fetch from PSPR (1 cycle), deliver, issue HALT.
  EXPECT_EQ(cycles_of(pspr_text("    halt\n")), 2u);
}

TEST(TimingGolden, IndependentAluPairsDualIssue) {
  // 8 independent IP ops can only single-issue per cycle on the IP pipe;
  // adding LS ops in between enables 2-wide groups.
  const u64 serial = cycles_of(pspr_text(R"(
    movd d1, 1
    movd d2, 2
    movd d3, 3
    movd d4, 4
    movd d5, 5
    movd d6, 6
    movd d7, 7
    movd d8, 8
    halt
)"));
  const u64 paired = cycles_of(pspr_text(R"(
    movd d1, 1
    movha a2, 0xC000
    movd d3, 3
    lea  a4, [a2+4]
    movd d5, 5
    lea  a6, [a2+8]
    movd d7, 7
    lea  a8, [a2+12]
    halt
)"));
  EXPECT_EQ(serial, 10u);
  EXPECT_EQ(paired, 6u);
  EXPECT_LT(paired, serial);
}

TEST(TimingGolden, DependentChainIsOnePerCycle) {
  EXPECT_EQ(cycles_of(pspr_text(R"(
    movd d0, 1
    add  d0, d0, d0
    add  d0, d0, d0
    add  d0, d0, d0
    halt
)")), 6u);
}

TEST(TimingGolden, DivLatencyIsVisible) {
  // DIV result latency is 8: the dependent consumer waits.
  const u64 with_use = cycles_of(pspr_text(R"(
    movd d1, 100
    movd d2, 5
    div  d3, d1, d2
    add  d4, d3, d3
    halt
)"));
  const u64 without_use = cycles_of(pspr_text(R"(
    movd d1, 100
    movd d2, 5
    div  d3, d1, d2
    add  d4, d1, d1
    halt
)"));
  EXPECT_EQ(without_use + 7, with_use);
}

TEST(TimingGolden, TightLoopSteadyState) {
  // 100-iteration addi+loop body from the PSPR: 3 cycles per iteration
  // in steady state (issue addi, issue loop+redirect, refetch).
  const u64 n100 = cycles_of(pspr_text(R"(
    movd d0, 0
    movd d1, 100
    mov.ad a2, d1
_t: addi d0, d0, 1
    loop a2, _t
    halt
)"));
  const u64 n200 = cycles_of(pspr_text(R"(
    movd d0, 0
    movd d1, 200
    mov.ad a2, d1
_t: addi d0, d0, 1
    loop a2, _t
    halt
)"));
  EXPECT_EQ(n200 - n100, 300u);  // 3 cycles per extra iteration
}

TEST(TimingGolden, DsprLoadUsePenalty) {
  // Load + immediate use: two bubbles (result latency 2) vs load +
  // independent op.
  const u64 dependent = cycles_of(pspr_text(R"(
    movha a2, 0xC000
    ld.w d1, [a2+0]
    add  d2, d1, d1
    halt
)"));
  const u64 independent = cycles_of(pspr_text(R"(
    movha a2, 0xC000
    ld.w d1, [a2+0]
    add  d2, d3, d3
    halt
)"));
  EXPECT_EQ(dependent, independent + 2);
}

TEST(TimingGolden, FlashFirstFetchPaysWaitStates) {
  // The very first instruction from cached flash costs the I-cache miss
  // (bus grant + wait states); PSPR does not.
  auto flash = run_program(test::flash_text("    halt\n"));
  auto pspr = run_program(test::pspr_text("    halt\n"));
  ASSERT_TRUE(flash.halted());
  ASSERT_TRUE(pspr.halted());
  const unsigned ws = small_config().pflash.wait_states;
  EXPECT_EQ(flash.cycles, pspr.cycles + ws);  // the grant cycle serves the first wait state
}

TEST(TimingGolden, LmuRoundTrip) {
  // LMU store+load round trip timing vs DSPR (bus grant + 2-cycle SRAM).
  const u64 lmu = cycles_of(pspr_text(R"(
    movha a2, 0x9000
    movd d0, 7
    st.w d0, [a2+0]
    ld.w d1, [a2+0]
    add  d2, d1, d1
    halt
)"));
  const u64 dspr = cycles_of(pspr_text(R"(
    movha a2, 0xC000
    movd d0, 7
    st.w d0, [a2+0]
    ld.w d1, [a2+0]
    add  d2, d1, d1
    halt
)"));
  EXPECT_EQ(dspr, 7u);
  EXPECT_EQ(lmu, 9u);
}

TEST(TimingGolden, InterruptEntryCost) {
  // Cycle distance from a pending STM compare to the first handler
  // instruction: acceptance (1) + vector fetch from flash + jump +
  // handler fetch. Locked as a golden value.
  auto program = isa::assemble(R"(
    .text 0x80000140
    j isr
    .text 0x80001000
main:
    di
    movha a15, 0xC000
    movha a14, 0xF000
    movh  d0, 0x8000
    mtcr  biv, d0
    movd  d0, 100
    st.w  d0, [a14+8]
    movd  d0, 1
    st.w  d0, [a14+16]
    ei
_w: j _w
isr:
    mfcr  d8, ccnt_lo
    st.w  d8, [a15+0]
    halt
)");
  ASSERT_TRUE(program.is_ok());
  soc::Soc soc(small_config());
  ASSERT_TRUE(soc.load(program.value()).is_ok());
  soc.irq_router().configure(soc.srcs().stm0, 10, periph::IrqTarget::kTc);
  soc.reset(program.value().entry());
  Cycle entry_cycle = 0;
  while (!soc.tc().halted() && soc.cycle() < 10'000) {
    soc.step();
    if (soc.frame().tc.irq_entry) entry_cycle = soc.cycle();
  }
  ASSERT_TRUE(soc.tc().halted());
  const u32 handler_first = soc.dspr().read(0xC0000000, 4);
  ASSERT_GT(entry_cycle, 0u);
  // Dispatch-to-first-handler-instruction: vector fetch (flash, cold
  // I-cache) + jump + handler fetch — locked as a golden value.
  EXPECT_EQ(handler_first - entry_cycle, 9u);
}

}  // namespace
}  // namespace audo
