// Host parallel-sweep engine tests: the SimPool determinism contract
// (any job count returns results in submission order, bit-identical to
// serial), the evaluator riding on it, and the predecoded-program cache
// (identical architecture for identical runs, cache on or off).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "helpers.hpp"
#include "host/sim_job.hpp"
#include "host/sim_pool.hpp"
#include "isa/decode_cache.hpp"
#include "optimize/evaluator.hpp"
#include "optimize/options.hpp"
#include "workload/engine.hpp"
#include "workload/kernels.hpp"

namespace audo {
namespace {

TEST(SimPool, MapReturnsResultsInSubmissionOrder) {
  host::SimPool pool(4);
  const std::vector<u64> out =
      pool.map<u64>(100, [](usize i) { return static_cast<u64>(i) * i; });
  ASSERT_EQ(out.size(), 100u);
  for (usize i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<u64>(i) * i);
  }
}

TEST(SimPool, EveryIndexRunsExactlyOnce) {
  host::SimPool pool(8);
  std::vector<std::atomic<int>> hits(257);
  pool.run(hits.size(), [&](usize i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SimPool, SerialMatchesParallel) {
  auto compute = [](unsigned jobs) {
    host::SimPool pool(jobs);
    return pool.map<u64>(37, [](usize i) {
      u64 h = 14695981039346656037ull;
      for (usize k = 0; k <= i; ++k) h = (h ^ k) * 1099511628211ull;
      return h;
    });
  };
  const auto serial = compute(1);
  EXPECT_EQ(serial, compute(2));
  EXPECT_EQ(serial, compute(8));
}

TEST(SimPool, ReusableAcrossBatches) {
  // Regression guard for the straggler race: a worker from batch N must
  // not observe batch N+1's task state.
  host::SimPool pool(4);
  for (int batch = 0; batch < 50; ++batch) {
    const auto out = pool.map<int>(
        16, [&](usize i) { return batch * 100 + static_cast<int>(i); });
    for (usize i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], batch * 100 + static_cast<int>(i));
    }
  }
}

TEST(SimPool, PropagatesFirstException) {
  host::SimPool pool(4);
  EXPECT_THROW(pool.run(8,
                        [](usize i) {
                          if (i == 5) throw std::runtime_error("job 5");
                        }),
               std::runtime_error);
  // The pool stays usable after a failed batch.
  const auto out = pool.map<int>(4, [](usize i) { return static_cast<int>(i); });
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SimPool, JobsAccessors) {
  EXPECT_GE(host::SimPool::hardware_jobs(), 1u);
  EXPECT_EQ(host::SimPool(0).jobs(), host::SimPool::hardware_jobs());
  EXPECT_EQ(host::SimPool(1).jobs(), 1u);
  EXPECT_EQ(host::SimPool(3).jobs(), 3u);
}

// ---- evaluator on the pool ------------------------------------------

optimize::ArchitectureEvaluator make_evaluator(unsigned jobs) {
  optimize::ArchitectureEvaluator eval{test::small_config()};
  eval.set_jobs(jobs);
  for (const char* name : {"lookup", "fir", "checksum", "sort"}) {
    for (const auto& spec : workload::standard_suite()) {
      if (std::string_view(spec.name) != name) continue;
      auto program = spec.build();
      EXPECT_TRUE(program.is_ok());
      optimize::WorkloadCase wc;
      wc.name = name;
      wc.program = std::move(program).value();
      wc.tc_entry = wc.program.entry();
      eval.add_case(std::move(wc));
    }
  }
  return eval;
}

std::vector<optimize::ArchOption> small_catalogue() {
  const auto catalogue = optimize::standard_catalogue();
  std::vector<optimize::ArchOption> picked;
  for (const char* name : {"flash_ws_4", "cache_line_64", "read_buffers_4"}) {
    const auto* option = optimize::find_option(catalogue, name);
    EXPECT_NE(option, nullptr) << name;
    if (option != nullptr) picked.push_back(*option);
  }
  return picked;
}

void expect_same_results(const std::vector<optimize::OptionResult>& a,
                         const std::vector<optimize::OptionResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (usize i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].option, b[i].option) << "ranking order diverged at " << i;
    EXPECT_EQ(a[i].speedup, b[i].speedup);
    EXPECT_EQ(a[i].gain_per_cost, b[i].gain_per_cost);
    ASSERT_EQ(a[i].runs.size(), b[i].runs.size());
    for (usize c = 0; c < a[i].runs.size(); ++c) {
      EXPECT_EQ(a[i].runs[c].workload, b[i].runs[c].workload);
      EXPECT_EQ(a[i].runs[c].cycles, b[i].runs[c].cycles);
      EXPECT_EQ(a[i].runs[c].instructions, b[i].runs[c].instructions);
      EXPECT_EQ(a[i].runs[c].halted, b[i].runs[c].halted);
    }
  }
}

TEST(EvaluatorParallel, BitIdenticalAcrossJobCounts) {
  const std::vector<optimize::ArchOption> catalogue = small_catalogue();
  ASSERT_EQ(catalogue.size(), 3u);
  const auto serial = make_evaluator(1).evaluate(catalogue);
  ASSERT_FALSE(serial.empty());
  expect_same_results(serial, make_evaluator(2).evaluate(catalogue));
  expect_same_results(serial, make_evaluator(8).evaluate(catalogue));
}

TEST(EvaluatorParallel, InteractionsIdenticalAcrossJobCounts) {
  std::vector<optimize::ArchOption> catalogue = small_catalogue();
  ASSERT_GE(catalogue.size(), 2u);
  catalogue.resize(2);
  const auto serial = make_evaluator(1).evaluate_interactions(catalogue);
  const auto parallel = make_evaluator(4).evaluate_interactions(catalogue);
  ASSERT_EQ(serial.size(), parallel.size());
  for (usize i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].option_a, parallel[i].option_a);
    EXPECT_EQ(serial[i].option_b, parallel[i].option_b);
    EXPECT_EQ(serial[i].speedup_a, parallel[i].speedup_a);
    EXPECT_EQ(serial[i].speedup_b, parallel[i].speedup_b);
    EXPECT_EQ(serial[i].speedup_both, parallel[i].speedup_both);
    EXPECT_EQ(serial[i].synergy, parallel[i].synergy);
  }
}

// ---- decode cache ---------------------------------------------------

TEST(DecodeCache, LookupValidatesAgainstMemoryWord) {
  auto program = isa::assemble(test::pspr_text(R"(
    addi d0, d0, 7
    addi d1, d1, 9
    halt
)"));
  ASSERT_TRUE(program.is_ok());
  const auto& sec = program.value().sections().front();
  isa::DecodeCache cache;
  cache.add_section(sec.base, sec.bytes);
  EXPECT_FALSE(cache.empty());

  const u32 word0 = static_cast<u32>(sec.bytes[0]) |
                    static_cast<u32>(sec.bytes[1]) << 8 |
                    static_cast<u32>(sec.bytes[2]) << 16 |
                    static_cast<u32>(sec.bytes[3]) << 24;
  const isa::Instr* hit = cache.lookup(sec.base, word0);
  ASSERT_NE(hit, nullptr);
  const auto fresh = isa::decode(word0);
  ASSERT_TRUE(fresh.is_ok());
  EXPECT_EQ(hit->opcode, fresh.value().opcode);

  // A word that no longer matches what was predecoded (self-modified
  // code) must miss, as must any address outside the cached sections.
  EXPECT_EQ(cache.lookup(sec.base, word0 ^ 1), nullptr);
  EXPECT_EQ(cache.lookup(sec.base + 0x1000000, word0), nullptr);

  cache.clear();
  EXPECT_TRUE(cache.empty());
  EXPECT_EQ(cache.lookup(sec.base, word0), nullptr);
}

TEST(DecodeCacheSoc, EngineRunIdenticalWithCacheOnAndOff) {
  workload::EngineOptions opt;
  opt.crank_time_scale = 80;
  auto w = workload::build_engine_workload(opt);
  ASSERT_TRUE(w.is_ok());

  auto run_one = [&](bool cache_on) {
    auto soc = std::make_unique<soc::Soc>(soc::SocConfig{});
    soc->set_decode_cache_enabled(cache_on);
    EXPECT_EQ(soc->decode_cache_enabled(), cache_on);
    const Status s = workload::install_engine(*soc, w.value());
    EXPECT_TRUE(s.is_ok()) << s.to_string();
    soc->run(200'000);
    return soc;
  };
  const auto with_cache = run_one(true);
  const auto without = run_one(false);

  EXPECT_FALSE(with_cache->decode_cache().empty());
  EXPECT_TRUE(without->decode_cache().empty());

  // Same cycle count, same retirement, same architectural register file:
  // the cache is a pure host-side accelerator.
  EXPECT_EQ(with_cache->cycle(), without->cycle());
  EXPECT_EQ(with_cache->tc().retired(), without->tc().retired());
  EXPECT_EQ(with_cache->tc().halted(), without->tc().halted());
  EXPECT_EQ(with_cache->tc().next_pc(), without->tc().next_pc());
  for (unsigned r = 0; r < 16; ++r) {
    EXPECT_EQ(with_cache->tc().d(r), without->tc().d(r)) << "d" << r;
    EXPECT_EQ(with_cache->tc().a(r), without->tc().a(r)) << "a" << r;
  }
  ASSERT_NE(with_cache->pcp(), nullptr);
  ASSERT_NE(without->pcp(), nullptr);
  EXPECT_EQ(with_cache->pcp()->retired(), without->pcp()->retired());
}

// ---- SimJob ---------------------------------------------------------

TEST(SimJob, RunsProgramAndReportsLoadFailure) {
  auto program = isa::assemble(test::pspr_text("    addi d0, d0, 1\n    halt\n"));
  ASSERT_TRUE(program.is_ok());

  host::SimJob job;
  job.config = test::small_config();
  job.program = &program.value();
  job.tc_entry = program.value().entry();
  job.max_cycles = 10'000;
  const host::SimJobResult ok = job.run();
  EXPECT_TRUE(ok.loaded);
  EXPECT_TRUE(ok.halted);
  EXPECT_GT(ok.cycles, 0u);
  EXPECT_GT(ok.instructions, 0u);

  // A program that does not fit the tiny config must surface as
  // loaded=false (the evaluator turns that into the seed's empty
  // CaseRun), not crash the worker.
  auto huge = isa::assemble("    .text 0xB0000000\nmain:\n    halt\n");
  ASSERT_TRUE(huge.is_ok());
  job.program = &huge.value();
  const host::SimJobResult bad = job.run();
  EXPECT_FALSE(bad.loaded);
  EXPECT_EQ(bad.cycles, 0u);
}

TEST(SimJob, BudgetExhaustionIsReportedNotThrown) {
  // An infinite loop must come back as a result, not hang the pool.
  auto spin = isa::assemble(test::pspr_text("loop:\n    j loop\n"));
  ASSERT_TRUE(spin.is_ok());

  host::SimJob job;
  job.config = test::small_config();
  job.program = &spin.value();
  job.tc_entry = spin.value().entry();
  job.max_cycles = 5'000;
  const host::SimJobResult r = job.run();
  EXPECT_TRUE(r.loaded);
  EXPECT_FALSE(r.halted);
  EXPECT_TRUE(r.budget_exceeded);
  EXPECT_EQ(r.cycles, 5'000u);

  // A halting program does not trip the flag.
  auto halts = isa::assemble(test::pspr_text("    halt\n"));
  ASSERT_TRUE(halts.is_ok());
  job.program = &halts.value();
  job.tc_entry = halts.value().entry();
  const host::SimJobResult ok = job.run();
  EXPECT_TRUE(ok.halted);
  EXPECT_FALSE(ok.budget_exceeded);
}

}  // namespace
}  // namespace audo
