// Record/replay regression lab tests (ISSUE 10): ReplaySpec JSON
// round-tripping and strict rejection of corrupt goldens, the
// differential replay oracle passing bit-identically on honest reruns
// under either exec tier and fast-forward setting, seeded architecture
// mutations caught at the independently-verified first divergent cycle,
// and snapshot-accelerated bisection restoring a quiescent checkpoint
// instead of re-booting.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.hpp"
#include "replay/oracle.hpp"
#include "replay/replay.hpp"
#include "soc/frame_digest.hpp"
#include "soc/soc.hpp"
#include "workload/engine.hpp"
#include "workload/transmission.hpp"

namespace audo {
namespace {

// ---- recording fixtures ----------------------------------------------

// Busy-loop engine, short enough to keep every test fast.
workload::EngineOptions busy_engine_options() {
  workload::EngineOptions opt;
  opt.halt_after_bg = 0;  // run to the cycle budget
  return opt;
}

// Idle-background engine with the CAN ring in the LMU: WFI park between
// interrupts (quiescent checkpoints exist) and the first LMU access only
// happens when the first CAN frame arrives (can_rx_period cycles in) —
// an lmu_latency mutation therefore first diverges windows into the run.
workload::EngineOptions idle_lmu_engine_options() {
  workload::EngineOptions opt;
  opt.idle_background = true;
  opt.can_ring_in_lmu = true;
  return opt;
}

// Record a plain-soc (no profiling session) golden: run the workload on
// a fresh Soc with the canonical windowed digest attached — exactly the
// capture audo-profile --record performs, minus the MCDS session.
replay::ReplaySpec record_plain(const soc::SocConfig& cfg,
                                const replay::ScenarioSpec& scenario,
                                u32 window_bits) {
  replay::ReplaySpec spec;
  spec.name = scenario.kind;
  spec.scenario = scenario;
  spec.scenario.session.enabled = false;
  spec.config = cfg;
  spec.config_fingerprint = cfg.fingerprint();

  Addr tc_entry = 0;
  Addr pcp_entry = 0;
  isa::Program program;
  if (scenario.kind == "engine") {
    auto built = workload::build_engine_workload(scenario.engine);
    EXPECT_TRUE(built.is_ok()) << built.status().to_string();
    tc_entry = built.value().tc_entry;
    pcp_entry = built.value().pcp_entry;
    program = std::move(built).value().program;
  } else {
    auto built = workload::build_transmission_workload(scenario.transmission);
    EXPECT_TRUE(built.is_ok()) << built.status().to_string();
    tc_entry = built.value().tc_entry;
    program = std::move(built).value().program;
  }

  soc::Soc soc(cfg);
  EXPECT_TRUE(soc.load(program).is_ok());
  if (scenario.kind == "engine") {
    workload::configure_engine(soc, scenario.engine);
  } else {
    workload::configure_transmission(soc, scenario.transmission);
  }
  soc::WindowedFrameDigest recorder(window_bits);
  soc.add_frame_observer(&recorder);
  soc.reset(tc_entry, pcp_entry);
  soc.run(scenario.run_cycles);

  spec.digests.window_bits = window_bits;
  spec.digests.windows = recorder.finish();
  spec.digests.total_frames = recorder.total_frames();
  spec.digests.stream = recorder.stream_digest();
  spec.cycles = soc.cycle();
  spec.instructions = soc.tc().retired();
  return spec;
}

// Per-cycle fingerprint tape: the independent ground truth the
// first-divergence assertions compare the oracle's answer against.
class FingerprintTape final : public soc::FrameObserver {
 public:
  std::vector<u64> fps;  // fps[i] = fingerprint of cycle i + 1

  void observe(const mcds::ObservationFrame& frame) override {
    fps.push_back(soc::frame_fingerprint(frame));
  }
  void skip_idle(const mcds::ObservationFrame& idle, u64 n) override {
    const u64 fp = soc::frame_fingerprint(idle);
    for (u64 i = 0; i < n; ++i) fps.push_back(fp);
  }
};

std::vector<u64> fingerprint_run(const soc::SocConfig& cfg,
                                 const replay::ScenarioSpec& scenario) {
  auto built = workload::build_engine_workload(scenario.engine);
  EXPECT_TRUE(built.is_ok());
  soc::Soc soc(cfg);
  EXPECT_TRUE(soc.load(built.value().program).is_ok());
  workload::configure_engine(soc, scenario.engine);
  FingerprintTape tape;
  soc.add_frame_observer(&tape);
  soc.reset(built.value().tc_entry, built.value().pcp_entry);
  soc.run(scenario.run_cycles);
  return tape.fps;
}

// First cycle whose fingerprint differs between two tapes (1-based),
// or 0 when they match over the common prefix and length.
u64 first_divergent_cycle(const std::vector<u64>& a,
                          const std::vector<u64>& b) {
  const usize n = std::min(a.size(), b.size());
  for (usize i = 0; i < n; ++i) {
    if (a[i] != b[i]) return i + 1;
  }
  return a.size() == b.size() ? 0 : n + 1;
}

// ---- schema round trip and rejection ----------------------------------

TEST(ReplaySchema, RoundTripPreservesEveryField) {
  replay::ScenarioSpec scenario;
  scenario.kind = "engine";
  scenario.engine = busy_engine_options();
  scenario.engine.table_dim = 16;
  scenario.engine.pcp_offload = true;
  scenario.run_cycles = 20'000;

  soc::SocConfig cfg;
  cfg.pflash.wait_states = 4;
  cfg.icache.ways = 4;
  cfg.safety.ecc_sram = false;
  replay::ReplaySpec spec = record_plain(cfg, scenario, 12);
  ASSERT_FALSE(spec.digests.windows.empty());

  spec.campaign.enabled = true;
  spec.campaign.seed = 42;
  spec.campaign.scenarios = 3;
  spec.campaign.jobs = 2;
  spec.campaign.classification_hash = 0xdeadbeefcafe;
  spec.campaign.runs.push_back({"rand-0", "masked", 123, 0xaa});
  spec.campaign.runs.push_back({"rand-1", "sdc", 456, 0xbb});

  auto loaded = replay::ReplaySpec::from_json(spec.to_json());
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  const replay::ReplaySpec& got = loaded.value();

  EXPECT_EQ(got.name, spec.name);
  EXPECT_EQ(got.scenario.kind, "engine");
  EXPECT_EQ(got.scenario.run_cycles, spec.scenario.run_cycles);
  EXPECT_EQ(got.scenario.engine.table_dim, 16u);
  EXPECT_TRUE(got.scenario.engine.pcp_offload);
  EXPECT_EQ(got.config.fingerprint(), cfg.fingerprint());
  EXPECT_EQ(got.config_fingerprint, spec.config_fingerprint);
  EXPECT_EQ(got.cycles, spec.cycles);
  EXPECT_EQ(got.instructions, spec.instructions);
  EXPECT_EQ(got.digests.window_bits, 12u);
  EXPECT_EQ(got.digests.total_frames, spec.digests.total_frames);
  EXPECT_EQ(got.digests.stream, spec.digests.stream);
  ASSERT_EQ(got.digests.windows.size(), spec.digests.windows.size());
  for (usize i = 0; i < got.digests.windows.size(); ++i) {
    EXPECT_EQ(got.digests.windows[i].index, spec.digests.windows[i].index);
    EXPECT_EQ(got.digests.windows[i].frames, spec.digests.windows[i].frames);
    EXPECT_EQ(got.digests.windows[i].digest, spec.digests.windows[i].digest);
    EXPECT_EQ(got.digests.windows[i].components,
              spec.digests.windows[i].components);
  }
  EXPECT_TRUE(got.campaign.enabled);
  EXPECT_EQ(got.campaign.seed, 42u);
  EXPECT_EQ(got.campaign.classification_hash, 0xdeadbeefcafeull);
  ASSERT_EQ(got.campaign.runs.size(), 2u);
  EXPECT_EQ(got.campaign.runs[1].name, "rand-1");
  EXPECT_EQ(got.campaign.runs[1].outcome, "sdc");
  EXPECT_EQ(got.campaign.runs[1].cycles, 456u);
  EXPECT_EQ(got.campaign.runs[1].signature, 0xbbu);
}

TEST(ReplaySchema, RejectsCorruptTruncatedAndMismatchedInput) {
  replay::ScenarioSpec scenario;
  scenario.kind = "engine";
  scenario.engine = busy_engine_options();
  scenario.run_cycles = 8'000;
  const std::string good = record_plain({}, scenario, 12).to_json();
  ASSERT_TRUE(replay::ReplaySpec::from_json(good).is_ok());

  // Not JSON at all.
  EXPECT_FALSE(replay::ReplaySpec::from_json("").is_ok());
  EXPECT_FALSE(replay::ReplaySpec::from_json("not json").is_ok());

  // Truncation anywhere is a parse error, never a half-loaded spec.
  for (usize cut : {good.size() / 4, good.size() / 2, good.size() - 3}) {
    EXPECT_FALSE(replay::ReplaySpec::from_json(good.substr(0, cut)).is_ok())
        << "truncated at " << cut;
  }

  // Trailing garbage after a valid document.
  EXPECT_FALSE(replay::ReplaySpec::from_json(good + "x").is_ok());

  // Schema version mismatch.
  std::string wrong_schema = good;
  const usize at = wrong_schema.find("trisim-replay/1");
  ASSERT_NE(at, std::string::npos);
  wrong_schema.replace(at, 15, "trisim-replay/9");
  EXPECT_FALSE(replay::ReplaySpec::from_json(wrong_schema).is_ok());

  // A hand-edited config knob no longer hashes back to the recorded
  // fingerprint and must be refused.
  std::string edited = good;
  usize ws = edited.find("\"wait_states\":");
  ASSERT_NE(ws, std::string::npos);
  ws += 14;
  while (edited[ws] == ' ') ++ws;
  usize digits = 0;
  while (std::isdigit(static_cast<unsigned char>(edited[ws + digits]))) {
    ++digits;
  }
  ASSERT_GT(digits, 0u);
  edited.replace(ws, digits, edited[ws] == '7' ? "8" : "7");
  auto refused = replay::ReplaySpec::from_json(edited);
  ASSERT_FALSE(refused.is_ok());
  EXPECT_NE(refused.status().to_string().find("fingerprint"),
            std::string::npos);
}

TEST(ReplaySchema, FileRoundTrip) {
  replay::ScenarioSpec scenario;
  scenario.kind = "engine";
  scenario.engine = busy_engine_options();
  scenario.run_cycles = 8'000;
  const replay::ReplaySpec spec = record_plain({}, scenario, 12);

  const std::string path = "replay_roundtrip_test.json";
  ASSERT_TRUE(spec.to_file(path).is_ok());
  auto loaded = replay::ReplaySpec::from_file(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value().to_json(), spec.to_json());
  std::remove(path.c_str());

  EXPECT_FALSE(replay::ReplaySpec::from_file("no_such_golden.json").is_ok());
}

// ---- the oracle on honest reruns --------------------------------------

TEST(ReplayOracle, IdenticalRerunPassesUnderEveryHostMode) {
  replay::ScenarioSpec scenario;
  scenario.kind = "engine";
  scenario.engine = busy_engine_options();
  scenario.run_cycles = 40'000;
  const replay::ReplaySpec spec = record_plain({}, scenario, 12);
  ASSERT_GE(spec.digests.windows.size(), 4u);

  struct Mode {
    const char* tier;
    int ff;
  };
  for (const Mode& m : {Mode{"", -1}, Mode{"accurate", -1},
                        Mode{"superblock", 0}, Mode{"accurate", 0}}) {
    replay::OracleOptions opts;
    opts.exec_tier = m.tier;
    opts.fast_forward = m.ff;
    auto run = replay::run_replay(spec, opts);
    ASSERT_TRUE(run.is_ok()) << run.status().to_string();
    EXPECT_TRUE(run.value().passed)
        << "tier=" << m.tier << " ff=" << m.ff << "\n"
        << run.value().format();
    EXPECT_EQ(run.value().windows_checked, spec.digests.windows.size());
    EXPECT_EQ(run.value().frames, spec.digests.total_frames);
  }
}

TEST(ReplayOracle, TransmissionGoldenReplays) {
  replay::ScenarioSpec scenario;
  scenario.kind = "transmission";
  scenario.transmission.halt_after_tasks = 0;
  scenario.run_cycles = 30'000;
  const replay::ReplaySpec spec = record_plain({}, scenario, 12);
  ASSERT_FALSE(spec.digests.windows.empty());

  replay::OracleOptions opts;
  opts.exec_tier = "accurate";
  auto run = replay::run_replay(spec, opts);
  ASSERT_TRUE(run.is_ok());
  EXPECT_TRUE(run.value().passed) << run.value().format();
}

// ---- seeded mutations are caught at the right cycle --------------------

TEST(ReplayOracle, MutationCaughtAtIndependentlyVerifiedCycle) {
  replay::ScenarioSpec scenario;
  scenario.kind = "engine";
  scenario.engine = busy_engine_options();
  scenario.run_cycles = 30'000;
  const soc::SocConfig cfg;
  const replay::ReplaySpec spec = record_plain(cfg, scenario, 12);

  replay::OracleOptions opts;
  opts.mutations.emplace_back("flash_ws", 6);
  auto run = replay::run_replay(spec, opts);
  ASSERT_TRUE(run.is_ok());
  const replay::ReplayResult& r = run.value();
  ASSERT_FALSE(r.passed);
  ASSERT_TRUE(r.divergence.found);
  EXPECT_EQ(r.divergence.kind, "frame");
  EXPECT_FALSE(r.divergence.fields.empty());

  // Ground truth: two independent full-frame runs, first differing cycle.
  soc::SocConfig mutated = cfg;
  ASSERT_TRUE(replay::apply_mutation(mutated, "flash_ws", 6).is_ok());
  const u64 want =
      first_divergent_cycle(fingerprint_run(cfg, scenario),
                            fingerprint_run(mutated, scenario));
  ASSERT_NE(want, 0u);
  EXPECT_EQ(r.divergence.cycle, want);

  // The context rows straddle the divergence: matching before, not after.
  bool saw_match_before = false;
  for (const replay::ContextRow& row : r.divergence.context) {
    if (row.cycle < r.divergence.cycle) {
      saw_match_before = true;
      EXPECT_TRUE(row.match) << "cycle " << row.cycle;
    }
    if (row.cycle == r.divergence.cycle) EXPECT_FALSE(row.match);
  }
  EXPECT_TRUE(saw_match_before);
}

TEST(ReplayOracle, UnknownMutationKnobIsRejected) {
  soc::SocConfig cfg;
  EXPECT_FALSE(replay::apply_mutation(cfg, "bogus_knob", 1).is_ok());
  // A value that makes the config invalid is refused too.
  soc::SocConfig bad;
  EXPECT_FALSE(replay::apply_mutation(bad, "issue_width", 99).is_ok());
  soc::SocConfig good;
  EXPECT_TRUE(replay::apply_mutation(good, "flash_ws", 6).is_ok());
  EXPECT_EQ(good.pflash.wait_states, 6u);
}

// ---- snapshot-accelerated bisection ------------------------------------

// The LMU is first touched by the CAN RX ISR (can_rx_period cycles in),
// so an lmu_latency mutation diverges windows into the run; the idle
// background parks in WFI so quiescent window-boundary checkpoints
// exist. The bisection must restore one instead of re-booting, under
// either exec tier and with fast-forward on or off.
TEST(ReplayBisect, ChecksFromQuiescentCheckpointInLateWindow) {
  replay::ScenarioSpec scenario;
  scenario.kind = "engine";
  scenario.engine = idle_lmu_engine_options();
  scenario.run_cycles = 24'000;
  const soc::SocConfig cfg;
  const replay::ReplaySpec spec = record_plain(cfg, scenario, 10);
  const u64 win = u64{1} << 10;

  struct Mode {
    const char* tier;
    int ff;
  };
  for (const Mode& m : {Mode{"superblock", 1}, Mode{"accurate", 1},
                        Mode{"superblock", 0}, Mode{"accurate", 0}}) {
    replay::OracleOptions opts;
    opts.exec_tier = m.tier;
    opts.fast_forward = m.ff;
    opts.mutations.emplace_back("lmu_latency", 12);
    auto run = replay::run_replay(spec, opts);
    ASSERT_TRUE(run.is_ok()) << run.status().to_string();
    const replay::ReplayResult& r = run.value();
    ASSERT_FALSE(r.passed) << "tier=" << m.tier << " ff=" << m.ff;
    ASSERT_TRUE(r.divergence.found);
    EXPECT_EQ(r.divergence.kind, "frame") << r.format();
    // The first CAN frame arrives can_rx_period (9000) cycles in: the
    // divergence sits windows past cycle 0 and the re-step must have
    // started from a quiescent checkpoint, not from reset.
    EXPECT_GT(r.divergence.window_index, 0u);
    EXPECT_GT(r.divergence.cycle, win);
    EXPECT_TRUE(r.divergence.checkpoint_used) << r.format();
    EXPECT_GT(r.divergence.checkpoint_cycle, 0u);
    EXPECT_LE(r.divergence.checkpoint_cycle,
              r.divergence.window_index * win);
    // All four host modes agree on the first divergent cycle.
    static u64 agreed = 0;
    if (agreed == 0) agreed = r.divergence.cycle;
    EXPECT_EQ(r.divergence.cycle, agreed);
  }
}

// A golden whose window digest was tampered with cannot be blamed on the
// test run: the reference rerun does not reproduce it either, so the
// oracle degrades to an honest window-granularity verdict instead of
// inventing per-cycle claims.
TEST(ReplayBisect, TamperedGoldenDegradesToWindowGranularity) {
  replay::ScenarioSpec scenario;
  scenario.kind = "engine";
  scenario.engine = busy_engine_options();
  scenario.run_cycles = 20'000;
  replay::ReplaySpec spec = record_plain({}, scenario, 12);
  ASSERT_GE(spec.digests.windows.size(), 3u);
  spec.digests.windows[2].digest ^= 1;  // single-bit golden corruption

  auto run = replay::run_replay(spec);
  ASSERT_TRUE(run.is_ok());
  const replay::ReplayResult& r = run.value();
  ASSERT_FALSE(r.passed);
  ASSERT_TRUE(r.divergence.found);
  EXPECT_EQ(r.divergence.kind, "window") << r.format();
  EXPECT_EQ(r.divergence.window_index, 2u);
}

// ---- divergence report JSON -------------------------------------------

TEST(ReplayReport, DivergenceJsonCarriesTheStructuredReport) {
  replay::ScenarioSpec scenario;
  scenario.kind = "engine";
  scenario.engine = busy_engine_options();
  scenario.run_cycles = 20'000;
  const replay::ReplaySpec spec = record_plain({}, scenario, 12);

  replay::OracleOptions opts;
  opts.mutations.emplace_back("issue_width", 1);
  auto run = replay::run_replay(spec, opts);
  ASSERT_TRUE(run.is_ok());
  ASSERT_FALSE(run.value().passed);

  auto doc = json::json_parse(run.value().to_json());
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  const json::JsonValue& root = doc.value();
  ASSERT_NE(root.find("schema"), nullptr);
  EXPECT_EQ(root.find("schema")->string, replay::kDivergenceSchema);
  EXPECT_FALSE(root.find("passed")->boolean);
  const json::JsonValue* div = root.find("divergence");
  ASSERT_NE(div, nullptr);
  EXPECT_EQ(div->find("kind")->string, "frame");
  EXPECT_GT(div->find("cycle")->as_u64(), 0u);
  ASSERT_NE(div->find("fields"), nullptr);
  ASSERT_FALSE(div->find("fields")->array.empty());
  const json::JsonValue& f = div->find("fields")->array[0];
  EXPECT_FALSE(f.find("component")->string.empty());
  EXPECT_FALSE(f.find("field")->string.empty());
  ASSERT_NE(div->find("context"), nullptr);
  EXPECT_FALSE(div->find("context")->array.empty());
}

}  // namespace
}  // namespace audo
