// Host telemetry layer: metrics registry, timeline/Perfetto export, host
// self-profiler, run reports — and the property the whole design hangs
// on: attaching telemetry must not change the simulation by one cycle.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/json.hpp"
#include "ed/emulation_device.hpp"
#include "helpers.hpp"
#include "soc/tracer.hpp"
#include "telemetry/host_profiler.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/timeline.hpp"
#include "workload/engine.hpp"

namespace audo {
namespace {

workload::EngineWorkload engine_workload() {
  workload::EngineOptions opt;
  opt.crank_time_scale = 100;
  auto w = workload::build_engine_workload(opt);
  EXPECT_TRUE(w.is_ok()) << w.status().to_string();
  return std::move(w).value();
}

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

TEST(MetricsRegistry, CountersAndGaugesCollectLiveValues) {
  u64 retired = 41;
  telemetry::MetricsRegistry registry;
  registry.counter("tc", "retired", &retired);
  registry.gauge("emem", "occupancy_bytes", [] { return u64{512}; });
  ASSERT_EQ(registry.size(), 2u);

  retired = 42;  // collect() must read the live value, not a copy
  const telemetry::MetricsSnapshot snap = registry.collect(1000);
  EXPECT_EQ(snap.sim_cycle, 1000u);
  EXPECT_GT(snap.host_ns, 0u);
  ASSERT_EQ(snap.samples.size(), 2u);
  const telemetry::MetricSample* s = snap.find("tc", "retired");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->value, 42u);
  s = snap.find("emem", "occupancy_bytes");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->value, 512u);
  EXPECT_EQ(snap.find("tc", "nonexistent"), nullptr);
  EXPECT_EQ(snap.component_count(), 2u);
}

TEST(MetricsRegistry, SocRegistersAllMajorComponents) {
  soc::Soc soc(test::small_config());
  telemetry::MetricsRegistry registry;
  soc.register_metrics(registry);
  const telemetry::MetricsSnapshot snap = registry.collect(0);
  // The ISSUE floor is eight instrumented components; the plain SoC alone
  // (no EEC side) already exceeds it.
  EXPECT_GE(snap.component_count(), 8u);
  for (const char* component :
       {"tc", "icache", "dcache", "pflash", "sri", "irq", "dma"}) {
    bool found = false;
    for (const auto& s : snap.samples) found |= s.component == component;
    EXPECT_TRUE(found) << "component missing: " << component;
  }
}

TEST(MetricsRegistry, SnapshotsAreDeterministicAcrossIdenticalRuns) {
  auto run_once = [](telemetry::MetricsSnapshot& out) {
    auto w = engine_workload();
    soc::Soc soc(test::small_config());
    ASSERT_TRUE(workload::install_engine(soc, w).is_ok());
    telemetry::MetricsRegistry registry;
    soc.register_metrics(registry);
    soc.run(150'000);
    out = registry.collect(soc.cycle());
  };
  telemetry::MetricsSnapshot a, b;
  run_once(a);
  run_once(b);
  EXPECT_EQ(a.sim_cycle, b.sim_cycle);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (usize i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].component, b.samples[i].component);
    EXPECT_EQ(a.samples[i].name, b.samples[i].name);
    EXPECT_EQ(a.samples[i].value, b.samples[i].value)
        << a.samples[i].component << "/" << a.samples[i].name;
  }
}

// ---------------------------------------------------------------------
// Non-intrusiveness: the acceptance property
// ---------------------------------------------------------------------

TEST(Telemetry, AttachingTelemetryDoesNotPerturbTheSimulation) {
  auto w = engine_workload();

  soc::Soc bare(test::small_config());
  ASSERT_TRUE(workload::install_engine(bare, w).is_ok());
  bare.run(200'000);

  soc::Soc observed(test::small_config());
  ASSERT_TRUE(workload::install_engine(observed, w).is_ok());
  telemetry::MetricsRegistry registry;
  observed.register_metrics(registry);
  soc::SocTracer tracer;
  observed.set_tracer(&tracer);
  telemetry::HostProfiler host;
  observed.set_phase_probe(&host.probe());
  host.start(observed.cycle());
  observed.run(200'000);
  host.stop(observed.cycle());
  tracer.finish(observed.cycle());

  // Bit-identical simulated state: same cycle count, same retired
  // instructions, same architectural registers.
  EXPECT_EQ(bare.cycle(), observed.cycle());
  EXPECT_EQ(bare.tc().retired(), observed.tc().retired());
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_EQ(bare.tc().d(i), observed.tc().d(i)) << "d" << i;
    EXPECT_EQ(bare.tc().a(i), observed.tc().a(i)) << "a" << i;
  }
  // ...and the observers actually observed something.
  EXPECT_GT(tracer.timeline().event_count(), 0u);
  EXPECT_GT(host.sim_cycles_per_second(), 0.0);
}

// ---------------------------------------------------------------------
// Timeline + Chrome JSON export
// ---------------------------------------------------------------------

// Walk a chrome trace document; returns the traceEvents array.
const json::JsonValue& trace_events(const json::JsonValue& doc) {
  EXPECT_TRUE(doc.is_object());
  const json::JsonValue* events = doc.find("traceEvents");
  EXPECT_NE(events, nullptr);
  EXPECT_TRUE(events->is_array());
  return *events;
}

TEST(Timeline, ChromeJsonIsValidAndWellFormed) {
  telemetry::Timeline tl;
  const auto t0 = tl.add_track("track0");
  const auto t1 = tl.add_track("track1");
  tl.begin(t0, "outer", 10);
  tl.begin(t0, "inner", 20);
  tl.end(t0, 30);
  tl.end(t0, 40);
  tl.complete(t1, "xact", 15, 25);
  tl.instant(t1, "ping", 50);
  tl.counter("fill", 60, 123.5);

  auto doc = json::json_parse(tl.to_chrome_json(100'000'000));
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  const json::JsonValue& events = trace_events(doc.value());

  usize b = 0, e = 0, x = 0, i = 0, c = 0, m = 0;
  for (const auto& ev : events.array) {
    ASSERT_TRUE(ev.is_object());
    const json::JsonValue* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    const std::string& kind = ph->string;
    if (kind == "B") ++b;
    else if (kind == "E") ++e;
    else if (kind == "X") ++x;
    else if (kind == "i") ++i;
    else if (kind == "C") ++c;
    else if (kind == "M") ++m;
    else FAIL() << "unexpected ph: " << kind;
    if (kind != "M") {
      ASSERT_NE(ev.find("ts"), nullptr);
      EXPECT_TRUE(ev.find("ts")->is_number());
    }
  }
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(e, 2u);
  EXPECT_EQ(x, 1u);
  EXPECT_EQ(i, 1u);
  EXPECT_EQ(c, 1u);
  EXPECT_GE(m, 2u);  // at least process_name + one thread_name

  // Cycle -> microsecond conversion at 100 MHz: cycle 10 = 0.1 us.
  for (const auto& ev : events.array) {
    if (ev.find("ph")->string == "B" && ev.find("name")->string == "outer") {
      EXPECT_DOUBLE_EQ(ev.find("ts")->number, 0.1);
    }
  }
}

TEST(Timeline, BoundsEventCountAndCountsDrops) {
  telemetry::TimelineOptions opt;
  opt.max_events = 10;
  telemetry::Timeline tl(opt);
  const auto t = tl.add_track("t");
  for (Cycle at = 0; at < 100; ++at) tl.instant(t, "e", at);
  EXPECT_LE(tl.event_count(), 10u);
  EXPECT_EQ(tl.dropped_events(), 90u);
}

TEST(Timeline, WindowFiltersEventsOutsideRange) {
  telemetry::TimelineOptions opt;
  opt.start_cycle = 100;
  opt.end_cycle = 200;
  telemetry::Timeline tl(opt);
  const auto t = tl.add_track("t");
  tl.instant(t, "before", 50);
  tl.instant(t, "in", 150);
  tl.instant(t, "after", 250);
  EXPECT_EQ(tl.event_count(), 1u);
}

// ---------------------------------------------------------------------
// SocTracer end-to-end: a real run exports an openable Perfetto trace
// ---------------------------------------------------------------------

TEST(SocTracer, EngineRunExportsBalancedNestedSpans) {
  auto w = engine_workload();
  mcds::McdsConfig mcds_cfg;
  mcds_cfg.irq_trace = true;
  ed::EmulationDevice ed(test::small_config(), mcds_cfg, ed::EdConfig{});
  ASSERT_TRUE(ed.load(w.program).is_ok());
  workload::configure_engine(ed.soc(), w.options);
  ed.reset(w.tc_entry, w.pcp_entry);

  soc::SocTracer tracer;
  ed.set_tracer(&tracer);
  ed.run(200'000);
  tracer.finish(ed.soc().cycle());

  EXPECT_GE(tracer.timeline().track_count(), 4u);
  auto doc = json::json_parse(
      tracer.timeline().to_chrome_json(ed.soc().config().clock_hz));
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  const json::JsonValue& events = trace_events(doc.value());
  EXPECT_GT(events.array.size(), 100u);

  // Per-track invariants over B/E duration events: timestamps are
  // monotonic, spans balance, and nesting never goes negative.
  std::map<double, int> depth;          // tid -> open span depth
  std::map<double, double> last_ts;     // tid -> last B/E ts
  std::set<double> tids;
  for (const auto& ev : events.array) {
    const std::string& ph = ev.find("ph")->string;
    if (ph == "M") continue;
    const double tid = ev.find("tid")->number;
    tids.insert(tid);
    if (ph != "B" && ph != "E") continue;
    const double ts = ev.find("ts")->number;
    auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "non-monotonic ts on tid " << tid;
    }
    last_ts[tid] = ts;
    depth[tid] += ph == "B" ? 1 : -1;
    EXPECT_GE(depth[tid], 0) << "E without matching B on tid " << tid;
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced spans on tid " << tid;
  }
  // X transactions carry non-negative durations.
  for (const auto& ev : events.array) {
    if (ev.find("ph")->string != "X") continue;
    ASSERT_NE(ev.find("dur"), nullptr);
    EXPECT_GT(ev.find("dur")->number, 0.0);
  }
  EXPECT_GE(tids.size(), 4u);
}

// ---------------------------------------------------------------------
// Host self-profiler
// ---------------------------------------------------------------------

TEST(HostProfiler, MeasuresThroughputAndPhaseBreakdown) {
  auto w = engine_workload();
  soc::Soc soc(test::small_config());
  ASSERT_TRUE(workload::install_engine(soc, w).is_ok());
  telemetry::HostProfiler host;
  soc.set_phase_probe(&host.probe());
  host.start(soc.cycle());
  soc.run(100'000);
  host.stop(soc.cycle());

  EXPECT_TRUE(host.stopped());
  EXPECT_EQ(host.sim_cycles(), 100'000u);
  EXPECT_GT(host.wall_seconds(), 0.0);
  EXPECT_GT(host.sim_cycles_per_second(), 0.0);
  EXPECT_GT(host.probe().instrumented_cycles(), 0u);
  // The SoC phases were all visited; their fractions sum to ~1.
  double total = 0.0;
  for (unsigned p = 0; p < static_cast<unsigned>(telemetry::StepPhase::kMcds);
       ++p) {
    const auto phase = static_cast<telemetry::StepPhase>(p);
    EXPECT_GT(host.probe().stat(phase).samples, 0u)
        << telemetry::to_string(phase);
    total += host.probe().fraction(phase);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

// ---------------------------------------------------------------------
// RunReport JSON
// ---------------------------------------------------------------------

TEST(RunReport, JsonHasTheDocumentedShape) {
  u64 counter = 7;
  telemetry::MetricsRegistry registry;
  registry.counter("tc", "retired", &counter);
  registry.counter("tc", "stall.total", &counter);
  registry.counter("sri", "grants", &counter);

  telemetry::RunReport report;
  report.bench = "unit";
  report.config_name = "small";
  report.config_fingerprint = 0xDEADBEEF;
  report.cycles = 1234;
  report.instructions = 1000;
  report.sim_ipc = 0.81;
  report.metrics = registry.collect(1234);
  report.add_extra("answer", 42.0);

  auto doc = json::json_parse(report.to_json());
  ASSERT_TRUE(doc.is_ok()) << doc.status().to_string();
  const json::JsonValue& v = doc.value();
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("schema")->string, "trisim-run-report/1");
  EXPECT_EQ(v.find("bench")->string, "unit");
  EXPECT_DOUBLE_EQ(v.find("config")->find("fingerprint")->number,
                   static_cast<double>(0xDEADBEEF));
  EXPECT_DOUBLE_EQ(v.find("run")->find("cycles")->number, 1234.0);
  const json::JsonValue* components = v.find("metrics")->find("components");
  ASSERT_NE(components, nullptr);
  EXPECT_EQ(components->object.size(), 2u);  // tc, sri
  EXPECT_DOUBLE_EQ(
      components->find("tc")->find("retired")->number, 7.0);
  EXPECT_DOUBLE_EQ(v.find("extras")->find("answer")->number, 42.0);
  ASSERT_NE(v.find("host"), nullptr);
  ASSERT_NE(v.find("host")->find("phases"), nullptr);
}

// ---------------------------------------------------------------------
// Config fingerprint
// ---------------------------------------------------------------------

TEST(SocConfig, FingerprintIsStableAndSensitive) {
  const soc::SocConfig a;
  const soc::SocConfig b;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  soc::SocConfig c;
  c.pflash.wait_states += 1;
  EXPECT_NE(a.fingerprint(), c.fingerprint());

  soc::SocConfig d;
  d.dcache.enabled = !d.dcache.enabled;
  EXPECT_NE(a.fingerprint(), d.fingerprint());

  soc::SocConfig e;
  e.name = "other";
  EXPECT_NE(a.fingerprint(), e.fingerprint());
}

}  // namespace
}  // namespace audo
