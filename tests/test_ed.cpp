// Emulation Device tests: structural non-intrusiveness (E10), tool
// access over Cerberus, end-of-run trace download and the stream-drain
// DAP model.
#include <gtest/gtest.h>

#include "ed/emulation_device.hpp"
#include "helpers.hpp"
#include "mem/memory_map.hpp"
#include "workload/kernels.hpp"

namespace audo {
namespace {

ed::EdConfig default_ed() {
  ed::EdConfig cfg;
  cfg.emem.size_bytes = 512 * 1024;
  cfg.emem.overlay_bytes = 128 * 1024;
  return cfg;
}

mcds::McdsConfig full_trace_config() {
  mcds::McdsConfig cfg;
  cfg.program_trace = true;
  cfg.data_trace = true;
  cfg.irq_trace = true;
  cfg.sync_interval_cycles = 512;
  return cfg;
}

TEST(EmulationDevice, TracingIsNonIntrusive) {
  // The central E10 property: a run with the full EEC observing is
  // cycle-identical and state-identical to a bare product-chip run.
  auto program = workload::build_fir(8, 64);
  ASSERT_TRUE(program.is_ok());

  soc::Soc bare(test::small_config());
  ASSERT_TRUE(bare.load(program.value()).is_ok());
  bare.reset(program.value().entry());
  const u64 bare_cycles = bare.run(10'000'000);

  ed::EmulationDevice ed(test::small_config(), full_trace_config(),
                         default_ed());
  ASSERT_TRUE(ed.load(program.value()).is_ok());
  ed.reset(program.value().entry());
  const u64 ed_cycles = ed.run(10'000'000);

  EXPECT_EQ(bare_cycles, ed_cycles);
  EXPECT_EQ(bare.tc().retired(), ed.soc().tc().retired());
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_EQ(bare.tc().d(i), ed.soc().tc().d(i)) << "d" << i;
    EXPECT_EQ(bare.tc().a(i), ed.soc().tc().a(i)) << "a" << i;
  }
  EXPECT_EQ(bare.dspr().array(), ed.soc().dspr().array());
  // And the ED did actually record something.
  EXPECT_GT(ed.emem().total_pushed_messages(), 10u);
}

TEST(EmulationDevice, DownloadedFlowTraceMatchesExecution) {
  auto program = workload::build_sort(24);
  ASSERT_TRUE(program.is_ok());
  ed::EmulationDevice ed(test::small_config(), full_trace_config(),
                         default_ed());
  ASSERT_TRUE(ed.load(program.value()).is_ok());
  ed.reset(program.value().entry());
  ed.run(10'000'000);
  ASSERT_TRUE(ed.soc().tc().halted());

  auto decoded = ed.download_trace();
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  // Sum of instr_count over flow/sync/tick messages equals retired
  // instructions (minus the tail after the last message).
  u64 traced = 0;
  u64 flows = 0;
  for (const mcds::TraceMessage& m : decoded.value()) {
    if (m.source != mcds::MsgSource::kTcCore) continue;
    if (m.kind == mcds::MsgKind::kFlow || m.kind == mcds::MsgKind::kSync) {
      traced += m.instr_count;
      if (m.kind == mcds::MsgKind::kFlow) ++flows;
    }
  }
  EXPECT_GT(flows, 100u);  // the sort is branchy
  EXPECT_LE(traced, ed.soc().tc().retired());
  EXPECT_GT(traced, ed.soc().tc().retired() * 9 / 10);
}

TEST(EmulationDevice, ToolReadAndWriteThroughCerberus) {
  auto program = workload::build_memcpy(16, 1);
  ASSERT_TRUE(program.is_ok());
  ed::EmulationDevice ed(test::small_config(), mcds::McdsConfig{},
                         default_ed());
  ASSERT_TRUE(ed.load(program.value()).is_ok());
  ed.reset(program.value().entry());
  ed.run(1'000'000);

  // Read the kernel's result via the tool access path.
  const Addr result = program.value().symbol_addr("result").value();
  EXPECT_EQ(ed.tool_read32(result), ed.soc().dspr().read(result, 4));

  // Write LMU through the tool and read it back both ways.
  ed.tool_write32(mem::kLmuBase + 0x80, 0x5EC0FFEE);
  EXPECT_EQ(ed.tool_read32(mem::kLmuBase + 0x80), 0x5EC0FFEEu);
  EXPECT_EQ(ed.soc().lmu().array().read32(0x80), 0x5EC0FFEEu);
}

TEST(EmulationDevice, StreamDrainMovesBytesDuringRun) {
  auto program = workload::build_sort(48);
  ASSERT_TRUE(program.is_ok());
  ed::EdConfig cfg = default_ed();
  cfg.stream_drain = true;
  cfg.dap_bits_per_second = 40'000'000;
  ed::EmulationDevice ed(test::small_config(), full_trace_config(), cfg);
  ASSERT_TRUE(ed.load(program.value()).is_ok());
  ed.reset(program.value().entry());
  ed.run(10'000'000);
  EXPECT_GT(ed.dap_bytes_drained(), 0u);
  // Everything that was pushed and drained is decodable.
  auto decoded = ed.download_trace();
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_GT(decoded.value().size(), 10u);
}

TEST(EmulationDevice, TinyEmemOverflowsButRunContinues) {
  auto program = workload::build_sort(64);
  ASSERT_TRUE(program.is_ok());
  ed::EdConfig cfg = default_ed();
  cfg.emem.size_bytes = 2 * 1024;  // minuscule trace memory
  cfg.emem.overlay_bytes = 1024;
  cfg.emem.mode = emem::TraceMode::kFill;
  ed::EmulationDevice ed(test::small_config(), full_trace_config(), cfg);
  ASSERT_TRUE(ed.load(program.value()).is_ok());
  ed.reset(program.value().entry());
  const u64 cycles = ed.run(10'000'000);
  EXPECT_TRUE(ed.soc().tc().halted());
  EXPECT_GT(ed.mcds().dropped_messages(), 0u);

  // Overflow must not perturb the target either.
  soc::Soc bare(test::small_config());
  ASSERT_TRUE(bare.load(program.value()).is_ok());
  bare.reset(program.value().entry());
  EXPECT_EQ(bare.run(10'000'000), cycles);
}

TEST(EmulationDevice, RingModeKeepsTheTail) {
  auto program = workload::build_sort(64);
  ASSERT_TRUE(program.is_ok());
  ed::EdConfig cfg = default_ed();
  cfg.emem.size_bytes = 4 * 1024;
  cfg.emem.overlay_bytes = 2 * 1024;
  cfg.emem.mode = emem::TraceMode::kRing;
  ed::EmulationDevice ed(test::small_config(), full_trace_config(), cfg);
  ASSERT_TRUE(ed.load(program.value()).is_ok());
  ed.reset(program.value().entry());
  ed.run(10'000'000);
  EXPECT_GT(ed.emem().overwritten_messages(), 0u);
  auto decoded = ed.download_trace();
  ASSERT_TRUE(decoded.is_ok());
  ASSERT_FALSE(decoded.value().empty());
  // The retained window ends near the end of the run.
  const Cycle last = decoded.value().back().cycle;
  EXPECT_GT(last, ed.soc().cycle() * 9 / 10);
}

TEST(EmulationDevice, CalibrationOverlayHoldsData) {
  ed::EmulationDevice ed(test::small_config(), mcds::McdsConfig{},
                         default_ed());
  ed.emem().overlay().write32(0x100, 0xCA11B8A7);
  EXPECT_EQ(ed.emem().overlay().read32(0x100), 0xCA11B8A7u);
}

}  // namespace
}  // namespace audo
