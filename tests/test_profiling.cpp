// Enhanced System Profiling tests: the §5 measurement specs, parallel
// rate series, rate correctness against ground truth, cascaded counters,
// the function-level profiler and the session harness.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "profiling/function_profile.hpp"
#include "profiling/session.hpp"
#include "profiling/spec.hpp"
#include "profiling/timeseries.hpp"
#include "workload/engine.hpp"
#include "workload/kernels.hpp"

namespace audo::profiling {
namespace {

workload::EngineWorkload engine() {
  workload::EngineOptions opt;
  opt.crank_time_scale = 100;
  auto w = workload::build_engine_workload(opt);
  EXPECT_TRUE(w.is_ok());
  return std::move(w).value();
}

TEST(ProfilingSpec, StandardGroupsCoverTheSection5Parameters) {
  const auto groups = standard_groups(1000);
  ASSERT_EQ(groups.size(), 5u);
  // IPC on a clock basis; event rates on an instruction basis.
  EXPECT_EQ(groups[0].basis, mcds::EventId::kCycles);
  EXPECT_EQ(groups[1].basis, mcds::EventId::kTcRetired);
  EXPECT_EQ(groups[2].basis, mcds::EventId::kTcRetired);
  usize counters = 0;
  for (const auto& g : groups) counters += g.counters.size();
  EXPECT_GE(counters, 15u);  // the "essential parameters" list
  EXPECT_EQ(series_name(groups[0], 0), "ipc/tc.retired");
}

TEST(ProfilingSession, ParallelSeriesFromEngineRun) {
  auto w = engine();
  SessionOptions opts;
  opts.resolution = 500;
  ProfilingSession session(test::small_config(), opts);
  ASSERT_TRUE(session.load(w.program).is_ok());
  workload::configure_engine(session.device().soc(), w.options);
  session.reset(w.tc_entry, w.pcp_entry);
  SessionResult result = session.run(400'000);

  EXPECT_EQ(result.cycles, 400'000u);
  EXPECT_GT(result.ipc, 0.1);
  EXPECT_LT(result.ipc, 3.0);

  // All parallel series exist and are time-aligned.
  const RateSeries* ipc = result.find_series("ipc/tc.retired");
  const RateSeries* icm = result.find_series("cache/tc.icache.miss");
  const RateSeries* flash = result.find_series("access/tc.flash.data_access");
  const RateSeries* irqs = result.find_series("system/tc.irq.entry");
  ASSERT_NE(ipc, nullptr);
  ASSERT_NE(icm, nullptr);
  ASSERT_NE(flash, nullptr);
  ASSERT_NE(irqs, nullptr);
  EXPECT_GT(ipc->points.size(), 100u);
  EXPECT_GT(icm->points.size(), 10u);

  // The aggregated IPC from the series matches the architectural truth.
  EXPECT_NEAR(ipc->mean_rate(), result.ipc, 0.02);
  // The engine sees interrupts and flash data traffic.
  EXPECT_GT(irqs->total_count(), 10u);
  EXPECT_GT(flash->total_count(), 10u);
}

TEST(ProfilingSession, RatesMatchGroundTruthCounters) {
  // Run the lookup kernel; icache/dcache rates reconstructed from the
  // trace must match the cache model's own statistics.
  auto program = workload::build_lookup_stress(2048, 1024);
  ASSERT_TRUE(program.is_ok());
  SessionOptions opts;
  opts.resolution = 200;
  ProfilingSession session(test::small_config(), opts);
  ASSERT_TRUE(session.load(program.value()).is_ok());
  session.reset(program.value().entry());
  SessionResult result = session.run(10'000'000);
  ASSERT_TRUE(session.device().soc().tc().halted());

  const auto& dstats = session.device().soc().dcache().stats();
  const RateSeries* dca = result.find_series("cache/tc.dcache.access");
  const RateSeries* dcm = result.find_series("cache/tc.dcache.miss");
  ASSERT_NE(dca, nullptr);
  ASSERT_NE(dcm, nullptr);
  // Series totals undercount only by the partial last window.
  EXPECT_LE(dca->total_count(), dstats.accesses);
  EXPECT_GT(dca->total_count(), dstats.accesses * 9 / 10);
  EXPECT_LE(dcm->total_count(), dstats.misses);
  EXPECT_GT(dcm->total_count(), dstats.misses * 9 / 10);
}

TEST(ProfilingSession, CascadedCountersActivateOnLowIpc) {
  // Build a program with a fast phase (scratchpad loop) and a slow phase
  // (uncached flash execution); the high-res group must sample only
  // (mostly) during the slow phase.
  auto program = isa::assemble(R"(
    .text 0xC8000000
main:
    movd d0, 800
    mov.ad a2, d0
fast:
    addi d1, d1, 1
    addi d2, d2, 1
    loop a2, fast
    movh d3, hi(slow_code)
    ori  d3, d3, lo(slow_code)
    mov.ad a4, d3
    ji   a4
    .text 0xA0000000
slow_code:
    movd d0, 300
    mov.ad a2, d0
    movh d5, 0xA001
    mov.ad a5, d5
slow:
    lea  a5, [a5+32]     ; stride past the read buffer: array access each time
    ld.w d4, [a5+0]      ; uncached flash data read every iteration
    xor  d1, d1, d4
    loop a2, slow
    halt
)");
  ASSERT_TRUE(program.is_ok()) << program.status().to_string();

  SessionOptions opts;
  opts.standard_rates = false;
  opts.extra_groups = cascaded_ipc_groups(
      /*low=*/200, /*high=*/20, /*threshold %=*/60,
      /*base_index=*/0, /*flag_index=*/0, opts.actions);
  ProfilingSession session(test::small_config(), opts);
  ASSERT_TRUE(session.load(program.value()).is_ok());
  session.reset(program.value().entry());
  SessionResult result = session.run(1'000'000);
  ASSERT_TRUE(session.device().soc().tc().halted());

  const RateSeries* guard = result.find_series("ipc_guard/tc.retired");
  const RateSeries* detail = result.find_series("ipc_detail/tc.retired");
  ASSERT_NE(guard, nullptr);
  ASSERT_NE(detail, nullptr);
  EXPECT_GT(guard->points.size(), 4u);
  ASSERT_GT(detail->points.size(), 0u);
  // The detail group armed only in the low-IPC (late) part of the run.
  const Cycle first_detail = detail->points.front().cycle;
  const Cycle fast_phase_end = result.cycles / 3;
  EXPECT_GT(first_detail, fast_phase_end);
  // And detail samples show genuinely low IPC.
  EXPECT_LT(detail->mean_rate(), 0.6);
}

TEST(ProfilingSession, BandwidthDropsWithCoarserResolution) {
  auto w = engine();
  auto run_with_resolution = [&](u32 resolution) {
    SessionOptions opts;
    opts.resolution = resolution;
    ProfilingSession session(test::small_config(), opts);
    EXPECT_TRUE(session.load(w.program).is_ok());
    workload::configure_engine(session.device().soc(), w.options);
    session.reset(w.tc_entry, w.pcp_entry);
    return session.run(200'000).trace_bytes;
  };
  const u64 fine = run_with_resolution(100);
  const u64 coarse = run_with_resolution(4000);
  EXPECT_GT(fine, coarse * 10);
}

TEST(FunctionProfiler, FindsTheHotFunction) {
  // A program where `hot` burns ~90% of the work.
  auto program = isa::assemble(R"(
    .text 0x80000000
main:
    movd d0, 40
    mov.ad a4, d0
outer:
    call hot
    call cold
    loop a4, outer
    halt
hot:
    movd d1, 60
    mov.ad a2, d1
_hot_loop:
    addi d2, d2, 1
    mul  d3, d2, d2
    loop a2, _hot_loop
    ret
cold:
    addi d4, d4, 1
    ret
)");
  ASSERT_TRUE(program.is_ok()) << program.status().to_string();

  SessionOptions opts;
  opts.standard_rates = false;
  opts.program_trace = true;
  opts.sync_interval_cycles = 1024;
  ProfilingSession session(test::small_config(), opts);
  ASSERT_TRUE(session.load(program.value()).is_ok());
  session.reset(program.value().entry());
  SessionResult result = session.run(10'000'000);
  ASSERT_TRUE(session.device().soc().tc().halted());

  SystemProfiler profiler{isa::SymbolMap(program.value())};
  profiler.consume(result.messages);
  const auto profile = profiler.function_profile();
  ASSERT_GE(profile.size(), 2u);
  EXPECT_EQ(profile[0].name, "hot");
  EXPECT_GT(profile[0].cycles_percent, 60.0);
  EXPECT_EQ(profile[0].entries, 40u);
  // Formatting does not crash and mentions the hot function.
  EXPECT_NE(profiler.format_function_profile().find("hot"),
            std::string::npos);
}

TEST(FunctionProfiler, DataProfileFindsHotTable) {
  auto w = engine();
  SessionOptions opts;
  opts.standard_rates = false;
  opts.program_trace = true;
  opts.data_trace = true;
  ProfilingSession session(test::small_config(), opts);
  ASSERT_TRUE(session.load(w.program).is_ok());
  workload::configure_engine(session.device().soc(), w.options);
  session.reset(w.tc_entry, w.pcp_entry);
  SessionResult result = session.run(300'000);

  SystemProfiler profiler{isa::SymbolMap(w.program)};
  profiler.consume(result.messages);
  const auto data = profiler.data_profile();
  ASSERT_FALSE(data.empty());
  // The ignition table is among the hottest read-only objects — the §5
  // scratchpad-mapping candidate.
  bool found = false;
  for (usize i = 0; i < data.size() && i < 6; ++i) {
    if (data[i].name == "ign_table") {
      found = true;
      EXPECT_GT(data[i].reads, 10u);
      EXPECT_EQ(data[i].writes, 0u);
    }
  }
  EXPECT_TRUE(found) << profiler.format_data_profile();
}

TEST(Timeseries, SummaryAndSparklineFormatting) {
  RateSeries s;
  s.name = "test/series";
  for (int i = 0; i < 100; ++i) {
    s.points.push_back(SeriesPoint{static_cast<Cycle>(i * 10),
                                   static_cast<u32>(i % 7), 10});
  }
  const std::string summary = format_series_summary({s});
  EXPECT_NE(summary.find("test/series"), std::string::npos);
  const std::string line = sparkline(s, 20);
  EXPECT_GE(line.size(), 10u);
}

}  // namespace
}  // namespace audo::profiling
