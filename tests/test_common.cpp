// Unit tests for src/common: bit utilities, ring buffer, bit streams,
// PRNG determinism and the Status/Result types.
#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/bitstream.hpp"
#include "common/prng.hpp"
#include "common/ring_buffer.hpp"
#include "common/status.hpp"

namespace audo {
namespace {

TEST(Bits, ExtractAndInsert) {
  EXPECT_EQ(bits(0xDEADBEEF, 0, 8), 0xEFu);
  EXPECT_EQ(bits(0xDEADBEEF, 8, 8), 0xBEu);
  EXPECT_EQ(bits(0xDEADBEEF, 28, 4), 0xDu);
  EXPECT_EQ(bits(0xFFFFFFFF, 0, 32), 0xFFFFFFFFu);

  u32 w = 0;
  w = insert_bits(w, 24, 8, 0xAB);
  w = insert_bits(w, 0, 16, 0x1234);
  EXPECT_EQ(w, 0xAB001234u);
  // Overwrite a field.
  w = insert_bits(w, 0, 16, 0x5678);
  EXPECT_EQ(w, 0xAB005678u);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0xFFFF, 16), -1);
  EXPECT_EQ(sign_extend(0x8000, 16), -32768);
  EXPECT_EQ(sign_extend(0x7FFF, 16), 32767);
  EXPECT_EQ(sign_extend(0x1, 1), -1);
  EXPECT_EQ(sign_extend(0x0, 1), 0);
}

TEST(Bits, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(32), 5u);
  EXPECT_EQ(align_up(5, 4), 8u);
  EXPECT_EQ(align_up(8, 4), 8u);
  EXPECT_TRUE(is_aligned(64, 32));
  EXPECT_FALSE(is_aligned(48, 32));
}

TEST(RingBuffer, PushPopOrder) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.pop(), 1);
  rb.push(4);
  EXPECT_EQ(rb.pop(), 2);
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_EQ(rb.pop(), 4);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, OverwriteDropsOldest) {
  RingBuffer<int> rb(2);
  EXPECT_FALSE(rb.push_overwrite(1));
  EXPECT_FALSE(rb.push_overwrite(2));
  EXPECT_TRUE(rb.push_overwrite(3));  // drops 1
  EXPECT_EQ(rb.pop(), 2);
  EXPECT_EQ(rb.pop(), 3);
}

TEST(RingBuffer, RandomAccess) {
  RingBuffer<int> rb(4);
  rb.push(10);
  rb.push(20);
  rb.push(30);
  EXPECT_EQ(rb.at(0), 10);
  EXPECT_EQ(rb.at(2), 30);
  rb.pop();
  EXPECT_EQ(rb.at(0), 20);
}

TEST(BitStream, BasicRoundTrip) {
  BitWriter w;
  w.write(0b101, 3);
  w.write(0xFFFF, 16);
  w.write(1, 1);
  BitReader r(w.bytes());
  EXPECT_EQ(r.read(3), 0b101u);
  EXPECT_EQ(r.read(16), 0xFFFFu);
  EXPECT_EQ(r.read(1), 1u);
}

TEST(BitStream, ByteCountIsCeilOfBits) {
  BitWriter w;
  w.write(1, 1);
  EXPECT_EQ(w.byte_count(), 1u);
  w.write(0, 7);
  EXPECT_EQ(w.byte_count(), 1u);
  w.write(0, 1);
  EXPECT_EQ(w.byte_count(), 2u);
}

TEST(BitStream, SmallVarintIsOneNibble) {
  BitWriter w;
  w.write_varint(5);
  EXPECT_EQ(w.bit_count(), 4u);
  BitReader r(w.bytes());
  EXPECT_EQ(r.read_varint(), 5u);
}

class VarintRoundTrip : public ::testing::TestWithParam<u64> {};

TEST_P(VarintRoundTrip, Exact) {
  BitWriter w;
  w.write_varint(GetParam());
  BitReader r(w.bytes());
  EXPECT_EQ(r.read_varint(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Values, VarintRoundTrip,
    ::testing::Values(0ull, 1ull, 7ull, 8ull, 63ull, 64ull, 1000ull,
                      0xFFFFull, 0x12345678ull, 0xFFFFFFFFull,
                      0xFFFFFFFFFFFFFFFFull));

TEST(BitStream, MixedSequenceProperty) {
  // Property: any interleaving of fixed-width fields and varints decodes
  // to the written values.
  Prng prng(99);
  BitWriter w;
  std::vector<std::pair<u64, unsigned>> fields;  // (value, width or 0=varint)
  for (int i = 0; i < 500; ++i) {
    if (prng.chance(0.5)) {
      const unsigned width = 1 + static_cast<unsigned>(prng.next_below(32));
      const u64 value = prng.next_u64() & ((width == 64) ? ~0ull
                                                          : ((1ull << width) - 1));
      w.write(value, width);
      fields.emplace_back(value, width);
    } else {
      const u64 value = prng.next_u64() >> prng.next_below(60);
      w.write_varint(value);
      fields.emplace_back(value, 0);
    }
  }
  BitReader r(w.bytes());
  for (const auto& [value, width] : fields) {
    if (width == 0) {
      EXPECT_EQ(r.read_varint(), value);
    } else {
      EXPECT_EQ(r.read(width), value);
    }
  }
}

TEST(Prng, DeterministicAcrossInstances) {
  Prng a(42);
  Prng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Prng, GoldenValuesStable) {
  // Cycle-count assertions elsewhere depend on these never changing.
  Prng prng(1);
  const u64 first = prng.next_u64();
  Prng prng2(1);
  EXPECT_EQ(prng2.next_u64(), first);
  EXPECT_NE(Prng(2).next_u64(), first);
}

TEST(Prng, RangeBounds) {
  Prng prng(7);
  for (int i = 0; i < 1000; ++i) {
    const i64 v = prng.next_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const u64 b = prng.next_below(17);
    EXPECT_LT(b, 17u);
    const double d = prng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Status, OkAndError) {
  Status ok;
  EXPECT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.to_string(), "OK");
  Status err = error(StatusCode::kNotFound, "thing missing");
  EXPECT_FALSE(err.is_ok());
  EXPECT_EQ(err.code(), StatusCode::kNotFound);
  EXPECT_EQ(err.to_string(), "NOT_FOUND: thing missing");
}

TEST(Result, ValueAndStatus) {
  Result<int> good(42);
  EXPECT_TRUE(good.is_ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_TRUE(good.status().is_ok());

  Result<int> bad(error(StatusCode::kParseError, "nope"));
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
  EXPECT_EQ(bad.value_or(-1), -1);
}

}  // namespace
}  // namespace audo
