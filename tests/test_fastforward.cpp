// Fast-forward bit-identity suite (see DESIGN.md, "Quiescence model &
// fast-forward"): running any workload with SocConfig::fast_forward on
// must be indistinguishable — cycle counts, architectural state, MCDS
// counters and message streams, telemetry metrics, campaign outcomes —
// from stepping every idle cycle. The only permitted difference is the
// sim/ff.* accounting (and host wall-clock).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "helpers.hpp"
#include "host/sim_job.hpp"
#include "optimize/fault_campaign.hpp"
#include "profiling/cpi_stack.hpp"
#include "profiling/export.hpp"
#include "profiling/session.hpp"
#include "telemetry/metrics.hpp"
#include "workload/engine.hpp"
#include "workload/transmission.hpp"

namespace audo {
namespace {

bool is_ff_metric(const telemetry::MetricSample& s) {
  // exec/ coverage counters vary with run chunking and fast-forward mode
  // (they count how cycles were *executed*, not what they did), so they
  // are host-side observability like sim/ff.* and excluded here.
  if (s.component == "exec") return true;
  return s.component == "sim" && s.name.rfind("ff.", 0) == 0;
}

/// Everything we require to be identical between the two modes.
struct Observed {
  u64 steps = 0;
  u64 cycles = 0;
  u64 retired = 0;
  bool halted = false;
  bool idle_deadlock = false;
  std::vector<std::string> metrics;  // "component/name=value", sans sim/ff.*
  // Stall-attribution aggregates: per-function CPI stacks and the
  // master x slave interference matrix must also be bit-identical (the
  // stall.* registry counters above cover the per-core bucket totals).
  std::string cpi_csv;
  std::string interference_csv;
};

template <typename Workload, typename Install>
Observed run_soc(const Workload& w, Install install, bool fast_forward,
                 u64 max_cycles, soc::FastForwardStats* ff_out = nullptr) {
  soc::SocConfig config = test::small_config();
  config.fast_forward = fast_forward;
  soc::Soc soc(config);
  profiling::CpiStackBuilder cpi{isa::SymbolMap(w.program)};
  soc.set_frame_observer(&cpi);
  telemetry::MetricsRegistry registry;
  soc.register_metrics(registry);
  EXPECT_TRUE(install(soc, w).is_ok());
  Observed o;
  o.steps = soc.run(max_cycles);
  o.cycles = soc.cycle();
  o.retired = soc.tc().retired();
  o.halted = soc.tc().halted();
  o.idle_deadlock = soc.idle_deadlock();
  for (const telemetry::MetricSample& s :
       registry.collect(soc.cycle()).samples) {
    if (is_ff_metric(s)) continue;
    o.metrics.push_back(s.component + "/" + s.name + "=" +
                        std::to_string(s.value));
  }
  o.cpi_csv = cpi.to_csv();
  o.interference_csv = profiling::interference_to_csv(soc.sri());
  if (ff_out != nullptr) *ff_out = soc.ff_stats();
  return o;
}

void expect_identical(const Observed& on, const Observed& off) {
  EXPECT_EQ(on.steps, off.steps);
  EXPECT_EQ(on.cycles, off.cycles);
  EXPECT_EQ(on.retired, off.retired);
  EXPECT_EQ(on.halted, off.halted);
  EXPECT_EQ(on.idle_deadlock, off.idle_deadlock);
  EXPECT_EQ(on.metrics, off.metrics);
  EXPECT_EQ(on.cpi_csv, off.cpi_csv);
  EXPECT_EQ(on.interference_csv, off.interference_csv);
}

workload::EngineWorkload idle_engine(u32 halt_after_revs) {
  workload::EngineOptions opt;
  opt.crank_time_scale = 100;
  opt.rpm = 3000;
  opt.idle_background = true;
  opt.halt_after_revs = halt_after_revs;
  auto w = workload::build_engine_workload(opt);
  EXPECT_TRUE(w.is_ok()) << w.status().to_string();
  return std::move(w).value();
}

const auto kInstallEngine = [](soc::Soc& soc,
                               const workload::EngineWorkload& w) {
  return workload::install_engine(soc, w);
};
const auto kInstallTransmission = [](soc::Soc& soc,
                                     const workload::TransmissionWorkload& w) {
  return workload::install_transmission(soc, w);
};

// ---- SoC-level bit identity -----------------------------------------

TEST(FastForward, IdleEngineBitIdentical) {
  const auto w = idle_engine(4);
  soc::FastForwardStats ff;
  const Observed on = run_soc(w, kInstallEngine, true, 5'000'000, &ff);
  const Observed off = run_soc(w, kInstallEngine, false, 5'000'000);
  EXPECT_TRUE(on.halted);
  expect_identical(on, off);
  // The workload is genuinely idle-heavy: most of the run is skipped.
  EXPECT_GT(ff.skipped_cycles, on.cycles / 2);
  EXPECT_GT(ff.wakeups, 0u);
}

TEST(FastForward, BusyEngineBitIdentical) {
  // The stock background loop never parks, so there is nothing to skip —
  // but the run must still be identical (and the skip path must not
  // misfire on short stalls).
  workload::EngineOptions opt;
  opt.crank_time_scale = 100;
  opt.rpm = 3000;
  opt.halt_after_bg = 40;
  auto built = workload::build_engine_workload(opt);
  ASSERT_TRUE(built.is_ok());
  const auto& w = built.value();
  soc::FastForwardStats ff;
  const Observed on = run_soc(w, kInstallEngine, true, 5'000'000, &ff);
  const Observed off = run_soc(w, kInstallEngine, false, 5'000'000);
  EXPECT_TRUE(on.halted);
  expect_identical(on, off);
}

TEST(FastForward, TransmissionBitIdentical) {
  workload::TransmissionOptions opt;
  opt.halt_after_tasks = 6;
  auto built = workload::build_transmission_workload(opt);
  ASSERT_TRUE(built.is_ok()) << built.status().to_string();
  const auto& w = built.value();
  const Observed on = run_soc(w, kInstallTransmission, true, 5'000'000);
  const Observed off = run_soc(w, kInstallTransmission, false, 5'000'000);
  EXPECT_TRUE(on.halted);
  expect_identical(on, off);
}

TEST(FastForward, BudgetTruncationBitIdentical) {
  // A budget boundary that lands inside an idle stretch must stop at
  // exactly the same cycle as stepping there, and be attributed to the
  // budget wake source.
  const auto w = idle_engine(0);  // free-running
  for (const u64 budget : {10'000ull, 33'333ull, 100'000ull}) {
    soc::FastForwardStats ff;
    const Observed on = run_soc(w, kInstallEngine, true, budget, &ff);
    const Observed off = run_soc(w, kInstallEngine, false, budget);
    EXPECT_FALSE(on.halted);
    EXPECT_EQ(on.steps, budget);
    expect_identical(on, off);
  }
}

// ---- MCDS / profiling bit identity ----------------------------------

profiling::SessionResult profile_idle_engine(bool fast_forward,
                                             bool program_trace) {
  workload::EngineOptions opt;
  opt.crank_time_scale = 100;
  opt.rpm = 3000;
  opt.idle_background = true;
  opt.halt_after_revs = 3;
  auto w = workload::build_engine_workload(opt);
  EXPECT_TRUE(w.is_ok());

  soc::SocConfig chip = test::small_config();
  chip.fast_forward = fast_forward;
  profiling::SessionOptions options;
  options.resolution = 500;
  options.program_trace = program_trace;
  options.irq_trace = program_trace;
  profiling::ProfilingSession session(chip, options);
  EXPECT_TRUE(session.load(w.value().program).is_ok());
  workload::configure_engine(session.device().soc(), w.value().options);
  session.reset(w.value().tc_entry, w.value().pcp_entry);
  return session.run(3'000'000);
}

void expect_sessions_identical(const profiling::SessionResult& on,
                               const profiling::SessionResult& off) {
  EXPECT_EQ(on.cycles, off.cycles);
  EXPECT_EQ(on.tc_retired, off.tc_retired);
  EXPECT_EQ(on.trace_bytes, off.trace_bytes);
  EXPECT_EQ(on.trace_messages, off.trace_messages);
  EXPECT_EQ(on.dropped_messages, off.dropped_messages);
  // The decoded message stream — every kind, timestamp, pc, count and
  // rate-sample payload — must match message for message.
  ASSERT_EQ(on.messages.size(), off.messages.size());
  for (usize i = 0; i < on.messages.size(); ++i) {
    EXPECT_EQ(on.messages[i], off.messages[i]) << "message " << i;
  }
}

TEST(FastForward, McdsCountersBitIdentical) {
  const auto on = profile_idle_engine(true, false);
  const auto off = profile_idle_engine(false, false);
  EXPECT_GT(on.trace_messages, 0u);
  expect_sessions_identical(on, off);
}

TEST(FastForward, McdsFlowTraceBitIdentical) {
  const auto on = profile_idle_engine(true, true);
  const auto off = profile_idle_engine(false, true);
  EXPECT_GT(on.trace_messages, 0u);
  expect_sessions_identical(on, off);
}

// ---- fault campaign determinism -------------------------------------

u64 campaign_hash(bool fast_forward, unsigned jobs) {
  workload::EngineOptions opt;
  opt.crank_time_scale = 100;
  opt.rpm = 3000;
  opt.idle_background = true;
  opt.halt_after_revs = 3;
  auto engine = workload::build_engine_workload(opt);
  EXPECT_TRUE(engine.is_ok());

  soc::SocConfig chip = test::small_config();
  chip.fast_forward = fast_forward;

  optimize::WorkloadCase wc;
  wc.name = "engine-idle";
  wc.program = engine.value().program;
  wc.tc_entry = engine.value().tc_entry;
  wc.pcp_entry = engine.value().pcp_entry;
  wc.configure = [options = engine.value().options](soc::Soc& soc) {
    workload::configure_engine(soc, options);
  };
  wc.max_cycles = 400'000;

  optimize::FaultCampaign campaign(chip, std::move(wc));
  campaign.set_jobs(jobs);
  const auto plan = campaign.make_scenarios(7, 8);
  return campaign.run(plan).classification_hash();
}

TEST(FastForward, FaultCampaignHashIdenticalAcrossModesAndJobs) {
  const u64 reference = campaign_hash(false, 1);
  for (const unsigned jobs : {1u, 2u, 8u}) {
    EXPECT_EQ(campaign_hash(true, jobs), reference) << "jobs=" << jobs;
  }
}

// ---- idle-deadlock detection ----------------------------------------

constexpr std::string_view kParkForever = R"(
    .text 0xC8000000
main:
    di
    wfi
    halt
)";

TEST(FastForward, IdleDeadlockDetectedImmediately) {
  // WFI with every interrupt source disabled: no wake can ever arrive.
  // Both modes must report idle_deadlock at the same (early) cycle
  // instead of burning the 200M-cycle default budget.
  u64 cycles[2];
  for (const bool ff : {true, false}) {
    soc::SocConfig config = test::small_config();
    config.fast_forward = ff;
    auto program = isa::assemble(kParkForever);
    ASSERT_TRUE(program.is_ok());
    soc::Soc soc(config);
    ASSERT_TRUE(soc.load(program.value()).is_ok());
    soc.reset(program.value().entry());
    const u64 steps = soc.run(0);  // 0 = the hard default budget
    EXPECT_TRUE(soc.idle_deadlock());
    EXPECT_FALSE(soc.tc().halted());
    EXPECT_LT(steps, 1'000u);  // detected at the park, not at the budget
    cycles[ff ? 0 : 1] = soc.cycle();
  }
  EXPECT_EQ(cycles[0], cycles[1]);
}

TEST(FastForward, SimJobReportsIdleDeadlock) {
  auto program = isa::assemble(kParkForever);
  ASSERT_TRUE(program.is_ok());
  host::SimJob job;
  job.config = test::small_config();
  job.program = &program.value();
  job.tc_entry = program.value().entry();
  const host::SimJobResult result = job.run();
  EXPECT_TRUE(result.loaded);
  EXPECT_FALSE(result.halted);
  EXPECT_TRUE(result.idle_deadlock);
  EXPECT_FALSE(result.budget_exceeded);
  EXPECT_LT(result.cycles, 1'000u);
}

TEST(FastForward, LiveWakeSourceIsNotADeadlock) {
  // The same park with the crank wheel routed and enabled is *not* a
  // deadlock: teeth keep arriving, so the run spends its whole budget.
  const auto w = idle_engine(0);
  const Observed on = run_soc(w, kInstallEngine, true, 50'000);
  EXPECT_FALSE(on.idle_deadlock);
  EXPECT_EQ(on.steps, 50'000u);
}

}  // namespace
}  // namespace audo
