// Tests for methodology features added on top of the base system:
// comparator-qualified counters, per-core data-trace qualifiers, the
// compute-bound engine halt criterion, the LMU-resident CAN ring, map
// interpolation, and uncached/strided diagnostics.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "optimize/options.hpp"
#include "mem/memory_map.hpp"
#include "workload/engine.hpp"
#include "isa/assembler.hpp"
#include "ed/emulation_device.hpp"

namespace audo {
namespace {

TEST(QualifiedCounters, CountOnlyMatchingEvents) {
  // Two counters on the same event (TC irq entry): one unqualified, one
  // qualified to priority 40.
  mcds::McdsConfig cfg;
  cfg.comparators = {mcds::Comparator{
      mcds::CoreSel::kTc, mcds::CompareField::kIrqPrio, 40, 40, -1}};
  mcds::CounterGroupConfig g;
  g.name = "irqs";
  g.basis = mcds::EventId::kCycles;
  g.resolution = 100;
  mcds::RateCounterConfig all;
  all.event = mcds::EventId::kTcIrqEntry;
  mcds::RateCounterConfig only40;
  only40.event = mcds::EventId::kTcIrqEntry;
  only40.qualifier = 0;
  g.counters = {all, only40};
  cfg.counter_groups = {g};

  mcds::Mcds mcds(cfg);
  mcds::VectorSink sink;
  mcds.set_sink(&sink);
  for (Cycle c = 1; c <= 100; ++c) {
    mcds::ObservationFrame f;
    f.cycle = c;
    f.tc.present = true;
    if (c % 10 == 0) {
      f.tc.irq_entry = true;
      f.tc.irq_prio = (c % 20 == 0) ? 40 : 30;
    }
    mcds.observe(f);
  }
  auto decoded = mcds::TraceDecoder::decode(sink.units());
  ASSERT_TRUE(decoded.is_ok());
  ASSERT_FALSE(decoded.value().empty());
  const auto& sample = decoded.value().front();
  EXPECT_EQ(sample.counts[0], 10u);  // all irq entries
  EXPECT_EQ(sample.counts[1], 5u);   // only priority 40
}

TEST(QualifiedCounters, MissingComparatorTableMeansZero) {
  mcds::CounterBank bank;
  mcds::CounterGroupConfig g;
  g.basis = mcds::EventId::kCycles;
  g.resolution = 10;
  mcds::RateCounterConfig c;
  c.event = mcds::EventId::kCycles;
  c.qualifier = 3;  // out of range
  g.counters = {c};
  bank.add_group(g);
  std::vector<bool> hits;  // empty
  for (Cycle cyc = 1; cyc <= 10; ++cyc) {
    mcds::ObservationFrame f;
    f.cycle = cyc;
    bank.step(f, &hits);
  }
  ASSERT_EQ(bank.samples().size(), 1u);
  EXPECT_EQ(bank.samples()[0].counts[0], 0u);
}

TEST(DataQualifier, PerCoreSelection) {
  mcds::McdsConfig cfg;
  cfg.data_trace = true;
  cfg.trace_pcp = true;
  cfg.sync_interval_cycles = 1'000'000;  // no periodic syncs in the way
  cfg.comparators = {
      mcds::Comparator{mcds::CoreSel::kTc, mcds::CompareField::kDataAddr,
                       0x100, 0x1FF, -1},
      mcds::Comparator{mcds::CoreSel::kPcp, mcds::CompareField::kDataAddr,
                       0x200, 0x2FF, -1}};
  cfg.data_qualifier = 0;
  cfg.data_qualifier_pcp = 1;
  mcds::Mcds mcds(cfg);
  mcds::VectorSink sink;
  mcds.set_sink(&sink);

  mcds::ObservationFrame f;
  f.cycle = 1;
  f.tc.present = true;
  f.pcp.present = true;
  f.tc.data_access = true;
  f.tc.data_addr = 0x180;   // TC qualifier matches
  f.tc.data_bytes = 4;
  f.pcp.data_access = true;
  f.pcp.data_addr = 0x180;  // PCP qualifier does NOT match
  f.pcp.data_bytes = 4;
  mcds.observe(f);

  f.cycle = 2;
  f.tc.data_addr = 0x280;   // TC no, PCP yes
  f.pcp.data_addr = 0x280;
  mcds.observe(f);

  auto decoded = mcds::TraceDecoder::decode(sink.units());
  ASSERT_TRUE(decoded.is_ok());
  unsigned tc_msgs = 0, pcp_msgs = 0;
  for (const auto& m : decoded.value()) {
    if (m.kind != mcds::MsgKind::kData) continue;
    if (m.source == mcds::MsgSource::kTcCore) {
      ++tc_msgs;
      EXPECT_EQ(m.addr, 0x180u);
    } else {
      ++pcp_msgs;
      EXPECT_EQ(m.addr, 0x280u);
    }
  }
  EXPECT_EQ(tc_msgs, 1u);
  EXPECT_EQ(pcp_msgs, 1u);
}

TEST(EngineOptionsFeature, HaltAfterBgIsComputeBound) {
  // Unlike halt_after_revs (crank-bound), cycles to N background
  // iterations must respond to CPU-side slowdowns.
  auto run_with_ws = [](unsigned ws) {
    workload::EngineOptions opt;
    opt.crank_time_scale = 100;
    opt.halt_after_bg = 60;
    opt.diag_uncached = true;
    opt.diag_stride_bytes = 36;
    opt.diag_words = 128;
    auto w = workload::build_engine_workload(opt);
    EXPECT_TRUE(w.is_ok());
    auto cfg = test::small_config();
    cfg.pflash.wait_states = ws;
    soc::Soc soc(cfg);
    EXPECT_TRUE(workload::install_engine(soc, w.value()).is_ok());
    soc.run(20'000'000);
    EXPECT_TRUE(soc.tc().halted());
    return soc.cycle();
  };
  const u64 fast = run_with_ws(2);
  const u64 slow = run_with_ws(8);
  EXPECT_GT(slow, fast + fast / 10);
}

TEST(EngineOptionsFeature, CanRingInLmuIsUsed) {
  workload::EngineOptions opt;
  opt.crank_time_scale = 100;
  opt.can_rx_period = 3'000;
  opt.can_ring_in_lmu = true;
  auto w = workload::build_engine_workload(opt);
  ASSERT_TRUE(w.is_ok()) << w.status().to_string();
  soc::Soc soc(test::small_config());
  ASSERT_TRUE(workload::install_engine(soc, w.value()).is_ok());
  soc.run(300'000);
  // The ring was allocated in the LMU and filled by the CAN ISR.
  const Addr ring = w.value().program.symbol_addr("can_ring").value();
  EXPECT_GE(ring, mem::kLmuBase);
  EXPECT_LT(ring, mem::kLmuBase + 0x1000);
  bool nonzero = false;
  for (u32 i = 0; i < 32; ++i) {
    if (soc.lmu().array().read32(ring - mem::kLmuBase + i * 4) != 0) {
      nonzero = true;
    }
  }
  EXPECT_TRUE(nonzero);
  EXPECT_GT(soc.sri().slave_stats(3).writes, 0u);  // LMU slave saw writes
}

TEST(EngineOptionsFeature, InterpolationIncreasesMapTraffic) {
  // 8 map reads per tooth instead of 2: the flash data traffic delta must
  // scale with the tooth count (diagnostics traffic is common-mode).
  auto run_variant = [](bool interpolate) {
    workload::EngineOptions opt;
    opt.crank_time_scale = 100;
    opt.interpolate = interpolate;
    opt.halt_after_bg = 200;  // fixed diagnostic work: common-mode traffic
    auto w = workload::build_engine_workload(opt);
    EXPECT_TRUE(w.is_ok());
    auto cfg = test::small_config();
    cfg.dcache.enabled = false;  // every map read reaches the flash
    soc::Soc soc(cfg);
    EXPECT_TRUE(workload::install_engine(soc, w.value()).is_ok());
    soc.run(20'000'000);
    EXPECT_TRUE(soc.tc().halted());
    const u32 teeth =
        soc.dspr().read(w.value().program.symbol_addr("tooth_count").value(), 4);
    return std::pair<u64, u32>{soc.pflash().stats().data_accesses, teeth};
  };
  const auto [point_reads, point_teeth] = run_variant(false);
  const auto [interp_reads, interp_teeth] = run_variant(true);
  ASSERT_GT(point_teeth, 100u);
  // Similar tooth counts; the read delta ~ 6 extra reads per tooth.
  const u64 delta = interp_reads > point_reads ? interp_reads - point_reads : 0;
  EXPECT_GT(delta, static_cast<u64>(interp_teeth) * 4);
}

TEST(EngineOptionsFeature, UncachedDiagnosticsBypassTheDcache) {
  auto dcache_accesses = [](bool uncached) {
    workload::EngineOptions opt;
    opt.crank_time_scale = 100;
    opt.diag_uncached = uncached;
    opt.diag_words = 128;
    auto w = workload::build_engine_workload(opt);
    EXPECT_TRUE(w.is_ok());
    soc::Soc soc(test::small_config());
    EXPECT_TRUE(workload::install_engine(soc, w.value()).is_ok());
    soc.run(200'000);
    return soc.dcache().stats().accesses;
  };
  EXPECT_LT(dcache_accesses(true), dcache_accesses(false) / 2);
}

TEST(CrankFeature, TimeScaleCompressesToothPeriod) {
  periph::IrqRouter router;
  const unsigned tooth = router.add_source("tooth");
  const unsigned sync = router.add_source("sync");
  router.configure(tooth, 1, periph::IrqTarget::kTc);
  periph::CrankWheel::Config cfg;
  cfg.clock_hz = 1'000'000;
  cfg.initial_rpm = 600;
  periph::CrankWheel crank(cfg, &router, tooth, sync);
  for (Cycle now = 1; now <= 50'000; ++now) crank.step(now);
  const u64 unscaled = router.node(tooth).posted;
  crank.set_time_scale(10);
  for (Cycle now = 50'001; now <= 100'000; ++now) crank.step(now);
  const u64 scaled = router.node(tooth).posted - unscaled;
  EXPECT_GT(scaled, unscaled * 5);
}

TEST(OptionMonotonicity, ApplyingTwiceOrOutOfOrderNeverRegresses) {
  const auto catalogue = optimize::standard_catalogue();
  soc::SocConfig cfg = test::small_config();
  const optimize::ArchOption* ws3 = optimize::find_option(catalogue, "flash_ws_3");
  const optimize::ArchOption* ws4 = optimize::find_option(catalogue, "flash_ws_4");
  ASSERT_NE(ws3, nullptr);
  ASSERT_NE(ws4, nullptr);
  cfg = ws3->apply(cfg);
  EXPECT_EQ(cfg.pflash.wait_states, 3u);
  cfg = ws4->apply(cfg);  // must not regress to 4
  EXPECT_EQ(cfg.pflash.wait_states, 3u);

  const optimize::ArchOption* dc16 = optimize::find_option(catalogue, "dcache_16k");
  const optimize::ArchOption* dc8 = optimize::find_option(catalogue, "dcache_8k");
  ASSERT_NE(dc16, nullptr);
  ASSERT_NE(dc8, nullptr);
  cfg = dc16->apply(cfg);
  cfg = dc8->apply(cfg);  // must not shrink back
  EXPECT_EQ(cfg.dcache.size_bytes, 16u * 1024);
}


TEST(EngineOptionsFeature, ToothIsrLatencyIsMeasured) {
  workload::EngineOptions opt;
  opt.crank_time_scale = 100;
  auto w = workload::build_engine_workload(opt);
  ASSERT_TRUE(w.is_ok());
  soc::Soc soc(test::small_config());
  ASSERT_TRUE(workload::install_engine(soc, w.value()).is_ok());
  soc.run(400'000);
  const auto& prog = w.value().program;
  const u32 lat_max = soc.dspr().read(prog.symbol_addr("lat_max").value(), 4);
  const u32 lat_sum = soc.dspr().read(prog.symbol_addr("lat_sum").value(), 4);
  const u32 teeth =
      soc.dspr().read(prog.symbol_addr("tooth_count").value(), 4);
  ASSERT_GT(teeth, 50u);
  // Entry latency includes irq dispatch + vector jump + register saves +
  // the SFR read itself: plausible range, never zero.
  EXPECT_GT(lat_max, 10u);
  EXPECT_LT(lat_max, 2'000u);
  const double avg = static_cast<double>(lat_sum) / teeth;
  EXPECT_GT(avg, 5.0);
  EXPECT_LE(avg, lat_max);
}

TEST(MliBridge, MonitorSeesEecStatusAndStreamsTrace) {
  // The monitor path: TC software reads EEC state through the MLI SFR
  // window while the MCDS records its own execution.
  auto program = isa::assemble(R"(
    .text 0x80000000
main:
    movha a15, 0xC000
    movha a14, 0xF000
    movd  d0, 200
    mov.ad a2, d0
_work:
    addi  d1, d1, 1
    loop  a2, _work
    ; monitor: read EEC status + EMEM fill + first trace byte
    ld.w  d2, [a14+0x5000]   ; STATUS
    ld.w  d3, [a14+0x5004]   ; EMEM_FILL
    ld.w  d4, [a14+0x5014]   ; POP_BYTE
    halt
)");
  ASSERT_TRUE(program.is_ok()) << program.status().to_string();
  mcds::McdsConfig cfg;
  cfg.program_trace = true;
  ed::EmulationDevice ed(test::small_config(), cfg, ed::EdConfig{});
  ASSERT_TRUE(ed.load(program.value()).is_ok());
  ed.reset(program.value().entry());
  ed.run(100'000);
  ASSERT_TRUE(ed.soc().tc().halted());
  EXPECT_EQ(ed.soc().tc().d(2) & 0x4u, 0x4u);  // trace enabled bit
  EXPECT_GT(ed.soc().tc().d(3), 0u);           // EMEM holds trace bytes
  EXPECT_NE(ed.soc().tc().d(4), 0xFFFFFFFFu);  // a real byte was popped
  EXPECT_EQ(ed.mli().bytes_popped(), 1u);
}

TEST(MliBridge, OverlayAccessAndBreakClear) {
  ed::EmulationDevice ed(test::small_config(), mcds::McdsConfig{},
                         ed::EdConfig{});
  auto& mli = ed.mli();
  mli.write_sfr(0x1C, 5);        // OVERLAY_IDX = word 5
  mli.write_sfr(0x20, 0xFEED);   // OVERLAY_DATA
  EXPECT_EQ(ed.emem().overlay().read32(20), 0xFEEDu);
  EXPECT_EQ(mli.read_sfr(0x20), 0xFEEDu);
  // Break clearing through the monitor window.
  mli.write_sfr(0x18, 1);
  EXPECT_FALSE(ed.mcds().break_requested());
}

}  // namespace
}  // namespace audo
