#include "mcds/mcds.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"

namespace audo::mcds {

void Mcds::register_metrics(telemetry::MetricsRegistry& registry,
                            std::string component) const {
  static constexpr const char* kKindNames[] = {
      "msgs.sync", "msgs.flow", "msgs.tick",       "msgs.data",
      "msgs.rate", "msgs.irq",  "msgs.watchpoint", "msgs.overflow",
  };
  registry.counter(component, kKindNames[0],
                   &kind_counts_[static_cast<unsigned>(MsgKind::kSync)]);
  registry.counter(component, kKindNames[1],
                   &kind_counts_[static_cast<unsigned>(MsgKind::kFlow)]);
  registry.counter(component, kKindNames[2],
                   &kind_counts_[static_cast<unsigned>(MsgKind::kTick)]);
  registry.counter(component, kKindNames[3],
                   &kind_counts_[static_cast<unsigned>(MsgKind::kData)]);
  registry.counter(component, kKindNames[4],
                   &kind_counts_[static_cast<unsigned>(MsgKind::kRate)]);
  registry.counter(component, kKindNames[5],
                   &kind_counts_[static_cast<unsigned>(MsgKind::kIrq)]);
  registry.counter(component, kKindNames[6],
                   &kind_counts_[static_cast<unsigned>(MsgKind::kWatchpoint)]);
  registry.counter(component, kKindNames[7],
                   &kind_counts_[static_cast<unsigned>(MsgKind::kOverflow)]);
  registry.counter(component, "dropped", &dropped_);
  registry.counter(component, "trigger_out_pulses", &trigger_out_pulses_);
  registry.gauge(std::move(component), "encoded_bytes",
                 [this] { return encoder_.bytes_encoded(); });
}

Mcds::Mcds(McdsConfig config) : config_(std::move(config)), fsm_(config_.fsm) {
  for (const CounterGroupConfig& g : config_.counter_groups) {
    counters_.add_group(g);
  }
  trace_enabled_ = config_.trace_enabled_at_start;
}

void Mcds::reset() {
  counters_.reset();
  fsm_.reset();
  encoder_.reset_anchors();
  trace_enabled_ = config_.trace_enabled_at_start;
  trace_frozen_ = false;
  break_requested_ = false;
  next_sync_ = 0;
  overflow_pending_ = false;
  pending_instrs_[0] = pending_instrs_[1] = 0;
  last_data_addr_[0] = last_data_addr_[1] = 0;
  next_pc_hint_[0] = next_pc_hint_[1] = 0;
  anchored_[0] = anchored_[1] = false;
}

void Mcds::emit(TraceMessage msg) {
  if (sink_ == nullptr) return;
  if (overflow_pending_) {
    // Tell the decoder that messages are missing before this point.
    TraceMessage marker;
    marker.kind = MsgKind::kOverflow;
    marker.source = MsgSource::kChip;
    marker.cycle = msg.cycle;
    if (sink_->push(encoder_.encode(marker), msg.cycle)) {
      kind_counts_[static_cast<unsigned>(MsgKind::kOverflow)]++;
      overflow_pending_ = false;
    } else {
      ++dropped_;
      return;  // still no room; drop this message too
    }
  }
  const auto kind_index = static_cast<unsigned>(msg.kind);
  if (sink_->push(encoder_.encode(msg), msg.cycle)) {
    kind_counts_[kind_index]++;
  } else {
    ++dropped_;
    overflow_pending_ = true;
    encoder_.reset_anchors();
    next_sync_ = 0;  // re-anchor as soon as possible
  }
}

void Mcds::emit_sync(MsgSource source, Cycle now) {
  const unsigned c = static_cast<unsigned>(source);
  if (next_pc_hint_[c] == 0) return;  // core has not executed yet
  TraceMessage sync =
      encoder_.make_sync(source, now, next_pc_hint_[c], last_data_addr_[c]);
  sync.instr_count = pending_instrs_[c];
  pending_instrs_[c] = 0;
  anchored_[c] = true;
  emit(sync);
}

void Mcds::flush(Cycle now) {
  if (sink_ == nullptr || !trace_enabled_ || trace_frozen_) return;
  const bool any_core_trace =
      config_.program_trace || config_.cycle_accurate || config_.data_trace;
  if (!any_core_trace) return;
  if (pending_instrs_[0] > 0) emit_sync(MsgSource::kTcCore, now);
  if (config_.trace_pcp && pending_instrs_[1] > 0) {
    emit_sync(MsgSource::kPcpCore, now);
  }
}

u64 Mcds::idle_skip_limit(const ObservationFrame& idle_frame) {
  evaluate_comparators(config_.comparators, idle_frame, comparator_hits_);
  TriggerContext ctx;
  ctx.frame = &idle_frame;
  ctx.comparator_hits = &comparator_hits_;
  ctx.counter_flags = &counters_.flags();
  ctx.state = fsm_.state();

  // Any FSM transition or action equation that fires on an idle frame
  // would fire on every skipped cycle — those cycles must be stepped.
  // (Equations on always-on events like kCycles or kTcStalled land here.)
  for (const Transition& t : config_.fsm.transitions) {
    if (t.from == ctx.state && evaluate(t.guard, ctx)) return 0;
  }
  for (const ActionBinding& binding : config_.actions) {
    if (binding.action == TriggerAction::kNone) continue;
    if (evaluate(binding.condition, ctx)) return 0;
  }

  u64 limit = ~u64{0};
  const bool trace_live = trace_enabled_ && !trace_frozen_ && sink_ != nullptr;
  const bool any_core_trace =
      config_.program_trace || config_.cycle_accurate || config_.data_trace;
  if (trace_live && any_core_trace) {
    // A first-anchor sync is still pending: it emits on the very next
    // observed cycle.
    if (!anchored_[0] && next_pc_hint_[0] != 0) return 0;
    if (config_.trace_pcp && idle_frame.pcp.present && !anchored_[1] &&
        next_pc_hint_[1] != 0) {
      return 0;
    }
    // Stop before the periodic sync so the sync message (and the
    // next_sync_ reschedule) happens in a normally observed cycle.
    const Cycle now = idle_frame.cycle;
    if (next_sync_ <= now + 1) return 0;
    limit = std::min(limit, next_sync_ - now - 1);
  }
  return std::min(limit, counters_.idle_skip_limit(idle_frame));
}

void Mcds::skip_idle(const ObservationFrame& idle_frame, u64 n) {
  // Within an idle_skip_limit() window, idle frames leave the trigger
  // network, anchors, hints and message stream untouched: only the
  // counter bank accumulates.
  evaluate_comparators(config_.comparators, idle_frame, comparator_hits_);
  counters_.skip_idle(idle_frame, &comparator_hits_, n);
}

void Mcds::observe(const ObservationFrame& frame) {
  const Cycle now = frame.cycle;

  // 1. Comparators and counters.
  evaluate_comparators(config_.comparators, frame, comparator_hits_);
  counters_.step(frame, &comparator_hits_);

  // 2. Trigger network: FSM transition, then action equations on the
  //    post-transition state.
  TriggerContext ctx;
  ctx.frame = &frame;
  ctx.comparator_hits = &comparator_hits_;
  ctx.counter_flags = &counters_.flags();
  ctx.state = fsm_.state();
  fsm_.step(ctx);
  ctx.state = fsm_.state();

  std::vector<std::pair<TriggerAction, u32>> fired;
  for (const ActionBinding& binding : config_.actions) {
    if (binding.action == TriggerAction::kNone) continue;
    if (evaluate(binding.condition, ctx)) {
      fired.emplace_back(binding.action, binding.arg);
    }
  }
  for (const auto& [action, arg] : fired) {
    switch (action) {
      case TriggerAction::kTraceOn: trace_enabled_ = true; break;
      case TriggerAction::kTraceOff: trace_enabled_ = false; break;
      case TriggerAction::kArmGroup: counters_.arm(arg, true); break;
      case TriggerAction::kDisarmGroup: counters_.arm(arg, false); break;
      case TriggerAction::kSampleGroup: counters_.force_sample(arg, now); break;
      case TriggerAction::kTriggerOut:
        ++trigger_out_pulses_;
        last_trigger_out_ = now;
        break;
      case TriggerAction::kStopTrace: trace_frozen_ = true; break;
      case TriggerAction::kBreak:
        if (!break_requested_) {
          break_requested_ = true;
          break_cycle_ = now;
        }
        break;
      case TriggerAction::kEmitWatchpoint:
      case TriggerAction::kNone:
        break;  // watchpoints emitted below, in message order
    }
  }

  // 3. Bookkeeping that runs whether or not trace is enabled.
  pending_instrs_[0] += frame.tc.retired;
  pending_instrs_[1] += frame.pcp.retired;
  if (frame.tc.data_access) last_data_addr_[0] = frame.tc.data_addr;
  if (frame.pcp.data_access) last_data_addr_[1] = frame.pcp.data_addr;
  auto update_hint = [&](const CoreObservation& core, unsigned c) {
    if (core.discontinuity) {
      next_pc_hint_[c] = core.discontinuity_target;
    } else if (core.retired > 0) {
      next_pc_hint_[c] = core.retire_pc + 4;
    }
  };
  update_hint(frame.tc, 0);
  update_hint(frame.pcp, 1);

  // 4. Message generation.
  if (!trace_enabled_ || trace_frozen_ || sink_ == nullptr) return;

  const bool any_core_trace =
      config_.program_trace || config_.cycle_accurate || config_.data_trace;
  auto trace_core = [&](const CoreObservation& core, MsgSource source) {
    const unsigned c = static_cast<unsigned>(source);
    if (config_.cycle_accurate && core.retired > 0) {
      TraceMessage tick;
      tick.kind = MsgKind::kTick;
      tick.source = source;
      tick.cycle = now;
      tick.instr_count = core.retired;
      pending_instrs_[c] = 0;
      emit(tick);
    }
    if (config_.program_trace && core.discontinuity) {
      TraceMessage flow;
      flow.kind = MsgKind::kFlow;
      flow.source = source;
      flow.cycle = now;
      flow.pc = core.discontinuity_target;
      flow.instr_count = pending_instrs_[c];
      pending_instrs_[c] = 0;
      emit(flow);
    }
    if (config_.irq_trace && (core.irq_entry || core.irq_exit)) {
      TraceMessage irq;
      irq.kind = MsgKind::kIrq;
      irq.source = source;
      irq.cycle = now;
      irq.irq_entry = core.irq_entry;
      irq.id = core.irq_prio;
      emit(irq);
    }
    if (config_.data_trace && core.data_access) {
      bool qualified = true;
      const auto& qualifier = (source == MsgSource::kPcpCore &&
                               config_.data_qualifier_pcp.has_value())
                                  ? config_.data_qualifier_pcp
                                  : config_.data_qualifier;
      if (qualifier.has_value()) {
        const unsigned q = *qualifier;
        qualified = q < comparator_hits_.size() && comparator_hits_[q];
      }
      if (qualified) {
        TraceMessage data;
        data.kind = MsgKind::kData;
        data.source = source;
        data.cycle = now;
        data.addr = core.data_addr;
        data.value = core.data_value;
        data.write = core.data_write;
        data.bytes = core.data_bytes == 0 ? 4 : core.data_bytes;
        emit(data);
      }
    }
  };
  trace_core(frame.tc, MsgSource::kTcCore);
  if (config_.trace_pcp && frame.pcp.present) {
    trace_core(frame.pcp, MsgSource::kPcpCore);
  }

  // Syncs are emitted after the cycle's flow/tick messages so the
  // instruction counts they carry are never double-counted: anchor each
  // traced core as soon as it starts executing, then periodically.
  if (any_core_trace) {
    if (!anchored_[0] && next_pc_hint_[0] != 0) {
      emit_sync(MsgSource::kTcCore, now);
    }
    if (config_.trace_pcp && frame.pcp.present && !anchored_[1] &&
        next_pc_hint_[1] != 0) {
      emit_sync(MsgSource::kPcpCore, now);
    }
    if (now >= next_sync_) {
      emit_sync(MsgSource::kTcCore, now);
      if (config_.trace_pcp && frame.pcp.present) {
        emit_sync(MsgSource::kPcpCore, now);
      }
      next_sync_ = now + config_.sync_interval_cycles;
    }
  }

  // Watchpoints (in trigger order).
  for (const auto& [action, arg] : fired) {
    if (action == TriggerAction::kEmitWatchpoint) {
      TraceMessage wp;
      wp.kind = MsgKind::kWatchpoint;
      wp.source = MsgSource::kChip;
      wp.cycle = now;
      wp.id = static_cast<u8>(arg);
      emit(wp);
    }
  }

  // Rate samples from the counter bank.
  for (const RateSample& sample : counters_.samples()) {
    TraceMessage rate;
    rate.kind = MsgKind::kRate;
    rate.source = MsgSource::kChip;
    rate.cycle = sample.cycle;
    rate.group = static_cast<u8>(sample.group);
    rate.basis = sample.basis;
    rate.counts = sample.counts;
    emit(rate);
  }
}

}  // namespace audo::mcds
