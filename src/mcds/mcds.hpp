// The MCDS top level: observation blocks + trigger network + counter
// bank + trace qualification + message generation, glued to a trace sink
// (the EMEM on an Emulation Device).
//
// Everything here is strictly observational: observe() takes a const
// frame and can never reach back into the SoC — the structural guarantee
// behind "non-intrusively" in §5, verified by the E10/E1 tests.
#pragma once

#include <array>
#include <optional>

#include "common/types.hpp"
#include "mcds/counters.hpp"
#include "mcds/observation.hpp"
#include "mcds/trace.hpp"
#include "mcds/trigger.hpp"

namespace audo::telemetry {
class MetricsRegistry;
}

namespace audo::mcds {

/// Destination of encoded trace messages (EMEM, or a plain collector in
/// tests). push() returns false when the message had to be dropped.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual bool push(EncodedMessage msg, Cycle now) = 0;
};

/// An unbounded in-memory sink for tests and harnesses.
class VectorSink final : public TraceSink {
 public:
  bool push(EncodedMessage msg, Cycle now) override {
    (void)now;
    units_.push_back(std::move(msg));
    return true;
  }
  const std::vector<EncodedMessage>& units() const { return units_; }
  void clear() { units_.clear(); }

 private:
  std::vector<EncodedMessage> units_;
};

struct McdsConfig {
  // ---- trace qualification ----
  bool program_trace = false;  // flow messages on discontinuities
  bool cycle_accurate = false; // tick message every cycle with retirement
  bool data_trace = false;
  /// Restrict data trace to accesses matching this comparator index.
  std::optional<unsigned> data_qualifier;
  /// Separate qualifier for PCP-side data accesses (comparators bind to
  /// one core); defaults to data_qualifier when unset.
  std::optional<unsigned> data_qualifier_pcp;
  bool irq_trace = false;
  bool trace_pcp = false;      // also trace the PCP core
  bool trace_enabled_at_start = true;
  u32 sync_interval_cycles = 4096;

  // ---- trigger network ----
  std::vector<Comparator> comparators;
  std::vector<ActionBinding> actions;
  StateMachineConfig fsm;

  // ---- counter groups (Enhanced System Profiling) ----
  std::vector<CounterGroupConfig> counter_groups;
};

class Mcds {
 public:
  explicit Mcds(McdsConfig config);

  void set_sink(TraceSink* sink) { sink_ = sink; }

  /// Consume one observation frame (one clock cycle).
  void observe(const ObservationFrame& frame);

  /// How many consecutive repetitions of `idle_frame` (a quiescent SoC
  /// cycle; `idle_frame.cycle` = the last cycle already observed) could be
  /// absorbed without observable effect: no trigger transition or action,
  /// no trace message, no periodic sync, no counter sample. 0 means the
  /// next cycle must be observed normally. Evaluates the comparators on
  /// the idle frame as a side effect (they are recomputed from scratch on
  /// every observe, so this cannot skew later cycles).
  u64 idle_skip_limit(const ObservationFrame& idle_frame);

  /// Bulk-absorb `n` repetitions of `idle_frame` in O(1): counter bases
  /// and event accumulators advance exactly as `n` observe() calls would
  /// have advanced them. `n` must come from idle_skip_limit().
  void skip_idle(const ObservationFrame& idle_frame, u64 n);

  /// Emit final sync messages carrying the outstanding instruction counts
  /// (end-of-measurement flush before a trace download).
  void flush(Cycle now);

  void reset();

  bool trace_enabled() const { return trace_enabled_ && !trace_frozen_; }
  bool trace_frozen() const { return trace_frozen_; }
  u8 fsm_state() const { return fsm_.state(); }

  /// A kBreak action fired (sticky until cleared): the debug-halt request
  /// the Emulation Device honours by pausing the clock for the tool.
  bool break_requested() const { return break_requested_; }
  Cycle break_cycle() const { return break_cycle_; }
  void clear_break() { break_requested_ = false; }

  CounterBank& counters() { return counters_; }
  const CounterBank& counters() const { return counters_; }
  TraceEncoder& encoder() { return encoder_; }
  const McdsConfig& config() const { return config_; }

  // ---- statistics ----
  u64 trigger_out_pulses() const { return trigger_out_pulses_; }
  Cycle last_trigger_out() const { return last_trigger_out_; }
  u64 dropped_messages() const { return dropped_; }
  u64 messages_of(MsgKind kind) const {
    return kind_counts_[static_cast<unsigned>(kind)];
  }

  /// Register encoder/trigger counters under `component` (e.g. "mcds").
  void register_metrics(telemetry::MetricsRegistry& registry,
                        std::string component) const;

  /// Snapshot support: trace scheduling, FSM state, counter bank,
  /// encoder anchors and statistics — a restored MCDS continues the
  /// exact same message stream, including a counter group captured
  /// mid-resolution window. Comparator hits are recomputed per frame.
  void save_state(snapshot::Writer& w) const {
    w.put_bool(trace_enabled_);
    w.put_bool(trace_frozen_);
    w.put_u64(next_sync_);
    w.put_bool(overflow_pending_);
    for (u32 v : pending_instrs_) w.put_u32(v);
    for (Addr a : last_data_addr_) w.put_u32(a);
    for (Addr a : next_pc_hint_) w.put_u32(a);
    for (bool b : anchored_) w.put_bool(b);
    w.put_u64(trigger_out_pulses_);
    w.put_u64(last_trigger_out_);
    w.put_bool(break_requested_);
    w.put_u64(break_cycle_);
    w.put_u64(dropped_);
    for (u64 v : kind_counts_) w.put_u64(v);
    w.put_u8(fsm_.state());
    counters_.save_state(w);
    encoder_.save_state(w);
  }
  void restore_state(snapshot::Reader& r) {
    trace_enabled_ = r.get_bool();
    trace_frozen_ = r.get_bool();
    next_sync_ = r.get_u64();
    overflow_pending_ = r.get_bool();
    for (u32& v : pending_instrs_) v = r.get_u32();
    for (Addr& a : last_data_addr_) a = r.get_u32();
    for (Addr& a : next_pc_hint_) a = r.get_u32();
    for (bool& b : anchored_) b = r.get_bool();
    trigger_out_pulses_ = r.get_u64();
    last_trigger_out_ = r.get_u64();
    break_requested_ = r.get_bool();
    break_cycle_ = r.get_u64();
    dropped_ = r.get_u64();
    for (u64& v : kind_counts_) v = r.get_u64();
    fsm_.set_state(r.get_u8());
    counters_.restore_state(r);
    encoder_.restore_state(r);
  }

 private:
  void emit(TraceMessage msg);
  void emit_sync(MsgSource source, Cycle now);

  McdsConfig config_;
  TraceSink* sink_ = nullptr;

  CounterBank counters_;
  StateMachine fsm_;
  TraceEncoder encoder_;
  std::vector<bool> comparator_hits_;

  bool trace_enabled_ = true;
  bool trace_frozen_ = false;
  Cycle next_sync_ = 0;
  bool overflow_pending_ = false;

  // Per-core instruction counts since the last emitted flow/sync/tick.
  u32 pending_instrs_[2] = {0, 0};
  Addr last_data_addr_[2] = {0, 0};
  // Where each core's execution continues (the sync anchor): the cycle's
  // discontinuity target, else last retired pc + 4. 0 = nothing ran yet.
  Addr next_pc_hint_[2] = {0, 0};
  bool anchored_[2] = {false, false};

  u64 trigger_out_pulses_ = 0;
  Cycle last_trigger_out_ = 0;
  bool break_requested_ = false;
  Cycle break_cycle_ = 0;
  u64 dropped_ = 0;
  std::array<u64, 8> kind_counts_{};
};

}  // namespace audo::mcds
