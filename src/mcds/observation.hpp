// The per-cycle observation frame: everything the MCDS can see.
//
// §3: "Adaptation logic allows reuse of the MCDS trigger block with a
// range of cores" — this frame *is* that adaptation layer. The SoC
// publishes one frame per clock cycle; MCDS observation blocks, trigger
// logic and counters consume it. Observation is strictly read-only:
// nothing in the MCDS can reach back into the SoC, which makes
// non-intrusiveness a structural property (verified by test).
#pragma once

#include <array>

#include "bus/crossbar.hpp"
#include "common/types.hpp"
#include "mem/pflash.hpp"

namespace audo::mcds {

/// Why a core issued zero instructions in a cycle.
enum class StallCause : u8 {
  kNone = 0,      // instructions issued
  kIFetch,        // fetch starved (I-cache miss / flash fetch in flight)
  kLoadUse,       // operand waiting on an outstanding load
  kLsPortBusy,    // load/store port structurally busy
  kExecLatency,   // multi-cycle result (DIV/MUL chain) not ready
  kWfi,           // waiting for interrupt
  kHalted,
};

const char* to_string(StallCause cause);

/// *Why* the stall symptom happened — the result of walking the
/// responsible outstanding transaction through cache → PFlash →
/// crossbar (see DESIGN.md, "Stall attribution & interference matrix").
/// Exactly one root cause is assigned per present-core cycle (kNone when
/// instructions issued), so per-core bucket sums are conservative and
/// complete: they add up to the core's total cycles.
enum class StallRootCause : u8 {
  kNone = 0,           // instructions issued this cycle
  kFrontend,           // local fetch/decode bubble (redirect, PSPR fetch,
                       // irq/trap entry cycle)
  kExec,               // core-internal latency (EX chain, load writeback)
  kFlashBuffer,        // flash access served from a read/prefetch buffer
  kFlashRead,          // flash array line fetch (read-buffer miss)
  kFlashPortConflict,  // code-vs-data port conflict on the flash array
  kBusArbitration,     // waiting for a crossbar grant (lost arbitration)
  kBusSlaveBusy,       // granted: a non-flash slave is serving the access
  kWfi,                // parked waiting for interrupt
  kHalted,
  kCount,
};
inline constexpr unsigned kNumStallRootCauses =
    static_cast<unsigned>(StallRootCause::kCount);

const char* to_string(StallRootCause cause);

/// Full per-cycle stall attribution: the core-side symptom plus the
/// cross-layer root cause, and — when the root is a lost arbitration —
/// which master held the slave the core was waiting for.
struct StallAttribution {
  static constexpr u8 kNoSlave = 0xFF;

  StallCause symptom = StallCause::kNone;
  StallRootCause root = StallRootCause::kNone;
  /// Master occupying the blocking slave (kCount = none recorded).
  bus::MasterId blocking_master = bus::MasterId::kCount;
  /// Crossbar slave index the stalled transaction targets (kNoSlave =
  /// the stall never reached the fabric).
  u8 blocking_slave = kNoSlave;
};

/// One core's activity in one cycle.
struct CoreObservation {
  bool present = false;  // core exists in this SoC configuration
  u8 retired = 0;        // instructions retired this cycle (0..3)
  Addr retire_pc = 0;    // PC of the last instruction retired this cycle
  StallCause stall = StallCause::kNone;
  StallAttribution attr;  // filled by the Soc attribution walk (phase 4)

  // Program-flow discontinuity (taken branch, call, return, irq entry).
  bool discontinuity = false;
  Addr discontinuity_target = 0;

  bool irq_entry = false;
  u8 irq_prio = 0;
  bool irq_exit = false;

  /// The core entered its trap vector this cycle (uncorrectable error,
  /// safety-monitor reaction, ...).
  bool trap_entry = false;
  u8 trap_class = 0;

  /// The DEBUG instruction retired this cycle — a software-placed MCDS
  /// trigger strobe (used to mark regions of interest from code).
  bool debug_marker = false;

  // Data-side access retired this cycle (at most one per core per cycle).
  bool data_access = false;
  bool data_write = false;
  Addr data_addr = 0;
  u32 data_value = 0;
  u8 data_bytes = 0;

  // Event strobes tapped directly from the core-side hardware (§3: "tap
  // directly performance relevant event sources").
  bool icache_access = false;
  bool icache_hit = false;
  bool icache_miss = false;
  bool dcache_access = false;
  bool dcache_hit = false;
  bool dcache_miss = false;
  bool dspr_access = false;   // local data scratchpad access
  bool flash_data_access = false;  // data-side access routed to PFlash
  bool sram_data_access = false;   // data-side access routed to LMU SRAM
  bool periph_data_access = false; // data-side access routed to SFR space

  /// Per-cycle reset. Equivalent to assigning a fresh CoreObservation,
  /// written out so Soc::step() can clear just the two core records
  /// instead of value-initializing the whole frame every cycle.
  void reset() { *this = CoreObservation{}; }
};

/// DMA controller activity in one cycle.
struct DmaObservation {
  bool transfer = false;   // a DMA bus transaction completed this cycle
  u8 channel = 0;
};

/// Service requests raised by peripherals this cycle (IrqRouter::post on
/// a non-pending node). The execution-DAG builder uses these to measure
/// dispatch latency (raise cycle -> handler entry); the MCDS sees them as
/// ordinary event strobes. Raises only happen in stepped cycles — a
/// quiescent SoC's peripherals post nothing until their next activity
/// cycle, which bounds every fast-forward window — so idle skips never
/// lose one.
struct IrqObservation {
  struct Raise {
    u8 priority = 0;
    u8 target = 0;  // periph::IrqTarget numeric value (0=TC, 1=PCP, 2=DMA)
  };
  static constexpr unsigned kMaxRaises = 4;

  u8 count = 0;  // raises recorded (excess beyond kMaxRaises is dropped)
  std::array<Raise, kMaxRaises> raised{};

  void reset() { count = 0; }
};

/// Safety-monitor alarms raised this cycle (fault/safety_monitor.hpp
/// fills this; all zero when the monitor is disabled). Alarm strobes are
/// trigger/counter inputs like any other event source.
struct SafetyObservation {
  u8 ecc_corrected = 0;      // corrected single-bit errors this cycle
  u8 ecc_uncorrectable = 0;  // uncorrectable (double-bit) errors
  bool bus_error = false;
  bool wdt_timeout = false;
  bool cpu_trap = false;
  bool alarm_irq = false;    // monitor raised the NMI-style alarm IRQ
  bool halt_request = false; // monitor halted the core this cycle

  void reset() { *this = SafetyObservation{}; }
};

/// Everything observable in one clock cycle.
struct ObservationFrame {
  Cycle cycle = 0;
  CoreObservation tc;
  CoreObservation pcp;
  bus::FabricObservation sri;
  mem::PFlash::Strobes flash;
  DmaObservation dma;
  SafetyObservation safety;
  IrqObservation irq;
};

}  // namespace audo::mcds
