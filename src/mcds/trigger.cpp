#include "mcds/trigger.hpp"

namespace audo::mcds {
namespace {

bool comparator_matches(const Comparator& cmp, const ObservationFrame& frame) {
  const CoreObservation& core =
      cmp.core == CoreSel::kTc ? frame.tc : frame.pcp;
  u32 value = 0;
  switch (cmp.field) {
    case CompareField::kRetirePc:
      if (core.retired == 0) return false;
      value = core.retire_pc;
      break;
    case CompareField::kDataAddr:
    case CompareField::kDataValue:
      if (!core.data_access) return false;
      if (cmp.write_filter == 0 && core.data_write) return false;
      if (cmp.write_filter == 1 && !core.data_write) return false;
      value = cmp.field == CompareField::kDataAddr ? core.data_addr
                                                   : core.data_value;
      break;
    case CompareField::kDiscontinuityTarget:
      if (!core.discontinuity) return false;
      value = core.discontinuity_target;
      break;
    case CompareField::kIrqPrio:
      if (!core.irq_entry) return false;
      value = core.irq_prio;
      break;
  }
  return value >= cmp.lo && value <= cmp.hi;
}

bool term_value(const Term& term, const TriggerContext& ctx) {
  bool value = false;
  switch (term.kind) {
    case Term::Kind::kTrue:
      value = true;
      break;
    case Term::Kind::kComparator:
      value = ctx.comparator_hits != nullptr &&
              term.index < ctx.comparator_hits->size() &&
              (*ctx.comparator_hits)[term.index];
      break;
    case Term::Kind::kEvent:
      value = ctx.frame != nullptr && event_value(*ctx.frame, term.event) > 0;
      break;
    case Term::Kind::kCounterFlag:
      value = ctx.counter_flags != nullptr &&
              term.index < ctx.counter_flags->size() &&
              (*ctx.counter_flags)[term.index];
      break;
    case Term::Kind::kState:
      value = ctx.state == term.index;
      break;
  }
  return term.negate ? !value : value;
}

}  // namespace

void evaluate_comparators(const std::vector<Comparator>& comparators,
                          const ObservationFrame& frame,
                          std::vector<bool>& hits) {
  hits.resize(comparators.size());
  for (usize i = 0; i < comparators.size(); ++i) {
    hits[i] = comparator_matches(comparators[i], frame);
  }
}

bool evaluate(const Equation& equation, const TriggerContext& context) {
  for (const auto& product : equation.products) {
    bool all = true;
    for (const Term& term : product) {
      if (!term_value(term, context)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

void StateMachine::step(const TriggerContext& context) {
  for (const Transition& t : config_.transitions) {
    if (t.from != state_) continue;
    if (evaluate(t.guard, context)) {
      state_ = t.to;
      return;
    }
  }
}

}  // namespace audo::mcds
