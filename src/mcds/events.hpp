// The MCDS event-source mux: named performance events selectable as
// counter inputs and trigger terms (§3: cache hits/misses, bus
// contentions, etc.; §5: the "essential parameters for CPU system
// performance").
//
// An event's per-cycle value is a small count: 0/1 for strobes, 0..3 for
// retired instructions. Counters accumulate these values.
#pragma once

#include <string_view>

#include "mcds/observation.hpp"

namespace audo::mcds {

enum class EventId : u8 {
  kNone = 0,
  kCycles,          // constant 1 — the clock-based resolution basis
  // TriCore-like core.
  kTcRetired,       // 0..3 — basis for instruction-relative rates & IPC
  kTcStalled,       // 1 when the core retired nothing and is not halted
  kTcStallIFetch,
  kTcStallLoadUse,
  kTcICacheAccess,
  kTcICacheHit,
  kTcICacheMiss,
  kTcDCacheAccess,
  kTcDCacheHit,
  kTcDCacheMiss,
  kTcDataAccess,        // any data-side load/store
  kTcDataWrite,
  kTcDsprAccess,        // data scratchpad
  kTcFlashDataAccess,   // data-side access routed to the program flash
  kTcSramDataAccess,    // data-side access routed to the LMU
  kTcPeriphDataAccess,
  kTcIrqEntry,
  kTcIrqExit,
  kTcDiscontinuity,     // taken branches + irq entries
  // Stall root causes (cross-layer attribution walk; one strobe per
  // StallRootCause bucket of the TC's per-cycle StallAttribution).
  kTcStallRootFrontend,
  kTcStallRootExec,
  kTcStallRootFlashBuffer,
  kTcStallRootFlashRead,
  kTcStallRootFlashConflict,
  kTcStallRootBusArb,
  kTcStallRootBusBusy,
  kTcStallRootWfi,
  // PCP.
  kPcpRetired,
  kPcpStalled,
  kPcpIrqEntry,
  kPcpDataAccess,
  // Flash macro (chip-level: all masters).
  kFlashCodeAccess,
  kFlashCodeBufferHit,
  kFlashDataPortAccess,
  kFlashDataBufferHit,
  kFlashPortConflict,
  // Bus fabric.
  kBusGrant,
  kBusContention,
  kBusWaitingMasters,   // 0..N
  // DMA.
  kDmaTransfer,
  // Safety monitor (SMU-like alarm aggregation; see src/fault/).
  kSafetyEccCorrected,      // 0..N corrected ECC reads this cycle
  kSafetyEccUncorrectable,  // 0..N uncorrectable ECC reads this cycle
  kSafetyBusError,
  kSafetyWdtTimeout,
  kSafetyTrap,
  kSafetyAlarmIrq,          // monitor raised its alarm interrupt
  // Execution-DAG activation boundaries (src/profiling/dag.hpp). These
  // are derived strobes over the same frame the DAG builder consumes, so
  // MCDS triggers/counters can key on activation structure without the
  // builder attached.
  kDagIrqRaise,     // 0..N service requests raised this cycle
  kDagIsrEnter,     // cores entering an ISR/trap handler (activation open)
  kDagIsrExit,      // cores whose RFE retired (activation close)
  kDagIdle,         // cores parked in WFI/halt this cycle
  kEventCount,
};

inline constexpr unsigned kNumEvents = static_cast<unsigned>(EventId::kEventCount);

/// The value of event `id` in frame `frame` (0 when the event did not
/// occur this cycle).
u32 event_value(const ObservationFrame& frame, EventId id);

std::string_view event_name(EventId id);

}  // namespace audo::mcds
