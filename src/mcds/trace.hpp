// MCDS trace messages: compressed, bit-packed, timestamped.
//
// The bandwidth argument of §5 ("instead of sampling by the external tool
// at least two long counters ... only a single trace message with the
// counted events is stored") only holds if message sizes are real, so
// messages are encoded to the bit and the byte counts reported to the
// EMEM/DAP models are exact.
//
// Compression scheme: values are 4-bit-group varints; addresses and
// timestamps are zigzag deltas against the most recent *sync anchor*
// (not chained message-to-message), so dropping messages — ring-mode
// overwrite, stream overflow — never corrupts later ones. Sync messages
// re-anchor a core and are emitted periodically and after overflows.
#pragma once

#include <vector>

#include "common/bitstream.hpp"
#include "common/snapshot.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace audo::mcds {

enum class MsgKind : u8 {
  kSync = 0,    // absolute cycle + pc + data-address anchor
  kFlow,        // program-flow discontinuity: instr count + target
  kTick,        // cycle-accurate mode: per-cycle retired count
  kData,        // data access: addr, value, write, size
  kRate,        // counter-group sample
  kWatchpoint,  // trigger-generated marker
  kIrq,         // interrupt entry/exit
  kOverflow,    // sink dropped messages before this point
};

/// Source of a message. Core-generated kinds use kTcCore/kPcpCore; rates,
/// watchpoints and overflow markers are chip-level.
enum class MsgSource : u8 { kTcCore = 0, kPcpCore = 1, kChip = 2 };

/// Decoded message (also the encoder's input).
struct TraceMessage {
  MsgKind kind = MsgKind::kSync;
  MsgSource source = MsgSource::kChip;
  Cycle cycle = 0;

  // kSync / kFlow: program counter info.
  Addr pc = 0;           // sync: anchor pc; flow: discontinuity target
  u32 instr_count = 0;   // instructions retired since the previous
                         // flow/sync/tick message of this core
  // kData.
  Addr addr = 0;
  u32 value = 0;
  bool write = false;
  u8 bytes = 4;
  // kRate.
  u8 group = 0;
  u32 basis = 0;
  std::vector<u32> counts;
  // kWatchpoint / kIrq.
  u8 id = 0;
  bool irq_entry = true;

  bool operator==(const TraceMessage&) const = default;
};

/// One encoded message: a self-framed byte unit (bit-packed internally,
/// padded to a byte boundary — the framing overhead real streams pay).
struct EncodedMessage {
  std::vector<u8> bytes;

  usize size() const { return bytes.size(); }
};

class TraceEncoder {
 public:
  /// Encode one message, updating the anchor state. The caller must
  /// encode messages in cycle order.
  EncodedMessage encode(const TraceMessage& msg);

  /// Make a sync message for `source` that re-anchors the stream
  /// (encoder inserts these; exposed for the MCDS scheduling logic).
  TraceMessage make_sync(MsgSource source, Cycle cycle, Addr pc,
                         Addr data_anchor) const;

  /// Forget all anchors (after overflow); the next messages encode
  /// absolute values until a sync re-anchors.
  void reset_anchors();

  u64 messages_encoded() const { return messages_; }
  u64 bytes_encoded() const { return bytes_; }
  u64 bits_encoded() const { return bits_; }

  /// Snapshot support: anchors and encoding counters, so a restored
  /// encoder continues the exact same delta-encoded byte stream.
  void save_state(snapshot::Writer& w) const {
    for (const Anchor& a : anchors_) {
      w.put_bool(a.valid);
      w.put_u64(a.cycle);
      w.put_u32(a.pc);
      w.put_u32(a.data_addr);
    }
    w.put_u64(messages_);
    w.put_u64(bytes_);
    w.put_u64(bits_);
  }
  void restore_state(snapshot::Reader& r) {
    for (Anchor& a : anchors_) {
      a.valid = r.get_bool();
      a.cycle = r.get_u64();
      a.pc = r.get_u32();
      a.data_addr = r.get_u32();
    }
    messages_ = r.get_u64();
    bytes_ = r.get_u64();
    bits_ = r.get_u64();
  }

 private:
  struct Anchor {
    bool valid = false;
    Cycle cycle = 0;
    Addr pc = 0;
    Addr data_addr = 0;
  };

  Anchor anchors_[3];  // per MsgSource; kChip uses the cycle anchor only
  u64 messages_ = 0;
  u64 bytes_ = 0;
  u64 bits_ = 0;
};

class TraceDecoder {
 public:
  /// Decode a sequence of encoded units. Units before the first kSync
  /// for a core are decoded with best-effort absolute values (exact if
  /// the encoder had no anchor either, i.e. after reset_anchors()).
  static Result<std::vector<TraceMessage>> decode(
      const std::vector<EncodedMessage>& units);
};

}  // namespace audo::mcds
