// MCDS counter bank: the §5 rate-measurement hardware.
//
// "For each CPU one MCDS counter measures for example the instructions
// executed, while another counter is used for the resolution basis.
// Every x clock cycles, the number of executed instructions is saved as a
// trace message ... It is also possible to connect multiple counter
// structures with different resolutions."
//
// A counter *group* shares one resolution basis (executed instructions or
// clock cycles) and samples all its event counters into a single compact
// rate message every `resolution` basis ticks. Groups can be armed and
// disarmed by trigger actions — the cascaded multi-resolution measurement
// of §5. Counters may carry thresholds whose crossing flags feed back
// into the trigger logic.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/snapshot.hpp"
#include "common/types.hpp"
#include "mcds/events.hpp"

namespace audo::mcds {

struct Threshold {
  enum class Dir : u8 { kBelow, kAboveOrEqual };
  Dir dir = Dir::kBelow;
  u32 value = 0;
};

struct RateCounterConfig {
  EventId event = EventId::kNone;
  /// Evaluated against the sampled count at every group sample; the
  /// resulting flag is a trigger term until the next sample.
  std::optional<Threshold> threshold;
  /// Count only in cycles where this comparator (index into the MCDS
  /// comparator table) matches — e.g. "interrupt entries with priority
  /// 40" instead of all interrupt entries.
  std::optional<unsigned> qualifier;
};

struct CounterGroupConfig {
  std::string name;
  EventId basis = EventId::kTcRetired;  // denominator: instructions or cycles
  u32 resolution = 100;                 // basis ticks per sample
  bool armed_at_start = true;
  std::vector<RateCounterConfig> counters;  // up to 8
};

/// One emitted sample (becomes a kRate trace message).
struct RateSample {
  Cycle cycle = 0;
  unsigned group = 0;
  u32 basis = 0;  // the group's resolution (basis ticks covered)
  std::vector<u32> counts;
};

class CounterBank {
 public:
  /// Returns the group index.
  unsigned add_group(CounterGroupConfig config);

  /// Flag slot of counter `c` in group `g` (only counters with a
  /// threshold own a slot; others return ~0u).
  unsigned flag_index(unsigned group, unsigned counter) const;

  void arm(unsigned group, bool armed);
  bool armed(unsigned group) const { return groups_.at(group).armed; }

  /// Force an immediate sample regardless of the basis position
  /// (kSampleGroup trigger action). No-op on an empty accumulation.
  void force_sample(unsigned group, Cycle now);

  /// Accumulate one cycle; emits zero or more samples into samples().
  /// `comparator_hits` feeds counter qualifiers (may be null when no
  /// counter uses one).
  void step(const ObservationFrame& frame,
            const std::vector<bool>* comparator_hits = nullptr);

  /// Samples emitted during the last step()/force_sample(); cleared at
  /// the beginning of each step.
  const std::vector<RateSample>& samples() const { return samples_; }

  /// How many consecutive repetitions of `idle_frame` could be absorbed
  /// without any armed group reaching its resolution (i.e. without a
  /// sample or threshold-flag update). 0 means the next cycle must be
  /// stepped; ~0 means counters impose no bound.
  u64 idle_skip_limit(const ObservationFrame& idle_frame) const;

  /// Bulk-accumulate `n` repetitions of `idle_frame` — exactly what `n`
  /// step() calls would have accumulated, provided `n` is within
  /// idle_skip_limit() so no sample boundary is crossed.
  void skip_idle(const ObservationFrame& idle_frame,
                 const std::vector<bool>* comparator_hits, u64 n);

  /// Current threshold flags (index via flag_index).
  const std::vector<bool>& flags() const { return flags_; }

  unsigned group_count() const { return static_cast<unsigned>(groups_.size()); }
  const CounterGroupConfig& group_config(unsigned g) const {
    return groups_.at(g).config;
  }

  void reset();

  /// Snapshot support: arming, mid-window accumulators and threshold
  /// flags — a group captured mid-resolution resumes at the exact basis
  /// position. Per-step samples are transient and cleared.
  void save_state(snapshot::Writer& w) const {
    w.put_u32(static_cast<u32>(groups_.size()));
    for (const Group& g : groups_) {
      w.put_bool(g.armed);
      w.put_u32(g.basis_acc);
      w.put_u32(static_cast<u32>(g.accs.size()));
      for (u32 acc : g.accs) w.put_u32(acc);
    }
    w.put_u32(static_cast<u32>(flags_.size()));
    for (bool f : flags_) w.put_bool(f);
  }
  void restore_state(snapshot::Reader& r) {
    if (r.get_u32() != groups_.size() && r.ok()) {
      r.fail("counter group count mismatch");
      return;
    }
    for (Group& g : groups_) {
      g.armed = r.get_bool();
      g.basis_acc = r.get_u32();
      if (r.get_u32() != g.accs.size() && r.ok()) {
        r.fail("counter accumulator count mismatch");
        return;
      }
      for (u32& acc : g.accs) acc = r.get_u32();
    }
    if (r.get_u32() != flags_.size() && r.ok()) {
      r.fail("counter flag count mismatch");
      return;
    }
    for (usize i = 0; i < flags_.size(); ++i) flags_[i] = r.get_bool();
    samples_.clear();
  }

 private:
  struct Group {
    CounterGroupConfig config;
    bool armed = true;
    u32 basis_acc = 0;
    std::vector<u32> accs;
    std::vector<unsigned> flag_slots;  // per counter; ~0u = no threshold
  };

  void emit_sample(Group& group, unsigned index, Cycle now);

  std::vector<Group> groups_;
  std::vector<bool> flags_;
  std::vector<RateSample> samples_;
};

}  // namespace audo::mcds
