#include "mcds/counters.hpp"

#include <algorithm>
#include <cassert>

namespace audo::mcds {

unsigned CounterBank::add_group(CounterGroupConfig config) {
  assert(config.resolution > 0);
  assert(config.counters.size() <= 8);
  Group group;
  group.armed = config.armed_at_start;
  group.accs.assign(config.counters.size(), 0);
  for (const RateCounterConfig& c : config.counters) {
    if (c.threshold.has_value()) {
      group.flag_slots.push_back(static_cast<unsigned>(flags_.size()));
      flags_.push_back(false);
    } else {
      group.flag_slots.push_back(~0u);
    }
  }
  group.config = std::move(config);
  groups_.push_back(std::move(group));
  return static_cast<unsigned>(groups_.size() - 1);
}

unsigned CounterBank::flag_index(unsigned group, unsigned counter) const {
  return groups_.at(group).flag_slots.at(counter);
}

void CounterBank::arm(unsigned group, bool armed) {
  Group& g = groups_.at(group);
  if (g.armed == armed) return;
  g.armed = armed;
  if (armed) {
    // A freshly armed group starts a clean measurement window.
    g.basis_acc = 0;
    std::fill(g.accs.begin(), g.accs.end(), 0u);
  }
}

void CounterBank::emit_sample(Group& group, unsigned index, Cycle now) {
  RateSample sample;
  sample.cycle = now;
  sample.group = index;
  sample.basis = group.config.resolution;
  sample.counts = group.accs;
  // Update threshold flags from this sample.
  for (usize c = 0; c < group.accs.size(); ++c) {
    const auto& threshold = group.config.counters[c].threshold;
    if (!threshold.has_value()) continue;
    const bool flag = threshold->dir == Threshold::Dir::kBelow
                          ? group.accs[c] < threshold->value
                          : group.accs[c] >= threshold->value;
    flags_[group.flag_slots[c]] = flag;
  }
  std::fill(group.accs.begin(), group.accs.end(), 0u);
  samples_.push_back(std::move(sample));
}

void CounterBank::force_sample(unsigned group, Cycle now) {
  Group& g = groups_.at(group);
  if (g.basis_acc == 0) return;
  RateSample sample;
  sample.cycle = now;
  sample.group = group;
  sample.basis = g.basis_acc;  // partial window: report actual basis
  sample.counts = g.accs;
  std::fill(g.accs.begin(), g.accs.end(), 0u);
  g.basis_acc = 0;
  samples_.push_back(std::move(sample));
}

void CounterBank::step(const ObservationFrame& frame,
                       const std::vector<bool>* comparator_hits) {
  samples_.clear();
  for (usize i = 0; i < groups_.size(); ++i) {
    Group& g = groups_[i];
    if (!g.armed) continue;
    g.basis_acc += event_value(frame, g.config.basis);
    for (usize c = 0; c < g.accs.size(); ++c) {
      const RateCounterConfig& counter = g.config.counters[c];
      if (counter.qualifier.has_value()) {
        const unsigned q = *counter.qualifier;
        if (comparator_hits == nullptr || q >= comparator_hits->size() ||
            !(*comparator_hits)[q]) {
          continue;
        }
      }
      g.accs[c] += event_value(frame, counter.event);
    }
    // A multi-issue basis (up to 3 instructions/cycle) can step past the
    // resolution; carry the remainder so long-run rates stay exact.
    while (g.basis_acc >= g.config.resolution) {
      g.basis_acc -= g.config.resolution;
      emit_sample(g, static_cast<unsigned>(i), frame.cycle);
    }
  }
}

u64 CounterBank::idle_skip_limit(const ObservationFrame& idle_frame) const {
  u64 limit = ~u64{0};
  for (const Group& g : groups_) {
    if (!g.armed) continue;
    const u32 v = event_value(idle_frame, g.config.basis);
    if (v == 0) continue;  // basis does not advance on idle cycles
    // Stop before basis_acc reaches the resolution: the sample (and any
    // threshold-flag update) must happen in a normally stepped cycle.
    const u64 room = g.config.resolution > g.basis_acc
                         ? (g.config.resolution - 1 - g.basis_acc) / v
                         : 0;
    limit = std::min(limit, room);
  }
  return limit;
}

void CounterBank::skip_idle(const ObservationFrame& idle_frame,
                            const std::vector<bool>* comparator_hits, u64 n) {
  // Stepped idle cycles would have cleared any samples left over from the
  // preceding cycle.
  samples_.clear();
  for (Group& g : groups_) {
    if (!g.armed) continue;
    // u32 wrap-around matches n repeated single-cycle additions.
    g.basis_acc += static_cast<u32>(n * event_value(idle_frame, g.config.basis));
    for (usize c = 0; c < g.accs.size(); ++c) {
      const RateCounterConfig& counter = g.config.counters[c];
      if (counter.qualifier.has_value()) {
        const unsigned q = *counter.qualifier;
        if (comparator_hits == nullptr || q >= comparator_hits->size() ||
            !(*comparator_hits)[q]) {
          continue;
        }
      }
      g.accs[c] += static_cast<u32>(n * event_value(idle_frame, counter.event));
    }
  }
}

void CounterBank::reset() {
  for (Group& g : groups_) {
    g.armed = g.config.armed_at_start;
    g.basis_acc = 0;
    std::fill(g.accs.begin(), g.accs.end(), 0u);
  }
  std::fill(flags_.begin(), flags_.end(), false);
  samples_.clear();
}

}  // namespace audo::mcds
