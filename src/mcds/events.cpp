#include "mcds/events.hpp"

namespace audo::mcds {

const char* to_string(StallCause cause) {
  switch (cause) {
    case StallCause::kNone: return "none";
    case StallCause::kIFetch: return "ifetch";
    case StallCause::kLoadUse: return "load-use";
    case StallCause::kLsPortBusy: return "ls-port-busy";
    case StallCause::kExecLatency: return "exec-latency";
    case StallCause::kWfi: return "wfi";
    case StallCause::kHalted: return "halted";
  }
  return "?";
}

const char* to_string(StallRootCause cause) {
  switch (cause) {
    case StallRootCause::kNone: return "issue";
    case StallRootCause::kFrontend: return "frontend";
    case StallRootCause::kExec: return "exec";
    case StallRootCause::kFlashBuffer: return "flash-buffer";
    case StallRootCause::kFlashRead: return "flash-read";
    case StallRootCause::kFlashPortConflict: return "flash-conflict";
    case StallRootCause::kBusArbitration: return "bus-arb";
    case StallRootCause::kBusSlaveBusy: return "bus-busy";
    case StallRootCause::kWfi: return "wfi";
    case StallRootCause::kHalted: return "halted";
    case StallRootCause::kCount: break;
  }
  return "?";
}

u32 event_value(const ObservationFrame& f, EventId id) {
  const CoreObservation& tc = f.tc;
  const CoreObservation& pcp = f.pcp;
  const auto tc_root = [&](StallRootCause root) -> u32 {
    return (tc.present && tc.attr.root == root) ? 1 : 0;
  };
  switch (id) {
    case EventId::kNone: return 0;
    case EventId::kCycles: return 1;
    case EventId::kTcRetired: return tc.retired;
    case EventId::kTcStalled:
      return (tc.present && tc.retired == 0 &&
              tc.stall != StallCause::kHalted) ? 1 : 0;
    case EventId::kTcStallIFetch: return tc.stall == StallCause::kIFetch ? 1 : 0;
    case EventId::kTcStallLoadUse: return tc.stall == StallCause::kLoadUse ? 1 : 0;
    case EventId::kTcICacheAccess: return tc.icache_access ? 1 : 0;
    case EventId::kTcICacheHit: return tc.icache_hit ? 1 : 0;
    case EventId::kTcICacheMiss: return tc.icache_miss ? 1 : 0;
    case EventId::kTcDCacheAccess: return tc.dcache_access ? 1 : 0;
    case EventId::kTcDCacheHit: return tc.dcache_hit ? 1 : 0;
    case EventId::kTcDCacheMiss: return tc.dcache_miss ? 1 : 0;
    case EventId::kTcDataAccess: return tc.data_access ? 1 : 0;
    case EventId::kTcDataWrite: return (tc.data_access && tc.data_write) ? 1 : 0;
    case EventId::kTcDsprAccess: return tc.dspr_access ? 1 : 0;
    case EventId::kTcFlashDataAccess: return tc.flash_data_access ? 1 : 0;
    case EventId::kTcSramDataAccess: return tc.sram_data_access ? 1 : 0;
    case EventId::kTcPeriphDataAccess: return tc.periph_data_access ? 1 : 0;
    case EventId::kTcIrqEntry: return tc.irq_entry ? 1 : 0;
    case EventId::kTcIrqExit: return tc.irq_exit ? 1 : 0;
    case EventId::kTcDiscontinuity: return tc.discontinuity ? 1 : 0;
    case EventId::kTcStallRootFrontend:
      return tc_root(StallRootCause::kFrontend);
    case EventId::kTcStallRootExec: return tc_root(StallRootCause::kExec);
    case EventId::kTcStallRootFlashBuffer:
      return tc_root(StallRootCause::kFlashBuffer);
    case EventId::kTcStallRootFlashRead:
      return tc_root(StallRootCause::kFlashRead);
    case EventId::kTcStallRootFlashConflict:
      return tc_root(StallRootCause::kFlashPortConflict);
    case EventId::kTcStallRootBusArb:
      return tc_root(StallRootCause::kBusArbitration);
    case EventId::kTcStallRootBusBusy:
      return tc_root(StallRootCause::kBusSlaveBusy);
    case EventId::kTcStallRootWfi: return tc_root(StallRootCause::kWfi);
    case EventId::kPcpRetired: return pcp.retired;
    case EventId::kPcpStalled:
      return (pcp.present && pcp.retired == 0 &&
              pcp.stall != StallCause::kHalted &&
              pcp.stall != StallCause::kWfi) ? 1 : 0;
    case EventId::kPcpIrqEntry: return pcp.irq_entry ? 1 : 0;
    case EventId::kPcpDataAccess: return pcp.data_access ? 1 : 0;
    case EventId::kFlashCodeAccess: return f.flash.code_access ? 1 : 0;
    case EventId::kFlashCodeBufferHit: return f.flash.code_buffer_hit ? 1 : 0;
    case EventId::kFlashDataPortAccess: return f.flash.data_access ? 1 : 0;
    case EventId::kFlashDataBufferHit: return f.flash.data_buffer_hit ? 1 : 0;
    case EventId::kFlashPortConflict: return f.flash.array_conflict ? 1 : 0;
    case EventId::kBusGrant: return f.sri.any_grant ? 1 : 0;
    case EventId::kBusContention: return f.sri.contention ? 1 : 0;
    case EventId::kBusWaitingMasters: return f.sri.waiting_masters;
    case EventId::kDmaTransfer: return f.dma.transfer ? 1 : 0;
    case EventId::kSafetyEccCorrected: return f.safety.ecc_corrected;
    case EventId::kSafetyEccUncorrectable: return f.safety.ecc_uncorrectable;
    case EventId::kSafetyBusError: return f.safety.bus_error ? 1 : 0;
    case EventId::kSafetyWdtTimeout: return f.safety.wdt_timeout ? 1 : 0;
    case EventId::kSafetyTrap: return f.safety.cpu_trap ? 1 : 0;
    case EventId::kSafetyAlarmIrq: return f.safety.alarm_irq ? 1 : 0;
    case EventId::kDagIrqRaise: return f.irq.count;
    case EventId::kDagIsrEnter:
      return ((tc.irq_entry || tc.trap_entry) ? 1u : 0u) +
             ((pcp.irq_entry || pcp.trap_entry) ? 1u : 0u);
    case EventId::kDagIsrExit:
      return (tc.irq_exit ? 1u : 0u) + (pcp.irq_exit ? 1u : 0u);
    case EventId::kDagIdle: {
      const auto parked = [](const CoreObservation& c) -> u32 {
        return (c.present && (c.stall == StallCause::kWfi ||
                              c.stall == StallCause::kHalted)) ? 1 : 0;
      };
      return parked(tc) + parked(pcp);
    }
    case EventId::kEventCount: break;
  }
  return 0;
}

std::string_view event_name(EventId id) {
  switch (id) {
    case EventId::kNone: return "none";
    case EventId::kCycles: return "cycles";
    case EventId::kTcRetired: return "tc.retired";
    case EventId::kTcStalled: return "tc.stalled";
    case EventId::kTcStallIFetch: return "tc.stall.ifetch";
    case EventId::kTcStallLoadUse: return "tc.stall.load_use";
    case EventId::kTcICacheAccess: return "tc.icache.access";
    case EventId::kTcICacheHit: return "tc.icache.hit";
    case EventId::kTcICacheMiss: return "tc.icache.miss";
    case EventId::kTcDCacheAccess: return "tc.dcache.access";
    case EventId::kTcDCacheHit: return "tc.dcache.hit";
    case EventId::kTcDCacheMiss: return "tc.dcache.miss";
    case EventId::kTcDataAccess: return "tc.data.access";
    case EventId::kTcDataWrite: return "tc.data.write";
    case EventId::kTcDsprAccess: return "tc.dspr.access";
    case EventId::kTcFlashDataAccess: return "tc.flash.data_access";
    case EventId::kTcSramDataAccess: return "tc.sram.data_access";
    case EventId::kTcPeriphDataAccess: return "tc.periph.data_access";
    case EventId::kTcIrqEntry: return "tc.irq.entry";
    case EventId::kTcIrqExit: return "tc.irq.exit";
    case EventId::kTcDiscontinuity: return "tc.discontinuity";
    case EventId::kTcStallRootFrontend: return "tc.stall.root.frontend";
    case EventId::kTcStallRootExec: return "tc.stall.root.exec";
    case EventId::kTcStallRootFlashBuffer: return "tc.stall.root.flash_buffer";
    case EventId::kTcStallRootFlashRead: return "tc.stall.root.flash_read";
    case EventId::kTcStallRootFlashConflict:
      return "tc.stall.root.flash_conflict";
    case EventId::kTcStallRootBusArb: return "tc.stall.root.bus_arb";
    case EventId::kTcStallRootBusBusy: return "tc.stall.root.bus_busy";
    case EventId::kTcStallRootWfi: return "tc.stall.root.wfi";
    case EventId::kPcpRetired: return "pcp.retired";
    case EventId::kPcpStalled: return "pcp.stalled";
    case EventId::kPcpIrqEntry: return "pcp.irq.entry";
    case EventId::kPcpDataAccess: return "pcp.data.access";
    case EventId::kFlashCodeAccess: return "flash.code.access";
    case EventId::kFlashCodeBufferHit: return "flash.code.buffer_hit";
    case EventId::kFlashDataPortAccess: return "flash.data.access";
    case EventId::kFlashDataBufferHit: return "flash.data.buffer_hit";
    case EventId::kFlashPortConflict: return "flash.port.conflict";
    case EventId::kBusGrant: return "bus.grant";
    case EventId::kBusContention: return "bus.contention";
    case EventId::kBusWaitingMasters: return "bus.waiting_masters";
    case EventId::kDmaTransfer: return "dma.transfer";
    case EventId::kSafetyEccCorrected: return "safety.ecc.corrected";
    case EventId::kSafetyEccUncorrectable: return "safety.ecc.uncorrectable";
    case EventId::kSafetyBusError: return "safety.bus_error";
    case EventId::kSafetyWdtTimeout: return "safety.wdt_timeout";
    case EventId::kSafetyTrap: return "safety.trap";
    case EventId::kSafetyAlarmIrq: return "safety.alarm_irq";
    case EventId::kDagIrqRaise: return "dag.irq_raise";
    case EventId::kDagIsrEnter: return "dag.isr_enter";
    case EventId::kDagIsrExit: return "dag.isr_exit";
    case EventId::kDagIdle: return "dag.idle";
    case EventId::kEventCount: break;
  }
  return "?";
}

}  // namespace audo::mcds
