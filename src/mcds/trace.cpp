#include "mcds/trace.hpp"

#include <cassert>

namespace audo::mcds {
namespace {

constexpr unsigned kKindBits = 3;
constexpr unsigned kSourceBits = 2;

constexpr u32 zigzag(i32 v) {
  return (static_cast<u32>(v) << 1) ^ static_cast<u32>(v >> 31);
}
constexpr i32 unzigzag(u32 v) {
  return static_cast<i32>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace

TraceMessage TraceEncoder::make_sync(MsgSource source, Cycle cycle, Addr pc,
                                     Addr data_anchor) const {
  TraceMessage msg;
  msg.kind = MsgKind::kSync;
  msg.source = source;
  msg.cycle = cycle;
  msg.pc = pc;
  msg.addr = data_anchor;
  return msg;
}

void TraceEncoder::reset_anchors() {
  for (Anchor& a : anchors_) a = Anchor{};
}

EncodedMessage TraceEncoder::encode(const TraceMessage& msg) {
  BitWriter w;
  w.write(static_cast<u64>(msg.kind), kKindBits);
  w.write(static_cast<u64>(msg.source), kSourceBits);

  Anchor& core_anchor = anchors_[static_cast<unsigned>(msg.source)];
  Anchor& time_anchor = anchors_[static_cast<unsigned>(MsgSource::kChip)];

  auto write_timestamp = [&] {
    if (time_anchor.valid && msg.cycle >= time_anchor.cycle) {
      w.write(0, 1);  // delta form
      w.write_varint(msg.cycle - time_anchor.cycle);
    } else {
      w.write(1, 1);  // absolute form
      w.write_varint(msg.cycle);
    }
  };

  switch (msg.kind) {
    case MsgKind::kSync:
      w.write_varint(msg.cycle);
      w.write_varint(msg.pc);
      w.write_varint(msg.addr);
      w.write_varint(msg.instr_count);
      core_anchor = Anchor{true, msg.cycle, msg.pc, msg.addr};
      time_anchor.valid = true;
      time_anchor.cycle = msg.cycle;
      break;
    case MsgKind::kFlow:
      write_timestamp();
      w.write_varint(msg.instr_count);
      if (core_anchor.valid) {
        w.write(0, 1);
        const i32 delta_words =
            static_cast<i32>(msg.pc - core_anchor.pc) / 4;
        w.write_varint(zigzag(delta_words));
      } else {
        w.write(1, 1);
        w.write_varint(msg.pc);
      }
      break;
    case MsgKind::kTick:
      write_timestamp();
      w.write(msg.instr_count & 0x3, 2);
      break;
    case MsgKind::kData: {
      write_timestamp();
      w.write(msg.write ? 1 : 0, 1);
      const unsigned size_code = msg.bytes == 4 ? 2 : msg.bytes == 2 ? 1 : 0;
      w.write(size_code, 2);
      if (core_anchor.valid) {
        w.write(0, 1);
        w.write_varint(
            zigzag(static_cast<i32>(msg.addr - core_anchor.data_addr)));
      } else {
        w.write(1, 1);
        w.write_varint(msg.addr);
      }
      w.write_varint(msg.value);
      break;
    }
    case MsgKind::kRate:
      write_timestamp();
      w.write(msg.group & 0x7, 3);
      w.write(msg.counts.size() & 0xF, 4);
      w.write_varint(msg.basis);
      for (u32 c : msg.counts) w.write_varint(c);
      break;
    case MsgKind::kWatchpoint:
      write_timestamp();
      w.write(msg.id, 8);
      break;
    case MsgKind::kIrq:
      write_timestamp();
      w.write(msg.irq_entry ? 1 : 0, 1);
      w.write(msg.id, 8);
      break;
    case MsgKind::kOverflow:
      write_timestamp();
      break;
  }

  ++messages_;
  bits_ += w.bit_count();
  bytes_ += w.byte_count();
  return EncodedMessage{w.bytes()};
}

Result<std::vector<TraceMessage>> TraceDecoder::decode(
    const std::vector<EncodedMessage>& units) {
  struct Anchor {
    bool valid = false;
    Cycle cycle = 0;
    Addr pc = 0;
    Addr data_addr = 0;
  };
  Anchor anchors[3];
  Anchor& time_anchor = anchors[static_cast<unsigned>(MsgSource::kChip)];

  std::vector<TraceMessage> out;
  out.reserve(units.size());

  for (const EncodedMessage& unit : units) {
    BitReader r(unit.bytes);
    if (r.remaining_less_than(kKindBits + kSourceBits)) {
      return error(StatusCode::kDecodeError, "truncated trace unit");
    }
    TraceMessage msg;
    const u64 kind_raw = r.read(kKindBits);
    if (kind_raw > static_cast<u64>(MsgKind::kOverflow)) {
      return error(StatusCode::kDecodeError, "bad message kind");
    }
    msg.kind = static_cast<MsgKind>(kind_raw);
    const u64 source_raw = r.read(kSourceBits);
    if (source_raw > static_cast<u64>(MsgSource::kChip)) {
      return error(StatusCode::kDecodeError, "bad message source");
    }
    msg.source = static_cast<MsgSource>(source_raw);
    Anchor& core_anchor = anchors[static_cast<unsigned>(msg.source)];

    auto read_timestamp = [&]() -> Cycle {
      const bool absolute = r.read(1) != 0;
      const u64 v = r.read_varint();
      return absolute ? v : time_anchor.cycle + v;
    };

    switch (msg.kind) {
      case MsgKind::kSync:
        msg.cycle = r.read_varint();
        msg.pc = static_cast<Addr>(r.read_varint());
        msg.addr = static_cast<Addr>(r.read_varint());
        msg.instr_count = static_cast<u32>(r.read_varint());
        core_anchor = Anchor{true, msg.cycle, msg.pc, msg.addr};
        time_anchor.valid = true;
        time_anchor.cycle = msg.cycle;
        break;
      case MsgKind::kFlow: {
        msg.cycle = read_timestamp();
        msg.instr_count = static_cast<u32>(r.read_varint());
        const bool absolute = r.read(1) != 0;
        const u32 raw = static_cast<u32>(r.read_varint());
        msg.pc = absolute
                     ? raw
                     : core_anchor.pc + static_cast<Addr>(unzigzag(raw) * 4);
        break;
      }
      case MsgKind::kTick:
        msg.cycle = read_timestamp();
        msg.instr_count = static_cast<u32>(r.read(2));
        break;
      case MsgKind::kData: {
        msg.cycle = read_timestamp();
        msg.write = r.read(1) != 0;
        const unsigned size_code = static_cast<unsigned>(r.read(2));
        msg.bytes = size_code == 2 ? 4 : size_code == 1 ? 2 : 1;
        const bool absolute = r.read(1) != 0;
        const u32 raw = static_cast<u32>(r.read_varint());
        msg.addr = absolute
                       ? raw
                       : core_anchor.data_addr + static_cast<Addr>(unzigzag(raw));
        msg.value = static_cast<u32>(r.read_varint());
        break;
      }
      case MsgKind::kRate: {
        msg.cycle = read_timestamp();
        msg.group = static_cast<u8>(r.read(3));
        const unsigned n = static_cast<unsigned>(r.read(4));
        msg.basis = static_cast<u32>(r.read_varint());
        msg.counts.resize(n);
        for (unsigned i = 0; i < n; ++i) {
          msg.counts[i] = static_cast<u32>(r.read_varint());
        }
        break;
      }
      case MsgKind::kWatchpoint:
        msg.cycle = read_timestamp();
        msg.id = static_cast<u8>(r.read(8));
        break;
      case MsgKind::kIrq:
        msg.cycle = read_timestamp();
        msg.irq_entry = r.read(1) != 0;
        msg.id = static_cast<u8>(r.read(8));
        break;
      case MsgKind::kOverflow:
        msg.cycle = read_timestamp();
        break;
    }
    // A unit shorter than its own encoding (corrupted EMEM dump, partial
    // DAP download) zero-fills the missing fields and latches the
    // reader's overrun flag — surface it rather than emit garbage.
    if (r.overrun()) {
      return error(StatusCode::kDecodeError, "truncated trace unit");
    }
    out.push_back(std::move(msg));
  }
  return out;
}

}  // namespace audo::mcds
