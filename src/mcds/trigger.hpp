// MCDS trigger logic: comparators, Boolean equations (sum of products),
// and a trigger finite-state machine.
//
// §3: "MCDS allows to define very complex conditions using Boolean
// expressions, counters and state machines. It is for instance possible
// to trigger on events not happening in a defined time window."
//
// Structure per cycle:
//   observation frame -> comparators -> terms --+
//   event strobes     --------------------------+-> equations -> actions
//   counter threshold flags --------------------+
//   state machine state ------------------------+
// The state machine itself transitions on (comparator/event/flag) guards.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "mcds/events.hpp"
#include "mcds/observation.hpp"

namespace audo::mcds {

enum class CoreSel : u8 { kTc, kPcp };

enum class CompareField : u8 {
  kRetirePc,
  kDataAddr,
  kDataValue,
  kDiscontinuityTarget,
  kIrqPrio,
};

/// Range comparator on an observation field; matches when the field is
/// valid this cycle and lo <= value <= hi.
struct Comparator {
  CoreSel core = CoreSel::kTc;
  CompareField field = CompareField::kRetirePc;
  u32 lo = 0;
  u32 hi = 0;
  /// For kDataAddr/kDataValue: restrict to writes (1), reads (0), any (-1).
  int write_filter = -1;
};

/// One literal of a product term.
struct Term {
  enum class Kind : u8 {
    kTrue,
    kComparator,   // index into the comparator table
    kEvent,        // event strobe (value > 0)
    kCounterFlag,  // index into the counter-bank threshold flags
    kState,        // state machine currently in state `index`
  };
  Kind kind = Kind::kTrue;
  unsigned index = 0;
  EventId event = EventId::kNone;
  bool negate = false;
};

/// Sum of products: OR over products, AND within each product.
struct Equation {
  std::vector<std::vector<Term>> products;

  bool empty() const { return products.empty(); }

  /// Convenience builders.
  static Equation of(Term t) { return Equation{{{t}}}; }
  static Equation event(EventId id, bool negate = false) {
    return of(Term{Term::Kind::kEvent, 0, id, negate});
  }
  static Equation comparator(unsigned index, bool negate = false) {
    return of(Term{Term::Kind::kComparator, index, EventId::kNone, negate});
  }
  static Equation counter_flag(unsigned index, bool negate = false) {
    return of(Term{Term::Kind::kCounterFlag, index, EventId::kNone, negate});
  }
  static Equation state(unsigned index, bool negate = false) {
    return of(Term{Term::Kind::kState, index, EventId::kNone, negate});
  }
  static Equation always() { return of(Term{}); }
};

/// What an equation firing does.
enum class TriggerAction : u8 {
  kNone,
  kTraceOn,         // enable program/data trace qualification
  kTraceOff,
  kEmitWatchpoint,  // emit a watchpoint message (arg = id)
  kArmGroup,        // arm counter group `arg` (cascaded measurement)
  kDisarmGroup,
  kSampleGroup,     // force an immediate sample of counter group `arg`
  kTriggerOut,      // pulse the external trigger-out line
  kStopTrace,       // freeze the trace sink (post-trigger capture)
  kBreak,           // request a debug halt of the device (OCDS break)
};

struct ActionBinding {
  Equation condition;
  TriggerAction action = TriggerAction::kNone;
  u32 arg = 0;
};

/// Trigger FSM transition. Guards must not contain kState terms referring
/// to the machine itself being updated this cycle; they are evaluated on
/// the pre-transition state.
struct Transition {
  u8 from = 0;
  u8 to = 0;
  Equation guard;
};

struct StateMachineConfig {
  u8 initial = 0;
  std::vector<Transition> transitions;
};

/// Inputs to equation evaluation for one cycle.
struct TriggerContext {
  const ObservationFrame* frame = nullptr;
  const std::vector<bool>* comparator_hits = nullptr;
  const std::vector<bool>* counter_flags = nullptr;
  u8 state = 0;
};

/// Evaluate all comparators against a frame.
void evaluate_comparators(const std::vector<Comparator>& comparators,
                          const ObservationFrame& frame,
                          std::vector<bool>& hits);

bool evaluate(const Equation& equation, const TriggerContext& context);

class StateMachine {
 public:
  explicit StateMachine(StateMachineConfig config)
      : config_(std::move(config)), state_(config_.initial) {}
  StateMachine() : StateMachine(StateMachineConfig{}) {}

  /// Take the first matching transition from the current state.
  void step(const TriggerContext& context);

  u8 state() const { return state_; }
  void reset() { state_ = config_.initial; }
  /// Snapshot restore: place the machine in a previously captured state.
  void set_state(u8 state) { state_ = state; }

 private:
  StateMachineConfig config_;
  u8 state_;
};

}  // namespace audo::mcds
