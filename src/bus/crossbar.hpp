// The SRI-like multi-master crossbar.
//
// Address decoding, per-slave arbitration (fixed priority or round-robin),
// per-cycle contention observation, and cumulative statistics. The Back
// Bone Bus of the EEC reuses the same class with a different region map.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "bus/port.hpp"
#include "common/snapshot.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace audo::telemetry {
class MetricsRegistry;
}

namespace audo::bus {

enum class ArbitrationPolicy : u8 { kFixedPriority, kRoundRobin };

/// Restricts a region to instruction-fetch or data transactions. The
/// program flash maps the same addresses twice: fetches to its code port,
/// data reads to its data port.
enum class PortFilter : u8 { kAny, kFetchOnly, kDataOnly };

/// An address window routed to one slave. Windows may only overlap when
/// their port filters are disjoint (fetch vs data).
struct Region {
  Addr base = 0;
  u32 size = 0;
  unsigned slave = 0;  // index into the crossbar's slave table
  PortFilter filter = PortFilter::kAny;

  bool matches(Addr addr, bool fetch) const {
    if (filter == PortFilter::kFetchOnly && !fetch) return false;
    if (filter == PortFilter::kDataOnly && fetch) return false;
    return addr >= base && addr - base < size;
  }
};

/// A bus transaction that completed this cycle, with its full life cycle
/// (issue → grant → completion) — the host-telemetry timeline span
/// source. Purely observational: the fabric records these as a
/// by-product of completion, masters never read them.
struct CompletedTransaction {
  MasterId master = MasterId::kCount;
  u8 slave = 0;
  Addr addr = 0;
  bool write = false;
  bool fetch = false;
  Cycle issued_at = 0;   // request posted to the fabric
  Cycle granted_at = 0;  // arbiter grant (wait time = granted - issued)
};

/// What the fabric did this cycle — the MCDS bus observation input.
struct FabricObservation {
  bool any_grant = false;
  MasterId granted_master = MasterId::kCount;
  unsigned granted_slave = 0;
  Addr granted_addr = 0;
  bool granted_write = false;
  /// >1 master wanted the same slave this cycle, or a request sat waiting
  /// behind a busy slave — the §3 "bus contention" event source.
  bool contention = false;
  unsigned waiting_masters = 0;

  /// A transaction completed with an (injected) error response this
  /// cycle — the SafetyMonitor's bus-error alarm source.
  bool error_response = false;
  MasterId error_master = MasterId::kCount;

  /// Transactions that completed this cycle (at most one per master).
  std::array<CompletedTransaction, kNumMasters> completed{};
  unsigned completed_count = 0;

  void clear() { *this = FabricObservation{}; }
};

struct SlaveStats {
  u64 grants = 0;
  u64 reads = 0;
  u64 writes = 0;
  u64 wait_cycles = 0;     // master-cycles spent waiting for grant
  u64 busy_cycles = 0;     // cycles the slave was serving a transaction
  u64 contention_cycles = 0;
  u64 error_responses = 0; // injected error completions (fault campaigns)
};

class Crossbar {
 public:
  explicit Crossbar(ArbitrationPolicy policy = ArbitrationPolicy::kFixedPriority)
      : policy_(policy) {
    blocked_by_.fill(MasterId::kCount);
    blocked_slave_.fill(0xFF);
  }

  /// Register a slave; returns its index for region mapping.
  unsigned add_slave(BusSlave* slave);

  /// Map [base, base+size) to a registered slave.
  Status map_region(Addr base, u32 size, unsigned slave,
                    PortFilter filter = PortFilter::kAny);

  /// Set the arbitration priority order (first = highest). Only used with
  /// kFixedPriority. Defaults to MasterId enumeration order.
  void set_priority_order(std::vector<MasterId> order);

  void set_policy(ArbitrationPolicy policy) { policy_ = policy; }
  ArbitrationPolicy policy() const { return policy_; }

  /// Issue a request on a master's port. The port must be idle.
  /// Returns false (and leaves the port idle) if no region matches.
  bool issue(MasterPort& port, const BusRequest& req, Cycle now);

  /// Advance one cycle: progress active transactions, complete finished
  /// ones, then arbitrate and grant new ones.
  void step(Cycle now);

  /// True when nothing is in flight anywhere on the fabric: no master
  /// waiting or granted, no slave serving a transaction. A step() in this
  /// state only clears the (already empty) observation.
  bool idle() const;

  const FabricObservation& observation() const { return observation_; }
  const SlaveStats& slave_stats(unsigned slave) const {
    return stats_.at(slave);
  }
  unsigned slave_count() const { return static_cast<unsigned>(slaves_.size()); }
  std::string_view slave_name(unsigned slave) const {
    return slaves_.at(slave)->name();
  }

  /// Decode an address; returns slave index or error.
  Result<unsigned> decode(Addr addr, bool fetch = false) const;

  /// Fault injection: the next `count` completions on `slave` return an
  /// error response — the transfer is suppressed (reads return 0, writes
  /// are dropped) and the master port's error flag is set.
  void inject_slave_errors(unsigned slave, u64 count);
  /// Error responses still armed on `slave`.
  u64 pending_slave_errors(unsigned slave) const {
    return slave_state_.at(slave).error_arm;
  }

  /// Register per-slave statistics under `component` (e.g. "sri"), one
  /// metric per slave counter ("<slave>.grants", ...). Call only after
  /// all slaves are added: the registry keeps pointers into the stats
  /// table, which must not grow afterwards.
  void register_metrics(telemetry::MetricsRegistry& registry,
                        std::string_view component) const;

  // ---- interference matrix (stall attribution, DESIGN.md) -----------
  //
  // Cycles master `waiter` spent blocked on `slave` while `holder`
  // occupied it. A master-cycle counts as blocked when its request is
  // still kWaiting after arbitration — the grant cycle itself is not
  // blocked (the port turns kActive). The holder is the slave's active
  // master, or this cycle's grant winner when the slave was free but
  // arbitration was lost.

  /// Accumulated blocked cycles for one (waiter, holder, slave) triple.
  u64 interference(MasterId waiter, MasterId holder, unsigned slave) const {
    return interference_[interference_index(static_cast<unsigned>(waiter),
                                            static_cast<unsigned>(holder),
                                            slave)];
  }

  /// Who blocked `master` in the step() that just ran (kCount = master
  /// was not blocked this cycle). Input to the SoC attribution walk.
  MasterId blocked_by(MasterId master) const {
    return blocked_by_[static_cast<unsigned>(master)];
  }
  /// Slave index `master` was blocked on this cycle (0xFF = none).
  u8 blocked_slave(MasterId master) const {
    return blocked_slave_[static_cast<unsigned>(master)];
  }

  /// Snapshot support. Only valid while idle(): transient wiring
  /// (pending_ MasterPort*, active_port) is empty/null then, so the
  /// durable state is statistics, arbitration pointers and armed
  /// injection errors. Per-cycle observation fields are cleared.
  void save_state(snapshot::Writer& w) const {
    w.put_u32(static_cast<u32>(slaves_.size()));
    for (const SlaveState& s : slave_state_) {
      w.put_u32(static_cast<u32>(s.rr_next));
      w.put_u64(s.error_arm);
    }
    for (const SlaveStats& s : stats_) {
      w.put_u64(s.grants);
      w.put_u64(s.reads);
      w.put_u64(s.writes);
      w.put_u64(s.wait_cycles);
      w.put_u64(s.busy_cycles);
      w.put_u64(s.contention_cycles);
      w.put_u64(s.error_responses);
    }
    w.put_u32(static_cast<u32>(interference_.size()));
    for (u64 v : interference_) w.put_u64(v);
  }
  void restore_state(snapshot::Reader& r) {
    if (r.get_u32() != slaves_.size() && r.ok()) {
      r.fail("crossbar slave count mismatch");
      return;
    }
    for (SlaveState& s : slave_state_) {
      s.rr_next = r.get_u32();
      s.error_arm = r.get_u64();
      s.busy = false;
      s.active_port = nullptr;
    }
    for (SlaveStats& s : stats_) {
      s.grants = r.get_u64();
      s.reads = r.get_u64();
      s.writes = r.get_u64();
      s.wait_cycles = r.get_u64();
      s.busy_cycles = r.get_u64();
      s.contention_cycles = r.get_u64();
      s.error_responses = r.get_u64();
    }
    if (r.get_u32() != interference_.size() && r.ok()) {
      r.fail("crossbar interference size mismatch");
      return;
    }
    for (u64& v : interference_) v = r.get_u64();
    pending_.fill(nullptr);
    blocked_by_.fill(MasterId::kCount);
    blocked_slave_.fill(0xFF);
    observation_.clear();
  }

 private:
  usize interference_index(unsigned waiter, unsigned holder,
                           unsigned slave) const {
    return (static_cast<usize>(slave) * kNumMasters + waiter) * kNumMasters +
           holder;
  }

  struct SlaveState {
    bool busy = false;
    MasterPort* active_port = nullptr;
    unsigned rr_next = 0;  // round-robin pointer over master ids
    u64 error_arm = 0;     // completions left to fail (fault injection)
  };

  ArbitrationPolicy policy_;
  std::vector<BusSlave*> slaves_;
  std::vector<SlaveState> slave_state_;
  std::vector<SlaveStats> stats_;
  std::vector<Region> regions_;
  std::array<MasterId, kNumMasters> priority_order_{};
  bool priority_set_ = false;

  // Ports currently waiting or active, one slot per master (a master has
  // at most one outstanding request on this fabric).
  std::array<MasterPort*, kNumMasters> pending_{};

  // Interference matrix, [slave][waiter][holder] flattened; grows by one
  // kNumMasters x kNumMasters block per add_slave().
  std::vector<u64> interference_;
  // Per-cycle blocking info, rewritten by every step().
  std::array<MasterId, kNumMasters> blocked_by_{};
  std::array<u8, kNumMasters> blocked_slave_{};

  FabricObservation observation_;
};

}  // namespace audo::bus
