#include "bus/crossbar.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"

namespace audo::bus {

const char* to_string(MasterId id) {
  switch (id) {
    case MasterId::kDma: return "DMA";
    case MasterId::kTcData: return "TC.D";
    case MasterId::kTcFetch: return "TC.I";
    case MasterId::kPcpData: return "PCP.D";
    case MasterId::kCerberus: return "Cerberus";
    case MasterId::kCount: break;
  }
  return "?";
}

unsigned Crossbar::add_slave(BusSlave* slave) {
  assert(slave != nullptr);
  slaves_.push_back(slave);
  slave_state_.emplace_back();
  stats_.emplace_back();
  interference_.resize(slaves_.size() * kNumMasters * kNumMasters, 0);
  return static_cast<unsigned>(slaves_.size() - 1);
}

Status Crossbar::map_region(Addr base, u32 size, unsigned slave,
                            PortFilter filter) {
  if (slave >= slaves_.size()) {
    return error(StatusCode::kInvalidArgument, "region maps unknown slave");
  }
  if (size == 0) {
    return error(StatusCode::kInvalidArgument, "region size must be > 0");
  }
  for (const Region& r : regions_) {
    const u64 new_end = static_cast<u64>(base) + size;
    const u64 old_end = static_cast<u64>(r.base) + r.size;
    const bool addr_overlap = base < old_end && r.base < new_end;
    const bool filter_overlap =
        filter == PortFilter::kAny || r.filter == PortFilter::kAny ||
        filter == r.filter;
    if (addr_overlap && filter_overlap) {
      return error(StatusCode::kAlreadyExists, "overlapping bus region");
    }
  }
  regions_.push_back(Region{base, size, slave, filter});
  return Status::ok();
}

void Crossbar::set_priority_order(std::vector<MasterId> order) {
  assert(order.size() == kNumMasters);
  std::copy(order.begin(), order.end(), priority_order_.begin());
  priority_set_ = true;
}

void Crossbar::inject_slave_errors(unsigned slave, u64 count) {
  slave_state_.at(slave).error_arm += count;
}

Result<unsigned> Crossbar::decode(Addr addr, bool fetch) const {
  for (const Region& r : regions_) {
    if (r.matches(addr, fetch)) return r.slave;
  }
  return error(StatusCode::kNotFound, "bus error: no slave at address");
}

bool Crossbar::issue(MasterPort& port, const BusRequest& req, Cycle now) {
  assert(port.idle() && "master already has an outstanding request");
  const auto slave = decode(req.addr, req.fetch);
  if (!slave.is_ok()) return false;
  port.request_ = req;
  port.slave_index = slave.value();
  port.state_ = MasterPort::State::kWaiting;
  port.error_ = false;
  port.issued_at = now;
  const auto master_index = static_cast<unsigned>(req.master);
  assert(pending_[master_index] == nullptr &&
         "master has another port pending on this fabric");
  pending_[master_index] = &port;
  return true;
}

bool Crossbar::idle() const {
  for (const MasterPort* port : pending_) {
    if (port != nullptr) return false;
  }
  for (const SlaveState& state : slave_state_) {
    if (state.busy) return false;
  }
  return true;
}

void Crossbar::step(Cycle now) {
  observation_.clear();
  blocked_by_.fill(MasterId::kCount);
  blocked_slave_.fill(0xFF);

  // A master-cycle spent blocked: the request stays kWaiting past this
  // cycle's arbitration while `holder` occupies (or wins) the slave.
  auto record_blocked = [&](const MasterPort* waiter, MasterId holder,
                            unsigned s) {
    const auto w = static_cast<unsigned>(waiter->request_.master);
    blocked_by_[w] = holder;
    blocked_slave_[w] = static_cast<u8>(s);
    interference_[interference_index(w, static_cast<unsigned>(holder), s)]++;
  };

  // One service cycle for slave `s`: decrement the active transaction and
  // complete it when the latency has elapsed. The grant cycle itself is a
  // service cycle (address + first data beat), so a latency-L access
  // completes L steps after issue when uncontended.
  auto progress = [&](unsigned s) {
    SlaveState& state = slave_state_[s];
    stats_[s].busy_cycles++;
    MasterPort* port = state.active_port;
    assert(port != nullptr && port->state_ == MasterPort::State::kActive);
    if (--port->remaining == 0) {
      if (state.error_arm > 0) {
        // Injected error response: the transfer is suppressed — the
        // slave never sees the completion, reads return 0.
        --state.error_arm;
        stats_[s].error_responses++;
        port->rdata_ = 0;
        port->error_ = true;
        observation_.error_response = true;
        observation_.error_master = port->request_.master;
      } else {
        port->rdata_ = slaves_[s]->complete_access(port->request_);
      }
      port->state_ = MasterPort::State::kDone;
      pending_[static_cast<unsigned>(port->request_.master)] = nullptr;
      state.busy = false;
      state.active_port = nullptr;
      // Publish the transaction's life cycle for the host timeline.
      if (observation_.completed_count < kNumMasters) {
        observation_.completed[observation_.completed_count++] =
            CompletedTransaction{port->request_.master,
                                 static_cast<u8>(s),
                                 port->request_.addr,
                                 port->request_.kind == AccessKind::kWrite,
                                 port->request_.fetch,
                                 port->issued_at,
                                 port->granted_at};
      }
    }
  };

  // Phase 1: progress transactions that were already active.
  for (unsigned s = 0; s < slaves_.size(); ++s) {
    if (slave_state_[s].busy) progress(s);
  }

  // Phase 2: account waiting masters (for contention stats) and grant.
  // Build per-slave waiting sets.
  for (unsigned s = 0; s < slaves_.size(); ++s) {
    SlaveState& state = slave_state_[s];

    unsigned waiting = 0;
    std::array<MasterPort*, kNumMasters> waiters{};
    for (MasterPort* port : pending_) {
      if (port != nullptr && port->state_ == MasterPort::State::kWaiting &&
          port->slave_index == s) {
        waiters[waiting++] = port;
        stats_[s].wait_cycles++;
      }
    }
    if (waiting == 0) continue;
    observation_.waiting_masters += waiting;
    const bool contended = waiting > 1 || state.busy;
    if (contended) {
      observation_.contention = true;
      stats_[s].contention_cycles++;
    }
    if (state.busy) {  // slave occupied; nobody can be granted
      const MasterId holder = state.active_port->request_.master;
      for (unsigned i = 0; i < waiting; ++i) {
        record_blocked(waiters[i], holder, s);
      }
      continue;
    }

    // Pick a winner.
    MasterPort* winner = nullptr;
    if (policy_ == ArbitrationPolicy::kFixedPriority) {
      for (unsigned p = 0; p < kNumMasters; ++p) {
        const unsigned m = priority_set_
                               ? static_cast<unsigned>(priority_order_[p])
                               : p;
        MasterPort* port = pending_[m];
        if (port != nullptr && port->state_ == MasterPort::State::kWaiting &&
            port->slave_index == s) {
          winner = port;
          break;
        }
      }
    } else {  // round robin
      for (unsigned i = 0; i < kNumMasters; ++i) {
        const unsigned m = (state.rr_next + i) % kNumMasters;
        MasterPort* port = pending_[m];
        if (port != nullptr && port->state_ == MasterPort::State::kWaiting &&
            port->slave_index == s) {
          winner = port;
          state.rr_next = (m + 1) % kNumMasters;
          break;
        }
      }
    }
    assert(winner != nullptr);
    // Losers of this cycle's arbitration are blocked by the winner.
    for (unsigned i = 0; i < waiting; ++i) {
      if (waiters[i] != winner) {
        record_blocked(waiters[i], winner->request_.master, s);
      }
    }

    const unsigned latency = std::max(1u, slaves_[s]->start_access(winner->request_));
    winner->state_ = MasterPort::State::kActive;
    winner->remaining = latency;
    winner->granted_at = now;
    state.busy = true;
    state.active_port = winner;

    stats_[s].grants++;
    if (winner->request_.kind == AccessKind::kWrite) {
      stats_[s].writes++;
    } else {
      stats_[s].reads++;
    }
    progress(s);  // the grant cycle serves the first latency cycle
    // Record the (single) grant of this cycle for observation. With
    // several slaves granting in one cycle the frame keeps the first;
    // the contention flag and counters remain exact.
    if (!observation_.any_grant) {
      observation_.any_grant = true;
      observation_.granted_master = winner->request_.master;
      observation_.granted_slave = s;
      observation_.granted_addr = winner->request_.addr;
      observation_.granted_write = winner->request_.kind == AccessKind::kWrite;
    }
  }
}

void Crossbar::register_metrics(telemetry::MetricsRegistry& registry,
                                std::string_view component) const {
  for (unsigned s = 0; s < slaves_.size(); ++s) {
    const std::string slave(slave_name(s));
    const SlaveStats& stats = stats_[s];
    registry.counter(std::string(component), slave + ".grants", &stats.grants);
    registry.counter(std::string(component), slave + ".reads", &stats.reads);
    registry.counter(std::string(component), slave + ".writes", &stats.writes);
    registry.counter(std::string(component), slave + ".wait_cycles",
                     &stats.wait_cycles);
    registry.counter(std::string(component), slave + ".busy_cycles",
                     &stats.busy_cycles);
    registry.counter(std::string(component), slave + ".contention_cycles",
                     &stats.contention_cycles);
    registry.counter(std::string(component), slave + ".error_responses",
                     &stats.error_responses);
  }
}

}  // namespace audo::bus
