// Bus master/slave interfaces for the SRI-like crossbar fabric.
//
// Timing model ("latency and grant", see DESIGN.md): a master issues at
// most one outstanding request per port; each cycle every slave's arbiter
// grants one waiting request; the slave reports an access latency at grant
// time (this is where flash prefetch-buffer state matters); the master's
// port turns `done` when the latency has elapsed. Contention — more than
// one master waiting for the same slave, or a request waiting behind a
// busy slave — is observable per cycle for the MCDS.
#pragma once

#include <cassert>
#include <string_view>

#include "common/types.hpp"

namespace audo::bus {

/// Identities of bus masters, in *default* descending priority order.
/// Real powertrain SoCs prioritise latency-critical DMA over CPU data.
enum class MasterId : u8 {
  kDma = 0,
  kTcData,
  kTcFetch,
  kPcpData,
  kCerberus,  // tool-side access from the EEC (ED only)
  kCount,
};
inline constexpr unsigned kNumMasters = static_cast<unsigned>(MasterId::kCount);

const char* to_string(MasterId id);

enum class AccessKind : u8 { kRead, kWrite };

struct BusRequest {
  MasterId master = MasterId::kTcData;
  Addr addr = 0;
  AccessKind kind = AccessKind::kRead;
  u8 bytes = 4;   // 1, 2 or 4
  u32 wdata = 0;  // for writes
  bool fetch = false;  // instruction-side access (routes to flash code port)
};

/// A slave on the crossbar. One outstanding transaction at a time (the
/// crossbar enforces this); multi-ported devices (the program flash)
/// register one slave object per port.
class BusSlave {
 public:
  virtual ~BusSlave() = default;

  /// Called when the arbiter grants `req` to this slave. Returns the
  /// access latency in cycles (>= 1). This is the point where
  /// device-internal state (wait states, buffer hits, internal bank
  /// conflicts) is sampled.
  virtual unsigned start_access(const BusRequest& req) = 0;

  /// Called once the latency has elapsed; performs the data transfer and
  /// returns read data (ignored for writes).
  virtual u32 complete_access(const BusRequest& req) = 0;

  virtual std::string_view name() const = 0;
};

/// The master-side handle. Masters poll `done()`.
class MasterPort {
 public:
  enum class State : u8 { kIdle, kWaiting, kActive, kDone };

  bool idle() const { return state_ == State::kIdle; }
  bool busy() const {
    return state_ == State::kWaiting || state_ == State::kActive;
  }
  bool done() const { return state_ == State::kDone; }

  /// The completed request ended in an error response (injected fault).
  /// Valid while done(); check before take_rdata(), which clears it.
  bool error() const { return error_; }

  /// Read data of a completed request; resets the port to idle.
  u32 take_rdata() {
    assert(state_ == State::kDone);
    state_ = State::kIdle;
    error_ = false;
    return rdata_;
  }

  const BusRequest& request() const { return request_; }

  /// Whether the port is waiting for a grant (vs. being served). Valid
  /// while busy(); stall-attribution input.
  bool waiting_grant() const { return state_ == State::kWaiting; }

  /// Slave index the outstanding request decoded to. Valid while busy()
  /// or done(); stall-attribution input.
  unsigned slave() const { return slave_index; }

 private:
  friend class Crossbar;
  State state_ = State::kIdle;
  BusRequest request_;
  unsigned slave_index = 0;
  unsigned remaining = 0;
  u32 rdata_ = 0;
  bool error_ = false;
  Cycle issued_at = 0;
  Cycle granted_at = 0;
};

}  // namespace audo::bus
