// Parallel fault-injection campaigns: sweep N seeded fault scenarios of
// one workload through the SimPool and classify each run against a
// fault-free golden run — the robustness counterpart of the §6
// architecture sweep, using the same "each job owns its Soc" determinism
// contract so campaign classifications are bit-identical for any --jobs.
//
// Outcome taxonomy (precedence top to bottom):
//  * hang       — the TC never halted within the cycle budget (livelock,
//    runaway interrupt load, corrupted control flow that spins);
//  * detected   — a safety mechanism flagged the fault: uncorrectable
//    ECC, bus error, watchdog timeout or trap alarms above golden;
//  * silent-data-corruption — no alarm, but the final architectural
//    state (registers + DSPR image) differs from golden. This includes
//    corrupt-but-never-consumed words (latent faults) and runs whose
//    timing was perturbed enough to change state left in memory;
//  * corrected  — ECC corrected every consumed flip; state matches;
//  * masked     — the fault was never consumed at all (dead code /
//    stale data / scrubbed by an overwrite).
#pragma once

#include <array>
#include <atomic>
#include <string>
#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/safety.hpp"
#include "host/campaign_manifest.hpp"
#include "optimize/evaluator.hpp"
#include "soc/snapshot.hpp"
#include "soc/soc_config.hpp"

namespace audo::telemetry {
struct RunReport;
}

namespace audo::optimize {

enum class FaultOutcome : u8 {
  kMasked = 0,
  kCorrected,
  kDetected,
  kSilentDataCorruption,
  kHang,
  /// The *host* could not complete the scenario (repeated exceptions —
  /// allocation failure, internal error) even after the retry budget.
  /// The scenario is quarantined with this outcome instead of killing
  /// the whole campaign.
  kFailed,
  kCount,
};
inline constexpr unsigned kNumFaultOutcomes =
    static_cast<unsigned>(FaultOutcome::kCount);
const char* to_string(FaultOutcome outcome);
/// Inverse of to_string; false when `name` is not an outcome name.
bool outcome_from_string(std::string_view name, FaultOutcome* out);

/// One campaign entry: a fault plan plus the safety configuration it
/// runs under (so a single campaign can compare ECC-on vs ECC-off).
struct FaultScenario {
  std::string name;
  u64 seed = 0;
  fault::FaultPlan plan;
  fault::SafetyConfig safety;
};

struct ScenarioResult {
  std::string name;
  u64 seed = 0;
  FaultOutcome outcome = FaultOutcome::kMasked;
  u64 cycles = 0;
  bool halted = false;
  u64 signature = 0;  // FNV-1a over final d/a registers + DSPR image
  /// Task/ISR the TC was executing when the first fault event fired
  /// (execution-DAG attribution; "" for the golden run or when the
  /// injection cycle falls outside the run).
  std::string task;
  std::array<u64, fault::kNumFaultKinds> injected{};
  std::array<u64, fault::kNumAlarmKinds> alarms{};

  // ---- robustness-policy bookkeeping (reported per scenario) ----------
  u64 budget_cycles = 0;  // cycle budget this run was given
  u64 timeout_ms = 0;     // wall-clock limit (0 = none)
  u32 attempts = 1;       // host attempts consumed (1 = first try worked)
  bool timed_out = false; // wall clock expired before the TC halted
  bool failed = false;    // quarantined after exhausting retries
  bool aborted = false;   // campaign was aborted before this ran
  bool from_manifest = false;  // replayed from a resume journal
};

/// Manifest adapters: a ScenarioResult as journal plain data and back.
host::ScenarioRecord to_manifest_record(const ScenarioResult& r);
ScenarioResult from_manifest_record(const host::ScenarioRecord& rec);

struct CampaignSummary {
  ScenarioResult golden;  // fault-free reference (outcome forced kMasked)
  std::vector<ScenarioResult> runs;
  std::array<u64, kNumFaultOutcomes> outcome_counts{};

  /// Stable digest of every run's (name, outcome, cycles, signature,
  /// alarms) — the value the jobs-independence test pins.
  u64 classification_hash() const;

  /// Fill the report's faults/alarms sections: injected counts by kind,
  /// outcome tallies, and alarm totals summed over all runs.
  void fill_report(telemetry::RunReport& report) const;

  std::string format() const;
};

/// Campaign driver for one (SoC configuration, workload) pair.
class FaultCampaign {
 public:
  FaultCampaign(soc::SocConfig config, WorkloadCase workload);

  /// Host workers; same contract as ArchitectureEvaluator::set_jobs —
  /// any value produces identical results in identical order.
  void set_jobs(unsigned jobs) { jobs_ = jobs; }
  unsigned jobs() const { return jobs_; }

  /// Random campaign: `count` scenarios with per-scenario seeds derived
  /// from `seed`, plans drawn from the platform-shaped PlanSpec.
  std::vector<FaultScenario> make_scenarios(u64 seed, unsigned count) const;

  /// Hand-aimed targets for the five-outcome demo campaign.
  struct DemoTargets {
    u32 hot_flash_offset = 0;   // flash bytes the workload executes
    u32 dead_flash_offset = 0;  // flash bytes it never touches
    u32 live_dspr_offset = 0;   // DSPR word left live at halt
    unsigned storm_src = 0;     // enabled high-rate interrupt source
    Cycle at = 2'000;           // injection cycle
  };

  /// One scenario per outcome class, in taxonomy order (masked,
  /// corrected, detected, sdc, hang).
  std::vector<FaultScenario> make_demo_scenarios(const DemoTargets& t) const;

  // ---- robustness policy ---------------------------------------------

  /// Wall-clock limit per scenario (0 = none). A run that exceeds it is
  /// stopped and classified kHang — a poison scenario costs bounded host
  /// time instead of stalling the whole campaign.
  void set_timeout_ms(u64 ms) { timeout_ms_ = ms; }
  u64 timeout_ms() const { return timeout_ms_; }

  /// Host-failure retries per scenario (exceptions, not simulation
  /// outcomes). Retries back off exponentially; exhausting them
  /// quarantines the scenario as kFailed instead of killing the run.
  void set_retries(unsigned retries) { retries_ = retries; }
  unsigned retries() const { return retries_; }

  /// Cooperative abort (SIGINT/SIGTERM): scenarios that have not started
  /// when the flag goes true are skipped; completed ones are kept, so
  /// the partial summary + manifest stay consistent.
  void set_abort_flag(const std::atomic<bool>* flag) { abort_ = flag; }

  // ---- warm fork -----------------------------------------------------

  /// Boot the workload once to the last quiescent cycle before the
  /// earliest fault event of `scenarios`, snapshot it, and fork every
  /// run (golden included) from that image. Returns the image checksum,
  /// or 0 when no usable quiescent point exists (everything then boots
  /// cold, which is always correct). Scenarios whose first event lands
  /// at or before the fork cycle individually fall back to cold boot.
  u64 prepare_warm_fork(const std::vector<FaultScenario>& scenarios);
  void clear_warm_fork() { boot_ = soc::Snapshot{}; }
  bool has_warm_fork() const { return !boot_.payload.empty(); }
  Cycle warm_fork_cycle() const { return boot_.cycle; }
  u64 warm_fork_hash() const {
    return has_warm_fork() ? boot_.checksum() : 0;
  }
  /// The prepared boot image (empty payload when none); e.g. for
  /// persisting with soc::Snapshot::to_file.
  const soc::Snapshot& warm_fork_image() const { return boot_; }

  // ---- resume --------------------------------------------------------

  /// Journal every completed scenario to `manifest` (append-only JSONL;
  /// thread-safe, durable per record). Null disables journaling.
  void set_manifest(host::CampaignManifest* manifest) {
    manifest_ = manifest;
  }

  /// Scenarios already completed by a previous (crashed) campaign:
  /// run() matches them by (name, seed) and replays the journaled
  /// result instead of re-simulating. Must outlive run().
  void set_resume_records(const std::vector<host::ScenarioRecord>* records) {
    resume_ = records;
  }

  /// Run the golden reference plus every scenario (parallel across
  /// jobs()) and classify. Scenarios found in the resume records are
  /// replayed from the journal; fresh results are journaled to the
  /// manifest; aborted scenarios are dropped from the summary.
  CampaignSummary run(const std::vector<FaultScenario>& scenarios) const;

  /// The generator shape used by make_scenarios (exposed for tests).
  fault::PlanSpec plan_spec() const;

  const soc::SocConfig& config() const { return config_; }
  const WorkloadCase& workload() const { return workload_; }

  /// Effective per-scenario cycle budget (workload max_cycles, bounded
  /// by the SoC's hard cap).
  u64 budget_cycles() const;

 private:
  ScenarioResult run_one(const fault::FaultPlan* plan,
                         const fault::SafetyConfig& safety,
                         const soc::Snapshot* boot) const;
  ScenarioResult run_one_with_retries(const fault::FaultPlan* plan,
                                      const fault::SafetyConfig& safety,
                                      const soc::Snapshot* boot) const;
  static FaultOutcome classify(const ScenarioResult& run,
                               const ScenarioResult& golden);

  soc::SocConfig config_;
  WorkloadCase workload_;
  unsigned jobs_ = 1;
  u64 timeout_ms_ = 0;
  unsigned retries_ = 2;
  const std::atomic<bool>* abort_ = nullptr;
  soc::Snapshot boot_;  // empty payload = no warm fork prepared
  host::CampaignManifest* manifest_ = nullptr;
  const std::vector<host::ScenarioRecord>* resume_ = nullptr;
};

}  // namespace audo::optimize
