// Parallel fault-injection campaigns: sweep N seeded fault scenarios of
// one workload through the SimPool and classify each run against a
// fault-free golden run — the robustness counterpart of the §6
// architecture sweep, using the same "each job owns its Soc" determinism
// contract so campaign classifications are bit-identical for any --jobs.
//
// Outcome taxonomy (precedence top to bottom):
//  * hang       — the TC never halted within the cycle budget (livelock,
//    runaway interrupt load, corrupted control flow that spins);
//  * detected   — a safety mechanism flagged the fault: uncorrectable
//    ECC, bus error, watchdog timeout or trap alarms above golden;
//  * silent-data-corruption — no alarm, but the final architectural
//    state (registers + DSPR image) differs from golden. This includes
//    corrupt-but-never-consumed words (latent faults) and runs whose
//    timing was perturbed enough to change state left in memory;
//  * corrected  — ECC corrected every consumed flip; state matches;
//  * masked     — the fault was never consumed at all (dead code /
//    stale data / scrubbed by an overwrite).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/safety.hpp"
#include "optimize/evaluator.hpp"
#include "soc/soc_config.hpp"

namespace audo::telemetry {
struct RunReport;
}

namespace audo::optimize {

enum class FaultOutcome : u8 {
  kMasked = 0,
  kCorrected,
  kDetected,
  kSilentDataCorruption,
  kHang,
  kCount,
};
inline constexpr unsigned kNumFaultOutcomes =
    static_cast<unsigned>(FaultOutcome::kCount);
const char* to_string(FaultOutcome outcome);

/// One campaign entry: a fault plan plus the safety configuration it
/// runs under (so a single campaign can compare ECC-on vs ECC-off).
struct FaultScenario {
  std::string name;
  u64 seed = 0;
  fault::FaultPlan plan;
  fault::SafetyConfig safety;
};

struct ScenarioResult {
  std::string name;
  u64 seed = 0;
  FaultOutcome outcome = FaultOutcome::kMasked;
  u64 cycles = 0;
  bool halted = false;
  u64 signature = 0;  // FNV-1a over final d/a registers + DSPR image
  /// Task/ISR the TC was executing when the first fault event fired
  /// (execution-DAG attribution; "" for the golden run or when the
  /// injection cycle falls outside the run).
  std::string task;
  std::array<u64, fault::kNumFaultKinds> injected{};
  std::array<u64, fault::kNumAlarmKinds> alarms{};
};

struct CampaignSummary {
  ScenarioResult golden;  // fault-free reference (outcome forced kMasked)
  std::vector<ScenarioResult> runs;
  std::array<u64, kNumFaultOutcomes> outcome_counts{};

  /// Stable digest of every run's (name, outcome, cycles, signature,
  /// alarms) — the value the jobs-independence test pins.
  u64 classification_hash() const;

  /// Fill the report's faults/alarms sections: injected counts by kind,
  /// outcome tallies, and alarm totals summed over all runs.
  void fill_report(telemetry::RunReport& report) const;

  std::string format() const;
};

/// Campaign driver for one (SoC configuration, workload) pair.
class FaultCampaign {
 public:
  FaultCampaign(soc::SocConfig config, WorkloadCase workload);

  /// Host workers; same contract as ArchitectureEvaluator::set_jobs —
  /// any value produces identical results in identical order.
  void set_jobs(unsigned jobs) { jobs_ = jobs; }
  unsigned jobs() const { return jobs_; }

  /// Random campaign: `count` scenarios with per-scenario seeds derived
  /// from `seed`, plans drawn from the platform-shaped PlanSpec.
  std::vector<FaultScenario> make_scenarios(u64 seed, unsigned count) const;

  /// Hand-aimed targets for the five-outcome demo campaign.
  struct DemoTargets {
    u32 hot_flash_offset = 0;   // flash bytes the workload executes
    u32 dead_flash_offset = 0;  // flash bytes it never touches
    u32 live_dspr_offset = 0;   // DSPR word left live at halt
    unsigned storm_src = 0;     // enabled high-rate interrupt source
    Cycle at = 2'000;           // injection cycle
  };

  /// One scenario per outcome class, in taxonomy order (masked,
  /// corrected, detected, sdc, hang).
  std::vector<FaultScenario> make_demo_scenarios(const DemoTargets& t) const;

  /// Run the golden reference plus every scenario (parallel across
  /// jobs()) and classify.
  CampaignSummary run(const std::vector<FaultScenario>& scenarios) const;

  /// The generator shape used by make_scenarios (exposed for tests).
  fault::PlanSpec plan_spec() const;

  const soc::SocConfig& config() const { return config_; }
  const WorkloadCase& workload() const { return workload_; }

 private:
  ScenarioResult run_one(const fault::FaultPlan* plan,
                         const fault::SafetyConfig& safety) const;
  static FaultOutcome classify(const ScenarioResult& run,
                               const ScenarioResult& golden);

  soc::SocConfig config_;
  WorkloadCase workload_;
  unsigned jobs_ = 1;
};

}  // namespace audo::optimize
