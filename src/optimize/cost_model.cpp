#include "optimize/cost_model.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "profiling/dag.hpp"

namespace audo::optimize {

MeasuredSlack measured_slack_from_dag(const profiling::DagAnalysis& dag) {
  MeasuredSlack m;
  m.run_cycles = dag.total_cycles;
  m.critical_path_cycles = dag.critical_path_cycles;
  for (const profiling::DagTaskSummary& t : dag.tasks) {
    if (t.kind == profiling::DagNodeKind::kIdle) continue;
    m.tasks.push_back(MeasuredSlack::TaskSlack{t.task, t.cycles, t.slack});
  }
  return m;
}

MeasuredContention MeasuredContention::from_fabric(const bus::Crossbar& fabric,
                                                  u64 run_cycles) {
  MeasuredContention m;
  m.run_cycles = run_cycles;
  for (unsigned s = 0; s < fabric.slave_count(); ++s) {
    u64 slave_total = 0;
    for (unsigned w = 0; w < bus::kNumMasters; ++w) {
      for (unsigned h = 0; h < bus::kNumMasters; ++h) {
        slave_total += fabric.interference(static_cast<bus::MasterId>(w),
                                           static_cast<bus::MasterId>(h), s);
      }
    }
    if (slave_total == 0) continue;
    m.per_slave.emplace_back(std::string(fabric.slave_name(s)), slave_total);
    m.blocked_cycles_total += slave_total;
  }
  return m;
}

double CostModel::contention_speedup_bound(const MeasuredContention& m) const {
  // Amdahl: removing the blocked fraction of the run leaves 1 - f of the
  // original time. Blocked master-cycles can overlap in a cycle, so cap
  // the recoverable fraction below 1.
  const double f = std::min(m.blocked_fraction(), 0.95);
  return 1.0 / (1.0 - f);
}

double CostModel::contention_gain_per_cost(const MeasuredContention& m,
                                           double recovered_fraction,
                                           double area_delta_au) const {
  const double f =
      std::min(m.blocked_fraction() * recovered_fraction, 0.95);
  const double gain_percent = (1.0 / (1.0 - f) - 1.0) * 100.0;
  if (area_delta_au > 0.0) return gain_percent / (area_delta_au / 100.0);
  // Same free-option convention as ArchitectureEvaluator rankings.
  return gain_percent >= 0.0 ? gain_percent * 1000.0 : gain_percent;
}

double CostModel::task_speedup_bound(const MeasuredSlack& m,
                                     std::string_view task) const {
  const MeasuredSlack::TaskSlack* t = m.find(task);
  if (t == nullptr || m.run_cycles == 0) return 1.0;
  // Only cycles beyond the task's slack sit on the critical path; the
  // rest is shadowed by concurrent work and removing it moves nothing.
  const u64 critical_share = t->cycles > t->slack ? t->cycles - t->slack : 0;
  const double f = std::min(static_cast<double>(critical_share) /
                                static_cast<double>(m.run_cycles),
                            0.95);
  return 1.0 / (1.0 - f);
}

double CostModel::cache_area(const cache::CacheConfig& cache) const {
  if (!cache.enabled) return 0.0;
  const double data_kib = static_cast<double>(cache.size_bytes) / 1024.0;
  // Tag bits per line: address tag + valid + replacement state.
  const unsigned lines = cache.size_bytes / cache.line_bytes;
  const unsigned tag_bits = 32 - log2_exact(cache.line_bytes) -
                            (cache.num_sets() > 1 ? log2_exact(cache.num_sets()) : 0);
  const double tag_kib =
      static_cast<double>(lines) * (tag_bits + 2) / 8.0 / 1024.0;
  return data_kib * sram_au_per_kib + tag_kib * cache_tag_au_per_kib +
         cache_control_au + cache_way_au * cache.ways;
}

double CostModel::soc_area(const soc::SocConfig& config) const {
  double area = 0.0;
  area += cache_area(config.icache);
  area += cache_area(config.dcache);
  area += static_cast<double>(config.dspr_bytes) / 1024.0 * sram_au_per_kib;
  area += static_cast<double>(config.pspr_bytes) / 1024.0 * sram_au_per_kib;
  area += static_cast<double>(config.lmu_bytes) / 1024.0 * sram_au_per_kib;
  if (config.lmu_latency <= 1) area += lmu_fast_au;
  area += static_cast<double>(config.pflash.size) / 1024.0 * flash_au_per_kib;
  area += flash_buffer_au *
          (config.pflash.code_buffers + config.pflash.data_buffers);
  if (config.pflash.wait_states < flash_reference_waitstates) {
    area += flash_waitstate_au *
            (flash_reference_waitstates - config.pflash.wait_states);
  }
  if (config.has_pcp) {
    area += pcp_core_au;
    area += static_cast<double>(config.pcp_pram_bytes + config.pcp_dram_bytes) /
            1024.0 * sram_au_per_kib;
  }
  area += dma_channel_au * config.dma_channels;
  if (config.arbitration == bus::ArbitrationPolicy::kRoundRobin) {
    area += bus_rr_arbiter_au;
  }
  return area;
}

}  // namespace audo::optimize
