#include "optimize/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "host/sim_job.hpp"
#include "host/sim_pool.hpp"

namespace audo::optimize {

namespace {
/// Boot-probe bound: how far into a run the evaluator looks for the
/// first quiescent point worth snapshotting. Workloads that stay busy
/// longer than this just boot cold.
constexpr Cycle kBootProbeLimit = 65'536;
}  // namespace

std::shared_ptr<const soc::Snapshot> ArchitectureEvaluator::boot_image_for(
    const soc::SocConfig& config, usize case_index) const {
  const WorkloadCase& wc = cases_[case_index];
  const std::pair<u64, usize> key{config.shape_fingerprint(), case_index};
  {
    std::lock_guard<std::mutex> lock(*boot_mutex_);
    if (auto it = boot_cache_.find(key); it != boot_cache_.end()) {
      ++boot_stats_.hits;
      return it->second;
    }
    ++boot_stats_.misses;
  }
  // Probe outside the lock: bounded, and a concurrent duplicate probe
  // would produce the identical image anyway.
  std::shared_ptr<const soc::Snapshot> image;
  soc::Soc probe(config);
  if (probe.load(wc.program).is_ok()) {
    if (wc.configure) wc.configure(probe);
    probe.reset(wc.tc_entry, wc.pcp_entry);
    const u64 budget =
        wc.max_cycles == 0 ? soc::Soc::kDefaultRunBudget : wc.max_cycles;
    const Cycle limit = std::min<Cycle>(kBootProbeLimit, budget / 2);
    while (probe.cycle() < limit && !probe.tc().halted() &&
           !probe.quiescent()) {
      probe.step();
    }
    if (probe.cycle() > 0 && !probe.tc().halted() && probe.quiescent()) {
      if (Result<soc::Snapshot> snap = probe.save_snapshot(); snap.is_ok()) {
        image = std::make_shared<const soc::Snapshot>(
            std::move(snap).value());
      }
    }
  }
  std::lock_guard<std::mutex> lock(*boot_mutex_);
  return boot_cache_.emplace(key, std::move(image)).first->second;
}

std::vector<CaseRun> ArchitectureEvaluator::run_config(
    const soc::SocConfig& config) const {
  return run_configs({config}).front();
}

std::vector<std::vector<CaseRun>> ArchitectureEvaluator::run_configs(
    const std::vector<soc::SocConfig>& configs) const {
  // Flatten every (config, case) pair into one self-contained SimJob so a
  // sweep saturates the pool even when |configs| < jobs. map() collects by
  // submission index, so grouping back is order-preserving and the result
  // is bit-identical to the serial loop for any jobs value.
  std::vector<host::SimJob> batch;
  batch.reserve(configs.size() * cases_.size());
  // Boot images are probed up front (serially, cached across calls) so
  // the pool workers only run the post-boot portion of each job.
  std::vector<std::shared_ptr<const soc::Snapshot>> boots;
  boots.reserve(configs.size() * cases_.size());
  for (const soc::SocConfig& config : configs) {
    for (usize k = 0; k < cases_.size(); ++k) {
      const WorkloadCase& wc = cases_[k];
      host::SimJob job;
      job.config = config;
      job.program = &wc.program;
      job.tc_entry = wc.tc_entry;
      job.pcp_entry = wc.pcp_entry;
      job.configure = wc.configure;
      job.max_cycles = wc.max_cycles;
      if (warm_fork_) {
        boots.push_back(boot_image_for(config, k));
        job.boot = boots.back().get();
      }
      batch.push_back(std::move(job));
    }
  }

  host::SimPool pool(jobs_);
  const std::vector<host::SimJobResult> raw =
      pool.map<host::SimJobResult>(batch.size(),
                                   [&](usize i) { return batch[i].run(); });

  std::vector<std::vector<CaseRun>> grouped;
  grouped.reserve(configs.size());
  usize flat = 0;
  for (usize c = 0; c < configs.size(); ++c) {
    std::vector<CaseRun> runs;
    runs.reserve(cases_.size());
    for (const WorkloadCase& wc : cases_) {
      const host::SimJobResult& r = raw[flat++];
      CaseRun run;
      run.workload = wc.name;
      if (r.loaded) {
        run.cycles = r.cycles;
        run.instructions = r.instructions;
        run.halted = r.halted;
      }
      runs.push_back(std::move(run));
    }
    grouped.push_back(std::move(runs));
  }
  return grouped;
}

double ArchitectureEvaluator::speedup_of(
    const std::vector<CaseRun>& base, const std::vector<CaseRun>& variant) const {
  double log_sum = 0.0;
  double weight_sum = 0.0;
  for (usize i = 0; i < base.size() && i < variant.size(); ++i) {
    if (base[i].cycles == 0 || variant[i].cycles == 0) continue;
    const double s = static_cast<double>(base[i].cycles) /
                     static_cast<double>(variant[i].cycles);
    log_sum += cases_[i].weight * std::log(s);
    weight_sum += cases_[i].weight;
  }
  return weight_sum == 0.0 ? 1.0 : std::exp(log_sum / weight_sum);
}

std::vector<OptionResult> ArchitectureEvaluator::evaluate(
    const std::vector<ArchOption>& catalogue) const {
  // One batch: baseline plus every variant, simulated in parallel.
  std::vector<soc::SocConfig> configs;
  configs.reserve(1 + catalogue.size());
  configs.push_back(baseline_);
  for (const ArchOption& option : catalogue) {
    configs.push_back(option.apply(baseline_));
  }
  std::vector<std::vector<CaseRun>> all_runs = run_configs(configs);
  const std::vector<CaseRun>& base_runs = all_runs.front();
  const double base_area = cost_.soc_area(baseline_);

  std::vector<OptionResult> results;
  results.reserve(catalogue.size());
  for (usize k = 0; k < catalogue.size(); ++k) {
    const ArchOption& option = catalogue[k];
    const soc::SocConfig& variant = configs[1 + k];
    OptionResult result;
    result.option = option.name;
    result.description = option.description;
    result.runs = std::move(all_runs[1 + k]);
    result.speedup = speedup_of(base_runs, result.runs);
    result.area_delta_au = cost_.soc_area(variant) - base_area;
    const double gain_percent = (result.speedup - 1.0) * 100.0;
    if (result.area_delta_au > 0.0) {
      result.gain_per_cost = gain_percent / (result.area_delta_au / 100.0);
    } else {
      // Free or area-saving options: rank by gain with a large multiplier,
      // capped so the table stays readable.
      result.gain_per_cost = gain_percent >= 0.0 ? gain_percent * 1000.0
                                                 : gain_percent;
    }
    results.push_back(std::move(result));
  }
  std::sort(results.begin(), results.end(),
            [](const OptionResult& a, const OptionResult& b) {
              return a.gain_per_cost > b.gain_per_cost;
            });
  return results;
}

std::vector<ArchitectureEvaluator::InteractionResult>
ArchitectureEvaluator::evaluate_interactions(
    const std::vector<ArchOption>& options) const {
  // One batch: baseline, every single option, every ordered pair (i<j).
  std::vector<soc::SocConfig> configs;
  configs.reserve(1 + options.size() +
                  options.size() * (options.size() + 1) / 2);
  configs.push_back(baseline_);
  for (const ArchOption& option : options) {
    configs.push_back(option.apply(baseline_));
  }
  for (usize i = 0; i < options.size(); ++i) {
    for (usize j = i + 1; j < options.size(); ++j) {
      configs.push_back(options[j].apply(options[i].apply(baseline_)));
    }
  }
  const std::vector<std::vector<CaseRun>> all_runs = run_configs(configs);
  const std::vector<CaseRun>& base_runs = all_runs.front();

  std::vector<double> single(options.size(), 1.0);
  for (usize i = 0; i < options.size(); ++i) {
    single[i] = speedup_of(base_runs, all_runs[1 + i]);
  }
  std::vector<InteractionResult> results;
  usize pair_index = 1 + options.size();
  for (usize i = 0; i < options.size(); ++i) {
    for (usize j = i + 1; j < options.size(); ++j) {
      InteractionResult r;
      r.option_a = options[i].name;
      r.option_b = options[j].name;
      r.speedup_a = single[i];
      r.speedup_b = single[j];
      r.speedup_both = speedup_of(base_runs, all_runs[pair_index++]);
      r.expected = r.speedup_a * r.speedup_b;
      r.synergy = r.expected == 0.0 ? 1.0 : r.speedup_both / r.expected;
      results.push_back(std::move(r));
    }
  }
  return results;
}

std::string ArchitectureEvaluator::format_interactions(
    const std::vector<InteractionResult>& results) {
  std::string out;
  char line[200];
  std::snprintf(line, sizeof line, "%-18s %-18s %8s %8s %9s %9s %8s\n",
                "option a", "option b", "a", "b", "a+b", "a*b", "synergy");
  out += line;
  for (const InteractionResult& r : results) {
    std::snprintf(line, sizeof line,
                  "%-18s %-18s %7.3fx %7.3fx %8.3fx %8.3fx %8.3f\n",
                  r.option_a.c_str(), r.option_b.c_str(), r.speedup_a,
                  r.speedup_b, r.speedup_both, r.expected, r.synergy);
    out += line;
  }
  return out;
}

soc::SocConfig ArchitectureEvaluator::next_generation(
    const std::vector<ArchOption>& catalogue, double area_budget_au,
    std::vector<std::string>* applied) const {
  // Greedy by measured ratio, re-measuring nothing (first-order additivity
  // assumption — the evolutionary, low-risk step §4 argues for).
  const std::vector<OptionResult> ranked = evaluate(catalogue);
  soc::SocConfig next = baseline_;
  double budget = area_budget_au;
  double base_area = cost_.soc_area(baseline_);
  for (const OptionResult& result : ranked) {
    if (result.speedup <= 1.001) continue;  // no measurable gain
    const ArchOption* option = find_option(catalogue, result.option);
    if (option == nullptr) continue;
    const soc::SocConfig candidate = option->apply(next);
    const double delta = cost_.soc_area(candidate) - cost_.soc_area(next);
    if (delta > budget) continue;
    if (!candidate.valid()) continue;
    next = candidate;
    budget -= delta;
    if (applied != nullptr) applied->push_back(result.option);
  }
  (void)base_area;
  return next;
}

std::string ArchitectureEvaluator::format_ranking(
    const std::vector<OptionResult>& results) {
  std::string out;
  char line[200];
  std::snprintf(line, sizeof line, "%-18s %9s %10s %14s  %s\n", "option",
                "speedup", "d-area/au", "gain%/100au", "description");
  out += line;
  for (const OptionResult& r : results) {
    std::snprintf(line, sizeof line, "%-18s %8.3fx %10.1f %14.2f  %s\n",
                  r.option.c_str(), r.speedup, r.area_delta_au,
                  r.gain_per_cost, r.description.c_str());
    out += line;
  }
  return out;
}

}  // namespace audo::optimize
