#include "optimize/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace audo::optimize {

std::vector<CaseRun> ArchitectureEvaluator::run_config(
    const soc::SocConfig& config) const {
  std::vector<CaseRun> runs;
  runs.reserve(cases_.size());
  for (const WorkloadCase& wc : cases_) {
    soc::Soc soc(config);
    CaseRun run;
    run.workload = wc.name;
    if (Status s = soc.load(wc.program); !s.is_ok()) {
      runs.push_back(run);
      continue;
    }
    if (wc.configure) wc.configure(soc);
    soc.reset(wc.tc_entry, wc.pcp_entry);
    run.cycles = soc.run(wc.max_cycles);
    run.instructions = soc.tc().retired();
    run.halted = soc.tc().halted();
    runs.push_back(run);
  }
  return runs;
}

double ArchitectureEvaluator::speedup_of(
    const std::vector<CaseRun>& base, const std::vector<CaseRun>& variant) const {
  double log_sum = 0.0;
  double weight_sum = 0.0;
  for (usize i = 0; i < base.size() && i < variant.size(); ++i) {
    if (base[i].cycles == 0 || variant[i].cycles == 0) continue;
    const double s = static_cast<double>(base[i].cycles) /
                     static_cast<double>(variant[i].cycles);
    log_sum += cases_[i].weight * std::log(s);
    weight_sum += cases_[i].weight;
  }
  return weight_sum == 0.0 ? 1.0 : std::exp(log_sum / weight_sum);
}

std::vector<OptionResult> ArchitectureEvaluator::evaluate(
    const std::vector<ArchOption>& catalogue) const {
  const std::vector<CaseRun> base_runs = run_config(baseline_);
  const double base_area = cost_.soc_area(baseline_);

  std::vector<OptionResult> results;
  results.reserve(catalogue.size());
  for (const ArchOption& option : catalogue) {
    const soc::SocConfig variant = option.apply(baseline_);
    OptionResult result;
    result.option = option.name;
    result.description = option.description;
    result.runs = run_config(variant);
    result.speedup = speedup_of(base_runs, result.runs);
    result.area_delta_au = cost_.soc_area(variant) - base_area;
    const double gain_percent = (result.speedup - 1.0) * 100.0;
    if (result.area_delta_au > 0.0) {
      result.gain_per_cost = gain_percent / (result.area_delta_au / 100.0);
    } else {
      // Free or area-saving options: rank by gain with a large multiplier,
      // capped so the table stays readable.
      result.gain_per_cost = gain_percent >= 0.0 ? gain_percent * 1000.0
                                                 : gain_percent;
    }
    results.push_back(std::move(result));
  }
  std::sort(results.begin(), results.end(),
            [](const OptionResult& a, const OptionResult& b) {
              return a.gain_per_cost > b.gain_per_cost;
            });
  return results;
}

std::vector<ArchitectureEvaluator::InteractionResult>
ArchitectureEvaluator::evaluate_interactions(
    const std::vector<ArchOption>& options) const {
  const std::vector<CaseRun> base_runs = run_config(baseline_);
  // Cache single-option runs.
  std::vector<double> single(options.size(), 1.0);
  for (usize i = 0; i < options.size(); ++i) {
    single[i] = speedup_of(base_runs, run_config(options[i].apply(baseline_)));
  }
  std::vector<InteractionResult> results;
  for (usize i = 0; i < options.size(); ++i) {
    for (usize j = i + 1; j < options.size(); ++j) {
      InteractionResult r;
      r.option_a = options[i].name;
      r.option_b = options[j].name;
      r.speedup_a = single[i];
      r.speedup_b = single[j];
      const soc::SocConfig combined =
          options[j].apply(options[i].apply(baseline_));
      r.speedup_both = speedup_of(base_runs, run_config(combined));
      r.expected = r.speedup_a * r.speedup_b;
      r.synergy = r.expected == 0.0 ? 1.0 : r.speedup_both / r.expected;
      results.push_back(std::move(r));
    }
  }
  return results;
}

std::string ArchitectureEvaluator::format_interactions(
    const std::vector<InteractionResult>& results) {
  std::string out;
  char line[200];
  std::snprintf(line, sizeof line, "%-18s %-18s %8s %8s %9s %9s %8s\n",
                "option a", "option b", "a", "b", "a+b", "a*b", "synergy");
  out += line;
  for (const InteractionResult& r : results) {
    std::snprintf(line, sizeof line,
                  "%-18s %-18s %7.3fx %7.3fx %8.3fx %8.3fx %8.3f\n",
                  r.option_a.c_str(), r.option_b.c_str(), r.speedup_a,
                  r.speedup_b, r.speedup_both, r.expected, r.synergy);
    out += line;
  }
  return out;
}

soc::SocConfig ArchitectureEvaluator::next_generation(
    const std::vector<ArchOption>& catalogue, double area_budget_au,
    std::vector<std::string>* applied) const {
  // Greedy by measured ratio, re-measuring nothing (first-order additivity
  // assumption — the evolutionary, low-risk step §4 argues for).
  const std::vector<OptionResult> ranked = evaluate(catalogue);
  soc::SocConfig next = baseline_;
  double budget = area_budget_au;
  double base_area = cost_.soc_area(baseline_);
  for (const OptionResult& result : ranked) {
    if (result.speedup <= 1.001) continue;  // no measurable gain
    const ArchOption* option = find_option(catalogue, result.option);
    if (option == nullptr) continue;
    const soc::SocConfig candidate = option->apply(next);
    const double delta = cost_.soc_area(candidate) - cost_.soc_area(next);
    if (delta > budget) continue;
    if (!candidate.valid()) continue;
    next = candidate;
    budget -= delta;
    if (applied != nullptr) applied->push_back(result.option);
  }
  (void)base_area;
  return next;
}

std::string ArchitectureEvaluator::format_ranking(
    const std::vector<OptionResult>& results) {
  std::string out;
  char line[200];
  std::snprintf(line, sizeof line, "%-18s %9s %10s %14s  %s\n", "option",
                "speedup", "d-area/au", "gain%/100au", "description");
  out += line;
  for (const OptionResult& r : results) {
    std::snprintf(line, sizeof line, "%-18s %8.3fx %10.1f %14.2f  %s\n",
                  r.option.c_str(), r.speedup, r.area_delta_au,
                  r.gain_per_cost, r.description.c_str());
    out += line;
  }
  return out;
}

}  // namespace audo::optimize
