// Architecture-option evaluator: replay a workload suite over SoC
// configuration variants, quantify each option's speedup, and rank by
// performance-gain / area-cost ratio — §6: "a quantitative comparison of
// optimization options ... choose the ones with the best ratio between
// performance gain on the one side and development effort and area
// increase on the other side."
#pragma once

#include <functional>
#include <memory>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "isa/program.hpp"
#include "optimize/cost_model.hpp"
#include "optimize/options.hpp"
#include "soc/soc.hpp"

namespace audo::optimize {

/// One workload in the evaluation suite.
struct WorkloadCase {
  std::string name;
  isa::Program program;
  Addr tc_entry = 0;
  Addr pcp_entry = 0;
  /// Extra SoC setup after load (interrupt routing, crank speed, ...).
  std::function<void(soc::Soc&)> configure;
  /// Safety bound; the workload itself must HALT to define "done".
  u64 max_cycles = 20'000'000;
  double weight = 1.0;
};

struct CaseRun {
  std::string workload;
  u64 cycles = 0;
  u64 instructions = 0;
  bool halted = false;
};

struct OptionResult {
  std::string option;
  std::string description;
  std::vector<CaseRun> runs;
  /// Weighted geometric-mean speedup vs the baseline configuration.
  double speedup = 1.0;
  double area_delta_au = 0.0;
  /// The ranking metric: percent speedup per 100 au of added area.
  /// Options that *save* area with a speedup get +infinity-like scores,
  /// capped for printability.
  double gain_per_cost = 0.0;
};

class ArchitectureEvaluator {
 public:
  ArchitectureEvaluator(soc::SocConfig baseline, CostModel cost_model = {})
      : baseline_(std::move(baseline)), cost_(cost_model) {}

  void add_case(WorkloadCase workload) {
    cases_.push_back(std::move(workload));
  }

  /// Host workers for the sweep methods below. Every (config, case) pair
  /// is one self-contained SimJob on the host::SimPool, and results are
  /// collected in submission order, so any jobs value — including the
  /// default serial 1 — produces bit-identical CaseRun vectors and
  /// ranking order. 0 = hardware concurrency.
  void set_jobs(unsigned jobs) { jobs_ = jobs; }
  unsigned jobs() const { return jobs_; }

  /// Warm fork: boot each (configuration shape, case) pair once, snapshot
  /// the machine at its first quiescent point, and fork every later run
  /// of the same pair from that image instead of re-booting. Bit-identical
  /// to cold boots (the snapshot round-trip is), so sweeps keep the
  /// determinism contract; the win compounds when the same configuration
  /// is evaluated repeatedly (interaction pairs, repeated evaluate()
  /// calls, greedy generation steps).
  void set_warm_fork(bool on) { warm_fork_ = on; }
  bool warm_fork() const { return warm_fork_; }

  struct BootCacheStats {
    u64 hits = 0;
    u64 misses = 0;
  };
  BootCacheStats boot_cache_stats() const {
    std::lock_guard<std::mutex> lock(*boot_mutex_);
    return boot_stats_;
  }

  /// Run one configuration over all cases.
  std::vector<CaseRun> run_config(const soc::SocConfig& config) const;

  /// Run several configurations over all cases (one parallel batch).
  /// result[i] corresponds to configs[i], in order.
  std::vector<std::vector<CaseRun>> run_configs(
      const std::vector<soc::SocConfig>& configs) const;

  /// Evaluate the catalogue: baseline first, then each option applied to
  /// the baseline in isolation. Results sorted by gain_per_cost.
  std::vector<OptionResult> evaluate(
      const std::vector<ArchOption>& catalogue) const;

  /// Pairwise interaction measurement: the greedy F-model step assumes
  /// option speedups compose multiplicatively; this quantifies where that
  /// holds. synergy > 1 = super-additive (e.g. bigger cache + faster
  /// flash), < 1 = overlapping (two fixes for the same bottleneck).
  struct InteractionResult {
    std::string option_a;
    std::string option_b;
    double speedup_a = 1.0;
    double speedup_b = 1.0;
    double speedup_both = 1.0;
    double expected = 1.0;  // speedup_a * speedup_b
    double synergy = 1.0;   // speedup_both / expected
  };

  /// Evaluate all pairs among `options` (apply a then b to the baseline).
  std::vector<InteractionResult> evaluate_interactions(
      const std::vector<ArchOption>& options) const;

  static std::string format_interactions(
      const std::vector<InteractionResult>& results);

  /// Greedy generation step (F-model, E9): apply the best-ratio options
  /// whose summed area delta stays within `area_budget_au`; returns the
  /// next-generation configuration and the names applied.
  soc::SocConfig next_generation(const std::vector<ArchOption>& catalogue,
                                 double area_budget_au,
                                 std::vector<std::string>* applied) const;

  const soc::SocConfig& baseline() const { return baseline_; }
  const CostModel& cost_model() const { return cost_; }

  static std::string format_ranking(const std::vector<OptionResult>& results);

 private:
  double speedup_of(const std::vector<CaseRun>& base,
                    const std::vector<CaseRun>& variant) const;

  /// Cached boot image for (config shape, case), probing on first use.
  /// Null when the workload never goes quiescent before the probe limit
  /// (the run is then simply cold-booted every time).
  std::shared_ptr<const soc::Snapshot> boot_image_for(
      const soc::SocConfig& config, usize case_index) const;

  soc::SocConfig baseline_;
  CostModel cost_;
  std::vector<WorkloadCase> cases_;
  unsigned jobs_ = 1;
  bool warm_fork_ = true;
  // unique_ptr keeps the evaluator movable (callers return it by value).
  mutable std::unique_ptr<std::mutex> boot_mutex_ =
      std::make_unique<std::mutex>();
  mutable std::map<std::pair<u64, usize>,
                   std::shared_ptr<const soc::Snapshot>>
      boot_cache_;
  mutable BootCacheStats boot_stats_;
};

}  // namespace audo::optimize
