#include "optimize/options.hpp"

#include <algorithm>

namespace audo::optimize {

std::vector<ArchOption> standard_catalogue() {
  std::vector<ArchOption> options;
  auto add = [&](std::string name, std::string description,
                 std::function<soc::SocConfig(soc::SocConfig)> apply) {
    options.push_back(ArchOption{std::move(name), std::move(description),
                                 std::move(apply)});
  };

  add("icache_32k", "double the instruction cache to 32 KiB",
      [](soc::SocConfig c) {
        c.icache.size_bytes = std::max<u32>(c.icache.size_bytes, 32 * 1024);
        return c;
      });
  add("icache_4way", "instruction cache associativity 2 -> 4",
      [](soc::SocConfig c) {
        c.icache.ways = std::max(c.icache.ways, 4u);
        return c;
      });
  add("dcache_8k", "an (enabled) 8 KiB data cache",
      [](soc::SocConfig c) {
        c.dcache.enabled = true;
        c.dcache.size_bytes = std::max<u32>(c.dcache.size_bytes, 8 * 1024);
        return c;
      });
  add("dcache_16k", "an (enabled) 16 KiB data cache",
      [](soc::SocConfig c) {
        c.dcache.enabled = true;
        c.dcache.size_bytes = std::max<u32>(c.dcache.size_bytes, 16 * 1024);
        return c;
      });
  add("prefetch_4", "4 flash code-port prefetch buffers + sequential prefetch",
      [](soc::SocConfig c) {
        c.pflash.code_buffers = std::max(c.pflash.code_buffers, 4u);
        c.pflash.sequential_prefetch = true;
        return c;
      });
  add("read_buffers_2", "2 flash data-port read buffers (from 1)",
      [](soc::SocConfig c) {
        c.pflash.data_buffers = std::max(c.pflash.data_buffers, 2u);
        return c;
      });
  add("read_buffers_4", "4 flash data-port read buffers (from 1)",
      [](soc::SocConfig c) {
        c.pflash.data_buffers = std::max(c.pflash.data_buffers, 4u);
        return c;
      });
  add("flash_ws_4", "flash wait states 5 -> 4 (faster sense amps)",
      [](soc::SocConfig c) {
        c.pflash.wait_states = std::min(c.pflash.wait_states, 4u);
        return c;
      });
  add("flash_ws_3", "flash wait states 5 -> 3",
      [](soc::SocConfig c) {
        c.pflash.wait_states = std::min(c.pflash.wait_states, 3u);
        return c;
      });
  add("lmu_fast", "1-cycle LMU SRAM (from 2)",
      [](soc::SocConfig c) {
        c.lmu_latency = std::min(c.lmu_latency, 1u);
        return c;
      });
  add("bus_round_robin", "round-robin bus arbitration (from fixed priority)",
      [](soc::SocConfig c) {
        c.arbitration = bus::ArbitrationPolicy::kRoundRobin;
        return c;
      });
  add("cache_line_64", "64-byte cache lines and flash line buffers",
      [](soc::SocConfig c) {
        c.icache.line_bytes = 64;
        c.dcache.line_bytes = 64;
        c.pflash.line_bytes = 64;
        return c;
      });
  return options;
}

const ArchOption* find_option(const std::vector<ArchOption>& catalogue,
                              std::string_view name) {
  for (const ArchOption& option : catalogue) {
    if (option.name == name) return &option;
  }
  return nullptr;
}

}  // namespace audo::optimize
