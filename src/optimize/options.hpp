// The architecture-option catalogue: the next-generation SoC improvements
// §4 motivates ("improve on identified or expected bottlenecks without
// negative side effects for other possible use cases").
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "soc/soc_config.hpp"

namespace audo::optimize {

struct ArchOption {
  std::string name;
  std::string description;
  /// Apply the option to a configuration (returns the modified copy).
  std::function<soc::SocConfig(soc::SocConfig)> apply;
};

/// The standard catalogue evaluated in E6: cache geometry, flash-path
/// improvements (prefetch buffers, read buffers, wait states), bus
/// arbitration and LMU speed.
std::vector<ArchOption> standard_catalogue();

/// Look up an option by name.
const ArchOption* find_option(const std::vector<ArchOption>& catalogue,
                              std::string_view name);

}  // namespace audo::optimize
