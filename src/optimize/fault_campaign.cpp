#include "optimize/fault_campaign.hpp"

#include <algorithm>
#include <sstream>

#include "common/bits.hpp"
#include "fault/safety_monitor.hpp"
#include "host/sim_pool.hpp"
#include "mem/memory_map.hpp"
#include "periph/sfr_bridge.hpp"
#include "profiling/dag.hpp"
#include "soc/soc.hpp"
#include "telemetry/run_report.hpp"

namespace audo::optimize {

const char* to_string(FaultOutcome outcome) {
  switch (outcome) {
    case FaultOutcome::kMasked: return "masked";
    case FaultOutcome::kCorrected: return "corrected";
    case FaultOutcome::kDetected: return "detected";
    case FaultOutcome::kSilentDataCorruption: return "sdc";
    case FaultOutcome::kHang: return "hang";
    case FaultOutcome::kCount: break;
  }
  return "?";
}

namespace {

/// Digest of the architecturally-visible end state: TC register files
/// plus the DSPR image, read through peek() so inspection cannot consume
/// pending ECC fault records.
u64 state_signature(soc::Soc& soc) {
  u64 h = kFnvOffset;
  for (unsigned i = 0; i < 16; ++i) {
    h = fnv1a(h, u64{soc.tc().d(i)});
    h = fnv1a(h, u64{soc.tc().a(i)});
  }
  const mem::MemArray& dspr = soc.dspr().array();
  for (usize off = 0; off + 4 <= dspr.size(); off += 4) {
    h = fnv1a(h, u64{dspr.peek(off, 4)});
  }
  return h;
}

}  // namespace

FaultCampaign::FaultCampaign(soc::SocConfig config, WorkloadCase workload)
    : config_(std::move(config)), workload_(std::move(workload)) {}

fault::PlanSpec FaultCampaign::plan_spec() const {
  fault::PlanSpec spec;
  spec.flash_bytes = config_.pflash.size;
  spec.dspr_bytes = config_.dspr_bytes;
  spec.pspr_bytes = config_.pspr_bytes;
  spec.lmu_bytes = config_.lmu_bytes;
  // Live flash footprint: highest byte the program image places there.
  u32 image_end = 0;
  for (const isa::Section& sec : workload_.program.sections()) {
    if (!mem::is_pflash(sec.base, config_.pflash.size)) continue;
    const u32 end = mem::pflash_offset(sec.base) +
                    static_cast<u32>(sec.bytes.size());
    image_end = std::max(image_end, end);
  }
  spec.flash_image_bytes = image_end;
  // Shape of the constructed platform (slave indices, SRC ids, SFR map)
  // is fixed by Soc's construction order; probe one instance for it.
  soc::Soc probe(config_);
  spec.slave_count = probe.sri().slave_count();
  spec.irq_srcs = {probe.srcs().adc_done, probe.srcs().can_rx,
                   probe.srcs().stm0};
  using namespace periph::sfr;
  spec.sfr_offsets = {kAdc + 0x00, kCrank + 0x00, kCrank + 0x04,
                      kCan + 0x00, kStm + 0x00};
  spec.window_begin = 1'000;
  const u64 budget = workload_.max_cycles == 0
                         ? soc::Soc::kDefaultRunBudget
                         : workload_.max_cycles;
  spec.window_end = std::max<Cycle>(spec.window_begin + 1, budget / 2);
  spec.events_min = 1;
  spec.events_max = 3;
  return spec;
}

std::vector<FaultScenario> FaultCampaign::make_scenarios(
    u64 seed, unsigned count) const {
  const fault::PlanSpec spec = plan_spec();
  std::vector<FaultScenario> scenarios;
  scenarios.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    FaultScenario sc;
    sc.seed = fnv1a(fnv1a(kFnvOffset, seed), u64{i});
    sc.name = "rand-" + std::to_string(i);
    sc.plan = fault::generate_plan(sc.seed, spec);
    sc.safety = config_.safety;
    scenarios.push_back(std::move(sc));
  }
  return scenarios;
}

std::vector<FaultScenario> FaultCampaign::make_demo_scenarios(
    const DemoTargets& t) const {
  std::vector<FaultScenario> scenarios;
  auto flip = [&](u32 offset, u8 bits) {
    fault::FaultEvent ev;
    ev.at = t.at;
    ev.kind = fault::FaultKind::kMemFlip;
    ev.domain = fault::MemDomain::kPFlash;
    ev.offset = offset;
    ev.bits = bits;
    return ev;
  };

  FaultScenario masked;
  masked.name = "demo-masked";
  masked.safety = config_.safety;
  masked.plan.events.push_back(flip(t.dead_flash_offset, 1));
  scenarios.push_back(std::move(masked));

  FaultScenario corrected;
  corrected.name = "demo-corrected";
  corrected.safety = config_.safety;
  corrected.plan.events.push_back(flip(t.hot_flash_offset, 1));
  scenarios.push_back(std::move(corrected));

  FaultScenario detected;
  detected.name = "demo-detected";
  detected.safety = config_.safety;
  detected.plan.events.push_back(flip(t.hot_flash_offset, 2));
  scenarios.push_back(std::move(detected));

  FaultScenario sdc;
  sdc.name = "demo-sdc";
  sdc.safety = config_.safety;
  sdc.safety.ecc_sram = false;  // unprotected RAM: the flip is silent
  fault::FaultEvent ram = flip(t.live_dspr_offset, 1);
  ram.domain = fault::MemDomain::kDspr;
  sdc.plan.events.push_back(ram);
  scenarios.push_back(std::move(sdc));

  FaultScenario hang;
  hang.name = "demo-hang";
  hang.safety = config_.safety;
  fault::FaultEvent storm;
  storm.at = t.at;
  storm.kind = fault::FaultKind::kIrqStorm;
  storm.irq_src = t.storm_src;
  storm.duration = ~Cycle{0} / 2;  // outlives any cycle budget
  hang.plan.events.push_back(storm);
  scenarios.push_back(std::move(hang));

  return scenarios;
}

ScenarioResult FaultCampaign::run_one(const fault::FaultPlan* plan,
                                      const fault::SafetyConfig& safety) const {
  ScenarioResult r;
  soc::SocConfig cfg = config_;
  cfg.safety = safety;
  // The injector must outlive the Soc (its ECC hooks live in the Soc's
  // memory arrays until ~Soc detaches them).
  fault::FaultInjector injector(plan != nullptr ? *plan : fault::FaultPlan{});
  soc::Soc soc(cfg);
  if (Status s = soc.load(workload_.program); !s.is_ok()) {
    r.outcome = FaultOutcome::kHang;  // unloadable = never completes
    return r;
  }
  if (workload_.configure) workload_.configure(soc);
  // Segment the run into task/ISR activations so the campaign can report
  // *where* each fault landed, not just what it did. The DAG rides the
  // frame-observer hook, so attribution is bit-identical with
  // fast-forward on or off and for any --jobs.
  profiling::ExecutionDag dag(isa::SymbolMap(workload_.program));
  const bool attribute = plan != nullptr && !plan->events.empty();
  if (attribute) soc.add_frame_observer(&dag);
  if (plan != nullptr) soc.set_fault_injector(&injector);
  soc.reset(workload_.tc_entry, workload_.pcp_entry);
  r.cycles = soc.run(workload_.max_cycles);
  r.halted = soc.tc().halted();
  if (attribute) {
    Cycle first = ~Cycle{0};
    for (const fault::FaultEvent& ev : plan->events) {
      first = std::min(first, ev.at);
    }
    r.task = dag.task_at(profiling::kDagCoreTc, first);
  }
  for (unsigned k = 0; k < fault::kNumFaultKinds; ++k) {
    r.injected[k] = injector.injected(static_cast<fault::FaultKind>(k));
  }
  for (unsigned k = 0; k < fault::kNumAlarmKinds; ++k) {
    r.alarms[k] = soc.safety().total(static_cast<fault::AlarmKind>(k));
  }
  r.signature = state_signature(soc);
  return r;
}

FaultOutcome FaultCampaign::classify(const ScenarioResult& run,
                                     const ScenarioResult& golden) {
  if (!run.halted) return FaultOutcome::kHang;
  const auto raised = [&](fault::AlarmKind kind) {
    const unsigned k = static_cast<unsigned>(kind);
    return run.alarms[k] > golden.alarms[k];
  };
  if (raised(fault::AlarmKind::kEccUncorrectable) ||
      raised(fault::AlarmKind::kBusError) ||
      raised(fault::AlarmKind::kWatchdogTimeout) ||
      raised(fault::AlarmKind::kCpuTrap)) {
    return FaultOutcome::kDetected;
  }
  if (run.signature != golden.signature) {
    return FaultOutcome::kSilentDataCorruption;
  }
  if (raised(fault::AlarmKind::kEccCorrected)) return FaultOutcome::kCorrected;
  return FaultOutcome::kMasked;
}

CampaignSummary FaultCampaign::run(
    const std::vector<FaultScenario>& scenarios) const {
  CampaignSummary summary;
  // Golden reference under the campaign's base safety config; scenarios
  // only diverge from it via their injected faults (per-scenario safety
  // tweaks like ECC-off change nothing in a fault-free run).
  summary.golden = run_one(nullptr, config_.safety);
  summary.golden.name = "golden";

  host::SimPool pool(jobs_);
  summary.runs = pool.map<ScenarioResult>(
      scenarios.size(), [&](usize i) {
        const FaultScenario& sc = scenarios[i];
        ScenarioResult r = run_one(&sc.plan, sc.safety);
        r.name = sc.name;
        r.seed = sc.seed;
        return r;
      });
  for (ScenarioResult& r : summary.runs) {
    r.outcome = classify(r, summary.golden);
    summary.outcome_counts[static_cast<unsigned>(r.outcome)] += 1;
  }
  return summary;
}

u64 CampaignSummary::classification_hash() const {
  u64 h = kFnvOffset;
  h = fnv1a(h, golden.cycles);
  h = fnv1a(h, golden.signature);
  for (const ScenarioResult& r : runs) {
    h = fnv1a(h, r.name);
    h = fnv1a(h, static_cast<u64>(r.outcome));
    h = fnv1a(h, r.cycles);
    h = fnv1a(h, r.signature);
    h = fnv1a(h, r.task);  // DAG attribution must be jobs/ff-independent
    for (const u64 a : r.alarms) h = fnv1a(h, a);
  }
  return h;
}

void CampaignSummary::fill_report(telemetry::RunReport& report) const {
  std::array<u64, fault::kNumFaultKinds> injected{};
  std::array<u64, fault::kNumAlarmKinds> alarms{};
  for (const ScenarioResult& r : runs) {
    for (unsigned k = 0; k < fault::kNumFaultKinds; ++k) {
      injected[k] += r.injected[k];
    }
    for (unsigned k = 0; k < fault::kNumAlarmKinds; ++k) {
      alarms[k] += r.alarms[k];
    }
  }
  report.add_fault("scenarios", runs.size());
  for (unsigned k = 0; k < fault::kNumFaultKinds; ++k) {
    report.add_fault(
        std::string("injected.") + to_string(static_cast<fault::FaultKind>(k)),
        injected[k]);
  }
  for (unsigned o = 0; o < kNumFaultOutcomes; ++o) {
    report.add_fault(
        std::string("outcome.") + to_string(static_cast<FaultOutcome>(o)),
        outcome_counts[o]);
  }
  for (unsigned k = 0; k < fault::kNumAlarmKinds; ++k) {
    report.add_alarm(to_string(static_cast<fault::AlarmKind>(k)), alarms[k]);
  }
  for (const ScenarioResult& r : runs) {
    report.add_fault_scenario(r.name, to_string(r.outcome), r.cycles, r.task);
  }
}

std::string CampaignSummary::format() const {
  std::ostringstream out;
  out << "golden: " << golden.cycles << " cycles, signature 0x" << std::hex
      << golden.signature << std::dec << "\n";
  for (const ScenarioResult& r : runs) {
    out << "  " << r.name << ": " << to_string(r.outcome) << " (" << r.cycles
        << " cycles";
    u64 alarm_total = 0;
    for (const u64 a : r.alarms) alarm_total += a;
    if (alarm_total > 0) out << ", " << alarm_total << " alarms";
    if (!r.task.empty()) out << ", in " << r.task;
    out << ")\n";
  }
  out << "outcomes:";
  for (unsigned o = 0; o < kNumFaultOutcomes; ++o) {
    out << " " << to_string(static_cast<FaultOutcome>(o)) << "="
        << outcome_counts[o];
  }
  out << "\n";
  return out.str();
}

}  // namespace audo::optimize
