#include "optimize/fault_campaign.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>
#include <thread>

#include "common/bits.hpp"
#include "fault/safety_monitor.hpp"
#include "host/sim_pool.hpp"
#include "mem/memory_map.hpp"
#include "periph/sfr_bridge.hpp"
#include "profiling/dag.hpp"
#include "soc/soc.hpp"
#include "telemetry/run_report.hpp"

namespace audo::optimize {

const char* to_string(FaultOutcome outcome) {
  switch (outcome) {
    case FaultOutcome::kMasked: return "masked";
    case FaultOutcome::kCorrected: return "corrected";
    case FaultOutcome::kDetected: return "detected";
    case FaultOutcome::kSilentDataCorruption: return "sdc";
    case FaultOutcome::kHang: return "hang";
    case FaultOutcome::kFailed: return "failed";
    case FaultOutcome::kCount: break;
  }
  return "?";
}

bool outcome_from_string(std::string_view name, FaultOutcome* out) {
  for (unsigned o = 0; o < kNumFaultOutcomes; ++o) {
    const auto outcome = static_cast<FaultOutcome>(o);
    if (name == to_string(outcome)) {
      *out = outcome;
      return true;
    }
  }
  return false;
}

host::ScenarioRecord to_manifest_record(const ScenarioResult& r) {
  host::ScenarioRecord rec;
  rec.name = r.name;
  rec.seed = r.seed;
  rec.outcome = to_string(r.outcome);
  rec.cycles = r.cycles;
  rec.halted = r.halted;
  rec.signature = r.signature;
  rec.task = r.task;
  rec.injected.assign(r.injected.begin(), r.injected.end());
  rec.alarms.assign(r.alarms.begin(), r.alarms.end());
  rec.budget_cycles = r.budget_cycles;
  rec.timeout_ms = r.timeout_ms;
  rec.attempts = r.attempts;
  return rec;
}

ScenarioResult from_manifest_record(const host::ScenarioRecord& rec) {
  ScenarioResult r;
  r.name = rec.name;
  r.seed = rec.seed;
  (void)outcome_from_string(rec.outcome, &r.outcome);
  r.failed = r.outcome == FaultOutcome::kFailed;
  r.cycles = rec.cycles;
  r.halted = rec.halted;
  r.signature = rec.signature;
  r.task = rec.task;
  for (usize k = 0; k < r.injected.size() && k < rec.injected.size(); ++k) {
    r.injected[k] = rec.injected[k];
  }
  for (usize k = 0; k < r.alarms.size() && k < rec.alarms.size(); ++k) {
    r.alarms[k] = rec.alarms[k];
  }
  r.budget_cycles = rec.budget_cycles;
  r.timeout_ms = rec.timeout_ms;
  r.attempts = rec.attempts;
  r.from_manifest = true;
  return r;
}

namespace {

/// Digest of the architecturally-visible end state: TC register files
/// plus the DSPR image, read through peek() so inspection cannot consume
/// pending ECC fault records.
u64 state_signature(soc::Soc& soc) {
  u64 h = kFnvOffset;
  for (unsigned i = 0; i < 16; ++i) {
    h = fnv1a(h, u64{soc.tc().d(i)});
    h = fnv1a(h, u64{soc.tc().a(i)});
  }
  const mem::MemArray& dspr = soc.dspr().array();
  for (usize off = 0; off + 4 <= dspr.size(); off += 4) {
    h = fnv1a(h, u64{dspr.peek(off, 4)});
  }
  return h;
}

/// Cycle of the plan's earliest event (~0 when there is none) — the warm
/// fork point must lie strictly before it so every event still fires.
Cycle first_event_cycle(const fault::FaultPlan* plan) {
  Cycle first = ~Cycle{0};
  if (plan != nullptr) {
    for (const fault::FaultEvent& ev : plan->events) {
      first = std::min(first, ev.at);
    }
  }
  return first;
}

/// Wall-clock granularity: how many cycles run between deadline checks
/// when a scenario timeout is armed. Chunk boundaries only repartition
/// fast-forward budget wakes; cycles, signatures and classification are
/// untouched.
constexpr u64 kTimeoutCheckChunk = 1u << 20;

/// Boot-probe bound for prepare_warm_fork (same spirit as the
/// evaluator's: workloads still busy after this many cycles boot cold).
constexpr Cycle kBootProbeLimit = 65'536;

}  // namespace

FaultCampaign::FaultCampaign(soc::SocConfig config, WorkloadCase workload)
    : config_(std::move(config)), workload_(std::move(workload)) {}

fault::PlanSpec FaultCampaign::plan_spec() const {
  fault::PlanSpec spec;
  spec.flash_bytes = config_.pflash.size;
  spec.dspr_bytes = config_.dspr_bytes;
  spec.pspr_bytes = config_.pspr_bytes;
  spec.lmu_bytes = config_.lmu_bytes;
  // Live flash footprint: highest byte the program image places there.
  u32 image_end = 0;
  for (const isa::Section& sec : workload_.program.sections()) {
    if (!mem::is_pflash(sec.base, config_.pflash.size)) continue;
    const u32 end = mem::pflash_offset(sec.base) +
                    static_cast<u32>(sec.bytes.size());
    image_end = std::max(image_end, end);
  }
  spec.flash_image_bytes = image_end;
  // Shape of the constructed platform (slave indices, SRC ids, SFR map)
  // is fixed by Soc's construction order; probe one instance for it.
  soc::Soc probe(config_);
  spec.slave_count = probe.sri().slave_count();
  spec.irq_srcs = {probe.srcs().adc_done, probe.srcs().can_rx,
                   probe.srcs().stm0};
  using namespace periph::sfr;
  spec.sfr_offsets = {kAdc + 0x00, kCrank + 0x00, kCrank + 0x04,
                      kCan + 0x00, kStm + 0x00};
  spec.window_begin = 1'000;
  const u64 budget = workload_.max_cycles == 0
                         ? soc::Soc::kDefaultRunBudget
                         : workload_.max_cycles;
  spec.window_end = std::max<Cycle>(spec.window_begin + 1, budget / 2);
  spec.events_min = 1;
  spec.events_max = 3;
  return spec;
}

std::vector<FaultScenario> FaultCampaign::make_scenarios(
    u64 seed, unsigned count) const {
  const fault::PlanSpec spec = plan_spec();
  std::vector<FaultScenario> scenarios;
  scenarios.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    FaultScenario sc;
    sc.seed = fnv1a(fnv1a(kFnvOffset, seed), u64{i});
    sc.name = "rand-" + std::to_string(i);
    sc.plan = fault::generate_plan(sc.seed, spec);
    sc.safety = config_.safety;
    scenarios.push_back(std::move(sc));
  }
  return scenarios;
}

std::vector<FaultScenario> FaultCampaign::make_demo_scenarios(
    const DemoTargets& t) const {
  std::vector<FaultScenario> scenarios;
  auto flip = [&](u32 offset, u8 bits) {
    fault::FaultEvent ev;
    ev.at = t.at;
    ev.kind = fault::FaultKind::kMemFlip;
    ev.domain = fault::MemDomain::kPFlash;
    ev.offset = offset;
    ev.bits = bits;
    return ev;
  };

  FaultScenario masked;
  masked.name = "demo-masked";
  masked.safety = config_.safety;
  masked.plan.events.push_back(flip(t.dead_flash_offset, 1));
  scenarios.push_back(std::move(masked));

  FaultScenario corrected;
  corrected.name = "demo-corrected";
  corrected.safety = config_.safety;
  corrected.plan.events.push_back(flip(t.hot_flash_offset, 1));
  scenarios.push_back(std::move(corrected));

  FaultScenario detected;
  detected.name = "demo-detected";
  detected.safety = config_.safety;
  detected.plan.events.push_back(flip(t.hot_flash_offset, 2));
  scenarios.push_back(std::move(detected));

  FaultScenario sdc;
  sdc.name = "demo-sdc";
  sdc.safety = config_.safety;
  sdc.safety.ecc_sram = false;  // unprotected RAM: the flip is silent
  fault::FaultEvent ram = flip(t.live_dspr_offset, 1);
  ram.domain = fault::MemDomain::kDspr;
  sdc.plan.events.push_back(ram);
  scenarios.push_back(std::move(sdc));

  FaultScenario hang;
  hang.name = "demo-hang";
  hang.safety = config_.safety;
  fault::FaultEvent storm;
  storm.at = t.at;
  storm.kind = fault::FaultKind::kIrqStorm;
  storm.irq_src = t.storm_src;
  storm.duration = ~Cycle{0} / 2;  // outlives any cycle budget
  hang.plan.events.push_back(storm);
  scenarios.push_back(std::move(hang));

  return scenarios;
}

u64 FaultCampaign::budget_cycles() const {
  const u64 budget = workload_.max_cycles == 0 ? soc::Soc::kDefaultRunBudget
                                               : workload_.max_cycles;
  return std::min<u64>(budget, soc::Soc::kDefaultRunBudget);
}

u64 FaultCampaign::prepare_warm_fork(
    const std::vector<FaultScenario>& scenarios) {
  boot_ = soc::Snapshot{};
  Cycle earliest = ~Cycle{0};
  for (const FaultScenario& sc : scenarios) {
    earliest = std::min(earliest, first_event_cycle(&sc.plan));
  }
  if (earliest == 0) return 0;
  const Cycle limit = std::min<Cycle>(
      {earliest - 1, budget_cycles() / 2, kBootProbeLimit});
  if (limit == 0) return 0;

  const auto boot = [&](soc::Soc& soc) {
    if (!soc.load(workload_.program).is_ok()) return false;
    if (workload_.configure) workload_.configure(soc);
    soc.reset(workload_.tc_entry, workload_.pcp_entry);
    return true;
  };

  // Pass 1: find the last quiescent cycle before `limit` (maximizing the
  // boot prefix every fork skips).
  soc::Soc probe(config_);
  if (!boot(probe)) return 0;
  Cycle last_q = 0;
  while (probe.cycle() < limit && !probe.tc().halted()) {
    probe.step();
    if (probe.quiescent()) last_q = probe.cycle();
  }
  if (last_q == 0) return 0;

  // Pass 2: re-boot a fresh machine to exactly that cycle and capture.
  soc::Soc warm(config_);
  if (!boot(warm)) return 0;
  while (warm.cycle() < last_q && !warm.tc().halted()) warm.step();
  if (warm.cycle() != last_q || !warm.quiescent()) return 0;
  Result<soc::Snapshot> snap = warm.save_snapshot();
  if (!snap.is_ok()) return 0;
  boot_ = std::move(snap).value();
  return boot_.checksum();
}

ScenarioResult FaultCampaign::run_one_with_retries(
    const fault::FaultPlan* plan, const fault::SafetyConfig& safety,
    const soc::Snapshot* boot) const {
  for (unsigned attempt = 1; attempt <= retries_ + 1; ++attempt) {
    try {
      ScenarioResult r = run_one(plan, safety, boot);
      r.attempts = attempt;
      return r;
    } catch (const std::exception&) {
      // Host-side failure (allocation, internal error) — not a
      // simulation outcome. Back off and retry; the simulation itself
      // is deterministic, so a retry only helps for transient host
      // conditions, which is exactly what this policy is for.
      if (attempt <= retries_) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(u64{10} << (attempt - 1)));
      }
    }
  }
  ScenarioResult r;
  r.failed = true;
  r.outcome = FaultOutcome::kFailed;
  r.attempts = retries_ + 1;
  r.budget_cycles = budget_cycles();
  r.timeout_ms = timeout_ms_;
  return r;
}

ScenarioResult FaultCampaign::run_one(const fault::FaultPlan* plan,
                                      const fault::SafetyConfig& safety,
                                      const soc::Snapshot* boot) const {
  ScenarioResult r;
  r.budget_cycles = budget_cycles();
  r.timeout_ms = timeout_ms_;
  soc::SocConfig cfg = config_;
  cfg.safety = safety;
  // The injector must outlive the Soc (its ECC hooks live in the Soc's
  // memory arrays until ~Soc detaches them).
  fault::FaultInjector injector(plan != nullptr ? *plan : fault::FaultPlan{});
  soc::Soc soc(cfg);
  if (Status s = soc.load(workload_.program); !s.is_ok()) {
    r.outcome = FaultOutcome::kHang;  // unloadable = never completes
    return r;
  }
  if (workload_.configure) workload_.configure(soc);
  // Segment the run into task/ISR activations so the campaign can report
  // *where* each fault landed, not just what it did. The DAG rides the
  // frame-observer hook, so attribution is bit-identical with
  // fast-forward on or off and for any --jobs.
  profiling::ExecutionDag dag(isa::SymbolMap(workload_.program));
  const bool attribute = plan != nullptr && !plan->events.empty();
  if (attribute) soc.add_frame_observer(&dag);
  if (plan != nullptr) soc.set_fault_injector(&injector);
  soc.reset(workload_.tc_entry, workload_.pcp_entry);

  // Warm fork: restore the shared boot image instead of replaying the
  // boot prefix. Scenarios whose first event falls inside that prefix
  // boot cold (the event must still fire); a restore failure also falls
  // back to cold, since correctness never depends on the fork.
  if (boot != nullptr && boot->cycle < first_event_cycle(plan) &&
      boot->cycle < r.budget_cycles) {
    if (!soc.restore_snapshot(*boot).is_ok()) {
      return run_one(plan, safety, nullptr);
    }
  }

  if (timeout_ms_ == 0) {
    if (soc.cycle() < r.budget_cycles) {
      soc.run(r.budget_cycles - soc.cycle());
    }
  } else {
    // Chunked run so the wall clock is checked at bounded intervals.
    // Chunk boundaries are invisible to the simulation (fast-forward
    // resumes exactly where it stopped).
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms_);
    while (soc.cycle() < r.budget_cycles && !soc.tc().halted()) {
      const u64 chunk =
          std::min<u64>(r.budget_cycles - soc.cycle(), kTimeoutCheckChunk);
      const u64 stepped = soc.run(chunk);
      if (std::chrono::steady_clock::now() >= deadline) {
        r.timed_out = !soc.tc().halted();
        break;
      }
      if (stepped < chunk) break;  // halted or idle deadlock
    }
  }
  r.cycles = soc.cycle();
  r.halted = soc.tc().halted();
  if (attribute) {
    Cycle first = ~Cycle{0};
    for (const fault::FaultEvent& ev : plan->events) {
      first = std::min(first, ev.at);
    }
    r.task = dag.task_at(profiling::kDagCoreTc, first);
  }
  for (unsigned k = 0; k < fault::kNumFaultKinds; ++k) {
    r.injected[k] = injector.injected(static_cast<fault::FaultKind>(k));
  }
  for (unsigned k = 0; k < fault::kNumAlarmKinds; ++k) {
    r.alarms[k] = soc.safety().total(static_cast<fault::AlarmKind>(k));
  }
  r.signature = state_signature(soc);
  return r;
}

FaultOutcome FaultCampaign::classify(const ScenarioResult& run,
                                     const ScenarioResult& golden) {
  if (!run.halted) return FaultOutcome::kHang;
  const auto raised = [&](fault::AlarmKind kind) {
    const unsigned k = static_cast<unsigned>(kind);
    return run.alarms[k] > golden.alarms[k];
  };
  if (raised(fault::AlarmKind::kEccUncorrectable) ||
      raised(fault::AlarmKind::kBusError) ||
      raised(fault::AlarmKind::kWatchdogTimeout) ||
      raised(fault::AlarmKind::kCpuTrap)) {
    return FaultOutcome::kDetected;
  }
  if (run.signature != golden.signature) {
    return FaultOutcome::kSilentDataCorruption;
  }
  if (raised(fault::AlarmKind::kEccCorrected)) return FaultOutcome::kCorrected;
  return FaultOutcome::kMasked;
}

CampaignSummary FaultCampaign::run(
    const std::vector<FaultScenario>& scenarios) const {
  CampaignSummary summary;
  const soc::Snapshot* boot = has_warm_fork() ? &boot_ : nullptr;
  // Golden reference under the campaign's base safety config; scenarios
  // only diverge from it via their injected faults (per-scenario safety
  // tweaks like ECC-off change nothing in a fault-free run).
  summary.golden = run_one_with_retries(nullptr, config_.safety, boot);
  summary.golden.name = "golden";

  // Resume index: journaled results from a previous (interrupted)
  // campaign, replayed instead of re-simulated.
  std::map<std::pair<std::string, u64>, const host::ScenarioRecord*> done;
  if (resume_ != nullptr) {
    for (const host::ScenarioRecord& rec : *resume_) {
      done[{rec.name, rec.seed}] = &rec;
    }
  }

  host::SimPool pool(jobs_);
  std::vector<ScenarioResult> runs = pool.map<ScenarioResult>(
      scenarios.size(), [&](usize i) {
        const FaultScenario& sc = scenarios[i];
        if (auto it = done.find({sc.name, sc.seed}); it != done.end()) {
          return from_manifest_record(*it->second);
        }
        if (abort_ != nullptr && abort_->load()) {
          ScenarioResult r;
          r.name = sc.name;
          r.seed = sc.seed;
          r.aborted = true;
          return r;
        }
        ScenarioResult r = run_one_with_retries(&sc.plan, sc.safety, boot);
        r.name = sc.name;
        r.seed = sc.seed;
        // Classify in the worker so the journal records the final
        // outcome — resumes then replay it verbatim.
        if (!r.failed) r.outcome = classify(r, summary.golden);
        if (manifest_ != nullptr) {
          (void)manifest_->append(to_manifest_record(r));
        }
        return r;
      });

  // Results stay in submission order (SimPool contract), so the merged
  // summary — and classification_hash — is identical no matter which
  // scenarios came from the journal and which ran fresh. Aborted
  // placeholders are dropped: they represent work not done.
  for (ScenarioResult& r : runs) {
    if (r.aborted) continue;
    summary.outcome_counts[static_cast<unsigned>(r.outcome)] += 1;
    summary.runs.push_back(std::move(r));
  }
  return summary;
}

u64 CampaignSummary::classification_hash() const {
  u64 h = kFnvOffset;
  h = fnv1a(h, golden.cycles);
  h = fnv1a(h, golden.signature);
  for (const ScenarioResult& r : runs) {
    h = fnv1a(h, r.name);
    h = fnv1a(h, static_cast<u64>(r.outcome));
    h = fnv1a(h, r.cycles);
    h = fnv1a(h, r.signature);
    h = fnv1a(h, r.task);  // DAG attribution must be jobs/ff-independent
    for (const u64 a : r.alarms) h = fnv1a(h, a);
  }
  return h;
}

void CampaignSummary::fill_report(telemetry::RunReport& report) const {
  std::array<u64, fault::kNumFaultKinds> injected{};
  std::array<u64, fault::kNumAlarmKinds> alarms{};
  for (const ScenarioResult& r : runs) {
    for (unsigned k = 0; k < fault::kNumFaultKinds; ++k) {
      injected[k] += r.injected[k];
    }
    for (unsigned k = 0; k < fault::kNumAlarmKinds; ++k) {
      alarms[k] += r.alarms[k];
    }
  }
  report.add_fault("scenarios", runs.size());
  for (unsigned k = 0; k < fault::kNumFaultKinds; ++k) {
    report.add_fault(
        std::string("injected.") + to_string(static_cast<fault::FaultKind>(k)),
        injected[k]);
  }
  for (unsigned o = 0; o < kNumFaultOutcomes; ++o) {
    report.add_fault(
        std::string("outcome.") + to_string(static_cast<FaultOutcome>(o)),
        outcome_counts[o]);
  }
  for (unsigned k = 0; k < fault::kNumAlarmKinds; ++k) {
    report.add_alarm(to_string(static_cast<fault::AlarmKind>(k)), alarms[k]);
  }
  for (const ScenarioResult& r : runs) {
    report.add_fault_scenario(r.name, to_string(r.outcome), r.cycles, r.task,
                              r.budget_cycles, r.timeout_ms, r.attempts);
  }
}

std::string CampaignSummary::format() const {
  std::ostringstream out;
  out << "golden: " << golden.cycles << " cycles, signature 0x" << std::hex
      << golden.signature << std::dec << "\n";
  for (const ScenarioResult& r : runs) {
    out << "  " << r.name << ": " << to_string(r.outcome) << " (" << r.cycles
        << " cycles";
    u64 alarm_total = 0;
    for (const u64 a : r.alarms) alarm_total += a;
    if (alarm_total > 0) out << ", " << alarm_total << " alarms";
    if (!r.task.empty()) out << ", in " << r.task;
    out << ")\n";
  }
  out << "outcomes:";
  for (unsigned o = 0; o < kNumFaultOutcomes; ++o) {
    out << " " << to_string(static_cast<FaultOutcome>(o)) << "="
        << outcome_counts[o];
  }
  out << "\n";
  return out.str();
}

}  // namespace audo::optimize
