// Area/cost model for architecture options.
//
// The paper's decision rule (§6) is a performance-gain / cost ratio; any
// consistent cost model exercises it. Costs are in abstract "area units"
// (au), calibrated loosely to a 130 nm automotive process: 1 KiB of SRAM
// ~ 25 au, embedded flash ~ 6 au/KiB, a small RISC core ~ 800 au.
#pragma once

#include "soc/soc_config.hpp"

namespace audo::optimize {

struct CostModel {
  double sram_au_per_kib = 25.0;
  double cache_tag_au_per_kib = 30.0;  // tag/status arrays (denser ports)
  double cache_control_au = 10.0;      // per cache, plus per-way adders
  double cache_way_au = 4.0;
  double flash_au_per_kib = 6.0;
  double flash_buffer_au = 3.0;        // per 256-bit line buffer
  /// Removing one flash wait state (faster sense amps / more banks).
  double flash_waitstate_au = 40.0;
  double pcp_core_au = 800.0;
  double dma_channel_au = 15.0;
  double bus_rr_arbiter_au = 5.0;      // round-robin fairness logic
  double lmu_fast_au = 60.0;           // 1-cycle LMU timing closure cost

  /// Reference wait-state count that the flash macro gives "for free".
  unsigned flash_reference_waitstates = 5;

  double cache_area(const cache::CacheConfig& cache) const;
  double soc_area(const soc::SocConfig& config) const;
};

}  // namespace audo::optimize
