// Area/cost model for architecture options.
//
// The paper's decision rule (§6) is a performance-gain / cost ratio; any
// consistent cost model exercises it. Costs are in abstract "area units"
// (au), calibrated loosely to a 130 nm automotive process: 1 KiB of SRAM
// ~ 25 au, embedded flash ~ 6 au/KiB, a small RISC core ~ 800 au.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "soc/soc_config.hpp"

namespace audo::profiling {
struct DagAnalysis;
}

namespace audo::optimize {

/// Measured bus contention, harvested from a run's master×slave
/// interference matrix (bus::Crossbar::interference): blocked
/// master-cycles per slave, normalised by the run length. This is the
/// measured input to the §6 decision rule — instead of guessing which
/// arbitration/port option might pay off, the evaluator bounds the gain
/// with data from the profiled run.
struct MeasuredContention {
  u64 run_cycles = 0;
  u64 blocked_cycles_total = 0;
  /// Slave name -> blocked master-cycles summed over all (waiter,
  /// holder) pairs; only contended slaves appear.
  std::vector<std::pair<std::string, u64>> per_slave;

  /// Snapshot a fabric's interference matrix after a run.
  static MeasuredContention from_fabric(const bus::Crossbar& fabric,
                                        u64 run_cycles);

  /// Fraction of run cycles some master spent blocked (can exceed 1.0
  /// when several masters are blocked in the same cycle).
  double blocked_fraction() const {
    return run_cycles == 0 ? 0.0
                           : static_cast<double>(blocked_cycles_total) /
                                 static_cast<double>(run_cycles);
  }
};

/// Measured per-task optimization headroom, harvested from an execution
/// DAG's per-task slack (profiling::ExecutionDag). Slack bounds how many
/// cycles a task could *grow* before it joins the critical path; its
/// dual bounds what shrinking a task can buy: speeding up work that is
/// not on the critical path moves the end-to-end finish time by nothing,
/// so only critical-path cycles count toward the §6 gain numerator.
struct MeasuredSlack {
  u64 run_cycles = 0;
  u64 critical_path_cycles = 0;
  /// Task name -> (cycles, slack). Only non-idle tasks appear.
  struct TaskSlack {
    std::string task;
    u64 cycles = 0;
    u64 slack = 0;
  };
  std::vector<TaskSlack> tasks;

  const TaskSlack* find(std::string_view task) const {
    for (const TaskSlack& t : tasks) {
      if (t.task == task) return &t;
    }
    return nullptr;
  }
};

/// Harvest per-task slack from a finished execution-DAG analysis
/// (idle windows are skipped — they are headroom, not work).
MeasuredSlack measured_slack_from_dag(const profiling::DagAnalysis& dag);

struct CostModel {
  double sram_au_per_kib = 25.0;
  double cache_tag_au_per_kib = 30.0;  // tag/status arrays (denser ports)
  double cache_control_au = 10.0;      // per cache, plus per-way adders
  double cache_way_au = 4.0;
  double flash_au_per_kib = 6.0;
  double flash_buffer_au = 3.0;        // per 256-bit line buffer
  /// Removing one flash wait state (faster sense amps / more banks).
  double flash_waitstate_au = 40.0;
  double pcp_core_au = 800.0;
  double dma_channel_au = 15.0;
  double bus_rr_arbiter_au = 5.0;      // round-robin fairness logic
  double lmu_fast_au = 60.0;           // 1-cycle LMU timing closure cost

  /// Reference wait-state count that the flash macro gives "for free".
  unsigned flash_reference_waitstates = 5;

  double cache_area(const cache::CacheConfig& cache) const;
  double soc_area(const soc::SocConfig& config) const;

  /// Amdahl bound on the speedup from eliminating the measured bus
  /// contention entirely (every blocked master-cycle recovered). The
  /// realistic ceiling for fabric options — arbitration policy, extra
  /// flash ports — before re-simulating them.
  double contention_speedup_bound(const MeasuredContention& m) const;

  /// Gain/cost ratio of a fabric option from measured contention:
  /// percent of the contention bound realised per 100 au, assuming the
  /// option recovers `recovered_fraction` of blocked cycles. Zero-cost
  /// options are capped like ArchitectureEvaluator rankings.
  double contention_gain_per_cost(const MeasuredContention& m,
                                  double recovered_fraction,
                                  double area_delta_au) const;

  /// Amdahl bound on the end-to-end speedup from accelerating `task`
  /// alone, honouring its DAG slack: only the task's critical-path
  /// share (cycles beyond its slack) shortens the run, so a task with
  /// slack >= cycles bounds at exactly 1.0 — the optimizer must not
  /// chase off-critical-path work.
  double task_speedup_bound(const MeasuredSlack& m,
                            std::string_view task) const;
};

}  // namespace audo::optimize
