// Deterministic PRNG for workload generation and property tests.
//
// xoshiro256** — fast, high quality, and — critically for this project —
// fully deterministic across platforms so that cycle-count assertions in
// tests are stable.
#pragma once

#include <cassert>

#include "common/types.hpp"

namespace audo {

class Prng {
 public:
  explicit Prng(u64 seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    u64 x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  u64 next_u64() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  u32 next_u32() { return static_cast<u32>(next_u64() >> 32); }

  /// Uniform in [0, bound). bound must be > 0.
  u64 next_below(u64 bound) {
    assert(bound > 0);
    // Rejection-free Lemire reduction is overkill here; modulo bias is
    // negligible for simulation workloads but we keep determinism exact.
    return next_u64() % bound;
  }

  /// Uniform in [lo, hi] inclusive.
  i64 next_range(i64 lo, i64 hi) {
    assert(lo <= hi);
    return lo + static_cast<i64>(next_below(static_cast<u64>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  bool chance(double p) { return next_double() < p; }

  /// Snapshot support: the raw xoshiro state words. Restoring them
  /// reproduces the exact continuation of the saved sequence.
  static constexpr unsigned kStateWords = 4;
  u64 state_word(unsigned i) const {
    assert(i < kStateWords);
    return state_[i];
  }
  void set_state_word(unsigned i, u64 v) {
    assert(i < kStateWords);
    state_[i] = v;
  }

 private:
  static constexpr u64 rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  u64 state_[4];
};

}  // namespace audo
