// Binary state-serialization primitives for Soc snapshots.
//
// Writer/Reader implement a little-endian byte stream with nestable,
// length-prefixed sections. They live in common (not soc) so every
// component library — memories, caches, bus, peripherals, MCDS — can
// implement save_state()/restore_state() against them without a layering
// inversion; the versioned, checksummed container that frames a complete
// image is soc::Snapshot (src/soc/snapshot.hpp).
//
// The Reader is failure-latching: the first malformed read (overrun,
// section-tag mismatch, section overflow) records a Status and every
// subsequent get_* returns zero. restore_state() implementations can
// therefore read unconditionally; the orchestrator checks status() once
// at the end. Partial restores are prevented one level up: the container
// validates magic, version and checksum before any component is touched.
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace audo::snapshot {

class Writer {
 public:
  void put_u8(u8 v) { buf_.push_back(v); }
  void put_u16(u16 v) { append(&v, sizeof v); }
  void put_u32(u32 v) { append(&v, sizeof v); }
  void put_u64(u64 v) { append(&v, sizeof v); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  void put_bytes(const u8* data, usize count) {
    put_u64(count);
    buf_.insert(buf_.end(), data, data + count);
  }
  void put_bytes(const std::vector<u8>& data) {
    put_bytes(data.data(), data.size());
  }
  void put_string(std::string_view s) {
    put_bytes(reinterpret_cast<const u8*>(s.data()), s.size());
  }

  /// Open a tagged section; its byte length is patched in by the matching
  /// end_section(), so readers can verify framing (and future versions
  /// can skip sections they do not understand).
  void begin_section(u32 tag) {
    put_u32(tag);
    section_starts_.push_back(buf_.size());
    put_u64(0);  // length placeholder
  }

  void end_section() {
    const usize start = section_starts_.back();
    section_starts_.pop_back();
    const u64 length = buf_.size() - start - sizeof(u64);
    std::memcpy(buf_.data() + start, &length, sizeof length);
  }

  const std::vector<u8>& bytes() const { return buf_; }
  std::vector<u8> take() { return std::move(buf_); }

 private:
  void append(const void* data, usize count) {
    const auto* p = static_cast<const u8*>(data);
    buf_.insert(buf_.end(), p, p + count);
  }

  std::vector<u8> buf_;
  std::vector<usize> section_starts_;
};

class Reader {
 public:
  Reader(const u8* data, usize size) : data_(data), size_(size) {}
  explicit Reader(const std::vector<u8>& data)
      : Reader(data.data(), data.size()) {}

  u8 get_u8() { return get<u8>(); }
  u16 get_u16() { return get<u16>(); }
  u32 get_u32() { return get<u32>(); }
  u64 get_u64() { return get<u64>(); }
  bool get_bool() { return get_u8() != 0; }

  std::vector<u8> get_bytes() {
    const u64 count = get_u64();
    if (!check(count)) return {};
    std::vector<u8> out(data_ + pos_, data_ + pos_ + count);
    pos_ += count;
    return out;
  }

  /// Fixed-size read into caller storage; fails if the stored length
  /// differs from `count` (a shape mismatch, not just corruption).
  void get_bytes_into(u8* out, usize count) {
    const u64 stored = get_u64();
    if (ok() && stored != count) {
      fail("byte-block length mismatch: stored " + std::to_string(stored) +
           ", expected " + std::to_string(count));
    }
    if (!check(count)) return;
    std::memcpy(out, data_ + pos_, count);
    pos_ += count;
  }

  std::string get_string() {
    const std::vector<u8> raw = get_bytes();
    return std::string(raw.begin(), raw.end());
  }

  /// Consume a section header and verify its tag; the section length must
  /// fit in the remaining stream. leave_section() verifies the cursor
  /// landed exactly on the recorded end.
  void enter_section(u32 tag) {
    const u32 found = get_u32();
    if (ok() && found != tag) {
      fail("section tag mismatch: expected " + std::to_string(tag) +
           ", found " + std::to_string(found));
    }
    const u64 length = get_u64();
    if (!check(length)) return;
    section_ends_.push_back(pos_ + length);
  }

  void leave_section() {
    if (!ok()) return;
    if (section_ends_.empty()) {
      fail("leave_section with no open section");
      return;
    }
    const usize end = section_ends_.back();
    section_ends_.pop_back();
    if (pos_ != end) {
      fail("section length mismatch: cursor " + std::to_string(pos_) +
           ", recorded end " + std::to_string(end));
    }
  }

  bool ok() const { return status_.is_ok(); }
  const Status& status() const { return status_; }

  void fail(std::string message) {
    if (status_.is_ok()) {
      status_ = error(StatusCode::kDecodeError, std::move(message));
    }
  }

  /// All bytes consumed (and no failure latched).
  bool at_end() const { return ok() && pos_ == size_; }

 private:
  template <typename T>
  T get() {
    if (!check(sizeof(T))) return T{};
    T v{};
    std::memcpy(&v, data_ + pos_, sizeof v);
    pos_ += sizeof v;
    return v;
  }

  bool check(u64 count) {
    if (!ok()) return false;
    if (count > size_ - pos_) {
      fail("truncated stream: need " + std::to_string(count) + " bytes at " +
           std::to_string(pos_) + " of " + std::to_string(size_));
      return false;
    }
    if (!section_ends_.empty() && pos_ + count > section_ends_.back()) {
      fail("read crosses section boundary at " + std::to_string(pos_));
      return false;
    }
    return true;
  }

  const u8* data_;
  usize size_;
  usize pos_ = 0;
  std::vector<usize> section_ends_;
  Status status_;
};

}  // namespace audo::snapshot
