// Bit-manipulation helpers used by the ISA encoder/decoder, cache indexing
// and the trace-message bit packer.
#pragma once

#include <bit>
#include <cassert>
#include <string_view>

#include "common/types.hpp"

namespace audo {

/// Extract `count` bits of `value` starting at bit `lsb` (0 = least
/// significant). count must be 1..32 for 32-bit, 1..64 for 64-bit values.
constexpr u32 bits(u32 value, unsigned lsb, unsigned count) {
  assert(lsb < 32 && count >= 1 && lsb + count <= 32);
  const u32 mask = (count == 32) ? ~u32{0} : ((u32{1} << count) - 1);
  return (value >> lsb) & mask;
}

constexpr u64 bits64(u64 value, unsigned lsb, unsigned count) {
  assert(lsb < 64 && count >= 1 && lsb + count <= 64);
  const u64 mask = (count == 64) ? ~u64{0} : ((u64{1} << count) - 1);
  return (value >> lsb) & mask;
}

/// Insert `count` bits of `field` into `target` at bit `lsb`.
constexpr u32 insert_bits(u32 target, unsigned lsb, unsigned count, u32 field) {
  assert(lsb < 32 && count >= 1 && lsb + count <= 32);
  const u32 mask = (count == 32) ? ~u32{0} : ((u32{1} << count) - 1);
  assert((field & ~mask) == 0 && "field does not fit");
  return (target & ~(mask << lsb)) | ((field & mask) << lsb);
}

/// Sign-extend the low `count` bits of `value` to 32 bits.
constexpr i32 sign_extend(u32 value, unsigned count) {
  assert(count >= 1 && count <= 32);
  const unsigned shift = 32 - count;
  return static_cast<i32>(value << shift) >> shift;
}

constexpr bool is_pow2(u64 v) { return v != 0 && (v & (v - 1)) == 0; }

/// log2 of a power of two.
constexpr unsigned log2_exact(u64 v) {
  assert(is_pow2(v));
  return static_cast<unsigned>(std::countr_zero(v));
}

/// Number of bits needed to represent `v` (0 -> 0 bits).
constexpr unsigned bit_width(u64 v) {
  return static_cast<unsigned>(std::bit_width(v));
}

/// Round `v` up to a multiple of `align` (align must be a power of two).
constexpr u64 align_up(u64 v, u64 align) {
  assert(is_pow2(align));
  return (v + align - 1) & ~(align - 1);
}

constexpr bool is_aligned(u64 v, u64 align) {
  assert(is_pow2(align));
  return (v & (align - 1)) == 0;
}

/// Incremental FNV-1a hashing — used for configuration fingerprints in
/// telemetry run reports (stable across runs and platforms).
inline constexpr u64 kFnvOffset = 0xcbf29ce484222325ull;

constexpr u64 fnv1a(u64 hash, u64 value) {
  for (unsigned i = 0; i < 8; ++i) {
    hash ^= (value >> (i * 8)) & 0xff;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

constexpr u64 fnv1a(u64 hash, std::string_view s) {
  for (char c : s) {
    hash ^= static_cast<u8>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace audo
