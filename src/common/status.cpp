#include "common/status.hpp"

namespace audo {

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kParseError: return "PARSE_ERROR";
    case StatusCode::kDecodeError: return "DECODE_ERROR";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out = audo::to_string(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace audo
