#include "common/json.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

namespace audo::json {

std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::separator() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value right after its key: no comma
  }
  if (!wrote_element_.empty()) {
    if (wrote_element_.back()) out_.push_back(',');
    wrote_element_.back() = true;
  }
}

void JsonWriter::begin_object() {
  separator();
  out_.push_back('{');
  wrote_element_.push_back(false);
}

void JsonWriter::end_object() {
  wrote_element_.pop_back();
  out_.push_back('}');
}

void JsonWriter::begin_array() {
  separator();
  out_.push_back('[');
  wrote_element_.push_back(false);
}

void JsonWriter::end_array() {
  wrote_element_.pop_back();
  out_.push_back(']');
}

void JsonWriter::key(std::string_view k) {
  separator();
  out_ += quote(k);
  out_.push_back(':');
  pending_key_ = true;
}

void JsonWriter::value(std::string_view v) {
  separator();
  out_ += quote(v);
}

void JsonWriter::value(bool v) {
  separator();
  out_ += v ? "true" : "false";
}

void JsonWriter::value(double v) {
  separator();
  if (!std::isfinite(v)) {  // JSON has no Inf/NaN; clamp to null
    out_ += "null";
    return;
  }
  std::array<char, 40> buf{};
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  out_.append(buf.data(), res.ptr);
}

void JsonWriter::value(u64 v) {
  separator();
  out_ += std::to_string(v);
}

void JsonWriter::value(i64 v) {
  separator();
  out_ += std::to_string(v);
}

const JsonValue* JsonValue::find(const std::string& k) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(k);
  return it == object.end() ? nullptr : &it->second;
}

u64 JsonValue::as_u64() const {
  if (kind != Kind::kNumber) return 0;
  // Re-parse plain unsigned integer literals exactly; anything with a
  // sign, fraction or exponent goes through the double representation.
  if (!number_literal.empty() &&
      number_literal.find_first_not_of("0123456789") == std::string::npos) {
    u64 v = 0;
    const auto res = std::from_chars(
        number_literal.data(), number_literal.data() + number_literal.size(),
        v);
    if (res.ec == std::errc{} &&
        res.ptr == number_literal.data() + number_literal.size()) {
      return v;
    }
  }
  return static_cast<u64>(number);
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> run() {
    JsonValue v;
    if (Status s = parse_value(v); !s.is_ok()) return s;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status fail(const std::string& what) const {
    return error(StatusCode::kParseError,
                 what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      }
      case 't':
      case 'f': return parse_keyword(out);
      case 'n': return parse_keyword(out);
      default: return parse_number(out);
    }
  }

  Status parse_keyword(JsonValue& out) {
    auto match = [&](std::string_view kw) {
      return text_.substr(pos_, kw.size()) == kw;
    };
    if (match("true")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      pos_ += 4;
      return Status::ok();
    }
    if (match("false")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      pos_ += 5;
      return Status::ok();
    }
    if (match("null")) {
      out.kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return Status::ok();
    }
    return fail("invalid keyword");
  }

  Status parse_number(JsonValue& out) {
    const usize start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("invalid value");
    double v = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (res.ec != std::errc{} || res.ptr != text_.data() + pos_) {
      return fail("invalid number");
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = v;
    out.number_literal.assign(text_.data() + start, pos_ - start);
    return Status::ok();
  }

  Status parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::ok();
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          const auto res = std::from_chars(text_.data() + pos_,
                                           text_.data() + pos_ + 4, code, 16);
          if (res.ec != std::errc{}) return fail("invalid \\u escape");
          pos_ += 4;
          // Telemetry documents are ASCII; keep non-ASCII as '?' rather
          // than pulling in full UTF-8 encoding.
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default: return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  Status parse_array(JsonValue& out) {
    consume('[');
    out.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return Status::ok();
    while (true) {
      JsonValue elem;
      if (Status s = parse_value(elem); !s.is_ok()) return s;
      out.array.push_back(std::move(elem));
      skip_ws();
      if (consume(']')) return Status::ok();
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  Status parse_object(JsonValue& out) {
    consume('{');
    out.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return Status::ok();
    while (true) {
      skip_ws();
      std::string key;
      if (Status s = parse_string(key); !s.is_ok()) return s;
      skip_ws();
      if (!consume(':')) return fail("expected ':' in object");
      JsonValue elem;
      if (Status s = parse_value(elem); !s.is_ok()) return s;
      out.object.emplace(std::move(key), std::move(elem));
      skip_ws();
      if (consume('}')) return Status::ok();
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  usize pos_ = 0;
};

}  // namespace

Result<JsonValue> json_parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace audo::json
