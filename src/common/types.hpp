// Fundamental type aliases shared by every module of the AUDO-profiler
// reproduction. Keep this header dependency-free.
#pragma once

#include <cstddef>
#include <cstdint>

namespace audo {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Simulated clock cycle index. 64 bits: multi-minute runs at 180 MHz fit.
using Cycle = u64;

/// Physical address on the product-chip side (32-bit machine).
using Addr = u32;

/// Size in bytes.
using usize = std::size_t;

inline constexpr usize kKiB = 1024;
inline constexpr usize kMiB = 1024 * kKiB;

}  // namespace audo
