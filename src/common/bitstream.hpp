// Bit-granular writer/reader used by the MCDS trace-message encoder.
//
// Trace compression is the load-bearing claim of the paper's bandwidth
// argument (§5), so message sizes must be real: messages are packed to the
// bit, and the byte size reported to the DAP drain model is the exact
// ceil(bits/8) of the stream.
#pragma once

#include <cassert>
#include <vector>

#include "common/types.hpp"

namespace audo {

class BitWriter {
 public:
  /// Append the low `count` bits of `value` (LSB first).
  void write(u64 value, unsigned count) {
    assert(count >= 1 && count <= 64);
    for (unsigned i = 0; i < count; ++i) {
      const bool bit = (value >> i) & 1;
      if (bit_pos_ == 0) bytes_.push_back(0);
      if (bit) bytes_.back() |= static_cast<u8>(1u << bit_pos_);
      bit_pos_ = (bit_pos_ + 1) % 8;
    }
    total_bits_ += count;
  }

  /// Unsigned LEB-style variable-length quantity in 4-bit groups:
  /// each nibble holds 3 payload bits + 1 continuation bit. Small deltas
  /// (the common case for timestamps) cost 4 bits.
  void write_varint(u64 value) {
    do {
      const u64 payload = value & 0x7;
      value >>= 3;
      write(payload | (value != 0 ? 0x8 : 0x0), 4);
    } while (value != 0);
  }

  u64 bit_count() const { return total_bits_; }
  usize byte_count() const { return bytes_.size(); }
  const std::vector<u8>& bytes() const { return bytes_; }

  void clear() {
    bytes_.clear();
    bit_pos_ = 0;
    total_bits_ = 0;
  }

 private:
  std::vector<u8> bytes_;
  unsigned bit_pos_ = 0;  // next free bit within bytes_.back()
  u64 total_bits_ = 0;
};

class BitReader {
 public:
  explicit BitReader(const std::vector<u8>& bytes) : bytes_(&bytes) {}

  /// Reads past the end return the bits gathered so far (zero-filled)
  /// and latch overrun() instead of touching out-of-range memory, so a
  /// truncated stream is a reportable decode error in release builds
  /// rather than undefined behaviour.
  u64 read(unsigned count) {
    assert(count >= 1 && count <= 64);
    u64 value = 0;
    for (unsigned i = 0; i < count; ++i) {
      if (exhausted()) {
        overrun_ = true;
        return value;
      }
      const u8 byte = (*bytes_)[pos_ / 8];
      const bool bit = (byte >> (pos_ % 8)) & 1;
      if (bit) value |= u64{1} << i;
      ++pos_;
    }
    return value;
  }

  u64 read_varint() {
    u64 value = 0;
    unsigned shift = 0;
    for (;;) {
      const u64 nibble = read(4);
      value |= (nibble & 0x7) << shift;
      if ((nibble & 0x8) == 0) break;
      shift += 3;
    }
    return value;
  }

  u64 bit_position() const { return pos_; }
  bool exhausted() const { return pos_ >= bytes_->size() * 8; }
  /// True when fewer than `count` bits remain.
  bool remaining_less_than(unsigned count) const {
    return pos_ + count > bytes_->size() * 8;
  }
  /// A read() ran past the end of the stream.
  bool overrun() const { return overrun_; }

 private:
  const std::vector<u8>* bytes_;
  u64 pos_ = 0;
  bool overrun_ = false;
};

}  // namespace audo
