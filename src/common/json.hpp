// Minimal JSON support for the host-side telemetry layer.
//
// Two halves, both deliberately tiny:
//  * JsonWriter — a streaming writer with automatic comma/indent handling,
//    used by the RunReport and Perfetto exporters. Numbers are emitted in
//    a locale-independent way; doubles round-trip via max_digits10.
//  * JsonValue / json_parse — a recursive-descent parser producing a plain
//    value tree. Used by tests (Perfetto/report validity checks) and the
//    report schema checker; not a hot path, clarity over speed.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace audo::json {

/// Escape a string for inclusion in a JSON document (adds quotes).
std::string quote(std::string_view s);

/// Streaming JSON writer. Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("cycles"); w.value(u64{42});
///   w.key("series"); w.begin_array(); w.value(1.5); w.end_array();
///   w.end_object();
///   std::string doc = std::move(w).str();
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emit an object key; the next emitted value belongs to it.
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v);
  void value(double v);
  void value(u64 v);
  void value(i64 v);
  void value(u32 v) { value(static_cast<u64>(v)); }
  void value(int v) { value(static_cast<i64>(v)); }

  /// Shorthand for key() + value().
  template <typename T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

  const std::string& str() const& { return out_; }
  std::string str() && { return std::move(out_); }

 private:
  void separator();

  std::string out_;
  // One level per open container: true when at least one element was
  // written (a comma is needed before the next one).
  std::vector<bool> wrote_element_;
  bool pending_key_ = false;
};

/// A parsed JSON value. Numbers are kept as double (sufficient for the
/// telemetry documents we validate; cycle counts below 2^53 are exact)
/// plus the raw source literal, so consumers that need full 64-bit
/// precision (hashes, fingerprints, signatures) can re-parse it exactly
/// via as_u64().
struct JsonValue {
  enum class Kind : u8 { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  /// Verbatim number literal from the document ("" for non-numbers).
  std::string number_literal;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Exact unsigned 64-bit value of an integer literal (doubles round
  /// u64s above 2^53; this does not). Falls back to the double value for
  /// non-integer literals; 0 for non-numbers.
  u64 as_u64() const;

  /// Object member lookup; returns nullptr when absent or not an object.
  const JsonValue* find(const std::string& k) const;
};

/// Parse a complete JSON document (rejects trailing garbage).
Result<JsonValue> json_parse(std::string_view text);

}  // namespace audo::json
