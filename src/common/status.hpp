// Error handling for configuration-time and decode-time failures.
//
// Simulation hot paths never construct a Status; they are designed so that
// illegal states are unrepresentable or caught by assertions. Status/Result
// are for user-facing APIs: assembling programs, configuring the MCDS,
// building SoC variants, decoding trace streams.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace audo {

enum class StatusCode {
  kOk,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kUnimplemented,
  kParseError,
  kDecodeError,
};

/// Human-readable name of a status code (stable, for logs and tests).
const char* to_string(StatusCode code);

/// A cheap error-or-ok value with an optional message.
class [[nodiscard]] Status {
 public:
  Status() = default;  // ok
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status error(StatusCode code, std::string message) {
  return Status(code, std::move(message));
}

/// Value-or-Status. Accessing value() on an error aborts in debug builds.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {     // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(data_).is_ok() &&
           "Result constructed from OK status without a value");
  }

  bool is_ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& {
    assert(is_ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(is_ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(is_ok());
    return std::get<T>(std::move(data_));
  }

  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(data_);
  }

  const T& value_or(const T& fallback) const& {
    return is_ok() ? std::get<T>(data_) : fallback;
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace audo
