// Fixed-capacity ring buffer. Used for flash prefetch queues, bus request
// queues, and as the fill-mode model of the EMEM trace sink.
#pragma once

#include <cassert>
#include <vector>

#include "common/types.hpp"

namespace audo {

/// A bounded FIFO with O(1) push/pop and explicit overflow policy decided
/// by the caller (push() on a full buffer is a programming error; use
/// push_overwrite() for ring-mode trace sinks).
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(usize capacity) : storage_(capacity) {
    assert(capacity > 0);
  }

  usize capacity() const { return storage_.size(); }
  usize size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == storage_.size(); }

  void push(T value) {
    assert(!full());
    storage_[(head_ + size_) % storage_.size()] = std::move(value);
    ++size_;
  }

  /// Push, discarding the oldest element when full. Returns true if an
  /// element was discarded (the ring "wrapped").
  bool push_overwrite(T value) {
    const bool wrapped = full();
    if (wrapped) pop();
    push(std::move(value));
    return wrapped;
  }

  T pop() {
    assert(!empty());
    T out = std::move(storage_[head_]);
    head_ = (head_ + 1) % storage_.size();
    --size_;
    return out;
  }

  const T& front() const {
    assert(!empty());
    return storage_[head_];
  }

  /// Element `i` positions behind front (0 == front).
  const T& at(usize i) const {
    assert(i < size_);
    return storage_[(head_ + i) % storage_.size()];
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> storage_;
  usize head_ = 0;
  usize size_ = 0;
};

}  // namespace audo
