// The peripheral bridge: routes SFR-space bus transactions to devices.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "bus/port.hpp"
#include "common/snapshot.hpp"
#include "common/types.hpp"
#include "mem/memory_map.hpp"

namespace audo::periph {

/// A device with special-function registers. Offsets are local to the
/// device's registered window.
class SfrDevice {
 public:
  virtual ~SfrDevice() = default;
  virtual u32 read_sfr(u32 offset) = 0;
  virtual void write_sfr(u32 offset, u32 value) = 0;
};

class PeriphBridge final : public bus::BusSlave {
 public:
  explicit PeriphBridge(unsigned latency = 3) : latency_(latency) {}

  /// Register `device` at [kPeriphBase+offset, +size).
  void add_device(u32 offset, u32 size, SfrDevice* device) {
    ranges_.push_back(Range{offset, size, device});
  }

  unsigned start_access(const bus::BusRequest&) override { return latency_; }

  u32 complete_access(const bus::BusRequest& req) override {
    const u32 offset = req.addr - mem::kPeriphBase;
    for (const Range& r : ranges_) {
      if (offset >= r.offset && offset - r.offset < r.size) {
        if (req.kind == bus::AccessKind::kWrite) {
          r.device->write_sfr(offset - r.offset, req.wdata);
          return 0;
        }
        const u32 value = r.device->read_sfr(offset - r.offset);
        return faults_.empty() ? value : apply_sfr_fault(offset, value);
      }
    }
    ++unmapped_;
    return 0;
  }

  /// Fault injection: the next `reads` reads of the SFR at `offset`
  /// (from kPeriphBase) return `value` instead of the device's answer.
  /// The device's read side effects still occur (the register is read,
  /// the returned data is corrupted on the way back).
  void inject_sfr_fault(u32 offset, u32 value, u64 reads) {
    faults_.push_back(SfrFault{offset, value, reads});
  }

  std::string_view name() const override { return "PBridge"; }

  u64 unmapped_accesses() const { return unmapped_; }
  u64 faulted_reads() const { return faulted_reads_; }

  /// Snapshot support: armed stuck-SFR faults and access diagnostics.
  /// Device ranges are construction wiring.
  void save_state(snapshot::Writer& w) const {
    w.put_u32(static_cast<u32>(faults_.size()));
    for (const SfrFault& f : faults_) {
      w.put_u32(f.offset);
      w.put_u32(f.value);
      w.put_u64(f.reads_left);
    }
    w.put_u64(unmapped_);
    w.put_u64(faulted_reads_);
  }
  void restore_state(snapshot::Reader& r) {
    faults_.clear();
    const u32 count = r.get_u32();
    for (u32 i = 0; i < count && r.ok(); ++i) {
      SfrFault f{};
      f.offset = r.get_u32();
      f.value = r.get_u32();
      f.reads_left = r.get_u64();
      faults_.push_back(f);
    }
    unmapped_ = r.get_u64();
    faulted_reads_ = r.get_u64();
  }

 private:
  struct Range {
    u32 offset;
    u32 size;
    SfrDevice* device;
  };

  struct SfrFault {
    u32 offset;
    u32 value;
    u64 reads_left;
  };

  u32 apply_sfr_fault(u32 offset, u32 value) {
    for (usize i = 0; i < faults_.size(); ++i) {
      SfrFault& f = faults_[i];
      if (f.offset != offset) continue;
      ++faulted_reads_;
      const u32 stuck = f.value;
      if (--f.reads_left == 0) faults_.erase(faults_.begin() + static_cast<std::ptrdiff_t>(i));
      return stuck;
    }
    return value;
  }

  unsigned latency_;
  std::vector<Range> ranges_;
  std::vector<SfrFault> faults_;
  u64 unmapped_ = 0;
  u64 faulted_reads_ = 0;
};

/// Canonical SFR window offsets (from kPeriphBase) used by the SoC.
namespace sfr {
inline constexpr u32 kStm = 0x0000;
inline constexpr u32 kWatchdog = 0x0100;
inline constexpr u32 kCrank = 0x0400;
inline constexpr u32 kAdc = 0x1000;
inline constexpr u32 kCan = 0x2000;
inline constexpr u32 kDma = 0x3000;
inline constexpr u32 kWindow = 0x0100;  // default window size per device
}  // namespace sfr

}  // namespace audo::periph
