#include "periph/irq_router.hpp"

#include "telemetry/metrics.hpp"

namespace audo::periph {

void IrqRouter::register_metrics(telemetry::MetricsRegistry& registry,
                                 std::string_view component) const {
  for (const SrcNode& node : nodes_) {
    registry.counter(std::string(component), node.name + ".posted",
                     &node.posted);
    registry.counter(std::string(component), node.name + ".serviced",
                     &node.serviced);
    registry.counter(std::string(component), node.name + ".lost", &node.lost);
  }
}

unsigned IrqRouter::add_source(std::string name) {
  nodes_.push_back(SrcNode{std::move(name), 0, IrqTarget::kTc, false, false,
                           0, 0, 0});
  return static_cast<unsigned>(nodes_.size() - 1);
}

void IrqRouter::configure(unsigned src, u8 priority, IrqTarget target,
                          bool enabled) {
  SrcNode& node = nodes_.at(src);
  node.priority = priority;
  node.target = target;
  node.enabled = enabled;
}

void IrqRouter::post(unsigned src) {
  SrcNode& node = nodes_.at(src);
  node.posted++;
  if (node.pending) {
    node.lost++;  // previous request not yet serviced
    return;
  }
  node.pending = true;
  if (node.enabled && node.priority > 0 &&
      raise_count_ < kMaxRaisesPerCycle) {
    raises_[raise_count_++] = Raise{node.priority, node.target};
  }
}

std::optional<u8> IrqRouter::View::pending() const {
  u8 best = 0;
  for (const SrcNode& node : router_->nodes_) {
    if (node.pending && node.enabled && node.target == target_ &&
        node.priority > best) {
      best = node.priority;
    }
  }
  if (best == 0) return std::nullopt;
  return best;
}

void IrqRouter::View::acknowledge(u8 prio) {
  for (SrcNode& node : router_->nodes_) {
    if (node.pending && node.enabled && node.target == target_ &&
        node.priority == prio) {
      node.pending = false;
      node.serviced++;
      return;
    }
  }
}

}  // namespace audo::periph
