#include "periph/dma.hpp"

#include "telemetry/metrics.hpp"

namespace audo::periph {

DmaController::DmaController(unsigned channels, bus::Crossbar* bus,
                             IrqRouter* router)
    : channels_(channels), bus_(bus), router_(router) {}

void DmaController::register_metrics(telemetry::MetricsRegistry& registry,
                                     std::string component) const {
  for (usize ch = 0; ch < channels_.size(); ++ch) {
    const std::string prefix = "ch" + std::to_string(ch) + ".";
    const ChannelStats& stats = channels_[ch].stats;
    registry.counter(component, prefix + "units", &stats.units);
    registry.counter(component, prefix + "blocks", &stats.blocks);
    registry.counter(component, prefix + "triggers", &stats.triggers);
  }
}

void DmaController::setup_channel(unsigned ch, const ChannelConfig& config,
                                  bool enabled) {
  Channel& c = channels_.at(ch);
  c.config = config;
  c.enabled = enabled;
  c.src = config.src;
  c.dst = config.dst;
  c.remaining = config.count;
  c.credit = 0;
}

void DmaController::enable_channel(unsigned ch, bool enabled) {
  channels_.at(ch).enabled = enabled;
}

void DmaController::trigger(unsigned ch) {
  Channel& c = channels_.at(ch);
  c.stats.triggers++;
  c.credit += c.config.units_per_trigger;
}

void DmaController::set_done_src(unsigned ch, unsigned src_id) {
  channels_.at(ch).done_src = src_id;
}

bool DmaController::channel_idle(unsigned ch) const {
  const Channel& c = channels_.at(ch);
  const bool in_flight = phase_ != Phase::kIdle && active_ == ch;
  return !in_flight && (c.remaining == 0 || !c.enabled);
}

bool DmaController::quiescent() const {
  if (phase_ != Phase::kIdle || !port_.idle()) return false;
  if (router_ != nullptr && router_->dma_view().pending()) return false;
  for (const Channel& c : channels_) {
    if (channel_ready(c)) return false;
  }
  return true;
}

bool DmaController::channel_ready(const Channel& c) const {
  if (!c.enabled || c.remaining == 0) return false;
  if (c.config.units_per_trigger == 0) return true;  // free-running
  return c.credit > 0;
}

void DmaController::reload(Channel& c) {
  c.src = c.config.src;
  c.dst = c.config.dst;
  c.remaining = c.config.count;
}

void DmaController::step(Cycle now) {
  observation_ = mcds::DmaObservation{};

  // Router-driven triggers: priority p pending on the DMA view releases
  // channel p-1.
  if (router_ != nullptr) {
    while (const auto prio = router_->dma_view().pending()) {
      router_->dma_view().acknowledge(*prio);
      const unsigned ch = *prio - 1;
      if (ch < channels_.size()) trigger(ch);
    }
  }

  switch (phase_) {
    case Phase::kIdle: break;
    case Phase::kRead:
      if (port_.done()) {
        unit_data_ = port_.take_rdata();
        Channel& c = channels_[active_];
        bus::BusRequest req;
        req.master = bus::MasterId::kDma;
        req.addr = c.dst;
        req.kind = bus::AccessKind::kWrite;
        req.bytes = c.config.bytes;
        req.wdata = unit_data_;
        if (bus_->issue(port_, req, now)) {
          phase_ = Phase::kWrite;
        } else {
          phase_ = Phase::kIdle;  // unmapped destination: unit dropped
        }
      }
      return;  // at most one bus action per cycle
    case Phase::kWrite:
      if (port_.done()) {
        port_.take_rdata();
        Channel& c = channels_[active_];
        c.stats.units++;
        c.src = static_cast<Addr>(c.src + c.config.src_step);
        c.dst = static_cast<Addr>(c.dst + c.config.dst_step);
        if (c.remaining > 0) --c.remaining;
        if (c.config.units_per_trigger != 0 && c.credit > 0) --c.credit;
        observation_.transfer = true;
        observation_.channel = static_cast<u8>(active_);
        if (c.remaining == 0) {
          c.stats.blocks++;
          if (c.done_src != ~0u && router_ != nullptr) {
            router_->post(c.done_src);
          }
          if (c.config.continuous) reload(c);
        }
        phase_ = Phase::kIdle;
      }
      return;
  }

  // Idle: arbitrate the next ready channel (round robin) and start its
  // read transaction.
  if (bus_ == nullptr || channels_.empty()) return;
  for (unsigned i = 0; i < channels_.size(); ++i) {
    const unsigned ch = (rr_next_ + i) % channels_.size();
    Channel& c = channels_[ch];
    if (!channel_ready(c)) continue;
    bus::BusRequest req;
    req.master = bus::MasterId::kDma;
    req.addr = c.src;
    req.kind = bus::AccessKind::kRead;
    req.bytes = c.config.bytes;
    if (bus_->issue(port_, req, now)) {
      phase_ = Phase::kRead;
      active_ = ch;
      rr_next_ = (ch + 1) % channels_.size();
    }
    return;
  }
}

u32 DmaController::read_sfr(u32 offset) {
  const unsigned ch = offset / 0x20;
  const u32 reg = offset % 0x20;
  if (ch >= channels_.size()) return 0;
  const Channel& c = channels_[ch];
  switch (reg) {
    case 0x00: return c.src;
    case 0x04: return c.dst;
    case 0x08: return c.remaining;
    case 0x0C:
      return (c.enabled ? 1u : 0u) | (c.config.continuous ? 2u : 0u) |
             (static_cast<u32>(c.config.bytes == 4 ? 2 : c.config.bytes == 2 ? 1 : 0) << 8);
    default: return 0;
  }
}

void DmaController::write_sfr(u32 offset, u32 value) {
  const unsigned ch = offset / 0x20;
  const u32 reg = offset % 0x20;
  if (ch >= channels_.size()) return;
  Channel& c = channels_[ch];
  switch (reg) {
    case 0x00: c.src = value; c.config.src = value; break;
    case 0x04: c.dst = value; c.config.dst = value; break;
    case 0x08: c.remaining = value; c.config.count = value; break;
    case 0x0C:
      c.enabled = (value & 1) != 0;
      c.config.continuous = (value & 2) != 0;
      c.config.bytes = static_cast<u8>(1u << ((value >> 8) & 3));
      break;
    case 0x10: trigger(ch); break;
    default: break;
  }
}

}  // namespace audo::periph
