// The interrupt router: service request (SRC) nodes, as on TriCore SoCs.
//
// Each peripheral event posts to an SRC node; the node's configuration
// decides the priority and whether the TriCore-like core or the PCP
// services it. This HW/SW-partitioning knob — "software partitioning
// between TriCore and PCP cores" (§1) — is a first-class architecture
// option in the optimization study.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/snapshot.hpp"
#include "common/types.hpp"
#include "cpu/cpu.hpp"

namespace audo::telemetry {
class MetricsRegistry;
}

namespace audo::periph {

enum class IrqTarget : u8 { kTc, kPcp, kDma };

class IrqRouter {
 public:
  struct SrcNode {
    std::string name;
    u8 priority = 0;       // 1..255; 0 = never delivered
    IrqTarget target = IrqTarget::kTc;
    bool enabled = false;
    bool pending = false;
    u64 posted = 0;        // lifetime posts
    u64 serviced = 0;      // lifetime acknowledges
    u64 lost = 0;          // posts that found the node already pending
  };

  /// Register a service request node; returns its id.
  unsigned add_source(std::string name);

  void configure(unsigned src, u8 priority, IrqTarget target,
                 bool enabled = true);

  /// Raise the service request (edge). A post while already pending is
  /// counted as lost — visible interrupt overload.
  void post(unsigned src);

  /// Newly-raised requests since the last take_raises() — the per-cycle
  /// strobe record Soc::step publishes as ObservationFrame::irq. Only
  /// enabled nodes with a nonzero priority are recorded (a disabled node
  /// can never cause a dispatch, so it is not a latency source).
  struct Raise {
    u8 priority = 0;
    IrqTarget target = IrqTarget::kTc;
  };
  static constexpr unsigned kMaxRaisesPerCycle = 4;

  /// Copy-and-clear the per-cycle raise record (called once per step).
  unsigned take_raises(Raise out[kMaxRaisesPerCycle]) {
    const unsigned n = raise_count_;
    for (unsigned i = 0; i < n; ++i) out[i] = raises_[i];
    raise_count_ = 0;
    return n;
  }
  bool raises_pending() const { return raise_count_ != 0; }

  const SrcNode& node(unsigned src) const { return nodes_.at(src); }
  unsigned source_count() const { return static_cast<unsigned>(nodes_.size()); }

  /// Register per-node post/service/lost counters under `component`
  /// (e.g. "irq"). Call after all sources are added; the registry keeps
  /// pointers into the node table.
  void register_metrics(telemetry::MetricsRegistry& registry,
                        std::string_view component) const;

  /// Snapshot support: node configuration, pending bits and lifetime
  /// counters. Node names are construction wiring; the per-cycle raise
  /// record is empty at a quiescent capture point and cleared on restore.
  void save_state(snapshot::Writer& w) const {
    w.put_u32(static_cast<u32>(nodes_.size()));
    for (const SrcNode& n : nodes_) {
      w.put_u8(n.priority);
      w.put_u8(static_cast<u8>(n.target));
      w.put_bool(n.enabled);
      w.put_bool(n.pending);
      w.put_u64(n.posted);
      w.put_u64(n.serviced);
      w.put_u64(n.lost);
    }
  }
  void restore_state(snapshot::Reader& r) {
    if (r.get_u32() != nodes_.size() && r.ok()) {
      r.fail("irq source count mismatch");
      return;
    }
    for (SrcNode& n : nodes_) {
      n.priority = r.get_u8();
      n.target = static_cast<IrqTarget>(r.get_u8());
      n.enabled = r.get_bool();
      n.pending = r.get_bool();
      n.posted = r.get_u64();
      n.serviced = r.get_u64();
      n.lost = r.get_u64();
    }
    raise_count_ = 0;
  }

  /// Core-facing views. The DMA view makes the router able to trigger
  /// DMA channels directly, as the TriCore interrupt system can.
  cpu::IrqSource& tc_view() { return tc_view_; }
  cpu::IrqSource& pcp_view() { return pcp_view_; }
  cpu::IrqSource& dma_view() { return dma_view_; }

 private:
  class View final : public cpu::IrqSource {
   public:
    View(IrqRouter* router, IrqTarget target)
        : router_(router), target_(target) {}
    std::optional<u8> pending() const override;
    void acknowledge(u8 prio) override;

   private:
    IrqRouter* router_;
    IrqTarget target_;
  };

  std::vector<SrcNode> nodes_;
  Raise raises_[kMaxRaisesPerCycle];
  unsigned raise_count_ = 0;
  View tc_view_{this, IrqTarget::kTc};
  View pcp_view_{this, IrqTarget::kPcp};
  View dma_view_{this, IrqTarget::kDma};
};

}  // namespace audo::periph
