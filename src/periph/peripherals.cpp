#include "periph/peripherals.hpp"

#include <algorithm>

namespace audo::periph {

// ---------------------------------------------------------------- Stm --

void Stm::step(Cycle now) {
  (void)now;
  ++counter_;
  for (int i = 0; i < 2; ++i) {
    if ((ctrl_ & (1u << i)) != 0 && period_[i] != 0 &&
        counter_ >= next_fire_[i]) {
      router_->post(src_[i]);
      next_fire_[i] += period_[i];
    }
  }
}

Cycle Stm::next_activity_cycle(Cycle now) const {
  Cycle next = kNoActivity;
  for (int i = 0; i < 2; ++i) {
    if ((ctrl_ & (1u << i)) == 0 || period_[i] == 0) continue;
    // step() fires once counter_ reaches next_fire_; counter_ advances by
    // one per step, so the compare lands (next_fire_ - counter_) steps out
    // (immediately next step when the deadline already passed).
    const Cycle at = next_fire_[i] > counter_
                         ? now + (next_fire_[i] - counter_)
                         : now + 1;
    next = std::min(next, at);
  }
  return next;
}

u32 Stm::read_sfr(u32 offset) {
  switch (offset) {
    case 0x00: return static_cast<u32>(counter_);
    case 0x04: return static_cast<u32>(counter_ >> 32);
    case 0x08: return period_[0];
    case 0x0C: return period_[1];
    case 0x10: return ctrl_;
    default: return 0;
  }
}

void Stm::write_sfr(u32 offset, u32 value) {
  switch (offset) {
    case 0x08:
      period_[0] = value;
      next_fire_[0] = counter_ + value;
      break;
    case 0x0C:
      period_[1] = value;
      next_fire_[1] = counter_ + value;
      break;
    case 0x10:
      ctrl_ = value & 0x3;
      break;
    default:
      break;
  }
}

// ----------------------------------------------------------- Watchdog --

void Watchdog::step(Cycle now) {
  (void)now;
  if (period_ == 0) return;
  if (remaining_ == 0 || --remaining_ == 0) {
    ++timeouts_;
    router_->post(src_timeout_);
    remaining_ = period_;
  }
}

Cycle Watchdog::next_activity_cycle(Cycle now) const {
  if (period_ == 0) return kNoActivity;
  // step() times out on the tick that takes remaining_ to zero.
  return now + (remaining_ == 0 ? 1 : remaining_);
}

u32 Watchdog::read_sfr(u32 offset) {
  switch (offset) {
    case 0x00: return remaining_;
    case 0x04: return period_;
    case 0x08: return window_;
    default: return 0;
  }
}

void Watchdog::write_sfr(u32 offset, u32 value) {
  switch (offset) {
    case 0x00:
      if (value != kServiceKey) {
        ++bad_services_;
        break;
      }
      if (period_ != 0 && window_ != 0 && remaining_ > window_) {
        // Serviced before the window opened: a violation, handled like
        // a timeout so a runaway fast loop cannot keep the dog quiet.
        ++early_services_;
        ++timeouts_;
        router_->post(src_timeout_);
      }
      remaining_ = period_;
      break;
    case 0x04:
      period_ = value;
      remaining_ = value;
      break;
    case 0x08:
      window_ = value;
      break;
    default:
      break;
  }
}

// --------------------------------------------------------- CrankWheel --

void CrankWheel::recompute_period() {
  // cycles/tooth = clock / (rpm/60 * teeth), compressed by time_scale.
  const u64 teeth_per_second =
      static_cast<u64>(rpm_) * config_.teeth / 60u;
  cycles_per_tooth_ =
      config_.clock_hz /
      (std::max<u64>(1, teeth_per_second) * std::max<u32>(1, config_.time_scale));
  if (cycles_per_tooth_ == 0) cycles_per_tooth_ = 1;
  if (countdown_ > cycles_per_tooth_) countdown_ = cycles_per_tooth_;
}

void CrankWheel::step(Cycle now) {
  if (--countdown_ != 0) return;
  countdown_ = cycles_per_tooth_;
  tooth_ = (tooth_ + 1) % config_.teeth;
  if (tooth_ == 0) {
    ++revs_;
    router_->post(src_sync_);  // gap detected: revolution sync point
  }
  // The missing teeth at the end of the wheel produce no tooth edge.
  if (tooth_ < config_.teeth - config_.missing) {
    last_tooth_cycle_ = now;
    router_->post(src_tooth_);
  }
}

u32 CrankWheel::read_sfr(u32 offset) {
  switch (offset) {
    case 0x00: return rpm_;
    case 0x04: return tooth_;
    case 0x08: return static_cast<u32>(revs_);
    case 0x0C:  // crank angle, degrees * 256
      return static_cast<u32>((tooth_ * 360u * 256u) / config_.teeth);
    case 0x10:  // last tooth-edge cycle (ISR latency reference)
      return static_cast<u32>(last_tooth_cycle_);
    default: return 0;
  }
}

void CrankWheel::write_sfr(u32 offset, u32 value) {
  if (offset == 0x00) set_rpm(value);
}

// ---------------------------------------------------------------- Adc --

u32 Adc::sample(Cycle now) {
  // Deterministic pseudo-sensor: triangle wave (e.g. manifold pressure
  // over the engine cycle) plus bounded noise.
  const u32 phase = static_cast<u32>(now / 64) % 2048;
  const u32 tri = phase < 1024 ? phase : 2048 - phase;
  const u32 noise = static_cast<u32>(prng_.next_below(16));
  return 1024 + tri + noise + channel_ * 7;
}

void Adc::step(Cycle now) {
  last_step_ = now;
  if (period_ != 0 && now >= next_auto_) {
    next_auto_ = now + period_;
    if (!done_at_) done_at_ = now + config_.conversion_cycles;
  }
  if (done_at_ && now >= *done_at_) {
    done_at_.reset();
    result_ = sample(now);
    ++conversions_;
    router_->post(src_done_);
  }
}

Cycle Adc::next_activity_cycle(Cycle now) const {
  Cycle next = kNoActivity;
  if (period_ != 0) next = std::min(next, std::max(next_auto_, now + 1));
  if (done_at_) next = std::min(next, std::max(*done_at_, now + 1));
  return next;
}

u32 Adc::read_sfr(u32 offset) {
  switch (offset) {
    case 0x04: return result_;
    case 0x08: return period_;
    case 0x0C: return channel_;
    default: return 0;
  }
}

void Adc::write_sfr(u32 offset, u32 value) {
  switch (offset) {
    case 0x00:
      if (!done_at_) done_at_ = last_step_ + config_.conversion_cycles;
      break;
    case 0x08:
      period_ = value;
      next_auto_ = last_step_ + value;
      break;
    case 0x0C:
      channel_ = value & 0xF;
      break;
    default:
      break;
  }
}

// ------------------------------------------------------------ CanLite --

void CanLite::step(Cycle now) {
  last_step_ = now;
  if (rx_period_ != 0 && now >= next_rx_) {
    next_rx_ = now + rx_period_;
    if (rx_pending_) {
      ++rx_overruns_;  // software too slow; frame lost
    }
    rx_data_ = static_cast<u32>(++rx_frames_);
    rx_pending_ = true;
    router_->post(src_rx_);
  }
  if (tx_done_at_ && now >= *tx_done_at_) {
    tx_done_at_.reset();
    ++tx_frames_;
    router_->post(src_tx_);
  }
}

Cycle CanLite::next_activity_cycle(Cycle now) const {
  Cycle next = kNoActivity;
  if (rx_period_ != 0) next = std::min(next, std::max(next_rx_, now + 1));
  if (tx_done_at_) next = std::min(next, std::max(*tx_done_at_, now + 1));
  return next;
}

u32 CanLite::read_sfr(u32 offset) {
  switch (offset) {
    case 0x04: return tx_done_at_ ? 1 : 0;
    case 0x08:
      rx_pending_ = false;
      return rx_data_;
    case 0x0C: return rx_pending_ ? 1 : 0;
    case 0x10: return rx_period_;
    default: return 0;
  }
}

void CanLite::write_sfr(u32 offset, u32 value) {
  switch (offset) {
    case 0x00:
      if (!tx_done_at_) tx_done_at_ = last_step_ + config_.tx_cycles;
      break;
    case 0x10:
      rx_period_ = value;
      next_rx_ = last_step_ + value;
      break;
    default:
      break;
  }
}

}  // namespace audo::periph
