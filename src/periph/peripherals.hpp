// The peripheral set of the simulated powertrain SoC: system timer,
// watchdog, crank-wheel model, ADC and a CAN-like message interface.
//
// These produce the hard-real-time event structure §4 describes:
// "processing activities are triggered by interrupts or at least are
// dependent on real-time data like converted analog inputs".
#pragma once

#include <optional>

#include "common/prng.hpp"
#include "common/snapshot.hpp"
#include "common/types.hpp"
#include "periph/irq_router.hpp"
#include "periph/sfr_bridge.hpp"

namespace audo::periph {

/// next_activity_cycle() result for "never": the component has no
/// autonomous future event scheduled.
inline constexpr Cycle kNoActivity = ~Cycle{0};

/// Free-running system timer with two compare channels.
/// SFRs: 0x00 TIM_LO (ro), 0x04 TIM_HI (ro), 0x08 CMP0, 0x0C CMP1,
/// 0x10 CTRL (bit0/1: compare enable; compares auto-rearm by +CMPn period).
class Stm final : public SfrDevice {
 public:
  Stm(IrqRouter* router, unsigned src_cmp0, unsigned src_cmp1)
      : router_(router), src_{src_cmp0, src_cmp1} {}

  void step(Cycle now);
  u32 read_sfr(u32 offset) override;
  void write_sfr(u32 offset, u32 value) override;

  /// Earliest future cycle (> now) whose step() could post an interrupt.
  Cycle next_activity_cycle(Cycle now) const;
  /// Bulk-advance over `n` idle cycles (caller guarantees no compare
  /// fires inside the window; see next_activity_cycle()).
  void skip(u64 n) { counter_ += n; }

  u64 counter() const { return counter_; }

  void save_state(snapshot::Writer& w) const {
    w.put_u64(counter_);
    w.put_u64(next_fire_[0]);
    w.put_u64(next_fire_[1]);
    w.put_u32(period_[0]);
    w.put_u32(period_[1]);
    w.put_u32(ctrl_);
  }
  void restore_state(snapshot::Reader& r) {
    counter_ = r.get_u64();
    next_fire_[0] = r.get_u64();
    next_fire_[1] = r.get_u64();
    period_[0] = r.get_u32();
    period_[1] = r.get_u32();
    ctrl_ = r.get_u32();
  }

 private:
  IrqRouter* router_;
  unsigned src_[2];
  u64 counter_ = 0;
  u64 next_fire_[2] = {0, 0};
  u32 period_[2] = {0, 0};
  u32 ctrl_ = 0;
};

/// Window watchdog. SFRs: 0x00 SERVICE (write 0x5AFE), 0x04 PERIOD,
/// 0x08 WINDOW. A missed service posts the timeout SRC — the §5 trigger
/// demo "events not happening in a defined time window" watches this
/// class of failure.
///
/// WINDOW = 0 (reset value) keeps the classic always-open behaviour: a
/// correctly-keyed service at any time restarts the period. A non-zero
/// WINDOW opens the service window only once `remaining_` has counted
/// down to <= WINDOW; servicing earlier is a violation and is treated
/// like a timeout (counted, SRC posted, period restarted). Writes with
/// the wrong key are ignored but counted in bad_services().
class Watchdog final : public SfrDevice {
 public:
  Watchdog(IrqRouter* router, unsigned src_timeout)
      : router_(router), src_timeout_(src_timeout) {}

  void step(Cycle now);
  u32 read_sfr(u32 offset) override;
  void write_sfr(u32 offset, u32 value) override;

  /// Earliest future cycle whose step() could time out; kNoActivity when
  /// the watchdog is disabled.
  Cycle next_activity_cycle(Cycle now) const;
  /// Bulk-advance over `n` idle cycles (n < remaining ticks to timeout).
  void skip(u64 n) {
    if (period_ != 0) remaining_ -= static_cast<u32>(n);
  }
  /// Disabled watchdogs never wake an idle system (idle-deadlock scan).
  bool enabled() const { return period_ != 0; }

  u64 timeouts() const { return timeouts_; }
  u64 early_services() const { return early_services_; }
  u64 bad_services() const { return bad_services_; }
  static constexpr u32 kServiceKey = 0x5AFE;

  void save_state(snapshot::Writer& w) const {
    w.put_u32(period_);
    w.put_u32(window_);
    w.put_u32(remaining_);
    w.put_u64(timeouts_);
    w.put_u64(early_services_);
    w.put_u64(bad_services_);
  }
  void restore_state(snapshot::Reader& r) {
    period_ = r.get_u32();
    window_ = r.get_u32();
    remaining_ = r.get_u32();
    timeouts_ = r.get_u64();
    early_services_ = r.get_u64();
    bad_services_ = r.get_u64();
  }

 private:
  IrqRouter* router_;
  unsigned src_timeout_;
  u32 period_ = 0;  // 0 = disabled
  u32 window_ = 0;  // 0 = always-open (classic) service window
  u32 remaining_ = 0;
  u64 timeouts_ = 0;
  u64 early_services_ = 0;
  u64 bad_services_ = 0;
};

/// Crank-wheel model: a 60-2 trigger wheel driving tooth interrupts.
/// SFRs: 0x00 RPM (rw), 0x04 TOOTH (ro, 0..59), 0x08 REV (ro),
/// 0x0C ANGLE_Q8 (ro, crank angle in degrees * 256),
/// 0x10 TOOTH_TIME (ro, cycle of the last tooth edge — ISR-latency
/// measurement reference).
class CrankWheel final : public SfrDevice {
 public:
  struct Config {
    u64 clock_hz = 180'000'000;
    unsigned teeth = 60;       // positions per revolution
    unsigned missing = 2;      // trailing gap teeth (no tooth irq)
    u32 initial_rpm = 3000;
    /// Simulation time compression: tooth period is divided by this, so
    /// short runs still see full engine cycles.
    u32 time_scale = 1;
  };

  CrankWheel(const Config& config, IrqRouter* router, unsigned src_tooth,
             unsigned src_sync)
      : config_(config), router_(router), src_tooth_(src_tooth),
        src_sync_(src_sync), rpm_(config.initial_rpm) {
    recompute_period();
    countdown_ = cycles_per_tooth_;  // first tooth after one full period
  }

  void step(Cycle now);
  u32 read_sfr(u32 offset) override;
  void write_sfr(u32 offset, u32 value) override;

  /// Cycle of the next tooth position (always finite: the wheel spins
  /// whether or not anyone listens).
  Cycle next_activity_cycle(Cycle now) const { return now + countdown_; }
  /// Bulk-advance over `n` idle cycles (n < countdown to the next tooth).
  void skip(u64 n) { countdown_ -= n; }

  void set_rpm(u32 rpm) {
    rpm_ = rpm == 0 ? 1 : rpm;
    recompute_period();
  }
  u32 rpm() const { return rpm_; }
  /// Simulation time compression (see Config::time_scale).
  void set_time_scale(u32 scale) {
    config_.time_scale = scale == 0 ? 1 : scale;
    recompute_period();
  }
  u64 revolutions() const { return revs_; }
  unsigned tooth() const { return tooth_; }

  void save_state(snapshot::Writer& w) const {
    w.put_u32(config_.time_scale);
    w.put_u32(rpm_);
    w.put_u64(cycles_per_tooth_);
    w.put_u64(countdown_);
    w.put_u32(static_cast<u32>(tooth_));
    w.put_u64(revs_);
    w.put_u64(last_tooth_cycle_);
  }
  void restore_state(snapshot::Reader& r) {
    config_.time_scale = r.get_u32();
    rpm_ = r.get_u32();
    cycles_per_tooth_ = r.get_u64();
    countdown_ = r.get_u64();
    tooth_ = r.get_u32();
    revs_ = r.get_u64();
    last_tooth_cycle_ = r.get_u64();
  }

 private:
  void recompute_period();

  Config config_;
  IrqRouter* router_;
  unsigned src_tooth_;
  unsigned src_sync_;
  u32 rpm_;
  u64 cycles_per_tooth_ = 1;
  u64 countdown_ = 1;
  unsigned tooth_ = 0;
  u64 revs_ = 0;
  Cycle last_tooth_cycle_ = 0;
};

/// ADC with a conversion pipeline and an autonomous trigger period.
/// SFRs: 0x00 START (write = software trigger), 0x04 RESULT (ro),
/// 0x08 PERIOD (auto-trigger every N cycles, 0 = off), 0x0C CHANNEL.
class Adc final : public SfrDevice {
 public:
  struct Config {
    unsigned conversion_cycles = 40;
    u32 period = 0;
  };

  Adc(const Config& config, IrqRouter* router, unsigned src_done,
      u64 waveform_seed = 42)
      : config_(config), router_(router), src_done_(src_done),
        period_(config.period), prng_(waveform_seed) {}

  void step(Cycle now);
  u32 read_sfr(u32 offset) override;
  void write_sfr(u32 offset, u32 value) override;

  /// Earliest future cycle whose step() starts or completes a conversion;
  /// kNoActivity when auto-trigger is off and no conversion is in flight.
  Cycle next_activity_cycle(Cycle now) const;
  /// Bulk-advance over `n` idle cycles. Deadlines are absolute, so only
  /// the last-step bookkeeping moves.
  void skip(u64 n) { last_step_ += n; }

  u32 last_result() const { return result_; }
  u64 conversions() const { return conversions_; }

  void save_state(snapshot::Writer& w) const {
    w.put_u32(period_);
    w.put_u32(channel_);
    for (unsigned i = 0; i < Prng::kStateWords; ++i) {
      w.put_u64(prng_.state_word(i));
    }
    w.put_u32(result_);
    w.put_u64(conversions_);
    w.put_bool(done_at_.has_value());
    w.put_u64(done_at_.value_or(0));
    w.put_u64(next_auto_);
    w.put_u64(last_step_);
  }
  void restore_state(snapshot::Reader& r) {
    period_ = r.get_u32();
    channel_ = r.get_u32();
    for (unsigned i = 0; i < Prng::kStateWords; ++i) {
      prng_.set_state_word(i, r.get_u64());
    }
    result_ = r.get_u32();
    conversions_ = r.get_u64();
    const bool has_done = r.get_bool();
    const Cycle done = r.get_u64();
    done_at_ = has_done ? std::optional<Cycle>(done) : std::nullopt;
    next_auto_ = r.get_u64();
    last_step_ = r.get_u64();
  }

 private:
  u32 sample(Cycle now);

  Config config_;
  IrqRouter* router_;
  unsigned src_done_;
  u32 period_;
  u32 channel_ = 0;
  Prng prng_;
  u32 result_ = 0;
  u64 conversions_ = 0;
  std::optional<Cycle> done_at_;
  Cycle next_auto_ = 0;
  Cycle last_step_ = 0;
};

/// CAN-like message interface: periodic RX frames and a TX path with a
/// serialization delay.
/// SFRs: 0x00 TX_TRIGGER (write = send, value = payload),
/// 0x04 TX_BUSY (ro), 0x08 RX_DATA (ro, reading clears pending),
/// 0x0C RX_PENDING (ro), 0x10 RX_PERIOD (rw, cycles; 0 = off).
class CanLite final : public SfrDevice {
 public:
  struct Config {
    unsigned tx_cycles = 500;  // ~100-bit frame at scaled baud
    u32 rx_period = 0;
  };

  CanLite(const Config& config, IrqRouter* router, unsigned src_rx,
          unsigned src_tx)
      : config_(config), router_(router), src_rx_(src_rx), src_tx_(src_tx),
        rx_period_(config.rx_period) {}

  void step(Cycle now);
  u32 read_sfr(u32 offset) override;
  void write_sfr(u32 offset, u32 value) override;

  /// Earliest future cycle whose step() delivers an RX frame or finishes
  /// a TX; kNoActivity when RX is off and no TX is serializing.
  Cycle next_activity_cycle(Cycle now) const;
  /// Bulk-advance over `n` idle cycles (deadlines are absolute).
  void skip(u64 n) { last_step_ += n; }

  u64 rx_frames() const { return rx_frames_; }
  u64 rx_overruns() const { return rx_overruns_; }
  u64 tx_frames() const { return tx_frames_; }

  void save_state(snapshot::Writer& w) const {
    w.put_u32(rx_period_);
    w.put_u64(next_rx_);
    w.put_u32(rx_data_);
    w.put_bool(rx_pending_);
    w.put_u64(rx_frames_);
    w.put_u64(rx_overruns_);
    w.put_bool(tx_done_at_.has_value());
    w.put_u64(tx_done_at_.value_or(0));
    w.put_u64(tx_frames_);
    w.put_u64(last_step_);
  }
  void restore_state(snapshot::Reader& r) {
    rx_period_ = r.get_u32();
    next_rx_ = r.get_u64();
    rx_data_ = r.get_u32();
    rx_pending_ = r.get_bool();
    rx_frames_ = r.get_u64();
    rx_overruns_ = r.get_u64();
    const bool has_tx = r.get_bool();
    const Cycle tx_done = r.get_u64();
    tx_done_at_ = has_tx ? std::optional<Cycle>(tx_done) : std::nullopt;
    tx_frames_ = r.get_u64();
    last_step_ = r.get_u64();
  }

 private:
  Config config_;
  IrqRouter* router_;
  unsigned src_rx_;
  unsigned src_tx_;
  u32 rx_period_;
  Cycle next_rx_ = 0;
  u32 rx_data_ = 0;
  bool rx_pending_ = false;
  u64 rx_frames_ = 0;
  u64 rx_overruns_ = 0;
  std::optional<Cycle> tx_done_at_;
  u64 tx_frames_ = 0;
  Cycle last_step_ = 0;
};

}  // namespace audo::periph
