// DMA controller: a multi-channel bus master.
//
// §3 motivates tracing it explicitly: "significant activity (e.g. DMA
// channels) occurs without any of the data passing through a processor
// core". Channels are triggered by interrupt-router nodes (target kDma,
// priority = channel + 1) or run freely; each transfer unit is a bus read
// followed by a bus write, so DMA competes with the CPUs for the fabric
// and the flash data port — the contention the methodology measures.
//
// SFR window (per channel ch at 0x20*ch): 0x00 SRC, 0x04 DST, 0x08 COUNT,
// 0x0C CTRL (bit0 enable, bit1 continuous-reload, bits 8..9 log2 bytes),
// 0x10 SWTRIG (write = software trigger).
#pragma once

#include <vector>

#include "bus/crossbar.hpp"
#include "common/snapshot.hpp"
#include "common/types.hpp"
#include "cpu/cpu.hpp"
#include "mcds/observation.hpp"
#include "periph/irq_router.hpp"
#include "periph/sfr_bridge.hpp"

namespace audo::telemetry {
class MetricsRegistry;
}

namespace audo::periph {

class DmaController final : public SfrDevice {
 public:
  struct ChannelConfig {
    Addr src = 0;
    Addr dst = 0;
    u32 count = 0;          // transfer units per block
    u8 bytes = 4;           // unit size
    i32 src_step = 4;       // address increment per unit (0 = fixed)
    i32 dst_step = 4;
    bool continuous = false;       // reload the block when done
    u32 units_per_trigger = 0;     // 0 = free-running while enabled
  };

  struct ChannelStats {
    u64 units = 0;    // completed transfer units
    u64 blocks = 0;   // completed blocks
    u64 triggers = 0;
  };

  DmaController(unsigned channels, bus::Crossbar* bus, IrqRouter* router);

  /// Configure and arm a channel from the harness side.
  void setup_channel(unsigned ch, const ChannelConfig& config,
                     bool enabled = true);
  void enable_channel(unsigned ch, bool enabled);
  /// Software/peripheral trigger: release `units_per_trigger` units.
  void trigger(unsigned ch);

  /// SRC node posted when a channel's block completes (one per channel);
  /// wired by the SoC. ~0u disables.
  void set_done_src(unsigned ch, unsigned src_id);

  void step(Cycle now);

  /// True when a step() would do nothing: no unit in flight, no ready
  /// channel to arbitrate and no router trigger waiting. A quiescent DMA
  /// schedules no future work by itself, so it has no next-activity
  /// cycle — only an interrupt-router trigger or SFR write restarts it.
  bool quiescent() const;

  const mcds::DmaObservation& observation() const { return observation_; }
  const ChannelStats& stats(unsigned ch) const { return channels_.at(ch).stats; }
  unsigned channel_count() const { return static_cast<unsigned>(channels_.size()); }
  bool channel_idle(unsigned ch) const;

  u32 read_sfr(u32 offset) override;
  void write_sfr(u32 offset, u32 value) override;

  /// Register per-channel counters under `component` (e.g. "dma").
  void register_metrics(telemetry::MetricsRegistry& registry,
                        std::string component) const;

  /// Snapshot support. Only valid while quiescent(): no unit is in
  /// flight, so the durable state is channel programming, progress and
  /// statistics. done_src wiring is reconstructed by the SoC.
  void save_state(snapshot::Writer& w) const {
    w.put_u32(static_cast<u32>(channels_.size()));
    for (const Channel& ch : channels_) {
      w.put_u64(ch.config.src);
      w.put_u64(ch.config.dst);
      w.put_u32(ch.config.count);
      w.put_u8(ch.config.bytes);
      w.put_u32(static_cast<u32>(ch.config.src_step));
      w.put_u32(static_cast<u32>(ch.config.dst_step));
      w.put_bool(ch.config.continuous);
      w.put_u32(ch.config.units_per_trigger);
      w.put_bool(ch.enabled);
      w.put_u64(ch.src);
      w.put_u64(ch.dst);
      w.put_u32(ch.remaining);
      w.put_u32(ch.credit);
      w.put_u64(ch.stats.units);
      w.put_u64(ch.stats.blocks);
      w.put_u64(ch.stats.triggers);
    }
    w.put_u32(static_cast<u32>(rr_next_));
  }
  void restore_state(snapshot::Reader& r) {
    if (r.get_u32() != channels_.size() && r.ok()) {
      r.fail("dma channel count mismatch");
      return;
    }
    for (Channel& ch : channels_) {
      ch.config.src = r.get_u64();
      ch.config.dst = r.get_u64();
      ch.config.count = r.get_u32();
      ch.config.bytes = r.get_u8();
      ch.config.src_step = static_cast<i32>(r.get_u32());
      ch.config.dst_step = static_cast<i32>(r.get_u32());
      ch.config.continuous = r.get_bool();
      ch.config.units_per_trigger = r.get_u32();
      ch.enabled = r.get_bool();
      ch.src = r.get_u64();
      ch.dst = r.get_u64();
      ch.remaining = r.get_u32();
      ch.credit = r.get_u32();
      ch.stats.units = r.get_u64();
      ch.stats.blocks = r.get_u64();
      ch.stats.triggers = r.get_u64();
    }
    rr_next_ = r.get_u32();
    phase_ = Phase::kIdle;
    active_ = 0;
    unit_data_ = 0;
    observation_ = mcds::DmaObservation{};
  }

 private:
  struct Channel {
    ChannelConfig config;
    bool enabled = false;
    Addr src = 0;
    Addr dst = 0;
    u32 remaining = 0;
    u32 credit = 0;  // released units (free-running: unlimited)
    unsigned done_src = ~0u;
    ChannelStats stats;
  };

  enum class Phase : u8 { kIdle, kRead, kWrite };

  bool channel_ready(const Channel& ch) const;
  void reload(Channel& ch);

  std::vector<Channel> channels_;
  bus::Crossbar* bus_;
  IrqRouter* router_;
  bus::MasterPort port_;
  Phase phase_ = Phase::kIdle;
  unsigned active_ = 0;   // channel owning the in-flight unit
  u32 unit_data_ = 0;
  unsigned rr_next_ = 0;  // round-robin channel arbitration
  mcds::DmaObservation observation_;
};

}  // namespace audo::periph
