// The EEC Emulation Memory (EMEM): 256/512 KiB of SRAM shared between the
// calibration overlay and the trace sink (Figure 4).
//
// Trace modes:
//  * kFill  — record until full, then drop (pre-trigger capture);
//  * kRing  — overwrite the oldest messages (post-trigger capture: freeze
//             via the kStopTrace action keeps the window around the
//             trigger);
//  * kStream — a FIFO drained by the DAP at a configurable bandwidth;
//             overflows when production outpaces the tool interface, the
//             exact effect §5's bandwidth argument is about.
//
// The calibration overlay pages model the ED's original purpose: RAM that
// tools map over flash parameter blocks during calibration.
#pragma once

#include <deque>
#include <vector>

#include "common/types.hpp"
#include "mcds/mcds.hpp"
#include "mem/mem_array.hpp"

namespace audo::telemetry {
class MetricsRegistry;
}

namespace audo::emem {

enum class TraceMode : u8 { kFill, kRing, kStream };

struct EmemConfig {
  u32 size_bytes = 512 * 1024;
  /// Bytes reserved for calibration overlay pages (not available to trace).
  u32 overlay_bytes = 128 * 1024;
  TraceMode mode = TraceMode::kFill;

  u32 trace_bytes() const { return size_bytes - overlay_bytes; }
};

class Emem final : public mcds::TraceSink {
 public:
  explicit Emem(const EmemConfig& config);

  // ---- trace sink ----
  bool push(mcds::EncodedMessage msg, Cycle now) override;

  /// Stream mode: drain up to `budget_bytes` through the tool interface.
  /// Returns the number of bytes actually moved. Drained messages are
  /// appended to the host buffer.
  usize drain(u64 budget_bytes);

  /// Fill/ring mode: download the whole buffer content to the host
  /// buffer (end-of-run upload over DAP/JTAG).
  void download_all();

  /// Messages that arrived at the host side (after drain/download).
  const std::vector<mcds::EncodedMessage>& host_units() const {
    return host_units_;
  }

  usize occupancy_bytes() const { return occupancy_; }
  u64 total_pushed_bytes() const { return pushed_bytes_; }
  u64 total_pushed_messages() const { return pushed_messages_; }
  u64 dropped_messages() const { return dropped_; }
  u64 overwritten_messages() const { return overwritten_; }
  const EmemConfig& config() const { return config_; }

  void clear();

  /// Register trace-sink counters under `component` (e.g. "emem").
  void register_metrics(telemetry::MetricsRegistry& registry,
                        std::string component) const;

  /// Snapshot support: buffered and host-side trace units, drain
  /// position, statistics and the calibration overlay.
  void save_state(snapshot::Writer& w) const {
    w.put_u32(static_cast<u32>(buffer_.size()));
    for (const mcds::EncodedMessage& m : buffer_) w.put_bytes(m.bytes);
    w.put_u64(occupancy_);
    w.put_u64(partial_drained_);
    w.put_u32(static_cast<u32>(host_units_.size()));
    for (const mcds::EncodedMessage& m : host_units_) w.put_bytes(m.bytes);
    w.put_u64(pushed_bytes_);
    w.put_u64(pushed_messages_);
    w.put_u64(dropped_);
    w.put_u64(overwritten_);
    overlay_.save_state(w);
  }
  void restore_state(snapshot::Reader& r) {
    buffer_.clear();
    const u32 buffered = r.get_u32();
    for (u32 i = 0; i < buffered && r.ok(); ++i) {
      buffer_.push_back(mcds::EncodedMessage{r.get_bytes()});
    }
    occupancy_ = r.get_u64();
    partial_drained_ = r.get_u64();
    host_units_.clear();
    const u32 hosted = r.get_u32();
    for (u32 i = 0; i < hosted && r.ok(); ++i) {
      host_units_.push_back(mcds::EncodedMessage{r.get_bytes()});
    }
    pushed_bytes_ = r.get_u64();
    pushed_messages_ = r.get_u64();
    dropped_ = r.get_u64();
    overwritten_ = r.get_u64();
    overlay_.restore_state(r);
  }

  // ---- calibration overlay ----
  mem::MemArray& overlay() { return overlay_; }

 private:
  EmemConfig config_;
  std::deque<mcds::EncodedMessage> buffer_;
  usize occupancy_ = 0;
  u64 partial_drained_ = 0;  // bytes of buffer_.front() already drained
  std::vector<mcds::EncodedMessage> host_units_;

  u64 pushed_bytes_ = 0;
  u64 pushed_messages_ = 0;
  u64 dropped_ = 0;
  u64 overwritten_ = 0;

  mem::MemArray overlay_;
};

}  // namespace audo::emem
