#include "emem/emem.hpp"

#include <cassert>

#include "telemetry/metrics.hpp"

namespace audo::emem {

void Emem::register_metrics(telemetry::MetricsRegistry& registry,
                            std::string component) const {
  registry.counter(component, "pushed_bytes", &pushed_bytes_);
  registry.counter(component, "pushed_messages", &pushed_messages_);
  registry.counter(component, "dropped", &dropped_);
  registry.counter(component, "overwritten", &overwritten_);
  registry.gauge(std::move(component), "occupancy_bytes",
                 [this] { return static_cast<u64>(occupancy_); });
}

Emem::Emem(const EmemConfig& config)
    : config_(config), overlay_(config.overlay_bytes) {
  assert(config.overlay_bytes <= config.size_bytes);
}

bool Emem::push(mcds::EncodedMessage msg, Cycle now) {
  (void)now;
  const usize size = msg.size();
  if (size > config_.trace_bytes()) {
    ++dropped_;
    return false;
  }
  switch (config_.mode) {
    case TraceMode::kFill:
    case TraceMode::kStream:
      if (occupancy_ + size > config_.trace_bytes()) {
        ++dropped_;
        return false;
      }
      break;
    case TraceMode::kRing:
      while (occupancy_ + size > config_.trace_bytes()) {
        assert(!buffer_.empty());
        occupancy_ -= buffer_.front().size() - partial_drained_;
        partial_drained_ = 0;
        buffer_.pop_front();
        ++overwritten_;
      }
      break;
  }
  occupancy_ += size;
  pushed_bytes_ += size;
  ++pushed_messages_;
  buffer_.push_back(std::move(msg));
  return true;
}

usize Emem::drain(u64 budget_bytes) {
  usize moved = 0;
  while (budget_bytes > 0 && !buffer_.empty()) {
    mcds::EncodedMessage& front = buffer_.front();
    const u64 remaining = front.size() - partial_drained_;
    if (remaining <= budget_bytes) {
      budget_bytes -= remaining;
      moved += remaining;
      occupancy_ -= remaining;
      partial_drained_ = 0;
      host_units_.push_back(std::move(front));
      buffer_.pop_front();
    } else {
      partial_drained_ += budget_bytes;
      occupancy_ -= budget_bytes;
      moved += budget_bytes;
      budget_bytes = 0;
    }
  }
  return moved;
}

void Emem::download_all() {
  partial_drained_ = 0;
  while (!buffer_.empty()) {
    host_units_.push_back(std::move(buffer_.front()));
    buffer_.pop_front();
  }
  occupancy_ = 0;
}

void Emem::clear() {
  buffer_.clear();
  host_units_.clear();
  occupancy_ = 0;
  partial_drained_ = 0;
}

}  // namespace audo::emem
