#include "host/sim_pool.hpp"

namespace audo::host {

unsigned SimPool::hardware_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

SimPool::SimPool(unsigned jobs) : jobs_(jobs == 0 ? hardware_jobs() : jobs) {
  // The calling thread is worker 0; spawn the rest.
  workers_.reserve(jobs_ - 1);
  for (unsigned w = 1; w < jobs_; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SimPool::~SimPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void SimPool::work_on_current_task() {
  // Claim indices from the shared counter until the task is exhausted.
  // No work stealing, no per-worker queues: the claim order is the only
  // scheduling freedom, and results are keyed by index, so output is
  // independent of it.
  for (;;) {
    const usize i = next_index_.fetch_add(1);
    if (i >= task_count_) break;
    try {
      (*task_fn_)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    if (completed_.fetch_add(1) + 1 == task_count_) {
      // Last job overall: wake the submitter (taking the mutex orders the
      // notify after the submitter's wait registration).
      std::lock_guard<std::mutex> lock(mutex_);
      task_done_.notify_all();
    }
  }
}

void SimPool::worker_loop() {
  u64 seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      // Counted while still under the lock, so a submitter draining
      // stragglers cannot miss this worker.
      ++workers_active_;
    }
    work_on_current_task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --workers_active_;
      task_done_.notify_all();
    }
  }
}

void SimPool::run(usize count, const std::function<void(usize)>& fn) {
  if (count == 0) return;
  if (jobs_ == 1 || count == 1) {
    // Strictly serial: identical to the pre-pool code path.
    for (usize i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // A worker woken late for the previous task may still be inside its
    // (empty) claim loop; publishing a new task while it reads the old
    // one would race. Drain before publishing.
    task_done_.wait(lock, [&] { return workers_active_ == 0; });
    task_fn_ = &fn;
    task_count_ = count;
    next_index_.store(0);
    completed_.store(0);
    first_error_ = nullptr;
    ++generation_;
  }
  task_ready_.notify_all();
  work_on_current_task();  // the caller is worker 0
  {
    std::unique_lock<std::mutex> lock(mutex_);
    task_done_.wait(lock, [&] { return completed_.load() == task_count_; });
    if (first_error_) {
      std::exception_ptr err = first_error_;
      first_error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(err);
    }
  }
}

}  // namespace audo::host
