// Crash-resilient campaign journal: an append-only JSONL manifest that
// records the identity of a fault campaign (workload, seed, configuration
// fingerprint, boot-image hash) followed by one line per completed
// scenario. Because every line is flushed and fsync()ed as it is
// appended, a campaign killed at any point — including kill -9 mid-write
// — leaves a manifest whose intact prefix is a faithful record of the
// work already done. `audo-faultcamp --resume <manifest>` replays that
// prefix instead of re-running it, skips completed scenarios, and merges
// journaled and fresh results into the same report and
// classification_hash an uninterrupted campaign would have produced.
//
// Lives in src/host (not src/optimize) because it is generic journaling
// infrastructure: records are plain data, and the optimize layer adapts
// its ScenarioResult to/from them.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace audo::host {

/// Identity of the campaign a manifest belongs to. Resuming under a
/// different identity is refused — a manifest only makes sense for the
/// exact (workload, seed, configuration, scenario set) it was started
/// with.
struct CampaignHeader {
  std::string workload;
  u64 campaign_seed = 0;
  u64 config_fingerprint = 0;
  /// Checksum of the warm boot image the campaign forks scenarios from
  /// (0 when running cold-boot).
  u64 snapshot_hash = 0;
  u64 scenario_count = 0;
};

/// One journaled scenario outcome. Mirrors optimize::ScenarioResult as
/// plain data (the outcome is its string name, arrays are vectors) so
/// the host layer needs no dependency on the optimize layer.
struct ScenarioRecord {
  std::string name;
  u64 seed = 0;
  std::string outcome;
  u64 cycles = 0;
  bool halted = false;
  u64 signature = 0;
  std::string task;
  std::vector<u64> injected;
  std::vector<u64> alarms;
  u64 budget_cycles = 0;
  u64 timeout_ms = 0;
  u32 attempts = 1;
};

/// Everything recoverable from a manifest file.
struct ManifestContents {
  CampaignHeader header;
  std::vector<ScenarioRecord> records;
};

/// Append-only JSONL journal. Thread-safe: scenario workers append from
/// pool threads. Each append is one complete line, flushed and fsynced
/// before returning, so the file never contains a torn record followed
/// by an intact one.
class CampaignManifest {
 public:
  CampaignManifest() = default;
  ~CampaignManifest() { close(); }
  CampaignManifest(const CampaignManifest&) = delete;
  CampaignManifest& operator=(const CampaignManifest&) = delete;

  /// Create/truncate `path` and write the header line.
  Status create(const std::string& path, const CampaignHeader& header);

  /// Open an existing manifest for appending further records (resume).
  Status open_append(const std::string& path);

  /// Journal one completed scenario (thread-safe, durable on return).
  Status append(const ScenarioRecord& record);

  void close();
  bool is_open() const { return file_ != nullptr; }

  /// Parse a manifest. A torn trailing line (the crash happened
  /// mid-write) is silently dropped; a malformed line anywhere else is
  /// an error. Missing header = error.
  static Result<ManifestContents> load(const std::string& path);

 private:
  std::FILE* file_ = nullptr;
  std::mutex mutex_;
};

}  // namespace audo::host
