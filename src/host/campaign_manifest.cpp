#include "host/campaign_manifest.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/json.hpp"

namespace audo::host {

namespace {

constexpr const char* kManifestKind = "audo-campaign-manifest";
constexpr u64 kManifestVersion = 1;

std::string header_line(const CampaignHeader& h) {
  json::JsonWriter w;
  w.begin_object();
  w.kv("kind", kManifestKind);
  w.kv("version", kManifestVersion);
  w.kv("workload", h.workload);
  w.kv("campaign_seed", h.campaign_seed);
  w.kv("config_fingerprint", h.config_fingerprint);
  w.kv("snapshot_hash", h.snapshot_hash);
  w.kv("scenario_count", h.scenario_count);
  w.end_object();
  return std::move(w).str();
}

std::string record_line(const ScenarioRecord& r) {
  json::JsonWriter w;
  w.begin_object();
  w.kv("name", r.name);
  w.kv("seed", r.seed);
  w.kv("outcome", r.outcome);
  w.kv("cycles", r.cycles);
  w.kv("halted", r.halted);
  w.kv("signature", r.signature);
  w.kv("task", r.task);
  w.key("injected");
  w.begin_array();
  for (u64 v : r.injected) w.value(v);
  w.end_array();
  w.key("alarms");
  w.begin_array();
  for (u64 v : r.alarms) w.value(v);
  w.end_array();
  w.kv("budget_cycles", r.budget_cycles);
  w.kv("timeout_ms", r.timeout_ms);
  w.kv("attempts", u64{r.attempts});
  w.end_object();
  return std::move(w).str();
}

u64 get_u64(const json::JsonValue& obj, const std::string& key) {
  const json::JsonValue* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->as_u64() : 0;
}

std::string get_string(const json::JsonValue& obj, const std::string& key) {
  const json::JsonValue* v = obj.find(key);
  return v != nullptr && v->is_string() ? v->string : std::string();
}

std::vector<u64> get_u64_array(const json::JsonValue& obj,
                               const std::string& key) {
  std::vector<u64> out;
  const json::JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_array()) return out;
  out.reserve(v->array.size());
  for (const json::JsonValue& e : v->array) {
    out.push_back(e.is_number() ? e.as_u64() : 0);
  }
  return out;
}

Status errno_error(const std::string& what, const std::string& path) {
  return error(StatusCode::kNotFound,
               what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

Status CampaignManifest::create(const std::string& path,
                                const CampaignHeader& header) {
  close();
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return errno_error("cannot create", path);
  const std::string line = header_line(header) + "\n";
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    return errno_error("cannot write", path);
  }
  ::fsync(::fileno(file_));
  return Status::ok();
}

Status CampaignManifest::open_append(const std::string& path) {
  close();
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) return errno_error("cannot open", path);
  return Status::ok();
}

Status CampaignManifest::append(const ScenarioRecord& record) {
  const std::string line = record_line(record) + "\n";
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) {
    return error(StatusCode::kFailedPrecondition, "manifest is not open");
  }
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    return error(StatusCode::kResourceExhausted, "manifest append failed");
  }
  // Durability point: after this returns, a kill -9 cannot lose the
  // scenario (at worst the *next* one's line is torn, which load()
  // tolerates).
  ::fsync(::fileno(file_));
  return Status::ok();
}

void CampaignManifest::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<ManifestContents> CampaignManifest::load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return errno_error("cannot read", path);
  std::string text;
  char buf[4096];
  usize n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);

  ManifestContents out;
  bool have_header = false;
  usize pos = 0;
  usize line_no = 0;
  while (pos < text.size()) {
    const usize eol = text.find('\n', pos);
    ++line_no;
    if (eol == std::string::npos) {
      // No terminating newline: the process died mid-append. The torn
      // tail is not a completed record — drop it.
      break;
    }
    const std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    Result<json::JsonValue> parsed = json::json_parse(line);
    if (!parsed.is_ok()) {
      return error(StatusCode::kInvalidArgument,
                   path + ":" + std::to_string(line_no) +
                       ": malformed manifest line");
    }
    const json::JsonValue& obj = parsed.value();
    if (!have_header) {
      if (get_string(obj, "kind") != kManifestKind) {
        return error(StatusCode::kInvalidArgument,
                     path + ": not a campaign manifest");
      }
      if (get_u64(obj, "version") != kManifestVersion) {
        return error(StatusCode::kInvalidArgument,
                     path + ": unsupported manifest version");
      }
      out.header.workload = get_string(obj, "workload");
      out.header.campaign_seed = get_u64(obj, "campaign_seed");
      out.header.config_fingerprint = get_u64(obj, "config_fingerprint");
      out.header.snapshot_hash = get_u64(obj, "snapshot_hash");
      out.header.scenario_count = get_u64(obj, "scenario_count");
      have_header = true;
      continue;
    }
    ScenarioRecord r;
    r.name = get_string(obj, "name");
    r.seed = get_u64(obj, "seed");
    r.outcome = get_string(obj, "outcome");
    r.cycles = get_u64(obj, "cycles");
    const json::JsonValue* halted = obj.find("halted");
    r.halted = halted != nullptr && halted->boolean;
    r.signature = get_u64(obj, "signature");
    r.task = get_string(obj, "task");
    r.injected = get_u64_array(obj, "injected");
    r.alarms = get_u64_array(obj, "alarms");
    r.budget_cycles = get_u64(obj, "budget_cycles");
    r.timeout_ms = get_u64(obj, "timeout_ms");
    r.attempts = static_cast<u32>(get_u64(obj, "attempts"));
    out.records.push_back(std::move(r));
  }
  if (!have_header) {
    return error(StatusCode::kInvalidArgument,
                 path + ": missing manifest header");
  }
  return out;
}

}  // namespace audo::host
