// One self-contained simulation job for the SimPool.
//
// A SimJob carries everything needed to run one workload on one SoC
// configuration to completion. The Soc is constructed *inside* run(), on
// whichever worker claimed the job, and destroyed with it — one live Soc
// per worker, never shared, never reused across jobs. That, plus the rule
// that any randomness (common/prng.hpp) is seeded per job, is what makes
// a parallel sweep bit-identical to the serial one.
#pragma once

#include <functional>

#include "isa/program.hpp"
#include "soc/soc.hpp"

namespace audo::host {

struct SimJobResult {
  u64 cycles = 0;
  u64 instructions = 0;
  bool halted = false;
  bool loaded = false;  // program image placed successfully
  /// The run stopped because its cycle budget (max_cycles, or the SoC's
  /// hard kDefaultRunBudget) ran out before the TC halted. Reported, not
  /// thrown: a hung workload is a result, not an error.
  bool budget_exceeded = false;
  /// The run stopped because the SoC went quiescent (TC parked in WFI)
  /// with no enabled wake source left — detected immediately instead of
  /// burning the whole cycle budget (see soc::Soc::idle_deadlock()).
  bool idle_deadlock = false;
};

struct SimJob {
  soc::SocConfig config;
  /// Program image; must outlive run(). Shared read-only across jobs.
  const isa::Program* program = nullptr;
  Addr tc_entry = 0;
  Addr pcp_entry = 0;
  /// Extra SoC setup after load. Runs on the worker thread: it must only
  /// touch the Soc it is handed (and per-job state it owns).
  std::function<void(soc::Soc&)> configure;
  /// Cycle budget; 0 selects soc::Soc::kDefaultRunBudget so even a
  /// livelocked workload terminates with budget_exceeded set.
  u64 max_cycles = 0;
  /// Warm fork: a boot image captured from an identical cold boot of the
  /// same configuration shape (soc::Soc::save_snapshot at a quiescent
  /// point). When set, run() restores it after reset and only simulates
  /// the remaining cycles — bit-identical to the cold run, since the
  /// snapshot round-trip is. Must outlive run(); shared read-only.
  const soc::Snapshot* boot = nullptr;

  SimJobResult run() const {
    SimJobResult result;
    soc::Soc soc(config);
    if (program != nullptr) {
      if (Status s = soc.load(*program); !s.is_ok()) {
        return result;
      }
    }
    result.loaded = true;
    if (configure) configure(soc);
    soc.reset(tc_entry, pcp_entry);
    const u64 budget =
        max_cycles == 0 ? soc::Soc::kDefaultRunBudget : max_cycles;
    if (boot != nullptr && boot->cycle < budget &&
        soc.restore_snapshot(*boot).is_ok()) {
      soc.run(budget - boot->cycle);
    } else if (boot != nullptr) {
      // A restore failure leaves the machine indeterminate: rebuild and
      // run cold rather than report garbage.
      return SimJob{config, program, tc_entry, pcp_entry,
                    configure, max_cycles, nullptr}
          .run();
    } else {
      soc.run(max_cycles);
    }
    result.cycles = soc.cycle();
    result.instructions = soc.tc().retired();
    result.halted = soc.tc().halted();
    result.idle_deadlock = soc.idle_deadlock();
    result.budget_exceeded = !result.halted && !result.idle_deadlock;
    return result;
  }
};

}  // namespace audo::host
