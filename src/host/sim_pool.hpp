// Host-side parallel simulation job engine.
//
// The §6 methodology is a sweep: replay a workload suite over every
// architecture option (and option pair) to rank them. Each of those runs
// is an independent multi-million-cycle simulation of a self-contained
// `Soc`, so the sweep is embarrassingly parallel on the host — what makes
// the trace-driven methodology usable at scale (cf. Castells-Rufas et
// al., PAPERS.md).
//
// Determinism contract: SimPool is a fixed-size thread pool with *no work
// stealing* — workers claim job indices from one atomic counter and write
// each result into a slot owned by that index, so results always come back
// in submission order regardless of which worker ran what or how the OS
// scheduled them. A parallel sweep is therefore bit-identical to the
// serial one as long as every job is self-contained (its own Soc, its own
// PRNG seed — never a shared one).
#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace audo::host {

class SimPool {
 public:
  /// `jobs` = number of concurrent workers, including the calling thread.
  /// 0 picks the host's hardware concurrency; 1 means strictly serial
  /// (no threads are ever created).
  explicit SimPool(unsigned jobs = 0);
  ~SimPool();

  SimPool(const SimPool&) = delete;
  SimPool& operator=(const SimPool&) = delete;

  unsigned jobs() const { return jobs_; }

  /// Run fn(0) .. fn(count-1), each exactly once, across the workers.
  /// Returns when all calls finished. The first exception thrown by any
  /// job is rethrown here (remaining jobs still run to completion).
  /// Not reentrant: do not call run() from inside a job.
  void run(usize count, const std::function<void(usize)>& fn);

  /// Deterministic parallel map: results indexed by job, so the output
  /// order is the submission order, independent of scheduling.
  template <typename R, typename Fn>
  std::vector<R> map(usize count, Fn&& fn) {
    std::vector<R> results(count);
    run(count, [&](usize i) { results[i] = fn(i); });
    return results;
  }

  /// What `jobs = 0` resolves to on this host (never 0).
  static unsigned hardware_jobs();

 private:
  void worker_loop();
  void work_on_current_task();

  unsigned jobs_;

  // Current task, published under mutex_; workers claim indices lock-free.
  const std::function<void(usize)>* task_fn_ = nullptr;
  usize task_count_ = 0;
  std::atomic<usize> next_index_{0};
  std::atomic<usize> completed_{0};
  u64 generation_ = 0;  // bumped per run() so workers see a fresh task

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable task_done_;
  std::exception_ptr first_error_;
  unsigned workers_active_ = 0;  // workers inside a claim loop (under mutex_)
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace audo::host
