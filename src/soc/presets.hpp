// Device-family presets: configurations loosely mirroring the public
// datasheet parameters of the AUDO device generations the paper spans.
// Absolute values are calibrated to the simulator, not the silicon; what
// matters is the *relative* structure (cache sizes, flash speed, PCP
// presence) across the family.
#pragma once

#include "soc/soc_config.hpp"

namespace audo::soc {

/// TC1797-like: the paper's state-of-the-art device. 180 MHz, 4 MB
/// flash, 16K I$ + 4K D$, PCP2, large scratchpads.
inline SocConfig tc1797_like() {
  SocConfig c;
  c.name = "TC1797-like";
  c.clock_hz = 180'000'000;
  c.pflash.size = 4u * 1024 * 1024;
  c.pflash.wait_states = 5;
  c.pflash.code_buffers = 2;
  c.pflash.data_buffers = 1;
  c.icache.size_bytes = 16 * 1024;
  c.dcache.size_bytes = 4 * 1024;
  c.dspr_bytes = 128 * 1024;
  c.pspr_bytes = 40 * 1024;
  c.lmu_bytes = 128 * 1024;
  c.has_pcp = true;
  c.dma_channels = 8;
  return c;
}

/// TC1767-like: the mid-range sibling (Figure 3's board). 133 MHz, 2 MB
/// flash, smaller caches and scratchpads, PCP present.
inline SocConfig tc1767_like() {
  SocConfig c;
  c.name = "TC1767-like";
  c.clock_hz = 133'000'000;
  c.pflash.size = 2u * 1024 * 1024;
  c.pflash.wait_states = 4;  // slower clock -> fewer wait states
  c.pflash.code_buffers = 2;
  c.pflash.data_buffers = 1;
  c.icache.size_bytes = 8 * 1024;
  c.dcache.size_bytes = 0;  // data side: read buffers only
  c.dcache.enabled = false;
  c.dspr_bytes = 68 * 1024;
  c.pspr_bytes = 24 * 1024;
  c.lmu_bytes = 64 * 1024;
  c.has_pcp = true;
  c.dma_channels = 8;
  return c;
}

/// TC1796-like: the previous generation (§2's predecessor reference).
/// 150 MHz, 2 MB flash, no D-cache, fewer buffers.
inline SocConfig tc1796_like() {
  SocConfig c;
  c.name = "TC1796-like";
  c.clock_hz = 150'000'000;
  c.pflash.size = 2u * 1024 * 1024;
  c.pflash.wait_states = 6;
  c.pflash.code_buffers = 1;
  c.pflash.data_buffers = 1;
  c.pflash.sequential_prefetch = false;
  c.icache.size_bytes = 16 * 1024;
  c.dcache.enabled = false;
  c.dspr_bytes = 56 * 1024;
  c.pspr_bytes = 16 * 1024;
  c.lmu_bytes = 64 * 1024;
  c.has_pcp = true;
  c.dma_channels = 8;
  return c;
}

}  // namespace audo::soc
