#include "soc/frame_digest.hpp"

#include <algorithm>

namespace audo::soc {

namespace {

// The component index order used by WindowedFrameDigest::components.
constexpr const char* kComponents[WindowedFrameDigest::kNumComponents] = {
    "tc", "pcp", "sri", "flash", "dma", "safety", "irq"};

void core_fields(const char* component, const mcds::CoreObservation& c,
                 std::vector<FrameField>& out) {
  const auto add = [&](const char* field, u64 v) {
    out.push_back(FrameField{component, field, v});
  };
  add("present", c.present);
  add("retired", c.retired);
  add("retire_pc", c.retire_pc);
  add("stall", static_cast<u64>(c.stall));
  add("attr.symptom", static_cast<u64>(c.attr.symptom));
  add("attr.root", static_cast<u64>(c.attr.root));
  add("attr.blocking_master", static_cast<u64>(c.attr.blocking_master));
  add("attr.blocking_slave", c.attr.blocking_slave);
  add("discontinuity", c.discontinuity);
  add("discontinuity_target", c.discontinuity_target);
  add("irq_entry", c.irq_entry);
  add("irq_prio", c.irq_prio);
  add("irq_exit", c.irq_exit);
  add("trap_entry", c.trap_entry);
  add("trap_class", c.trap_class);
  add("debug_marker", c.debug_marker);
  add("data_access", c.data_access);
  add("data_write", c.data_write);
  add("data_addr", c.data_addr);
  add("data_value", c.data_value);
  add("data_bytes", c.data_bytes);
  add("icache_access", c.icache_access);
  add("icache_hit", c.icache_hit);
  add("icache_miss", c.icache_miss);
  add("dcache_access", c.dcache_access);
  add("dcache_hit", c.dcache_hit);
  add("dcache_miss", c.dcache_miss);
  add("dspr_access", c.dspr_access);
  add("flash_data_access", c.flash_data_access);
  add("sram_data_access", c.sram_data_access);
  add("periph_data_access", c.periph_data_access);
}

}  // namespace

std::vector<FrameField> enumerate_frame_fields(
    const mcds::ObservationFrame& f) {
  std::vector<FrameField> out;
  out.reserve(96);
  core_fields("tc", f.tc, out);
  core_fields("pcp", f.pcp, out);
  const auto add = [&](const char* component, const char* field, u64 v) {
    out.push_back(FrameField{component, field, v});
  };
  add("sri", "any_grant", f.sri.any_grant);
  add("sri", "granted_master", static_cast<u64>(f.sri.granted_master));
  add("sri", "granted_slave", f.sri.granted_slave);
  add("sri", "granted_addr", f.sri.granted_addr);
  add("sri", "granted_write", f.sri.granted_write);
  add("sri", "contention", f.sri.contention);
  add("sri", "waiting_masters", f.sri.waiting_masters);
  add("sri", "error_response", f.sri.error_response);
  add("sri", "error_master", static_cast<u64>(f.sri.error_master));
  add("sri", "completed_count", f.sri.completed_count);
  for (unsigned i = 0; i < f.sri.completed_count; ++i) {
    const bus::CompletedTransaction& t = f.sri.completed[i];
    add("sri", "completed.master", static_cast<u64>(t.master));
    add("sri", "completed.slave", t.slave);
    add("sri", "completed.addr", t.addr);
    add("sri", "completed.write", t.write);
    add("sri", "completed.fetch", t.fetch);
    add("sri", "completed.issued_at", t.issued_at);
    add("sri", "completed.granted_at", t.granted_at);
  }
  add("flash", "code_access", f.flash.code_access);
  add("flash", "code_buffer_hit", f.flash.code_buffer_hit);
  add("flash", "data_access", f.flash.data_access);
  add("flash", "data_buffer_hit", f.flash.data_buffer_hit);
  add("flash", "array_conflict", f.flash.array_conflict);
  add("dma", "transfer", f.dma.transfer);
  add("dma", "channel", f.dma.channel);
  add("safety", "ecc_corrected", f.safety.ecc_corrected);
  add("safety", "ecc_uncorrectable", f.safety.ecc_uncorrectable);
  add("safety", "bus_error", f.safety.bus_error);
  add("safety", "wdt_timeout", f.safety.wdt_timeout);
  add("safety", "cpu_trap", f.safety.cpu_trap);
  add("safety", "alarm_irq", f.safety.alarm_irq);
  add("safety", "halt_request", f.safety.halt_request);
  add("irq", "count", f.irq.count);
  for (unsigned i = 0; i < f.irq.count; ++i) {
    add("irq", "raised.priority", f.irq.raised[i].priority);
    add("irq", "raised.target", f.irq.raised[i].target);
  }
  return out;
}

u64 frame_fingerprint(const mcds::ObservationFrame& f) {
  u64 h = kFnvOffset;
  for (const FrameField& field : enumerate_frame_fields(f)) {
    h = fnv1a(h, field.value);
  }
  return h;
}

u64 component_fingerprint(const mcds::ObservationFrame& f,
                          const char* component) {
  u64 h = kFnvOffset;
  const std::string_view want{component};
  for (const FrameField& field : enumerate_frame_fields(f)) {
    if (field.component == want) h = fnv1a(h, field.value);
  }
  return h;
}

// ---- FrameStreamHasher ---------------------------------------------------

void FrameStreamHasher::observe(const mcds::ObservationFrame& frame) {
  ++frames;
  hash = fnv1a(hash, frame.cycle);
  for (const FrameField& field : enumerate_frame_fields(frame)) {
    hash = fnv1a(hash, field.value);
  }
}

void FrameStreamHasher::skip_idle(const mcds::ObservationFrame& idle, u64 n) {
  frames += n;
  hash = fnv1a(hash, n);
  hash = fnv1a(hash, idle.cycle);
  for (const FrameField& field : enumerate_frame_fields(idle)) {
    hash = fnv1a(hash, field.value);
  }
}

// ---- WindowedFrameDigest -------------------------------------------------

WindowedFrameDigest::WindowedFrameDigest(u32 window_bits)
    : window_bits_(window_bits) {}

const char* WindowedFrameDigest::component_name(unsigned i) {
  return kComponents[i];
}

void WindowedFrameDigest::flush_run() {
  if (run_len_ == 0) return;
  window_hash_ = fnv1a(window_hash_, run_fp_);
  window_hash_ = fnv1a(window_hash_, run_len_);
  for (unsigned c = 0; c < kNumComponents; ++c) {
    component_hash_[c] = fnv1a(component_hash_[c], run_component_fp_[c]);
    component_hash_[c] = fnv1a(component_hash_[c], run_len_);
  }
  run_len_ = 0;
}

void WindowedFrameDigest::flush_window() {
  flush_run();
  if (!window_open_) return;
  Window w;
  w.index = window_index_;
  w.frames = window_frames_;
  w.digest = window_hash_;
  w.components = component_hash_;
  windows_.push_back(w);
  window_open_ = false;
  window_frames_ = 0;
  window_hash_ = kFnvOffset;
  component_hash_.fill(kFnvOffset);
}

void WindowedFrameDigest::add_run(const mcds::ObservationFrame& frame, u64 fp,
                                  u64 n) {
  // Frames arrive densely: this run covers [next_cycle_, next_cycle_+n).
  while (n > 0) {
    const u64 index = (next_cycle_ - 1) >> window_bits_;
    if (!window_open_) {
      window_open_ = true;
      window_index_ = index;
      window_hash_ = kFnvOffset;
      component_hash_.fill(kFnvOffset);
    } else if (index != window_index_) {
      flush_window();
      continue;
    }
    const u64 window_end = ((window_index_ + 1) << window_bits_) + 1;
    const u64 take = std::min<u64>(n, window_end - next_cycle_);
    if (run_len_ != 0 && run_fp_ != fp) flush_run();
    if (run_len_ == 0) {
      run_fp_ = fp;
      for (unsigned c = 0; c < kNumComponents; ++c) {
        run_component_fp_[c] = component_fingerprint(frame, kComponents[c]);
      }
    }
    run_len_ += take;
    window_frames_ += take;
    total_frames_ += take;
    next_cycle_ += take;
    n -= take;
  }
}

void WindowedFrameDigest::observe(const mcds::ObservationFrame& frame) {
  next_cycle_ = frame.cycle;  // tolerate the first frame starting past 1
  add_run(frame, frame_fingerprint(frame), 1);
}

void WindowedFrameDigest::skip_idle(const mcds::ObservationFrame& idle,
                                    u64 n) {
  add_run(idle, frame_fingerprint(idle), n);
}

const std::vector<WindowedFrameDigest::Window>& WindowedFrameDigest::finish() {
  flush_window();
  return windows_;
}

u64 WindowedFrameDigest::stream_digest() const {
  u64 h = kFnvOffset;
  for (const Window& w : windows_) {
    h = fnv1a(h, w.index);
    h = fnv1a(h, w.frames);
    h = fnv1a(h, w.digest);
  }
  return h;
}

}  // namespace audo::soc
