// SocTracer: adapts the per-cycle ObservationFrame into host-telemetry
// timeline tracks — the visual counterpart of the MCDS trace path.
//
// Tracks produced (one Perfetto "thread" each):
//  * "TC pipeline" / "PCP pipeline" — coalesced run/stall-cause spans;
//  * "TC irq" / "PCP irq"           — nested interrupt entry/exit spans;
//  * "SRI <master>"                  — one track per bus master with a
//    wait span (issue → grant) and a transfer span (grant → completion)
//    per transaction, named after the addressed slave;
//  * "DMA"                           — per-channel transfer instants;
//  * "Safety"                        — alarm instants from the safety
//    monitor (ECC events, bus errors, watchdog timeouts, traps);
//  * "EEC"                           — trace-message drops;
//  * counter series — TC IPC, flash buffer hit rates, SRI contention,
//    EMEM fill level and trace-message volume, sampled every
//    `counter_interval` cycles.
//
// Like the MCDS, the tracer is strictly read-only over the frame: wiring
// it up (Soc::set_tracer) cannot change architectural behaviour, and a
// null tracer costs one branch per cycle.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/snapshot.hpp"
#include "mcds/observation.hpp"
#include "telemetry/timeline.hpp"

namespace audo::soc {

class SocTracer {
 public:
  struct Options {
    /// Cycles between counter-series samples.
    u32 counter_interval = 1024;
    telemetry::TimelineOptions timeline;
  };

  SocTracer();
  explicit SocTracer(Options options);

  /// Give bus-transaction spans their slave names (done by
  /// Soc::set_tracer; index = crossbar slave index).
  void set_slave_names(std::vector<std::string> names);

  /// Consume one product-chip cycle (called from Soc::step()).
  void observe(const mcds::ObservationFrame& frame);

  /// Consume the EEC side of one cycle (called by the Emulation Device):
  /// cumulative message/byte/drop counts and the current EMEM fill level.
  void observe_eec(Cycle now, usize emem_occupancy_bytes, u64 trace_messages,
                   u64 dropped_messages);

  /// Bulk-advance over an idle window (cycles `from`+1 .. `to` inclusive,
  /// all quiescent): replays the counter-sampling schedule exactly as if
  /// each idle frame had been observed — identical sample cycles, identical
  /// zero-valued series — while the open WFI pipeline span simply extends
  /// into one aggregated idle span. Called by Soc::skip_idle().
  void skip_idle(Cycle from, Cycle to);

  /// EEC-side counterpart for the Emulation Device's fast-forward path:
  /// replays the EEC sampling schedule over the idle window with the
  /// (constant) occupancy and cumulative message count. Drop counts cannot
  /// change while the SoC is quiescent, so no instants are emitted.
  void skip_idle_eec(Cycle from, Cycle to, usize emem_occupancy_bytes,
                     u64 trace_messages);

  /// Close all open spans and flush pending counters; call once after the
  /// run, before exporting.
  void finish(Cycle now);

  telemetry::Timeline& timeline() { return timeline_; }
  const telemetry::Timeline& timeline() const { return timeline_; }

  Status write_chrome_json(const std::string& path, u64 clock_hz) const {
    return timeline_.write_chrome_json(path, clock_hz);
  }

  /// Snapshot support: the counter-sampling schedules and interval
  /// accumulators, so a restored tracer samples at the same cycles with
  /// the same values as an uninterrupted one. The timeline itself (spans
  /// already emitted before the snapshot) is not serialized — a restored
  /// tracer records the run's continuation from the capture point.
  void save_state(snapshot::Writer& w) const {
    w.put_u64(next_sample_);
    w.put_u64(interval_cycles_);
    w.put_u64(interval_retired_);
    w.put_u64(interval_code_acc_);
    w.put_u64(interval_code_hit_);
    w.put_u64(interval_data_acc_);
    w.put_u64(interval_data_hit_);
    w.put_u64(interval_contention_);
    for (u64 v : interval_stall_root_) w.put_u64(v);
    w.put_u64(next_eec_sample_);
    w.put_u64(last_trace_messages_);
    w.put_u64(last_dropped_);
  }
  void restore_state(snapshot::Reader& r) {
    next_sample_ = r.get_u64();
    interval_cycles_ = r.get_u64();
    interval_retired_ = r.get_u64();
    interval_code_acc_ = r.get_u64();
    interval_code_hit_ = r.get_u64();
    interval_data_acc_ = r.get_u64();
    interval_data_hit_ = r.get_u64();
    interval_contention_ = r.get_u64();
    for (u64& v : interval_stall_root_) v = r.get_u64();
    next_eec_sample_ = r.get_u64();
    last_trace_messages_ = r.get_u64();
    last_dropped_ = r.get_u64();
  }

 private:
  struct CoreState {
    telemetry::Timeline::TrackId pipe_track = 0;
    telemetry::Timeline::TrackId irq_track = 0;
    bool span_open = false;
    mcds::StallCause span_cause = mcds::StallCause::kNone;
    bool span_running = false;  // retired > 0 during the span
    Cycle span_start = 0;
    unsigned irq_depth = 0;
  };

  void observe_core(const mcds::CoreObservation& obs, CoreState& core,
                    Cycle now);
  void close_core_span(CoreState& core, Cycle now);
  void sample_counters(Cycle now);

  Options options_;
  telemetry::Timeline timeline_;

  CoreState tc_;
  CoreState pcp_;
  std::array<telemetry::Timeline::TrackId, bus::kNumMasters> bus_tracks_{};
  telemetry::Timeline::TrackId dma_track_ = 0;
  telemetry::Timeline::TrackId safety_track_ = 0;
  telemetry::Timeline::TrackId eec_track_ = 0;
  std::vector<std::string> slave_names_;

  // Counter-series accumulators over the current interval.
  Cycle next_sample_ = 0;
  u64 interval_cycles_ = 0;
  u64 interval_retired_ = 0;
  u64 interval_code_acc_ = 0;
  u64 interval_code_hit_ = 0;
  u64 interval_data_acc_ = 0;
  u64 interval_data_hit_ = 0;
  u64 interval_contention_ = 0;
  // TC stall root causes (kFrontend..kBusSlaveBusy only: parked cycles
  // are excluded so fast-forwarded idle windows — which contribute only
  // interval_cycles_ — replay bit-identically to stepping them).
  std::array<u64, mcds::kNumStallRootCauses> interval_stall_root_{};

  // EEC-side deltas.
  Cycle next_eec_sample_ = 0;
  u64 last_trace_messages_ = 0;
  u64 last_dropped_ = 0;
};

}  // namespace audo::soc
