// The product-chip part: composition of cores, memories, bus fabric and
// peripherals into one cycle-steppable SoC (Figure 2/4 of the paper,
// product-chip side). The Emulation Device (src/ed) wraps this class and
// adds the EEC without touching it — mirroring how the real ED contains
// the unchanged product chip.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "bus/crossbar.hpp"
#include "cache/cache.hpp"
#include "common/snapshot.hpp"
#include "common/status.hpp"
#include "cpu/cpu.hpp"
#include "fault/safety_monitor.hpp"
#include "isa/decode_cache.hpp"
#include "isa/program.hpp"
#include "isa/superblock.hpp"
#include "mcds/observation.hpp"
#include "mem/dflash.hpp"
#include "mem/pflash.hpp"
#include "mem/sram.hpp"
#include "periph/dma.hpp"
#include "periph/irq_router.hpp"
#include "periph/peripherals.hpp"
#include "periph/sfr_bridge.hpp"
#include "soc/snapshot.hpp"
#include "soc/soc_config.hpp"

namespace audo::telemetry {
class MetricsRegistry;
class PhaseProbe;
struct RunReport;
}

namespace audo::fault {
class FaultInjector;
}

namespace audo::soc {

class SocTracer;

/// Per-cycle frame consumer attached to the Soc (e.g. the CPI-stack
/// builder). Unlike the tracer, observers also get an explicit bulk
/// notification for fast-forwarded idle windows so their aggregates stay
/// bit-identical to stepping every cycle.
class FrameObserver {
 public:
  virtual ~FrameObserver() = default;
  /// One stepped cycle; `frame` is the fully published observation.
  virtual void observe(const mcds::ObservationFrame& frame) = 0;
  /// `n` skipped idle cycles, each equivalent to observing `idle`.
  virtual void skip_idle(const mcds::ObservationFrame& idle, u64 n) = 0;
};

/// Per-cycle frame consumer for fast-window cycles with veto power: the
/// Emulation Device feeds its MCDS from here. Returning false ends the
/// window after the current cycle (trigger fired, drain budget reached);
/// the cycle itself is already fully published. Plain observers can't
/// stop a window, which is why this is a separate interface.
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual bool on_frame(const mcds::ObservationFrame& frame) = 0;
};

/// Cumulative per-core stall-attribution buckets (one counter per
/// mcds::StallRootCause, kNone = cycles with issue). The buckets
/// partition the core's cycles: their sum equals cpu::Cpu::cycles().
struct StallTotals {
  std::array<u64, mcds::kNumStallRootCauses> cycles{};
  u64 total() const {
    u64 sum = 0;
    for (const u64 c : cycles) sum += c;
    return sum;
  }
  u64 operator[](mcds::StallRootCause root) const {
    return cycles[static_cast<unsigned>(root)];
  }
};

/// What ended an idle fast-forward window: the component whose scheduled
/// activity bounded the skip, or the run budget expiring first.
enum class WakeSource : u8 {
  kStm,
  kWatchdog,
  kCrank,
  kAdc,
  kCan,
  kFault,
  kMcds,    // EEC bounded the window (periodic sync / counter sample)
  kBudget,  // the run budget expired before the next activity
  kCount,
};
inline constexpr unsigned kNumWakeSources =
    static_cast<unsigned>(WakeSource::kCount);
const char* to_string(WakeSource source);

/// Cumulative idle fast-forward accounting (see SocConfig::fast_forward).
struct FastForwardStats {
  u64 skipped_cycles = 0;  // cycles jumped over instead of stepped
  u64 wakeups = 0;         // skip windows taken
  std::array<u64, kNumWakeSources> wake_counts{};
};

/// Why run_fast_window() declined to open a superblock window at the SoC
/// level, before the core's own fast_enter() got a say. Together with
/// cpu::FastBail these are the `exec/gate.*` / `exec/bail.*` metrics.
enum class FastGate : u8 {
  kInstrumented,  // fault injector or phase probe attached
  kFabricBusy,    // DMA in flight or crossbar not idle
  kIrqPending,    // service-request raises awaiting delivery
  kPcpBusy,       // PCP running or about to act
  kMonitorBusy,   // safety monitor has pending reactions
  kActivityNear,  // next scheduled activity within one cycle
  kCount,
};
inline constexpr unsigned kNumFastGates =
    static_cast<unsigned>(FastGate::kCount);
const char* to_string(FastGate gate);

/// Cumulative superblock-tier coverage accounting: how much of the run
/// executed through fast windows and, when it didn't, why. Counters are
/// host-side observability only — they never feed back into timing — and
/// are excluded from cross-tier identity comparisons (they obviously
/// differ between tiers).
struct ExecTierStats {
  u64 windows = 0;      // fast windows opened (incl. chunk-chain re-entries)
  u64 fast_cycles = 0;  // cycles executed inside fast windows
  std::array<u64, kNumFastGates> gates{};       // SoC-level declines
  std::array<u64, cpu::kNumFastBails> bails{};  // core-level declines
};

/// Service-request node ids wired at construction.
struct SrcIds {
  unsigned stm0 = 0;
  unsigned stm1 = 0;
  unsigned crank_tooth = 0;
  unsigned crank_sync = 0;
  unsigned adc_done = 0;
  unsigned can_rx = 0;
  unsigned can_tx = 0;
  unsigned wdt_timeout = 0;
  unsigned smu_alarm = 0;
  std::vector<unsigned> dma_done;
};

class Soc {
 public:
  explicit Soc(const SocConfig& config);
  ~Soc();

  Soc(const Soc&) = delete;
  Soc& operator=(const Soc&) = delete;

  /// Load a program image: each section is placed by physical address
  /// (flash, scratchpads, LMU, PCP RAMs, DFlash).
  Status load(const isa::Program& program);

  /// Reset cores. The TC starts at `tc_entry`; the PCP (if present)
  /// starts parked in WFI at `pcp_entry` and runs channel programs on
  /// interrupts.
  void reset(Addr tc_entry, Addr pcp_entry = 0);

  /// Advance one clock cycle and publish the observation frame.
  void step();

  /// Hard ceiling on run(): even a caller asking for "unbounded"
  /// execution terminates — fault campaigns rely on this to turn
  /// livelocked runs into a reportable outcome rather than a hang.
  static constexpr u64 kDefaultRunBudget = 200'000'000;

  /// Run until the TC halts or `max_cycles` elapse; returns cycles run.
  /// `max_cycles` = 0 selects kDefaultRunBudget. With
  /// SocConfig::fast_forward (the default) idle stretches are jumped in
  /// O(1) — bit-identical to stepping them — and a WFI park with no
  /// enabled wake source returns immediately with idle_deadlock() set
  /// (in both modes) instead of burning the budget.
  u64 run(u64 max_cycles = 0);

  // ---- superblock fast tier (DESIGN.md, "Execution tiers") -----------

  /// Execute up to `max_cycles` cycles through the superblock fast tier,
  /// publishing a bit-identical ObservationFrame for every cycle (tracer,
  /// observers and `sink` all fire per cycle). Returns the cycles run —
  /// 0 whenever the machine state doesn't admit a window (wrong tier,
  /// fault injector attached, bus traffic, no superblock at the PC, ...),
  /// in which case the caller just step()s. `sink` may end the window
  /// early by returning false. run() calls this at the top of its loop;
  /// the Emulation Device calls it with its MCDS sink.
  u64 run_fast_window(u64 max_cycles, FrameSink* sink = nullptr);

  /// Invalidate predecoded superblocks overlapping [addr, addr+bytes).
  /// Flash aliases are normalised, so a write through either the cached
  /// or uncached window drops the (single) cached-alias region. This is
  /// the one funnel every code-modification path flows through: program
  /// load, runtime PSPR writes (core stores, DMA — via the scratchpad
  /// write listener), snapshot restore and fault-injector attach.
  void invalidate_code(Addr addr, u32 bytes);

  const isa::SuperblockCache& superblocks() const { return superblocks_; }

  // ---- quiescence & idle fast-forward --------------------------------

  /// True when the next step() would only pass time: both cores parked
  /// (WFI/halted) with drained pipelines, no DMA unit in flight or ready,
  /// and an empty bus fabric. Peripheral timers keep counting; their next
  /// event bounds the skippable window.
  bool quiescent() const;

  /// Earliest future cycle at which any time-driven component does
  /// something (peripheral compare/deadline, crank tooth, scheduled
  /// fault). `source`, if non-null, receives the component that owns the
  /// minimum.
  Cycle next_activity_cycle(WakeSource* source = nullptr) const;

  /// Bulk-advance a quiescent SoC by `n` cycles in O(1): every relative
  /// counter and deadline moves exactly as `n` idle step() calls would
  /// have moved it, and the tracer's sampling schedule is replayed.
  /// Callers must keep `n` below the distance to next_activity_cycle().
  /// `source` labels what bounded the window in ff_stats().
  void skip_idle(u64 n, WakeSource source = WakeSource::kBudget);

  /// The last run() ended because the SoC went quiescent with no enabled
  /// wake source left (WFI park forever): no pending fault events, no
  /// armed watchdog, and no enabled interrupt a core or the DMA would
  /// accept. Detected in both fast-forward modes.
  bool idle_deadlock() const { return idle_deadlock_; }

  const FastForwardStats& ff_stats() const { return ff_stats_; }

  /// Superblock-tier coverage counters (windows, fast cycles, per-reason
  /// gate/bail counts). All zero under ExecTier::kAccurate.
  const ExecTierStats& exec_stats() const { return exec_stats_; }

  /// Fill `report.exec_tier` from exec_stats(): tier name, window/cycle
  /// coverage split, and the nonzero gate/bail decline reasons sorted
  /// descending. Shared by every RunReport producer (audo-profile,
  /// audo-faultcamp, benches) so the block always means the same thing.
  void fill_exec_tier_report(telemetry::RunReport& report) const;

  // ---- snapshot / restore --------------------------------------------

  /// Capture the complete machine state into a versioned, checksummed
  /// image. Requires quiescent(): at a quiescent point every transient
  /// (in-flight bus transactions, pipeline fills, DMA units) is drained,
  /// so the remaining state is plain data. The image records the
  /// configuration's shape_fingerprint(); restoring it onto a machine
  /// with a different shape is rejected.
  Result<Snapshot> save_snapshot() const;

  /// Restore a previously captured image into this machine. Call on a
  /// freshly constructed Soc with the same architecture shape, after
  /// load()ing the same program (memory contents come from the image;
  /// load() is what populates the host-side decode cache). The resulting
  /// machine continues bit-identically to the one that was saved. On a
  /// non-ok return the machine state is indeterminate and the Soc must
  /// be discarded — corrupt or wrong-version images never get this far
  /// (Snapshot::deserialize validates before any state is touched).
  Status restore_snapshot(const Snapshot& snap);

  /// Composable flavour of save_snapshot(): write the machine sections
  /// into an existing Writer so a wrapper (the Emulation Device) can
  /// append its own sections to the same image. Precondition: quiescent().
  void save_state(snapshot::Writer& w) const;

  /// Composable flavour of restore_snapshot(): consume the machine
  /// sections from `r` (shape/quiescence contract as restore_snapshot;
  /// the caller checks the shape fingerprint and end-of-payload).
  void restore_state(snapshot::Reader& r);

  Cycle cycle() const { return cycle_; }
  const mcds::ObservationFrame& frame() const { return frame_; }
  const SocConfig& config() const { return config_; }
  const SrcIds& srcs() const { return srcs_; }

  cpu::Cpu& tc() { return *tc_; }
  const cpu::Cpu& tc() const { return *tc_; }
  cpu::Cpu* pcp() { return pcp_.get(); }
  const cpu::Cpu* pcp() const { return pcp_.get(); }

  bus::Crossbar& sri() { return sri_; }
  const bus::Crossbar& sri() const { return sri_; }
  mem::PFlash& pflash() { return pflash_; }
  mem::DFlashSlave& dflash() { return dflash_; }
  mem::Scratchpad& dspr() { return dspr_; }
  mem::Scratchpad& pspr() { return pspr_; }
  mem::Scratchpad* pcp_pram() { return pcp_pram_.get(); }
  mem::Scratchpad* pcp_dram() { return pcp_dram_.get(); }
  mem::SramSlave& lmu() { return lmu_; }
  cache::Cache& icache() { return icache_; }
  cache::Cache& dcache() { return dcache_; }

  periph::IrqRouter& irq_router() { return irq_router_; }
  periph::DmaController& dma() { return dma_; }
  periph::Stm& stm() { return stm_; }
  periph::CrankWheel& crank() { return crank_; }
  periph::Adc& adc() { return adc_; }
  periph::CanLite& can() { return can_; }
  periph::Watchdog& watchdog() { return watchdog_; }
  periph::PeriphBridge& bridge() { return bridge_; }
  fault::SafetyMonitor& safety() { return monitor_; }
  const fault::SafetyMonitor& safety() const { return monitor_; }

  /// Attach a fault injector: binds it to the memories, fabric, bridge
  /// and monitor, and steps it at the top of every cycle. The injector
  /// must outlive the SoC or be detached with nullptr first (detaching
  /// also unhooks its ECC domains from the memory arrays).
  void set_fault_injector(fault::FaultInjector* injector);
  fault::FaultInjector* fault_injector() { return injector_; }

  /// Host acceleration: predecoded program image consulted by the cores'
  /// fetch path. On by default; lookups are validated against the word
  /// just read from memory, so enabling it cannot change behaviour (see
  /// isa/decode_cache.hpp). Disabling takes effect immediately (the cache
  /// is cleared); re-enabling populates on the next load().
  void set_decode_cache_enabled(bool enabled);
  bool decode_cache_enabled() const { return decode_cache_enabled_; }
  const isa::DecodeCache& decode_cache() const { return decode_cache_; }

  // ---- host telemetry (all optional, null by default) ----------------
  //
  // Attaching any of these cannot change architectural behaviour: the
  // tracer consumes the published frame read-only, the probe only reads
  // the host clock, and the registry stores pointers into statistics the
  // components maintain anyway.

  /// Attach a timeline tracer fed from step(); binds the crossbar's slave
  /// names for bus-span labels. Pass nullptr to detach.
  void set_tracer(SocTracer* tracer);
  SocTracer* tracer() { return tracer_; }

  /// Attach a per-cycle frame observer (CPI-stack builder, DAG builder).
  /// Receives the published frame after every step() and a bulk
  /// notification for each fast-forwarded idle window. Replaces the whole
  /// observer list (nullptr detaches everything); use add_frame_observer
  /// to stack several.
  void set_frame_observer(FrameObserver* observer) {
    observers_.clear();
    if (observer != nullptr) observers_.push_back(observer);
  }
  /// Append an observer; notification order is attachment order.
  void add_frame_observer(FrameObserver* observer) {
    if (observer != nullptr) observers_.push_back(observer);
  }
  FrameObserver* frame_observer() {
    return observers_.empty() ? nullptr : observers_.front();
  }

  // ---- stall attribution (DESIGN.md, "Stall attribution & interference
  // matrix") ----------------------------------------------------------

  /// Cumulative root-cause buckets per core. The kNone bucket counts
  /// cycles with issue, kWfi/kHalted the parked cycles (fast-forwarded
  /// idle windows land there in bulk), so the buckets always sum to the
  /// core's cycle count.
  const StallTotals& tc_stall_totals() const { return tc_stall_totals_; }
  const StallTotals& pcp_stall_totals() const { return pcp_stall_totals_; }

  /// The observation frame a skipped idle cycle is equivalent to: cores
  /// parked (kWfi/kHalted, attributed likewise), empty fabric, no
  /// strobes. Used by the fast-forward paths (EmulationDevice, frame
  /// observers) so idle windows feed triggers/counters bit-identically.
  mcds::ObservationFrame make_idle_frame() const;

  /// Attach a host phase profiler timing each step() phase.
  void set_phase_probe(telemetry::PhaseProbe* probe) { probe_ = probe; }
  telemetry::PhaseProbe* phase_probe() { return probe_; }

  /// Register every component's counters ("tc", "icache", "pflash",
  /// "sri", ...). Call once, after construction; samples reflect live
  /// state at each collect().
  void register_metrics(telemetry::MetricsRegistry& registry) const;

 private:
  SocConfig config_;

  bus::Crossbar sri_;
  mem::PFlash pflash_;
  mem::DFlashSlave dflash_;
  mem::SramSlave lmu_;
  mem::Scratchpad dspr_;
  mem::Scratchpad pspr_;
  mem::ScratchpadSlave dspr_slave_;
  mem::ScratchpadSlave pspr_slave_;
  std::unique_ptr<mem::Scratchpad> pcp_pram_;
  std::unique_ptr<mem::Scratchpad> pcp_dram_;
  std::unique_ptr<mem::ScratchpadSlave> pcp_dram_slave_;

  cache::Cache icache_;
  cache::Cache dcache_;

  periph::IrqRouter irq_router_;
  periph::PeriphBridge bridge_;
  SrcIds srcs_;  // registered before the peripherals that post to them
  periph::Stm stm_;
  periph::Watchdog watchdog_;
  periph::CrankWheel crank_;
  periph::Adc adc_;
  periph::CanLite can_;
  periph::DmaController dma_;

  std::unique_ptr<cpu::Cpu> tc_;
  std::unique_ptr<cpu::Cpu> pcp_;

  fault::SafetyMonitor monitor_;
  fault::FaultInjector* injector_ = nullptr;

  isa::DecodeCache decode_cache_;
  bool decode_cache_enabled_ = true;

  isa::SuperblockCache superblocks_;
  /// Scratchpad write listener on the PSPR: routes runtime writes over
  /// code into invalidate_code() (the funnel above).
  struct CodeWriteInvalidator final : mem::ScratchpadWriteListener {
    Soc* soc = nullptr;
    void on_scratchpad_write(Addr addr, unsigned bytes) override;
  };
  CodeWriteInvalidator pspr_invalidator_;

  /// Provably no wake source can ever fire again (idle-deadlock scan);
  /// call only while quiescent() holds.
  bool wake_impossible() const;

  /// Phase-4 attribution walk: refine the core's stall symptom into a
  /// root cause by inspecting the responsible port, the flash service
  /// class and the crossbar's per-cycle blocking record, then bump the
  /// core's totals bucket.
  void attribute_core_stall(const cpu::Cpu& cpu, mcds::CoreObservation& obs,
                            StallTotals& totals);

  Cycle cycle_ = 0;
  mcds::ObservationFrame frame_;

  // Flash slave indices on the SRI (the walk refines stalls on these two
  // via PFlash::access_class).
  unsigned s_fcode_ = 0;
  unsigned s_fdata_ = 0;

  StallTotals tc_stall_totals_;
  StallTotals pcp_stall_totals_;

  FastForwardStats ff_stats_;
  ExecTierStats exec_stats_;
  bool idle_deadlock_ = false;

  SocTracer* tracer_ = nullptr;
  std::vector<FrameObserver*> observers_;
  telemetry::PhaseProbe* probe_ = nullptr;
};

}  // namespace audo::soc
