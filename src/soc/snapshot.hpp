// The versioned, checksummed container for a full Soc state image.
//
// A Snapshot frames the raw byte payload produced by Soc::save_snapshot
// (or EmulationDevice::save_snapshot) with enough metadata to reject
// anything that is not a faithful image for this exact architecture:
//
//   magic      "ADSN"      — file-type check
//   version    u32         — format revision; mismatches are rejected,
//                            never reinterpreted
//   shape      u64         — SocConfig::shape_fingerprint() of the saved
//                            machine; a snapshot only restores onto a
//                            structurally identical configuration
//   cycle      u64         — soc cycle at capture (quiescence point)
//   length     u64         — payload byte count
//   checksum   u64         — FNV-1a over the payload
//   payload    bytes
//
// deserialize()/from_file() validate all of the above before a single
// byte reaches a component, so a corrupt, truncated or wrong-version
// image yields a clear Status and an untouched machine — never UB or a
// partial restore (ISSUE 8 loader hardening).
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace audo::soc {

struct Snapshot {
  static constexpr u32 kMagic = 0x4E534441;  // "ADSN" little-endian
  static constexpr u32 kVersion = 1;

  u64 shape_fingerprint = 0;
  Cycle cycle = 0;
  std::vector<u8> payload;

  /// FNV-1a over the payload (the stored checksum of a valid image).
  u64 checksum() const;

  /// Frame the snapshot into its on-disk byte layout.
  std::vector<u8> serialize() const;

  /// Parse and fully validate an image. Errors name the failing layer
  /// (magic / version / truncation / length / checksum).
  static Result<Snapshot> deserialize(const std::vector<u8>& bytes);

  Status to_file(const std::string& path) const;
  static Result<Snapshot> from_file(const std::string& path);
};

}  // namespace audo::soc
