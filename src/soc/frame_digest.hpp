// Shared FNV-1a digests over the per-cycle observation stream — the one
// definition of "what the frame hash covers", used by the execution-tier
// identity tests AND the record/replay regression lab (src/replay), so
// golden hashes and test hashes can never skew apart.
//
// Two digest shapes:
//  * FrameStreamHasher — the *exact* stream digest: includes the cycle
//    stamp and folds a fast-forwarded idle skip as (n, idle-frame). It
//    matches bit-for-bit across execution tiers within one fast-forward
//    setting (what the tier tests pin), but by design hashes differently
//    when the skip chunking changes.
//  * WindowedFrameDigest — the *canonical* digest the replay goldens
//    store: per-frame fingerprints with the cycle stamp excluded,
//    run-length-encoded and split into fixed cycle windows. Identical
//    runs yield identical window digests under either exec tier, with
//    fast-forward on or off, and regardless of how idle skips are
//    chunked — the invariance the replay oracle's re-run relies on.
#pragma once

#include <array>
#include <vector>

#include "common/bits.hpp"
#include "mcds/observation.hpp"
#include "soc/soc.hpp"

namespace audo::soc {

/// One enumerated frame field: which component and field it belongs to
/// plus its value widened to u64. The enumeration order is the digest
/// definition — every digest below hashes exactly this sequence.
struct FrameField {
  const char* component;  // "tc", "pcp", "sri", "flash", "dma", "safety", "irq"
  const char* field;
  u64 value = 0;
};

/// Enumerate every architectural field of `f` except the cycle stamp,
/// in a fixed order. Fields are enumerated explicitly (never memcmp'd)
/// so struct padding can never fake a match or a mismatch. The replay
/// divergence reporter walks this same list to name the first differing
/// component/field.
std::vector<FrameField> enumerate_frame_fields(const mcds::ObservationFrame& f);

/// FNV-1a fingerprint of one frame, cycle stamp excluded — the
/// position-independent per-cycle value the canonical digests build on.
u64 frame_fingerprint(const mcds::ObservationFrame& f);

/// Fingerprint of one component's fields only ("tc", "sri", ...); used
/// for the per-window component sub-digests in replay goldens.
u64 component_fingerprint(const mcds::ObservationFrame& f,
                          const char* component);

/// Exact stream digest (includes frame.cycle). The historical test hash:
/// attach as an observer and compare `hash`/`frames` between runs made
/// under the same fast-forward setting.
class FrameStreamHasher final : public FrameObserver {
 public:
  u64 hash = kFnvOffset;
  u64 frames = 0;

  void observe(const mcds::ObservationFrame& frame) override;
  void skip_idle(const mcds::ObservationFrame& idle, u64 n) override;
};

/// Canonical windowed digest stream for replay goldens.
///
/// Frames are fingerprinted with the cycle stamp excluded and collected
/// as (fingerprint, run-length) pairs; runs are closed at fixed window
/// boundaries (cycle / 2^window_bits). A window's digest hashes its RLE
/// pair sequence, so n stepped idle cycles and one skip_idle(idle, n)
/// produce the same digest — and so does any re-chunking of the skip.
class WindowedFrameDigest final : public FrameObserver {
 public:
  /// 32768-cycle windows: fine enough to localize a divergence, coarse
  /// enough that golden files stay small.
  static constexpr u32 kDefaultWindowBits = 15;

  struct Window {
    u64 index = 0;        // cycle range [index << bits, (index+1) << bits)
    u64 frames = 0;       // cycles covered (stepped + skipped)
    u64 digest = 0;       // FNV over the window's RLE pair stream
    /// Per-component sub-digests over the same RLE stream, so a window
    /// mismatch can name the diverging component even when no reference
    /// run is available. Indexed like component_names().
    std::array<u64, 7> components{};
  };

  explicit WindowedFrameDigest(u32 window_bits = kDefaultWindowBits);

  void observe(const mcds::ObservationFrame& frame) override;
  void skip_idle(const mcds::ObservationFrame& idle, u64 n) override;

  /// Close the open run/window and return the completed window list.
  /// The observer may keep observing afterwards (a new window opens).
  const std::vector<Window>& finish();

  /// Windows flushed so far (the currently open window is not included
  /// until the stream crosses its boundary or finish() is called). The
  /// replay oracle verifies these online while the run is still going.
  const std::vector<Window>& windows() const { return windows_; }

  /// Digest over all window digests (order-sensitive) — the one-value
  /// summary stored as the golden stream digest.
  u64 stream_digest() const;

  u64 total_frames() const { return total_frames_; }
  u32 window_bits() const { return window_bits_; }

  static constexpr unsigned kNumComponents = 7;
  static const char* component_name(unsigned i);

 private:
  void add_run(const mcds::ObservationFrame& frame, u64 fp, u64 n);
  void flush_run();
  void flush_window();

  u32 window_bits_;
  u64 total_frames_ = 0;

  // Open window state.
  bool window_open_ = false;
  u64 window_index_ = 0;
  u64 window_frames_ = 0;
  u64 window_hash_ = kFnvOffset;
  std::array<u64, kNumComponents> component_hash_{};

  // Open RLE run state.
  u64 run_fp_ = 0;
  u64 run_len_ = 0;
  std::array<u64, kNumComponents> run_component_fp_{};

  // Next cycle the stream expects (frames arrive densely).
  u64 next_cycle_ = 1;

  std::vector<Window> windows_;
};

}  // namespace audo::soc
