#include "soc/soc.hpp"

#include <algorithm>

#include "fault/fault_injector.hpp"
#include "mem/memory_map.hpp"
#include "soc/tracer.hpp"
#include "telemetry/host_profiler.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/run_report.hpp"

namespace audo::soc {

const char* to_string(WakeSource source) {
  switch (source) {
    case WakeSource::kStm: return "stm";
    case WakeSource::kWatchdog: return "wdt";
    case WakeSource::kCrank: return "crank";
    case WakeSource::kAdc: return "adc";
    case WakeSource::kCan: return "can";
    case WakeSource::kFault: return "fault";
    case WakeSource::kMcds: return "mcds";
    case WakeSource::kBudget: return "budget";
    case WakeSource::kCount: break;
  }
  return "?";
}

const char* to_string(FastGate gate) {
  switch (gate) {
    case FastGate::kInstrumented: return "instrumented";
    case FastGate::kFabricBusy: return "fabric_busy";
    case FastGate::kIrqPending: return "irq_pending";
    case FastGate::kPcpBusy: return "pcp_busy";
    case FastGate::kMonitorBusy: return "monitor_busy";
    case FastGate::kActivityNear: return "activity_near";
    case FastGate::kCount: break;
  }
  return "?";
}

namespace {

SrcIds make_srcs(periph::IrqRouter& router, unsigned dma_channels) {
  SrcIds s;
  s.stm0 = router.add_source("stm.cmp0");
  s.stm1 = router.add_source("stm.cmp1");
  s.crank_tooth = router.add_source("crank.tooth");
  s.crank_sync = router.add_source("crank.sync");
  s.adc_done = router.add_source("adc.done");
  s.can_rx = router.add_source("can.rx");
  s.can_tx = router.add_source("can.tx");
  s.wdt_timeout = router.add_source("wdt.timeout");
  s.smu_alarm = router.add_source("smu.alarm");
  for (unsigned i = 0; i < dma_channels; ++i) {
    s.dma_done.push_back(router.add_source("dma.done." + std::to_string(i)));
  }
  return s;
}

// Side-effect-free word reader the superblock cache uses to (re)validate
// predecoded code against backing memory (no counters, no fault hooks).
u32 read_mem_word(const void* ctx, u32 offset) {
  return static_cast<const mem::MemArray*>(ctx)->peek(offset, 4);
}

}  // namespace

Soc::Soc(const SocConfig& config)
    : config_(config),
      sri_(config.arbitration),
      pflash_(config.pflash),
      dflash_(mem::kDFlashBase, config.dflash),
      lmu_("LMU", mem::kLmuBase, config.lmu_bytes, config.lmu_latency),
      dspr_(mem::kDsprBase, config.dspr_bytes),
      pspr_(mem::kPsprBase, config.pspr_bytes),
      dspr_slave_("DSPR.sri", &dspr_, config.spr_slave_latency),
      pspr_slave_("PSPR.sri", &pspr_, config.spr_slave_latency),
      icache_(config.icache),
      dcache_(config.dcache),
      srcs_(make_srcs(irq_router_, config.dma_channels)),
      stm_(&irq_router_, srcs_.stm0, srcs_.stm1),
      watchdog_(&irq_router_, srcs_.wdt_timeout),
      crank_(periph::CrankWheel::Config{.clock_hz = config.clock_hz},
             &irq_router_, srcs_.crank_tooth, srcs_.crank_sync),
      adc_(periph::Adc::Config{}, &irq_router_, srcs_.adc_done),
      can_(periph::CanLite::Config{}, &irq_router_, srcs_.can_rx, srcs_.can_tx),
      dma_(config.dma_channels, &sri_, &irq_router_),
      monitor_(config.safety) {
  assert(config.valid());

  // --- bus fabric ----------------------------------------------------
  const unsigned s_fcode = s_fcode_ = sri_.add_slave(&pflash_.code_port());
  const unsigned s_fdata = s_fdata_ = sri_.add_slave(&pflash_.data_port());
  const unsigned s_dflash = sri_.add_slave(&dflash_);
  const unsigned s_lmu = sri_.add_slave(&lmu_);
  const unsigned s_bridge = sri_.add_slave(&bridge_);
  const unsigned s_dspr = sri_.add_slave(&dspr_slave_);
  const unsigned s_pspr = sri_.add_slave(&pspr_slave_);

  using bus::PortFilter;
  const u32 fsize = config.pflash.size;
  (void)sri_.map_region(mem::kPFlashCachedBase, fsize, s_fcode,
                        PortFilter::kFetchOnly);
  (void)sri_.map_region(mem::kPFlashUncachedBase, fsize, s_fcode,
                        PortFilter::kFetchOnly);
  (void)sri_.map_region(mem::kPFlashCachedBase, fsize, s_fdata,
                        PortFilter::kDataOnly);
  (void)sri_.map_region(mem::kPFlashUncachedBase, fsize, s_fdata,
                        PortFilter::kDataOnly);
  (void)sri_.map_region(mem::kDFlashBase, config.dflash.size, s_dflash);
  (void)sri_.map_region(mem::kLmuBase, config.lmu_bytes, s_lmu);
  (void)sri_.map_region(mem::kPeriphBase, mem::kPeriphSize, s_bridge);
  (void)sri_.map_region(mem::kDsprBase, config.dspr_bytes, s_dspr);
  (void)sri_.map_region(mem::kPsprBase, config.pspr_bytes, s_pspr);

  // --- SFR windows ----------------------------------------------------
  using namespace periph::sfr;
  bridge_.add_device(kStm, kWindow, &stm_);
  bridge_.add_device(kWatchdog, kWindow, &watchdog_);
  bridge_.add_device(kCrank, kWindow, &crank_);
  bridge_.add_device(kAdc, kWindow, &adc_);
  bridge_.add_device(kCan, kWindow, &can_);
  bridge_.add_device(kDma, 0x20u * config.dma_channels, &dma_);

  for (unsigned i = 0; i < config.dma_channels; ++i) {
    dma_.set_done_src(i, srcs_.dma_done[i]);
  }

  // --- cores ----------------------------------------------------------
  cpu::CpuConfig tc_cfg;
  tc_cfg.issue_width = config.tc_issue_width;
  cpu::Cpu::Env tc_env;
  tc_env.decode_cache = &decode_cache_;
  tc_env.bus = &sri_;
  tc_env.code_spr = &pspr_;
  tc_env.data_spr = &dspr_;
  tc_env.icache = &icache_;
  tc_env.dcache = &dcache_;
  tc_env.flash = &pflash_.array();
  tc_env.flash_size = config.pflash.size;
  tc_env.irq = &irq_router_.tc_view();
  // Fast-tier superblock regions: the code scratchpad and the cached
  // flash alias (uncached flash execution never enters a fast window).
  superblocks_.add_region(mem::kPsprBase, config.pspr_bytes, /*pspr=*/true,
                          &read_mem_word, &pspr_.array());
  superblocks_.add_region(mem::kPFlashCachedBase, config.pflash.size,
                          /*pspr=*/false, &read_mem_word, &pflash_.array());
  tc_env.superblocks = &superblocks_;
  // Runtime writes over PSPR code (core stores via the bus slave, DMA
  // deposits) drop the overlapping superblocks through one funnel.
  pspr_invalidator_.soc = this;
  pspr_.set_write_listener(&pspr_invalidator_);
  tc_ = std::make_unique<cpu::Cpu>(tc_cfg, tc_env);

  if (config.has_pcp) {
    pcp_pram_ = std::make_unique<mem::Scratchpad>(mem::kPcpPramBase,
                                                  config.pcp_pram_bytes);
    pcp_dram_ = std::make_unique<mem::Scratchpad>(mem::kPcpDramBase,
                                                  config.pcp_dram_bytes);
    pcp_dram_slave_ = std::make_unique<mem::ScratchpadSlave>(
        "PCP.DRAM.sri", pcp_dram_.get(), config.spr_slave_latency);
    const unsigned s_pcp_dram = sri_.add_slave(pcp_dram_slave_.get());
    (void)sri_.map_region(mem::kPcpDramBase, config.pcp_dram_bytes, s_pcp_dram);

    cpu::CpuConfig pcp_cfg;
    pcp_cfg.is_pcp = true;
    pcp_cfg.issue_width = 1;
    pcp_cfg.fetch_block_words = 2;
    pcp_cfg.fetch_master = bus::MasterId::kPcpData;  // PCP has one port
    pcp_cfg.data_master = bus::MasterId::kPcpData;
    cpu::Cpu::Env pcp_env;
    pcp_env.decode_cache = &decode_cache_;
    pcp_env.bus = &sri_;
    pcp_env.code_spr = pcp_pram_.get();
    pcp_env.data_spr = pcp_dram_.get();
    pcp_env.irq = &irq_router_.pcp_view();
    pcp_ = std::make_unique<cpu::Cpu>(pcp_cfg, pcp_env);
  }

  monitor_.bind(&irq_router_, srcs_.smu_alarm, tc_.get(), &watchdog_);
}

Soc::~Soc() { set_fault_injector(nullptr); }

void Soc::set_fault_injector(fault::FaultInjector* injector) {
  if (injector_ != nullptr) injector_->unbind();
  injector_ = injector;
  // Injectors poke memory arrays directly (ECC bit flips) below every
  // write listener: drop all predecoded superblocks on attach and detach
  // so no predecode built around a poke survives. While attached, the
  // fast tier is disabled outright (run_fast_window gates on injector_).
  superblocks_.invalidate_all();
  if (injector_ == nullptr) return;
  fault::FaultInjector::Targets t;
  t.pflash = &pflash_.array();
  t.dspr = &dspr_.array();
  t.pspr = &pspr_.array();
  t.lmu = &lmu_.array();
  t.bus = &sri_;
  t.bridge = &bridge_;
  t.irq = &irq_router_;
  t.monitor = &monitor_;
  t.safety = config_.safety;
  injector_->bind(t);
}

Status Soc::load(const isa::Program& program) {
  for (const isa::Section& sec : program.sections()) {
    const Addr base = sec.base;
    // Predecode for the fetch path. add_section() invalidates whatever an
    // earlier load() placed at overlapping addresses; a flash section runs
    // out of either address alias, so it registers once with both bases —
    // one entry array, one range to drop on overlap.
    if (decode_cache_enabled_) {
      if (mem::is_pflash(base, config_.pflash.size)) {
        const u32 off = mem::pflash_offset(base);
        decode_cache_.add_section_aliased(mem::kPFlashCachedBase + off,
                                          mem::kPFlashUncachedBase + off,
                                          sec.bytes);
      } else {
        decode_cache_.add_section(base, sec.bytes);
      }
    }
    // The array().load() below bypasses the scratchpad write listener, so
    // drop superblocks over the loaded range here.
    invalidate_code(base, static_cast<u32>(sec.bytes.size()));
    if (mem::is_pflash(base, config_.pflash.size)) {
      pflash_.array().load(mem::pflash_offset(base), sec.bytes);
    } else if (dspr_.contains(base)) {
      dspr_.array().load(base - dspr_.base(), sec.bytes);
    } else if (pspr_.contains(base)) {
      pspr_.array().load(base - pspr_.base(), sec.bytes);
    } else if (pcp_pram_ != nullptr && pcp_pram_->contains(base)) {
      pcp_pram_->array().load(base - pcp_pram_->base(), sec.bytes);
    } else if (pcp_dram_ != nullptr && pcp_dram_->contains(base)) {
      pcp_dram_->array().load(base - pcp_dram_->base(), sec.bytes);
    } else if (base >= mem::kLmuBase &&
               base - mem::kLmuBase < config_.lmu_bytes) {
      lmu_.array().load(base - mem::kLmuBase, sec.bytes);
    } else if (base >= mem::kDFlashBase &&
               base - mem::kDFlashBase < config_.dflash.size) {
      dflash_.array().load(base - mem::kDFlashBase, sec.bytes);
    } else {
      return error(StatusCode::kOutOfRange,
                   "section '" + sec.name + "' at unmapped address");
    }
  }
  return Status::ok();
}

void Soc::reset(Addr tc_entry, Addr pcp_entry) {
  cycle_ = 0;
  frame_ = mcds::ObservationFrame{};
  ff_stats_ = FastForwardStats{};
  tc_stall_totals_ = StallTotals{};
  pcp_stall_totals_ = StallTotals{};
  idle_deadlock_ = false;
  tc_->reset(tc_entry);
  if (pcp_ != nullptr) {
    // With no PCP program (entry 0) the PCP parks in WFI; with one, its
    // init code runs (sets BIV, base registers) and parks itself.
    pcp_->reset(pcp_entry, /*start_halted=*/pcp_entry == 0);
  }
  icache_.invalidate_all();
  dcache_.invalidate_all();
  pflash_.invalidate_buffers();
}

void Soc::set_decode_cache_enabled(bool enabled) {
  decode_cache_enabled_ = enabled;
  if (!enabled) decode_cache_.clear();
}

void Soc::invalidate_code(Addr addr, u32 bytes) {
  if (mem::is_pflash(addr, config_.pflash.size)) {
    // Superblocks only exist over the cached alias; normalise so a write
    // through either flash window drops them.
    superblocks_.invalidate(mem::kPFlashCachedBase + mem::pflash_offset(addr),
                            bytes);
  } else {
    superblocks_.invalidate(addr, bytes);
  }
}

void Soc::CodeWriteInvalidator::on_scratchpad_write(Addr addr,
                                                    unsigned bytes) {
  soc->invalidate_code(addr, bytes);
}

void Soc::step() {
  ++cycle_;
  const Cycle now = cycle_;
  // Hot path: only the core observations need clearing here. sri/flash/
  // dma are assigned wholesale in phase 4 from structs their components
  // re-initialize every cycle, so re-zeroing the whole frame (including
  // the per-master completed-transaction array) each cycle is pure waste.
  frame_.cycle = now;
  frame_.tc.reset();
  frame_.pcp.reset();
  frame_.safety.reset();

  using telemetry::StepPhase;
  if (probe_ != nullptr) probe_->begin_cycle();

  // Phase 0: scheduled faults land before anything samples state, so an
  // event "at cycle N" is visible to every component during cycle N.
  if (injector_ != nullptr) injector_->step(now);

  // Phase 1: peripherals (may post interrupts visible to cores this cycle).
  if (probe_ != nullptr) probe_->begin(StepPhase::kPeripherals);
  stm_.step(now);
  watchdog_.step(now);
  crank_.step(now);
  adc_.step(now);
  can_.step(now);
  if (probe_ != nullptr) probe_->end(StepPhase::kPeripherals);

  // Phase 2: DMA (bus master) and cores issue their bus requests.
  if (probe_ != nullptr) probe_->begin(StepPhase::kDma);
  dma_.step(now);
  if (probe_ != nullptr) {
    probe_->end(StepPhase::kDma);
    probe_->begin(StepPhase::kCores);
  }
  tc_->step(now, frame_.tc);
  if (pcp_ != nullptr) {
    pcp_->step(now, frame_.pcp);
  }
  if (probe_ != nullptr) probe_->end(StepPhase::kCores);

  // Phase 3: memories sample time, fabric arbitrates and completes.
  if (probe_ != nullptr) probe_->begin(StepPhase::kMemories);
  pflash_.tick(now);
  if (probe_ != nullptr) {
    probe_->end(StepPhase::kMemories);
    probe_->begin(StepPhase::kBus);
  }
  sri_.step(now);
  if (probe_ != nullptr) probe_->end(StepPhase::kBus);

  // Phase 4: publish the observation frame. The attribution walk runs
  // after sri_.step so port states and the crossbar's per-cycle blocking
  // record reflect this cycle's post-arbitration truth.
  if (probe_ != nullptr) probe_->begin(StepPhase::kObserve);
  frame_.sri = sri_.observation();
  frame_.flash = pflash_.strobes();
  frame_.dma = dma_.observation();
  attribute_core_stall(*tc_, frame_.tc, tc_stall_totals_);
  if (pcp_ != nullptr) {
    attribute_core_stall(*pcp_, frame_.pcp, pcp_stall_totals_);
  }
  if (monitor_.enabled()) frame_.safety = monitor_.step_cycle(now, frame_);
  // Service-request raises since the last publish (phases 1-4: peripheral
  // posts, DMA-done, SFR-written posts, safety alarms) become this
  // cycle's strobe record. take_raises clears the router's latch, so a
  // raise is attributed to exactly one frame.
  frame_.irq.reset();
  if (irq_router_.raises_pending()) {
    periph::IrqRouter::Raise raised[periph::IrqRouter::kMaxRaisesPerCycle];
    const unsigned n = irq_router_.take_raises(raised);
    for (unsigned i = 0; i < n && i < mcds::IrqObservation::kMaxRaises; ++i) {
      frame_.irq.raised[frame_.irq.count++] = mcds::IrqObservation::Raise{
          raised[i].priority, static_cast<u8>(raised[i].target)};
    }
  }
  if (tracer_ != nullptr) tracer_->observe(frame_);
  for (FrameObserver* obs : observers_) obs->observe(frame_);
  if (probe_ != nullptr) probe_->end(StepPhase::kObserve);
}

void Soc::attribute_core_stall(const cpu::Cpu& cpu, mcds::CoreObservation& obs,
                               StallTotals& totals) {
  using mcds::StallCause;
  using mcds::StallRootCause;
  mcds::StallAttribution& attr = obs.attr;
  attr.symptom = obs.stall;
  attr.blocking_master = bus::MasterId::kCount;
  attr.blocking_slave = mcds::StallAttribution::kNoSlave;

  // Walk the responsible outstanding transaction: port waiting for a
  // grant -> lost arbitration (and the crossbar recorded to whom); port
  // being served -> the slave's service is the cost, refined for the two
  // flash ports into buffer-hit / array-read / port-conflict via the
  // flash's per-port access class. A stall with no bus transaction is a
  // core-local bubble (`fallback`).
  const auto walk_port = [&](const bus::MasterPort& port, bool on_bus,
                             StallRootCause fallback) {
    if (!on_bus || (!port.busy() && !port.done())) return fallback;
    const unsigned s = port.slave();
    attr.blocking_slave = static_cast<u8>(s);
    if (port.waiting_grant()) {
      attr.blocking_master = sri_.blocked_by(port.request().master);
      return StallRootCause::kBusArbitration;
    }
    if (s == s_fcode_ || s == s_fdata_) {
      switch (pflash_.access_class(s == s_fcode_)) {
        case mem::PFlash::AccessClass::kConflict:
          return StallRootCause::kFlashPortConflict;
        case mem::PFlash::AccessClass::kBufferHit:
          return StallRootCause::kFlashBuffer;
        default:
          return StallRootCause::kFlashRead;
      }
    }
    return StallRootCause::kBusSlaveBusy;
  };

  StallRootCause root = StallRootCause::kNone;
  if (obs.retired == 0) {
    switch (obs.stall) {
      case StallCause::kHalted:
        root = StallRootCause::kHalted;
        break;
      case StallCause::kWfi:
        root = StallRootCause::kWfi;
        break;
      case StallCause::kNone:
        // Zero-issue cycle without a symptom: irq/trap entry consumed it.
        root = StallRootCause::kFrontend;
        break;
      case StallCause::kExecLatency:
        root = StallRootCause::kExec;
        break;
      case StallCause::kIFetch:
        root = walk_port(cpu.fetch_port(), cpu.fetch_on_bus(),
                         StallRootCause::kFrontend);
        break;
      case StallCause::kLoadUse:
      case StallCause::kLsPortBusy:
        root = walk_port(cpu.data_port(), /*on_bus=*/true,
                         StallRootCause::kExec);
        break;
    }
  }
  attr.root = root;
  totals.cycles[static_cast<unsigned>(root)]++;
}

mcds::ObservationFrame Soc::make_idle_frame() const {
  using mcds::StallCause;
  using mcds::StallRootCause;
  mcds::ObservationFrame idle;
  idle.cycle = cycle_;
  idle.tc.present = true;
  idle.tc.stall = tc_->halted() ? StallCause::kHalted : StallCause::kWfi;
  idle.tc.attr.symptom = idle.tc.stall;
  idle.tc.attr.root =
      tc_->halted() ? StallRootCause::kHalted : StallRootCause::kWfi;
  if (pcp_ != nullptr) {
    idle.pcp.present = true;
    idle.pcp.stall = pcp_->halted() ? StallCause::kHalted : StallCause::kWfi;
    idle.pcp.attr.symptom = idle.pcp.stall;
    idle.pcp.attr.root =
        pcp_->halted() ? StallRootCause::kHalted : StallRootCause::kWfi;
  }
  return idle;
}

void Soc::set_tracer(SocTracer* tracer) {
  tracer_ = tracer;
  if (tracer_ == nullptr) return;
  std::vector<std::string> names;
  names.reserve(sri_.slave_count());
  for (unsigned s = 0; s < sri_.slave_count(); ++s) {
    names.emplace_back(sri_.slave_name(s));
  }
  tracer_->set_slave_names(std::move(names));
}

void Soc::register_metrics(telemetry::MetricsRegistry& registry) const {
  const auto stall_metrics = [&registry](const char* component,
                                         const StallTotals& totals) {
    for (unsigned r = 0; r < mcds::kNumStallRootCauses; ++r) {
      registry.counter(component,
                       std::string("stall.") +
                           mcds::to_string(static_cast<mcds::StallRootCause>(r)),
                       &totals.cycles[r]);
    }
  };
  tc_->register_metrics(registry, "tc");
  stall_metrics("tc", tc_stall_totals_);
  if (pcp_ != nullptr) {
    pcp_->register_metrics(registry, "pcp");
    stall_metrics("pcp", pcp_stall_totals_);
  }
  icache_.register_metrics(registry, "icache");
  dcache_.register_metrics(registry, "dcache");
  pflash_.register_metrics(registry, "pflash");
  dflash_.register_metrics(registry, "dflash");
  dspr_.register_metrics(registry, "dspr");
  pspr_.register_metrics(registry, "pspr");
  sri_.register_metrics(registry, "sri");
  irq_router_.register_metrics(registry, "irq");
  dma_.register_metrics(registry, "dma");
  monitor_.register_metrics(registry, "safety");
  if (injector_ != nullptr) injector_->register_metrics(registry, "fault");
  registry.counter("sim", "ff.skipped_cycles", &ff_stats_.skipped_cycles);
  registry.counter("sim", "ff.wakeups", &ff_stats_.wakeups);
  for (unsigned s = 0; s < kNumWakeSources; ++s) {
    registry.counter("sim",
                     std::string("ff.wake.") +
                         to_string(static_cast<WakeSource>(s)),
                     &ff_stats_.wake_counts[s]);
  }
  // Superblock-tier coverage. Host-side observability: values depend on
  // the exec tier, fast-forward mode and run chunking, so identity tests
  // strip the whole "exec" component (like "sim" host counters).
  registry.counter("exec", "fast_windows", &exec_stats_.windows);
  registry.counter("exec", "fast_cycles", &exec_stats_.fast_cycles);
  for (unsigned g = 0; g < kNumFastGates; ++g) {
    registry.counter("exec",
                     std::string("gate.") +
                         to_string(static_cast<FastGate>(g)),
                     &exec_stats_.gates[g]);
  }
  for (unsigned b = 1; b < cpu::kNumFastBails; ++b) {
    registry.counter("exec",
                     std::string("bail.") +
                         cpu::to_string(static_cast<cpu::FastBail>(b)),
                     &exec_stats_.bails[b]);
  }
}

void Soc::fill_exec_tier_report(telemetry::RunReport& report) const {
  telemetry::RunReport::ExecTierBlock& block = report.exec_tier;
  block.tier = config_.exec_tier == SocConfig::ExecTier::kSuperblock
                   ? "superblock"
                   : "accurate";
  block.windows = exec_stats_.windows;
  block.fast_cycles = exec_stats_.fast_cycles;
  const u64 accounted = exec_stats_.fast_cycles + ff_stats_.skipped_cycles;
  block.stepped_cycles = cycle_ > accounted ? cycle_ - accounted : 0;
  block.declines.clear();
  for (unsigned g = 0; g < kNumFastGates; ++g) {
    if (exec_stats_.gates[g] == 0) continue;
    block.declines.emplace_back(
        std::string("gate.") + to_string(static_cast<FastGate>(g)),
        exec_stats_.gates[g]);
  }
  for (unsigned b = 1; b < cpu::kNumFastBails; ++b) {
    if (exec_stats_.bails[b] == 0) continue;
    block.declines.emplace_back(
        std::string("bail.") + cpu::to_string(static_cast<cpu::FastBail>(b)),
        exec_stats_.bails[b]);
  }
  std::stable_sort(block.declines.begin(), block.declines.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
}

bool Soc::quiescent() const {
  if (!tc_->quiescent()) return false;
  if (pcp_ != nullptr && !pcp_->quiescent()) return false;
  if (!dma_.quiescent()) return false;
  return sri_.idle();
}

Cycle Soc::next_activity_cycle(WakeSource* source) const {
  Cycle best = periph::kNoActivity;
  WakeSource who = WakeSource::kBudget;
  const auto consider = [&](Cycle at, WakeSource src) {
    if (at < best) {
      best = at;
      who = src;
    }
  };
  consider(stm_.next_activity_cycle(cycle_), WakeSource::kStm);
  consider(watchdog_.next_activity_cycle(cycle_), WakeSource::kWatchdog);
  consider(crank_.next_activity_cycle(cycle_), WakeSource::kCrank);
  consider(adc_.next_activity_cycle(cycle_), WakeSource::kAdc);
  consider(can_.next_activity_cycle(cycle_), WakeSource::kCan);
  // PFlash is time-passive (next_activity_cycle is the sentinel) and the
  // crossbar/DMA are empty by the quiescent() precondition, so neither
  // contributes a candidate.
  if (injector_ != nullptr) {
    consider(injector_->next_activity_cycle(cycle_), WakeSource::kFault);
  }
  if (source != nullptr) *source = who;
  return best;
}

void Soc::skip_idle(u64 n, WakeSource source) {
  stm_.skip(n);
  watchdog_.skip(n);
  crank_.skip(n);
  adc_.skip(n);
  can_.skip(n);
  pflash_.skip(n);
  tc_->skip(n);
  if (pcp_ != nullptr) pcp_->skip(n);
  // Attribution: each skipped cycle is exactly a parked-core cycle, so
  // the totals advance as n idle step()s would have advanced them.
  tc_stall_totals_.cycles[static_cast<unsigned>(
      tc_->halted() ? mcds::StallRootCause::kHalted
                    : mcds::StallRootCause::kWfi)] += n;
  if (pcp_ != nullptr) {
    pcp_stall_totals_.cycles[static_cast<unsigned>(
        pcp_->halted() ? mcds::StallRootCause::kHalted
                       : mcds::StallRootCause::kWfi)] += n;
  }
  if (tracer_ != nullptr) tracer_->skip_idle(cycle_, cycle_ + n);
  if (!observers_.empty()) {
    const mcds::ObservationFrame idle = make_idle_frame();
    for (FrameObserver* obs : observers_) obs->skip_idle(idle, n);
  }
  cycle_ += n;
  ff_stats_.skipped_cycles += n;
  ff_stats_.wakeups += 1;
  ff_stats_.wake_counts[static_cast<unsigned>(source)] += 1;
}

bool Soc::wake_impossible() const {
  if (injector_ != nullptr && !injector_->exhausted()) return false;
  if (watchdog_.enabled()) return false;
  // A wake needs an enabled service-request node whose delivery would do
  // something: trigger a DMA channel, or interrupt a core whose ICR
  // accepts the priority. CCPN/IE only change under executed instructions,
  // so for parked cores this scan is stable until an actual wake.
  for (unsigned s = 0; s < irq_router_.source_count(); ++s) {
    const periph::IrqRouter::SrcNode& node = irq_router_.node(s);
    if (!node.enabled || node.priority == 0) continue;
    switch (node.target) {
      case periph::IrqTarget::kDma:
        return false;  // a trigger re-arms a DMA channel
      case periph::IrqTarget::kTc:
        if (tc_->irq_acceptable(node.priority)) return false;
        break;
      case periph::IrqTarget::kPcp:
        if (pcp_ != nullptr && !pcp_->halted() &&
            pcp_->irq_acceptable(node.priority)) {
          return false;
        }
        break;
    }
  }
  return true;
}

u64 Soc::run_fast_window(u64 max_cycles, FrameSink* sink) {
  if (config_.exec_tier != SocConfig::ExecTier::kSuperblock) return 0;
  if (max_cycles == 0) return 0;
  const auto gate = [this](FastGate reason) -> u64 {
    ++exec_stats_.gates[static_cast<unsigned>(reason)];
    return 0;
  };
  // Window invariants (see cpu_fast.cpp): nothing outside the TC may act
  // during the window. A fault injector disables the tier outright; the
  // phase probe times step() phases that don't exist in a window.
  if (injector_ != nullptr || probe_ != nullptr) {
    return gate(FastGate::kInstrumented);
  }
  if (!dma_.quiescent() || !sri_.idle()) return gate(FastGate::kFabricBusy);
  if (irq_router_.raises_pending()) return gate(FastGate::kIrqPending);
  if (pcp_ != nullptr &&
      (!pcp_->quiescent() || (!pcp_->halted() && pcp_->needs_slow_step()))) {
    return gate(FastGate::kPcpBusy);
  }
  // With the fabric idle, the PCP parked, trap entries bailing and ECC
  // domains needing an injector (tier off), no alarm source can fire
  // inside the window, and the bound below keeps the watchdog short of
  // its deadline. A quiescent monitor therefore stays an observable
  // no-op for the whole window: per-cycle step_cycle() — and with it the
  // only in-window writers of raise/trap/halt state — hoists out of the
  // loop entirely. A non-quiescent monitor needs the accurate stepper.
  if (monitor_.enabled() && !monitor_.quiescent()) {
    return gate(FastGate::kMonitorBusy);
  }

  // Bound the window strictly before the next scheduled activity: the
  // wake cycle itself (peripheral compare, crank tooth) is stepped
  // normally so its event replays exactly as in cycle-by-cycle mode.
  u64 bound = max_cycles;
  const Cycle next = next_activity_cycle();
  if (next != periph::kNoActivity) {
    if (next <= cycle_ + 1) return gate(FastGate::kActivityNear);
    bound = std::min<u64>(bound, next - cycle_ - 1);
  }

  cpu::Cpu::FastWindow fw;
  if (!tc_->fast_enter(fw)) {
    ++exec_stats_.bails[static_cast<unsigned>(tc_->last_fast_bail())];
    return 0;
  }
  ++exec_stats_.windows;

  // Frame parts that are invariant across the window. With the fabric
  // idle, no DMA and no flash-port traffic, each cycle's publish of these
  // sections equals what an accurate step() publishes (the same
  // equivalence skip_idle() is built on).
  frame_.sri = bus::FabricObservation{};
  frame_.flash = mem::PFlash::Strobes{};
  frame_.dma = mcds::DmaObservation{};
  mcds::CoreObservation pcp_parked;
  unsigned pcp_root = 0;
  if (pcp_ != nullptr) {
    pcp_parked.present = true;
    pcp_parked.stall = pcp_->halted() ? mcds::StallCause::kHalted
                                      : mcds::StallCause::kWfi;
    pcp_parked.attr.symptom = pcp_parked.stall;
    pcp_parked.attr.root = pcp_->halted() ? mcds::StallRootCause::kHalted
                                          : mcds::StallRootCause::kWfi;
    pcp_root = static_cast<unsigned>(pcp_parked.attr.root);
  }

  if (pcp_ != nullptr) {
    frame_.pcp = pcp_parked;
  } else {
    frame_.pcp.reset();
  }
  frame_.safety.reset();
  frame_.irq.reset();

  u64 ran = 0;
  bool open = true;
  bool stop = false;
  while (ran < bound && !stop) {
    const Cycle now = cycle_ + 1;
    frame_.cycle = now;
    frame_.tc.reset();
    // A bail leaves the machine (and cycle_) untouched; the dirtied frame
    // is rewritten by the step() that replays this cycle.
    if (!tc_->fast_cycle(fw, now, frame_.tc)) {
      ++exec_stats_.bails[static_cast<unsigned>(tc_->last_fast_bail())];
      break;
    }
    cycle_ = now;
    ++ran;
    attribute_core_stall(*tc_, frame_.tc, tc_stall_totals_);
    if (pcp_ != nullptr) {
      pcp_stall_totals_.cycles[pcp_root] += 1;
    }
    if (tracer_ != nullptr) tracer_->observe(frame_);
    for (FrameObserver* obs : observers_) obs->observe(frame_);
    if (sink != nullptr && !sink->on_frame(frame_)) stop = true;
    if (fw.left_chunk) {
      // A taken control transfer left the chunk with a clean front end:
      // re-open on the target's chunk and keep going.
      tc_->fast_exit(fw);
      open = false;
      if (!stop) {
        if (tc_->fast_enter(fw)) {
          open = true;
          ++exec_stats_.windows;
        } else {
          ++exec_stats_.bails[static_cast<unsigned>(tc_->last_fast_bail())];
          break;
        }
      }
    }
  }
  if (open) tc_->fast_exit(fw);
  // Bulk-advance everything that didn't run in the window, exactly as
  // skip_idle() does for idle stretches: the window bound guarantees no
  // peripheral had an activity cycle inside it, so skipping moves every
  // counter and deadline as `ran` stepped cycles would have.
  if (ran != 0) {
    stm_.skip(ran);
    watchdog_.skip(ran);
    crank_.skip(ran);
    adc_.skip(ran);
    can_.skip(ran);
    pflash_.skip(ran);
    if (pcp_ != nullptr) pcp_->skip(ran);
  }
  exec_stats_.fast_cycles += ran;
  return ran;
}

u64 Soc::run(u64 max_cycles) {
  const u64 budget =
      max_cycles == 0 ? kDefaultRunBudget : std::min(max_cycles, kDefaultRunBudget);
  idle_deadlock_ = false;
  u64 steps = 0;
  while (steps < budget && !tc_->halted()) {
    // Superblock fast tier: burn through straight-line execution before
    // falling back to the accurate stepper for the next cycle.
    steps += run_fast_window(budget - steps);
    if (steps >= budget || tc_->halted()) break;
    step();
    ++steps;
    // Idle handling. The waiting() check keeps the dense-execution path to
    // one predicted branch; quiescent() then confirms that every pipeline,
    // port and DMA unit has actually drained.
    if (!tc_->waiting() || !quiescent()) continue;
    if (wake_impossible()) {
      // WFI park with nothing left that could ever wake the SoC: stepping
      // on would only burn the budget. Checked in both fast-forward modes
      // so the reported cycle count never depends on the mode.
      idle_deadlock_ = true;
      break;
    }
    if (!config_.fast_forward || steps >= budget) continue;
    WakeSource source = WakeSource::kBudget;
    const Cycle next = next_activity_cycle(&source);
    // next_activity_cycle() returns > cycle_; skip up to (not including)
    // the wake cycle, which is then stepped normally so the wake event
    // replays exactly as in cycle-by-cycle mode.
    u64 idle = next == periph::kNoActivity ? budget - steps : next - cycle_ - 1;
    if (idle == 0) continue;
    if (idle >= budget - steps) {
      idle = budget - steps;
      source = WakeSource::kBudget;
    }
    skip_idle(idle, source);
    steps += idle;
  }
  return steps;
}

// --------------------------------------------------------------------------
// Snapshot / restore.

namespace {
// Section tags (little-endian fourcc) so a reader failure names the
// component group it happened in.
constexpr u32 kTagTop = 0x20504F54;     // "TOP "
constexpr u32 kTagCores = 0x45524F43;   // "CORE"
constexpr u32 kTagMem = 0x204D454D;     // "MEM "
constexpr u32 kTagCache = 0x48434143;   // "CACH"
constexpr u32 kTagBus = 0x20535542;     // "BUS "
constexpr u32 kTagPeriph = 0x49524550;  // "PERI"
constexpr u32 kTagSafety = 0x45464153;  // "SAFE"
constexpr u32 kTagFault = 0x544C4146;   // "FALT"
constexpr u32 kTagTracer = 0x52435254;  // "TRCR"

// u64 words a tracer-schedule block occupies (for discarding the block
// when a snapshot carries one but no tracer is attached on restore).
constexpr unsigned kTracerScheduleWords = 11 + mcds::kNumStallRootCauses;
}  // namespace

Result<Snapshot> Soc::save_snapshot() const {
  if (!quiescent()) {
    return error(StatusCode::kFailedPrecondition,
                 "snapshot requires a quiescent SoC (cores parked, "
                 "pipelines and fabric drained)");
  }
  snapshot::Writer w;
  save_state(w);

  Snapshot snap;
  snap.shape_fingerprint = config_.shape_fingerprint();
  snap.cycle = cycle_;
  snap.payload = w.take();
  return snap;
}

void Soc::save_state(snapshot::Writer& w) const {
  w.begin_section(kTagTop);
  w.put_u64(cycle_);
  w.put_bool(idle_deadlock_);
  w.put_u64(ff_stats_.skipped_cycles);
  w.put_u64(ff_stats_.wakeups);
  for (u64 v : ff_stats_.wake_counts) w.put_u64(v);
  for (u64 v : tc_stall_totals_.cycles) w.put_u64(v);
  for (u64 v : pcp_stall_totals_.cycles) w.put_u64(v);
  w.end_section();

  w.begin_section(kTagCores);
  tc_->save_state(w);
  w.put_bool(pcp_ != nullptr);
  if (pcp_ != nullptr) pcp_->save_state(w);
  w.end_section();

  w.begin_section(kTagMem);
  pflash_.save_state(w);
  dflash_.save_state(w);
  lmu_.save_state(w);
  dspr_.save_state(w);
  pspr_.save_state(w);
  w.put_bool(pcp_pram_ != nullptr);
  if (pcp_pram_ != nullptr) {
    pcp_pram_->save_state(w);
    pcp_dram_->save_state(w);
  }
  w.end_section();

  w.begin_section(kTagCache);
  icache_.save_state(w);
  dcache_.save_state(w);
  w.end_section();

  w.begin_section(kTagBus);
  sri_.save_state(w);
  w.end_section();

  w.begin_section(kTagPeriph);
  irq_router_.save_state(w);
  bridge_.save_state(w);
  stm_.save_state(w);
  watchdog_.save_state(w);
  crank_.save_state(w);
  adc_.save_state(w);
  can_.save_state(w);
  dma_.save_state(w);
  w.end_section();

  w.begin_section(kTagSafety);
  monitor_.save_state(w);
  w.end_section();

  w.begin_section(kTagFault);
  w.put_bool(injector_ != nullptr);
  if (injector_ != nullptr) injector_->save_state(w);
  w.end_section();

  w.begin_section(kTagTracer);
  w.put_bool(tracer_ != nullptr);
  if (tracer_ != nullptr) tracer_->save_state(w);
  w.end_section();
}

Status Soc::restore_snapshot(const Snapshot& snap) {
  if (snap.shape_fingerprint != config_.shape_fingerprint()) {
    return error(StatusCode::kFailedPrecondition,
                 "snapshot was captured on a different architecture shape");
  }
  snapshot::Reader r(snap.payload);
  restore_state(r);
  if (r.ok() && !r.at_end()) r.fail("trailing bytes after last section");
  return r.status();
}

void Soc::restore_state(snapshot::Reader& r) {
  // Memory contents are about to be replaced wholesale; every predecoded
  // superblock may describe code that no longer exists.
  superblocks_.invalidate_all();
  r.enter_section(kTagTop);
  cycle_ = r.get_u64();
  idle_deadlock_ = r.get_bool();
  ff_stats_.skipped_cycles = r.get_u64();
  ff_stats_.wakeups = r.get_u64();
  for (u64& v : ff_stats_.wake_counts) v = r.get_u64();
  for (u64& v : tc_stall_totals_.cycles) v = r.get_u64();
  for (u64& v : pcp_stall_totals_.cycles) v = r.get_u64();
  r.leave_section();

  r.enter_section(kTagCores);
  tc_->restore_state(r);
  const bool had_pcp = r.get_bool();
  if (r.ok() && had_pcp != (pcp_ != nullptr)) {
    r.fail("snapshot PCP presence mismatch");
  }
  if (had_pcp && pcp_ != nullptr) pcp_->restore_state(r);
  r.leave_section();

  r.enter_section(kTagMem);
  pflash_.restore_state(r);
  dflash_.restore_state(r);
  lmu_.restore_state(r);
  dspr_.restore_state(r);
  pspr_.restore_state(r);
  const bool had_pram = r.get_bool();
  if (r.ok() && had_pram != (pcp_pram_ != nullptr)) {
    r.fail("snapshot PCP-RAM presence mismatch");
  }
  if (had_pram && pcp_pram_ != nullptr) {
    pcp_pram_->restore_state(r);
    pcp_dram_->restore_state(r);
  }
  r.leave_section();

  r.enter_section(kTagCache);
  icache_.restore_state(r);
  dcache_.restore_state(r);
  r.leave_section();

  r.enter_section(kTagBus);
  sri_.restore_state(r);
  r.leave_section();

  r.enter_section(kTagPeriph);
  irq_router_.restore_state(r);
  bridge_.restore_state(r);
  stm_.restore_state(r);
  watchdog_.restore_state(r);
  crank_.restore_state(r);
  adc_.restore_state(r);
  can_.restore_state(r);
  dma_.restore_state(r);
  r.leave_section();

  r.enter_section(kTagSafety);
  monitor_.restore_state(r);
  r.leave_section();

  r.enter_section(kTagFault);
  const bool had_injector = r.get_bool();
  if (had_injector) {
    if (injector_ != nullptr) {
      injector_->restore_state(r);
    } else if (r.ok()) {
      r.fail("snapshot carries fault-injector state but none is attached");
    }
  }
  // No injector in the image + one attached now = warm fork: the freshly
  // constructed injector (cursor 0, no storms) is exactly the state an
  // uninterrupted run would have, since no event fired before capture.
  r.leave_section();

  r.enter_section(kTagTracer);
  const bool had_tracer = r.get_bool();
  if (had_tracer) {
    if (tracer_ != nullptr) {
      tracer_->restore_state(r);
    } else {
      for (unsigned i = 0; i < kTracerScheduleWords; ++i) r.get_u64();
    }
  }
  r.leave_section();

  // Re-publish a frame consistent with the restored quiescent machine.
  if (r.ok()) frame_ = make_idle_frame();
}

}  // namespace audo::soc
