// Every architecture knob of the simulated SoC in one value type.
//
// The §4/§6 optimization methodology evaluates next-generation options by
// replaying workloads over variants of this struct; src/optimize owns the
// option catalogue and the area-cost model attached to these knobs.
#pragma once

#include <string>

#include "bus/crossbar.hpp"
#include "cache/cache.hpp"
#include "common/bits.hpp"
#include "common/types.hpp"
#include "fault/safety.hpp"
#include "mem/dflash.hpp"
#include "mem/pflash.hpp"

namespace audo::soc {

struct SocConfig {
  std::string name = "TC1797-like";
  u64 clock_hz = 180'000'000;

  mem::PFlashConfig pflash;
  mem::DFlashConfig dflash;

  cache::CacheConfig icache{.enabled = true,
                            .size_bytes = 16 * 1024,
                            .ways = 2,
                            .line_bytes = 32};
  cache::CacheConfig dcache{.enabled = true,
                            .size_bytes = 4 * 1024,
                            .ways = 2,
                            .line_bytes = 32};

  u32 dspr_bytes = 128 * 1024;
  u32 pspr_bytes = 40 * 1024;

  u32 lmu_bytes = 128 * 1024;
  unsigned lmu_latency = 2;

  bool has_pcp = true;
  u32 pcp_pram_bytes = 32 * 1024;
  u32 pcp_dram_bytes = 16 * 1024;

  unsigned tc_issue_width = 3;
  unsigned dma_channels = 8;

  bus::ArbitrationPolicy arbitration = bus::ArbitrationPolicy::kFixedPriority;

  /// Scratchpad-as-bus-slave latency for non-owning masters.
  unsigned spr_slave_latency = 2;

  /// Safety-mechanism model: ECC coverage and SMU-like alarm reactions
  /// (src/fault). Defaults are record-only, so fault-free runs are
  /// cycle-identical with and without the monitor.
  fault::SafetyConfig safety;

  /// Host acceleration: when the whole SoC is quiescent, Soc::run jumps
  /// over the idle cycles to the next scheduled activity instead of
  /// stepping through them. Bit-identical to cycle-by-cycle execution
  /// (every counter, deadline and trace timestamp advances exactly as if
  /// each cycle had been stepped), so — like the decode cache — it is a
  /// host knob, deliberately excluded from fingerprint().
  bool fast_forward = true;

  /// Host acceleration: execution-engine tier. kSuperblock predecodes
  /// straight-line code into dense superblocks and runs them through a
  /// function-pointer dispatch loop whenever the SoC state permits,
  /// bailing to the accurate stepper the moment anything interesting
  /// (trap, IRQ, cache miss, bus traffic, self-modified code) shows up.
  /// Bit-identical to kAccurate — every ObservationFrame, MCDS event,
  /// stall attribution and counter matches — so, like fast_forward and
  /// the decode cache, it is a host knob excluded from fingerprint().
  enum class ExecTier : u8 { kAccurate, kSuperblock };
  ExecTier exec_tier = ExecTier::kSuperblock;

  bool valid() const {
    return icache.valid() && dcache.valid() && tc_issue_width >= 1 &&
           tc_issue_width <= 3 && pflash.size > 0;
  }

  /// Stable FNV-1a hash over every architecture knob. Written into run
  /// reports so results from different configurations never get compared
  /// by accident.
  u64 fingerprint() const { return safety.fingerprint(shape_fingerprint()); }

  /// Hash over the *structural* knobs only — everything fingerprint()
  /// covers except the safety model. Snapshots are keyed by this: a
  /// fault-free boot leaves no trace of the safety configuration (no
  /// alarm, no ECC event, cycle-identical with the monitor on or off),
  /// so scenarios that differ only in safety settings can fork from one
  /// warm boot image.
  u64 shape_fingerprint() const {
    u64 h = fnv1a(kFnvOffset, name);
    h = fnv1a(h, clock_hz);
    h = fnv1a(h, pflash.size);
    h = fnv1a(h, u64{pflash.wait_states});
    h = fnv1a(h, u64{pflash.line_bytes});
    h = fnv1a(h, u64{pflash.code_buffers});
    h = fnv1a(h, u64{pflash.data_buffers});
    h = fnv1a(h, u64{pflash.sequential_prefetch});
    h = fnv1a(h, dflash.size);
    h = fnv1a(h, u64{dflash.read_latency});
    h = fnv1a(h, u64{dflash.write_latency});
    const auto mix_cache = [&h](const cache::CacheConfig& c) {
      h = fnv1a(h, u64{c.enabled});
      h = fnv1a(h, u64{c.size_bytes});
      h = fnv1a(h, u64{c.ways});
      h = fnv1a(h, u64{c.line_bytes});
      h = fnv1a(h, static_cast<u64>(c.replacement));
    };
    mix_cache(icache);
    mix_cache(dcache);
    h = fnv1a(h, u64{dspr_bytes});
    h = fnv1a(h, u64{pspr_bytes});
    h = fnv1a(h, u64{lmu_bytes});
    h = fnv1a(h, u64{lmu_latency});
    h = fnv1a(h, u64{has_pcp});
    h = fnv1a(h, u64{pcp_pram_bytes});
    h = fnv1a(h, u64{pcp_dram_bytes});
    h = fnv1a(h, u64{tc_issue_width});
    h = fnv1a(h, u64{dma_channels});
    h = fnv1a(h, static_cast<u64>(arbitration));
    h = fnv1a(h, u64{spr_slave_latency});
    return h;
  }
};

}  // namespace audo::soc
