#include "soc/snapshot.hpp"

#include <cstdio>
#include <cstring>

#include "common/bits.hpp"
#include "common/snapshot.hpp"

namespace audo::soc {

u64 Snapshot::checksum() const {
  u64 h = kFnvOffset;
  for (u8 b : payload) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::vector<u8> Snapshot::serialize() const {
  snapshot::Writer w;
  w.put_u32(kMagic);
  w.put_u32(kVersion);
  w.put_u64(shape_fingerprint);
  w.put_u64(cycle);
  w.put_u64(payload.size());
  w.put_u64(checksum());
  std::vector<u8> out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Result<Snapshot> Snapshot::deserialize(const std::vector<u8>& bytes) {
  constexpr usize kHeaderBytes = 4 + 4 + 8 + 8 + 8 + 8;
  if (bytes.size() < kHeaderBytes) {
    return error(StatusCode::kDecodeError,
                 "snapshot truncated: " + std::to_string(bytes.size()) +
                     " bytes, header needs " + std::to_string(kHeaderBytes));
  }
  snapshot::Reader r(bytes);
  const u32 magic = r.get_u32();
  if (magic != kMagic) {
    char msg[64];
    std::snprintf(msg, sizeof msg, "bad snapshot magic 0x%08x", magic);
    return error(StatusCode::kDecodeError, msg);
  }
  const u32 version = r.get_u32();
  if (version != kVersion) {
    return error(StatusCode::kDecodeError,
                 "unsupported snapshot version " + std::to_string(version) +
                     " (this build reads version " + std::to_string(kVersion) +
                     ")");
  }
  Snapshot snap;
  snap.shape_fingerprint = r.get_u64();
  snap.cycle = r.get_u64();
  const u64 length = r.get_u64();
  const u64 stored_checksum = r.get_u64();
  if (length != bytes.size() - kHeaderBytes) {
    return error(StatusCode::kDecodeError,
                 "snapshot payload length mismatch: header says " +
                     std::to_string(length) + ", file carries " +
                     std::to_string(bytes.size() - kHeaderBytes));
  }
  snap.payload.assign(bytes.begin() + kHeaderBytes, bytes.end());
  if (snap.checksum() != stored_checksum) {
    return error(StatusCode::kDecodeError,
                 "snapshot checksum mismatch: image is corrupt");
  }
  return snap;
}

Status Snapshot::to_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return error(StatusCode::kNotFound, "cannot open " + path + " for write");
  }
  const std::vector<u8> bytes = serialize();
  const usize written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != bytes.size() || !closed) {
    return error(StatusCode::kResourceExhausted, "short write to " + path);
  }
  return Status::ok();
}

Result<Snapshot> Snapshot::from_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return error(StatusCode::kNotFound, "cannot open " + path);
  }
  std::vector<u8> bytes;
  u8 chunk[4096];
  usize got = 0;
  while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  std::fclose(f);
  return deserialize(bytes);
}

}  // namespace audo::soc
