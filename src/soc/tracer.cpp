#include "soc/tracer.hpp"

#include <algorithm>
#include <utility>

namespace audo::soc {

namespace {

/// Span name for a pipeline state. Running cycles get one interned name;
/// stalls reuse the StallCause string table.
const char* span_name(bool running, mcds::StallCause cause) {
  if (running) return "run";
  return mcds::to_string(cause);
}

std::string channel_name(u8 channel) {
  return "ch" + std::to_string(static_cast<unsigned>(channel));
}

}  // namespace

SocTracer::SocTracer() : SocTracer(Options{}) {}

SocTracer::SocTracer(Options options)
    : options_(std::move(options)), timeline_(options_.timeline) {
  tc_.pipe_track = timeline_.add_track("TC pipeline");
  tc_.irq_track = timeline_.add_track("TC irq");
  pcp_.pipe_track = timeline_.add_track("PCP pipeline");
  pcp_.irq_track = timeline_.add_track("PCP irq");
  for (unsigned m = 0; m < bus::kNumMasters; ++m) {
    bus_tracks_[m] = timeline_.add_track(
        std::string("SRI ") + bus::to_string(static_cast<bus::MasterId>(m)));
  }
  dma_track_ = timeline_.add_track("DMA");
  safety_track_ = timeline_.add_track("Safety");
  eec_track_ = timeline_.add_track("EEC");
}

void SocTracer::set_slave_names(std::vector<std::string> names) {
  slave_names_ = std::move(names);
}

void SocTracer::close_core_span(CoreState& core, Cycle now) {
  if (!core.span_open) return;
  timeline_.complete(core.pipe_track,
                     span_name(core.span_running, core.span_cause),
                     core.span_start, now);
  core.span_open = false;
}

void SocTracer::observe_core(const mcds::CoreObservation& obs, CoreState& core,
                             Cycle now) {
  if (!obs.present) return;

  // Pipeline activity: coalesce consecutive cycles with the same state
  // (running, or one stall cause) into a single span. Halted cycles
  // produce no span at all, so idle cores stay blank.
  const bool halted = obs.stall == mcds::StallCause::kHalted;
  const bool running = obs.retired > 0;
  if (halted) {
    close_core_span(core, now);
  } else if (!core.span_open || core.span_running != running ||
             (!running && core.span_cause != obs.stall)) {
    close_core_span(core, now);
    core.span_open = true;
    core.span_running = running;
    core.span_cause = obs.stall;
    core.span_start = now;
  }

  // Interrupt nesting: exit before entry so a same-cycle preemption
  // hand-over (return from one handler, dispatch of the next) keeps the
  // B/E events balanced.
  if (obs.irq_exit && core.irq_depth > 0) {
    timeline_.end(core.irq_track, now);
    --core.irq_depth;
  }
  if (obs.irq_entry) {
    timeline_.begin(core.irq_track,
                    "irq p" + std::to_string(unsigned{obs.irq_prio}), now);
    ++core.irq_depth;
  }
}

void SocTracer::observe(const mcds::ObservationFrame& frame) {
  const Cycle now = frame.cycle;

  observe_core(frame.tc, tc_, now);
  observe_core(frame.pcp, pcp_, now);

  // Bus transactions that completed this cycle: a wait span while the
  // request sat un-granted, then a transfer span named after the slave.
  for (unsigned i = 0; i < frame.sri.completed_count; ++i) {
    const bus::CompletedTransaction& tx = frame.sri.completed[i];
    const unsigned m = static_cast<unsigned>(tx.master);
    if (m >= bus::kNumMasters) continue;
    if (tx.granted_at > tx.issued_at) {
      timeline_.complete(bus_tracks_[m], "wait", tx.issued_at, tx.granted_at);
    }
    const char* verb = tx.write ? "wr " : (tx.fetch ? "fetch " : "rd ");
    std::string name = tx.slave < slave_names_.size()
                           ? verb + slave_names_[tx.slave]
                           : verb + std::string("slave") +
                                 std::to_string(unsigned{tx.slave});
    timeline_.complete(bus_tracks_[m], name, tx.granted_at, now);
  }

  if (frame.dma.transfer) {
    timeline_.instant(dma_track_, channel_name(frame.dma.channel), now);
  }

  // Safety alarms are rare; one instant per alarm kind per cycle.
  const mcds::SafetyObservation& safety = frame.safety;
  if (safety.ecc_corrected > 0) {
    timeline_.instant(safety_track_, "ecc corrected", now);
  }
  if (safety.ecc_uncorrectable > 0) {
    timeline_.instant(safety_track_, "ecc uncorrectable", now);
  }
  if (safety.bus_error) timeline_.instant(safety_track_, "bus error", now);
  if (safety.wdt_timeout) timeline_.instant(safety_track_, "wdt timeout", now);
  if (safety.cpu_trap) timeline_.instant(safety_track_, "trap", now);
  if (safety.alarm_irq) timeline_.instant(safety_track_, "alarm irq", now);

  // Counter-series accumulation.
  ++interval_cycles_;
  interval_retired_ += frame.tc.retired;
  interval_code_acc_ += frame.flash.code_access ? 1 : 0;
  interval_code_hit_ += frame.flash.code_buffer_hit ? 1 : 0;
  interval_data_acc_ += frame.flash.data_access ? 1 : 0;
  interval_data_hit_ += frame.flash.data_buffer_hit ? 1 : 0;
  interval_contention_ += frame.sri.contention ? 1 : 0;
  {
    using mcds::StallRootCause;
    const StallRootCause root = frame.tc.attr.root;
    if (root >= StallRootCause::kFrontend &&
        root <= StallRootCause::kBusSlaveBusy) {
      interval_stall_root_[static_cast<unsigned>(root)]++;
    }
  }
  if (now >= next_sample_) {
    sample_counters(now);
    next_sample_ = now + options_.counter_interval;
  }
}

void SocTracer::sample_counters(Cycle now) {
  if (interval_cycles_ == 0) return;
  const double cycles = static_cast<double>(interval_cycles_);
  timeline_.counter("TC IPC", now,
                    static_cast<double>(interval_retired_) / cycles);
  if (interval_code_acc_ > 0) {
    timeline_.counter("pflash code buffer hit rate", now,
                      static_cast<double>(interval_code_hit_) /
                          static_cast<double>(interval_code_acc_));
  }
  if (interval_data_acc_ > 0) {
    timeline_.counter("pflash data buffer hit rate", now,
                      static_cast<double>(interval_data_hit_) /
                          static_cast<double>(interval_data_acc_));
  }
  timeline_.counter("SRI contention", now,
                    static_cast<double>(interval_contention_) / cycles);
  // One counter track per attributed stall root cause (fraction of the
  // interval's cycles lost to it). Tracks appear only once the cause
  // first occurs, so undisturbed runs keep their track count.
  for (unsigned r = static_cast<unsigned>(mcds::StallRootCause::kFrontend);
       r <= static_cast<unsigned>(mcds::StallRootCause::kBusSlaveBusy); ++r) {
    if (interval_stall_root_[r] == 0) continue;
    timeline_.counter(
        std::string("TC stall ") +
            mcds::to_string(static_cast<mcds::StallRootCause>(r)),
        now, static_cast<double>(interval_stall_root_[r]) / cycles);
  }
  interval_cycles_ = 0;
  interval_retired_ = 0;
  interval_code_acc_ = 0;
  interval_code_hit_ = 0;
  interval_data_acc_ = 0;
  interval_data_hit_ = 0;
  interval_contention_ = 0;
  interval_stall_root_.fill(0);
}

void SocTracer::skip_idle(Cycle from, Cycle to) {
  // Idle frames add one interval cycle each and zero to every other
  // accumulator, so only the sampling schedule needs replaying: emit a
  // sample at every schedule point inside the window, then account the
  // tail cycles into the running interval.
  Cycle counted_to = from;
  while (true) {
    const Cycle s = std::max<Cycle>(next_sample_, counted_to + 1);
    if (s > to) break;
    interval_cycles_ += s - counted_to;
    counted_to = s;
    sample_counters(s);
    next_sample_ = s + options_.counter_interval;
  }
  interval_cycles_ += to - counted_to;
}

void SocTracer::skip_idle_eec(Cycle from, Cycle to, usize emem_occupancy_bytes,
                              u64 trace_messages) {
  while (true) {
    const Cycle s = std::max<Cycle>(next_eec_sample_, from + 1);
    if (s > to) break;
    timeline_.counter("EMEM fill bytes", s,
                      static_cast<double>(emem_occupancy_bytes));
    timeline_.counter("trace msgs", s,
                      static_cast<double>(trace_messages - last_trace_messages_));
    last_trace_messages_ = trace_messages;
    next_eec_sample_ = s + options_.counter_interval;
  }
}

void SocTracer::observe_eec(Cycle now, usize emem_occupancy_bytes,
                            u64 trace_messages, u64 dropped_messages) {
  if (dropped_messages > last_dropped_) {
    timeline_.instant(eec_track_, "trace drop", now);
    last_dropped_ = dropped_messages;
  }
  if (now >= next_eec_sample_) {
    timeline_.counter("EMEM fill bytes", now,
                      static_cast<double>(emem_occupancy_bytes));
    timeline_.counter("trace msgs", now,
                      static_cast<double>(trace_messages - last_trace_messages_));
    last_trace_messages_ = trace_messages;
    next_eec_sample_ = now + options_.counter_interval;
  }
}

void SocTracer::finish(Cycle now) {
  close_core_span(tc_, now);
  close_core_span(pcp_, now);
  while (tc_.irq_depth > 0) {
    timeline_.end(tc_.irq_track, now);
    --tc_.irq_depth;
  }
  while (pcp_.irq_depth > 0) {
    timeline_.end(pcp_.irq_track, now);
    --pcp_.irq_depth;
  }
  sample_counters(now);
}

}  // namespace audo::soc
