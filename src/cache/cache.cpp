#include "cache/cache.hpp"

#include <cassert>

#include "telemetry/metrics.hpp"

namespace audo::cache {

void Cache::register_metrics(telemetry::MetricsRegistry& registry,
                             std::string component) const {
  registry.counter(component, "accesses", &stats_.accesses);
  registry.counter(component, "hits", &stats_.hits);
  registry.counter(component, "misses", &stats_.misses);
  registry.counter(std::move(component), "evictions", &stats_.evictions);
}

Cache::Cache(const CacheConfig& config) : config_(config) {
  assert(config.valid());
  if (!config_.enabled) return;
  offset_bits_ = log2_exact(config_.line_bytes);
  index_bits_ = config_.num_sets() > 1 ? log2_exact(config_.num_sets()) : 0;
  ways_.resize(static_cast<usize>(config_.num_sets()) * config_.ways);
  plru_bits_.assign(config_.num_sets(), 0);
  rr_next_.assign(config_.num_sets(), 0);
  if (config_.replacement == Replacement::kPlruTree) {
    assert(is_pow2(config_.ways) && config_.ways <= 8 &&
           "tree PLRU supports 1..8 power-of-two ways");
  }
}

bool Cache::access(Addr addr) {
  if (!config_.enabled) return false;
  ++stats_.accesses;
  const u32 set = set_of(addr);
  const u32 tag = tag_of(addr);
  for (unsigned w = 0; w < config_.ways; ++w) {
    Way& way = ways_[static_cast<usize>(set) * config_.ways + w];
    if (way.valid && way.tag == tag) {
      ++stats_.hits;
      touch(set, w);
      return true;
    }
  }
  ++stats_.misses;
  return false;
}

bool Cache::probe(Addr addr) const {
  if (!config_.enabled) return false;
  const u32 set = set_of(addr);
  const u32 tag = tag_of(addr);
  for (unsigned w = 0; w < config_.ways; ++w) {
    const Way& way = ways_[static_cast<usize>(set) * config_.ways + w];
    if (way.valid && way.tag == tag) return true;
  }
  return false;
}

bool Cache::fill(Addr addr) {
  if (!config_.enabled) return false;
  const u32 set = set_of(addr);
  const u32 tag = tag_of(addr);
  // Already present (e.g. two misses to the same line in flight).
  for (unsigned w = 0; w < config_.ways; ++w) {
    Way& way = ways_[static_cast<usize>(set) * config_.ways + w];
    if (way.valid && way.tag == tag) return false;
  }
  const unsigned victim = pick_victim(set);
  Way& way = ways_[static_cast<usize>(set) * config_.ways + victim];
  const bool evicted = way.valid;
  if (evicted) ++stats_.evictions;
  way.valid = true;
  way.tag = tag;
  touch(set, victim);
  return evicted;
}

void Cache::invalidate_all() {
  for (Way& way : ways_) way = Way{};
  std::fill(plru_bits_.begin(), plru_bits_.end(), u8{0});
  std::fill(rr_next_.begin(), rr_next_.end(), 0u);
}

unsigned Cache::pick_victim(u32 set) {
  // Invalid ways first, regardless of policy.
  for (unsigned w = 0; w < config_.ways; ++w) {
    if (!ways_[static_cast<usize>(set) * config_.ways + w].valid) return w;
  }
  switch (config_.replacement) {
    case Replacement::kLru: {
      unsigned victim = 0;
      u64 oldest = ~u64{0};
      for (unsigned w = 0; w < config_.ways; ++w) {
        const Way& way = ways_[static_cast<usize>(set) * config_.ways + w];
        if (way.lru_stamp < oldest) {
          oldest = way.lru_stamp;
          victim = w;
        }
      }
      return victim;
    }
    case Replacement::kPlruTree: {
      // Walk the tree following the *cold* direction.
      unsigned node = 0;  // root at index 0 of a (ways-1)-node heap
      unsigned w = 0;
      unsigned span = config_.ways;
      const u8 bitsv = plru_bits_[set];
      while (span > 1) {
        const bool right = (bitsv >> node) & 1;  // bit points to cold half
        span /= 2;
        if (right) w += span;
        node = 2 * node + (right ? 2 : 1);
      }
      return w;
    }
    case Replacement::kRoundRobin: {
      const unsigned w = rr_next_[set];
      rr_next_[set] = (w + 1) % config_.ways;
      return w;
    }
  }
  return 0;
}

void Cache::touch(u32 set, unsigned way) {
  ways_[static_cast<usize>(set) * config_.ways + way].lru_stamp = ++stamp_;
  if (config_.replacement == Replacement::kPlruTree && config_.ways > 1) {
    // Flip tree bits along the path to point *away* from this way.
    unsigned node = 0;
    unsigned lo = 0;
    unsigned span = config_.ways;
    u8 bitsv = plru_bits_[set];
    while (span > 1) {
      span /= 2;
      const bool in_right = way >= lo + span;
      // Bit must point at the cold (other) half.
      if (in_right) {
        bitsv &= static_cast<u8>(~(1u << node));
        lo += span;
        node = 2 * node + 2;
      } else {
        bitsv |= static_cast<u8>(1u << node);
        node = 2 * node + 1;
      }
    }
    plru_bits_[set] = bitsv;
  }
}

}  // namespace audo::cache
