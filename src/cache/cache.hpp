// Set-associative instruction/data cache timing model.
//
// Caches in this system only front the (runtime-immutable) program flash,
// exactly as on TriCore 1.3 where only segment 0x8 is cacheable. Data
// values are therefore always read from the backing store; the cache
// holds *tags only* and answers the single question that matters for the
// methodology: does this access pay the flash-path latency or not.
// This makes DMA/flash coherence a non-issue by construction.
#pragma once

#include <string>
#include <vector>

#include "common/bits.hpp"
#include "common/snapshot.hpp"
#include "common/types.hpp"

namespace audo::telemetry {
class MetricsRegistry;
}

namespace audo::cache {

enum class Replacement : u8 { kLru, kPlruTree, kRoundRobin };

struct CacheConfig {
  bool enabled = true;
  u32 size_bytes = 16 * 1024;
  unsigned ways = 2;
  unsigned line_bytes = 32;
  Replacement replacement = Replacement::kLru;

  unsigned num_sets() const {
    return size_bytes / (ways * line_bytes);
  }
  bool valid() const {
    return !enabled ||
           (audo::is_pow2(size_bytes) && audo::is_pow2(line_bytes) &&
            ways >= 1 && size_bytes >= ways * line_bytes &&
            audo::is_pow2(num_sets()));
  }
};

struct CacheStats {
  u64 accesses = 0;
  u64 hits = 0;
  u64 misses = 0;
  u64 evictions = 0;

  double hit_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(accesses);
  }
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Look up `addr`; updates replacement state and stats. A disabled
  /// cache always misses (and allocates nothing).
  bool access(Addr addr);

  /// Probe without updating any state (for tests and the profiler).
  bool probe(Addr addr) const;

  /// Allocate the line containing `addr` (after the refill fetch
  /// completed). Returns true if a valid line was evicted.
  bool fill(Addr addr);

  void invalidate_all();

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

  /// Register this cache's counters under `component` ("icache"/"dcache").
  void register_metrics(telemetry::MetricsRegistry& registry,
                        std::string component) const;

  /// Snapshot support: tags, replacement state and statistics. Geometry
  /// (config, bit splits) is reconstructed from SocConfig, not restored.
  void save_state(snapshot::Writer& w) const {
    for (const Way& way : ways_) {
      w.put_u32(way.tag);
      w.put_bool(way.valid);
      w.put_u64(way.lru_stamp);
    }
    w.put_bytes(plru_bits_.data(), plru_bits_.size());
    for (unsigned n : rr_next_) w.put_u32(static_cast<u32>(n));
    w.put_u64(stamp_);
    w.put_u64(stats_.accesses);
    w.put_u64(stats_.hits);
    w.put_u64(stats_.misses);
    w.put_u64(stats_.evictions);
  }
  void restore_state(snapshot::Reader& r) {
    for (Way& way : ways_) {
      way.tag = r.get_u32();
      way.valid = r.get_bool();
      way.lru_stamp = r.get_u64();
    }
    r.get_bytes_into(plru_bits_.data(), plru_bits_.size());
    for (unsigned& n : rr_next_) n = r.get_u32();
    stamp_ = r.get_u64();
    stats_.accesses = r.get_u64();
    stats_.hits = r.get_u64();
    stats_.misses = r.get_u64();
    stats_.evictions = r.get_u64();
  }

 private:
  struct Way {
    u32 tag = 0;
    bool valid = false;
    u64 lru_stamp = 0;  // LRU: higher = more recent
  };

  u32 tag_of(Addr addr) const { return addr >> (offset_bits_ + index_bits_); }
  u32 set_of(Addr addr) const {
    return audo::bits(addr, offset_bits_, index_bits_ == 0 ? 1 : index_bits_) &
           (config_.num_sets() - 1);
  }
  unsigned pick_victim(u32 set);
  void touch(u32 set, unsigned way);

  CacheConfig config_;
  unsigned offset_bits_ = 0;
  unsigned index_bits_ = 0;
  std::vector<Way> ways_;           // [set * ways + way]
  std::vector<u8> plru_bits_;       // per-set PLRU tree state
  std::vector<unsigned> rr_next_;   // per-set round-robin pointer
  u64 stamp_ = 0;
  CacheStats stats_;
};

}  // namespace audo::cache
