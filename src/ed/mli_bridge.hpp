// The MLI bridge: EEC access *from the product chip* (§3).
//
// "It is however also possible to access the EEC from the TriCore on the
// product chip part over the MLI (Micro Link Interface) bridge. This
// means that in a later development phase a tool can communicate over a
// user interface like CAN or FlexRay with a monitor routine, running on
// TriCore, which then accesses the EEC."
//
// Modelled as an SFR window the Emulation Device registers on the
// peripheral bridge: monitor software can read MCDS/EMEM status and
// stream trace bytes out through an application interface (e.g. forward
// them over the CAN model) without any debug-pin connection.
//
// SFRs (offsets within the window):
//   0x00 STATUS       ro  bit0: trace frozen, bit1: break requested,
//                         bit2: trace enabled
//   0x04 EMEM_FILL    ro  trace-buffer occupancy in bytes
//   0x08 MSG_COUNT    ro  total messages recorded
//   0x0C DROPPED      ro  messages dropped (overflow)
//   0x10 TRIG_PULSES  ro  trigger-out pulse count
//   0x14 POP_BYTE     ro  next trace byte (reading consumes it;
//                         0xFFFFFFFF when the stream is empty)
//   0x18 CLEAR_BREAK  wo  any write clears a pending MCDS break
//   0x1C OVERLAY_IDX  rw  word index into the calibration overlay
//   0x20 OVERLAY_DATA rw  read/write overlay word at OVERLAY_IDX
#pragma once

#include "emem/emem.hpp"
#include "mcds/mcds.hpp"
#include "periph/sfr_bridge.hpp"

namespace audo::ed {

class MliBridge final : public periph::SfrDevice {
 public:
  MliBridge(mcds::Mcds* mcds, emem::Emem* emem) : mcds_(mcds), emem_(emem) {}

  u32 read_sfr(u32 offset) override;
  void write_sfr(u32 offset, u32 value) override;

  /// SFR window offset within the peripheral space.
  static constexpr u32 kWindowOffset = 0x5000;
  static constexpr u32 kWindowSize = 0x100;

  u64 bytes_popped() const { return bytes_popped_; }

  /// Snapshot support: overlay index and POP_BYTE streaming position.
  void save_state(snapshot::Writer& w) const {
    w.put_u32(overlay_index_);
    w.put_u64(unit_index_);
    w.put_u64(byte_index_);
    w.put_u64(bytes_popped_);
  }
  void restore_state(snapshot::Reader& r) {
    overlay_index_ = r.get_u32();
    unit_index_ = r.get_u64();
    byte_index_ = r.get_u64();
    bytes_popped_ = r.get_u64();
  }

 private:
  mcds::Mcds* mcds_;
  emem::Emem* emem_;
  u32 overlay_index_ = 0;

  // POP_BYTE streaming state: drained units are consumed byte-wise.
  usize unit_index_ = 0;
  usize byte_index_ = 0;
  u64 bytes_popped_ = 0;
};

}  // namespace audo::ed
