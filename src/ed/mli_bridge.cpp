#include "ed/mli_bridge.hpp"

namespace audo::ed {

u32 MliBridge::read_sfr(u32 offset) {
  switch (offset) {
    case 0x00:
      return (mcds_->trace_frozen() ? 1u : 0u) |
             (mcds_->break_requested() ? 2u : 0u) |
             (mcds_->trace_enabled() ? 4u : 0u);
    case 0x04:
      return static_cast<u32>(emem_->occupancy_bytes());
    case 0x08:
      return static_cast<u32>(emem_->total_pushed_messages());
    case 0x0C:
      return static_cast<u32>(mcds_->dropped_messages());
    case 0x10:
      return static_cast<u32>(mcds_->trigger_out_pulses());
    case 0x14: {
      // Monitor-side trace streaming: drain one message at a time into
      // the host view and serve it byte-wise.
      const auto& units = emem_->host_units();
      while (unit_index_ < units.size() &&
             byte_index_ >= units[unit_index_].bytes.size()) {
        ++unit_index_;
        byte_index_ = 0;
      }
      if (unit_index_ >= units.size()) {
        // Pull more from the trace buffer if available.
        if (emem_->occupancy_bytes() == 0) return 0xFFFFFFFF;
        emem_->drain(64);
        if (unit_index_ >= emem_->host_units().size()) return 0xFFFFFFFF;
      }
      const u8 byte = emem_->host_units()[unit_index_].bytes[byte_index_++];
      ++bytes_popped_;
      return byte;
    }
    case 0x1C:
      return overlay_index_;
    case 0x20:
      return emem_->overlay().read32(static_cast<usize>(overlay_index_) * 4);
    default:
      return 0;
  }
}

void MliBridge::write_sfr(u32 offset, u32 value) {
  switch (offset) {
    case 0x18:
      mcds_->clear_break();
      break;
    case 0x1C:
      overlay_index_ = value;
      break;
    case 0x20:
      emem_->overlay().write32(static_cast<usize>(overlay_index_) * 4, value);
      break;
    default:
      break;  // read-only or unknown
  }
}

}  // namespace audo::ed
