// The Emulation Device: the unchanged product chip (soc::Soc) plus the
// Emulation Extension Chip — MCDS, EMEM and the ECerberus tool-access
// master behind the JTAG/DAP port (Figure 4).
//
// Two properties of the real ED are preserved structurally:
//  * the product chip part is *unchanged*: this class owns a Soc and
//    never modifies its behaviour — MCDS observation is read-only, and
//    turning the whole EEC off yields cycle-identical runs (test E10);
//  * the tool interface has finite bandwidth that does not scale with
//    CPU frequency (§5): the DAP drain budget is configured in bits/s
//    and converted to bytes per CPU cycle.
#pragma once

#include "common/status.hpp"
#include "ed/mli_bridge.hpp"
#include "emem/emem.hpp"
#include "mcds/mcds.hpp"
#include "soc/soc.hpp"

namespace audo::ed {

struct EdConfig {
  emem::EmemConfig emem;
  /// Tool-interface bandwidth. DAP over a robust 2-pin cable reaches a
  /// few tens of Mbit/s regardless of the CPU clock.
  u64 dap_bits_per_second = 40'000'000;
  /// Continuously drain the EMEM through the DAP while running
  /// (long-measurement mode); otherwise the EMEM buffers and the tool
  /// downloads after the run.
  bool stream_drain = false;
};

class EmulationDevice {
 public:
  EmulationDevice(const soc::SocConfig& soc_config, mcds::McdsConfig mcds_config,
                  EdConfig ed_config);

  soc::Soc& soc() { return soc_; }
  const soc::Soc& soc() const { return soc_; }
  mcds::Mcds& mcds() { return mcds_; }
  emem::Emem& emem() { return emem_; }
  MliBridge& mli() { return mli_; }
  const EdConfig& config() const { return config_; }

  Status load(const isa::Program& program) { return soc_.load(program); }
  void reset(Addr tc_entry, Addr pcp_entry = 0);

  /// One clock cycle: product chip, then EEC observation, then DAP drain.
  void step();

  /// Run until the TC halts or `max_cycles` elapse; returns cycles run.
  u64 run(u64 max_cycles);

  /// Bytes the DAP can move per CPU cycle (may be < 1).
  double dap_bytes_per_cycle() const;

  /// Bytes drained over the DAP so far (stream mode).
  u64 dap_bytes_drained() const { return dap_drained_; }

  // ---- tool access path (DAP -> ECerberus -> BBB -> product SRI) ----
  // These *do* occupy the product bus, exactly like a real monitor or
  // calibration access; they advance device time until completion.
  u32 tool_read32(Addr addr);
  void tool_write32(Addr addr, u32 value);

  /// Drain/download everything still in the EMEM and decode the full
  /// host-side unit stream into messages.
  Result<std::vector<mcds::TraceMessage>> download_trace();

  // ---- snapshot / restore --------------------------------------------

  /// Capture the whole device — product chip plus the EEC side (MCDS
  /// scheduling and counter bank, EMEM buffers, MLI streaming position,
  /// DAP drain accounting) — into one image. Requires the product chip
  /// to be quiescent (soc::Soc::save_snapshot); a counter group captured
  /// mid-resolution window resumes at the exact basis position.
  Result<soc::Snapshot> save_snapshot() const;

  /// Restore an image captured by save_snapshot() into this device (same
  /// SoC shape, same MCDS configuration, same loaded program). See
  /// soc::Soc::restore_snapshot for the failure contract.
  Status restore_snapshot(const soc::Snapshot& snap);

  // ---- host telemetry ------------------------------------------------

  /// Register the product chip's components plus the EEC side ("mcds",
  /// "emem", "dap"). Call once, after construction.
  void register_metrics(telemetry::MetricsRegistry& registry) const;

  /// Attach a timeline tracer to the product chip *and* feed it the
  /// EEC side (EMEM fill level, trace drops) each cycle.
  void set_tracer(soc::SocTracer* tracer) { soc_.set_tracer(tracer); }

  /// Attach a host phase profiler; the EEC observation path is timed as
  /// its own phase (kMcds) on top of the product-chip phases.
  void set_phase_probe(telemetry::PhaseProbe* probe) {
    soc_.set_phase_probe(probe);
  }

 private:
  /// Adapter feeding superblock-window frames through the same EEC path
  /// step() takes (MCDS observe, DAP drain, tracer); defined in the .cpp.
  struct FastFrameSink;

  soc::Soc soc_;
  mcds::Mcds mcds_;
  EdConfig config_;
  emem::Emem emem_;
  MliBridge mli_;
  bus::MasterPort cerberus_port_;
  double drain_budget_ = 0.0;
  u64 dap_drained_ = 0;
};

}  // namespace audo::ed
