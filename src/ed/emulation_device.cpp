#include "ed/emulation_device.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "soc/tracer.hpp"
#include "telemetry/host_profiler.hpp"
#include "telemetry/metrics.hpp"

namespace audo::ed {

EmulationDevice::EmulationDevice(const soc::SocConfig& soc_config,
                                 mcds::McdsConfig mcds_config,
                                 EdConfig ed_config)
    : soc_(soc_config),
      mcds_(std::move(mcds_config)),
      config_(ed_config),
      emem_(ed_config.emem),
      mli_(&mcds_, &emem_) {
  mcds_.set_sink(&emem_);
  // The MLI bridge gives product-chip software (a monitor routine) access
  // to the EEC through the normal SFR space.
  soc_.bridge().add_device(MliBridge::kWindowOffset, MliBridge::kWindowSize,
                           &mli_);
}

void EmulationDevice::reset(Addr tc_entry, Addr pcp_entry) {
  soc_.reset(tc_entry, pcp_entry);
  mcds_.reset();
  emem_.clear();
  drain_budget_ = 0.0;
  dap_drained_ = 0;
}

double EmulationDevice::dap_bytes_per_cycle() const {
  return static_cast<double>(config_.dap_bits_per_second) / 8.0 /
         static_cast<double>(soc_.config().clock_hz);
}

void EmulationDevice::step() {
  soc_.step();
  telemetry::PhaseProbe* probe = soc_.phase_probe();
  if (probe != nullptr) probe->begin(telemetry::StepPhase::kMcds);
  mcds_.observe(soc_.frame());
  if (config_.stream_drain) {
    drain_budget_ += dap_bytes_per_cycle();
    if (drain_budget_ >= 1.0) {
      const u64 whole = static_cast<u64>(drain_budget_);
      const usize moved = emem_.drain(whole);
      dap_drained_ += moved;
      drain_budget_ -= static_cast<double>(whole);
    }
  }
  if (probe != nullptr) probe->end(telemetry::StepPhase::kMcds);
  if (soc::SocTracer* tracer = soc_.tracer(); tracer != nullptr) {
    tracer->observe_eec(soc_.cycle(), emem_.occupancy_bytes(),
                        emem_.total_pushed_messages(),
                        mcds_.dropped_messages());
  }
}

void EmulationDevice::register_metrics(
    telemetry::MetricsRegistry& registry) const {
  soc_.register_metrics(registry);
  mcds_.register_metrics(registry, "mcds");
  emem_.register_metrics(registry, "emem");
  registry.counter("dap", "bytes_drained", &dap_drained_);
}

// Per-frame EEC work for cycles executed inside a superblock window:
// exactly what step() does after soc_.step(), minus the phase probe
// (run_fast_window declines to open a window while a probe is attached).
// Returning false on an MCDS break request ends the window so run() can
// pause the device on the very cycle the trigger fired, as in stepped
// mode.
struct EmulationDevice::FastFrameSink final : soc::FrameSink {
  EmulationDevice* ed = nullptr;

  bool on_frame(const mcds::ObservationFrame& frame) override {
    ed->mcds_.observe(frame);
    if (ed->config_.stream_drain) {
      ed->drain_budget_ += ed->dap_bytes_per_cycle();
      if (ed->drain_budget_ >= 1.0) {
        const u64 whole = static_cast<u64>(ed->drain_budget_);
        ed->dap_drained_ += ed->emem_.drain(whole);
        ed->drain_budget_ -= static_cast<double>(whole);
      }
    }
    if (soc::SocTracer* tracer = ed->soc_.tracer(); tracer != nullptr) {
      tracer->observe_eec(frame.cycle, ed->emem_.occupancy_bytes(),
                          ed->emem_.total_pushed_messages(),
                          ed->mcds_.dropped_messages());
    }
    return !ed->mcds_.break_requested();
  }
};

u64 EmulationDevice::run(u64 max_cycles) {
  u64 steps = 0;
  FastFrameSink sink;
  sink.ed = this;
  // Fast-forward applies on the device level too, but the EEC bounds the
  // windows: skips stop short of periodic syncs and counter samples so
  // those land in normally observed cycles. Stream-drain mode accumulates
  // a fractional DAP budget every cycle, which has no O(1) replay — the
  // device falls back to stepping there.
  const bool fast_forward =
      soc_.config().fast_forward && !config_.stream_drain;
  // A pending MCDS break (OCDS debug halt) pauses the device until the
  // tool clears it — run() returns immediately, like a hit breakpoint.
  while (steps < max_cycles && !soc_.tc().halted() &&
         !mcds_.break_requested()) {
    // Superblock fast tier: every windowed cycle's frame still reaches
    // the EEC through the sink, so triggers, counters and the DAP budget
    // advance exactly as in stepped mode (including stream-drain, whose
    // fractional budget has no O(1) replay but a per-frame one).
    steps += soc_.run_fast_window(max_cycles - steps, &sink);
    if (steps >= max_cycles || soc_.tc().halted() || mcds_.break_requested()) {
      break;
    }
    step();
    ++steps;
    if (!fast_forward || steps >= max_cycles) continue;
    if (!soc_.tc().waiting() || !soc_.quiescent()) continue;
    const Cycle from = soc_.cycle();
    soc::WakeSource source = soc::WakeSource::kBudget;
    const Cycle next = soc_.next_activity_cycle(&source);
    if (next <= from + 1) continue;
    u64 n = next - from - 1;
    if (n >= max_cycles - steps) {
      n = max_cycles - steps;
      source = soc::WakeSource::kBudget;
    }
    // The frame a parked product chip publishes on every idle cycle
    // (cores parked with kWfi/kHalted symptom and root, nothing else).
    const mcds::ObservationFrame idle = soc_.make_idle_frame();
    if (const u64 mcds_limit = mcds_.idle_skip_limit(idle); mcds_limit < n) {
      n = mcds_limit;
      source = soc::WakeSource::kMcds;
    }
    if (n == 0) continue;
    soc_.skip_idle(n, source);
    mcds_.skip_idle(idle, n);
    if (soc::SocTracer* tracer = soc_.tracer(); tracer != nullptr) {
      tracer->skip_idle_eec(from, from + n, emem_.occupancy_bytes(),
                            emem_.total_pushed_messages());
    }
    steps += n;
  }
  return steps;
}

u32 EmulationDevice::tool_read32(Addr addr) {
  bus::BusRequest req;
  req.master = bus::MasterId::kCerberus;
  req.addr = addr;
  req.kind = bus::AccessKind::kRead;
  req.bytes = 4;
  if (!soc_.sri().issue(cerberus_port_, req, soc_.cycle())) {
    return 0;
  }
  while (!cerberus_port_.done()) {
    step();
  }
  return cerberus_port_.take_rdata();
}

void EmulationDevice::tool_write32(Addr addr, u32 value) {
  bus::BusRequest req;
  req.master = bus::MasterId::kCerberus;
  req.addr = addr;
  req.kind = bus::AccessKind::kWrite;
  req.bytes = 4;
  req.wdata = value;
  if (!soc_.sri().issue(cerberus_port_, req, soc_.cycle())) {
    return;
  }
  while (!cerberus_port_.done()) {
    step();
  }
  cerberus_port_.take_rdata();
}

Result<std::vector<mcds::TraceMessage>> EmulationDevice::download_trace() {
  mcds_.flush(soc_.cycle());  // final sync: outstanding instruction counts
  emem_.download_all();
  return mcds::TraceDecoder::decode(emem_.host_units());
}

namespace {
// Section tag for the Emulation Extension Chip state appended after the
// product chip's own sections.
constexpr u32 kTagEec = 0x20434545;  // "EEC "
}  // namespace

Result<soc::Snapshot> EmulationDevice::save_snapshot() const {
  if (!soc_.quiescent()) {
    return error(StatusCode::kFailedPrecondition,
                 "snapshot requires a quiescent product chip");
  }
  snapshot::Writer w;
  soc_.save_state(w);

  w.begin_section(kTagEec);
  mcds_.save_state(w);
  emem_.save_state(w);
  mli_.save_state(w);
  u64 budget_bits = 0;
  static_assert(sizeof budget_bits == sizeof drain_budget_);
  std::memcpy(&budget_bits, &drain_budget_, sizeof budget_bits);
  w.put_u64(budget_bits);
  w.put_u64(dap_drained_);
  w.end_section();

  soc::Snapshot snap;
  snap.shape_fingerprint = soc_.config().shape_fingerprint();
  snap.cycle = soc_.cycle();
  snap.payload = w.take();
  return snap;
}

Status EmulationDevice::restore_snapshot(const soc::Snapshot& snap) {
  if (snap.shape_fingerprint != soc_.config().shape_fingerprint()) {
    return error(StatusCode::kFailedPrecondition,
                 "snapshot was captured on a different architecture shape");
  }
  snapshot::Reader r(snap.payload);
  soc_.restore_state(r);

  r.enter_section(kTagEec);
  mcds_.restore_state(r);
  emem_.restore_state(r);
  mli_.restore_state(r);
  u64 budget_bits = r.get_u64();
  std::memcpy(&drain_budget_, &budget_bits, sizeof drain_budget_);
  dap_drained_ = r.get_u64();
  r.leave_section();

  if (r.ok() && !r.at_end()) r.fail("trailing bytes after last section");
  return r.status();
}

}  // namespace audo::ed
