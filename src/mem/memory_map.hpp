// The TC1797-like physical memory map.
//
// Mirrors the TriCore convention that segment 0x8 is the cached view of
// the program flash and segment 0xA the non-cached alias of the same
// array — the mechanism behind "map this table to scratchpad / access it
// non-cached" software optimizations in §5.
#pragma once

#include "common/types.hpp"

namespace audo::mem {

inline constexpr Addr kPFlashCachedBase = 0x8000'0000;
inline constexpr Addr kPFlashUncachedBase = 0xA000'0000;
inline constexpr u32 kPFlashMaxSize = 4u * 1024 * 1024;

inline constexpr Addr kDFlashBase = 0xAF00'0000;  // EEPROM emulation
inline constexpr u32 kDFlashMaxSize = 64u * 1024;

inline constexpr Addr kLmuBase = 0x9000'0000;  // on-chip SRAM behind the bus

inline constexpr Addr kDsprBase = 0xC000'0000;  // TC data scratchpad (local)
inline constexpr Addr kPsprBase = 0xC800'0000;  // TC program scratchpad (local)

inline constexpr Addr kPcpPramBase = 0xD000'0000;  // PCP code RAM (local)
inline constexpr Addr kPcpDramBase = 0xD400'0000;  // PCP data RAM (local)

inline constexpr Addr kEmemBase = 0xE000'0000;  // EEC emulation memory (ED only)

inline constexpr Addr kPeriphBase = 0xF000'0000;  // SFR space
inline constexpr u32 kPeriphSize = 0x0100'0000;

/// True for both the cached and non-cached alias of the program flash.
inline constexpr bool is_pflash(Addr addr, u32 flash_size) {
  return (addr >= kPFlashCachedBase && addr - kPFlashCachedBase < flash_size) ||
         (addr >= kPFlashUncachedBase && addr - kPFlashUncachedBase < flash_size);
}

/// True only for the cached (segment 0x8) alias.
inline constexpr bool is_pflash_cached_alias(Addr addr, u32 flash_size) {
  return addr >= kPFlashCachedBase && addr - kPFlashCachedBase < flash_size;
}

/// Byte offset into the flash array for either alias.
inline constexpr u32 pflash_offset(Addr addr) {
  return addr & 0x0FFF'FFFF;
}

}  // namespace audo::mem
