// Byte-addressable backing storage shared by all memory models.
#pragma once

#include <cassert>
#include <vector>

#include "common/types.hpp"

namespace audo::mem {

/// Little-endian byte array with 1/2/4-byte accessors. Out-of-range
/// accesses are tolerated (reads return 0, writes are dropped) but
/// counted, so buggy workload software cannot crash the simulator yet
/// tests can assert cleanliness.
class MemArray {
 public:
  explicit MemArray(usize size) : bytes_(size, 0) {}

  usize size() const { return bytes_.size(); }

  u32 read(usize offset, unsigned bytes) const {
    assert(bytes == 1 || bytes == 2 || bytes == 4);
    if (offset + bytes > bytes_.size()) {
      ++violations_;
      return 0;
    }
    u32 value = 0;
    for (unsigned i = 0; i < bytes; ++i) {
      value |= static_cast<u32>(bytes_[offset + i]) << (8 * i);
    }
    return value;
  }

  void write(usize offset, u32 value, unsigned bytes) {
    assert(bytes == 1 || bytes == 2 || bytes == 4);
    if (offset + bytes > bytes_.size()) {
      ++violations_;
      return;
    }
    for (unsigned i = 0; i < bytes; ++i) {
      bytes_[offset + i] = static_cast<u8>(value >> (8 * i));
    }
  }

  u32 read32(usize offset) const { return read(offset, 4); }
  void write32(usize offset, u32 value) { write(offset, value, 4); }

  /// Bulk load (program image sections).
  void load(usize offset, const std::vector<u8>& data) {
    assert(offset + data.size() <= bytes_.size());
    std::copy(data.begin(), data.end(), bytes_.begin() + static_cast<long>(offset));
  }

  void fill(u8 value) { std::fill(bytes_.begin(), bytes_.end(), value); }

  /// Accesses outside the array since construction (sticky diagnostic).
  u64 violations() const { return violations_; }

  bool operator==(const MemArray& other) const { return bytes_ == other.bytes_; }

 private:
  std::vector<u8> bytes_;
  mutable u64 violations_ = 0;
};

}  // namespace audo::mem
