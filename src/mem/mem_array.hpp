// Byte-addressable backing storage shared by all memory models.
#pragma once

#include <cassert>
#include <vector>

#include "common/snapshot.hpp"
#include "common/types.hpp"

namespace audo::mem {

/// Fault-injection tap on a MemArray (see fault/fault_injector.hpp).
/// on_read may rewrite the value returned to the device (ECC syndrome
/// evaluation); on_write observes stores so pending fault records can be
/// scrubbed. The hook must outlive the array or be detached first.
class MemFaultHook {
 public:
  virtual ~MemFaultHook() = default;
  virtual u32 on_read(usize offset, unsigned bytes, u32 raw) = 0;
  virtual void on_write(usize offset, unsigned bytes) = 0;
};

/// Little-endian byte array with 1/2/4-byte accessors. Out-of-range
/// accesses are tolerated (reads return 0, writes are dropped) but
/// counted, so buggy workload software cannot crash the simulator yet
/// tests can assert cleanliness.
class MemArray {
 public:
  explicit MemArray(usize size) : bytes_(size, 0) {}

  usize size() const { return bytes_.size(); }

  u32 read(usize offset, unsigned bytes) const {
    assert(bytes == 1 || bytes == 2 || bytes == 4);
    if (offset + bytes > bytes_.size()) {
      ++violations_;
      return 0;
    }
    u32 value = 0;
    for (unsigned i = 0; i < bytes; ++i) {
      value |= static_cast<u32>(bytes_[offset + i]) << (8 * i);
    }
    if (hook_ != nullptr) return hook_->on_read(offset, bytes, value);
    return value;
  }

  void write(usize offset, u32 value, unsigned bytes) {
    assert(bytes == 1 || bytes == 2 || bytes == 4);
    if (offset + bytes > bytes_.size()) {
      ++violations_;
      return;
    }
    for (unsigned i = 0; i < bytes; ++i) {
      bytes_[offset + i] = static_cast<u8>(value >> (8 * i));
    }
    if (hook_ != nullptr) hook_->on_write(offset, bytes);
  }

  /// Host-side backdoor access: bypasses the fault hook (and the
  /// violation counter). Fault injectors flip stored bits through poke();
  /// state-comparison code reads through peek() so inspecting memory
  /// cannot consume pending ECC fault records.
  u32 peek(usize offset, unsigned bytes) const {
    if (offset + bytes > bytes_.size()) return 0;
    u32 value = 0;
    for (unsigned i = 0; i < bytes; ++i) {
      value |= static_cast<u32>(bytes_[offset + i]) << (8 * i);
    }
    return value;
  }

  void poke(usize offset, u32 value, unsigned bytes) {
    if (offset + bytes > bytes_.size()) return;
    for (unsigned i = 0; i < bytes; ++i) {
      bytes_[offset + i] = static_cast<u8>(value >> (8 * i));
    }
  }

  /// Attach/detach a fault-injection hook. Null (the default) keeps the
  /// access paths on a single predicted branch.
  void set_fault_hook(MemFaultHook* hook) { hook_ = hook; }
  MemFaultHook* fault_hook() const { return hook_; }

  u32 read32(usize offset) const { return read(offset, 4); }
  void write32(usize offset, u32 value) { write(offset, value, 4); }

  /// Bulk load (program image sections).
  void load(usize offset, const std::vector<u8>& data) {
    assert(offset + data.size() <= bytes_.size());
    std::copy(data.begin(), data.end(), bytes_.begin() + static_cast<long>(offset));
  }

  void fill(u8 value) { std::fill(bytes_.begin(), bytes_.end(), value); }

  /// Accesses outside the array since construction (sticky diagnostic).
  u64 violations() const { return violations_; }

  /// Snapshot support. The hook pointer is wiring, not state — it is
  /// untouched by restore; size is a structural invariant checked by the
  /// fixed-length read.
  void save_state(snapshot::Writer& w) const {
    w.put_bytes(bytes_.data(), bytes_.size());
    w.put_u64(violations_);
  }
  void restore_state(snapshot::Reader& r) {
    r.get_bytes_into(bytes_.data(), bytes_.size());
    violations_ = r.get_u64();
  }

  bool operator==(const MemArray& other) const { return bytes_ == other.bytes_; }

 private:
  std::vector<u8> bytes_;
  mutable u64 violations_ = 0;
  MemFaultHook* hook_ = nullptr;
};

}  // namespace audo::mem
