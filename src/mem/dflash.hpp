// Data flash used for EEPROM emulation (§4: "This embedded flash is used
// for application code and data and for EEPROM emulation").
//
// Reads cost flash wait states; writes model the (scaled-down) word
// program time, making EEPROM-emulation activity visibly expensive in
// profiles, as it is on real silicon.
#pragma once

#include <string>

#include "bus/port.hpp"
#include "common/types.hpp"
#include "mem/mem_array.hpp"
#include "telemetry/metrics.hpp"

namespace audo::mem {

struct DFlashConfig {
  u32 size = 32u * 1024;
  unsigned read_latency = 6;
  unsigned write_latency = 60;  // word-program time, scaled to cycles
};

class DFlashSlave final : public bus::BusSlave {
 public:
  DFlashSlave(Addr base, const DFlashConfig& config)
      : base_(base), config_(config), array_(config.size) {}

  unsigned start_access(const bus::BusRequest& req) override {
    if (req.kind == bus::AccessKind::kWrite) {
      ++writes_;
      return config_.write_latency;
    }
    ++reads_;
    return config_.read_latency;
  }

  u32 complete_access(const bus::BusRequest& req) override {
    const usize offset = req.addr - base_;
    if (req.kind == bus::AccessKind::kWrite) {
      // Flash programming can only clear bits; EEPROM-emulation drivers
      // rely on this (write-once-then-erase journalling).
      const u32 old = array_.read(offset, req.bytes);
      array_.write(offset, old & req.wdata, req.bytes);
      return 0;
    }
    return array_.read(offset, req.bytes);
  }

  std::string_view name() const override { return "DFlash"; }

  /// Erase (set to 0xFF) the whole array — sector granularity is not
  /// modelled; workloads erase between journal generations.
  void erase_all() { array_.fill(0xFF); }

  MemArray& array() { return array_; }
  u64 reads() const { return reads_; }
  u64 writes() const { return writes_; }
  const DFlashConfig& config() const { return config_; }

  void register_metrics(telemetry::MetricsRegistry& registry,
                        std::string component) const {
    registry.counter(component, "reads", &reads_);
    registry.counter(std::move(component), "writes", &writes_);
  }

  void save_state(snapshot::Writer& w) const {
    array_.save_state(w);
    w.put_u64(reads_);
    w.put_u64(writes_);
  }
  void restore_state(snapshot::Reader& r) {
    array_.restore_state(r);
    reads_ = r.get_u64();
    writes_ = r.get_u64();
  }

 private:
  Addr base_;
  DFlashConfig config_;
  MemArray array_;
  u64 reads_ = 0;
  u64 writes_ = 0;
};

}  // namespace audo::mem
