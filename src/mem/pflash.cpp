#include "mem/pflash.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "mem/memory_map.hpp"
#include "telemetry/metrics.hpp"

namespace audo::mem {

void PFlash::register_metrics(telemetry::MetricsRegistry& registry,
                              std::string component) const {
  registry.counter(component, "code_accesses", &stats_.code_accesses);
  registry.counter(component, "code_buffer_hits", &stats_.code_buffer_hits);
  registry.counter(component, "data_accesses", &stats_.data_accesses);
  registry.counter(component, "data_buffer_hits", &stats_.data_buffer_hits);
  registry.counter(component, "array_fetches", &stats_.array_fetches);
  registry.counter(component, "prefetches_issued", &stats_.prefetches_issued);
  registry.counter(component, "prefetch_hits", &stats_.prefetch_hits);
  registry.counter(component, "port_conflict_cycles",
                   &stats_.port_conflict_cycles);
  registry.counter(std::move(component), "illegal_writes",
                   &stats_.illegal_writes);
}

PFlash::PFlash(const PFlashConfig& config)
    : config_(config),
      array_(config.size),
      code_port_(this, /*is_code=*/true, std::max(1u, config.code_buffers),
                 "PFlash.code"),
      data_port_(this, /*is_code=*/false, std::max(1u, config.data_buffers),
                 "PFlash.data") {
  assert(is_pow2(config.line_bytes));
  code_port_.buffers_.resize(std::max(1u, config.code_buffers));
  data_port_.buffers_.resize(std::max(1u, config.data_buffers));
}

void PFlash::tick(Cycle now) {
  now_ = now;
  strobes_ = Strobes{};
}

u32 PFlash::line_of(Addr addr) const {
  return pflash_offset(addr) / config_.line_bytes;
}

Cycle PFlash::reserve_array() {
  const Cycle start = std::max(now_, array_free_at_);
  const Cycle done = start + config_.wait_states;
  array_free_at_ = done;
  stats_.array_fetches++;
  if (start > now_) {
    stats_.port_conflict_cycles += start - now_;
    strobes_.array_conflict = true;
  }
  return done;
}

void PFlash::invalidate_buffers() {
  code_port_.invalidate();
  data_port_.invalidate();
  array_free_at_ = 0;
}

PFlash::BufferEntry* PFlash::Port::find(u32 line) {
  for (BufferEntry& e : buffers_) {
    if (e.valid && e.line == line) return &e;
  }
  return nullptr;
}

PFlash::BufferEntry& PFlash::Port::victim() {
  // Invalid first, then LRU.
  for (BufferEntry& e : buffers_) {
    if (!e.valid) return e;
  }
  return *std::min_element(buffers_.begin(), buffers_.end(),
                           [](const BufferEntry& a, const BufferEntry& b) {
                             return a.last_used < b.last_used;
                           });
}

void PFlash::Port::invalidate() {
  for (BufferEntry& e : buffers_) e = BufferEntry{};
  access_class_ = AccessClass::kNone;
}

unsigned PFlash::Port::start_access(const bus::BusRequest& req) {
  PFlash& f = *flash_;
  Stats& st = f.stats_;
  if (req.kind == bus::AccessKind::kWrite) {
    // Flash programming over the bus is a command sequence outside this
    // model's scope; drop the write but make it visible in stats.
    st.illegal_writes++;
    access_class_ = AccessClass::kBufferHit;  // single-cycle service
    return 1;
  }
  const u32 line = f.line_of(req.addr);
  if (is_code_) {
    st.code_accesses++;
    f.strobes_.code_access = true;
  } else {
    st.data_accesses++;
    f.strobes_.data_access = true;
  }

  unsigned latency;
  if (BufferEntry* hit = find(line)) {
    // Buffer hit: single cycle, or the remaining in-flight time for a
    // prefetched line still being read from the array.
    access_class_ = AccessClass::kBufferHit;
    latency = 1;
    if (hit->available_at > f.now_) {
      latency = static_cast<unsigned>(hit->available_at - f.now_) + 1;
    }
    hit->last_used = f.now_;
    if (is_code_) {
      st.code_buffer_hits++;
      f.strobes_.code_buffer_hit = true;
      if (hit->prefetched) {
        st.prefetch_hits++;
        hit->prefetched = false;  // count each prefetched line once
      }
    } else {
      st.data_buffer_hits++;
      f.strobes_.data_buffer_hit = true;
    }
  } else {
    access_class_ = f.array_free_at_ > f.now_ ? AccessClass::kConflict
                                              : AccessClass::kArrayFetch;
    const Cycle done = f.reserve_array();
    latency = static_cast<unsigned>(done - f.now_) + 1;
    BufferEntry& slot = victim();
    slot = BufferEntry{line, done, f.now_, true, false};

    // Sequential prefetch: after a demand miss on the code port the array
    // continues with the next line in the shadow of execution.
    if (is_code_ && f.config_.sequential_prefetch) {
      const u32 next = line + 1;
      if (static_cast<u64>(next + 1) * f.config_.line_bytes <= f.config_.size &&
          find(next) == nullptr) {
        BufferEntry& pf_slot = victim();
        // With a single buffer the prefetch would evict the demand line
        // before the CPU consumed it; real hardware gates this too.
        if (&pf_slot != &slot) {
          const Cycle pf_done = f.array_free_at_ + f.config_.wait_states;
          f.array_free_at_ = pf_done;
          pf_slot = BufferEntry{next, pf_done, f.now_, true, true};
          st.prefetches_issued++;
        }
      }
    }
  }
  return latency;
}

u32 PFlash::Port::complete_access(const bus::BusRequest& req) {
  if (req.kind == bus::AccessKind::kWrite) return 0;
  return flash_->array_.read(pflash_offset(req.addr), req.bytes);
}

void PFlash::save_state(snapshot::Writer& w) const {
  const auto save_port = [&w](const Port& port) {
    w.put_u32(static_cast<u32>(port.buffers_.size()));
    for (const BufferEntry& e : port.buffers_) {
      w.put_u32(e.line);
      w.put_u64(e.available_at);
      w.put_u64(e.last_used);
      w.put_bool(e.valid);
      w.put_bool(e.prefetched);
    }
  };
  array_.save_state(w);
  save_port(code_port_);
  save_port(data_port_);
  w.put_u8(static_cast<u8>(code_port_.access_class_));
  w.put_u8(static_cast<u8>(data_port_.access_class_));
  w.put_u64(now_);
  w.put_u64(array_free_at_);
  w.put_u64(stats_.code_accesses);
  w.put_u64(stats_.code_buffer_hits);
  w.put_u64(stats_.data_accesses);
  w.put_u64(stats_.data_buffer_hits);
  w.put_u64(stats_.array_fetches);
  w.put_u64(stats_.prefetches_issued);
  w.put_u64(stats_.prefetch_hits);
  w.put_u64(stats_.port_conflict_cycles);
  w.put_u64(stats_.illegal_writes);
}

void PFlash::restore_state(snapshot::Reader& r) {
  const auto restore_port = [&r](Port& port) {
    const u32 count = r.get_u32();
    if (r.ok() && count != port.buffers_.size()) {
      r.fail("pflash buffer count mismatch");
      return;
    }
    for (BufferEntry& e : port.buffers_) {
      e.line = r.get_u32();
      e.available_at = r.get_u64();
      e.last_used = r.get_u64();
      e.valid = r.get_bool();
      e.prefetched = r.get_bool();
    }
  };
  array_.restore_state(r);
  restore_port(code_port_);
  restore_port(data_port_);
  code_port_.access_class_ = static_cast<AccessClass>(r.get_u8());
  data_port_.access_class_ = static_cast<AccessClass>(r.get_u8());
  now_ = r.get_u64();
  array_free_at_ = r.get_u64();
  stats_.code_accesses = r.get_u64();
  stats_.code_buffer_hits = r.get_u64();
  stats_.data_accesses = r.get_u64();
  stats_.data_buffer_hits = r.get_u64();
  stats_.array_fetches = r.get_u64();
  stats_.prefetches_issued = r.get_u64();
  stats_.prefetch_hits = r.get_u64();
  stats_.port_conflict_cycles = r.get_u64();
  stats_.illegal_writes = r.get_u64();
  strobes_ = Strobes{};
}

}  // namespace audo::mem
