// Bus-attached SRAM (the LMU) and core-local scratchpad memories.
#pragma once

#include <string>

#include "bus/port.hpp"
#include "common/types.hpp"
#include "mem/mem_array.hpp"
#include "telemetry/metrics.hpp"

namespace audo::mem {

/// On-chip SRAM behind the crossbar with a fixed access latency.
class SramSlave final : public bus::BusSlave {
 public:
  SramSlave(std::string name, Addr base, usize size, unsigned latency)
      : name_(std::move(name)), base_(base), latency_(latency), array_(size) {}

  unsigned start_access(const bus::BusRequest&) override { return latency_; }

  u32 complete_access(const bus::BusRequest& req) override {
    const usize offset = req.addr - base_;
    if (req.kind == bus::AccessKind::kWrite) {
      array_.write(offset, req.wdata, req.bytes);
      return 0;
    }
    return array_.read(offset, req.bytes);
  }

  std::string_view name() const override { return name_; }

  MemArray& array() { return array_; }
  const MemArray& array() const { return array_; }
  Addr base() const { return base_; }
  unsigned latency() const { return latency_; }

  void save_state(snapshot::Writer& w) const { array_.save_state(w); }
  void restore_state(snapshot::Reader& r) { array_.restore_state(r); }

 private:
  std::string name_;
  Addr base_;
  unsigned latency_;
  MemArray array_;
};

/// Observer for runtime scratchpad writes. Code-holding scratchpads
/// (PSPR) notify so predecoded superblocks over the written range can be
/// invalidated — the single funnel every self-modifying-code path
/// (core store, DMA deposit, tool poke through write()) flows through.
class ScratchpadWriteListener {
 public:
  virtual ~ScratchpadWriteListener() = default;
  virtual void on_scratchpad_write(Addr addr, unsigned bytes) = 0;
};

/// Core-local scratchpad (DSPR/PSPR/PRAM): single-cycle, never on the bus.
/// The §5 methodology's "map hot data structures to scratchpad" moves
/// traffic from the flash data port into here.
class Scratchpad {
 public:
  Scratchpad(Addr base, usize size) : base_(base), array_(size) {}

  bool contains(Addr addr) const {
    return addr >= base_ && addr - base_ < array_.size();
  }

  u32 read(Addr addr, unsigned bytes) const {
    ++reads_;
    return array_.read(addr - base_, bytes);
  }

  void write(Addr addr, u32 value, unsigned bytes) {
    ++writes_;
    array_.write(addr - base_, value, bytes);
    if (write_listener_) write_listener_->on_scratchpad_write(addr, bytes);
  }

  void set_write_listener(ScratchpadWriteListener* l) { write_listener_ = l; }

  Addr base() const { return base_; }
  usize size() const { return array_.size(); }
  MemArray& array() { return array_; }
  const MemArray& array() const { return array_; }
  u64 reads() const { return reads_; }
  u64 writes() const { return writes_; }

  void register_metrics(telemetry::MetricsRegistry& registry,
                        std::string component) const {
    registry.counter(component, "reads", &reads_);
    registry.counter(std::move(component), "writes", &writes_);
  }

  void save_state(snapshot::Writer& w) const {
    array_.save_state(w);
    w.put_u64(reads_);
    w.put_u64(writes_);
  }
  void restore_state(snapshot::Reader& r) {
    array_.restore_state(r);
    reads_ = r.get_u64();
    writes_ = r.get_u64();
  }

 private:
  Addr base_;
  MemArray array_;
  mutable u64 reads_ = 0;
  u64 writes_ = 0;
  ScratchpadWriteListener* write_listener_ = nullptr;  // host-side, not state
};

/// Bus-slave view of a scratchpad: the owning core reaches its scratchpad
/// directly (single cycle), every other master goes through the crossbar
/// with this wrapper's latency — e.g. DMA depositing ADC results in the
/// TC's DSPR.
class ScratchpadSlave final : public bus::BusSlave {
 public:
  ScratchpadSlave(std::string name, Scratchpad* spr, unsigned latency = 2)
      : name_(std::move(name)), spr_(spr), latency_(latency) {}

  unsigned start_access(const bus::BusRequest&) override { return latency_; }

  u32 complete_access(const bus::BusRequest& req) override {
    if (req.kind == bus::AccessKind::kWrite) {
      spr_->write(req.addr, req.wdata, req.bytes);
      return 0;
    }
    return spr_->read(req.addr, req.bytes);
  }

  std::string_view name() const override { return name_; }

 private:
  std::string name_;
  Scratchpad* spr_;
  unsigned latency_;
};

}  // namespace audo::mem
