// The embedded program flash — the performance-critical device of §4:
// "the path from CPU to flash is the main lever to increase the CPU
// system performance".
//
// Model:
//  * one flash array with a multi-cycle line read (wait states),
//  * two independent bus ports (code / data) that arbitrate for the
//    array — the paper's "arbitration between the code and data ports",
//  * per-port line buffers: prefetch buffers on the code port (with
//    optional sequential next-line prefetch issued into the array shadow)
//    and read buffers on the data port,
//  * per-cycle event strobes for the MCDS (buffer hit/miss, port
//    conflict) and cumulative statistics.
#pragma once

#include <string>
#include <vector>

#include "bus/port.hpp"
#include "common/snapshot.hpp"
#include "common/types.hpp"
#include "mem/mem_array.hpp"

namespace audo::telemetry {
class MetricsRegistry;
}

namespace audo::mem {

struct PFlashConfig {
  u32 size = 2u * 1024 * 1024;
  /// Extra cycles for an array line fetch beyond the 1-cycle buffer hit.
  /// TC1797 @180 MHz needs ~4-6 CPU cycles per flash read.
  unsigned wait_states = 5;
  unsigned line_bytes = 32;      // 256-bit flash line
  unsigned code_buffers = 2;     // prefetch buffers on the code port
  unsigned data_buffers = 1;     // read buffers on the data port
  bool sequential_prefetch = true;
};

class PFlash {
 public:
  struct Stats {
    u64 code_accesses = 0;
    u64 code_buffer_hits = 0;
    u64 data_accesses = 0;
    u64 data_buffer_hits = 0;
    u64 array_fetches = 0;
    u64 prefetches_issued = 0;
    u64 prefetch_hits = 0;          // code buffer hits on prefetched lines
    u64 port_conflict_cycles = 0;   // cycles spent waiting for the array
    u64 illegal_writes = 0;         // bus writes to PFlash (ignored)
  };

  /// Per-cycle strobes for the MCDS observation frame; cleared by tick().
  struct Strobes {
    bool code_access = false;
    bool code_buffer_hit = false;
    bool data_access = false;
    bool data_buffer_hit = false;
    bool array_conflict = false;
  };

  /// How the most recent access granted on a port is being served — the
  /// flash-side input to the SoC stall-attribution walk (DESIGN.md,
  /// "Stall attribution & interference matrix"). Valid from grant until
  /// the next grant on the same port.
  enum class AccessClass : u8 {
    kNone = 0,     // no access granted on this port yet
    kBufferHit,    // read/prefetch buffer hit (incl. in-flight prefetch)
    kArrayFetch,   // buffer miss: array line fetch at full wait states
    kConflict,     // buffer miss delayed by the other port's array use
  };

  explicit PFlash(const PFlashConfig& config);

  /// Advance internal time; must be called once per cycle *before* the
  /// crossbar step so grant-time latency sampling sees the current cycle.
  void tick(Cycle now);

  /// The flash never acts on its own: array occupancy and prefetch-shadow
  /// deadlines (`array_free_at_`, BufferEntry::available_at) are absolute
  /// cycles sampled on the next access, so idle time passes for free.
  Cycle next_activity_cycle(Cycle) const { return ~Cycle{0}; }
  /// Bulk-advance over idle cycles: tick() only samples `now` and clears
  /// strobes, both of which the resume-cycle tick() redoes.
  void skip(u64) {}

  bus::BusSlave& code_port() { return code_port_; }
  bus::BusSlave& data_port() { return data_port_; }

  /// Service class of the transaction most recently granted on a port
  /// (code_port when `code`); the attribution walk refines "stalled on
  /// the flash slave" into buffer-hit / array-fetch / port-conflict.
  AccessClass access_class(bool code) const {
    return code ? code_port_.access_class_ : data_port_.access_class_;
  }

  MemArray& array() { return array_; }
  const MemArray& array() const { return array_; }
  const PFlashConfig& config() const { return config_; }
  const Stats& stats() const { return stats_; }
  const Strobes& strobes() const { return strobes_; }

  /// Drop all buffered lines (used between benchmark runs).
  void invalidate_buffers();

  /// Register the flash counters under `component` (e.g. "pflash").
  void register_metrics(telemetry::MetricsRegistry& registry,
                        std::string component) const;

  /// Snapshot support: array contents, both ports' buffer state, array
  /// occupancy and statistics. Per-cycle strobes are cleared on restore —
  /// the quiescent capture point guarantees they were empty anyway.
  void save_state(snapshot::Writer& w) const;
  void restore_state(snapshot::Reader& r);

 private:
  struct BufferEntry {
    u32 line = 0;
    Cycle available_at = 0;  // in-flight until then (prefetch shadow)
    Cycle last_used = 0;
    bool valid = false;
    bool prefetched = false;
  };

  class Port final : public bus::BusSlave {
   public:
    Port(PFlash* flash, bool is_code, unsigned buffers, std::string name)
        : flash_(flash), is_code_(is_code), buffers_(buffers), name_(std::move(name)) {}

    unsigned start_access(const bus::BusRequest& req) override;
    u32 complete_access(const bus::BusRequest& req) override;
    std::string_view name() const override { return name_; }

    std::vector<BufferEntry> entries() const { return buffers_; }
    void invalidate();

   private:
    friend class PFlash;
    BufferEntry* find(u32 line);
    BufferEntry& victim();

    PFlash* flash_;
    bool is_code_;
    std::vector<BufferEntry> buffers_;
    std::string name_;
    AccessClass access_class_ = AccessClass::kNone;
  };

  u32 line_of(Addr addr) const;
  /// Reserve the array for one line fetch starting no earlier than now;
  /// returns the completion cycle.
  Cycle reserve_array();

  PFlashConfig config_;
  MemArray array_;
  Port code_port_;
  Port data_port_;
  Cycle now_ = 0;
  Cycle array_free_at_ = 0;
  Stats stats_;
  Strobes strobes_;
};

}  // namespace audo::mem
