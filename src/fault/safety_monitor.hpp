// The SMU-like safety monitor: aggregates alarms from the whole platform
// and applies the configured reaction per alarm kind.
//
// Alarm sources:
//  * ECC domains (fault_injector.hpp) post() corrected/uncorrectable
//    alarms synchronously from the memory read path;
//  * bus error responses are picked up from the published
//    FabricObservation strobe, so the bus layer stays unaware of the
//    fault layer;
//  * watchdog timeouts are detected as a delta on the watchdog's
//    lifetime timeout counter;
//  * CPU trap entries come from the core observation strobe.
//
// The monitor steps once per cycle after the SoC assembled its
// observation frame and fills the frame's SafetyObservation, so MCDS
// triggers and the tracer see alarms with cycle accuracy. Reactions act
// on the *next* cycle (IRQ post / trap request) or immediately (halt),
// which mirrors how a real alarm matrix is a cycle behind the error.
#pragma once

#include <array>
#include <string_view>

#include "common/snapshot.hpp"
#include "common/types.hpp"
#include "fault/safety.hpp"
#include "mcds/observation.hpp"

namespace audo::telemetry {
class MetricsRegistry;
}

namespace audo::cpu {
class Cpu;
}

namespace audo::periph {
class IrqRouter;
class Watchdog;
}

namespace audo::fault {

class SafetyMonitor {
 public:
  explicit SafetyMonitor(const SafetyConfig& config) : config_(config) {}

  /// Wire the reaction paths. `alarm_src` is the router node the kIrq
  /// reaction posts to ("smu.alarm"); it still needs router configuration
  /// (priority/enable) to actually reach a core.
  void bind(periph::IrqRouter* router, unsigned alarm_src, cpu::Cpu* tc,
            const periph::Watchdog* watchdog);

  bool enabled() const { return config_.monitor_enabled; }
  const SafetyConfig& config() const { return config_; }

  /// Report an alarm detected during the current cycle (ECC domains call
  /// this from inside memory reads). Collected and reacted upon at the
  /// end-of-cycle step_cycle().
  void post(AlarmKind kind) {
    pending_[static_cast<unsigned>(kind)] += 1;
  }

  /// End-of-cycle: fold in frame strobes, count alarms, apply reactions,
  /// and return the cycle's safety observation.
  mcds::SafetyObservation step_cycle(Cycle now,
                                     const mcds::ObservationFrame& frame);

  /// No posted-but-unstepped alarms and no unseen watchdog timeouts: a
  /// step_cycle() over frames with clear strobes would be an observable
  /// no-op. The superblock fast tier (soc.cpp) uses this to hoist the
  /// per-cycle monitor call out of a window whose invariants keep every
  /// alarm source silent.
  bool quiescent() const;

  u64 total(AlarmKind kind) const {
    return totals_[static_cast<unsigned>(kind)];
  }
  u64 reactions_fired() const { return reactions_fired_; }

  void register_metrics(telemetry::MetricsRegistry& registry,
                        std::string_view component) const;

  /// Snapshot support: lifetime totals and the watchdog-delta reference.
  /// Per-cycle pending alarms and the in-flight observation are empty at
  /// a quiescent capture point and cleared on restore.
  void save_state(snapshot::Writer& w) const {
    for (u64 t : totals_) w.put_u64(t);
    w.put_u64(last_wdt_timeouts_);
    w.put_u64(reactions_fired_);
  }
  void restore_state(snapshot::Reader& r) {
    for (u64& t : totals_) t = r.get_u64();
    last_wdt_timeouts_ = r.get_u64();
    reactions_fired_ = r.get_u64();
    pending_.fill(0);
    obs_ = mcds::SafetyObservation{};
  }

 private:
  void react(AlarmKind kind, Cycle now);

  SafetyConfig config_;
  periph::IrqRouter* router_ = nullptr;
  unsigned alarm_src_ = 0;
  cpu::Cpu* tc_ = nullptr;
  const periph::Watchdog* watchdog_ = nullptr;

  std::array<u32, kNumAlarmKinds> pending_{};  // posted this cycle
  std::array<u64, kNumAlarmKinds> totals_{};
  u64 last_wdt_timeouts_ = 0;
  u64 reactions_fired_ = 0;  // non-kRecord reactions applied
  mcds::SafetyObservation obs_;  // observation being assembled
};

}  // namespace audo::fault
