#include "fault/fault_injector.hpp"

#include <algorithm>
#include <string>

#include "bus/crossbar.hpp"
#include "common/prng.hpp"
#include "fault/safety_monitor.hpp"
#include "periph/irq_router.hpp"
#include "periph/sfr_bridge.hpp"
#include "telemetry/metrics.hpp"

namespace audo::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kMemFlip: return "mem_flip";
    case FaultKind::kBusError: return "bus_error";
    case FaultKind::kSfrStuck: return "sfr_stuck";
    case FaultKind::kIrqStorm: return "irq_storm";
    case FaultKind::kCount: break;
  }
  return "?";
}

const char* to_string(MemDomain domain) {
  switch (domain) {
    case MemDomain::kPFlash: return "pflash";
    case MemDomain::kDspr: return "dspr";
    case MemDomain::kPspr: return "pspr";
    case MemDomain::kLmu: return "lmu";
    case MemDomain::kCount: break;
  }
  return "?";
}

void FaultPlan::sort() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

// ------------------------------------------------------- generate_plan --

FaultPlan generate_plan(u64 seed, const PlanSpec& spec) {
  Prng prng(seed);
  FaultPlan plan;
  const unsigned span = spec.events_max > spec.events_min
                            ? spec.events_max - spec.events_min
                            : 0;
  const unsigned n =
      spec.events_min + static_cast<unsigned>(prng.next_below(span + 1));
  const Cycle window = spec.window_end > spec.window_begin
                           ? spec.window_end - spec.window_begin
                           : 1;

  auto pick_mem_flip = [&](FaultEvent& ev) {
    ev.kind = FaultKind::kMemFlip;
    const u64 roll = prng.next_below(100);
    u32 bytes = 0;
    if (roll < 50 && spec.flash_bytes > 0) {
      ev.domain = MemDomain::kPFlash;
      // Bias towards the live image so flips are likely to be observed.
      const bool live = spec.flash_image_bytes > 0 && prng.next_below(100) < 70;
      bytes = live ? spec.flash_image_bytes : spec.flash_bytes;
    } else if (roll < 80 && spec.dspr_bytes > 0) {
      ev.domain = MemDomain::kDspr;
      bytes = spec.dspr_bytes;
    } else if (roll < 90 && spec.pspr_bytes > 0) {
      ev.domain = MemDomain::kPspr;
      bytes = spec.pspr_bytes;
    } else if (spec.lmu_bytes > 0) {
      ev.domain = MemDomain::kLmu;
      bytes = spec.lmu_bytes;
    } else {
      ev.domain = MemDomain::kPFlash;
      bytes = spec.flash_bytes;
    }
    if (bytes < 4) bytes = 4;
    ev.offset = static_cast<u32>(prng.next_below(bytes)) & ~3u;
    ev.bits = prng.next_below(4) == 0 ? 2 : 1;
    ev.bit0 = static_cast<u8>(prng.next_below(32));
    ev.bit1 = static_cast<u8>((ev.bit0 + 1 + prng.next_below(31)) % 32);
  };

  for (unsigned i = 0; i < n; ++i) {
    FaultEvent ev;
    ev.at = spec.window_begin + prng.next_below(window);
    const u64 roll = prng.next_below(100);
    if (roll < 55) {
      pick_mem_flip(ev);
    } else if (roll < 70 && spec.slave_count > 0) {
      ev.kind = FaultKind::kBusError;
      ev.slave = static_cast<unsigned>(prng.next_below(spec.slave_count));
      ev.count = 1 + prng.next_below(4);
    } else if (roll < 85 && !spec.sfr_offsets.empty()) {
      ev.kind = FaultKind::kSfrStuck;
      ev.sfr_offset =
          spec.sfr_offsets[prng.next_below(spec.sfr_offsets.size())];
      ev.sfr_value = prng.next_u32();
      ev.count = 1 + prng.next_below(50);
    } else if (!spec.irq_srcs.empty()) {
      ev.kind = FaultKind::kIrqStorm;
      ev.irq_src = spec.irq_srcs[prng.next_below(spec.irq_srcs.size())];
      ev.duration = 100 + prng.next_below(5'000);
    } else {
      pick_mem_flip(ev);
    }
    plan.events.push_back(ev);
  }
  plan.sort();
  return plan;
}

// ----------------------------------------------------------- EccDomain --

void EccDomain::attach(mem::MemArray* array, SafetyMonitor* monitor,
                       bool ecc_enabled) {
  array_ = array;
  monitor_ = monitor;
  ecc_ = ecc_enabled;
  array_->set_fault_hook(this);
}

void EccDomain::detach() {
  if (array_ != nullptr && array_->fault_hook() == this) {
    array_->set_fault_hook(nullptr);
  }
  array_ = nullptr;
  monitor_ = nullptr;
  records_.clear();
}

void EccDomain::inject(const FaultEvent& ev) {
  assert(array_ != nullptr);
  const u32 word = ev.offset & ~3u;
  if (word + 4 > array_->size()) return;  // beyond the array: no effect
  const u8 b0 = ev.bit0 & 31;
  u8 b1 = ev.bit1 & 31;
  if (b1 == b0) b1 = (b0 + 1) & 31;
  if (ecc_ && ev.bits < 2) {
    // Single-bit under SEC-DED: the stored codeword is wrong but every
    // read corrects it, so the data array is left intact; the record
    // raises kEccCorrected on the first overlapping read.
    records_.push_back(Record{word, 1});
    return;
  }
  u32 flipped = array_->peek(word, 4) ^ (1u << b0);
  if (ev.bits >= 2) flipped ^= 1u << b1;
  array_->poke(word, flipped, 4);
  if (ecc_) records_.push_back(Record{word, 2});
  // No ECC: the corruption is silent — no record, no alarm, just wrong
  // bits waiting to be consumed.
}

u32 EccDomain::on_read(usize offset, unsigned bytes, u32 raw) {
  if (records_.empty()) return raw;
  for (usize i = 0; i < records_.size();) {
    const Record r = records_[i];
    if (offset < r.word_offset + 4u && r.word_offset < offset + bytes) {
      if (monitor_ != nullptr) {
        monitor_->post(r.bits >= 2 ? AlarmKind::kEccUncorrectable
                                   : AlarmKind::kEccCorrected);
      }
      records_.erase(records_.begin() + static_cast<long>(i));
      continue;
    }
    ++i;
  }
  return raw;
}

void EccDomain::on_write(usize offset, unsigned bytes) {
  if (records_.empty()) return;
  // A write re-encodes the word: pending fault records under it are
  // scrubbed without ever raising an alarm (the fault is masked).
  std::erase_if(records_, [&](const Record& r) {
    return offset < r.word_offset + 4u && r.word_offset < offset + bytes;
  });
}

// ------------------------------------------------------- FaultInjector --

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  plan_.sort();
}

mem::MemArray* FaultInjector::domain_array(MemDomain domain) const {
  switch (domain) {
    case MemDomain::kPFlash: return targets_.pflash;
    case MemDomain::kDspr: return targets_.dspr;
    case MemDomain::kPspr: return targets_.pspr;
    case MemDomain::kLmu: return targets_.lmu;
    case MemDomain::kCount: break;
  }
  return nullptr;
}

bool FaultInjector::domain_ecc(MemDomain domain) const {
  return domain == MemDomain::kPFlash ? targets_.safety.ecc_pflash
                                      : targets_.safety.ecc_sram;
}

void FaultInjector::bind(const Targets& targets) {
  targets_ = targets;
}

void FaultInjector::unbind() {
  for (EccDomain& dom : domains_) dom.detach();
  targets_ = Targets{};
}

void FaultInjector::fire(const FaultEvent& ev, Cycle now) {
  switch (ev.kind) {
    case FaultKind::kMemFlip: {
      mem::MemArray* array = domain_array(ev.domain);
      if (array == nullptr) return;
      EccDomain& dom = domains_[static_cast<unsigned>(ev.domain)];
      if (!dom.attached()) {
        dom.attach(array, targets_.monitor, domain_ecc(ev.domain));
      }
      dom.inject(ev);
      break;
    }
    case FaultKind::kBusError:
      if (targets_.bus == nullptr || targets_.bus->slave_count() == 0) return;
      targets_.bus->inject_slave_errors(ev.slave % targets_.bus->slave_count(),
                                        ev.count);
      break;
    case FaultKind::kSfrStuck:
      if (targets_.bridge == nullptr) return;
      targets_.bridge->inject_sfr_fault(ev.sfr_offset, ev.sfr_value, ev.count);
      break;
    case FaultKind::kIrqStorm:
      if (targets_.irq == nullptr) return;
      storms_.push_back(Storm{ev.irq_src, now + ev.duration});
      break;
    case FaultKind::kCount:
      return;
  }
  injected_[static_cast<unsigned>(ev.kind)] += 1;
}

void FaultInjector::step(Cycle now) {
  while (next_ < plan_.events.size() && plan_.events[next_].at <= now) {
    fire(plan_.events[next_], now);
    ++next_;
  }
  if (storms_.empty()) return;
  for (usize i = 0; i < storms_.size();) {
    if (now >= storms_[i].until) {
      storms_.erase(storms_.begin() + static_cast<long>(i));
      continue;
    }
    targets_.irq->post(storms_[i].src);
    ++i;
  }
}

Cycle FaultInjector::next_activity_cycle(Cycle now) const {
  Cycle next = ~Cycle{0};
  if (next_ < plan_.events.size()) {
    // Events are cycle-sorted and step(now) drained everything <= now.
    next = std::max(plan_.events[next_].at, now + 1);
  }
  // An active storm posts its source again on the very next cycle.
  if (!storms_.empty()) next = std::min(next, now + 1);
  return next;
}

u64 FaultInjector::total_injected() const {
  u64 total = 0;
  for (const u64 v : injected_) total += v;
  return total;
}

void FaultInjector::register_metrics(telemetry::MetricsRegistry& registry,
                                     std::string_view component) const {
  for (unsigned k = 0; k < kNumFaultKinds; ++k) {
    registry.counter(std::string(component),
                     std::string("injected.") +
                         to_string(static_cast<FaultKind>(k)),
                     &injected_[k]);
  }
}

}  // namespace audo::fault
