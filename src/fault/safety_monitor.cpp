#include "fault/safety_monitor.hpp"

#include <algorithm>
#include <string>

#include "cpu/cpu.hpp"
#include "periph/irq_router.hpp"
#include "periph/peripherals.hpp"
#include "telemetry/metrics.hpp"

namespace audo::fault {

const char* to_string(AlarmKind kind) {
  switch (kind) {
    case AlarmKind::kEccCorrected: return "ecc_corrected";
    case AlarmKind::kEccUncorrectable: return "ecc_uncorrectable";
    case AlarmKind::kBusError: return "bus_error";
    case AlarmKind::kWatchdogTimeout: return "wdt_timeout";
    case AlarmKind::kCpuTrap: return "cpu_trap";
    case AlarmKind::kCount: break;
  }
  return "?";
}

const char* to_string(Reaction kind) {
  switch (kind) {
    case Reaction::kRecord: return "record";
    case Reaction::kIrq: return "irq";
    case Reaction::kTrap: return "trap";
    case Reaction::kHaltCore: return "halt";
  }
  return "?";
}

void SafetyMonitor::bind(periph::IrqRouter* router, unsigned alarm_src,
                         cpu::Cpu* tc, const periph::Watchdog* watchdog) {
  router_ = router;
  alarm_src_ = alarm_src;
  tc_ = tc;
  watchdog_ = watchdog;
  last_wdt_timeouts_ = watchdog != nullptr ? watchdog->timeouts() : 0;
}

void SafetyMonitor::react(AlarmKind kind, Cycle now) {
  (void)now;
  switch (config_.reaction(kind)) {
    case Reaction::kRecord:
      return;
    case Reaction::kIrq:
      if (router_ != nullptr) router_->post(alarm_src_);
      obs_.alarm_irq = true;
      break;
    case Reaction::kTrap:
      if (tc_ != nullptr) tc_->request_trap(static_cast<u8>(kind));
      break;
    case Reaction::kHaltCore:
      if (tc_ != nullptr) tc_->force_halt();
      obs_.halt_request = true;
      break;
  }
  ++reactions_fired_;
}

mcds::SafetyObservation SafetyMonitor::step_cycle(
    Cycle now, const mcds::ObservationFrame& frame) {
  obs_.reset();

  // Fold frame strobes and the watchdog delta into the posted alarms.
  if (frame.sri.error_response) post(AlarmKind::kBusError);
  if (frame.tc.trap_entry || frame.pcp.trap_entry) post(AlarmKind::kCpuTrap);
  if (watchdog_ != nullptr) {
    const u64 timeouts = watchdog_->timeouts();
    for (u64 i = last_wdt_timeouts_; i < timeouts; ++i) {
      post(AlarmKind::kWatchdogTimeout);
    }
    last_wdt_timeouts_ = timeouts;
  }

  for (unsigned k = 0; k < kNumAlarmKinds; ++k) {
    const u32 count = pending_[k];
    if (count == 0) continue;
    pending_[k] = 0;
    totals_[k] += count;
    switch (static_cast<AlarmKind>(k)) {
      case AlarmKind::kEccCorrected:
        obs_.ecc_corrected = static_cast<u8>(std::min<u32>(count, 255));
        break;
      case AlarmKind::kEccUncorrectable:
        obs_.ecc_uncorrectable = static_cast<u8>(std::min<u32>(count, 255));
        break;
      case AlarmKind::kBusError: obs_.bus_error = true; break;
      case AlarmKind::kWatchdogTimeout: obs_.wdt_timeout = true; break;
      case AlarmKind::kCpuTrap: obs_.cpu_trap = true; break;
      case AlarmKind::kCount: break;
    }
    react(static_cast<AlarmKind>(k), now);
  }
  return obs_;
}

bool SafetyMonitor::quiescent() const {
  for (u32 count : pending_) {
    if (count != 0) return false;
  }
  return watchdog_ == nullptr || watchdog_->timeouts() == last_wdt_timeouts_;
}

void SafetyMonitor::register_metrics(telemetry::MetricsRegistry& registry,
                                     std::string_view component) const {
  for (unsigned k = 0; k < kNumAlarmKinds; ++k) {
    registry.counter(std::string(component),
                     std::string("alarm.") +
                         to_string(static_cast<AlarmKind>(k)),
                     &totals_[k]);
  }
  registry.counter(std::string(component), "reactions", &reactions_fired_);
}

}  // namespace audo::fault
