// Safety-mechanism configuration: alarm taxonomy and reactions.
//
// Models the SMU-style alarm plumbing of safety-oriented AURIX parts on
// top of the TC1797-like platform: every hardware-detectable error
// condition maps to an AlarmKind, and the SafetyConfig decides per kind
// whether the SafetyMonitor merely records it, raises an NMI-style
// interrupt, redirects the core through its trap vector, or halts the
// core outright. Lives in its own header so SocConfig can embed it
// without pulling in the monitor machinery.
#pragma once

#include "common/bits.hpp"
#include "common/types.hpp"

namespace audo::fault {

enum class AlarmKind : u8 {
  kEccCorrected = 0,    // single-bit memory error, corrected in-line
  kEccUncorrectable,    // double-bit memory error, data is corrupt
  kBusError,            // crossbar slave signalled an error response
  kWatchdogTimeout,     // window watchdog expired (or bad service)
  kCpuTrap,             // a core entered its trap vector
  kCount,
};
inline constexpr unsigned kNumAlarmKinds =
    static_cast<unsigned>(AlarmKind::kCount);

const char* to_string(AlarmKind kind);

/// What the SafetyMonitor does when an alarm of a given kind fires.
enum class Reaction : u8 {
  kRecord = 0,  // count it; fully passive
  kIrq,         // post the NMI-style "smu.alarm" service request
  kTrap,        // redirect the TC through its trap vector (BTV)
  kHaltCore,    // stop the TC — the strongest containment
};

const char* to_string(Reaction kind);

struct SafetyConfig {
  /// Master switch. Off = the monitor never steps and the platform is
  /// bit-identical (in behaviour and cost) to the pre-fault simulator.
  bool monitor_enabled = true;

  /// SEC-DED ECC per memory domain. On: single-bit flips are corrected
  /// on read (raising kEccCorrected), double-bit flips raise
  /// kEccUncorrectable and return corrupt data. Off: any flip silently
  /// corrupts data.
  bool ecc_pflash = true;
  bool ecc_sram = true;  // DSPR / PSPR / LMU

  Reaction reactions[kNumAlarmKinds] = {
      Reaction::kRecord,  // kEccCorrected — corrected errors are benign
      Reaction::kTrap,    // kEccUncorrectable
      Reaction::kRecord,  // kBusError
      Reaction::kRecord,  // kWatchdogTimeout
      Reaction::kRecord,  // kCpuTrap
  };

  Reaction reaction(AlarmKind kind) const {
    return reactions[static_cast<unsigned>(kind)];
  }

  u64 fingerprint(u64 h) const {
    h = fnv1a(h, u64{monitor_enabled});
    h = fnv1a(h, u64{ecc_pflash});
    h = fnv1a(h, u64{ecc_sram});
    for (const Reaction r : reactions) h = fnv1a(h, static_cast<u64>(r));
    return h;
  }
};

}  // namespace audo::fault
