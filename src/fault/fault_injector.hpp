// Deterministic, seed-driven fault injection.
//
// A FaultPlan is a cycle-sorted list of FaultEvents; the FaultInjector
// binds to the platform's components and fires each event at exactly its
// scheduled cycle. Four fault classes:
//
//  * kMemFlip  — stored-bit flips in PFLASH / DSPR / PSPR / LMU under a
//    SEC-DED ECC model. With ECC enabled, a single-bit flip is recorded
//    but the array stays intact (the read path "corrects" it and raises
//    kEccCorrected); a double-bit flip really corrupts the word and the
//    first read raises kEccUncorrectable while returning corrupt data.
//    With ECC disabled any flip corrupts silently. An overwrite scrubs
//    pending records (the write re-encodes the word).
//  * kBusError — the next N completions on a crossbar slave return an
//    error response (transfer suppressed, master port flagged).
//  * kSfrStuck — a peripheral SFR offset returns a stuck value for the
//    next N reads (undetectable by hardware; classic sensor fault).
//  * kIrqStorm — a service-request node is posted every cycle for a
//    duration (interrupt overload / livelock stimulus).
//
// Determinism: plans are pure data generated from a seed (generate_plan)
// and event firing depends only on the cycle counter, so identical
// (seed, config, workload) triples replay bit-identically on any host —
// the property fault campaigns lean on.
//
// Lifetime: the injector installs MemFaultHook pointers into the SoC's
// memory arrays; it must outlive the Soc it is bound to (declare the
// injector first), or be detached via Soc::set_fault_injector(nullptr).
#pragma once

#include <array>
#include <string_view>
#include <vector>

#include "common/snapshot.hpp"
#include "common/types.hpp"
#include "fault/safety.hpp"
#include "mem/mem_array.hpp"

namespace audo::bus {
class Crossbar;
}
namespace audo::periph {
class IrqRouter;
class PeriphBridge;
}
namespace audo::telemetry {
class MetricsRegistry;
}

namespace audo::fault {

class SafetyMonitor;

enum class FaultKind : u8 { kMemFlip, kBusError, kSfrStuck, kIrqStorm, kCount };
inline constexpr unsigned kNumFaultKinds =
    static_cast<unsigned>(FaultKind::kCount);
const char* to_string(FaultKind kind);

enum class MemDomain : u8 { kPFlash, kDspr, kPspr, kLmu, kCount };
inline constexpr unsigned kNumMemDomains =
    static_cast<unsigned>(MemDomain::kCount);
const char* to_string(MemDomain domain);

/// One scheduled fault. Only the fields of the selected kind matter.
struct FaultEvent {
  Cycle at = 1;
  FaultKind kind = FaultKind::kMemFlip;

  // kMemFlip
  MemDomain domain = MemDomain::kPFlash;
  u32 offset = 0;  // byte offset into the domain (word-aligned internally)
  u8 bits = 1;     // 1 = correctable under ECC, 2 = uncorrectable
  u8 bit0 = 0;     // flipped bit positions within the 32-bit word
  u8 bit1 = 1;

  // kBusError / kSfrStuck
  u64 count = 1;   // errored completions / stuck reads

  // kBusError
  unsigned slave = 0;

  // kSfrStuck
  u32 sfr_offset = 0;  // offset from kPeriphBase
  u32 sfr_value = 0;

  // kIrqStorm
  unsigned irq_src = 0;
  u64 duration = 1;  // cycles the source is re-posted every cycle
};

struct FaultPlan {
  std::vector<FaultEvent> events;
  /// Order events by cycle (stable, so same-cycle events keep their
  /// generation order). Call after hand-building a plan.
  void sort();
};

/// Target ranges the random generator draws from; the campaign builds
/// this from the workload image and SoC configuration.
struct PlanSpec {
  Cycle window_begin = 1'000;
  Cycle window_end = 100'000;
  u32 flash_bytes = 0;
  u32 flash_image_bytes = 0;  // live image footprint (0 = whole flash)
  u32 dspr_bytes = 0;
  u32 pspr_bytes = 0;
  u32 lmu_bytes = 0;
  unsigned slave_count = 0;
  std::vector<u32> sfr_offsets;    // candidate stuck-read targets
  std::vector<unsigned> irq_srcs;  // candidate storm sources
  unsigned events_min = 1;
  unsigned events_max = 2;
};

/// Deterministically expand a seed into a fault plan within `spec`.
FaultPlan generate_plan(u64 seed, const PlanSpec& spec);

/// The per-memory-domain ECC model (a MemFaultHook; see file comment).
class EccDomain final : public mem::MemFaultHook {
 public:
  void attach(mem::MemArray* array, SafetyMonitor* monitor, bool ecc_enabled);
  /// Remove the hook from the array (if attached) and drop all records.
  void detach();
  bool attached() const { return array_ != nullptr; }

  /// Apply a kMemFlip event to the attached array.
  void inject(const FaultEvent& ev);

  u32 on_read(usize offset, unsigned bytes, u32 raw) override;
  void on_write(usize offset, unsigned bytes) override;

  usize pending_records() const { return records_.size(); }

  /// Snapshot support: pending ECC fault records. Attachment wiring is
  /// reconstructed by bind().
  void save_state(snapshot::Writer& w) const {
    w.put_u32(static_cast<u32>(records_.size()));
    for (const Record& rec : records_) {
      w.put_u32(rec.word_offset);
      w.put_u8(rec.bits);
    }
  }
  void restore_state(snapshot::Reader& r) {
    records_.clear();
    const u32 count = r.get_u32();
    for (u32 i = 0; i < count && r.ok(); ++i) {
      Record rec{};
      rec.word_offset = r.get_u32();
      rec.bits = r.get_u8();
      records_.push_back(rec);
    }
  }

 private:
  struct Record {
    u32 word_offset;
    u8 bits;
  };

  mem::MemArray* array_ = nullptr;
  SafetyMonitor* monitor_ = nullptr;
  bool ecc_ = true;
  std::vector<Record> records_;
};

class FaultInjector {
 public:
  /// Component pointers the injector acts on (bound by
  /// Soc::set_fault_injector).
  struct Targets {
    mem::MemArray* pflash = nullptr;
    mem::MemArray* dspr = nullptr;
    mem::MemArray* pspr = nullptr;
    mem::MemArray* lmu = nullptr;
    bus::Crossbar* bus = nullptr;
    periph::PeriphBridge* bridge = nullptr;
    periph::IrqRouter* irq = nullptr;
    SafetyMonitor* monitor = nullptr;
    SafetyConfig safety;  // ECC enables per domain
  };

  explicit FaultInjector(FaultPlan plan);

  void bind(const Targets& targets);
  /// Detach from the bound SoC: unhooks every ECC domain from its memory
  /// array and clears the target pointers. Safe to call when unbound.
  void unbind();

  /// Fire all events scheduled at or before `now`, then pump active IRQ
  /// storms. Called at the top of Soc::step().
  void step(Cycle now);

  /// Earliest future cycle whose step() fires an event or re-posts a
  /// storm; ~Cycle{0} when the plan is exhausted and no storm is active.
  Cycle next_activity_cycle(Cycle now) const;

  /// No events left to fire and no storm running — the injector can never
  /// wake the system again (idle-deadlock scan).
  bool exhausted() const { return next_ >= plan_.events.size() && storms_.empty(); }

  u64 injected(FaultKind kind) const {
    return injected_[static_cast<unsigned>(kind)];
  }
  u64 total_injected() const;
  const FaultPlan& plan() const { return plan_; }

  void register_metrics(telemetry::MetricsRegistry& registry,
                        std::string_view component) const;

  /// Snapshot support: plan cursor, active storms, injection counters and
  /// pending ECC records. The plan itself is input data — restore into an
  /// injector constructed from the same plan (and bound to the same
  /// targets; the binding re-attaches the ECC hooks).
  void save_state(snapshot::Writer& w) const {
    w.put_u64(next_);
    w.put_u32(static_cast<u32>(storms_.size()));
    for (const Storm& s : storms_) {
      w.put_u32(static_cast<u32>(s.src));
      w.put_u64(s.until);
    }
    for (u64 v : injected_) w.put_u64(v);
    for (const EccDomain& d : domains_) d.save_state(w);
  }
  void restore_state(snapshot::Reader& r) {
    next_ = r.get_u64();
    storms_.clear();
    const u32 storm_count = r.get_u32();
    for (u32 i = 0; i < storm_count && r.ok(); ++i) {
      Storm s{};
      s.src = r.get_u32();
      s.until = r.get_u64();
      storms_.push_back(s);
    }
    for (u64& v : injected_) v = r.get_u64();
    for (EccDomain& d : domains_) d.restore_state(r);
  }

 private:
  void fire(const FaultEvent& ev, Cycle now);
  mem::MemArray* domain_array(MemDomain domain) const;
  bool domain_ecc(MemDomain domain) const;

  struct Storm {
    unsigned src;
    Cycle until;  // exclusive
  };

  FaultPlan plan_;
  usize next_ = 0;
  Targets targets_;
  std::array<EccDomain, kNumMemDomains> domains_;
  std::vector<Storm> storms_;
  std::array<u64, kNumFaultKinds> injected_{};
};

}  // namespace audo::fault
