#include "telemetry/host_profiler.hpp"

namespace audo::telemetry {

const char* to_string(StepPhase phase) {
  switch (phase) {
    case StepPhase::kPeripherals: return "peripherals";
    case StepPhase::kDma: return "dma";
    case StepPhase::kCores: return "cores";
    case StepPhase::kMemories: return "memories";
    case StepPhase::kBus: return "bus";
    case StepPhase::kObserve: return "observe";
    case StepPhase::kMcds: return "mcds";
    case StepPhase::kCount: break;
  }
  return "?";
}

double PhaseProbe::fraction(StepPhase phase) const {
  u64 total = 0;
  for (const PhaseStat& s : stats_) total += s.ns;
  if (total == 0) return 0.0;
  return static_cast<double>(stat(phase).ns) / static_cast<double>(total);
}

void PhaseProbe::reset() {
  cycle_counter_ = 0;
  sampling_ = false;
  stats_ = {};
}

void HostProfiler::start(Cycle sim_cycle) {
  start_cycle_ = sim_cycle;
  stop_cycle_ = sim_cycle;
  stopped_ = false;
  probe_.reset();
  wall_start_ = std::chrono::steady_clock::now();
}

void HostProfiler::stop(Cycle sim_cycle) {
  wall_stop_ = std::chrono::steady_clock::now();
  stop_cycle_ = sim_cycle;
  stopped_ = true;
}

double HostProfiler::wall_seconds() const {
  const auto end = stopped_ ? wall_stop_ : std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - wall_start_).count();
}

double HostProfiler::sim_cycles_per_second() const {
  const double secs = wall_seconds();
  if (secs <= 0.0) return 0.0;
  return static_cast<double>(sim_cycles()) / secs;
}

}  // namespace audo::telemetry
