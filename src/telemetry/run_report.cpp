#include "telemetry/run_report.hpp"

#include <fstream>

#include "common/json.hpp"

namespace audo::telemetry {

void RunReport::set_host(const HostProfiler& host) {
  wall_seconds = host.wall_seconds();
  sim_cycles_per_second = host.sim_cycles_per_second();
  host_phases.clear();
  const PhaseProbe& probe = host.probe();
  if (probe.instrumented_cycles() == 0) return;
  for (unsigned p = 0; p < static_cast<unsigned>(StepPhase::kCount); ++p) {
    const auto phase = static_cast<StepPhase>(p);
    const PhaseProbe::PhaseStat& stat = probe.stat(phase);
    host_phases.push_back(PhaseEntry{to_string(phase), stat.ns, stat.samples,
                                     probe.fraction(phase)});
  }
}

std::string RunReport::to_json() const {
  json::JsonWriter w;
  w.begin_object();
  w.kv("schema", schema);
  w.kv("bench", bench);
  w.key("config");
  w.begin_object();
  w.kv("name", config_name);
  w.kv("fingerprint", config_fingerprint);
  w.kv("seed", seed);
  w.end_object();

  w.key("run");
  w.begin_object();
  w.kv("cycles", cycles);
  w.kv("instructions", instructions);
  w.kv("ipc", sim_ipc);
  w.kv("jobs", jobs);
  w.key("fast_forward");
  w.begin_object();
  w.kv("enabled", fast_forward_enabled);
  w.kv("skipped_cycles", ff_skipped_cycles);
  w.kv("wakeups", ff_wakeups);
  w.key("wake_sources");
  w.begin_object();
  for (const auto& [name, value] : ff_wake_sources) w.kv(name, value);
  w.end_object();
  w.end_object();  // fast_forward
  w.key("exec_tier");
  w.begin_object();
  w.kv("tier", exec_tier.tier);
  w.kv("windows", exec_tier.windows);
  w.kv("fast_cycles", exec_tier.fast_cycles);
  w.kv("stepped_cycles", exec_tier.stepped_cycles);
  w.key("declines");
  w.begin_object();
  for (const auto& [name, value] : exec_tier.declines) w.kv(name, value);
  w.end_object();
  w.end_object();  // exec_tier
  w.end_object();

  // Metrics grouped per component: { "tc": {"retired": N, ...}, ... }.
  // Samples arrive registry-ordered, so one component's metrics are
  // contiguous; emit a new group whenever the component changes.
  w.key("metrics");
  w.begin_object();
  w.kv("sim_cycle", metrics.sim_cycle);
  w.kv("host_ns", metrics.host_ns);
  w.key("components");
  w.begin_object();
  const std::string* open_component = nullptr;
  for (const MetricSample& s : metrics.samples) {
    if (open_component == nullptr || *open_component != s.component) {
      if (open_component != nullptr) w.end_object();
      w.key(s.component);
      w.begin_object();
      open_component = &s.component;
    }
    w.kv(s.name, s.value);
  }
  if (open_component != nullptr) w.end_object();
  w.end_object();  // components
  w.end_object();  // metrics

  w.key("host");
  w.begin_object();
  w.kv("wall_seconds", wall_seconds);
  w.kv("sim_cycles_per_second", sim_cycles_per_second);
  w.key("phases");
  w.begin_array();
  for (const PhaseEntry& p : host_phases) {
    w.begin_object();
    w.kv("phase", p.phase);
    w.kv("sampled_ns", p.sampled_ns);
    w.kv("samples", p.samples);
    w.kv("fraction", p.fraction);
    w.end_object();
  }
  w.end_array();
  w.end_object();  // host

  // Always present (empty for fault-free runs) so consumers can key on
  // them unconditionally.
  w.key("faults");
  w.begin_object();
  for (const auto& [name, value] : faults) w.kv(name, value);
  w.end_object();

  w.key("fault_scenarios");
  w.begin_array();
  for (const FaultScenarioEntry& s : fault_scenarios) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("outcome", s.outcome);
    w.kv("cycles", s.cycles);
    w.kv("task", s.task);
    w.kv("budget_cycles", s.budget_cycles);
    w.kv("timeout_ms", s.timeout_ms);
    w.kv("attempts", s.attempts);
    w.end_object();
  }
  w.end_array();

  w.key("alarms");
  w.begin_object();
  for (const auto& [name, value] : alarms) w.kv(name, value);
  w.end_object();

  w.key("stall_attribution");
  w.begin_object();
  for (const StallAttributionBlock& block : stall_attribution) {
    w.key(block.core);
    w.begin_object();
    for (const auto& [bucket, value] : block.buckets) w.kv(bucket, value);
    w.end_object();
  }
  w.end_object();

  w.key("interference_matrix");
  w.begin_array();
  for (const InterferenceEntry& e : interference_matrix) {
    w.begin_object();
    w.kv("slave", e.slave);
    w.kv("waiter", e.waiter);
    w.kv("holder", e.holder);
    w.kv("cycles", e.cycles);
    w.end_object();
  }
  w.end_array();

  w.key("dag");
  w.begin_object();
  w.kv("present", dag.present);
  if (dag.present) {
    w.kv("nodes", dag.nodes);
    w.kv("edges", dag.edges);
    w.kv("total_cycles", dag.total_cycles);
    w.kv("critical_path_cycles", dag.critical_path_cycles);
    w.kv("critical_path_nodes", dag.critical_path_nodes);
    w.kv("hash", dag.hash);
    w.key("tasks");
    w.begin_array();
    for (const DagTaskEntry& t : dag.tasks) {
      w.begin_object();
      w.kv("task", t.task);
      w.kv("kind", t.kind);
      w.kv("label", t.label);
      w.kv("activations", t.activations);
      w.kv("cycles", t.cycles);
      w.kv("instructions", t.instructions);
      w.kv("slack", t.slack);
      w.kv("preempted_cycles", t.preempted_cycles);
      w.kv("dispatch_latency", t.dispatch_latency);
      w.end_object();
    }
    w.end_array();
    w.key("critical_path");
    w.begin_array();
    for (const DagPathEntry& p : dag.critical_path) {
      w.begin_object();
      w.kv("task", p.task);
      w.kv("start", p.start);
      w.kv("end", p.end);
      w.kv("cycles", p.cycles);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();  // dag

  w.key("extras");
  w.begin_object();
  for (const auto& [name, value] : extras) w.kv(name, value);
  w.end_object();

  w.end_object();
  return std::move(w).str();
}

Status RunReport::write(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return error(StatusCode::kNotFound, "cannot open " + path);
  }
  out << to_json() << '\n';
  if (!out) {
    return error(StatusCode::kResourceExhausted, "write failed: " + path);
  }
  return Status::ok();
}

}  // namespace audo::telemetry
