// Cycle-domain timeline recorder with Chrome-trace-event (Perfetto) JSON
// export. The simulator-host analogue of the MCDS trace path: observers
// append spans/instants/counter samples in simulated-cycle time, and the
// exporter maps cycles to trace microseconds via the SoC clock so a run
// opens directly in ui.perfetto.dev.
//
// Tracks map to Chrome "threads" of one "trisim" process; span nesting
// uses B/E duration events (per-track stack semantics), transactions use
// X complete events, and fill levels use C counter events.
//
// The recorder is bounded: at most `max_events` events are kept and
// events outside the [start_cycle, end_cycle) window are ignored, so a
// multi-minute simulation cannot silently produce a multi-GiB trace.
// Dropped events are counted and reported, never silently discarded.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace audo::telemetry {

struct TimelineOptions {
  /// Record only cycles in [start_cycle, end_cycle).
  Cycle start_cycle = 0;
  Cycle end_cycle = ~Cycle{0};
  /// Hard cap on stored events (spans count once at close).
  usize max_events = 4'000'000;
};

class Timeline {
 public:
  using TrackId = u32;

  explicit Timeline(TimelineOptions options = {}) : options_(options) {}

  /// Register a named track (Chrome thread). Tracks render in
  /// registration order (tid order) unless an explicit sort index is set.
  TrackId add_track(std::string name);

  /// Override the track's render position (thread_sort_index metadata).
  /// Tracks without an override keep their registration order as index.
  void set_track_sort_index(TrackId track, u64 index);

  bool wants(Cycle at) const {
    return at >= options_.start_cycle && at < options_.end_cycle;
  }

  /// Open a nested span on `track` (B event). Spans on one track must be
  /// closed in LIFO order.
  void begin(TrackId track, std::string_view name, Cycle start);
  /// Close the innermost open span on `track` (E event).
  void end(TrackId track, Cycle at);
  /// A complete span [start, end] (X event). Zero-length spans are given
  /// one cycle of duration so they stay visible.
  void complete(TrackId track, std::string_view name, Cycle start, Cycle end);
  /// A point event (i instant).
  void instant(TrackId track, std::string_view name, Cycle at);
  /// A counter sample (C event); one counter series per `name`.
  void counter(std::string_view name, Cycle at, double value);
  /// A flow arrow (s/f event pair) from a point on one track to a point
  /// on another — causal links between slices (e.g. preemption edges).
  /// Arrows bind to the enclosing slices at both endpoints.
  void flow(TrackId from_track, Cycle from_at, TrackId to_track, Cycle to_at,
            std::string_view name);

  usize event_count() const { return events_.size(); }
  u64 dropped_events() const { return dropped_; }
  usize track_count() const { return tracks_.size(); }

  /// Serialize as a Chrome trace-event JSON document; `clock_hz` converts
  /// simulated cycles to trace microseconds.
  std::string to_chrome_json(u64 clock_hz) const;
  Status write_chrome_json(const std::string& path, u64 clock_hz) const;

 private:
  enum class Ph : u8 {
    kBegin,
    kEnd,
    kComplete,
    kInstant,
    kCounter,
    kFlowStart,
    kFlowFinish,
  };

  struct Event {
    Ph ph;
    TrackId track;
    u32 name;  // index into names_
    Cycle start;
    Cycle end;      // kComplete only
    double value;   // kCounter value / flow id
  };

  u32 intern(std::string_view name);
  bool admit(Cycle at);

  TimelineOptions options_;
  std::vector<std::string> tracks_;
  std::unordered_map<u32, u64> sort_override_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, u32> name_index_;
  std::vector<Event> events_;
  u64 next_flow_id_ = 1;
  u64 dropped_ = 0;
};

}  // namespace audo::telemetry
