// Host self-profiler: measures the *simulator itself*, not the simulated
// chip — wall-clock throughput (simulated cycles per host second) and a
// sampled breakdown of where host time goes across the fixed Soc::step()
// phase order (peripherals → DMA → cores → bus → memories → observe).
//
// The phase probe is a concrete class wired by pointer: a null probe
// costs one predictable branch per phase, an attached probe reads the
// steady clock only on sampled cycles (1 in `sample_stride`), so future
// perf PRs get a baseline without slowing down the thing they measure.
#pragma once

#include <array>
#include <chrono>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace audo::telemetry {

/// The Soc::step() phases, in execution order (see DESIGN.md), plus the
/// EEC-side observation the Emulation Device runs after each SoC cycle.
enum class StepPhase : u8 {
  kPeripherals = 0,  // timers, crank, ADC, CAN, watchdog
  kDma,              // DMA bus master
  kCores,            // TC + PCP issue/retire
  kMemories,         // flash timing sample (PFlash::tick)
  kBus,              // crossbar arbitration + completion
  kObserve,          // observation-frame publish + host tracer
  kMcds,             // EEC side: MCDS observe + EMEM/DAP drain (ED only)
  kCount,
};

const char* to_string(StepPhase phase);

class PhaseProbe {
 public:
  /// Measure one cycle out of every `sample_stride` (power of two gives
  /// the cheapest check but any stride >= 1 works).
  explicit PhaseProbe(u32 sample_stride = 64)
      : stride_(sample_stride == 0 ? 1 : sample_stride) {}

  /// Called by Soc::step() once per cycle, before the first phase.
  void begin_cycle() {
    sampling_ = (cycle_counter_++ % stride_) == 0;
  }

  void begin(StepPhase phase) {
    if (!sampling_) return;
    (void)phase;
    phase_start_ = std::chrono::steady_clock::now();
  }

  void end(StepPhase phase) {
    if (!sampling_) return;
    const auto now = std::chrono::steady_clock::now();
    auto& stat = stats_[static_cast<unsigned>(phase)];
    stat.ns += static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                             phase_start_)
            .count());
    stat.samples++;
  }

  struct PhaseStat {
    u64 ns = 0;       // host ns accumulated over sampled cycles
    u64 samples = 0;  // sampled cycles contributing
  };

  const PhaseStat& stat(StepPhase phase) const {
    return stats_[static_cast<unsigned>(phase)];
  }
  u64 instrumented_cycles() const { return cycle_counter_; }
  u32 sample_stride() const { return stride_; }

  /// Fraction of sampled host time spent in `phase` (0 when nothing was
  /// sampled yet).
  double fraction(StepPhase phase) const;

  void reset();

 private:
  u32 stride_;
  u64 cycle_counter_ = 0;
  bool sampling_ = false;
  std::chrono::steady_clock::time_point phase_start_{};
  std::array<PhaseStat, static_cast<unsigned>(StepPhase::kCount)> stats_{};
};

/// Wall-clock envelope of one measured run.
class HostProfiler {
 public:
  void start(Cycle sim_cycle);
  void stop(Cycle sim_cycle);

  bool stopped() const { return stopped_; }
  double wall_seconds() const;
  u64 sim_cycles() const { return stop_cycle_ - start_cycle_; }
  /// Simulated cycles per host second over the measured window.
  double sim_cycles_per_second() const;

  PhaseProbe& probe() { return probe_; }
  const PhaseProbe& probe() const { return probe_; }

 private:
  PhaseProbe probe_;
  std::chrono::steady_clock::time_point wall_start_{};
  std::chrono::steady_clock::time_point wall_stop_{};
  Cycle start_cycle_ = 0;
  Cycle stop_cycle_ = 0;
  bool stopped_ = false;
};

}  // namespace audo::telemetry
