#include "telemetry/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <set>

namespace audo::telemetry {

u64 host_clock_ns() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const MetricSample* MetricsSnapshot::find(std::string_view component,
                                          std::string_view name) const {
  for (const MetricSample& s : samples) {
    if (s.component == component && s.name == name) return &s;
  }
  return nullptr;
}

usize MetricsSnapshot::component_count() const {
  std::set<std::string_view> components;
  for (const MetricSample& s : samples) components.insert(s.component);
  return components.size();
}

void MetricsRegistry::counter(std::string component, std::string name,
                              const u64* source) {
  entries_.push_back(
      Entry{std::move(component), std::move(name), source, {}});
}

void MetricsRegistry::gauge(std::string component, std::string name,
                            std::function<u64()> fn) {
  entries_.push_back(
      Entry{std::move(component), std::move(name), nullptr, std::move(fn)});
}

MetricsSnapshot MetricsRegistry::collect(Cycle sim_cycle) const {
  MetricsSnapshot snap;
  snap.sim_cycle = sim_cycle;
  snap.host_ns = host_clock_ns();
  snap.samples.reserve(entries_.size());
  for (const Entry& e : entries_) {
    snap.samples.push_back(MetricSample{
        e.component, e.name, e.source != nullptr ? *e.source : e.fn()});
  }
  return snap;
}

}  // namespace audo::telemetry
