// Structured, machine-readable run report — the artifact that turns a
// bench/tool invocation from "text on stdout" into data a trajectory can
// track: configuration fingerprint, simulated work done, every registry
// metric grouped by component, and host throughput. Written as JSON;
// tools/report_schema.json documents the format and the CI smoke test
// validates emitted reports against it.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "telemetry/host_profiler.hpp"
#include "telemetry/metrics.hpp"

namespace audo::telemetry {

struct RunReport {
  // ---- identity ----
  std::string schema = "trisim-run-report/1";
  std::string bench;        // binary or scenario name
  std::string config_name;  // SocConfig.name
  u64 config_fingerprint = 0;
  u64 seed = 0;

  // ---- simulated work ----
  u64 cycles = 0;
  u64 instructions = 0;  // TC instructions retired
  double sim_ipc = 0.0;
  u64 jobs = 1;  // host worker threads used for sweeps (--jobs)

  // ---- idle fast-forward (SocConfig::fast_forward) ----
  bool fast_forward_enabled = false;
  u64 ff_skipped_cycles = 0;  // cycles jumped over instead of stepped
  u64 ff_wakeups = 0;         // skip windows taken
  /// Per-wake-source window counts ("crank", "stm", ...), in the order
  /// the caller added them.
  std::vector<std::pair<std::string, u64>> ff_wake_sources;

  // ---- execution tier (SocConfig::exec_tier; soc::ExecTierStats) ----
  /// Superblock-tier coverage: how much of the run went through fast
  /// windows and, when it didn't, the top reasons the tier declined.
  struct ExecTierBlock {
    std::string tier = "accurate";  // "accurate" | "superblock"
    u64 windows = 0;                // fast windows opened
    u64 fast_cycles = 0;            // cycles executed inside windows
    u64 stepped_cycles = 0;         // cycles run by the accurate stepper
    /// Per-reason decline counts ("bail.stale_code", "gate.pcp_busy",
    /// ...), nonzero entries only, sorted descending.
    std::vector<std::pair<std::string, u64>> declines;
  };
  ExecTierBlock exec_tier;

  // ---- component metrics (registry snapshot) ----
  MetricsSnapshot metrics;

  // ---- host self-profile ----
  double wall_seconds = 0.0;
  double sim_cycles_per_second = 0.0;
  struct PhaseEntry {
    std::string phase;
    u64 sampled_ns = 0;
    u64 samples = 0;
    double fraction = 0.0;
  };
  std::vector<PhaseEntry> host_phases;

  // ---- fault-injection accounting (empty objects for fault-free runs) --
  /// Injected-fault counts by kind ("mem_flip", "irq_storm", ...) plus
  /// campaign outcome tallies ("outcome.masked", ...).
  std::vector<std::pair<std::string, u64>> faults;
  /// Per-scenario campaign outcomes with the task/ISR the fault landed
  /// in (execution-DAG attribution; "" when unattributable).
  struct FaultScenarioEntry {
    std::string name;
    std::string outcome;  // masked | corrected | detected | sdc | hang | failed
    u64 cycles = 0;
    std::string task;
    u64 budget_cycles = 0;  // per-scenario cycle budget in force
    u64 timeout_ms = 0;     // per-scenario wall-clock limit (0 = none)
    u64 attempts = 1;       // host attempts consumed (retry policy)
  };
  std::vector<FaultScenarioEntry> fault_scenarios;
  /// Safety-monitor alarm totals by kind ("ecc_corrected", ...).
  std::vector<std::pair<std::string, u64>> alarms;

  // ---- stall attribution (per-core root-cause buckets) & master×slave
  // interference matrix (both always present; empty for runs that never
  // sampled them) -----------------------------------------------------
  struct StallAttributionBlock {
    std::string core;  // "tc", "pcp"
    /// Root-cause bucket name ("issue", "frontend", ...) -> cycles.
    std::vector<std::pair<std::string, u64>> buckets;
  };
  std::vector<StallAttributionBlock> stall_attribution;

  /// One nonzero interference cell: cycles `waiter` spent blocked on
  /// `slave` while `holder` occupied it.
  struct InterferenceEntry {
    std::string slave;
    std::string waiter;
    std::string holder;
    u64 cycles = 0;
  };
  std::vector<InterferenceEntry> interference_matrix;

  // ---- execution DAG (profiling::ExecutionDag::fill_report; present
  // flag false => emitted as {"present": false} only) ------------------
  struct DagTaskEntry {
    std::string task;
    std::string kind;   // task | isr | idle
    std::string label;  // bottleneck label from the fixed rule table
    u64 activations = 0;
    u64 cycles = 0;
    u64 instructions = 0;
    u64 slack = 0;
    u64 preempted_cycles = 0;
    u64 dispatch_latency = 0;
  };
  struct DagPathEntry {
    std::string task;
    u64 start = 0;
    u64 end = 0;
    u64 cycles = 0;
  };
  struct DagBlock {
    bool present = false;
    u64 nodes = 0;
    u64 edges = 0;
    u64 total_cycles = 0;
    u64 critical_path_cycles = 0;
    u64 critical_path_nodes = 0;  // full chain length
    u64 hash = 0;
    std::vector<DagTaskEntry> tasks;
    /// Head of the critical path (capped by the producer; the full chain
    /// length is critical_path_nodes).
    std::vector<DagPathEntry> critical_path;
  };
  DagBlock dag;

  // ---- freeform bench-specific extras ----
  std::vector<std::pair<std::string, double>> extras;

  /// Copy wall-clock + phase breakdown out of a finished profiler.
  void set_host(const HostProfiler& host);

  void add_extra(std::string name, double value) {
    extras.emplace_back(std::move(name), value);
  }

  void add_fault(std::string name, u64 value) {
    faults.emplace_back(std::move(name), value);
  }

  void add_fault_scenario(std::string name, std::string outcome, u64 run_cycles,
                          std::string task, u64 budget_cycles = 0,
                          u64 scenario_timeout_ms = 0, u64 attempts = 1) {
    fault_scenarios.push_back(FaultScenarioEntry{
        std::move(name), std::move(outcome), run_cycles, std::move(task),
        budget_cycles, scenario_timeout_ms, attempts});
  }

  void add_alarm(std::string name, u64 value) {
    alarms.emplace_back(std::move(name), value);
  }

  void add_wake_source(std::string name, u64 value) {
    ff_wake_sources.emplace_back(std::move(name), value);
  }

  /// Append one root-cause bucket under `core`, creating the per-core
  /// block on first use.
  void add_stall_bucket(const std::string& core, std::string bucket,
                        u64 cycles) {
    for (StallAttributionBlock& b : stall_attribution) {
      if (b.core == core) {
        b.buckets.emplace_back(std::move(bucket), cycles);
        return;
      }
    }
    stall_attribution.push_back(
        StallAttributionBlock{core, {{std::move(bucket), cycles}}});
  }

  void add_interference(std::string slave, std::string waiter,
                        std::string holder, u64 cycles) {
    interference_matrix.push_back(InterferenceEntry{
        std::move(slave), std::move(waiter), std::move(holder), cycles});
  }

  std::string to_json() const;
  Status write(const std::string& path) const;
};

}  // namespace audo::telemetry
