// Simulator-host metrics registry — the host-side analogue of the MCDS
// counter bank: every component of the simulated platform registers its
// counters once, and the harness snapshots them all with one collect().
//
// Non-intrusiveness is structural, exactly as for the MCDS: a registered
// counter is a *pointer into a statistic the component maintains anyway*
// (SlaveStats, CacheStats, PFlash::Stats, ...). Registration happens once
// at setup; the simulation hot path never touches the registry, never
// pays a virtual call, and cannot observe whether telemetry is attached.
// collect() dereferences the pointers at sampling time only.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace audo::telemetry {

/// One sampled metric. `component` is the registration prefix ("tc",
/// "icache", "sri", ...) so reports can group per component.
struct MetricSample {
  std::string component;
  std::string name;  // metric name within the component
  u64 value = 0;
};

/// A full registry snapshot, keyed by simulated cycle and host wall-clock.
struct MetricsSnapshot {
  Cycle sim_cycle = 0;
  u64 host_ns = 0;  // wall-clock at collect(), ns since an arbitrary epoch
  std::vector<MetricSample> samples;

  /// Value lookup ("component/name"); returns nullptr when absent.
  const MetricSample* find(std::string_view component,
                           std::string_view name) const;
  /// Number of distinct components that registered at least one metric.
  usize component_count() const;
};

class MetricsRegistry {
 public:
  /// Register a monotonically increasing counter the component already
  /// maintains. The pointee must outlive the registry (components and
  /// registry share the harness scope).
  void counter(std::string component, std::string name, const u64* source);

  /// Register a computed gauge, evaluated at collect() time only (for
  /// values that are not plain u64 fields, e.g. EMEM occupancy).
  void gauge(std::string component, std::string name,
             std::function<u64()> fn);

  /// Snapshot every registered metric. Safe to call repeatedly; each call
  /// re-reads the live component state.
  MetricsSnapshot collect(Cycle sim_cycle) const;

  usize size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  struct Entry {
    std::string component;
    std::string name;
    const u64* source = nullptr;       // counter form
    std::function<u64()> fn;           // gauge form (source == nullptr)
  };

  std::vector<Entry> entries_;
};

/// Host wall-clock now, in ns since an arbitrary steady epoch.
u64 host_clock_ns();

}  // namespace audo::telemetry
