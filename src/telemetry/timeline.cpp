#include "telemetry/timeline.hpp"

#include <fstream>

#include "common/json.hpp"

namespace audo::telemetry {

Timeline::TrackId Timeline::add_track(std::string name) {
  tracks_.push_back(std::move(name));
  return static_cast<TrackId>(tracks_.size() - 1);
}

void Timeline::set_track_sort_index(TrackId track, u64 index) {
  sort_override_[track] = index;
}

u32 Timeline::intern(std::string_view name) {
  const auto it = name_index_.find(std::string(name));
  if (it != name_index_.end()) return it->second;
  const u32 idx = static_cast<u32>(names_.size());
  names_.emplace_back(name);
  name_index_.emplace(names_.back(), idx);
  return idx;
}

bool Timeline::admit(Cycle at) {
  if (!wants(at)) return false;
  if (events_.size() >= options_.max_events) {
    ++dropped_;
    return false;
  }
  return true;
}

void Timeline::begin(TrackId track, std::string_view name, Cycle start) {
  if (!admit(start)) return;
  events_.push_back(Event{Ph::kBegin, track, intern(name), start, start, 0.0});
}

void Timeline::end(TrackId track, Cycle at) {
  if (!admit(at)) return;
  events_.push_back(Event{Ph::kEnd, track, 0, at, at, 0.0});
}

void Timeline::complete(TrackId track, std::string_view name, Cycle start,
                        Cycle end) {
  if (!admit(start)) return;
  if (end <= start) end = start + 1;  // keep zero-length spans visible
  events_.push_back(Event{Ph::kComplete, track, intern(name), start, end, 0.0});
}

void Timeline::instant(TrackId track, std::string_view name, Cycle at) {
  if (!admit(at)) return;
  events_.push_back(Event{Ph::kInstant, track, intern(name), at, at, 0.0});
}

void Timeline::counter(std::string_view name, Cycle at, double value) {
  if (!admit(at)) return;
  events_.push_back(Event{Ph::kCounter, 0, intern(name), at, at, value});
}

void Timeline::flow(TrackId from_track, Cycle from_at, TrackId to_track,
                    Cycle to_at, std::string_view name) {
  // Both endpoints must land inside the recorded window or the arrow
  // would dangle; the pair shares one flow id.
  if (!wants(from_at) || !wants(to_at)) return;
  if (events_.size() + 2 > options_.max_events) {
    ++dropped_;
    return;
  }
  const double id = static_cast<double>(next_flow_id_++);
  const u32 n = intern(name);
  events_.push_back(Event{Ph::kFlowStart, from_track, n, from_at, from_at, id});
  events_.push_back(Event{Ph::kFlowFinish, to_track, n, to_at, to_at, id});
}

std::string Timeline::to_chrome_json(u64 clock_hz) const {
  // Trace ts is in microseconds; one cycle = 1e6 / clock_hz us.
  const double us_per_cycle =
      1e6 / static_cast<double>(clock_hz == 0 ? 1 : clock_hz);
  json::JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("otherData");
  w.begin_object();
  w.kv("clock_hz", clock_hz);
  w.kv("dropped_events", dropped_);
  w.end_object();
  w.key("traceEvents");
  w.begin_array();

  // Process / track metadata. tid 0 is reserved for counters.
  auto meta = [&](std::string_view name, u32 tid, std::string_view value) {
    w.begin_object();
    w.kv("ph", "M");
    w.kv("pid", 1);
    w.kv("tid", tid);
    w.kv("name", name);
    w.key("args");
    w.begin_object();
    w.kv("name", value);
    w.end_object();
    w.end_object();
  };
  auto sort_index = [&](u32 tid, u64 index) {
    w.begin_object();
    w.kv("ph", "M");
    w.kv("pid", 1);
    w.kv("tid", tid);
    w.kv("name", "thread_sort_index");
    w.key("args");
    w.begin_object();
    w.kv("sort_index", index);
    w.end_object();
    w.end_object();
  };
  meta("process_name", 0, "trisim");
  // tid 0 carries the counter series; name it so the UI never shows a
  // bare tid, and pin it before every span track.
  meta("thread_name", 0, "counters");
  sort_index(0, 0);
  for (usize t = 0; t < tracks_.size(); ++t) {
    meta("thread_name", static_cast<u32>(t + 1), tracks_[t]);
    // Registration order unless the producer pinned an explicit index
    // (e.g. the DAG's per-task tracks sort by task, not creation).
    const auto it = sort_override_.find(static_cast<u32>(t));
    sort_index(static_cast<u32>(t + 1),
               it != sort_override_.end() ? it->second + 1 : t + 1);
  }

  for (const Event& e : events_) {
    w.begin_object();
    const double ts = static_cast<double>(e.start) * us_per_cycle;
    switch (e.ph) {
      case Ph::kBegin:
        w.kv("ph", "B");
        w.kv("name", names_[e.name]);
        break;
      case Ph::kEnd:
        w.kv("ph", "E");
        break;
      case Ph::kComplete:
        w.kv("ph", "X");
        w.kv("name", names_[e.name]);
        w.kv("dur", static_cast<double>(e.end - e.start) * us_per_cycle);
        break;
      case Ph::kInstant:
        w.kv("ph", "i");
        w.kv("name", names_[e.name]);
        w.kv("s", "t");  // thread-scoped instant
        break;
      case Ph::kCounter:
        w.kv("ph", "C");
        w.kv("name", names_[e.name]);
        break;
      case Ph::kFlowStart:
        w.kv("ph", "s");
        w.kv("name", names_[e.name]);
        w.kv("cat", "flow");
        w.kv("id", static_cast<u64>(e.value));
        break;
      case Ph::kFlowFinish:
        w.kv("ph", "f");
        w.kv("name", names_[e.name]);
        w.kv("cat", "flow");
        w.kv("id", static_cast<u64>(e.value));
        w.kv("bp", "e");  // bind to the enclosing slice
        break;
    }
    w.kv("ts", ts);
    w.kv("pid", 1);
    w.kv("tid", e.ph == Ph::kCounter ? 0u : e.track + 1);
    w.key("args");
    w.begin_object();
    if (e.ph == Ph::kCounter) {
      w.kv("value", e.value);
    } else {
      w.kv("cycle", e.start);
    }
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.end_object();
  return std::move(w).str();
}

Status Timeline::write_chrome_json(const std::string& path,
                                   u64 clock_hz) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return error(StatusCode::kNotFound, "cannot open " + path);
  }
  out << to_chrome_json(clock_hz);
  if (!out) {
    return error(StatusCode::kResourceExhausted, "write failed: " + path);
  }
  return Status::ok();
}

}  // namespace audo::telemetry
