// Per-function CPI stacks from the per-cycle stall attribution.
//
// The SoC's attribution walk (DESIGN.md, "Stall attribution &
// interference matrix") labels every TC cycle with exactly one
// StallRootCause. This builder rides on the Soc frame-observer hook and
// charges each cycle to the function the core is executing, giving an
// *exact* per-function decomposition: for every function,
//
//   cycles == issue_cycles + sum over root causes of stall_cycles[root]
//
// holds by construction (no proportional smearing like the trace-based
// SystemProfiler). Fast-forwarded idle windows arrive through the
// skip_idle() bulk notification and land in the current function's
// kWfi/kHalted bucket, so results are bit-identical with fast-forward on
// or off.
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "isa/program.hpp"
#include "mcds/observation.hpp"
#include "soc/soc.hpp"

namespace audo::profiling {

/// One function's cycle decomposition.
struct CpiStackEntry {
  std::string name;
  u64 instructions = 0;
  u64 cycles = 0;       // all cycles charged to this function
  u64 issue_cycles = 0; // cycles with retired > 0 (the kNone bucket)
  /// Stall cycles per mcds::StallRootCause (index kNone stays 0; the
  /// issue cycles live in issue_cycles).
  std::array<u64, mcds::kNumStallRootCauses> stall{};

  double cpi() const {
    return instructions == 0 ? 0.0
                             : static_cast<double>(cycles) /
                                   static_cast<double>(instructions);
  }
  u64 stall_cycles() const { return cycles - issue_cycles; }
};

class CpiStackBuilder : public soc::FrameObserver {
 public:
  explicit CpiStackBuilder(isa::SymbolMap symbols);

  void observe(const mcds::ObservationFrame& frame) override;
  void skip_idle(const mcds::ObservationFrame& idle, u64 n) override;

  /// Per-function stacks, sorted by cycles descending.
  std::vector<CpiStackEntry> stacks() const;

  /// Sum over all functions (name = "*total*"); equals the TC stall
  /// totals over the observed window.
  CpiStackEntry total() const;

  u64 observed_cycles() const { return observed_cycles_; }

  /// Fixed-width table: one row per function, one column per root cause.
  std::string format(usize top_n = 20) const;

  /// Machine-readable export, one row per function plus the total row:
  /// `function,instructions,cycles,issue,<root cause columns...>`.
  std::string to_csv() const;

 private:
  void charge(const mcds::CoreObservation& obs, u64 n);

  isa::SymbolMap symbols_;
  std::map<std::string, CpiStackEntry> functions_;
  const std::string* current_ = nullptr;  // function charged for stalls
  u64 observed_cycles_ = 0;
};

}  // namespace audo::profiling
