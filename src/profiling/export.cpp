#include "profiling/export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace audo::profiling {

std::string series_to_csv(const std::vector<RateSeries>& series) {
  std::string out = "cycle";
  for (const RateSeries& s : series) {
    out += ',';
    out += s.name;
  }
  out += '\n';

  // Union of sample cycles -> per-series latest value at/before it.
  std::map<Cycle, std::vector<double>> rows;
  for (usize i = 0; i < series.size(); ++i) {
    for (const SeriesPoint& p : series[i].points) {
      auto& row = rows[p.cycle];
      if (row.empty()) row.assign(series.size(), -1.0);
      row[i] = p.rate();
    }
  }
  std::vector<double> last(series.size(), -1.0);
  char buf[64];
  for (auto& [cycle, row] : rows) {
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(cycle));
    out += buf;
    for (usize i = 0; i < series.size(); ++i) {
      if (row[i] >= 0.0) last[i] = row[i];
      out += ',';
      if (last[i] >= 0.0) {
        std::snprintf(buf, sizeof buf, "%.6f", last[i]);
        out += buf;
      }
    }
    out += '\n';
  }
  return out;
}

std::string messages_to_csv(const std::vector<mcds::TraceMessage>& messages) {
  static const char* kKinds[] = {"sync", "flow", "tick",      "data",
                                 "rate", "wp",   "irq",       "overflow"};
  static const char* kSources[] = {"tc", "pcp", "chip"};
  std::string out = "cycle,source,kind,detail\n";
  char buf[160];
  for (const mcds::TraceMessage& m : messages) {
    std::snprintf(buf, sizeof buf, "%llu,%s,%s,",
                  static_cast<unsigned long long>(m.cycle),
                  kSources[static_cast<unsigned>(m.source)],
                  kKinds[static_cast<unsigned>(m.kind)]);
    out += buf;
    switch (m.kind) {
      case mcds::MsgKind::kSync:
        std::snprintf(buf, sizeof buf, "pc=0x%08X", m.pc);
        out += buf;
        break;
      case mcds::MsgKind::kFlow:
        std::snprintf(buf, sizeof buf, "target=0x%08X instrs=%u", m.pc,
                      m.instr_count);
        out += buf;
        break;
      case mcds::MsgKind::kTick:
        std::snprintf(buf, sizeof buf, "retired=%u", m.instr_count);
        out += buf;
        break;
      case mcds::MsgKind::kData:
        std::snprintf(buf, sizeof buf, "%s addr=0x%08X value=0x%08X size=%u",
                      m.write ? "write" : "read", m.addr, m.value, m.bytes);
        out += buf;
        break;
      case mcds::MsgKind::kRate: {
        std::snprintf(buf, sizeof buf, "group=%u basis=%u counts=", m.group,
                      m.basis);
        out += buf;
        for (usize i = 0; i < m.counts.size(); ++i) {
          if (i > 0) out += '|';
          std::snprintf(buf, sizeof buf, "%u", m.counts[i]);
          out += buf;
        }
        break;
      }
      case mcds::MsgKind::kWatchpoint:
        std::snprintf(buf, sizeof buf, "id=%u", m.id);
        out += buf;
        break;
      case mcds::MsgKind::kIrq:
        std::snprintf(buf, sizeof buf, "%s prio=%u",
                      m.irq_entry ? "entry" : "exit", m.id);
        out += buf;
        break;
      case mcds::MsgKind::kOverflow:
        out += "messages-lost-before-here";
        break;
    }
    out += '\n';
  }
  return out;
}

std::string interference_to_text(const bus::Crossbar& fabric) {
  std::string out;
  char buf[160];
  bool any = false;
  for (unsigned s = 0; s < fabric.slave_count(); ++s) {
    // Does this slave have any blocked cycles at all?
    u64 slave_total = 0;
    for (unsigned w = 0; w < bus::kNumMasters; ++w) {
      for (unsigned h = 0; h < bus::kNumMasters; ++h) {
        slave_total += fabric.interference(static_cast<bus::MasterId>(w),
                                           static_cast<bus::MasterId>(h), s);
      }
    }
    if (slave_total == 0) continue;
    any = true;
    std::snprintf(buf, sizeof buf, "%s (%llu blocked master-cycles)\n",
                  std::string(fabric.slave_name(s)).c_str(),
                  static_cast<unsigned long long>(slave_total));
    out += buf;
    std::snprintf(buf, sizeof buf, "  %-12s %-12s %12s\n", "waiter",
                  "holder", "cycles");
    out += buf;
    for (unsigned w = 0; w < bus::kNumMasters; ++w) {
      for (unsigned h = 0; h < bus::kNumMasters; ++h) {
        const u64 c = fabric.interference(static_cast<bus::MasterId>(w),
                                          static_cast<bus::MasterId>(h), s);
        if (c == 0) continue;
        std::snprintf(buf, sizeof buf, "  %-12s %-12s %12llu\n",
                      bus::to_string(static_cast<bus::MasterId>(w)),
                      bus::to_string(static_cast<bus::MasterId>(h)),
                      static_cast<unsigned long long>(c));
        out += buf;
      }
    }
  }
  if (!any) out = "no bus contention recorded\n";
  return out;
}

std::string interference_to_csv(const bus::Crossbar& fabric) {
  std::string out = "slave,waiter,holder,blocked_cycles\n";
  char buf[160];
  for (unsigned s = 0; s < fabric.slave_count(); ++s) {
    for (unsigned w = 0; w < bus::kNumMasters; ++w) {
      for (unsigned h = 0; h < bus::kNumMasters; ++h) {
        const u64 c = fabric.interference(static_cast<bus::MasterId>(w),
                                          static_cast<bus::MasterId>(h), s);
        if (c == 0) continue;
        std::snprintf(buf, sizeof buf, "%s,%s,%s,%llu\n",
                      std::string(fabric.slave_name(s)).c_str(),
                      bus::to_string(static_cast<bus::MasterId>(w)),
                      bus::to_string(static_cast<bus::MasterId>(h)),
                      static_cast<unsigned long long>(c));
        out += buf;
      }
    }
  }
  return out;
}

}  // namespace audo::profiling
