// Standard Enhanced-System-Profiling measurement specifications.
//
// §5 lists the essential parameters for CPU system performance of an
// engine-control system: data/instruction cache hit/miss rates, CPU
// data/instruction access rates to flash/SRAM/scratchpads, flash buffer
// hit rates, CPU IPC rate, interrupt rate. These builders turn that list
// into MCDS counter-group configurations:
//
//  * the IPC group counts retired instructions on a *clock* basis;
//  * all event-rate groups count on an *executed instructions* basis —
//    the paper is explicit that "an instruction cache miss in clock cycle
//    x is not a meaningful information" (§5);
//  * cascaded pairs arm a high-resolution group only while a low-
//    resolution guard rate crosses its threshold.
#pragma once

#include <string>
#include <vector>

#include "mcds/counters.hpp"
#include "mcds/mcds.hpp"

namespace audo::profiling {

/// IPC measurement: instructions per `resolution` clock cycles.
mcds::CounterGroupConfig ipc_group(u32 resolution, bool pcp = false);

/// Cache behaviour per `resolution` executed instructions:
/// icache access/miss, dcache access/miss.
mcds::CounterGroupConfig cache_rate_group(u32 resolution);

/// CPU data-access mix per `resolution` executed instructions:
/// any access, flash, SRAM (LMU), scratchpad, peripheral.
mcds::CounterGroupConfig access_rate_group(u32 resolution);

/// System events per `resolution` executed instructions:
/// interrupt entries, taken discontinuities, stall cycles.
mcds::CounterGroupConfig system_rate_group(u32 resolution);

/// Chip-level events per `resolution` clock cycles: flash buffer
/// activity, flash port conflicts, bus contention, DMA transfers.
mcds::CounterGroupConfig chip_event_group(u32 resolution);

/// Attributed TC stall root causes per `resolution` clock cycles — one
/// counter per tc.stall.root.* event (frontend, exec, the flash service
/// classes, bus arbitration/busy, wfi). The rate-series counterpart of
/// the CPI stacks; not part of standard_groups() so the default trace
/// stream is unchanged (SessionOptions::cpi_stacks adds it).
mcds::CounterGroupConfig stall_root_group(u32 resolution);

/// The full §5 parameter set, measured in parallel.
std::vector<mcds::CounterGroupConfig> standard_groups(u32 resolution);

/// A cascaded IPC measurement: the low-resolution guard group is always
/// armed; when its IPC sample falls below `ipc_threshold_percent` (in
/// retired instructions per 100 cycles), trigger actions arm the
/// high-resolution group — and disarm it when IPC recovers.
///
/// Returns the groups in order {guard, detail} and appends the arm/disarm
/// actions to `actions`. Group indices are `base_index` and
/// `base_index + 1` in the final McdsConfig; `flag_index` is the global
/// threshold-flag slot the guard counter will own (the number of
/// threshold-carrying counters in groups registered before these — 0 when
/// the cascade comes first).
std::vector<mcds::CounterGroupConfig> cascaded_ipc_groups(
    u32 low_resolution, u32 high_resolution, u32 ipc_threshold_percent,
    unsigned base_index, unsigned flag_index,
    std::vector<mcds::ActionBinding>& actions);

/// Human-readable name for counter `c` of group `g` ("ipc/tc.retired").
std::string series_name(const mcds::CounterGroupConfig& group, usize counter);

}  // namespace audo::profiling
