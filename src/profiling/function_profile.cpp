#include "profiling/function_profile.hpp"

#include <algorithm>
#include <cstdio>

namespace audo::profiling {

void SystemProfiler::consume(const std::vector<mcds::TraceMessage>& messages,
                             mcds::MsgSource core) {
  using mcds::MsgKind;
  bool have_pc = false;
  Addr pc = 0;        // start of the currently executing sequential span
  Cycle last_cycle = 0;
  bool have_cycle = false;

  auto attribute = [&](u32 instr_count, Cycle msg_cycle) {
    // Instructions since the previous message ran linearly from `pc`.
    if (have_pc && instr_count > 0) {
      // Split the instruction span over functions (spans can cross
      // function boundaries by fall-through).
      Addr p = pc;
      u32 remaining = instr_count;
      const Cycle delta_cycles =
          have_cycle && msg_cycle > last_cycle ? msg_cycle - last_cycle : 0;
      // Cycle attribution: proportional to instructions per function
      // within the span (the span is the finest the flow trace resolves).
      while (remaining > 0) {
        const std::string& fn = symbols_.function_at(p);
        // Count contiguous instructions within the same function.
        u32 run = 0;
        while (run < remaining &&
               symbols_.function_at(p + run * 4) == fn) {
          ++run;
        }
        if (run == 0) run = remaining;  // unmapped: attribute as one block
        FunctionStats& fs = functions_[fn];
        fs.name = fn;
        fs.instructions += run;
        fs.cycles += delta_cycles * run / instr_count;
        p += run * 4;
        remaining -= run;
      }
      total_cycles_ += delta_cycles;
    }
  };

  for (const mcds::TraceMessage& msg : messages) {
    if (msg.source != core) continue;
    switch (msg.kind) {
      case MsgKind::kSync:
        attribute(msg.instr_count, msg.cycle);
        pc = msg.pc;
        have_pc = msg.pc != 0;
        last_cycle = msg.cycle;
        have_cycle = true;
        break;
      case MsgKind::kFlow: {
        attribute(msg.instr_count, msg.cycle);
        pc = msg.pc;  // discontinuity target
        have_pc = true;
        last_cycle = msg.cycle;
        have_cycle = true;
        const std::string& fn = symbols_.function_at(msg.pc);
        // A jump landing on a function's first instruction is an entry.
        for (const auto& range : symbols_.functions()) {
          if (range.begin == msg.pc) {
            FunctionStats& fs = functions_[fn];
            fs.name = fn;
            fs.entries++;
            break;
          }
        }
        break;
      }
      case MsgKind::kTick:
        attribute(msg.instr_count, msg.cycle);
        if (have_pc) pc += msg.instr_count * 4;
        last_cycle = msg.cycle;
        have_cycle = true;
        break;
      case MsgKind::kData: {
        const std::string& sym = symbols_.data_symbol_at(msg.addr);
        DataObjectStats& ds = data_[sym];
        ds.name = sym;
        if (msg.write) ds.writes++; else ds.reads++;
        break;
      }
      case MsgKind::kOverflow:
        have_pc = false;  // lost context until the next sync
        have_cycle = false;
        break;
      default:
        break;
    }
  }
}

std::vector<FunctionStats> SystemProfiler::function_profile() const {
  std::vector<FunctionStats> out;
  out.reserve(functions_.size());
  for (const auto& [name, stats] : functions_) out.push_back(stats);
  for (FunctionStats& f : out) {
    f.cycles_percent = total_cycles_ == 0
                           ? 0.0
                           : 100.0 * static_cast<double>(f.cycles) /
                                 static_cast<double>(total_cycles_);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.cycles > b.cycles;
  });
  return out;
}

std::vector<DataObjectStats> SystemProfiler::data_profile() const {
  std::vector<DataObjectStats> out;
  out.reserve(data_.size());
  for (const auto& [name, stats] : data_) out.push_back(stats);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.total() > b.total();
  });
  return out;
}

std::string SystemProfiler::format_function_profile(usize top_n) const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%-24s %10s %10s %8s %7s %6s\n",
                "function", "cycles", "instrs", "entries", "cyc%", "IPC");
  out += line;
  usize n = 0;
  for (const FunctionStats& f : function_profile()) {
    if (n++ >= top_n) break;
    std::snprintf(line, sizeof line,
                  "%-24s %10llu %10llu %8llu %6.1f%% %6.2f\n",
                  f.name.c_str(), static_cast<unsigned long long>(f.cycles),
                  static_cast<unsigned long long>(f.instructions),
                  static_cast<unsigned long long>(f.entries),
                  f.cycles_percent, f.ipc());
    out += line;
  }
  return out;
}

std::string SystemProfiler::format_data_profile(usize top_n) const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%-24s %10s %10s %10s\n", "data object",
                "reads", "writes", "total");
  out += line;
  usize n = 0;
  for (const DataObjectStats& d : data_profile()) {
    if (n++ >= top_n) break;
    std::snprintf(line, sizeof line, "%-24s %10llu %10llu %10llu\n",
                  d.name.c_str(), static_cast<unsigned long long>(d.reads),
                  static_cast<unsigned long long>(d.writes),
                  static_cast<unsigned long long>(d.total()));
    out += line;
  }
  return out;
}

}  // namespace audo::profiling
