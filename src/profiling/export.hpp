// Tool-side export of profiling results: CSV for the rate series (one
// row per sample window, one column per parameter — the format external
// calibration/measurement tools ingest) and a flat event list for the
// decoded message stream.
#pragma once

#include <string>

#include "mcds/trace.hpp"
#include "profiling/timeseries.hpp"

namespace audo::profiling {

/// All series merged on their sample windows: `cycle,name1,name2,...`.
/// Series sampled on different cadences are forward-filled to the union
/// of sample points (empty cell when a series has no sample yet).
std::string series_to_csv(const std::vector<RateSeries>& series);

/// One decoded message per line:
/// `cycle,source,kind,field1=value1,...` — greppable raw-event export.
std::string messages_to_csv(const std::vector<mcds::TraceMessage>& messages);

}  // namespace audo::profiling
