// Tool-side export of profiling results: CSV for the rate series (one
// row per sample window, one column per parameter — the format external
// calibration/measurement tools ingest) and a flat event list for the
// decoded message stream.
#pragma once

#include <string>

#include "bus/crossbar.hpp"
#include "mcds/trace.hpp"
#include "profiling/timeseries.hpp"

namespace audo::profiling {

/// All series merged on their sample windows: `cycle,name1,name2,...`.
/// Series sampled on different cadences are forward-filled to the union
/// of sample points (empty cell when a series has no sample yet).
std::string series_to_csv(const std::vector<RateSeries>& series);

/// One decoded message per line:
/// `cycle,source,kind,field1=value1,...` — greppable raw-event export.
std::string messages_to_csv(const std::vector<mcds::TraceMessage>& messages);

/// Master×slave interference matrix (bus::Crossbar::interference) as a
/// fixed-width table: one section per contended slave, one row per
/// (waiter, holder) pair with nonzero blocked cycles. Empty matrix →
/// a single "no contention" line.
std::string interference_to_text(const bus::Crossbar& fabric);

/// Same matrix, machine-readable: `slave,waiter,holder,blocked_cycles`
/// rows for every nonzero cell.
std::string interference_to_csv(const bus::Crossbar& fabric);

}  // namespace audo::profiling
