#include "profiling/spec.hpp"

namespace audo::profiling {

using mcds::CounterGroupConfig;
using mcds::EventId;
using mcds::RateCounterConfig;

mcds::CounterGroupConfig ipc_group(u32 resolution, bool pcp) {
  CounterGroupConfig g;
  g.name = pcp ? "pcp_ipc" : "ipc";
  g.basis = EventId::kCycles;
  g.resolution = resolution;
  g.counters = {
      RateCounterConfig{pcp ? EventId::kPcpRetired : EventId::kTcRetired, {}, {}},
  };
  return g;
}

mcds::CounterGroupConfig cache_rate_group(u32 resolution) {
  CounterGroupConfig g;
  g.name = "cache";
  g.basis = EventId::kTcRetired;
  g.resolution = resolution;
  g.counters = {
      RateCounterConfig{EventId::kTcICacheAccess, {}, {}},
      RateCounterConfig{EventId::kTcICacheMiss, {}, {}},
      RateCounterConfig{EventId::kTcDCacheAccess, {}, {}},
      RateCounterConfig{EventId::kTcDCacheMiss, {}, {}},
  };
  return g;
}

mcds::CounterGroupConfig access_rate_group(u32 resolution) {
  CounterGroupConfig g;
  g.name = "access";
  g.basis = EventId::kTcRetired;
  g.resolution = resolution;
  g.counters = {
      RateCounterConfig{EventId::kTcDataAccess, {}, {}},
      RateCounterConfig{EventId::kTcFlashDataAccess, {}, {}},
      RateCounterConfig{EventId::kTcSramDataAccess, {}, {}},
      RateCounterConfig{EventId::kTcDsprAccess, {}, {}},
      RateCounterConfig{EventId::kTcPeriphDataAccess, {}, {}},
  };
  return g;
}

mcds::CounterGroupConfig system_rate_group(u32 resolution) {
  CounterGroupConfig g;
  g.name = "system";
  g.basis = EventId::kTcRetired;
  g.resolution = resolution;
  g.counters = {
      RateCounterConfig{EventId::kTcIrqEntry, {}, {}},
      RateCounterConfig{EventId::kTcDiscontinuity, {}, {}},
      RateCounterConfig{EventId::kTcStalled, {}, {}},
      RateCounterConfig{EventId::kTcStallIFetch, {}, {}},
      RateCounterConfig{EventId::kTcStallLoadUse, {}, {}},
  };
  return g;
}

mcds::CounterGroupConfig chip_event_group(u32 resolution) {
  CounterGroupConfig g;
  g.name = "chip";
  g.basis = EventId::kCycles;
  g.resolution = resolution;
  g.counters = {
      RateCounterConfig{EventId::kFlashCodeAccess, {}, {}},
      RateCounterConfig{EventId::kFlashCodeBufferHit, {}, {}},
      RateCounterConfig{EventId::kFlashDataPortAccess, {}, {}},
      RateCounterConfig{EventId::kFlashDataBufferHit, {}, {}},
      RateCounterConfig{EventId::kFlashPortConflict, {}, {}},
      RateCounterConfig{EventId::kBusContention, {}, {}},
      RateCounterConfig{EventId::kDmaTransfer, {}, {}},
  };
  return g;
}

mcds::CounterGroupConfig stall_root_group(u32 resolution) {
  CounterGroupConfig g;
  g.name = "stall";
  g.basis = EventId::kCycles;
  g.resolution = resolution;
  g.counters = {
      RateCounterConfig{EventId::kTcStallRootFrontend, {}, {}},
      RateCounterConfig{EventId::kTcStallRootExec, {}, {}},
      RateCounterConfig{EventId::kTcStallRootFlashBuffer, {}, {}},
      RateCounterConfig{EventId::kTcStallRootFlashRead, {}, {}},
      RateCounterConfig{EventId::kTcStallRootFlashConflict, {}, {}},
      RateCounterConfig{EventId::kTcStallRootBusArb, {}, {}},
      RateCounterConfig{EventId::kTcStallRootBusBusy, {}, {}},
      RateCounterConfig{EventId::kTcStallRootWfi, {}, {}},
  };
  return g;
}

std::vector<mcds::CounterGroupConfig> standard_groups(u32 resolution) {
  return {
      ipc_group(resolution),
      cache_rate_group(resolution),
      access_rate_group(resolution),
      system_rate_group(resolution),
      chip_event_group(resolution),
  };
}

std::vector<mcds::CounterGroupConfig> cascaded_ipc_groups(
    u32 low_resolution, u32 high_resolution, u32 ipc_threshold_percent,
    unsigned base_index, unsigned flag_index,
    std::vector<mcds::ActionBinding>& actions) {
  CounterGroupConfig guard;
  guard.name = "ipc_guard";
  guard.basis = EventId::kCycles;
  guard.resolution = low_resolution;
  // Threshold in retired instructions per low-resolution window.
  const u32 threshold =
      static_cast<u32>(static_cast<u64>(low_resolution) *
                       ipc_threshold_percent / 100u);
  guard.counters = {RateCounterConfig{
      EventId::kTcRetired,
      mcds::Threshold{mcds::Threshold::Dir::kBelow, threshold}, {}}};

  CounterGroupConfig detail;
  detail.name = "ipc_detail";
  detail.basis = EventId::kCycles;
  detail.resolution = high_resolution;
  detail.armed_at_start = false;
  detail.counters = {
      RateCounterConfig{EventId::kTcRetired, {}, {}},
      RateCounterConfig{EventId::kTcICacheMiss, {}, {}},
      RateCounterConfig{EventId::kTcDCacheMiss, {}, {}},
      RateCounterConfig{EventId::kTcStallIFetch, {}, {}},
      RateCounterConfig{EventId::kTcStallLoadUse, {}, {}},
  };

  actions.push_back(mcds::ActionBinding{
      mcds::Equation::counter_flag(flag_index),
      mcds::TriggerAction::kArmGroup, base_index + 1});
  actions.push_back(mcds::ActionBinding{
      mcds::Equation::counter_flag(flag_index, /*negate=*/true),
      mcds::TriggerAction::kDisarmGroup, base_index + 1});

  return {guard, detail};
}

std::string series_name(const mcds::CounterGroupConfig& group, usize counter) {
  return group.name + "/" +
         std::string(mcds::event_name(group.counters.at(counter).event));
}

}  // namespace audo::profiling
