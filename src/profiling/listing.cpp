#include "profiling/listing.hpp"

#include <cstdio>

#include "isa/isa.hpp"

namespace audo::profiling {
namespace {

/// Fetch a code word from the program image (returns false outside it).
bool image_word(const isa::Program& program, Addr addr, u32* word) {
  for (const isa::Section& sec : program.sections()) {
    if (addr >= sec.base && addr + 4 <= sec.end()) {
      const usize offset = addr - sec.base;
      u32 w = 0;
      for (int i = 0; i < 4; ++i) {
        w |= u32{sec.bytes[offset + i]} << (8 * i);
      }
      *word = w;
      return true;
    }
  }
  return false;
}

}  // namespace

std::string execution_listing(const isa::Program& program,
                              const std::vector<mcds::TraceMessage>& messages,
                              const ListingOptions& options) {
  const isa::SymbolMap symbols(program);
  std::string out;
  char line[160];
  usize lines = 0;
  bool have_pc = false;
  Addr pc = 0;

  auto emit_span = [&](u32 count, Cycle at) {
    for (u32 i = 0; i < count && lines < options.max_lines; ++i) {
      u32 word = 0;
      if (!image_word(program, pc, &word)) {
        std::snprintf(line, sizeof line,
                      "  [~%-9llu] 0x%08X  <outside program image>\n",
                      static_cast<unsigned long long>(at), pc);
        out += line;
        ++lines;
        return;
      }
      const auto decoded = isa::decode(word);
      std::snprintf(line, sizeof line, "  [~%-9llu] 0x%08X  %-28s ; in %s\n",
                    static_cast<unsigned long long>(at), pc,
                    decoded.is_ok()
                        ? isa::format_instr(decoded.value()).c_str()
                        : "<bad encoding>",
                    symbols.function_at(pc).c_str());
      out += line;
      ++lines;
      pc += isa::kInstrBytes;
    }
  };

  for (const mcds::TraceMessage& m : messages) {
    if (lines >= options.max_lines) break;
    if (m.source != options.core) continue;
    if (m.cycle < options.from_cycle) {
      // Still track the flow so the listing can start mid-trace.
      if (m.kind == mcds::MsgKind::kSync || m.kind == mcds::MsgKind::kFlow) {
        pc = m.pc;
        have_pc = m.pc != 0;
      }
      continue;
    }
    switch (m.kind) {
      case mcds::MsgKind::kSync:
        if (have_pc) emit_span(m.instr_count, m.cycle);
        pc = m.pc;
        have_pc = m.pc != 0;
        break;
      case mcds::MsgKind::kFlow:
        if (have_pc) emit_span(m.instr_count, m.cycle);
        std::snprintf(line, sizeof line, "  [~%-9llu] ---------- branch/irq -> 0x%08X (%s)\n",
                      static_cast<unsigned long long>(m.cycle), m.pc,
                      symbols.function_at(m.pc).c_str());
        out += line;
        ++lines;
        pc = m.pc;
        have_pc = true;
        break;
      case mcds::MsgKind::kTick:
        if (have_pc) emit_span(m.instr_count, m.cycle);
        break;
      case mcds::MsgKind::kOverflow:
        out += "  ---------- trace gap (messages lost) ----------\n";
        ++lines;
        have_pc = false;
        break;
      default:
        break;
    }
  }
  return out;
}

}  // namespace audo::profiling
