// Function-level system profiling from program-flow and data trace —
// "the analysis of the application software on function level to find out
// where in the system the performance is consumed and how/why" (§5).
//
// Reconstruction: between two flow/sync messages the core executed
// `instr_count` sequential instructions starting at the previous
// discontinuity target; cycles between message timestamps are attributed
// to the same span. Data messages are attributed to data symbols, giving
// the scratchpad-mapping candidate list.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "isa/program.hpp"
#include "mcds/trace.hpp"

namespace audo::profiling {

struct FunctionStats {
  std::string name;
  u64 instructions = 0;
  u64 cycles = 0;
  u64 entries = 0;  // discontinuity targets landing on the function start
  double cycles_percent = 0.0;
  double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }
};

struct DataObjectStats {
  std::string name;
  u64 reads = 0;
  u64 writes = 0;
  u64 total() const { return reads + writes; }
};

class SystemProfiler {
 public:
  explicit SystemProfiler(isa::SymbolMap symbols)
      : symbols_(std::move(symbols)) {}

  /// Consume the flow/sync/data messages of `core` from a decoded stream.
  void consume(const std::vector<mcds::TraceMessage>& messages,
               mcds::MsgSource core = mcds::MsgSource::kTcCore);

  /// Hot-function list, sorted by cycles descending.
  std::vector<FunctionStats> function_profile() const;

  /// Hot data objects, sorted by access count descending — the §5
  /// "data structures/variables that should be mapped to scratchpad".
  std::vector<DataObjectStats> data_profile() const;

  std::string format_function_profile(usize top_n = 20) const;
  std::string format_data_profile(usize top_n = 20) const;

 private:
  isa::SymbolMap symbols_;
  std::map<std::string, FunctionStats> functions_;
  std::map<std::string, DataObjectStats> data_;
  u64 total_cycles_ = 0;
};

}  // namespace audo::profiling
