// Trace-derived execution DAG: task/ISR activations and the causal
// edges between them, built live from the per-cycle observation frame.
//
// PR 5's stall attribution says *why* each cycle stalled; this builder
// adds the structure above the cycle level: which task or ISR activation
// the cycle belongs to, which activation delayed which (preemption,
// IRQ dispatch, cross-master contention), and where the end-to-end
// critical path runs. On top of the DAG it computes per-activation
// slack and one deterministic bottleneck label per task — the output
// contract the guarded auto-optimizer (ROADMAP item 2) consumes.
//
// Like the CpiStackBuilder, the DAG rides the Soc frame-observer hook:
// segmentation state advances only on published frames, fast-forwarded
// idle windows arrive through skip_idle() and charge the open idle node
// in bulk, so the result is bit-identical with fast-forward on or off.
// Conservation holds by construction: every present-core cycle is
// charged to exactly one node, so per core Σ(node cycles) equals
// cpu::Cpu::cycles() over the observed window.
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "isa/program.hpp"
#include "mcds/observation.hpp"
#include "soc/soc.hpp"

namespace audo::telemetry {
class Timeline;
class MetricsRegistry;
struct RunReport;
}

namespace audo::profiling {

enum class DagNodeKind : u8 {
  kTask,  // task-body activation (base context or post-ISR resume)
  kIsr,   // ISR or trap-handler activation (irq/trap entry .. RFE)
  kIdle,  // WFI/halt window
};
const char* to_string(DagNodeKind kind);

enum class DagEdgeKind : u8 {
  kPreempt,     // interrupted activation -> the handler that preempted it
  kResume,      // handler -> the activation resumed after its RFE
  kDispatch,    // activation running at SRC raise -> handler (weight =
                // dispatch latency in cycles)
  kContention,  // holder's activation -> waiter's activation (weight =
                // cycles the waiter lost arbitration to the holder)
};
const char* to_string(DagEdgeKind kind);

/// One deterministic label per task from the fixed rule table over its
/// aggregated CPI-stack composition (see DESIGN.md, "Execution DAG &
/// critical path" — first matching rule wins).
enum class BottleneckLabel : u8 {
  kCpuBound,
  kFlashBound,
  kBusContention,
  kPreemptionDelayed,
  kIrqLatency,
  kIdle,
};
const char* to_string(BottleneckLabel label);

/// Core index of a DAG node. Synthetic nodes stand for non-core bus
/// masters (DMA, tool access) so contention edges always have both
/// endpoints; they carry zero cycles and stay off the critical path.
inline constexpr u8 kDagCoreTc = 0;
inline constexpr u8 kDagCorePcp = 1;
inline constexpr u8 kDagCoreSynthetic = 2;

inline constexpr u32 kDagNoNode = ~u32{0};

/// One activation: a maximal window of cycles a core spent in one task
/// body, ISR body or idle park. `cycles` always equals end-start+1 for
/// core nodes (the window is charged contiguously).
struct DagNode {
  u32 id = 0;
  u8 core = kDagCoreTc;
  DagNodeKind kind = DagNodeKind::kTask;
  std::string task;  // resolved task/ISR name ("main", "isr_tooth", ...)
  u8 prio = 0;       // delivered priority (ISR nodes; 0 otherwise)
  Cycle start = 0;
  Cycle end = 0;
  u64 cycles = 0;
  u64 instructions = 0;
  u64 issue_cycles = 0;  // cycles with retired > 0 (kNone bucket)
  /// Stall cycles per mcds::StallRootCause (index kNone stays 0).
  std::array<u64, mcds::kNumStallRootCauses> stall{};
  /// SRC raise -> handler entry, cycles (ISR nodes with a matched raise).
  u64 dispatch_latency = 0;
  /// How long this activation sat suspended under a preempting handler
  /// before its window opened (resume nodes).
  u64 preempted_cycles = 0;
};

struct DagEdge {
  u32 from = 0;
  u32 to = 0;
  DagEdgeKind kind = DagEdgeKind::kPreempt;
  u64 weight = 0;  // cycles (latency / blocked time); 0 for pure ordering
};

/// Per-task aggregate over all of the task's activations.
struct DagTaskSummary {
  std::string task;
  DagNodeKind kind = DagNodeKind::kTask;
  u64 activations = 0;
  u64 cycles = 0;
  u64 instructions = 0;
  u64 issue_cycles = 0;
  std::array<u64, mcds::kNumStallRootCauses> stall{};
  u64 preempted_cycles = 0;
  u64 dispatch_latency = 0;
  /// min over the task's activations of (critical_path - longest path
  /// through the activation): how many cycles the task could grow before
  /// entering the critical path. 0 for tasks on the critical path.
  u64 slack = 0;
  BottleneckLabel label = BottleneckLabel::kCpuBound;
};

/// The finished analysis (computed lazily; cached until more cycles are
/// observed). Nodes/edges are in creation order — deterministic for a
/// given workload regardless of fast-forward mode or host parallelism.
struct DagAnalysis {
  std::vector<DagNode> nodes;
  std::vector<DagEdge> edges;
  Cycle total_cycles = 0;  // last observed cycle
  /// Cycle weight of the heaviest causal chain of non-idle activations;
  /// <= total_cycles by construction (each link's forward weight is
  /// capped at its end cycle), equal only when the DAG is a chain.
  u64 critical_path_cycles = 0;
  std::vector<u32> critical_path;  // node ids, source -> sink
  /// Per-node slack, indexed by node id (critical-path nodes have 0;
  /// idle/synthetic nodes get the full critical path as slack).
  std::vector<u64> node_slack;
  std::vector<DagTaskSummary> tasks;  // sorted by cycles desc, name asc
  /// FNV-1a over every node and edge field — the bit-identity fingerprint
  /// (fast-forward on/off, any --jobs N must agree).
  u64 hash = 0;

  const DagTaskSummary* find_task(std::string_view name) const;
};

class ExecutionDag : public soc::FrameObserver {
 public:
  explicit ExecutionDag(isa::SymbolMap symbols);

  void observe(const mcds::ObservationFrame& frame) override;
  void skip_idle(const mcds::ObservationFrame& idle, u64 n) override;

  /// Total cycles charged to `core`'s nodes so far; equals the core's
  /// cpu::Cpu::cycles() when the observer was attached before reset.
  u64 charged_cycles(u8 core) const { return state_[core].charged; }

  /// Lazily computed analysis over everything observed so far.
  const DagAnalysis& analysis() const;

  /// Resolved task/ISR name active on `core` at `cycle` ("" when the
  /// cycle is outside every node) — fault-campaign attribution.
  std::string task_at(u8 core, Cycle cycle) const;

  /// Human-readable summary: per-task table plus the critical path head.
  std::string format(usize top_n = 16) const;
  /// Node table, one row per activation (stable across reruns).
  std::string to_csv() const;
  /// Graphviz dot: nodes grouped per task rank, critical path in bold.
  std::string to_dot(usize max_nodes = 400) const;

  /// Per-task timeline tracks ("dag tc/<task>") with one slice per
  /// activation and flow arrows along preempt/resume/dispatch edges.
  void emit_timeline(telemetry::Timeline& timeline) const;

  /// Gauges under `dag`: nodes, edges, critical_path_cycles, and
  /// slack.<task> per task. Gauge values are read lazily at collect()
  /// time, but the slack gauge *set* is the task list known when this
  /// is called — register after the run.
  void register_metrics(telemetry::MetricsRegistry& registry) const;

  /// Fill RunReport::dag: summary counts, per-task entries, and the
  /// first `path_cap` critical-path activations (full length recorded in
  /// critical_path_nodes).
  void fill_report(telemetry::RunReport& report, usize path_cap = 64) const;

 private:
  /// One activation level on a core's context stack. `node` is the open
  /// window (kDagNoNode while suspended under a handler or an idle park);
  /// reopening lazily starts the resume node.
  struct Context {
    u32 node = kDagNoNode;
    std::string task;  // pinned on the first named retire
    u8 prio = 0;
    bool is_isr = false;
    bool preempted = false;      // suspended by irq/trap (not a WFI park)
    Cycle suspended_at = 0;
    u32 resume_from = kDagNoNode;  // handler node that will resume us
  };

  struct CoreState {
    std::vector<Context> stack;  // bottom = base task
    u32 idle_node = kDagNoNode;
    /// Earliest un-dispatched SRC raise per priority (dispatch latency).
    std::map<u8, Cycle> pending_raise;
    u64 charged = 0;
    std::vector<u32> nodes;  // this core's node ids, by start cycle
  };

  u32 open_node(u8 core, DagNodeKind kind, std::string task, u8 prio,
                Cycle start);
  void add_edge(u32 from, u32 to, DagEdgeKind kind, u64 weight);
  /// Pre-charge transitions: handler entry (preempt/dispatch edges),
  /// idle enter/exit.
  void transition(u8 core, const mcds::CoreObservation& obs, Cycle first);
  /// The node the next cycle charges to, opening lazy resume/base nodes.
  u32 current_node(u8 core, Cycle first);
  void charge(u8 core, const mcds::CoreObservation& obs, Cycle first, u64 n);
  /// Post-charge transition: RFE closes the handler, pops the context.
  void retire_isr(u8 core, const mcds::CoreObservation& obs);
  u32 synthetic_node(bus::MasterId master, Cycle at);
  void contention_edge(u8 core, const mcds::CoreObservation& obs, u64 n);
  void compute(DagAnalysis& a) const;

  isa::SymbolMap symbols_;
  std::vector<DagNode> nodes_;
  std::vector<DagEdge> edges_;
  std::map<std::tuple<u32, u32, u8>, usize> edge_index_;
  std::array<CoreState, 2> state_;
  std::array<u32, bus::kNumMasters> synthetic_{};  // per-master node id
  Cycle last_cycle_ = 0;

  mutable DagAnalysis cache_;
  mutable u64 cache_stamp_ = ~u64{0};
};

}  // namespace audo::profiling
