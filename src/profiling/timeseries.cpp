#include "profiling/timeseries.hpp"

#include <algorithm>
#include <cstdio>

#include "profiling/spec.hpp"

namespace audo::profiling {

double RateSeries::mean_rate() const {
  const u64 basis = total_basis();
  return basis == 0 ? 0.0
                    : static_cast<double>(total_count()) /
                          static_cast<double>(basis);
}

double RateSeries::min_rate() const {
  double best = points.empty() ? 0.0 : points.front().rate();
  for (const SeriesPoint& p : points) best = std::min(best, p.rate());
  return best;
}

double RateSeries::max_rate() const {
  double best = 0.0;
  for (const SeriesPoint& p : points) best = std::max(best, p.rate());
  return best;
}

u64 RateSeries::total_count() const {
  u64 sum = 0;
  for (const SeriesPoint& p : points) sum += p.count;
  return sum;
}

u64 RateSeries::total_basis() const {
  u64 sum = 0;
  for (const SeriesPoint& p : points) sum += p.basis;
  return sum;
}

std::vector<RateSeries> extract_series(
    const std::vector<mcds::CounterGroupConfig>& groups,
    const std::vector<mcds::TraceMessage>& messages) {
  std::vector<RateSeries> series;
  std::vector<usize> first_of_group(groups.size(), 0);
  for (usize g = 0; g < groups.size(); ++g) {
    first_of_group[g] = series.size();
    for (usize c = 0; c < groups[g].counters.size(); ++c) {
      RateSeries s;
      s.name = series_name(groups[g], c);
      s.group = static_cast<unsigned>(g);
      s.counter = static_cast<unsigned>(c);
      series.push_back(std::move(s));
    }
  }
  for (const mcds::TraceMessage& msg : messages) {
    if (msg.kind != mcds::MsgKind::kRate) continue;
    if (msg.group >= groups.size()) continue;
    const usize base = first_of_group[msg.group];
    for (usize c = 0; c < msg.counts.size() &&
                      c < groups[msg.group].counters.size();
         ++c) {
      series[base + c].points.push_back(
          SeriesPoint{msg.cycle, msg.counts[c], msg.basis});
    }
  }
  return series;
}

std::vector<double> bucketize(const RateSeries& series, usize buckets) {
  std::vector<double> out(buckets, 0.0);
  std::vector<unsigned> counts(buckets, 0);
  if (series.points.empty() || buckets == 0) return out;
  const Cycle span = series.points.back().cycle + 1;
  for (const SeriesPoint& p : series.points) {
    usize b = static_cast<usize>(static_cast<double>(p.cycle) /
                                 static_cast<double>(span) *
                                 static_cast<double>(buckets));
    if (b >= buckets) b = buckets - 1;
    out[b] += p.rate();
    counts[b]++;
  }
  for (usize i = 0; i < buckets; ++i) {
    if (counts[i] > 0) out[i] /= counts[i];
  }
  return out;
}

std::string format_series_summary(const std::vector<RateSeries>& series) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%-28s %8s %10s %10s %10s %10s\n",
                "series", "samples", "mean", "min", "max", "events");
  out += line;
  for (const RateSeries& s : series) {
    std::snprintf(line, sizeof line,
                  "%-28s %8zu %10.4f %10.4f %10.4f %10llu\n", s.name.c_str(),
                  s.points.size(), s.mean_rate(), s.min_rate(), s.max_rate(),
                  static_cast<unsigned long long>(s.total_count()));
    out += line;
  }
  return out;
}

std::string sparkline(const RateSeries& series, usize buckets) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  if (series.points.empty() || buckets == 0) return "";
  const double lo = series.min_rate();
  const double hi = series.max_rate();
  const double span = hi - lo;
  std::string out;
  const usize per_bucket = std::max<usize>(1, series.points.size() / buckets);
  for (usize b = 0; b * per_bucket < series.points.size(); ++b) {
    double sum = 0;
    usize n = 0;
    for (usize i = b * per_bucket;
         i < std::min(series.points.size(), (b + 1) * per_bucket); ++i) {
      sum += series.points[i].rate();
      ++n;
    }
    const double v = n == 0 ? lo : sum / static_cast<double>(n);
    const double norm = span <= 0.0 ? 0.0 : (v - lo) / span;
    const usize level =
        std::min<usize>(7, static_cast<usize>(norm * 7.999));
    out += kLevels[level];
  }
  return out;
}

}  // namespace audo::profiling
