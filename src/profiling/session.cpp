#include "profiling/session.hpp"

namespace audo::profiling {
namespace {

mcds::McdsConfig build_mcds_config(const SessionOptions& options,
                                   std::vector<mcds::CounterGroupConfig>& groups) {
  groups.clear();
  if (options.standard_rates) {
    groups = standard_groups(options.resolution);
  }
  if (options.cpi_stacks) groups.push_back(stall_root_group(options.resolution));
  for (const auto& g : options.extra_groups) groups.push_back(g);

  mcds::McdsConfig config;
  config.program_trace = options.program_trace;
  config.data_trace = options.data_trace;
  config.irq_trace = options.irq_trace;
  config.cycle_accurate = options.cycle_accurate;
  config.sync_interval_cycles = options.sync_interval_cycles;
  config.comparators = options.comparators;
  config.actions = options.actions;
  config.fsm = options.fsm;
  config.data_qualifier = options.data_qualifier;
  config.counter_groups = groups;
  return config;
}

}  // namespace

ProfilingSession::ProfilingSession(const soc::SocConfig& soc_config,
                                   const SessionOptions& options)
    : cpi_stacks_(options.cpi_stacks),
      dag_enabled_(options.dag),
      ed_(soc_config, build_mcds_config(options, groups_), options.ed) {}

Status ProfilingSession::load(const isa::Program& program) {
  if (cpi_stacks_) {
    cpi_builder_ = std::make_unique<CpiStackBuilder>(isa::SymbolMap(program));
    ed_.soc().set_frame_observer(cpi_builder_.get());
  }
  if (dag_enabled_) {
    dag_ = std::make_unique<ExecutionDag>(isa::SymbolMap(program));
    ed_.soc().add_frame_observer(dag_.get());
  }
  return ed_.load(program);
}

SessionResult ProfilingSession::run(u64 max_cycles) {
  SessionResult result;
  ed_.run(max_cycles);
  // Cumulative since reset: a session may be advanced in slices through
  // device() (e.g. while the harness drives the environment).
  result.cycles = ed_.soc().cycle();
  result.tc_retired = ed_.soc().tc().retired();
  result.ipc = result.cycles == 0
                   ? 0.0
                   : static_cast<double>(result.tc_retired) /
                         static_cast<double>(result.cycles);

  result.trace_bytes = ed_.emem().total_pushed_bytes();
  result.trace_messages = ed_.emem().total_pushed_messages();
  result.dropped_messages = ed_.mcds().dropped_messages();
  result.bytes_per_kcycle =
      result.cycles == 0 ? 0.0
                         : 1000.0 * static_cast<double>(result.trace_bytes) /
                               static_cast<double>(result.cycles);

  result.tc_stall_totals = ed_.soc().tc_stall_totals();
  if (cpi_builder_ != nullptr) {
    result.cpi_stacks = cpi_builder_->stacks();
    result.cpi_total = cpi_builder_->total();
  }

  auto decoded = ed_.download_trace();
  if (decoded.is_ok()) {
    result.messages = std::move(decoded).value();
    result.series = extract_series(groups_, result.messages);
  }
  return result;
}

}  // namespace audo::profiling
