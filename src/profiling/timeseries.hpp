// Host-side reconstruction of rate time series from downloaded trace
// messages — the tool view of §5's "see all parameter values over the
// time line".
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "mcds/counters.hpp"
#include "mcds/trace.hpp"

namespace audo::profiling {

struct SeriesPoint {
  Cycle cycle = 0;   // sample emission cycle (end of its window)
  u32 count = 0;     // raw event count in the window
  u32 basis = 0;     // basis ticks covered by the window
  double rate() const {
    return basis == 0 ? 0.0 : static_cast<double>(count) / basis;
  }
};

struct RateSeries {
  std::string name;
  unsigned group = 0;
  unsigned counter = 0;
  std::vector<SeriesPoint> points;

  double mean_rate() const;
  double min_rate() const;
  double max_rate() const;
  u64 total_count() const;
  u64 total_basis() const;
};

/// Extract one aligned series per (group, counter) from a decoded message
/// stream. `groups` must be the CounterGroupConfig list the MCDS ran with.
std::vector<RateSeries> extract_series(
    const std::vector<mcds::CounterGroupConfig>& groups,
    const std::vector<mcds::TraceMessage>& messages);

/// Average the series into `buckets` equal time bins (tool-side
/// downsampling for tables/plots). Empty bins hold 0.
std::vector<double> bucketize(const RateSeries& series, usize buckets);

/// Render a compact fixed-width table of series statistics (harness and
/// example output).
std::string format_series_summary(const std::vector<RateSeries>& series);

/// Render one series as an ASCII sparkline over `buckets` time buckets
/// (min..max scaled), for quick visual inspection in examples.
std::string sparkline(const RateSeries& series, usize buckets = 60);

}  // namespace audo::profiling
