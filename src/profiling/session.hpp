// ProfilingSession: the user-facing harness of the Enhanced System
// Profiling methodology.
//
// Wraps an Emulation Device with a measurement specification, runs the
// target application, downloads the trace over the (bandwidth-limited)
// DAP model and reconstructs the parameter time series — the full §5
// workflow as one object.
#pragma once

#include <memory>
#include <optional>

#include "ed/emulation_device.hpp"
#include "profiling/cpi_stack.hpp"
#include "profiling/dag.hpp"
#include "profiling/spec.hpp"
#include "profiling/timeseries.hpp"

namespace audo::profiling {

struct SessionOptions {
  /// Basis ticks per rate sample (instructions for event-rate groups,
  /// cycles for IPC/chip groups).
  u32 resolution = 1000;
  /// Install the §5 standard parameter set (IPC + cache + access +
  /// system + chip groups).
  bool standard_rates = true;
  /// Extra groups appended after the standard ones.
  std::vector<mcds::CounterGroupConfig> extra_groups;

  bool program_trace = false;
  bool data_trace = false;
  bool irq_trace = false;
  bool cycle_accurate = false;
  u32 sync_interval_cycles = 4096;

  /// Build per-function CPI stacks from the per-cycle stall attribution
  /// and add the "stall" root-cause counter group to the MCDS spec. Off
  /// by default so the default trace stream is byte-identical to
  /// sessions predating stall attribution.
  bool cpi_stacks = false;

  /// Build the execution DAG (task/ISR activations, causal edges,
  /// critical path — see profiling/dag.hpp). Off by default; stacks with
  /// cpi_stacks via the SoC's frame-observer list.
  bool dag = false;

  std::vector<mcds::Comparator> comparators;
  std::vector<mcds::ActionBinding> actions;
  mcds::StateMachineConfig fsm;
  std::optional<unsigned> data_qualifier;

  ed::EdConfig ed;
};

struct SessionResult {
  u64 cycles = 0;
  u64 tc_retired = 0;
  double ipc = 0.0;

  std::vector<RateSeries> series;
  std::vector<mcds::TraceMessage> messages;

  u64 trace_bytes = 0;
  u64 trace_messages = 0;
  u64 dropped_messages = 0;
  /// Average trace bandwidth in bytes per thousand CPU cycles.
  double bytes_per_kcycle = 0.0;

  /// Per-function CPI stacks (SessionOptions::cpi_stacks; empty
  /// otherwise), sorted by cycles descending, plus their sum.
  std::vector<CpiStackEntry> cpi_stacks;
  CpiStackEntry cpi_total;
  /// Cumulative TC stall-attribution buckets (always filled).
  soc::StallTotals tc_stall_totals;

  const RateSeries* find_series(std::string_view name) const {
    for (const RateSeries& s : series) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }
};

class ProfilingSession {
 public:
  ProfilingSession(const soc::SocConfig& soc_config,
                   const SessionOptions& options);

  /// Loads the image; with SessionOptions::cpi_stacks this also builds
  /// the symbol map and attaches the CPI-stack builder to the SoC.
  Status load(const isa::Program& program);
  void reset(Addr tc_entry, Addr pcp_entry = 0) {
    ed_.reset(tc_entry, pcp_entry);
  }

  /// Run (until TC halt or max_cycles), download and decode.
  SessionResult run(u64 max_cycles);

  ed::EmulationDevice& device() { return ed_; }
  const std::vector<mcds::CounterGroupConfig>& groups() const {
    return groups_;
  }
  /// Attached CPI-stack builder (null unless cpi_stacks was set).
  const CpiStackBuilder* cpi_builder() const { return cpi_builder_.get(); }
  /// Attached execution-DAG builder (null unless dag was set).
  const ExecutionDag* dag() const { return dag_.get(); }

 private:
  bool cpi_stacks_ = false;
  bool dag_enabled_ = false;
  std::vector<mcds::CounterGroupConfig> groups_;
  ed::EmulationDevice ed_;
  std::unique_ptr<CpiStackBuilder> cpi_builder_;
  std::unique_ptr<ExecutionDag> dag_;
};

}  // namespace audo::profiling
