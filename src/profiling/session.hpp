// ProfilingSession: the user-facing harness of the Enhanced System
// Profiling methodology.
//
// Wraps an Emulation Device with a measurement specification, runs the
// target application, downloads the trace over the (bandwidth-limited)
// DAP model and reconstructs the parameter time series — the full §5
// workflow as one object.
#pragma once

#include <optional>

#include "ed/emulation_device.hpp"
#include "profiling/spec.hpp"
#include "profiling/timeseries.hpp"

namespace audo::profiling {

struct SessionOptions {
  /// Basis ticks per rate sample (instructions for event-rate groups,
  /// cycles for IPC/chip groups).
  u32 resolution = 1000;
  /// Install the §5 standard parameter set (IPC + cache + access +
  /// system + chip groups).
  bool standard_rates = true;
  /// Extra groups appended after the standard ones.
  std::vector<mcds::CounterGroupConfig> extra_groups;

  bool program_trace = false;
  bool data_trace = false;
  bool irq_trace = false;
  bool cycle_accurate = false;
  u32 sync_interval_cycles = 4096;

  std::vector<mcds::Comparator> comparators;
  std::vector<mcds::ActionBinding> actions;
  mcds::StateMachineConfig fsm;
  std::optional<unsigned> data_qualifier;

  ed::EdConfig ed;
};

struct SessionResult {
  u64 cycles = 0;
  u64 tc_retired = 0;
  double ipc = 0.0;

  std::vector<RateSeries> series;
  std::vector<mcds::TraceMessage> messages;

  u64 trace_bytes = 0;
  u64 trace_messages = 0;
  u64 dropped_messages = 0;
  /// Average trace bandwidth in bytes per thousand CPU cycles.
  double bytes_per_kcycle = 0.0;

  const RateSeries* find_series(std::string_view name) const {
    for (const RateSeries& s : series) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }
};

class ProfilingSession {
 public:
  ProfilingSession(const soc::SocConfig& soc_config,
                   const SessionOptions& options);

  Status load(const isa::Program& program) { return ed_.load(program); }
  void reset(Addr tc_entry, Addr pcp_entry = 0) {
    ed_.reset(tc_entry, pcp_entry);
  }

  /// Run (until TC halt or max_cycles), download and decode.
  SessionResult run(u64 max_cycles);

  ed::EmulationDevice& device() { return ed_; }
  const std::vector<mcds::CounterGroupConfig>& groups() const {
    return groups_;
  }

 private:
  std::vector<mcds::CounterGroupConfig> groups_;
  ed::EmulationDevice ed_;
};

}  // namespace audo::profiling
