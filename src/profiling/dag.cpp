#include "profiling/dag.hpp"

#include <algorithm>
#include <cstdio>

#include "common/bits.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/timeline.hpp"

namespace audo::profiling {

const char* to_string(DagNodeKind kind) {
  switch (kind) {
    case DagNodeKind::kTask: return "task";
    case DagNodeKind::kIsr: return "isr";
    case DagNodeKind::kIdle: return "idle";
  }
  return "?";
}

const char* to_string(DagEdgeKind kind) {
  switch (kind) {
    case DagEdgeKind::kPreempt: return "preempt";
    case DagEdgeKind::kResume: return "resume";
    case DagEdgeKind::kDispatch: return "dispatch";
    case DagEdgeKind::kContention: return "contention";
  }
  return "?";
}

const char* to_string(BottleneckLabel label) {
  switch (label) {
    case BottleneckLabel::kCpuBound: return "cpu_bound";
    case BottleneckLabel::kFlashBound: return "flash_bound";
    case BottleneckLabel::kBusContention: return "bus_contention";
    case BottleneckLabel::kPreemptionDelayed: return "preemption_delayed";
    case BottleneckLabel::kIrqLatency: return "irq_latency";
    case BottleneckLabel::kIdle: return "idle";
  }
  return "?";
}

const DagTaskSummary* DagAnalysis::find_task(std::string_view name) const {
  for (const DagTaskSummary& t : tasks) {
    if (t.task == name) return &t;
  }
  return nullptr;
}

ExecutionDag::ExecutionDag(isa::SymbolMap symbols)
    : symbols_(std::move(symbols)) {
  synthetic_.fill(kDagNoNode);
}

u32 ExecutionDag::open_node(u8 core, DagNodeKind kind, std::string task,
                            u8 prio, Cycle start) {
  const u32 id = static_cast<u32>(nodes_.size());
  DagNode node;
  node.id = id;
  node.core = core;
  node.kind = kind;
  node.task = std::move(task);
  node.prio = prio;
  node.start = start;
  node.end = start;
  nodes_.push_back(std::move(node));
  if (core < 2) state_[core].nodes.push_back(id);
  return id;
}

void ExecutionDag::add_edge(u32 from, u32 to, DagEdgeKind kind, u64 weight) {
  const auto key = std::make_tuple(from, to, static_cast<u8>(kind));
  const auto it = edge_index_.find(key);
  if (it != edge_index_.end()) {
    edges_[it->second].weight += weight;
    return;
  }
  edge_index_.emplace(key, edges_.size());
  edges_.push_back(DagEdge{from, to, kind, weight});
}

void ExecutionDag::transition(u8 core, const mcds::CoreObservation& obs,
                              Cycle first) {
  CoreState& s = state_[core];
  if (obs.irq_entry || obs.trap_entry) {
    // Handler entry: the open idle window or running activation ends at
    // first-1 (it was charged up to there); a running activation is
    // suspended and resumes as a fresh node after the RFE.
    u32 interrupted = kDagNoNode;
    if (s.idle_node != kDagNoNode) {
      s.idle_node = kDagNoNode;
    } else if (!s.stack.empty() && s.stack.back().node != kDagNoNode) {
      Context& top = s.stack.back();
      interrupted = top.node;
      top.node = kDagNoNode;
      top.preempted = true;
      top.suspended_at = first;
    }
    Context ctx;
    ctx.is_isr = true;
    ctx.prio = obs.irq_entry ? obs.irq_prio : 0;
    if (obs.trap_entry && !obs.irq_entry) {
      ctx.task = "trap@" + std::to_string(obs.trap_class);
    }
    ctx.node =
        open_node(core, DagNodeKind::kIsr, ctx.task, ctx.prio, first);
    if (obs.irq_entry) {
      const auto raise = s.pending_raise.find(obs.irq_prio);
      if (raise != s.pending_raise.end()) {
        const u64 latency = first - raise->second;
        nodes_[ctx.node].dispatch_latency = latency;
        if (interrupted != kDagNoNode && latency > 0) {
          add_edge(interrupted, ctx.node, DagEdgeKind::kDispatch, latency);
        }
        s.pending_raise.erase(raise);
      }
    }
    if (interrupted != kDagNoNode) {
      add_edge(interrupted, ctx.node, DagEdgeKind::kPreempt, 0);
    }
    s.stack.push_back(std::move(ctx));
    return;
  }
  const bool parked = obs.retired == 0 &&
                      (obs.stall == mcds::StallCause::kWfi ||
                       obs.stall == mcds::StallCause::kHalted);
  if (parked) {
    if (s.idle_node == kDagNoNode) {
      // WFI/halt park: a voluntary suspension, not a preemption — the
      // resumed node carries no preempted_cycles.
      if (!s.stack.empty() && s.stack.back().node != kDagNoNode) {
        Context& top = s.stack.back();
        top.node = kDagNoNode;
        top.preempted = false;
        top.suspended_at = first;
      }
      s.idle_node =
          open_node(core, DagNodeKind::kIdle, "idle", 0, first);
    }
  } else if (s.idle_node != kDagNoNode) {
    // Woke without a handler entry (robustness; WFI wakes go through
    // irq_entry). The context node reopens lazily on the next charge.
    s.idle_node = kDagNoNode;
  }
}

u32 ExecutionDag::current_node(u8 core, Cycle first) {
  CoreState& s = state_[core];
  if (s.idle_node != kDagNoNode) return s.idle_node;
  if (s.stack.empty()) {
    Context base;
    base.node = open_node(core, DagNodeKind::kTask, "", 0, first);
    s.stack.push_back(std::move(base));
    return s.stack.back().node;
  }
  Context& top = s.stack.back();
  if (top.node == kDagNoNode) {
    top.node = open_node(core, top.is_isr ? DagNodeKind::kIsr
                                          : DagNodeKind::kTask,
                         top.task, top.prio, first);
    DagNode& node = nodes_[top.node];
    if (top.preempted) node.preempted_cycles = first - top.suspended_at;
    if (top.resume_from != kDagNoNode) {
      add_edge(top.resume_from, top.node, DagEdgeKind::kResume,
               node.preempted_cycles);
      top.resume_from = kDagNoNode;
    }
    top.preempted = false;
  }
  return top.node;
}

void ExecutionDag::charge(u8 core, const mcds::CoreObservation& obs,
                          Cycle first, u64 n) {
  const u32 id = current_node(core, first);
  DagNode& node = nodes_[id];
  node.end = first + n - 1;
  node.cycles += n;
  node.instructions += static_cast<u64>(obs.retired) * n;
  if (obs.attr.root == mcds::StallRootCause::kNone) {
    node.issue_cycles += n;
  } else {
    node.stall[static_cast<unsigned>(obs.attr.root)] += n;
  }
  state_[core].charged += n;
  // Lazy naming: the vector stubs are unlabeled, so an activation is
  // named by its first retire inside a named function and the name is
  // pinned on the owning context for later resumes.
  if (obs.retired > 0 && node.task.empty()) {
    const std::string& fn = symbols_.function_at(obs.retire_pc);
    if (fn != "?") {
      node.task = fn;
      CoreState& s = state_[core];
      if (!s.stack.empty() && s.stack.back().node == id) {
        s.stack.back().task = fn;
      }
    }
  }
}

void ExecutionDag::retire_isr(u8 core, const mcds::CoreObservation& obs) {
  if (!obs.irq_exit) return;
  CoreState& s = state_[core];
  if (s.stack.empty() || !s.stack.back().is_isr) return;
  const u32 isr_node = s.stack.back().node;
  s.stack.pop_back();
  // The earliest pending handler wins the resume edge: when handlers
  // chain back-to-back before the preempted activation runs again, the
  // chain start is the causal resumer.
  if (!s.stack.empty() && isr_node != kDagNoNode &&
      s.stack.back().resume_from == kDagNoNode) {
    s.stack.back().resume_from = isr_node;
  }
}

u32 ExecutionDag::synthetic_node(bus::MasterId master, Cycle at) {
  u32& id = synthetic_[static_cast<unsigned>(master)];
  if (id == kDagNoNode) {
    id = open_node(kDagCoreSynthetic, DagNodeKind::kTask,
                   bus::to_string(master), 0, at);
  }
  if (nodes_[id].end < at) nodes_[id].end = at;
  return id;
}

void ExecutionDag::contention_edge(u8 core, const mcds::CoreObservation& obs,
                                   u64 n) {
  if (obs.attr.root != mcds::StallRootCause::kBusArbitration) return;
  const bus::MasterId holder_master = obs.attr.blocking_master;
  if (holder_master == bus::MasterId::kCount) return;
  const auto open_current = [this](u8 c) -> u32 {
    const CoreState& s = state_[c];
    if (s.idle_node != kDagNoNode) return s.idle_node;
    return s.stack.empty() ? kDagNoNode : s.stack.back().node;
  };
  u32 holder = kDagNoNode;
  switch (holder_master) {
    case bus::MasterId::kTcData:
    case bus::MasterId::kTcFetch:
      holder = open_current(kDagCoreTc);
      break;
    case bus::MasterId::kPcpData:
      holder = open_current(kDagCorePcp);
      break;
    default:
      holder = synthetic_node(holder_master, last_cycle_);
      break;
  }
  const u32 waiter = open_current(core);
  if (holder == kDagNoNode || waiter == kDagNoNode || holder == waiter) return;
  add_edge(holder, waiter, DagEdgeKind::kContention, n);
}

void ExecutionDag::observe(const mcds::ObservationFrame& frame) {
  last_cycle_ = frame.cycle;
  // Raises first: an entry in this same frame matches a raise published
  // in this same frame (dispatch latency 0).
  for (unsigned i = 0; i < frame.irq.count; ++i) {
    const mcds::IrqObservation::Raise& r = frame.irq.raised[i];
    if (r.target > kDagCorePcp) continue;  // DMA triggers have no core node
    state_[r.target].pending_raise.try_emplace(r.priority, frame.cycle);
  }
  if (frame.tc.present) {
    transition(kDagCoreTc, frame.tc, frame.cycle);
    charge(kDagCoreTc, frame.tc, frame.cycle, 1);
  }
  if (frame.pcp.present) {
    transition(kDagCorePcp, frame.pcp, frame.cycle);
    charge(kDagCorePcp, frame.pcp, frame.cycle, 1);
  }
  // Contention after both charges so each endpoint's node is open.
  if (frame.tc.present) contention_edge(kDagCoreTc, frame.tc, 1);
  if (frame.pcp.present) contention_edge(kDagCorePcp, frame.pcp, 1);
  if (frame.tc.present) retire_isr(kDagCoreTc, frame.tc);
  if (frame.pcp.present) retire_isr(kDagCorePcp, frame.pcp);
}

void ExecutionDag::skip_idle(const mcds::ObservationFrame& idle, u64 n) {
  // The idle frame's cycle is the last stepped cycle; the skipped window
  // is [cycle+1, cycle+n] — exactly what stepping would have charged.
  const Cycle first = idle.cycle + 1;
  if (idle.tc.present) {
    transition(kDagCoreTc, idle.tc, first);
    charge(kDagCoreTc, idle.tc, first, n);
  }
  if (idle.pcp.present) {
    transition(kDagCorePcp, idle.pcp, first);
    charge(kDagCorePcp, idle.pcp, first, n);
  }
  last_cycle_ = idle.cycle + n;
}

std::string ExecutionDag::task_at(u8 core, Cycle cycle) const {
  if (core >= 2) return "";
  const std::vector<u32>& ids = state_[core].nodes;
  const auto it = std::upper_bound(
      ids.begin(), ids.end(), cycle,
      [this](Cycle c, u32 id) { return c < nodes_[id].start; });
  if (it == ids.begin()) return "";
  const u32 id = *(it - 1);
  // Windows are contiguous per core, so the found node covers `cycle`
  // (or is the last one, for cycles at/after the end of observation).
  return analysis().nodes[id].task;
}

const DagAnalysis& ExecutionDag::analysis() const {
  const u64 stamp = state_[0].charged + state_[1].charged;
  if (cache_stamp_ != stamp) {
    cache_ = DagAnalysis{};
    compute(cache_);
    cache_stamp_ = stamp;
  }
  return cache_;
}

void ExecutionDag::compute(DagAnalysis& a) const {
  a.nodes = nodes_;
  a.edges = edges_;
  a.total_cycles = last_cycle_;

  // Resolve the names activations that never retired in a named function
  // would otherwise lack.
  for (DagNode& node : a.nodes) {
    if (!node.task.empty()) continue;
    switch (node.kind) {
      case DagNodeKind::kIsr:
        node.task = "irq@" + std::to_string(node.prio);
        break;
      case DagNodeKind::kIdle:
        node.task = "idle";
        break;
      case DagNodeKind::kTask:
        node.task = node.core == kDagCorePcp ? "pcp.task" : "tc.task";
        break;
    }
  }

  // ---- critical path ------------------------------------------------
  //
  // Work nodes only (idle windows and zero-cycle synthetic masters are
  // not work). Nodes are ordered by (end, id); an edge is eligible iff
  // its endpoints are strictly ordered under that key, which makes the
  // eligible subgraph acyclic by construction. The forward weight of a
  // node is capped at its end cycle: a causal chain finishing at cycle E
  // cannot have consumed more than E cycles, which yields
  // critical_path_cycles <= total_cycles even when contention edges join
  // time-overlapping nodes.
  const auto eligible = [](const DagNode& n) {
    return n.kind != DagNodeKind::kIdle && n.core < 2 && n.cycles > 0;
  };
  const auto before = [&](u32 x, u32 y) {
    const DagNode& nx = a.nodes[x];
    const DagNode& ny = a.nodes[y];
    return nx.end != ny.end ? nx.end < ny.end : nx.id < ny.id;
  };
  std::vector<u32> order;
  for (const DagNode& n : a.nodes) {
    if (eligible(n)) order.push_back(n.id);
  }
  std::sort(order.begin(), order.end(), before);

  std::vector<std::vector<u32>> in(a.nodes.size());
  std::vector<std::vector<u32>> out(a.nodes.size());
  for (const DagEdge& e : a.edges) {
    if (!eligible(a.nodes[e.from]) || !eligible(a.nodes[e.to])) continue;
    if (!before(e.from, e.to)) continue;
    in[e.to].push_back(e.from);
    out[e.from].push_back(e.to);
  }

  std::vector<u64> forward(a.nodes.size(), 0);
  std::vector<u32> pred(a.nodes.size(), kDagNoNode);
  u32 sink = kDagNoNode;
  for (const u32 id : order) {
    const DagNode& node = a.nodes[id];
    u64 best = 0;
    u32 best_pred = kDagNoNode;
    for (const u32 from : in[id]) {
      if (forward[from] > best) {
        best = forward[from];
        best_pred = from;
      }
    }
    forward[id] = std::min<u64>(node.end, node.cycles + best);
    pred[id] = best_pred;
    if (sink == kDagNoNode || forward[id] > forward[sink]) sink = id;
  }
  if (sink != kDagNoNode) {
    a.critical_path_cycles = forward[sink];
    for (u32 v = sink; v != kDagNoNode; v = pred[v]) {
      a.critical_path.push_back(v);
    }
    std::reverse(a.critical_path.begin(), a.critical_path.end());
  }

  // Backward pass for slack, capped symmetrically (a chain starting at
  // cycle S cannot consume more than total-S+1 cycles).
  std::vector<u64> backward(a.nodes.size(), 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const u32 id = *it;
    const DagNode& node = a.nodes[id];
    u64 best = 0;
    for (const u32 to : out[id]) best = std::max(best, backward[to]);
    backward[id] = std::min<u64>(a.total_cycles - node.start + 1,
                                 node.cycles + best);
  }
  a.node_slack.assign(a.nodes.size(), a.critical_path_cycles);
  for (const u32 id : order) {
    const u64 through = forward[id] + backward[id] - a.nodes[id].cycles;
    a.node_slack[id] =
        a.critical_path_cycles - std::min(through, a.critical_path_cycles);
  }

  // ---- per-task aggregation + bottleneck rule table -----------------
  std::map<std::string, DagTaskSummary> tasks;
  for (const DagNode& node : a.nodes) {
    if (node.core >= 2) continue;  // synthetic masters are not tasks
    DagTaskSummary& t = tasks[node.task];
    if (t.task.empty()) {
      t.task = node.task;
      t.kind = node.kind;
      t.slack = a.critical_path_cycles;
    }
    t.activations++;
    t.cycles += node.cycles;
    t.instructions += node.instructions;
    t.issue_cycles += node.issue_cycles;
    for (unsigned r = 0; r < mcds::kNumStallRootCauses; ++r) {
      t.stall[r] += node.stall[r];
    }
    t.preempted_cycles += node.preempted_cycles;
    t.dispatch_latency += node.dispatch_latency;
    if (eligible(node)) t.slack = std::min(t.slack, a.node_slack[node.id]);
  }
  const auto bucket = [](const DagTaskSummary& t, mcds::StallRootCause r) {
    return t.stall[static_cast<unsigned>(r)];
  };
  for (auto& [name, t] : tasks) {
    using mcds::StallRootCause;
    // Fixed rule table, first match wins (thresholds in DESIGN.md).
    if (t.kind == DagNodeKind::kIdle) {
      t.label = BottleneckLabel::kIdle;
    } else if (t.preempted_cycles * 4 >= t.cycles) {
      t.label = BottleneckLabel::kPreemptionDelayed;
    } else if (t.dispatch_latency * 10 >= t.cycles) {
      t.label = BottleneckLabel::kIrqLatency;
    } else if ((bucket(t, StallRootCause::kBusArbitration) +
                bucket(t, StallRootCause::kBusSlaveBusy)) *
                   5 >=
               t.cycles) {
      t.label = BottleneckLabel::kBusContention;
    } else if ((bucket(t, StallRootCause::kFlashBuffer) +
                bucket(t, StallRootCause::kFlashRead) +
                bucket(t, StallRootCause::kFlashPortConflict)) *
                   10 >=
               t.cycles * 3) {
      t.label = BottleneckLabel::kFlashBound;
    } else {
      t.label = BottleneckLabel::kCpuBound;
    }
    a.tasks.push_back(t);
  }
  std::sort(a.tasks.begin(), a.tasks.end(),
            [](const DagTaskSummary& x, const DagTaskSummary& y) {
              return x.cycles != y.cycles ? x.cycles > y.cycles
                                          : x.task < y.task;
            });

  // ---- fingerprint --------------------------------------------------
  u64 h = kFnvOffset;
  h = fnv1a(h, a.total_cycles);
  for (const DagNode& node : a.nodes) {
    h = fnv1a(h, node.core);
    h = fnv1a(h, static_cast<u64>(node.kind));
    h = fnv1a(h, node.task);
    h = fnv1a(h, node.prio);
    h = fnv1a(h, node.start);
    h = fnv1a(h, node.end);
    h = fnv1a(h, node.cycles);
    h = fnv1a(h, node.instructions);
    h = fnv1a(h, node.issue_cycles);
    for (const u64 s : node.stall) h = fnv1a(h, s);
    h = fnv1a(h, node.dispatch_latency);
    h = fnv1a(h, node.preempted_cycles);
  }
  for (const DagEdge& e : a.edges) {
    h = fnv1a(h, e.from);
    h = fnv1a(h, e.to);
    h = fnv1a(h, static_cast<u64>(e.kind));
    h = fnv1a(h, e.weight);
  }
  h = fnv1a(h, a.critical_path_cycles);
  a.hash = h;
}

std::string ExecutionDag::format(usize top_n) const {
  const DagAnalysis& a = analysis();
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line,
                "%-16s %-20s %6s %10s %6s %10s %9s %8s\n", "task", "label",
                "acts", "cycles", "cyc%", "slack", "preempted", "dispatch");
  out += line;
  const double total =
      a.total_cycles == 0 ? 1.0 : static_cast<double>(a.total_cycles);
  usize n = 0;
  for (const DagTaskSummary& t : a.tasks) {
    if (n++ >= top_n) break;
    std::snprintf(line, sizeof line,
                  "%-16s %-20s %6llu %10llu %5.1f%% %10llu %9llu %8llu\n",
                  t.task.c_str(), to_string(t.label),
                  static_cast<unsigned long long>(t.activations),
                  static_cast<unsigned long long>(t.cycles),
                  100.0 * static_cast<double>(t.cycles) / total,
                  static_cast<unsigned long long>(t.slack),
                  static_cast<unsigned long long>(t.preempted_cycles),
                  static_cast<unsigned long long>(t.dispatch_latency));
    out += line;
  }
  std::snprintf(line, sizeof line,
                "critical path: %llu / %llu cycles over %zu of %zu "
                "activations (%zu edges, hash 0x%llx)\n",
                static_cast<unsigned long long>(a.critical_path_cycles),
                static_cast<unsigned long long>(a.total_cycles),
                a.critical_path.size(), a.nodes.size(), a.edges.size(),
                static_cast<unsigned long long>(a.hash));
  out += line;
  return out;
}

std::string ExecutionDag::to_csv() const {
  const DagAnalysis& a = analysis();
  std::string out =
      "node,core,kind,task,prio,start,end,cycles,instructions,issue";
  for (unsigned r = 1; r < mcds::kNumStallRootCauses; ++r) {
    out += ',';
    out += mcds::to_string(static_cast<mcds::StallRootCause>(r));
  }
  out += ",dispatch_latency,preempted_cycles,slack,critical\n";
  std::vector<bool> critical(a.nodes.size(), false);
  for (const u32 id : a.critical_path) critical[id] = true;
  for (const DagNode& node : a.nodes) {
    out += std::to_string(node.id);
    out += ',' + std::to_string(node.core);
    out += ',';
    out += to_string(node.kind);
    out += ',' + node.task;
    out += ',' + std::to_string(node.prio);
    out += ',' + std::to_string(node.start);
    out += ',' + std::to_string(node.end);
    out += ',' + std::to_string(node.cycles);
    out += ',' + std::to_string(node.instructions);
    out += ',' + std::to_string(node.issue_cycles);
    for (unsigned r = 1; r < mcds::kNumStallRootCauses; ++r) {
      out += ',' + std::to_string(node.stall[r]);
    }
    out += ',' + std::to_string(node.dispatch_latency);
    out += ',' + std::to_string(node.preempted_cycles);
    out += ',' + std::to_string(a.node_slack[node.id]);
    out += ',';
    out += critical[node.id] ? '1' : '0';
    out += '\n';
  }
  return out;
}

std::string ExecutionDag::to_dot(usize max_nodes) const {
  const DagAnalysis& a = analysis();
  std::vector<bool> critical(a.nodes.size(), false);
  for (const u32 id : a.critical_path) critical[id] = true;
  // Emit the first max_nodes activations plus everything on the critical
  // path, so a capped render never truncates the headline chain.
  std::vector<bool> emit(a.nodes.size(), false);
  usize emitted = 0;
  for (const DagNode& node : a.nodes) {
    if (max_nodes != 0 && emitted >= max_nodes) break;
    emit[node.id] = true;
    emitted++;
  }
  for (const u32 id : a.critical_path) emit[id] = true;

  std::string out = "digraph execution_dag {\n  rankdir=LR;\n"
                    "  node [shape=box, fontsize=9];\n";
  char line[256];
  for (const DagNode& node : a.nodes) {
    if (!emit[node.id]) continue;
    const char* color = critical[node.id] ? "red" : node.kind ==
                            DagNodeKind::kIdle ? "gray" : "black";
    std::snprintf(line, sizeof line,
                  "  n%u [label=\"%s#%u\\n[%llu,%llu] %llu cyc\", "
                  "color=%s%s];\n",
                  node.id, node.task.c_str(), node.id,
                  static_cast<unsigned long long>(node.start),
                  static_cast<unsigned long long>(node.end),
                  static_cast<unsigned long long>(node.cycles), color,
                  critical[node.id] ? ", penwidth=2" : "");
    out += line;
  }
  for (const DagEdge& e : a.edges) {
    if (!emit[e.from] || !emit[e.to]) continue;
    const bool on_path = critical[e.from] && critical[e.to];
    std::snprintf(line, sizeof line,
                  "  n%u -> n%u [label=\"%s%s%llu\", style=%s%s];\n", e.from,
                  e.to, to_string(e.kind), e.weight != 0 ? " " : "",
                  static_cast<unsigned long long>(e.weight),
                  e.kind == DagEdgeKind::kContention ? "dashed" : "solid",
                  on_path ? ", color=red, penwidth=2" : "");
    out += line;
  }
  out += "}\n";
  return out;
}

void ExecutionDag::emit_timeline(telemetry::Timeline& timeline) const {
  const DagAnalysis& a = analysis();
  // One track per (core, task), ordered core-major then by task name so
  // reruns and rebuilds render identically.
  std::vector<std::pair<u8, std::string>> keys;
  for (const DagNode& node : a.nodes) {
    if (node.core >= 2) continue;
    keys.emplace_back(node.core, node.task);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::map<std::pair<u8, std::string>, telemetry::Timeline::TrackId> track;
  for (const auto& key : keys) {
    const char* core = key.first == kDagCorePcp ? "pcp" : "tc";
    track[key] = timeline.add_track("dag " + std::string(core) + "/" +
                                    key.second);
  }
  std::vector<bool> critical(a.nodes.size(), false);
  for (const u32 id : a.critical_path) critical[id] = true;
  for (const DagNode& node : a.nodes) {
    if (node.core >= 2) continue;
    const auto t = track.find({node.core, node.task});
    if (t == track.end()) continue;
    timeline.complete(t->second,
                      critical[node.id] ? node.task + " *crit*" : node.task,
                      node.start, node.end);
  }
  // Flow arrows along the activation-causal edges (contention edges are
  // too dense to render usefully).
  for (const DagEdge& e : a.edges) {
    if (e.kind == DagEdgeKind::kContention) continue;
    const DagNode& from = a.nodes[e.from];
    const DagNode& to = a.nodes[e.to];
    if (from.core >= 2 || to.core >= 2) continue;
    const auto ft = track.find({from.core, from.task});
    const auto tt = track.find({to.core, to.task});
    if (ft == track.end() || tt == track.end()) continue;
    timeline.flow(ft->second, from.end, tt->second, to.start,
                  to_string(e.kind));
  }
}

void ExecutionDag::register_metrics(
    telemetry::MetricsRegistry& registry) const {
  registry.gauge("dag", "nodes",
                 [this] { return static_cast<u64>(analysis().nodes.size()); });
  registry.gauge("dag", "edges",
                 [this] { return static_cast<u64>(analysis().edges.size()); });
  registry.gauge("dag", "critical_path_cycles",
                 [this] { return analysis().critical_path_cycles; });
  for (const DagTaskSummary& t : analysis().tasks) {
    registry.gauge("dag", "slack." + t.task, [this, name = t.task] {
      const DagTaskSummary* task = analysis().find_task(name);
      return task != nullptr ? task->slack : 0;
    });
  }
}

void ExecutionDag::fill_report(telemetry::RunReport& report,
                               usize path_cap) const {
  const DagAnalysis& a = analysis();
  telemetry::RunReport::DagBlock& block = report.dag;
  block = telemetry::RunReport::DagBlock{};
  block.present = true;
  block.nodes = a.nodes.size();
  block.edges = a.edges.size();
  block.total_cycles = a.total_cycles;
  block.critical_path_cycles = a.critical_path_cycles;
  block.critical_path_nodes = a.critical_path.size();
  block.hash = a.hash;
  for (const DagTaskSummary& t : a.tasks) {
    telemetry::RunReport::DagTaskEntry entry;
    entry.task = t.task;
    entry.kind = to_string(t.kind);
    entry.label = to_string(t.label);
    entry.activations = t.activations;
    entry.cycles = t.cycles;
    entry.instructions = t.instructions;
    entry.slack = t.slack;
    entry.preempted_cycles = t.preempted_cycles;
    entry.dispatch_latency = t.dispatch_latency;
    block.tasks.push_back(std::move(entry));
  }
  for (const u32 id : a.critical_path) {
    if (block.critical_path.size() >= path_cap) break;
    const DagNode& node = a.nodes[id];
    block.critical_path.push_back(telemetry::RunReport::DagPathEntry{
        node.task, node.start, node.end, node.cycles});
  }
}

}  // namespace audo::profiling
