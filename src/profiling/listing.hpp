// Instruction-level execution listing reconstructed from the program-flow
// trace — what a debugger's trace window shows: every executed
// instruction, recovered from compressed flow messages plus the program
// image (the trace itself never carries instruction bytes).
#pragma once

#include <string>

#include "isa/program.hpp"
#include "mcds/trace.hpp"

namespace audo::profiling {

struct ListingOptions {
  usize max_lines = 200;
  /// Start reconstruction at this cycle (0 = from the first sync).
  Cycle from_cycle = 0;
  mcds::MsgSource core = mcds::MsgSource::kTcCore;
};

/// Reconstruct the executed-instruction listing. Lines look like
/// `  [~cycle] 0x80001008  add d1, d2, d3   ; in <function>`.
/// Cycle numbers are the enclosing message timestamps (the flow trace
/// resolves time to discontinuities, not single instructions).
std::string execution_listing(const isa::Program& program,
                              const std::vector<mcds::TraceMessage>& messages,
                              const ListingOptions& options = {});

}  // namespace audo::profiling
