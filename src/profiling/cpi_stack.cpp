#include "profiling/cpi_stack.hpp"

#include <algorithm>
#include <cstdio>

namespace audo::profiling {

namespace {

const std::string kUnknown = "?";

/// Short column headers for the stall table, indexed by StallRootCause.
const char* short_name(mcds::StallRootCause root) {
  using mcds::StallRootCause;
  switch (root) {
    case StallRootCause::kNone: return "issue";
    case StallRootCause::kFrontend: return "front";
    case StallRootCause::kExec: return "exec";
    case StallRootCause::kFlashBuffer: return "fbuf";
    case StallRootCause::kFlashRead: return "fread";
    case StallRootCause::kFlashPortConflict: return "fconf";
    case StallRootCause::kBusArbitration: return "arb";
    case StallRootCause::kBusSlaveBusy: return "busy";
    case StallRootCause::kWfi: return "wfi";
    case StallRootCause::kHalted: return "halt";
    default: return "?";
  }
}

}  // namespace

CpiStackBuilder::CpiStackBuilder(isa::SymbolMap symbols)
    : symbols_(std::move(symbols)), current_(&kUnknown) {}

void CpiStackBuilder::charge(const mcds::CoreObservation& obs, u64 n) {
  // Track the executing function: a retire pins it exactly; a
  // no-retire discontinuity (irq/trap vectoring) redirects it to the
  // target so the entry bubble is charged to the handler.
  if (obs.retired > 0) {
    current_ = &symbols_.function_at(obs.retire_pc);
  } else if (obs.discontinuity) {
    current_ = &symbols_.function_at(obs.discontinuity_target);
  }
  CpiStackEntry& e = functions_[*current_];
  if (e.name.empty()) e.name = *current_;
  e.cycles += n;
  e.instructions += static_cast<u64>(obs.retired) * n;
  if (obs.attr.root == mcds::StallRootCause::kNone) {
    e.issue_cycles += n;
  } else {
    e.stall[static_cast<unsigned>(obs.attr.root)] += n;
  }
  observed_cycles_ += n;
}

void CpiStackBuilder::observe(const mcds::ObservationFrame& frame) {
  if (frame.tc.present) charge(frame.tc, 1);
}

void CpiStackBuilder::skip_idle(const mcds::ObservationFrame& idle, u64 n) {
  if (idle.tc.present) charge(idle.tc, n);
}

std::vector<CpiStackEntry> CpiStackBuilder::stacks() const {
  std::vector<CpiStackEntry> out;
  out.reserve(functions_.size());
  for (const auto& [name, entry] : functions_) out.push_back(entry);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.cycles > b.cycles;
  });
  return out;
}

CpiStackEntry CpiStackBuilder::total() const {
  CpiStackEntry sum;
  sum.name = "*total*";
  for (const auto& [name, entry] : functions_) {
    sum.instructions += entry.instructions;
    sum.cycles += entry.cycles;
    sum.issue_cycles += entry.issue_cycles;
    for (unsigned r = 0; r < mcds::kNumStallRootCauses; ++r) {
      sum.stall[r] += entry.stall[r];
    }
  }
  return sum;
}

std::string CpiStackBuilder::format(usize top_n) const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "%-20s %10s %10s %6s", "function", "cycles",
                "instrs", "CPI");
  out += line;
  // One percentage column per decomposition bucket (issue + each root).
  for (unsigned r = 0; r < mcds::kNumStallRootCauses; ++r) {
    std::snprintf(line, sizeof line, " %6s",
                  short_name(static_cast<mcds::StallRootCause>(r)));
    out += line;
  }
  out += '\n';

  const auto row = [&](const CpiStackEntry& e) {
    std::snprintf(line, sizeof line, "%-20s %10llu %10llu %6.2f",
                  e.name.c_str(), static_cast<unsigned long long>(e.cycles),
                  static_cast<unsigned long long>(e.instructions), e.cpi());
    out += line;
    const double cycles =
        e.cycles == 0 ? 1.0 : static_cast<double>(e.cycles);
    for (unsigned r = 0; r < mcds::kNumStallRootCauses; ++r) {
      const u64 c = r == 0 ? e.issue_cycles : e.stall[r];
      std::snprintf(line, sizeof line, " %5.1f%%",
                    100.0 * static_cast<double>(c) / cycles);
      out += line;
    }
    out += '\n';
  };

  usize n = 0;
  for (const CpiStackEntry& e : stacks()) {
    if (n++ >= top_n) break;
    row(e);
  }
  row(total());
  return out;
}

std::string CpiStackBuilder::to_csv() const {
  std::string out = "function,instructions,cycles,issue";
  for (unsigned r = 1; r < mcds::kNumStallRootCauses; ++r) {
    out += ',';
    out += mcds::to_string(static_cast<mcds::StallRootCause>(r));
  }
  out += '\n';
  const auto row = [&](const CpiStackEntry& e) {
    out += e.name;
    out += ',' + std::to_string(e.instructions);
    out += ',' + std::to_string(e.cycles);
    out += ',' + std::to_string(e.issue_cycles);
    for (unsigned r = 1; r < mcds::kNumStallRootCauses; ++r) {
      out += ',' + std::to_string(e.stall[r]);
    }
    out += '\n';
  };
  for (const CpiStackEntry& e : stacks()) row(e);
  row(total());
  return out;
}

}  // namespace audo::profiling
