// Superblock fast execution tier (DESIGN.md, "Execution tiers").
//
// Every fast cycle runs in two phases over a predecoded chunk:
//
//   phase A (plan)   — decide everything the cycle will do (delivery of
//                      the in-flight fetch, the issue group, the data
//                      route, the next fetch) touching no state. Any
//                      condition the fast model cannot represent —
//                      unsupported op, cache miss, bus route, stale code
//                      word — returns false with the machine untouched,
//                      and the caller replays the cycle with step().
//   phase B (commit) — apply the plan through a function-pointer
//                      dispatch table, reproducing the accurate
//                      stepper's mutations and observation strobes
//                      bit-for-bit (including counter bumps and cache
//                      LRU/stat updates).
//
// The window model freezes everything step() consults outside the core:
// no bus traffic, no peripheral activity, no interrupt or trap delivery,
// no fault hooks. The owning Soc guarantees those invariants before
// opening a window and bounds it by the next peripheral activity cycle.
#include <cassert>

#include "cpu/cpu.hpp"
#include "mem/memory_map.hpp"

namespace audo::cpu {

using isa::Opcode;
using isa::Pipe;
using isa::SuperOp;
using mcds::StallCause;

namespace {
// Mirror of the (file-local) helper in cpu.cpp.
u32 extend_loaded(Opcode op, u32 raw) {
  switch (op) {
    case Opcode::kLdB: return static_cast<u32>(static_cast<i32>(static_cast<i8>(raw)));
    case Opcode::kLdH: return static_cast<u32>(static_cast<i32>(static_cast<i16>(raw)));
    default: return raw;
  }
}
}  // namespace

const char* to_string(FastBail bail) {
  switch (bail) {
    case FastBail::kNone: return "none";
    case FastBail::kNoSuperblocks: return "no_superblocks";
    case FastBail::kFrontendBusy: return "frontend_busy";
    case FastBail::kCoreState: return "core_state";
    case FastBail::kDataBusy: return "data_busy";
    case FastBail::kNoBlock: return "no_superblock";
    case FastBail::kCodeRoute: return "code_route";
    case FastBail::kStaleCode: return "stale_code";
    case FastBail::kChunkTail: return "chunk_tail";
    case FastBail::kFallOff: return "chunk_falloff";
    case FastBail::kUnsupportedOp: return "unsupported_op";
    case FastBail::kDataRoute: return "data_route";
    case FastBail::kIcacheMiss: return "icache_miss";
    case FastBail::kCount: break;
  }
  return "?";
}

// --------------------------------------------------------------------------
// Per-opcode commit functors. Each mirrors the corresponding case of
// Cpu::execute() exactly (values, scoreboard deadlines, observation
// strobes, redirect behaviour).

struct FastExec {
  using Obs = mcds::CoreObservation;
  using Mem = Cpu::FastMemPlan;
  using Fn = void (*)(Cpu&, const SuperOp&, Addr, Cycle, Obs&, const Mem&);

  static void sd(Cpu& c, const SuperOp& op, u8 r, u32 v, Cycle now) {
    c.d_[r] = v;
    c.d_ready_[r] = now + op.latency;
  }
  static void sa(Cpu& c, const SuperOp& op, u8 r, u32 v, Cycle now) {
    c.a_[r] = v;
    c.a_ready_[r] = now + op.latency;
  }
  static Addr disp_target(const SuperOp& op, Addr pc) {
    return pc + isa::kInstrBytes + static_cast<Addr>(op.instr.imm * 4);
  }

  static void unreachable(Cpu&, const SuperOp&, Addr, Cycle, Obs&,
                          const Mem&) {
    assert(false && "bail-flagged op reached the fast dispatch table");
  }

  static void nop(Cpu&, const SuperOp&, Addr, Cycle, Obs&, const Mem&) {}

  // -- IP pipe ---------------------------------------------------------
  static void add(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    const auto& in = op.instr;
    sd(c, op, in.rd, c.d_[in.ra] + c.d_[in.rb], now);
  }
  static void sub(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    const auto& in = op.instr;
    sd(c, op, in.rd, c.d_[in.ra] - c.d_[in.rb], now);
  }
  static void and_(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    const auto& in = op.instr;
    sd(c, op, in.rd, c.d_[in.ra] & c.d_[in.rb], now);
  }
  static void or_(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    const auto& in = op.instr;
    sd(c, op, in.rd, c.d_[in.ra] | c.d_[in.rb], now);
  }
  static void xor_(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    const auto& in = op.instr;
    sd(c, op, in.rd, c.d_[in.ra] ^ c.d_[in.rb], now);
  }
  static void shl(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    const auto& in = op.instr;
    sd(c, op, in.rd, c.d_[in.ra] << (c.d_[in.rb] & 31), now);
  }
  static void shr(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    const auto& in = op.instr;
    sd(c, op, in.rd, c.d_[in.ra] >> (c.d_[in.rb] & 31), now);
  }
  static void sar(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    const auto& in = op.instr;
    sd(c, op, in.rd,
       static_cast<u32>(static_cast<i32>(c.d_[in.ra]) >> (c.d_[in.rb] & 31)),
       now);
  }
  static void mul(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    const auto& in = op.instr;
    sd(c, op, in.rd, c.d_[in.ra] * c.d_[in.rb], now);
  }
  static void mac(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    const auto& in = op.instr;
    sd(c, op, in.rd, c.d_[in.rd] + c.d_[in.ra] * c.d_[in.rb], now);
  }
  static void div(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    const auto& in = op.instr;
    const i32 den = static_cast<i32>(c.d_[in.rb]);
    const i32 num = static_cast<i32>(c.d_[in.ra]);
    if (den == 0) {
      sd(c, op, in.rd, 0xFFFFFFFF, now);
    } else if (den == -1) {
      sd(c, op, in.rd, 0u - c.d_[in.ra], now);
    } else {
      sd(c, op, in.rd, static_cast<u32>(num / den), now);
    }
  }
  static void min(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    const auto& in = op.instr;
    sd(c, op, in.rd,
       static_cast<i32>(c.d_[in.ra]) < static_cast<i32>(c.d_[in.rb])
           ? c.d_[in.ra] : c.d_[in.rb],
       now);
  }
  static void max(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    const auto& in = op.instr;
    sd(c, op, in.rd,
       static_cast<i32>(c.d_[in.ra]) > static_cast<i32>(c.d_[in.rb])
           ? c.d_[in.ra] : c.d_[in.rb],
       now);
  }
  static void abs(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    const auto& in = op.instr;
    const i32 v = static_cast<i32>(c.d_[in.ra]);
    sd(c, op, in.rd, static_cast<u32>(v < 0 ? -v : v), now);
  }
  static void addi(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    const auto& in = op.instr;
    sd(c, op, in.rd, c.d_[in.ra] + static_cast<u32>(in.imm), now);
  }
  static void andi(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    const auto& in = op.instr;
    sd(c, op, in.rd, c.d_[in.ra] & (static_cast<u32>(in.imm) & 0xFFFF), now);
  }
  static void ori(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    const auto& in = op.instr;
    sd(c, op, in.rd, c.d_[in.ra] | (static_cast<u32>(in.imm) & 0xFFFF), now);
  }
  static void xori(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    const auto& in = op.instr;
    sd(c, op, in.rd, c.d_[in.ra] ^ (static_cast<u32>(in.imm) & 0xFFFF), now);
  }
  static void shli(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    const auto& in = op.instr;
    sd(c, op, in.rd, c.d_[in.ra] << (in.imm & 31), now);
  }
  static void shri(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    const auto& in = op.instr;
    sd(c, op, in.rd, c.d_[in.ra] >> (in.imm & 31), now);
  }
  static void sari(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    const auto& in = op.instr;
    sd(c, op, in.rd,
       static_cast<u32>(static_cast<i32>(c.d_[in.ra]) >> (in.imm & 31)), now);
  }
  static void movd(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    sd(c, op, op.instr.rd, static_cast<u32>(op.instr.imm), now);
  }
  static void movh(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    sd(c, op, op.instr.rd, (static_cast<u32>(op.instr.imm) & 0xFFFF) << 16,
       now);
  }
  static void mov_da(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    sd(c, op, op.instr.rd, c.a_[op.instr.ra], now);
  }

  // -- LS pipe: address-register ALU ------------------------------------
  static void mov_ad(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    sa(c, op, op.instr.rd, c.d_[op.instr.ra], now);
  }
  static void mov_a(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    sa(c, op, op.instr.rd, c.a_[op.instr.ra], now);
  }
  static void movha(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    sa(c, op, op.instr.rd, (static_cast<u32>(op.instr.imm) & 0xFFFF) << 16,
       now);
  }
  static void lea(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    const auto& in = op.instr;
    sa(c, op, in.rd, c.a_[in.ra] + static_cast<u32>(in.imm), now);
  }
  static void adda(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs&, const Mem&) {
    const auto& in = op.instr;
    sa(c, op, in.rd, c.a_[in.ra] + c.a_[in.rb], now);
  }

  // -- LS pipe: memory --------------------------------------------------
  static unsigned mem_bytes(Opcode op) {
    if (op == Opcode::kLdB || op == Opcode::kStB) return 1;
    if (op == Opcode::kLdH || op == Opcode::kStH) return 2;
    return 4;
  }
  static void load(Cpu& c, const SuperOp& op, Addr, Cycle now, Obs& obs,
                   const Mem& mem) {
    const auto& in = op.instr;
    const unsigned bytes = mem_bytes(in.opcode);
    u32 raw;
    if (mem.flash_hit) {
      obs.dcache_access = true;
      obs.dcache_hit = true;
      // probe() in phase A said hit; access() commits the LRU/stat update
      // the accurate path performs.
      c.env_.dcache->access(mem.addr);
      raw = c.env_.flash->read(mem::pflash_offset(mem.addr), bytes);
    } else {
      obs.dspr_access = true;
      raw = c.env_.data_spr->read(mem.addr, bytes);
    }
    const u32 value = extend_loaded(in.opcode, raw);
    if (in.opcode == Opcode::kLdA) {
      sa(c, op, in.rd, value, now);
    } else {
      sd(c, op, in.rd, value, now);
    }
    obs.data_access = true;
    obs.data_addr = mem.addr;
    obs.data_value = value;
    obs.data_bytes = static_cast<u8>(bytes);
  }
  static void store(Cpu& c, const SuperOp& op, Addr, Cycle, Obs& obs,
                    const Mem& mem) {
    const auto& in = op.instr;
    const unsigned bytes = mem_bytes(in.opcode);
    const u32 value = in.opcode == Opcode::kStA ? c.a_[in.rd] : c.d_[in.rd];
    obs.dspr_access = true;  // plan admits only the scratchpad route
    c.env_.data_spr->write(mem.addr, value, bytes);
    obs.data_access = true;
    obs.data_write = true;
    obs.data_addr = mem.addr;
    obs.data_value = value;
    obs.data_bytes = static_cast<u8>(bytes);
  }

  // -- LP pipe ----------------------------------------------------------
  static void j(Cpu& c, const SuperOp& op, Addr pc, Cycle, Obs& obs, const Mem&) {
    c.redirect(disp_target(op, pc), obs);
  }
  static void ji(Cpu& c, const SuperOp& op, Addr, Cycle, Obs& obs, const Mem&) {
    c.redirect(c.a_[op.instr.ra], obs);
  }
  static void call(Cpu& c, const SuperOp& op, Addr pc, Cycle now, Obs& obs,
                   const Mem&) {
    sa(c, op, 11, pc + isa::kInstrBytes, now);
    c.redirect(disp_target(op, pc), obs);
  }
  static void calli(Cpu& c, const SuperOp& op, Addr pc, Cycle now, Obs& obs,
                    const Mem&) {
    sa(c, op, 11, pc + isa::kInstrBytes, now);
    c.redirect(c.a_[op.instr.ra], obs);
  }
  static void ret(Cpu& c, const SuperOp& op, Addr, Cycle, Obs& obs, const Mem&) {
    (void)op;
    c.redirect(c.a_[11], obs);
  }
  static void jeq(Cpu& c, const SuperOp& op, Addr pc, Cycle, Obs& obs, const Mem&) {
    const auto& in = op.instr;
    if (c.d_[in.rd] == c.d_[in.ra]) c.redirect(disp_target(op, pc), obs);
  }
  static void jne(Cpu& c, const SuperOp& op, Addr pc, Cycle, Obs& obs, const Mem&) {
    const auto& in = op.instr;
    if (c.d_[in.rd] != c.d_[in.ra]) c.redirect(disp_target(op, pc), obs);
  }
  static void jlt(Cpu& c, const SuperOp& op, Addr pc, Cycle, Obs& obs, const Mem&) {
    const auto& in = op.instr;
    if (static_cast<i32>(c.d_[in.rd]) < static_cast<i32>(c.d_[in.ra])) {
      c.redirect(disp_target(op, pc), obs);
    }
  }
  static void jge(Cpu& c, const SuperOp& op, Addr pc, Cycle, Obs& obs, const Mem&) {
    const auto& in = op.instr;
    if (static_cast<i32>(c.d_[in.rd]) >= static_cast<i32>(c.d_[in.ra])) {
      c.redirect(disp_target(op, pc), obs);
    }
  }
  static void jltu(Cpu& c, const SuperOp& op, Addr pc, Cycle, Obs& obs, const Mem&) {
    const auto& in = op.instr;
    if (c.d_[in.rd] < c.d_[in.ra]) c.redirect(disp_target(op, pc), obs);
  }
  static void jgeu(Cpu& c, const SuperOp& op, Addr pc, Cycle, Obs& obs, const Mem&) {
    const auto& in = op.instr;
    if (c.d_[in.rd] >= c.d_[in.ra]) c.redirect(disp_target(op, pc), obs);
  }
  static void jz(Cpu& c, const SuperOp& op, Addr pc, Cycle, Obs& obs, const Mem&) {
    if (c.d_[op.instr.rd] == 0) c.redirect(disp_target(op, pc), obs);
  }
  static void jnz(Cpu& c, const SuperOp& op, Addr pc, Cycle, Obs& obs, const Mem&) {
    if (c.d_[op.instr.rd] != 0) c.redirect(disp_target(op, pc), obs);
  }
  static void loop(Cpu& c, const SuperOp& op, Addr pc, Cycle now, Obs& obs,
                   const Mem&) {
    const auto& in = op.instr;
    c.a_[in.rd] -= 1;
    c.a_ready_[in.rd] = now + 1;
    if (c.a_[in.rd] != 0) c.redirect(disp_target(op, pc), obs);
  }

  static std::array<Fn, isa::kNumOpcodes> make_table() {
    std::array<Fn, isa::kNumOpcodes> t{};
    t.fill(&unreachable);
    const auto set = [&t](Opcode op, Fn fn) {
      t[static_cast<usize>(op)] = fn;
    };
    set(Opcode::kNop, &nop);
    set(Opcode::kAdd, &add);
    set(Opcode::kSub, &sub);
    set(Opcode::kAnd, &and_);
    set(Opcode::kOr, &or_);
    set(Opcode::kXor, &xor_);
    set(Opcode::kShl, &shl);
    set(Opcode::kShr, &shr);
    set(Opcode::kSar, &sar);
    set(Opcode::kMul, &mul);
    set(Opcode::kMac, &mac);
    set(Opcode::kDiv, &div);
    set(Opcode::kMin, &min);
    set(Opcode::kMax, &max);
    set(Opcode::kAbs, &abs);
    set(Opcode::kAddi, &addi);
    set(Opcode::kAndi, &andi);
    set(Opcode::kOri, &ori);
    set(Opcode::kXori, &xori);
    set(Opcode::kShli, &shli);
    set(Opcode::kShri, &shri);
    set(Opcode::kSari, &sari);
    set(Opcode::kMovd, &movd);
    set(Opcode::kMovh, &movh);
    set(Opcode::kMovDA, &mov_da);
    set(Opcode::kMovAD, &mov_ad);
    set(Opcode::kMovA, &mov_a);
    set(Opcode::kMovha, &movha);
    set(Opcode::kLea, &lea);
    set(Opcode::kAdda, &adda);
    set(Opcode::kLdW, &load);
    set(Opcode::kLdH, &load);
    set(Opcode::kLdB, &load);
    set(Opcode::kLdA, &load);
    set(Opcode::kStW, &store);
    set(Opcode::kStH, &store);
    set(Opcode::kStB, &store);
    set(Opcode::kStA, &store);
    set(Opcode::kJ, &j);
    set(Opcode::kJi, &ji);
    set(Opcode::kCall, &call);
    set(Opcode::kCalli, &calli);
    set(Opcode::kRet, &ret);
    set(Opcode::kJeq, &jeq);
    set(Opcode::kJne, &jne);
    set(Opcode::kJlt, &jlt);
    set(Opcode::kJge, &jge);
    set(Opcode::kJltu, &jltu);
    set(Opcode::kJgeu, &jgeu);
    set(Opcode::kJz, &jz);
    set(Opcode::kJnz, &jnz);
    set(Opcode::kLoop, &loop);
    return t;
  }

  static const std::array<Fn, isa::kNumOpcodes> kTable;
};

const std::array<FastExec::Fn, isa::kNumOpcodes> FastExec::kTable =
    FastExec::make_table();

// --------------------------------------------------------------------------
// Window entry / exit.

bool Cpu::needs_slow_step() const {
  if (halted_ || trap_pending_) return true;
  if (env_.irq != nullptr) {
    if (const auto prio = env_.irq->pending();
        prio.has_value() && irq_acceptable(*prio)) {
      return true;
    }
  }
  return false;
}

bool Cpu::fast_enter(FastWindow& fw) {
  if (env_.superblocks == nullptr) return bail(FastBail::kNoSuperblocks);
  // A fully drained core: the virtualised fetch queue starts empty and
  // the real fetch machinery fields describe an idle front end.
  if (!fetch_queue_.empty()) return bail(FastBail::kFrontendBusy);
  if (fetch_state_ != FetchState::kIdle || fetch_discard_) {
    return bail(FastBail::kFrontendBusy);
  }
  if (wfi_ || needs_slow_step()) return bail(FastBail::kCoreState);
  if (load_pending_ || store_pending_) return bail(FastBail::kDataBusy);
  if (!fetch_port_.idle() || !data_port_.idle()) {
    return bail(FastBail::kDataBusy);
  }
  if (fetch_pc_ != next_pc_) return bail(FastBail::kFrontendBusy);
  const isa::Superblock* blk = env_.superblocks->lookup(next_pc_);
  if (blk == nullptr || blk->ops.empty()) return bail(FastBail::kNoBlock);
  if (blk->pspr) {
    if (env_.code_spr == nullptr) return bail(FastBail::kCodeRoute);
  } else {
    // Flash-resident code is only representable through I-cache hits.
    if (env_.flash == nullptr || env_.icache == nullptr ||
        !env_.icache->config().enabled) {
      return bail(FastBail::kCodeRoute);
    }
  }
  fw.blk = blk;
  fw.front = 0;
  fw.count = 0;
  fw.left_chunk = false;
  return true;
}

void Cpu::fast_exit(FastWindow& fw) {
  if (fw.blk == nullptr) return;
  const isa::Superblock& blk = *fw.blk;
  for (u32 k = 0; k < fw.count; ++k) {
    const u32 idx = fw.front + k;
    fetch_queue_.push_back(
        Fetched{blk.base + idx * isa::kInstrBytes, blk.ops[idx].instr});
  }
  fw.blk = nullptr;
  fw.front = 0;
  fw.count = 0;
}

u32 Cpu::peek_code_word(const isa::Superblock& blk, u32 idx) const {
  const Addr pc = blk.base + idx * isa::kInstrBytes;
  if (blk.pspr) {
    return env_.code_spr->array().peek(pc - env_.code_spr->base(), 4);
  }
  return env_.flash->peek(mem::pflash_offset(pc), 4);
}

// --------------------------------------------------------------------------
// One fast cycle.

bool Cpu::fast_cycle(FastWindow& fw, Cycle now, mcds::CoreObservation& obs) {
  const isa::Superblock& blk = *fw.blk;
  const u32 nops = static_cast<u32>(blk.ops.size());

  // ---- Phase A: plan. No state is touched before the commit marker. ----
  assert(fetch_state_ != FetchState::kBusWait);

  // Virtual delivery of the in-flight local fetch (try_finish_fetch).
  // Words are validated against memory through the side-effect-free peek
  // path: a mismatch means code changed under the predecode (a write that
  // bypassed the invalidation funnel) and the cycle bails so the accurate
  // decoder re-reads it.
  u32 deliver_idx = 0;
  unsigned deliver_words = 0;
  if (fetch_state_ == FetchState::kLocalWait) {
    assert(now >= fetch_ready_at_);  // local fetches always take one cycle
    if (!blk.contains(fetch_addr_)) return bail(FastBail::kChunkTail);
    deliver_idx = blk.index_of(fetch_addr_);
    deliver_words = fetch_words_;
    if (deliver_idx + deliver_words > nops) {
      return bail(FastBail::kChunkTail);
    }
    for (unsigned w = 0; w < deliver_words; ++w) {
      if (peek_code_word(blk, deliver_idx + w) != blk.ops[deliver_idx + w].word) {
        return bail(FastBail::kStaleCode);
      }
    }
    assert(fw.count == 0 || deliver_idx == fw.front + fw.count);
  }
  const u32 q_front = fw.count == 0 ? deliver_idx : fw.front;
  const u32 q_count = fw.count + deliver_words;

  // Issue planning: mirrors the accurate issue loop. In-group hazards are
  // tracked as written-register masks — a register written earlier in the
  // group has a future scoreboard deadline in the accurate model, so a
  // later candidate sourcing it must not issue; conversely, every source
  // an issuing op reads is untouched by this group, so register values
  // read during planning equal the commit-time values.
  bool ip = false;
  bool ls = false;
  bool lp = false;
  unsigned plan = 0;
  bool redirected = false;
  StallCause stall = StallCause::kNone;
  u32 written_d = 0;
  u32 written_a = 0;
  FastMemPlan mem{};

  while (plan < config_.issue_width && plan < q_count) {
    const SuperOp& op = blk.ops[q_front + plan];
    if (op.flags & SuperOp::kBail) {
      // With nothing issued yet the unsupported op would execute this
      // cycle: bail. Otherwise it merely ends the group (SYS issues
      // alone) and stays queued for the accurate stepper.
      if (plan == 0) return bail(FastBail::kUnsupportedOp);
      break;
    }
    const auto pipe = static_cast<Pipe>(op.pipe);
    if (pipe == Pipe::kSys && plan > 0) break;  // NOP issues alone
    bool* slot = nullptr;
    switch (pipe) {
      case Pipe::kIp: slot = &ip; break;
      case Pipe::kLs: slot = &ls; break;
      case Pipe::kLp: slot = &lp; break;
      case Pipe::kSys: break;
    }
    if (slot != nullptr && *slot) break;  // pipe slot taken: group full

    bool ready = true;
    for (const u8 enc : op.src) {
      if (enc == SuperOp::kNoReg) break;
      const u8 r = enc & 0xF;
      if ((enc & SuperOp::kAddrFile) != 0) {
        if (a_ready_[r] > now || ((written_a >> r) & 1) != 0) ready = false;
      } else {
        if (d_ready_[r] > now || ((written_d >> r) & 1) != 0) ready = false;
      }
      if (!ready) break;
    }
    if (!ready) {
      // kLoadUse needs a kFar (bus-load) deadline; the window admits no
      // bus loads, so the only source-wait symptom is kExecLatency.
      if (plan == 0) stall = StallCause::kExecLatency;
      break;
    }

    if ((op.flags & (SuperOp::kLoad | SuperOp::kStore)) != 0) {
      if (env_.data_spr == nullptr) return bail(FastBail::kDataRoute);
      const Addr addr =
          a_[op.instr.ra] + static_cast<Addr>(op.instr.imm);
      if (env_.data_spr->contains(addr)) {
        mem = FastMemPlan{addr, false};
      } else if ((op.flags & SuperOp::kLoad) != 0 && env_.dcache != nullptr &&
                 env_.dcache->config().enabled && addr_in_cached_flash(addr) &&
                 env_.dcache->probe(addr)) {
        mem = FastMemPlan{addr, true};
      } else {
        // Bus route or D-cache miss: accurate path only.
        return bail(FastBail::kDataRoute);
      }
    }

    if ((op.flags & SuperOp::kBranch) != 0) {
      bool taken = true;
      switch (op.instr.opcode) {
        case Opcode::kJeq: taken = d_[op.instr.rd] == d_[op.instr.ra]; break;
        case Opcode::kJne: taken = d_[op.instr.rd] != d_[op.instr.ra]; break;
        case Opcode::kJlt:
          taken = static_cast<i32>(d_[op.instr.rd]) <
                  static_cast<i32>(d_[op.instr.ra]);
          break;
        case Opcode::kJge:
          taken = static_cast<i32>(d_[op.instr.rd]) >=
                  static_cast<i32>(d_[op.instr.ra]);
          break;
        case Opcode::kJltu: taken = d_[op.instr.rd] < d_[op.instr.ra]; break;
        case Opcode::kJgeu: taken = d_[op.instr.rd] >= d_[op.instr.ra]; break;
        case Opcode::kJz: taken = d_[op.instr.rd] == 0; break;
        case Opcode::kJnz: taken = d_[op.instr.rd] != 0; break;
        case Opcode::kLoop: taken = a_[op.instr.rd] - 1 != 0; break;
        default: break;  // unconditional transfers
      }
      if (taken) redirected = true;
    }

    if (op.dest != SuperOp::kNoReg) {
      if ((op.dest & SuperOp::kAddrFile) != 0) {
        written_a |= 1u << (op.dest & 0xF);
      } else {
        written_d |= 1u << (op.dest & 0xF);
      }
    }
    if (slot != nullptr) *slot = true;
    ++plan;
    if (pipe == Pipe::kSys || redirected) break;
  }

  // Fetch-start planning (try_start_fetch, after the issue loop). A cycle
  // where the accurate stepper would start a fetch the window cannot
  // represent (off-chunk, I-cache miss, uncached code) must bail.
  const u32 q_after = q_count - plan;
  bool start_fetch = false;
  bool fetch_icache = false;
  unsigned fetch_words = 0;
  if (!redirected) {
    const bool fetch_idle =
        fetch_state_ == FetchState::kIdle || deliver_words != 0;
    if (fetch_idle &&
        q_after + config_.fetch_block_words <= config_.fetch_queue_depth) {
      const Addr pc = fetch_pc_;
      if (!blk.contains(pc)) return bail(FastBail::kFallOff);
      const u32 block_bytes = config_.fetch_block_words * isa::kInstrBytes;
      const Addr block_end = (pc & ~(block_bytes - 1)) + block_bytes;
      fetch_words = (block_end - pc) / isa::kInstrBytes;
      if (blk.index_of(pc) + fetch_words > nops) {
        return bail(FastBail::kChunkTail);
      }
      if (!blk.pspr) {
        // A probe miss means the accurate fetch would refill on the bus.
        if (!env_.icache->probe(pc)) return bail(FastBail::kIcacheMiss);
        fetch_icache = true;
      }
      start_fetch = true;
    }
  }

  // ---- Phase B: commit. The cycle is fully representable. --------------
  ++cycles_;
  obs.present = true;

  if (deliver_words != 0) {
    if (blk.pspr) {
      // The accurate delivery reads each word through the counted
      // scratchpad path; mirror the counter bumps (registered metrics
      // and snapshot state). Flash-backed delivery reads the backdoor
      // array, which has no observable side effects.
      for (unsigned w = 0; w < deliver_words; ++w) {
        (void)env_.code_spr->read(fetch_addr_ + w * isa::kInstrBytes, 4);
      }
    }
    if (fw.count == 0) fw.front = deliver_idx;
    fw.count += deliver_words;
    fetch_state_ = FetchState::kIdle;
  }

  for (unsigned k = 0; k < plan; ++k) {
    const u32 idx = q_front + k;
    const SuperOp& op = blk.ops[idx];
    const Addr pc = blk.base + idx * isa::kInstrBytes;
    next_pc_ = pc + isa::kInstrBytes;
    FastExec::kTable[static_cast<usize>(op.instr.opcode)](*this, op, pc, now,
                                                          obs, mem);
    ++retired_;
    obs.retire_pc = pc;
  }
  obs.retired = static_cast<u8>(plan);
  fw.front = q_front + plan;
  fw.count = q_count - plan;

  if (obs.discontinuity) {
    // redirect() flushed the (empty) real queue; flush the virtual one.
    fw.count = 0;
    if (!blk.contains(next_pc_)) fw.left_chunk = true;
  }

  if (plan == 0) {
    obs.stall = q_count == 0 ? StallCause::kIFetch
                : stall == StallCause::kNone ? StallCause::kExecLatency
                                             : stall;
  }

  if (start_fetch) {
    if (fetch_icache) {
      obs.icache_access = true;
      obs.icache_hit = env_.icache->access(fetch_pc_);  // probe() said hit
    }
    fetch_addr_ = fetch_pc_;
    fetch_words_ = fetch_words;
    fetch_state_ = FetchState::kLocalWait;
    fetch_ready_at_ = now + 1;
    fetch_pc_ += fetch_words * isa::kInstrBytes;
  }
  return true;
}

}  // namespace audo::cpu
