#include "cpu/cpu.hpp"

#include <algorithm>

#include "mem/memory_map.hpp"
#include "telemetry/metrics.hpp"

namespace audo::cpu {

void Cpu::register_metrics(telemetry::MetricsRegistry& registry,
                           std::string component) const {
  registry.counter(component, "retired", &retired_);
  registry.counter(component, "cycles", &cycles_);
  registry.counter(component, "bus_errors", &bus_errors_);
  registry.counter(std::move(component), "traps", &traps_);
}

using isa::Instr;
using isa::Opcode;
using isa::OpInfo;
using isa::Pipe;
using mcds::StallCause;

Cpu::Cpu(const CpuConfig& config, Env env) : config_(config), env_(env) {
  assert(config.issue_width >= 1 && config.issue_width <= 3);
  assert(config.fetch_block_words >= 1 &&
         config.fetch_block_words <= config.fetch_queue_depth);
}

void Cpu::reset(Addr entry, bool start_halted) {
  d_.fill(0);
  a_.fill(0);
  d_ready_.fill(0);
  a_ready_.fill(0);
  next_pc_ = entry;
  fetch_pc_ = entry;
  fetch_queue_.clear();
  fetch_state_ = FetchState::kIdle;
  fetch_discard_ = false;
  icr_ = 0;  // interrupts disabled out of reset (as on TriCore); EI enables
  biv_ = 0;
  btv_ = 0;
  irq_stack_.clear();
  halted_ = false;
  wfi_ = start_halted;
  trap_pending_ = false;
  trap_class_ = 0;
  load_pending_ = false;
  store_pending_ = false;
  retired_ = 0;
  cycles_ = 0;
  traps_ = 0;
  last_irq_prio_ = 0;
}

bool Cpu::addr_in_cached_flash(Addr addr) const {
  return env_.flash != nullptr &&
         mem::is_pflash_cached_alias(addr, env_.flash_size);
}

// --------------------------------------------------------------------------
// Fetch.

void Cpu::flush_fetch() {
  fetch_queue_.clear();
  if (fetch_state_ == FetchState::kBusWait) {
    fetch_discard_ = true;  // the bus transaction completes, result dropped
  } else {
    fetch_state_ = FetchState::kIdle;
  }
}

void Cpu::try_start_fetch(Cycle now, mcds::CoreObservation& obs) {
  if (fetch_state_ != FetchState::kIdle || fetch_discard_) return;
  if (halted_ || wfi_) return;
  if (fetch_queue_.size() + config_.fetch_block_words >
      config_.fetch_queue_depth) {
    return;
  }
  const Addr pc = fetch_pc_;
  const u32 block_bytes = config_.fetch_block_words * isa::kInstrBytes;
  const Addr block_end = (pc & ~(block_bytes - 1)) + block_bytes;
  const unsigned words = (block_end - pc) / isa::kInstrBytes;

  if (env_.code_spr != nullptr && env_.code_spr->contains(pc)) {
    fetch_addr_ = pc;
    fetch_words_ = words;
    fetch_state_ = FetchState::kLocalWait;
    fetch_ready_at_ = now + 1;
    fetch_pc_ = pc + words * isa::kInstrBytes;
    return;
  }
  if (addr_in_cached_flash(pc) && env_.icache != nullptr &&
      env_.icache->config().enabled) {
    obs.icache_access = true;
    if (env_.icache->access(pc)) {
      obs.icache_hit = true;
      fetch_addr_ = pc;
      fetch_words_ = words;
      fetch_state_ = FetchState::kLocalWait;
      fetch_ready_at_ = now + 1;
      fetch_pc_ = pc + words * isa::kInstrBytes;
      return;
    }
    obs.icache_miss = true;
    // Refill over the bus through the flash code port.
    if (env_.bus == nullptr) {
      halted_ = true;  // unrunnable configuration
      return;
    }
    bus::BusRequest req;
    req.master = config_.fetch_master;
    req.addr = pc;
    req.kind = bus::AccessKind::kRead;
    req.bytes = 4;
    req.fetch = true;
    if (!env_.bus->issue(fetch_port_, req, now)) {
      halted_ = true;
      return;
    }
    fetch_addr_ = pc;
    fetch_words_ = words;
    fetch_state_ = FetchState::kBusWait;
    fetch_pc_ = pc + words * isa::kInstrBytes;
    return;
  }
  // Non-cacheable code (uncached flash alias, LMU, ...): word-wise over
  // the bus — the realistic cost of running code out of uncached space.
  if (env_.bus == nullptr) {
    halted_ = true;
    return;
  }
  bus::BusRequest req;
  req.master = config_.fetch_master;
  req.addr = pc;
  req.kind = bus::AccessKind::kRead;
  req.bytes = 4;
  req.fetch = true;
  if (!env_.bus->issue(fetch_port_, req, now)) {
    halted_ = true;  // fetching from a hole in the address map
    return;
  }
  fetch_addr_ = pc;
  fetch_words_ = 1;
  fetch_state_ = FetchState::kBusWait;
  fetch_pc_ = pc + isa::kInstrBytes;
}

void Cpu::try_finish_fetch(Cycle now) {
  auto deliver = [&](unsigned words, auto&& read_word) {
    for (unsigned w = 0; w < words; ++w) {
      const Addr pc = fetch_addr_ + w * isa::kInstrBytes;
      const u32 word = read_word(pc);
      if (env_.decode_cache != nullptr) {
        if (const Instr* hit = env_.decode_cache->lookup(pc, word)) {
          fetch_queue_.push_back(Fetched{pc, *hit});
          continue;
        }
      }
      auto decoded = isa::decode(word);
      Instr instr;
      if (decoded.is_ok()) {
        instr = decoded.value();
      } else {
        instr.opcode = Opcode::kHalt;  // executing garbage stops the core
      }
      fetch_queue_.push_back(Fetched{pc, instr});
    }
    fetch_state_ = FetchState::kIdle;
  };

  if (fetch_state_ == FetchState::kLocalWait) {
    if (now < fetch_ready_at_) return;
    if (env_.code_spr != nullptr && env_.code_spr->contains(fetch_addr_)) {
      deliver(fetch_words_, [&](Addr pc) { return env_.code_spr->read(pc, 4); });
    } else {
      // I-cache hit: words come from the flash array backdoor.
      deliver(fetch_words_, [&](Addr pc) {
        return env_.flash->read32(mem::pflash_offset(pc));
      });
    }
    return;
  }
  if (fetch_state_ == FetchState::kBusWait && fetch_port_.done()) {
    const bool fetch_error = fetch_port_.error();
    const u32 rdata = fetch_port_.take_rdata();
    if (fetch_discard_) {
      fetch_discard_ = false;
      fetch_state_ = FetchState::kIdle;
      return;
    }
    if (fetch_error) {
      // An errored instruction fetch delivers garbage; executing it
      // stops the core, as with any undecodable word.
      ++bus_errors_;
      fetch_queue_.push_back(Fetched{fetch_addr_, Instr{.opcode = Opcode::kHalt}});
      fetch_state_ = FetchState::kIdle;
      return;
    }
    if (addr_in_cached_flash(fetch_addr_) && env_.icache != nullptr &&
        env_.icache->config().enabled) {
      env_.icache->fill(fetch_addr_);
      deliver(fetch_words_, [&](Addr pc) {
        return env_.flash->read32(mem::pflash_offset(pc));
      });
    } else {
      deliver(1, [&](Addr) { return rdata; });
    }
  }
}

// --------------------------------------------------------------------------
// Interrupts.

void Cpu::take_interrupt(u8 prio, Cycle now, mcds::CoreObservation& obs) {
  (void)now;
  irq_stack_.emplace_back(next_pc_, icr_);
  icr_ = (icr_ & ~isa::kIcrCcpnMask) |
         (static_cast<u32>(prio) << isa::kIcrCcpnShift);
  last_irq_prio_ = prio;
  wfi_ = false;
  env_.irq->acknowledge(prio);
  redirect(biv_ + prio * isa::kVectorEntryBytes, obs);
  obs.irq_entry = true;
  obs.irq_prio = prio;
}

void Cpu::request_trap(u8 trap_class) {
  if (halted_) return;
  trap_pending_ = true;
  trap_class_ = trap_class;
}

void Cpu::take_trap(mcds::CoreObservation& obs) {
  trap_pending_ = false;
  ++traps_;
  obs.trap_entry = true;
  obs.trap_class = trap_class_;
  wfi_ = false;
  if (btv_ == 0) {
    // No trap handler installed: contain the error by halting.
    halted_ = true;
    obs.stall = StallCause::kHalted;
    return;
  }
  irq_stack_.emplace_back(next_pc_, icr_);
  icr_ &= ~isa::kIcrIeBit;  // trap entry disables interrupts; RFE restores
  redirect(btv_ + trap_class_ * isa::kVectorEntryBytes, obs);
}

void Cpu::redirect(Addr target, mcds::CoreObservation& obs) {
  flush_fetch();
  next_pc_ = target;
  fetch_pc_ = target;
  obs.discontinuity = true;
  obs.discontinuity_target = target;
}

// --------------------------------------------------------------------------
// Hazards.

namespace {

/// Collect source registers: (is_addr_reg, index) pairs, up to 3.
struct SourceSet {
  std::array<std::pair<bool, u8>, 3> regs;
  unsigned count = 0;
  void add(bool is_addr, u8 idx) { regs[count++] = {is_addr, idx}; }
};

SourceSet sources_of(const Instr& in) {
  SourceSet s;
  const OpInfo& info = isa::op_info(in.opcode);
  using enum Opcode;
  if (info.uses_rb) {
    const bool a = in.opcode == kAdda;
    s.add(a, in.ra);
    s.add(a, in.rb);
    if (in.opcode == kMac) s.add(false, in.rd);  // accumulator is a source
    return s;
  }
  if (info.is_load) {
    s.add(true, in.ra);
    return s;
  }
  if (info.is_store) {
    s.add(in.opcode == kStA, in.rd);  // value
    s.add(true, in.ra);               // base
    return s;
  }
  switch (in.opcode) {
    case kAbs: case kAddi: case kAndi: case kOri: case kXori:
    case kShli: case kShri: case kSari:
      s.add(false, in.ra);
      break;
    case kMovAD: case kMtcr:
      s.add(false, in.ra);
      break;
    case kMovDA: case kMovA: case kLea: case kJi: case kCalli:
      s.add(true, in.ra);
      break;
    case kRet:
      s.add(true, 11);
      break;
    case kJeq: case kJne: case kJlt: case kJge: case kJltu: case kJgeu:
      s.add(false, in.rd);
      s.add(false, in.ra);
      break;
    case kJz: case kJnz:
      s.add(false, in.rd);
      break;
    case kLoop:
      s.add(true, in.rd);
      break;
    default:
      break;
  }
  return s;
}

/// Destination register, if any: (is_addr, index).
std::optional<std::pair<bool, u8>> dest_of(const Instr& in) {
  const OpInfo& info = isa::op_info(in.opcode);
  using enum Opcode;
  if (info.is_store) return std::nullopt;
  if (info.uses_rb) return std::pair{in.opcode == kAdda, in.rd};
  if (info.is_load) return std::pair{in.opcode == kLdA, in.rd};
  switch (in.opcode) {
    case kAbs: case kAddi: case kAndi: case kOri: case kXori:
    case kShli: case kShri: case kSari: case kMovd: case kMovh:
    case kMovDA: case kMfcr:
      return std::pair{false, in.rd};
    case kMovAD: case kMovA: case kMovha: case kLea:
      return std::pair{true, in.rd};
    case kLoop:
      return std::pair{true, in.rd};
    case kCall: case kCalli:
      return std::pair{true, u8{11}};
    default:
      return std::nullopt;
  }
}

}  // namespace

bool Cpu::sources_ready(const Instr& instr, Cycle now) const {
  const SourceSet s = sources_of(instr);
  for (unsigned i = 0; i < s.count; ++i) {
    const auto [is_addr, idx] = s.regs[i];
    const Cycle ready = is_addr ? a_ready_[idx] : d_ready_[idx];
    if (ready > now) return false;
  }
  return true;
}

bool Cpu::dest_blocked(const Instr& instr) const {
  const auto dest = dest_of(instr);
  if (!dest) return false;
  const auto [is_addr, idx] = *dest;
  return (is_addr ? a_ready_[idx] : d_ready_[idx]) == kFar;
}

// --------------------------------------------------------------------------
// Data memory.

std::optional<Cpu::DataRoute> Cpu::start_data_access(
    const Instr& instr, Addr addr, Cycle now, mcds::CoreObservation& obs) {
  const OpInfo& info = isa::op_info(instr.opcode);
  const bool write = info.is_store;

  if (env_.data_spr != nullptr && env_.data_spr->contains(addr)) {
    obs.dspr_access = true;
    return DataRoute::kSpr;
  }
  // One LS unit: any non-scratchpad access waits for the outstanding bus
  // transaction, cached or not. Checked before the cache lookup so a
  // stalled access does not touch cache state/stats on every retry cycle.
  if (env_.bus != nullptr &&
      (!data_port_.idle() || load_pending_ || store_pending_)) {
    return std::nullopt;
  }
  if (!write && env_.dcache != nullptr && env_.dcache->config().enabled &&
      addr_in_cached_flash(addr)) {
    obs.dcache_access = true;
    if (env_.dcache->access(addr)) {
      obs.dcache_hit = true;
      return DataRoute::kCachedFlashHit;
    }
    obs.dcache_miss = true;
    // fall through to the bus (refill through the flash data port)
  }
  if (env_.bus == nullptr) return DataRoute::kSpr;  // bare test CPU
  bus::BusRequest req;
  req.master = config_.data_master;
  req.addr = addr;
  req.kind = write ? bus::AccessKind::kWrite : bus::AccessKind::kRead;
  switch (instr.opcode) {
    case Opcode::kLdB: case Opcode::kStB: req.bytes = 1; break;
    case Opcode::kLdH: case Opcode::kStH: req.bytes = 2; break;
    default: req.bytes = 4; break;
  }
  if (write) {
    req.wdata = instr.opcode == Opcode::kStA ? a_[instr.rd] : d_[instr.rd];
  }
  // Classify the target for the event strobes.
  if (env_.flash != nullptr && mem::is_pflash(addr, env_.flash_size)) {
    obs.flash_data_access = true;
  } else if (addr >= mem::kPeriphBase) {
    obs.periph_data_access = true;
  } else {
    obs.sram_data_access = true;
  }
  if (!env_.bus->issue(data_port_, req, now)) {
    ++bus_errors_;
    return DataRoute::kSpr;  // unmapped: reads-as-zero, writes dropped
  }
  if (write) {
    store_pending_ = true;
  } else {
    load_pending_ = true;
    pending_load_instr_ = instr;
  }
  return DataRoute::kBus;
}

namespace {
u32 extend_loaded(Opcode op, u32 raw) {
  switch (op) {
    case Opcode::kLdB: return static_cast<u32>(static_cast<i32>(static_cast<i8>(raw)));
    case Opcode::kLdH: return static_cast<u32>(static_cast<i32>(static_cast<i16>(raw)));
    default: return raw;
  }
}
}  // namespace

void Cpu::finish_bus_data(Cycle now, mcds::CoreObservation& obs) {
  if (!data_port_.done()) return;
  const bus::BusRequest req = data_port_.request();
  const bool bus_error = data_port_.error();
  const u32 raw = data_port_.take_rdata();
  if (bus_error) ++bus_errors_;
  if (store_pending_) {
    store_pending_ = false;
    return;
  }
  assert(load_pending_);
  load_pending_ = false;
  const Instr& in = pending_load_instr_;
  // An errored load completes read-as-zero; detection is the safety
  // monitor's job (it sees the fabric's error-response strobe).
  const u32 value = bus_error ? 0 : extend_loaded(in.opcode, raw);
  if (in.opcode == Opcode::kLdA) {
    a_[in.rd] = value;
    a_ready_[in.rd] = now + 1;
  } else {
    d_[in.rd] = value;
    d_ready_[in.rd] = now + 1;
  }
  // The load's data-trace record is emitted at completion (when the value
  // exists); local/cached accesses record at issue.
  obs.data_access = true;
  obs.data_write = false;
  obs.data_addr = req.addr;
  obs.data_value = value;
  obs.data_bytes = req.bytes;
  // Tag-only D-cache: allocate the line now that the refill completed.
  if (env_.dcache != nullptr && env_.dcache->config().enabled &&
      addr_in_cached_flash(req.addr)) {
    env_.dcache->fill(req.addr);
  }
}

// --------------------------------------------------------------------------
// Core special-function registers.

u32 Cpu::read_cr(u16 cr) const {
  using isa::CoreReg;
  switch (static_cast<CoreReg>(cr)) {
    case CoreReg::kCoreId: return config_.is_pcp ? 1 : 0;
    case CoreReg::kIcr: return icr_;
    case CoreReg::kBiv: return biv_;
    case CoreReg::kCcntLo: return static_cast<u32>(cycles_);
    case CoreReg::kCcntHi: return static_cast<u32>(cycles_ >> 32);
    case CoreReg::kIcnt: return static_cast<u32>(retired_);
    case CoreReg::kIrqn: return last_irq_prio_;
    case CoreReg::kBtv: return btv_;
    case CoreReg::kScratch0: return scratch_cr_[0];
    case CoreReg::kScratch1: return scratch_cr_[1];
  }
  return 0;
}

void Cpu::write_cr(u16 cr, u32 value) {
  using isa::CoreReg;
  switch (static_cast<CoreReg>(cr)) {
    case CoreReg::kIcr:
      icr_ = value & (isa::kIcrIeBit | isa::kIcrCcpnMask);
      break;
    case CoreReg::kBiv:
      biv_ = value;
      break;
    case CoreReg::kBtv:
      btv_ = value;
      break;
    case CoreReg::kScratch0:
      scratch_cr_[0] = value;
      break;
    case CoreReg::kScratch1:
      scratch_cr_[1] = value;
      break;
    default:
      break;  // read-only or unknown: ignored
  }
}

// --------------------------------------------------------------------------
// Execute one instruction at issue.

bool Cpu::execute(const Fetched& f, Cycle now, mcds::CoreObservation& obs,
                  StallCause& stall) {
  const Instr& in = f.instr;
  const OpInfo& info = isa::op_info(in.opcode);
  using enum Opcode;

  next_pc_ = f.pc + isa::kInstrBytes;
  const Addr branch_target =
      f.pc + isa::kInstrBytes + static_cast<Addr>(in.imm * 4);

  auto set_d = [&](u8 r, u32 v) {
    d_[r] = v;
    d_ready_[r] = now + info.result_latency;
  };
  auto set_a = [&](u8 r, u32 v) {
    a_[r] = v;
    a_ready_[r] = now + info.result_latency;
  };

  // Memory operations may fail structurally; resolve them first.
  if (info.is_load || info.is_store) {
    const Addr addr = a_[in.ra] + static_cast<Addr>(in.imm);
    const auto route = start_data_access(in, addr, now, obs);
    if (!route) {
      stall = StallCause::kLsPortBusy;
      return false;
    }
    unsigned bytes = 4;
    if (in.opcode == kLdB || in.opcode == kStB) bytes = 1;
    if (in.opcode == kLdH || in.opcode == kStH) bytes = 2;

    if (info.is_store) {
      const u32 value = in.opcode == kStA ? a_[in.rd] : d_[in.rd];
      if (*route == DataRoute::kSpr && env_.data_spr != nullptr &&
          env_.data_spr->contains(addr)) {
        env_.data_spr->write(addr, value, bytes);
      }
      // kBus: the write is in flight; kSpr fallback for unmapped: dropped.
      obs.data_access = true;
      obs.data_write = true;
      obs.data_addr = addr;
      obs.data_value = value;
      obs.data_bytes = static_cast<u8>(bytes);
      return true;
    }
    // Loads.
    switch (*route) {
      case DataRoute::kSpr: {
        u32 raw = 0;
        if (env_.data_spr != nullptr && env_.data_spr->contains(addr)) {
          raw = env_.data_spr->read(addr, bytes);
        }
        const u32 value = extend_loaded(in.opcode, raw);
        if (in.opcode == kLdA) set_a(in.rd, value); else set_d(in.rd, value);
        obs.data_access = true;
        obs.data_addr = addr;
        obs.data_value = value;
        obs.data_bytes = static_cast<u8>(bytes);
        break;
      }
      case DataRoute::kCachedFlashHit: {
        const u32 raw = env_.flash->read(mem::pflash_offset(addr), bytes);
        const u32 value = extend_loaded(in.opcode, raw);
        if (in.opcode == kLdA) set_a(in.rd, value); else set_d(in.rd, value);
        obs.data_access = true;
        obs.data_addr = addr;
        obs.data_value = value;
        obs.data_bytes = static_cast<u8>(bytes);
        break;
      }
      case DataRoute::kBus:
        if (in.opcode == kLdA) a_ready_[in.rd] = kFar;
        else d_ready_[in.rd] = kFar;
        break;
    }
    return true;
  }

  switch (in.opcode) {
    case kNop: break;
    case kHalt:
      // Drain outstanding memory traffic so architectural state is final
      // when the core reports halted.
      if (load_pending_ || store_pending_ || !data_port_.idle()) {
        stall = StallCause::kLsPortBusy;
        return false;
      }
      halted_ = true;
      break;
    case kWfi: wfi_ = true; break;
    case kEi: icr_ |= isa::kIcrIeBit; break;
    case kDi: icr_ &= ~isa::kIcrIeBit; break;
    case kDebug: obs.debug_marker = true; break;
    case kRfe: {
      if (irq_stack_.empty()) {
        halted_ = true;  // RFE outside an interrupt context
        break;
      }
      const auto [ret_pc, saved_icr] = irq_stack_.back();
      irq_stack_.pop_back();
      icr_ = saved_icr;
      obs.irq_exit = true;
      redirect(ret_pc, obs);
      break;
    }
    case kMfcr: set_d(in.rd, read_cr(static_cast<u16>(in.imm))); break;
    case kMtcr: write_cr(static_cast<u16>(in.imm), d_[in.ra]); break;

    case kAdd: set_d(in.rd, d_[in.ra] + d_[in.rb]); break;
    case kSub: set_d(in.rd, d_[in.ra] - d_[in.rb]); break;
    case kAnd: set_d(in.rd, d_[in.ra] & d_[in.rb]); break;
    case kOr:  set_d(in.rd, d_[in.ra] | d_[in.rb]); break;
    case kXor: set_d(in.rd, d_[in.ra] ^ d_[in.rb]); break;
    case kShl: set_d(in.rd, d_[in.ra] << (d_[in.rb] & 31)); break;
    case kShr: set_d(in.rd, d_[in.ra] >> (d_[in.rb] & 31)); break;
    case kSar:
      set_d(in.rd, static_cast<u32>(static_cast<i32>(d_[in.ra]) >>
                                    (d_[in.rb] & 31)));
      break;
    case kMul: set_d(in.rd, d_[in.ra] * d_[in.rb]); break;
    case kMac: set_d(in.rd, d_[in.rd] + d_[in.ra] * d_[in.rb]); break;
    case kDiv: {
      const i32 den = static_cast<i32>(d_[in.rb]);
      const i32 num = static_cast<i32>(d_[in.ra]);
      // Hardware-defined corner cases: /0 -> all ones; INT_MIN/-1 wraps.
      if (den == 0) {
        set_d(in.rd, 0xFFFFFFFF);
      } else if (den == -1) {
        set_d(in.rd, 0u - d_[in.ra]);
      } else {
        set_d(in.rd, static_cast<u32>(num / den));
      }
      break;
    }
    case kMin:
      set_d(in.rd, static_cast<i32>(d_[in.ra]) < static_cast<i32>(d_[in.rb])
                       ? d_[in.ra] : d_[in.rb]);
      break;
    case kMax:
      set_d(in.rd, static_cast<i32>(d_[in.ra]) > static_cast<i32>(d_[in.rb])
                       ? d_[in.ra] : d_[in.rb]);
      break;
    case kAbs: {
      const i32 v = static_cast<i32>(d_[in.ra]);
      set_d(in.rd, static_cast<u32>(v < 0 ? -v : v));
      break;
    }
    case kAddi: set_d(in.rd, d_[in.ra] + static_cast<u32>(in.imm)); break;
    case kAndi: set_d(in.rd, d_[in.ra] & (static_cast<u32>(in.imm) & 0xFFFF)); break;
    case kOri:  set_d(in.rd, d_[in.ra] | (static_cast<u32>(in.imm) & 0xFFFF)); break;
    case kXori: set_d(in.rd, d_[in.ra] ^ (static_cast<u32>(in.imm) & 0xFFFF)); break;
    case kShli: set_d(in.rd, d_[in.ra] << (in.imm & 31)); break;
    case kShri: set_d(in.rd, d_[in.ra] >> (in.imm & 31)); break;
    case kSari:
      set_d(in.rd, static_cast<u32>(static_cast<i32>(d_[in.ra]) >> (in.imm & 31)));
      break;
    case kMovd: set_d(in.rd, static_cast<u32>(in.imm)); break;
    case kMovh: set_d(in.rd, (static_cast<u32>(in.imm) & 0xFFFF) << 16); break;
    case kMovDA: set_d(in.rd, a_[in.ra]); break;

    case kMovAD: set_a(in.rd, d_[in.ra]); break;
    case kMovA: set_a(in.rd, a_[in.ra]); break;
    case kAdda: set_a(in.rd, a_[in.ra] + a_[in.rb]); break;
    case kMovha: set_a(in.rd, (static_cast<u32>(in.imm) & 0xFFFF) << 16); break;
    case kLea: set_a(in.rd, a_[in.ra] + static_cast<u32>(in.imm)); break;

    case kJ: redirect(branch_target, obs); break;
    case kJi: redirect(a_[in.ra], obs); break;
    case kCall:
      set_a(11, f.pc + isa::kInstrBytes);
      redirect(branch_target, obs);
      break;
    case kCalli:
      set_a(11, f.pc + isa::kInstrBytes);
      redirect(a_[in.ra], obs);
      break;
    case kRet: redirect(a_[11], obs); break;

    case kJeq: if (d_[in.rd] == d_[in.ra]) redirect(branch_target, obs); break;
    case kJne: if (d_[in.rd] != d_[in.ra]) redirect(branch_target, obs); break;
    case kJlt:
      if (static_cast<i32>(d_[in.rd]) < static_cast<i32>(d_[in.ra])) {
        redirect(branch_target, obs);
      }
      break;
    case kJge:
      if (static_cast<i32>(d_[in.rd]) >= static_cast<i32>(d_[in.ra])) {
        redirect(branch_target, obs);
      }
      break;
    case kJltu: if (d_[in.rd] < d_[in.ra]) redirect(branch_target, obs); break;
    case kJgeu: if (d_[in.rd] >= d_[in.ra]) redirect(branch_target, obs); break;
    case kJz: if (d_[in.rd] == 0) redirect(branch_target, obs); break;
    case kJnz: if (d_[in.rd] != 0) redirect(branch_target, obs); break;
    case kLoop:
      a_[in.rd] -= 1;
      a_ready_[in.rd] = now + 1;
      if (a_[in.rd] != 0) redirect(branch_target, obs);
      break;

    default:
      halted_ = true;
      break;
  }
  (void)stall;
  return true;
}

// --------------------------------------------------------------------------
// Quiescence (idle fast-forward support).

bool Cpu::irq_acceptable(u8 prio) const {
  const u8 ccpn =
      static_cast<u8>((icr_ & isa::kIcrCcpnMask) >> isa::kIcrCcpnShift);
  return (icr_ & isa::kIcrIeBit) != 0 && prio > ccpn;
}

bool Cpu::quiescent() const {
  if (!halted_ && !wfi_) return false;
  // Drained front end and data side: nothing in flight that a step()
  // could complete or retire.
  if (fetch_state_ != FetchState::kIdle || fetch_discard_) return false;
  if (load_pending_ || store_pending_) return false;
  if (!fetch_port_.idle() || !data_port_.idle()) return false;
  if (halted_) return true;  // halted cores ignore traps and interrupts
  if (trap_pending_) return false;
  if (env_.irq != nullptr) {
    if (const auto prio = env_.irq->pending();
        prio.has_value() && irq_acceptable(*prio)) {
      return false;
    }
  }
  return true;
}

// --------------------------------------------------------------------------
// One clock cycle.

void Cpu::step(Cycle now, mcds::CoreObservation& obs) {
  ++cycles_;
  obs.present = true;

  // Results of bus transactions that completed last cycle.
  finish_bus_data(now, obs);
  try_finish_fetch(now);

  if (halted_) {
    obs.stall = StallCause::kHalted;
    return;
  }

  // Trap entry wins over interrupt acceptance (uncorrectable errors are
  // not maskable); entry consumes the cycle.
  if (trap_pending_) {
    take_trap(obs);
    return;
  }

  // Interrupt acceptance (also wakes WFI).
  if (env_.irq != nullptr) {
    if (const auto prio = env_.irq->pending()) {
      const u8 ccpn =
          static_cast<u8>((icr_ & isa::kIcrCcpnMask) >> isa::kIcrCcpnShift);
      if ((icr_ & isa::kIcrIeBit) != 0 && *prio > ccpn) {
        take_interrupt(*prio, now, obs);
        obs.stall = StallCause::kNone;
        // Entry consumes the cycle; fetch of the handler starts next cycle.
        return;
      }
    }
  }
  if (wfi_) {
    obs.stall = StallCause::kWfi;
    return;
  }

  // Issue.
  bool ip_used = false;
  bool ls_used = false;
  bool lp_used = false;
  bool redirected = false;
  unsigned issued = 0;
  StallCause stall = StallCause::kNone;

  while (issued < config_.issue_width && !fetch_queue_.empty()) {
    const Fetched f = fetch_queue_.front();
    const OpInfo& info = isa::op_info(f.instr.opcode);

    if (info.pipe == Pipe::kSys && issued > 0) break;  // SYS issues alone
    bool* slot = nullptr;
    switch (info.pipe) {
      case Pipe::kIp: slot = &ip_used; break;
      case Pipe::kLs: slot = &ls_used; break;
      case Pipe::kLp: slot = &lp_used; break;
      case Pipe::kSys: break;
    }
    if (slot != nullptr && *slot) break;  // pipe slot taken: group full

    if (!sources_ready(f.instr, now)) {
      if (issued == 0) {
        // Distinguish waiting-on-load from multi-cycle execution.
        stall = StallCause::kExecLatency;
        const SourceSet s = sources_of(f.instr);
        for (unsigned i = 0; i < s.count; ++i) {
          const auto [is_addr, idx] = s.regs[i];
          if ((is_addr ? a_ready_[idx] : d_ready_[idx]) == kFar) {
            stall = StallCause::kLoadUse;
          }
        }
      }
      break;
    }
    if (dest_blocked(f.instr)) {
      if (issued == 0) stall = StallCause::kLoadUse;
      break;
    }
    // Pop before executing: control transfers flush the queue inside
    // execute(); a structural failure re-queues the instruction.
    fetch_queue_.pop_front();
    StallCause structural = StallCause::kNone;
    if (!execute(f, now, obs, structural)) {
      fetch_queue_.push_front(f);
      if (issued == 0) stall = structural;
      break;
    }
    if (slot != nullptr) *slot = true;
    ++issued;
    ++retired_;
    obs.retire_pc = f.pc;
    redirected = obs.discontinuity;
    if (info.pipe == Pipe::kSys || redirected || halted_ || wfi_) break;
  }

  obs.retired = static_cast<u8>(issued);
  // Stall-symptom precedence (deterministic; asserted by the
  // StallAttribution.SymptomPrecedence test): when several causes
  // coincide in one zero-issue cycle, exactly one symptom is reported:
  //   kHalted > trap entry > irq entry > kWfi   (early returns above),
  // then for an ordinary issue stall:
  //   1. kIFetch only when the fetch queue is EMPTY. With instructions
  //      queued, a concurrent fetch miss is *not* the stall — the oldest
  //      queued instruction's back-end hazard is, so a coinciding
  //      kIFetch + kLoadUse cycle reports kLoadUse.
  //   2. For that oldest instruction, kLoadUse (a source or destination
  //      register waiting on an in-flight bus load — the kFar scoreboard
  //      sentinel) outranks kExecLatency (finite-latency producer).
  //   3. kLsPortBusy when its execution could not start structurally.
  //   4. kExecLatency as the defensive default for any other zero-issue
  //      cycle with a non-empty queue.
  if (issued == 0) {
    obs.stall = fetch_queue_.empty() ? StallCause::kIFetch : stall;
    if (!fetch_queue_.empty() && stall == StallCause::kNone) {
      obs.stall = StallCause::kExecLatency;
    }
  }

  // Start the next fetch. A control transfer this cycle delays the first
  // fetch of the new stream to the next cycle (redirect penalty).
  if (!redirected) {
    try_start_fetch(now, obs);
  }
}

// --------------------------------------------------------------------------
// Snapshot support.

void Cpu::save_state(snapshot::Writer& w) const {
  for (u32 v : d_) w.put_u32(v);
  for (u32 v : a_) w.put_u32(v);
  w.put_u32(next_pc_);
  w.put_u32(icr_);
  w.put_u32(biv_);
  w.put_u32(btv_);
  w.put_u8(last_irq_prio_);
  w.put_u32(scratch_cr_[0]);
  w.put_u32(scratch_cr_[1]);
  w.put_u32(static_cast<u32>(irq_stack_.size()));
  for (const auto& [ret_pc, saved_icr] : irq_stack_) {
    w.put_u32(ret_pc);
    w.put_u32(saved_icr);
  }
  for (Cycle c : d_ready_) w.put_u64(c);
  for (Cycle c : a_ready_) w.put_u64(c);
  w.put_bool(halted_);
  w.put_bool(wfi_);
  w.put_bool(trap_pending_);
  w.put_u8(trap_class_);
  w.put_u64(retired_);
  w.put_u64(cycles_);
  w.put_u64(bus_errors_);
  w.put_u64(traps_);
}

void Cpu::restore_state(snapshot::Reader& r) {
  for (u32& v : d_) v = r.get_u32();
  for (u32& v : a_) v = r.get_u32();
  next_pc_ = r.get_u32();
  icr_ = r.get_u32();
  biv_ = r.get_u32();
  btv_ = r.get_u32();
  last_irq_prio_ = r.get_u8();
  scratch_cr_[0] = r.get_u32();
  scratch_cr_[1] = r.get_u32();
  irq_stack_.clear();
  const u32 frames = r.get_u32();
  for (u32 i = 0; i < frames && r.ok(); ++i) {
    const u32 ret_pc = r.get_u32();
    const u32 saved_icr = r.get_u32();
    irq_stack_.emplace_back(ret_pc, saved_icr);
  }
  for (Cycle& c : d_ready_) c = r.get_u64();
  for (Cycle& c : a_ready_) c = r.get_u64();
  halted_ = r.get_bool();
  wfi_ = r.get_bool();
  trap_pending_ = r.get_bool();
  trap_class_ = r.get_u8();
  retired_ = r.get_u64();
  cycles_ = r.get_u64();
  bus_errors_ = r.get_u64();
  traps_ = r.get_u64();

  // Park the front end and data side at idle — the quiescent capture
  // point guarantees nothing was in flight, and any residual fetch-queue
  // contents are unreachable (wake paths redirect and flush).
  fetch_queue_.clear();
  fetch_state_ = FetchState::kIdle;
  fetch_discard_ = false;
  fetch_ready_at_ = 0;
  fetch_addr_ = 0;
  fetch_words_ = 0;
  fetch_pc_ = next_pc_;
  load_pending_ = false;
  store_pending_ = false;
  pending_load_instr_ = isa::Instr{};
}

}  // namespace audo::cpu
