// The TC core — a TriCore-flavoured in-order multi-issue CPU model — and,
// with a narrower configuration, the PCP coprocessor.
//
// Timing model (see DESIGN.md):
//  * fetch: naturally-aligned blocks from the program scratchpad (1 cycle),
//    the I-cache (1 cycle on hit, bus refill on miss) or, word-wise, over
//    the bus for non-cacheable code;
//  * issue: up to `issue_width` instructions per cycle, in order, at most
//    one per pipe (IP integer, LS load/store, LP loop/branch); SYS
//    instructions issue alone. This reproduces TriCore's "up to 3
//    instructions within a clock cycle" (§5);
//  * hazards: a register scoreboard delays consumers by the producer's
//    result latency; bus loads block consumers until the data returns;
//  * interrupts: priority-driven entry through a vector table (BIV), with
//    preemption of lower-priority handlers, as in the TriCore ICU model.
//
// Architectural state is updated at issue (except bus loads), so the model
// is deterministic and directly checkable by tests.
#pragma once

#include <array>
#include <deque>
#include <optional>
#include <vector>

#include "bus/crossbar.hpp"
#include "cache/cache.hpp"
#include "common/snapshot.hpp"
#include "common/types.hpp"
#include "isa/core_regs.hpp"
#include "isa/decode_cache.hpp"
#include "isa/isa.hpp"
#include "isa/superblock.hpp"
#include "mcds/observation.hpp"
#include "mem/mem_array.hpp"
#include "mem/sram.hpp"

namespace audo::telemetry {
class MetricsRegistry;
}

namespace audo::cpu {

struct CpuConfig {
  bool is_pcp = false;
  unsigned issue_width = 3;       // 1 for the PCP
  unsigned fetch_block_words = 4; // instructions per fetch access
  unsigned fetch_queue_depth = 8;
  bus::MasterId fetch_master = bus::MasterId::kTcFetch;
  bus::MasterId data_master = bus::MasterId::kTcData;
};

/// Why fast_enter()/fast_cycle() declined the fast tier and handed the
/// cycle back to the accurate stepper. Exported per-reason as the
/// `exec/bail.*` metrics and summarized in the RunReport exec_tier block
/// so the superblock tier's coverage is explainable, not just correct.
enum class FastBail : u8 {
  kNone = 0,
  kNoSuperblocks,  // superblock cache not wired (tier disabled)
  kFrontendBusy,   // fetch queue/machinery not drained, or PC skew
  kCoreState,      // wfi, halted, pending trap or acceptable interrupt
  kDataBusy,       // load/store in flight or a bus port still busy
  kNoBlock,        // no superblock covers next_pc (or it is empty)
  kCodeRoute,      // pspr without scratchpad / flash without I-cache
  kStaleCode,      // code word changed under the predecode (SMC)
  kChunkTail,      // fetch or delivery would run past the chunk end
  kFallOff,        // sequential execution left the chunk
  kUnsupportedOp,  // op the fast table cannot represent
  kDataRoute,      // data access needs the bus or misses the D-cache
  kIcacheMiss,     // code fetch would refill over the bus
  kCount,
};
inline constexpr unsigned kNumFastBails =
    static_cast<unsigned>(FastBail::kCount);
const char* to_string(FastBail bail);

/// Interface to the interrupt router: the highest-priority pending
/// service request targeting this core.
class IrqSource {
 public:
  virtual ~IrqSource() = default;
  virtual std::optional<u8> pending() const = 0;
  virtual void acknowledge(u8 prio) = 0;
};

class Cpu {
 public:
  /// Wiring to the rest of the SoC. Null members disable the feature
  /// (e.g. the PCP has no caches; a bare test CPU may have no bus).
  struct Env {
    bus::Crossbar* bus = nullptr;
    mem::Scratchpad* code_spr = nullptr;  // PSPR (TC) / PRAM (PCP)
    mem::Scratchpad* data_spr = nullptr;  // DSPR (TC) / PCP data RAM
    cache::Cache* icache = nullptr;
    cache::Cache* dcache = nullptr;
    /// Backing flash array for cache-hit reads (tag-only caches).
    mem::MemArray* flash = nullptr;
    u32 flash_size = 0;
    IrqSource* irq = nullptr;
    /// Predecoded program image (host acceleration; see
    /// isa/decode_cache.hpp). Null falls back to isa::decode per word.
    const isa::DecodeCache* decode_cache = nullptr;
    /// Superblock cache for the fast execution tier (see
    /// isa/superblock.hpp). Null disables fast_enter().
    isa::SuperblockCache* superblocks = nullptr;
  };

  Cpu(const CpuConfig& config, Env env);

  /// Reset the core to start execution at `entry`. If `start_halted` the
  /// core sits in WFI until the first interrupt (PCP channel model).
  void reset(Addr entry, bool start_halted = false);

  /// Advance one clock cycle; fills the core's observation record.
  void step(Cycle now, mcds::CoreObservation& obs);

  // -- fast execution tier (DESIGN.md, "Execution tiers") ---------------
  //
  // The superblock fast path executes straight-line code out of a
  // predecoded chunk with the fetch queue virtualised as an index range
  // into it. Every fast cycle is planned side-effect-free first (phase A)
  // and only committed when the whole cycle is representable (phase B);
  // a bail leaves the machine untouched, so the caller replays the same
  // cycle with step() and gets the identical observable outcome.

  /// Fast-tier cursor over one superblock. `front`/`count` are the
  /// virtualised fetch queue (indices into blk->ops); the real fetch
  /// machinery fields (fetch_pc_, fetch_state_, ...) stay live.
  struct FastWindow {
    const isa::Superblock* blk = nullptr;
    u32 front = 0;
    u32 count = 0;
    /// A taken control transfer left the chunk: the window exited with a
    /// consumed cycle, a clean front end, and next_pc_ at the target —
    /// the caller may immediately re-enter on the target's chunk.
    bool left_chunk = false;
  };

  /// Try to open a fast window at the current PC. Requires a fully
  /// drained core (empty fetch queue, idle fetch/data paths, nothing
  /// pending) so the virtualised queue starts empty. Returns false when
  /// any condition fails or no superblock covers next_pc().
  bool fast_enter(FastWindow& fw);

  /// Execute one cycle inside the window. Returns false (machine
  /// untouched) when the cycle is not representable — the caller must
  /// fast_exit() and replay the cycle with step().
  bool fast_cycle(FastWindow& fw, Cycle now, mcds::CoreObservation& obs);

  /// Close the window: rematerialise the virtualised fetch queue into
  /// fetch_queue_ so step() continues exactly where the window stopped.
  void fast_exit(FastWindow& fw);

  /// True when the next cycle needs the accurate stepper regardless of
  /// code (halt, pending trap, or an acceptable interrupt). The fast
  /// window polls this after frame hooks that may react on the core
  /// (safety monitor).
  bool needs_slow_step() const;

  /// Why the most recent fast_enter()/fast_cycle() returned false.
  /// Meaningful only immediately after a failed call.
  FastBail last_fast_bail() const { return last_fast_bail_; }

  bool halted() const { return halted_; }
  bool waiting() const { return wfi_; }

  /// True when the next step() would only count time: the core is parked
  /// (WFI or halted) with the fetch and data paths drained and — for a
  /// WFI core — no pending trap and no acceptable interrupt. While this
  /// holds the core can be bulk-advanced with skip() instead of stepping.
  bool quiescent() const;

  /// Bulk-advance a quiescent core by `n` idle cycles. Only the cycle
  /// counter moves; quiescent() guarantees a per-cycle step() would have
  /// mutated nothing else.
  void skip(u64 n) { cycles_ += n; }

  /// Would a service request of `prio` be accepted right now (interrupts
  /// enabled and prio above the current CCPN)? Used by the SoC's
  /// idle-deadlock scan over enabled SRC nodes.
  bool irq_acceptable(u8 prio) const;

  u32 d(unsigned i) const { return d_.at(i); }
  u32 a(unsigned i) const { return a_.at(i); }
  void set_d(unsigned i, u32 v) { d_.at(i) = v; }
  void set_a(unsigned i, u32 v) { a_.at(i) = v; }
  Addr next_pc() const { return next_pc_; }

  u64 retired() const { return retired_; }
  u64 cycles() const { return cycles_; }
  /// Accesses that decoded to no bus region (read-as-zero / dropped) or
  /// completed with an injected error response.
  u64 bus_errors() const { return bus_errors_; }
  /// Trap-vector entries taken (see request_trap).
  u64 traps() const { return traps_; }

  /// Request asynchronous trap entry (safety-monitor reaction to an
  /// uncorrectable error). Taken at the start of the next step, before
  /// interrupt acceptance: the core pushes (return PC, ICR), disables
  /// interrupts and vectors to BTV + class * kVectorEntryBytes. With
  /// BTV = 0 (the reset value) the core halts instead — the safe default
  /// when no trap handler is installed.
  void request_trap(u8 trap_class);
  /// Immediately stop the core (safety-monitor kHaltCore reaction).
  void force_halt() { halted_ = true; }

  /// Register the core's counters under `component` ("tc"/"pcp").
  void register_metrics(telemetry::MetricsRegistry& registry,
                        std::string component) const;

  /// Snapshot support. Only valid while quiescent(): the fetch and data
  /// paths are drained then, so the durable state is architectural
  /// registers, the scoreboard (absolute-cycle deadlines), interrupt
  /// context and counters. restore_state() parks the fetch machinery at
  /// idle — any queued instructions at a quiescent point are dead, since
  /// every wake path (interrupt, trap) redirects and flushes the queue.
  void save_state(snapshot::Writer& w) const;
  void restore_state(snapshot::Reader& r);

  u32 icr() const { return icr_; }
  void set_biv(Addr biv) { biv_ = biv; }
  Addr biv() const { return biv_; }

  const CpuConfig& config() const { return config_; }

  // Read-only views of the bus ports for the SoC stall-attribution walk
  // (DESIGN.md, "Stall attribution & interference matrix"): given the
  // symptom in CoreObservation::stall, the walk inspects the matching
  // port to find which slave the stalled transaction targets and whether
  // it is still waiting for a grant or being served.
  const bus::MasterPort& fetch_port() const { return fetch_port_; }
  const bus::MasterPort& data_port() const { return data_port_; }
  /// True when the in-flight instruction fetch goes over the bus
  /// (I-cache refill or uncached code) rather than a local scratchpad /
  /// cache-hit path.
  bool fetch_on_bus() const { return fetch_state_ == FetchState::kBusWait; }

 private:
  friend struct FastExec;  // per-opcode commit functors (cpu_fast.cpp)

  struct Fetched {
    Addr pc;
    isa::Instr instr;
  };

  /// Planned data access for one fast cycle (phase A resolves the route;
  /// phase B commits it). Only DSPR and D-cache-hit flash loads are
  /// representable — everything else bails.
  struct FastMemPlan {
    Addr addr = 0;
    bool flash_hit = false;  // vs. data scratchpad
  };

  u32 peek_code_word(const isa::Superblock& blk, u32 idx) const;

  /// Record the fast-tier bail reason; always returns false so bail
  /// sites read `return bail(FastBail::kX);`.
  bool bail(FastBail reason) {
    last_fast_bail_ = reason;
    return false;
  }

  enum class FetchState : u8 { kIdle, kLocalWait, kBusWait };

  static constexpr Cycle kFar = ~Cycle{0};

  // -- fetch machinery -------------------------------------------------
  void try_start_fetch(Cycle now, mcds::CoreObservation& obs);
  void try_finish_fetch(Cycle now);
  void flush_fetch();
  bool addr_in_cached_flash(Addr addr) const;

  // -- issue machinery -------------------------------------------------
  void take_interrupt(u8 prio, Cycle now, mcds::CoreObservation& obs);
  void take_trap(mcds::CoreObservation& obs);
  bool sources_ready(const isa::Instr& instr, Cycle now) const;
  bool dest_blocked(const isa::Instr& instr) const;
  /// Execute one instruction; returns false if it could not start
  /// (structural hazard) and sets `stall`.
  bool execute(const Fetched& f, Cycle now, mcds::CoreObservation& obs,
               mcds::StallCause& stall);
  void redirect(Addr target, mcds::CoreObservation& obs);
  u32 read_cr(u16 cr) const;
  void write_cr(u16 cr, u32 value);

  // -- data-side memory ------------------------------------------------
  enum class DataRoute : u8 { kSpr, kCachedFlashHit, kBus };
  /// Start a data access; returns the route taken or nullopt on a
  /// structural hazard (bus port busy).
  std::optional<DataRoute> start_data_access(const isa::Instr& instr,
                                             Addr addr, Cycle now,
                                             mcds::CoreObservation& obs);
  void finish_bus_data(Cycle now, mcds::CoreObservation& obs);

  CpuConfig config_;
  Env env_;

  // Architectural state.
  std::array<u32, 16> d_{};
  std::array<u32, 16> a_{};
  Addr next_pc_ = 0;  // PC of the next instruction in program order
  u32 icr_ = 0;
  Addr biv_ = 0;
  Addr btv_ = 0;
  u8 last_irq_prio_ = 0;
  u32 scratch_cr_[2] = {0, 0};
  std::vector<std::pair<Addr, u32>> irq_stack_;  // (return PC, saved ICR)

  // Scoreboard: cycle at which a register value becomes usable.
  std::array<Cycle, 16> d_ready_{};
  std::array<Cycle, 16> a_ready_{};

  // Fetch.
  std::deque<Fetched> fetch_queue_;
  Addr fetch_pc_ = 0;
  FetchState fetch_state_ = FetchState::kIdle;
  Cycle fetch_ready_at_ = 0;
  Addr fetch_addr_ = 0;        // address of the in-flight fetch
  unsigned fetch_words_ = 0;   // words the in-flight fetch will deliver
  bool fetch_discard_ = false; // in-flight fetch was flushed
  bus::MasterPort fetch_port_;

  // Data side.
  bus::MasterPort data_port_;
  bool load_pending_ = false;
  isa::Instr pending_load_instr_{};
  bool store_pending_ = false;  // write in flight (port busy, no waiters)

  // Status.
  bool halted_ = false;
  bool wfi_ = false;
  bool trap_pending_ = false;
  u8 trap_class_ = 0;
  u64 retired_ = 0;
  u64 cycles_ = 0;
  u64 bus_errors_ = 0;
  u64 traps_ = 0;

  FastBail last_fast_bail_ = FastBail::kNone;
};

}  // namespace audo::cpu
