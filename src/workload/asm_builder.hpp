// Tiny assembly-source builder shared by the workload generators.
#pragma once

#include <cstdio>
#include <string>

#include "common/types.hpp"

namespace audo::workload {

class Asm {
 public:
  Asm& raw(const std::string& text) {
    out_ += text;
    out_ += '\n';
    return *this;
  }
  Asm& op(const std::string& text) { return raw("    " + text); }
  Asm& label(const std::string& name) { return raw(name + ":"); }
  Asm& section(const char* kind, u32 addr) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%s 0x%08X", kind, addr);
    return raw(buf);
  }
  Asm& comment(const std::string& text) { return raw("; " + text); }

  /// Load a 32-bit constant into a d-register (1 or 2 instructions).
  Asm& li(const char* reg, u32 value) {
    if (value <= 0x7FFF) {
      return op(std::string("movd  ") + reg + ", " + std::to_string(value));
    }
    op(std::string("movh  ") + reg + ", " + std::to_string(value >> 16));
    if ((value & 0xFFFF) != 0) {
      op(std::string("ori   ") + reg + ", " + reg + ", " +
         std::to_string(value & 0xFFFF));
    }
    return *this;
  }

  const std::string& text() const { return out_; }

 private:
  std::string out_;
};

/// "[aN+lo(sym)]"-style offset operand.
inline std::string off(const std::string& sym) { return "lo(" + sym + ")"; }

}  // namespace audo::workload
