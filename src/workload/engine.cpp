#include "workload/engine.hpp"

#include <cassert>

#include "common/bits.hpp"
#include "isa/assembler.hpp"
#include "workload/asm_builder.hpp"
#include "periph/sfr_bridge.hpp"

namespace audo::workload {
namespace {

constexpr Addr kBiv = 0x8000'0000;
constexpr Addr kMainBase = 0x8000'1000;
constexpr Addr kFlashTables = 0x8004'0000;
constexpr Addr kDsprData = 0xC000'0000;
constexpr Addr kPcpBiv = 0xD000'0800;
constexpr Addr kPcpMain = 0xD000'0000;
constexpr Addr kPcpCode = 0xD000'1000;
constexpr Addr kPcpData = 0xD400'0000;

// SFR offsets used by the generated code (PBridge windows).
constexpr u32 kStmCmp0 = periph::sfr::kStm + 0x08;
constexpr u32 kStmCtrl = periph::sfr::kStm + 0x10;
constexpr u32 kWdtService = periph::sfr::kWatchdog + 0x00;
constexpr u32 kWdtPeriod = periph::sfr::kWatchdog + 0x04;
constexpr u32 kCrankRpm = periph::sfr::kCrank + 0x00;
constexpr u32 kAdcResult = periph::sfr::kAdc + 0x04;
constexpr u32 kAdcPeriod = periph::sfr::kAdc + 0x08;
constexpr u32 kCanTx = periph::sfr::kCan + 0x00;
constexpr u32 kCanRxData = periph::sfr::kCan + 0x08;
constexpr u32 kCanRxPeriod = periph::sfr::kCan + 0x10;

void emit_tables(Asm& a, u32 dim, const char* ign, const char* fuel) {
  auto emit = [&](const char* name, unsigned mul_r, unsigned mul_c) {
    a.label(name);
    std::string line;
    for (u32 r = 0; r < dim; ++r) {
      for (u32 c = 0; c < dim; ++c) {
        const u32 v = (r * mul_r + c * mul_c) & 0xFF;
        if (line.empty()) {
          line = "    .word " + std::to_string(v);
        } else {
          line += ", " + std::to_string(v);
        }
        if ((c + 1) % 8 == 0 || c + 1 == dim) {
          a.raw(line);
          line.clear();
        }
      }
    }
  };
  emit(ign, 7, 3);
  emit(fuel, 5, 11);
}

}  // namespace

Result<EngineWorkload> build_engine_workload(const EngineOptions& opt) {
  assert(is_pow2(opt.table_dim) && opt.table_dim >= 4 &&
         opt.table_dim <= 64 && "table_dim must be a power of two in 4..64");
  assert((!opt.tables_in_dspr || opt.table_dim <= 32) &&
         "DSPR tables need dim <= 32 (16-bit offsets)");
  const u32 dim = opt.table_dim;
  const u32 log2_dim = log2_exact(dim);
  const u32 dim_mask = dim - 1;
  const u32 table_bytes = dim * dim * 4;
  const u32 journal_mask =
      is_pow2(opt.journal_every) ? opt.journal_every - 1 : 15;

  Asm a;
  a.comment("Generated engine-control workload (see workload/engine.cpp)");

  // ---- TC vector table stubs ----
  auto vector = [&](u8 prio, const std::string& target) {
    a.section(".text", kBiv + prio * 32u);
    a.op("j " + target);
  };
  vector(opt.prio_stm, "isr_stm");
  vector(opt.prio_dma_done, "isr_dma_done");
  if (!opt.pcp_offload && !opt.use_dma_for_adc) {
    vector(opt.prio_adc, "isr_adc");
  } else if (!opt.pcp_offload) {
    // DMA handles ADC; keep the vector harmless if ever taken.
    vector(opt.prio_adc, "isr_dma_done");
  }
  if (!opt.pcp_offload) vector(opt.prio_can_rx, "isr_can");
  vector(opt.prio_tooth, "isr_tooth");
  vector(opt.prio_sync, "isr_sync");

  // ---- TC main ----
  a.section(".text", kMainBase);
  a.label("main");
  a.op("di");
  a.op("movha a15, 0xC000");  // DSPR base (global, read-only convention)
  a.op("movha a14, 0xF000");  // SFR base (global, read-only convention)
  a.li("d0", kBiv);
  a.op("mtcr  biv, d0");
  // STM compare 0: the periodic task tick.
  a.li("d0", opt.stm_period);
  a.op("st.w  d0, [a14+" + std::to_string(kStmCmp0) + "]");
  a.li("d0", 1);
  a.op("st.w  d0, [a14+" + std::to_string(kStmCtrl) + "]");
  // ADC auto conversions.
  a.li("d0", opt.adc_period);
  a.op("st.w  d0, [a14+" + std::to_string(kAdcPeriod) + "]");
  // CAN RX traffic.
  a.li("d0", opt.can_rx_period);
  a.op("st.w  d0, [a14+" + std::to_string(kCanRxPeriod) + "]");
  // Watchdog.
  if (opt.wdt_period != 0) {
    a.li("d0", opt.wdt_period);
    a.op("st.w  d0, [a14+" + std::to_string(kWdtPeriod) + "]");
  }
  a.op("ei");

  a.label("_bg_loop");
  if (opt.idle_background) {
    assert(opt.wdt_period == 0 &&
           "idle_background leaves the watchdog unserviced");
    // Event-driven shape: all work lives in the ISRs; the TC parks in
    // WFI between interrupts and only re-checks the completion
    // criterion after each wake.
    a.op("wfi");
    if (opt.halt_after_revs != 0) {
      a.op("ld.w  d0, [a15+" + off("rev_count") + "]");
      a.li("d1", opt.halt_after_revs);
      a.op("jlt   d0, d1, _bg_loop");
      a.op("halt");
    } else {
      a.op("j     _bg_loop");
    }
  } else {
    a.op("call  diag_checksum");
    a.li("d0", periph::Watchdog::kServiceKey);
    a.op("st.w  d0, [a14+" + std::to_string(kWdtService) + "]");
    // Journal every 2^k iterations.
    a.op("ld.w  d0, [a15+" + off("bg_iter") + "]");
    a.op("addi  d0, d0, 1");
    a.op("st.w  d0, [a15+" + off("bg_iter") + "]");
    a.op("andi  d1, d0, " + std::to_string(journal_mask));
    a.op("jnz   d1, _bg_no_journal");
    a.op("call  eeprom_write");
    a.label("_bg_no_journal");
    if (opt.halt_after_bg != 0) {
      a.op("ld.w  d0, [a15+" + off("bg_iter") + "]");
      a.li("d1", opt.halt_after_bg);
      a.op("jlt   d0, d1, _bg_loop");
      a.op("halt");
    } else if (opt.halt_after_revs != 0) {
      a.op("ld.w  d0, [a15+" + off("rev_count") + "]");
      a.li("d1", opt.halt_after_revs);
      a.op("jlt   d0, d1, _bg_loop");
      a.op("halt");
    } else {
      a.op("j     _bg_loop");
    }
  }

  // ---- background subroutines ----
  // Flash-integrity checksum over the calibration block. Optionally via
  // the non-cached alias (a real diagnostic must read the array) and with
  // a configurable stride (strides > a line defeat the read buffers).
  a.label("diag_checksum");
  a.li("d0", 0);
  const Addr diag_base = (opt.diag_uncached ? 0xA004'0000u : kFlashTables);
  a.li("d2", diag_base);
  a.op("mov.ad a2, d2");
  a.li("d1", opt.diag_words);
  a.op("mov.ad a3, d1");
  a.label("_diag_loop");
  a.op("ld.w  d2, [a2+0]");
  a.op("xor   d0, d0, d2");
  a.op("shli  d3, d0, 1");
  a.op("shri  d4, d0, 31");
  a.op("or    d0, d3, d4");
  a.op("lea   a2, [a2+" + std::to_string(opt.diag_stride_bytes) + "]");
  a.op("loop  a3, _diag_loop");
  a.op("st.w  d0, [a15+" + off("diag_sum") + "]");
  a.op("ret");

  a.label("eeprom_write");
  a.op("ld.w  d0, [a15+" + off("journal_idx") + "]");
  a.op("andi  d1, d0, 255");
  a.op("shli  d1, d1, 2");
  a.op("movh  d2, 0xAF00");
  a.op("add   d2, d2, d1");
  a.op("mov.ad a2, d2");
  a.op("ld.w  d3, [a15+" + off("diag_sum") + "]");
  a.op("st.w  d3, [a2+0]");
  a.op("addi  d0, d0, 1");
  a.op("st.w  d0, [a15+" + off("journal_idx") + "]");
  a.op("ret");

  // ---- ISRs (each saves/restores its registers to dedicated slots) ----
  a.label("isr_tooth");
  a.op("st.w  d8, [a15+" + off("sv_t_d8") + "]");
  a.op("st.w  d9, [a15+" + off("sv_t_d9") + "]");
  a.op("st.w  d10, [a15+" + off("sv_t_d10") + "]");
  a.op("st.a  a8, [a15+" + off("sv_t_a8") + "]");
  if (opt.measure_latency) {
    // Entry latency = CCNT - crank TOOTH_TIME (both count core cycles).
    a.op("mfcr  d8, ccnt_lo");
    a.op("ld.w  d9, [a14+" + std::to_string(periph::sfr::kCrank + 0x10) + "]");
    a.op("sub   d8, d8, d9");
    a.op("ld.w  d9, [a15+" + off("lat_max") + "]");
    a.op("max   d9, d9, d8");
    a.op("st.w  d9, [a15+" + off("lat_max") + "]");
    a.op("ld.w  d9, [a15+" + off("lat_sum") + "]");
    a.op("add   d9, d9, d8");
    a.op("st.w  d9, [a15+" + off("lat_sum") + "]");
  }
  // load bucket from the filtered sensor value
  a.op("ld.w  d8, [a15+" + off("filt_adc") + "]");
  a.op("shri  d8, d8, 5");
  a.op("andi  d8, d8, " + std::to_string(dim_mask));
  // rpm bucket straight from the crank SFR
  a.op("ld.w  d9, [a14+" + std::to_string(kCrankRpm) + "]");
  a.op("shri  d9, d9, 7");
  a.op("andi  d9, d9, " + std::to_string(dim_mask));
  a.op("shli  d9, d9, " + std::to_string(log2_dim));
  a.op("add   d9, d9, d8");
  a.op("shli  d9, d9, 2");
  a.op("movh  d10, hi(ign_table)");
  a.op("ori   d10, d10, lo(ign_table)");
  a.op("add   d10, d10, d9");
  a.op("mov.ad a8, d10");
  if (opt.interpolate) {
    // 2x2 neighbourhood of both maps (8 reads), as real map
    // interpolation does — the flash data traffic §4 talks about.
    const std::string row = std::to_string(dim * 4);
    const std::string fuel = std::to_string(table_bytes);
    a.op("ld.w  d10, [a8+0]");
    a.op("ld.w  d9, [a8+4]");
    a.op("add   d10, d10, d9");
    a.op("ld.w  d9, [a8+" + row + "]");
    a.op("add   d10, d10, d9");
    a.op("ld.w  d9, [a8+" + std::to_string(dim * 4 + 4) + "]");
    a.op("add   d10, d10, d9");
    a.op("ld.w  d8, [a8+" + fuel + "]");
    a.op("ld.w  d9, [a8+" + std::to_string(table_bytes + 4) + "]");
    a.op("add   d8, d8, d9");
    a.op("ld.w  d9, [a8+" + std::to_string(table_bytes + dim * 4) + "]");
    a.op("add   d8, d8, d9");
    a.op("ld.w  d9, [a8+" + std::to_string(table_bytes + dim * 4 + 4) + "]");
    a.op("add   d8, d8, d9");
  } else {
    a.op("ld.w  d10, [a8+0]");  // ignition advance
    a.op("ld.w  d8, [a8+" + std::to_string(table_bytes) + "]");  // fuel
  }
  a.li("d9", 3);
  a.op("mul   d9, d10, d9");
  a.op("add   d9, d9, d8");
  a.op("st.w  d9, [a15+" + off("ign_out") + "]");
  a.op("ld.w  d8, [a15+" + off("tooth_count") + "]");
  a.op("addi  d8, d8, 1");
  a.op("st.w  d8, [a15+" + off("tooth_count") + "]");
  a.op("ld.w  d8, [a15+" + off("sv_t_d8") + "]");
  a.op("ld.w  d9, [a15+" + off("sv_t_d9") + "]");
  a.op("ld.w  d10, [a15+" + off("sv_t_d10") + "]");
  a.op("ld.a  a8, [a15+" + off("sv_t_a8") + "]");
  a.op("rfe");

  a.label("isr_sync");
  a.op("st.w  d8, [a15+" + off("sv_s_d8") + "]");
  a.op("ld.w  d8, [a15+" + off("rev_count") + "]");
  a.op("addi  d8, d8, 1");
  a.op("st.w  d8, [a15+" + off("rev_count") + "]");
  a.op("ld.w  d8, [a15+" + off("sv_s_d8") + "]");
  a.op("rfe");

  if (!opt.pcp_offload && !opt.use_dma_for_adc) {
    a.label("isr_adc");
    a.op("st.w  d8, [a15+" + off("sv_a_d8") + "]");
    a.op("st.w  d9, [a15+" + off("sv_a_d9") + "]");
    a.op("ld.w  d8, [a14+" + std::to_string(kAdcResult) + "]");
    a.op("ld.w  d9, [a15+" + off("filt_adc") + "]");
    a.op("sub   d8, d8, d9");
    a.op("sari  d8, d8, 3");
    a.op("add   d9, d9, d8");
    a.op("st.w  d9, [a15+" + off("filt_adc") + "]");
    a.op("ld.w  d8, [a15+" + off("sv_a_d8") + "]");
    a.op("ld.w  d9, [a15+" + off("sv_a_d9") + "]");
    a.op("rfe");
  }

  if (!opt.pcp_offload) {
    a.label("isr_can");
    a.op("st.w  d8, [a15+" + off("sv_c_d8") + "]");
    a.op("st.w  d9, [a15+" + off("sv_c_d9") + "]");
    a.op("st.w  d10, [a15+" + off("sv_c_d10") + "]");
    a.op("st.a  a8, [a15+" + off("sv_c_a8") + "]");
    a.op("ld.w  d8, [a14+" + std::to_string(kCanRxData) + "]");
    a.op("ld.w  d9, [a15+" + off("can_head") + "]");
    a.op("andi  d9, d9, 31");
    a.op("shli  d9, d9, 2");
    // Absolute ring address: the ring may live in the DSPR or the LMU.
    a.op("movh  d10, hi(can_ring)");
    a.op("ori   d10, d10, lo(can_ring)");
    a.op("add   d10, d10, d9");
    a.op("mov.ad a8, d10");
    a.op("st.w  d8, [a8+0]");
    a.op("ld.w  d9, [a15+" + off("can_head") + "]");
    a.op("addi  d9, d9, 1");
    a.op("st.w  d9, [a15+" + off("can_head") + "]");
    a.op("ld.w  d8, [a15+" + off("sv_c_d8") + "]");
    a.op("ld.w  d9, [a15+" + off("sv_c_d9") + "]");
    a.op("ld.w  d10, [a15+" + off("sv_c_d10") + "]");
    a.op("ld.a  a8, [a15+" + off("sv_c_a8") + "]");
    a.op("rfe");
  }

  a.label("isr_stm");
  a.op("st.w  d8, [a15+" + off("sv_p_d8") + "]");
  a.op("st.w  d9, [a15+" + off("sv_p_d9") + "]");
  a.op("ld.w  d8, [a15+" + off("filt_adc") + "]");
  a.li("d9", 1800);  // setpoint
  a.op("sub   d8, d9, d8");  // error
  a.op("ld.w  d9, [a15+" + off("pid_integ") + "]");
  a.op("add   d9, d9, d8");
  a.op("st.w  d9, [a15+" + off("pid_integ") + "]");
  a.op("shli  d8, d8, 2");  // Kp = 4
  a.op("add   d8, d8, d9");
  a.op("st.w  d8, [a15+" + off("pid_out") + "]");
  a.op("st.w  d8, [a14+" + std::to_string(kCanTx) + "]");  // CAN status frame
  a.op("ld.w  d8, [a15+" + off("sv_p_d8") + "]");
  a.op("ld.w  d9, [a15+" + off("sv_p_d9") + "]");
  a.op("rfe");

  a.label("isr_dma_done");
  a.op("st.w  d8, [a15+" + off("sv_d_d8") + "]");
  a.op("ld.w  d8, [a15+" + off("dma_count") + "]");
  a.op("addi  d8, d8, 1");
  a.op("st.w  d8, [a15+" + off("dma_count") + "]");
  a.op("ld.w  d8, [a15+" + off("sv_d_d8") + "]");
  a.op("rfe");

  // ---- PCP side ----
  if (opt.pcp_offload) {
    a.section(".text", kPcpMain);
    a.label("pcp_main");
    a.op("di");
    a.op("movha a15, 0xD400");  // PCP DRAM base
    a.op("movha a14, 0xF000");
    a.li("d0", kPcpBiv);
    a.op("mtcr  biv, d0");
    a.op("ei");
    a.label("pcp_idle");
    a.op("wfi");
    a.op("j     pcp_idle");

    a.section(".text", kPcpBiv + opt.prio_adc * 32u);
    a.op("j pcp_isr_adc");
    a.section(".text", kPcpBiv + opt.prio_can_rx * 32u);
    a.op("j pcp_isr_can");

    a.section(".text", kPcpCode);
    a.label("pcp_isr_adc");
    a.op("st.w  d8, [a15+" + off("pcp_sv_a_d8") + "]");
    a.op("st.w  d9, [a15+" + off("pcp_sv_a_d9") + "]");
    a.op("st.a  a13, [a15+" + off("pcp_sv_a_a13") + "]");
    a.op("ld.w  d8, [a14+" + std::to_string(kAdcResult) + "]");
    a.op("ld.w  d9, [a15+" + off("pcp_filt") + "]");
    a.op("sub   d8, d8, d9");
    a.op("sari  d8, d8, 3");
    a.op("add   d9, d9, d8");
    a.op("st.w  d9, [a15+" + off("pcp_filt") + "]");
    // Publish to the TC's DSPR over the bus: the shared variable of E8.
    a.op("movha a13, 0xC000");
    a.op("st.w  d9, [a13+" + off("filt_adc") + "]");
    a.op("ld.w  d8, [a15+" + off("pcp_sv_a_d8") + "]");
    a.op("ld.w  d9, [a15+" + off("pcp_sv_a_d9") + "]");
    a.op("ld.a  a13, [a15+" + off("pcp_sv_a_a13") + "]");
    a.op("rfe");

    a.label("pcp_isr_can");
    a.op("st.w  d8, [a15+" + off("pcp_sv_c_d8") + "]");
    a.op("st.w  d9, [a15+" + off("pcp_sv_c_d9") + "]");
    a.op("st.a  a8, [a15+" + off("pcp_sv_c_a8") + "]");
    a.op("st.a  a9, [a15+" + off("pcp_sv_c_a9") + "]");
    a.op("ld.w  d8, [a14+" + std::to_string(kCanRxData) + "]");
    a.op("ld.w  d9, [a15+" + off("pcp_can_head") + "]");
    a.op("andi  d9, d9, 31");
    a.op("shli  d9, d9, 2");
    a.op("lea   a8, [a15+" + off("pcp_can_ring") + "]");
    a.op("mov.ad a9, d9");
    a.op("adda  a8, a8, a9");
    a.op("st.w  d8, [a8+0]");
    a.op("ld.w  d9, [a15+" + off("pcp_can_head") + "]");
    a.op("addi  d9, d9, 1");
    a.op("st.w  d9, [a15+" + off("pcp_can_head") + "]");
    a.op("ld.w  d8, [a15+" + off("pcp_sv_c_d8") + "]");
    a.op("ld.w  d9, [a15+" + off("pcp_sv_c_d9") + "]");
    a.op("ld.a  a8, [a15+" + off("pcp_sv_c_a8") + "]");
    a.op("ld.a  a9, [a15+" + off("pcp_sv_c_a9") + "]");
    a.op("rfe");
  }

  // ---- data: DSPR ----
  a.section(".data", kDsprData);
  for (const char* v :
       {"filt_adc", "ign_out", "tooth_count", "rev_count", "pid_integ",
        "pid_out", "diag_sum", "bg_iter", "journal_idx", "can_head",
        "dma_count", "lat_max", "lat_sum", "sv_t_d8", "sv_t_d9", "sv_t_d10",
        "sv_t_a8", "sv_s_d8",
        "sv_a_d8", "sv_a_d9", "sv_c_d8", "sv_c_d9", "sv_c_d10", "sv_c_a8",
        "sv_p_d8", "sv_p_d9", "sv_d_d8"}) {
    a.label(v);
    a.op(std::string(".word ") +
         (std::string(v) == "filt_adc" ? "1500" : "0"));
  }
  if (!opt.can_ring_in_lmu) {
    a.label("can_ring");
    a.op(".space 128");
  }
  if (opt.tables_in_dspr) {
    a.op(".align 32");
    emit_tables(a, dim, "ign_table", "fuel_table");
  }

  // ---- data: flash tables ----
  if (!opt.tables_in_dspr) {
    a.section(".data", kFlashTables);
    emit_tables(a, dim, "ign_table", "fuel_table");
  }

  // ---- data: LMU-resident CAN ring (option) ----
  if (opt.can_ring_in_lmu) {
    a.section(".data", 0x9000'0000);
    a.label("can_ring");
    a.op(".space 128");
  }

  // ---- data: PCP DRAM ----
  if (opt.pcp_offload) {
    a.section(".data", kPcpData);
    for (const char* v :
         {"pcp_filt", "pcp_can_head", "pcp_sv_a_d8", "pcp_sv_a_d9",
          "pcp_sv_a_a13", "pcp_sv_c_d8", "pcp_sv_c_d9", "pcp_sv_c_a8",
          "pcp_sv_c_a9"}) {
      a.label(v);
      a.op(std::string(".word ") +
           (std::string(v) == "pcp_filt" ? "1500" : "0"));
    }
    a.label("pcp_can_ring");
    a.op(".space 128");
  }

  auto program = isa::assemble(a.text());
  if (!program.is_ok()) return program.status();

  EngineWorkload workload;
  workload.program = std::move(program).value();
  workload.options = opt;
  workload.source = a.text();
  workload.tc_entry = workload.program.symbol_addr("main").value();
  if (opt.pcp_offload) {
    workload.pcp_entry = workload.program.symbol_addr("pcp_main").value();
  }
  return workload;
}

void configure_engine(soc::Soc& soc, const EngineOptions& opt) {
  soc.crank().set_rpm(opt.rpm);
  soc.crank().set_time_scale(opt.crank_time_scale);

  periph::IrqRouter& router = soc.irq_router();
  const soc::SrcIds& srcs = soc.srcs();
  using periph::IrqTarget;

  router.configure(srcs.stm0, opt.prio_stm, IrqTarget::kTc);
  router.configure(srcs.crank_tooth, opt.prio_tooth, IrqTarget::kTc);
  router.configure(srcs.crank_sync, opt.prio_sync, IrqTarget::kTc);
  router.configure(srcs.can_tx, 0, IrqTarget::kTc, /*enabled=*/false);
  router.configure(srcs.wdt_timeout, 0, IrqTarget::kTc, /*enabled=*/false);

  if (opt.use_dma_for_adc) {
    // ADC conversions trigger DMA channel 0 (router priority 1 = ch 0),
    // which copies the result register into the TC's DSPR.
    router.configure(srcs.adc_done, 1, IrqTarget::kDma);
    periph::DmaController::ChannelConfig ch;
    ch.src = mem::kPeriphBase + kAdcResult;
    ch.dst = mem::kDsprBase + 0;  // filt_adc is the first DSPR word
    ch.count = 0xFFFFFFFF;
    ch.bytes = 4;
    ch.src_step = 0;
    ch.dst_step = 0;
    ch.units_per_trigger = 1;
    soc.dma().setup_channel(0, ch);
    soc.dma().set_done_src(0, ~0u);
  } else if (opt.pcp_offload) {
    router.configure(srcs.adc_done, opt.prio_adc, IrqTarget::kPcp);
  } else {
    router.configure(srcs.adc_done, opt.prio_adc, IrqTarget::kTc);
  }
  router.configure(srcs.can_rx, opt.prio_can_rx,
                   opt.pcp_offload ? IrqTarget::kPcp : IrqTarget::kTc);
  router.configure(srcs.dma_done[0], opt.prio_dma_done, IrqTarget::kTc,
                   /*enabled=*/false);
}

Status install_engine(soc::Soc& soc, const EngineWorkload& workload) {
  if (Status s = soc.load(workload.program); !s.is_ok()) return s;
  configure_engine(soc, workload.options);
  soc.reset(workload.tc_entry, workload.pcp_entry);
  return Status::ok();
}

}  // namespace audo::workload
